package sfs_test

import (
	"os"
	"strings"
	"testing"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/workload"
)

// readDoc loads a documentation file relative to the repo root.
func readDoc(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("documentation file missing: %v", err)
	}
	return string(b)
}

// TestREADMEListsRegistries: the README must name every registered
// scheduler, dispatch policy, and keep-alive policy, so the front-page
// docs cannot drift from the code the CLIs actually accept (the CLIs
// themselves build their -h text from the registries, so they cannot
// drift by construction).
func TestREADMEListsRegistries(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, group := range []struct {
		what  string
		names []string
	}{
		{"scheduler", schedulers.Names()},
		{"dispatch policy", cluster.Names()},
		{"keep-alive policy", lifecycle.PolicyNames()},
		{"workflow family", chain.FamilyNames()},
		{"scenario family", workload.FamilyNames()},
	} {
		for _, n := range group.names {
			if !strings.Contains(readme, n) {
				t.Errorf("README.md does not mention %s %q", group.what, n)
			}
		}
	}
}

// TestGuideCoversCoreTasks: the user guide must exist, link the
// architecture doc, name the keep-alive registry, and walk through the
// keepalive experiment the CI pipeline archives.
func TestGuideCoversCoreTasks(t *testing.T) {
	guide := readDoc(t, "docs/GUIDE.md")
	for _, want := range []string{
		"ARCHITECTURE.md",
		"cmd/experiments",
		"faasbench replay",
		"-keepalive",
		"-id keepalive",
		"-dispatch",
		"-chain",
		"-id chain-slowdown",
		"-speeds",
		"-net-delay",
		"-id predicted-dispatch",
	} {
		if !strings.Contains(guide, want) {
			t.Errorf("docs/GUIDE.md does not cover %q", want)
		}
	}
	for _, n := range schedulers.Names() {
		if !strings.Contains(guide, n) {
			t.Errorf("docs/GUIDE.md does not mention scheduler %q", n)
		}
	}
	for _, n := range cluster.Names() {
		if !strings.Contains(guide, n) {
			t.Errorf("docs/GUIDE.md does not mention dispatch policy %q", n)
		}
	}
	for _, n := range lifecycle.PolicyNames() {
		if !strings.Contains(guide, n) {
			t.Errorf("docs/GUIDE.md does not mention keep-alive policy %q", n)
		}
	}
	for _, n := range chain.FamilyNames() {
		if !strings.Contains(guide, n) {
			t.Errorf("docs/GUIDE.md does not mention workflow family %q", n)
		}
	}
	for _, n := range workload.FamilyNames() {
		if !strings.Contains(guide, n) {
			t.Errorf("docs/GUIDE.md does not mention scenario family %q", n)
		}
	}
	// And the README must point readers at the guide.
	if !strings.Contains(readDoc(t, "README.md"), "docs/GUIDE.md") {
		t.Error("README.md does not link docs/GUIDE.md")
	}
}

// TestArchitectureCoversThirdRegistry: the architecture doc must
// describe all three registries and the lifecycle layer.
func TestArchitectureCoversThirdRegistry(t *testing.T) {
	arch := readDoc(t, "docs/ARCHITECTURE.md")
	for _, want := range []string{
		"internal/schedulers",
		"internal/cluster/dispatch.go",
		"internal/lifecycle/policy.go",
		"internal/chain/family.go",
		"internal/workload/family.go",
		"internal/predict",
		"CompletionObserver",
		"keep-alive",
		"lifecycle",
		"workflow",
		"golden",
	} {
		if !strings.Contains(arch, want) {
			t.Errorf("docs/ARCHITECTURE.md does not cover %q", want)
		}
	}
}
