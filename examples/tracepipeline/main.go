// Tracepipeline: the streaming trace layer end to end — all three
// scenario families (Table I + Poisson, Azure-sampled bursts, synthetic
// RPS ramp) produced through the one trace.Source interface, exported to
// CSV, re-imported as an equivalent source, merged into a multi-tenant
// stream, and replayed in the simulator and on the live goroutine
// runtime.
//
// Run with: go run ./examples/tracepipeline
package main

import (
	"bytes"
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/live"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

const cores = 8

func main() {
	// 1. Three scenario families, one interface.
	families := []trace.Source{
		workload.Stream(workload.Spec{N: 1500, Cores: cores, Load: 0.8, Seed: 1}),
		workload.AzureSampledStream(workload.AzureSampledSpec{N: 1500, Cores: cores, Load: 0.9, Seed: 2, Spikes: 2}),
		workload.SyntheticStream(workload.SyntheticSpec{
			Shape: trace.ShapeRamp, StartRPS: 5, TargetRPS: 25,
			Horizon: 90 * time.Second, Seed: 3,
		}),
	}
	fmt.Println("== scenario families through trace.Source ==")
	for _, src := range families {
		n, err := trace.Validate(src)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%5d invocations  %s\n", n, src)
	}

	// 2. Deterministic CSV export → import: the archived trace replays
	//    byte-identically.
	ramp := func() trace.Source {
		return workload.SyntheticStream(workload.SyntheticSpec{
			Shape: trace.ShapeStep, StartRPS: 20, TargetRPS: 120,
			Slots: 5, SlotDur: 4 * time.Second, Seed: 7,
		})
	}
	var buf bytes.Buffer
	n, err := trace.WriteCSV(&buf, ramp())
	if err != nil {
		panic(err)
	}
	imported, err := trace.NewCSVSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		panic(err)
	}
	var buf2 bytes.Buffer
	if _, err := trace.WriteCSV(&buf2, imported); err != nil {
		panic(err)
	}
	fmt.Printf("\n== CSV round trip ==\n%d invocations, %d bytes, re-export byte-identical: %v\n",
		n, buf.Len(), bytes.Equal(buf.Bytes(), buf2.Bytes()))

	// 3. Multi-tenant composition: merge two tenants' streams by arrival
	//    time and run the merged trace under SFS.
	tenantA := workload.Stream(workload.Spec{N: 800, Cores: cores, Load: 0.5, Seed: 11})
	tenantB := workload.SyntheticStream(workload.SyntheticSpec{
		Shape: trace.ShapeSine, StartRPS: 2, TargetRPS: 20,
		Horizon: 60 * time.Second, Seed: 12,
	})
	merged := trace.Collect(trace.Merge(tenantA, tenantB))
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 100 * time.Hour}, core.New(core.DefaultConfig()))
	eng.Submit(merged...)
	makespan := eng.Run()
	r := metrics.Run{Scheduler: "SFS", Tasks: merged}
	fmt.Printf("\n== merged two-tenant stream under SFS ==\n")
	fmt.Printf("%d invocations, makespan %v, p50=%s p99=%s, RTE>=0.95 for %.0f%%\n",
		len(merged), makespan.Round(time.Millisecond),
		metrics.FormatDuration(r.Percentiles([]float64{50})[0]),
		metrics.FormatDuration(r.Percentiles([]float64{99})[0]),
		100*r.FractionRTEAtLeast(0.95))

	// 4. The same pipeline drives the live goroutine runtime: replay a
	//    slice of the ramp trace 20x compressed on real CPUs.
	s := live.New(live.Config{Workers: 4, InitialSlice: 50 * time.Millisecond})
	s.Start()
	defer s.Stop()
	rep, err := live.Replay(s, trace.Limit(ramp(), 60), live.ReplayConfig{
		Speedup:    20,
		MaxService: 5 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n== live replay (20x compressed) ==\n")
	fmt.Printf("%d invocations in %v wall time: %d FILTER / %d CFS, p99 %v, max queue delay %v\n",
		rep.Summary.N, rep.Wall.Round(time.Millisecond),
		rep.Summary.FilterComplete, rep.Summary.CFSComplete,
		rep.Summary.P99.Round(time.Microsecond), rep.Summary.MaxQueueDelay.Round(time.Microsecond))
}
