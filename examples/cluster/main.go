// Cluster: the multi-host simulation layer end to end — one Azure-like
// invocation stream fanned out across four simulated SFS hosts under
// every registered dispatch policy, with cluster-wide and per-host
// metrics, the pull-based central-queue trade-off, and a determinism
// check (same seed + spec + host count → identical results).
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

const (
	hosts        = 4
	coresPerHost = 8
	n            = 4000
	seed         = 17
)

// source regenerates the identical Azure-sampled stream on every call:
// sources are deterministic in (spec, seed), so each policy sees the
// exact same arrivals — the cluster equivalent of Workload.Clone.
func source() trace.Source {
	return workload.AzureSampledStream(workload.AzureSampledSpec{
		N: n, Cores: hosts * coresPerHost, Load: 0.95, Seed: seed,
		// The fib/md/sa mix gives HASH affinity something to pin: each
		// application sticks to one host.
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
}

// runPolicy simulates the stream across the cluster under one dispatch
// policy, each host running its own SFS instance.
func runPolicy(policy string) *cluster.Result {
	d, err := cluster.NewDispatcher(policy, cluster.FactoryConfig{Hosts: hosts, Seed: seed})
	if err != nil {
		panic(err)
	}
	cl, err := cluster.New(cluster.Config{
		Hosts:        hosts,
		CoresPerHost: coresPerHost,
		NewScheduler: func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
		Dispatcher:   d,
	})
	if err != nil {
		panic(err)
	}
	res, err := cl.Run(source())
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	fmt.Printf("cluster: %d hosts x %d cores, SFS on every host, %d invocations at 95%% load\n\n",
		hosts, coresPerHost, n)

	// 1. Every dispatch policy over the same stream.
	fmt.Println("== dispatch policy comparison ==")
	header := []string{"dispatch", "p50", "p99", "mean", "RTE>=0.95", "central q max", "q delay max"}
	var rows [][]string
	results := map[string]*cluster.Result{}
	for _, policy := range cluster.Names() {
		res := runPolicy(policy)
		results[policy] = res
		ps := res.Merged.Percentiles([]float64{50, 99})
		rows = append(rows, []string{
			policy,
			metrics.FormatDuration(ps[0]),
			metrics.FormatDuration(ps[1]),
			metrics.FormatDuration(res.Merged.MeanTurnaround()),
			fmt.Sprintf("%.1f%%", 100*res.Merged.FractionRTEAtLeast(0.95)),
			fmt.Sprintf("%d", res.CentralQueueMax),
			metrics.FormatDuration(res.QueueDelayMax),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	// 2. Per-host balance under two contrasting policies: HASH
	//    concentrates each application on one host, LEASTLOADED spreads
	//    instantaneous load.
	fmt.Println("\n== per-host balance: HASH vs LEASTLOADED ==")
	for _, policy := range []string{"HASH", "LEASTLOADED"} {
		res := results[policy]
		fmt.Printf("%s:", policy)
		for _, hr := range res.PerHost {
			fmt.Printf("  %d reqs (%.0f%% util)", hr.Dispatches, hr.Utilization*100)
		}
		fmt.Println()
	}

	// 3. The pull-based trade-off: no host is ever oversubscribed, so
	//    per-host context switches vanish — the wait moves into the
	//    central queue instead.
	pull := results["PULL"]
	var pullCtx, rrCtx int64
	for _, hr := range pull.PerHost {
		pullCtx += hr.CtxSwitches
	}
	for _, hr := range results["RR"].PerHost {
		rrCtx += hr.CtxSwitches
	}
	fmt.Printf("\n== the Hiku trade-off ==\nPULL: %d host ctx switches (RR: %d); central queue peaked at %d held, max dispatch delay %s\n",
		pullCtx, rrCtx, pull.CentralQueueMax, metrics.FormatDuration(pull.QueueDelayMax))

	// 4. Determinism: replaying the identical spec yields identical
	//    cluster-level metrics, policy by policy.
	again := runPolicy("JSQ")
	first := results["JSQ"]
	same := again.Makespan == first.Makespan &&
		again.Merged.MeanTurnaround() == first.Merged.MeanTurnaround()
	fmt.Printf("\n== determinism ==\nJSQ replay: makespan %v == %v, mean %v == %v -> identical: %v\n",
		first.Makespan.Round(time.Millisecond), again.Makespan.Round(time.Millisecond),
		first.Merged.MeanTurnaround(), again.Merged.MeanTurnaround(), same)
	if !same {
		panic("cluster run was not deterministic")
	}
}
