// Quickstart: generate a small Azure-like FaaS workload, run it under
// both CFS and SFS on a simulated 8-core host, and print the paper's
// headline metrics (turnaround percentiles, RTE, speedup split).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

func main() {
	const cores = 8

	// 1. A FaaSBench workload: Table I durations, Poisson arrivals
	//    calibrated to 100% offered CPU load on 8 cores.
	w := workload.Generate(workload.Spec{
		N:     3000,
		Cores: cores,
		Load:  1.0,
		Seed:  1,
	})
	fmt.Printf("workload: %s\n", w.Description)
	fmt.Printf("mean service %v, mean IAT %v\n\n", w.MeanService, w.MeanIAT)

	// 2. Replay the identical invocation stream under each scheduler,
	//    pulling it through the trace pipeline each time.
	run := func(s cpusim.Scheduler) metrics.Run {
		tasks := trace.Collect(w.Source())
		eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 100 * time.Hour}, s)
		eng.Submit(tasks...)
		makespan := eng.Run()
		fmt.Printf("%-4s: simulated %v, %d context switches\n",
			s.Name(), makespan.Round(time.Millisecond), eng.TotalCtxSwitches)
		return metrics.Run{Scheduler: s.Name(), Tasks: tasks}
	}
	cfs := run(sched.NewCFS(sched.CFSConfig{}))
	sfs := run(core.New(core.DefaultConfig()))

	// 3. The paper's metrics.
	fmt.Println()
	header := []string{"scheduler", "p50", "p90", "p99", "RTE>=0.95"}
	var rows [][]string
	for _, r := range []metrics.Run{cfs, sfs} {
		ps := r.Percentiles([]float64{50, 90, 99})
		rows = append(rows, []string{
			r.Scheduler,
			metrics.FormatDuration(ps[0]),
			metrics.FormatDuration(ps[1]),
			metrics.FormatDuration(ps[2]),
			fmt.Sprintf("%.0f%%", 100*r.FractionRTEAtLeast(0.95)),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	sum := metrics.CompareRuns(cfs, sfs)
	fmt.Printf("\nSFS vs CFS: %.0f%% of requests improved (mean %.1fx); %.0f%% regressed (mean %.2fx)\n",
		100*sum.ShortFraction, sum.ShortSpeedupArith,
		100*sum.LongFraction, sum.LongSlowdownArith)
}
