// Httpgateway: the paper's Figure 3 deployment in miniature — an HTTP
// gateway forwards invocation requests to a backend that executes
// functions under the live SFS scheduler. A built-in client then fires
// a mixed workload at the gateway and reports per-function latency.
//
// Run with: go run ./examples/httpgateway
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"github.com/serverless-sched/sfs/internal/live"
)

// functions is the deployed function registry: name -> behaviour.
var functions = map[string]live.Function{
	// CPU-light API call (the short-function majority).
	"api": func(ctx *live.Ctx) {
		ctx.Spin(2 * time.Millisecond)
	},
	// I/O-bound markdown conversion (reads a blob, transforms it).
	"md": func(ctx *live.Ctx) {
		ctx.Spin(time.Millisecond)
		ctx.IO(func() { time.Sleep(15 * time.Millisecond) })
		ctx.Spin(2 * time.Millisecond)
	},
	// CPU-heavy report generation (the long minority).
	"report": func(ctx *live.Ctx) {
		ctx.Spin(120 * time.Millisecond)
	},
}

func main() {
	sched := live.New(live.Config{
		Workers:      2,
		InitialSlice: 25 * time.Millisecond,
		WindowSize:   50,
	})
	sched.Start()
	defer sched.Stop()

	// The backend FaaS server: one handler per function; each HTTP
	// invocation is submitted to SFS's global queue and the response is
	// sent when the function future resolves.
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke/", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Path[len("/invoke/"):]
		fn, ok := functions[name]
		if !ok {
			http.Error(w, "unknown function", http.StatusNotFound)
			return
		}
		fut, err := sched.Submit(name, fn)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		res := fut.Wait()
		fmt.Fprintf(w, "%s completed in %v (mode %s)\n", name, res.Turnaround().Round(time.Microsecond), res.Mode)
	})
	gateway := httptest.NewServer(mux)
	defer gateway.Close()
	fmt.Printf("gateway listening at %s\n\n", gateway.URL)

	// The client: a burst of short API calls racing one long report and
	// a stream of I/O-bound conversions.
	type sample struct {
		fn  string
		lat time.Duration
	}
	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	call := func(fn string) {
		defer wg.Done()
		start := time.Now()
		resp, err := http.Get(gateway.URL + "/invoke/" + fn)
		if err != nil {
			fmt.Println("request failed:", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		mu.Lock()
		samples = append(samples, sample{fn: fn, lat: time.Since(start)})
		mu.Unlock()
	}

	wg.Add(1)
	go call("report") // the long function arrives first...
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 30; i++ { // ...and must not convoy the shorts
		wg.Add(2)
		go call("api")
		go call("md")
		time.Sleep(3 * time.Millisecond)
	}
	wg.Wait()

	// Report per-function latency percentiles.
	byFn := map[string][]time.Duration{}
	for _, s := range samples {
		byFn[s.fn] = append(byFn[s.fn], s.lat)
	}
	fmt.Println("end-to-end latency through the gateway:")
	for _, fn := range []string{"api", "md", "report"} {
		ls := byFn[fn]
		if len(ls) == 0 {
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		fmt.Printf("  %-7s n=%-3d p50=%-12v p95=%v\n", fn, len(ls),
			ls[len(ls)/2].Round(time.Microsecond),
			ls[len(ls)*95/100].Round(time.Microsecond))
	}
	fmt.Printf("\nscheduler: %d FILTER completions, %d demotions (the report), S=%v\n",
		sched.Stats.FilterComplete.Load(), sched.Stats.Demotions.Load(), sched.Slice())
}
