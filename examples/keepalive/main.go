// Keepalive: the container lifecycle layer end to end — the same
// invocation stream under every registered keep-alive policy, cold
// starts on the critical path, memory pressure and LRU eviction, the
// histogram policy's pre-warming, the WARM-FIRST dispatcher on a
// cluster, and a determinism check (same seed + spec + policy →
// identical results).
//
// Run with: go run ./examples/keepalive
package main

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

const (
	cores = 8
	n     = 3000
	seed  = 33
	ttl   = 10 * time.Second // fixed window: covers bursts, misses long gaps
)

// source regenerates the identical Azure-sampled mix on every call, so
// each policy sees the exact same arrivals.
func source() trace.Source {
	return workload.AzureSampledStream(workload.AzureSampledSpec{
		N: n, Cores: cores, Load: 0.85, Seed: seed,
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
}

// runPolicy replays the stream on one SFS host under a keep-alive
// policy and memory budget (0 = unlimited).
func runPolicy(policy string, memoryMB int) (lifecycle.Stats, metrics.Run) {
	p, err := lifecycle.NewPolicy(policy, lifecycle.PolicyConfig{TTL: ttl, Seed: seed})
	if err != nil {
		panic(err)
	}
	mgr, err := lifecycle.New(lifecycle.Config{Policy: p, MemoryMB: memoryMB, Seed: seed})
	if err != nil {
		panic(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores}, core.New(core.DefaultConfig()))
	if _, err := lifecycle.Run(source(), mgr, eng); err != nil {
		panic(err)
	}
	return mgr.Stats(), metrics.Run{Scheduler: policy, Tasks: eng.Tasks()}
}

func main() {
	fmt.Printf("keep-alive: %d Azure-sampled invocations on one %d-core SFS host\n\n", n, cores)

	// 1. Every policy over the same stream, unlimited memory: the cost
	//    of cold starts and the value of any keep-alive at all.
	fmt.Println("== keep-alive policy comparison (unlimited memory) ==")
	header := append([]string{"policy"}, metrics.ColdStartHeader()...)
	header = append(header, "p50", "p99", "mean")
	var rows [][]string
	for _, policy := range lifecycle.PolicyNames() {
		st, run := runPolicy(policy, 0)
		ps := run.Percentiles([]float64{50, 99})
		row := append([]string{policy}, st.Columns()...)
		row = append(row,
			metrics.FormatDuration(ps[0]),
			metrics.FormatDuration(ps[1]),
			metrics.FormatDuration(run.MeanTurnaround()))
		rows = append(rows, row)
	}
	fmt.Print(metrics.Table(header, rows))

	// 2. Memory pressure: shrink the budget and watch LRU eviction eat
	//    the warm pool.
	fmt.Println("\n== memory pressure (TTL policy) ==")
	for _, mem := range []int{0, 2048, 1024, 512} {
		st, _ := runPolicy("TTL", mem)
		label := "unlimited"
		if mem > 0 {
			label = fmt.Sprintf("%4d MB", mem)
		}
		fmt.Printf("%s: %5.1f%% warm hits, %4d cold starts, %4d evictions, peak %5d MB\n",
			label, 100*st.WarmHitRatio(), st.ColdStarts, st.Evictions, st.MemPeakMB)
	}

	// 3. The histogram policy's pre-warming: a rarely-but-regularly
	//    invoked app (every 30 s) misses a 10 s fixed window every time,
	//    while HIST learns the period and has a sandbox waiting.
	fmt.Println("\n== periodic app: fixed TTL vs histogram pre-warming ==")
	periodic := func(policy string) lifecycle.Stats {
		p, err := lifecycle.NewPolicy(policy, lifecycle.PolicyConfig{TTL: ttl, Seed: seed})
		if err != nil {
			panic(err)
		}
		mgr, err := lifecycle.New(lifecycle.Config{Policy: p, Seed: seed})
		if err != nil {
			panic(err)
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: 2}, core.New(core.DefaultConfig()))
		src := workload.Stream(workload.Spec{
			N: 60, Duration: dist.Constant{Value: 60 * time.Millisecond}, Seed: seed,
			Arrival: dist.NewTraceProcess([]time.Duration{30 * time.Second}),
			Apps:    []workload.AppChoice{{Profile: workload.AppProfile{Name: "cron", CPUFraction: 1}, Weight: 1}},
		})
		if _, err := lifecycle.Run(src, mgr, eng); err != nil {
			panic(err)
		}
		return mgr.Stats()
	}
	for _, policy := range []string{"TTL", "HIST"} {
		st := periodic(policy)
		fmt.Printf("%4s: %5.1f%% warm hits (%d cold, %d pre-warms)\n",
			policy, 100*st.WarmHitRatio(), st.ColdStarts, st.Prewarms)
	}

	// 4. Cluster: the WARM-FIRST dispatcher routes each invocation to a
	//    host already holding a warm sandbox for its app; RR scatters
	//    the same stream affinity-blind.
	fmt.Println("\n== cluster: WARMFIRST vs RR (4 hosts x 4 cores, TTL@1024MB each) ==")
	runDispatch := func(dispatch string) *cluster.Result {
		d, err := cluster.NewDispatcher(dispatch, cluster.FactoryConfig{Hosts: 4, Seed: seed})
		if err != nil {
			panic(err)
		}
		cl, err := cluster.New(cluster.Config{
			Hosts:        4,
			CoresPerHost: 4,
			NewScheduler: func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
			Dispatcher:   d,
			NewLifecycle: func() *lifecycle.Manager {
				mgr, err := lifecycle.New(lifecycle.Config{
					Policy:   lifecycle.NewFixedTTL(ttl),
					MemoryMB: 1024,
					Seed:     seed,
				})
				if err != nil {
					panic(err)
				}
				return mgr
			},
		})
		if err != nil {
			panic(err)
		}
		res, err := cl.Run(workload.AzureSampledStream(workload.AzureSampledSpec{
			N: n, Cores: 16, Load: 0.85, Seed: seed,
			Apps: []workload.AppChoice{
				{Profile: workload.AppFib, Weight: 0.5},
				{Profile: workload.AppMd, Weight: 0.25},
				{Profile: workload.AppSa, Weight: 0.25},
			},
		}))
		if err != nil {
			panic(err)
		}
		return res
	}
	for _, dispatch := range []string{"RR", "WARMFIRST"} {
		res := runDispatch(dispatch)
		fmt.Printf("%9s: %5.1f%% warm hits, mean turnaround %s\n",
			dispatch, 100*res.Lifecycle.WarmHitRatio(),
			metrics.FormatDuration(res.Merged.MeanTurnaround()))
	}

	// 5. Determinism: identical spec + seed + policy replays to
	//    identical counters and metrics.
	st1, run1 := runPolicy("HIST", 1024)
	st2, run2 := runPolicy("HIST", 1024)
	same := st1 == st2 && run1.MeanTurnaround() == run2.MeanTurnaround()
	fmt.Printf("\n== determinism ==\nHIST@1024MB replay: %d==%d cold starts, mean %v == %v -> identical: %v\n",
		st1.ColdStarts, st2.ColdStarts, run1.MeanTurnaround(), run2.MeanTurnaround(), same)
	if !same {
		panic("lifecycle run was not deterministic")
	}
}
