// Chain: the function-chain workflow layer end to end — a request
// fanning through a linear chain, per-stage queueing compounding into
// end-to-end response time, SFS's short-function win growing with
// depth, a fan-out/fan-in diamond whose end-to-end ideal is the
// critical path, chains across a cluster with per-host warm pools, and
// a determinism check (same seed + chain spec → identical workflows).
//
// Run with: go run ./examples/chain
package main

import (
	"fmt"
	"reflect"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

const (
	cores = 8
	n     = 1200
	seed  = 21
)

// runChain replays the synthetic multi-stage family (linear chains of
// Table I-distributed stages at 90% aggregate load) under the named
// scheduler and returns the per-workflow results.
func runChain(sched string, depth int) metrics.WorkflowRun {
	src, ccfg, err := workload.ChainStream(workload.ChainSpec{
		N: n, Cores: cores, Load: 0.9, Family: "LINEAR", Depth: depth, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	inj, err := chain.NewInjector(ccfg)
	if err != nil {
		panic(err)
	}
	s, err := schedulers.New(sched)
	if err != nil {
		panic(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores}, s)
	if _, err := chain.Run(src, inj, nil, eng); err != nil {
		panic(err)
	}
	return metrics.WorkflowRun{Scheduler: sched, Workflows: inj.Workflows()}
}

func main() {
	fmt.Printf("function chains: %d workflow requests on one %d-core host, whole-chain load 0.9\n\n", n, cores)

	// 1. Compounding: each stage's queueing delay adds to the end-to-end
	//    response, so the scheduler's per-invocation win (or loss)
	//    multiplies with chain depth.
	fmt.Println("== end-to-end slowdown vs chain depth (SFS vs CFS) ==")
	header := []string{"depth", "SFS mean", "CFS mean", "CFS/SFS", "SFS p99", "CFS p99"}
	var rows [][]string
	for _, depth := range []int{1, 2, 4, 8} {
		sfs := runChain("SFS", depth)
		cfs := runChain("CFS", depth)
		sp := sfs.SlowdownPercentiles(99)
		cp := cfs.SlowdownPercentiles(99)
		rows = append(rows, []string{
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.2fx", sfs.MeanSlowdown()),
			fmt.Sprintf("%.2fx", cfs.MeanSlowdown()),
			fmt.Sprintf("%.2f", cfs.MeanSlowdown()/sfs.MeanSlowdown()),
			fmt.Sprintf("%.2fx", sp[0]),
			fmt.Sprintf("%.2fx", cp[0]),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	// 2. Fan-out/fan-in: a diamond's end-to-end ideal is its critical
	//    path (entry + slowest branch + join), not the total work; on an
	//    idle host the join fires the instant the last branch finishes.
	fmt.Println("\n== diamond fan-out/fan-in on an idle host ==")
	spec := chain.Spec{Stages: []chain.Stage{
		{Name: "entry", Service: dist.Constant{Value: 10 * time.Millisecond}},
		{Name: "fast", Service: dist.Constant{Value: 5 * time.Millisecond}, Deps: []int{0}},
		{Name: "slow", Service: dist.Constant{Value: 40 * time.Millisecond}, Deps: []int{0}},
		{Name: "join", Service: dist.Constant{Value: 5 * time.Millisecond}, Deps: []int{1, 2}},
	}}
	inj, err := chain.NewInjector(chain.Config{Specs: map[string]chain.Spec{"wf": spec}})
	if err != nil {
		panic(err)
	}
	req := task.New(0, 0, time.Millisecond)
	req.App = "wf"
	s, _ := schedulers.New("FIFO")
	eng := cpusim.NewEngine(cpusim.Config{Cores: 4}, s)
	if _, err := chain.Run(trace.FromTasks("diamond", []*task.Task{req}), inj, nil, eng); err != nil {
		panic(err)
	}
	w := inj.Workflows()[0]
	fmt.Printf("4 stages, total work 60ms, critical path %v -> end-to-end %v (slowdown %.2fx)\n",
		w.Ideal, w.Turnaround(), w.Slowdown())

	// 3. Cluster: successive stages of one workflow dispatch
	//    independently, so they can land on different hosts — and with
	//    per-host warm pools, warm-state-aware dispatch keeps each stage
	//    on a host already holding its sandbox.
	fmt.Println("\n== chains across a cluster (3 hosts x 4 cores, TTL keep-alive) ==")
	runCluster := func(dispatch string) *cluster.Result {
		src, ccfg, err := workload.ChainStream(workload.ChainSpec{
			N: n, Cores: 12, Load: 0.85, Family: "LINEAR", Depth: 3, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		d, err := cluster.NewDispatcher(dispatch, cluster.FactoryConfig{Hosts: 3, Seed: seed})
		if err != nil {
			panic(err)
		}
		cl, err := cluster.New(cluster.Config{
			Hosts:        3,
			CoresPerHost: 4,
			NewScheduler: func() cpusim.Scheduler { sc, _ := schedulers.New("SFS"); return sc },
			Dispatcher:   d,
			Chain:        &ccfg,
			NewLifecycle: func() *lifecycle.Manager {
				m, err := lifecycle.New(lifecycle.Config{Policy: lifecycle.NewFixedTTL(30 * time.Second), Seed: seed})
				if err != nil {
					panic(err)
				}
				return m
			},
		})
		if err != nil {
			panic(err)
		}
		res, err := cl.Run(src)
		if err != nil {
			panic(err)
		}
		return res
	}
	for _, dispatch := range []string{"RR", "WARMFIRST"} {
		res := runCluster(dispatch)
		fmt.Printf("%9s: %5.1f%% warm hits, e2e mean slowdown %.2fx, e2e p99 %s\n",
			dispatch, 100*res.Lifecycle.WarmHitRatio(), res.Workflows.MeanSlowdown(),
			metrics.FormatDuration(res.Workflows.Summarize(99).Percentiles()[0]))
	}

	// 4. Determinism: the same seed and chain spec replay to identical
	//    per-workflow results, standalone and clustered.
	a, b := runChain("SFS", 4), runChain("SFS", 4)
	ca, cb := runCluster("WARMFIRST"), runCluster("WARMFIRST")
	standalone := reflect.DeepEqual(a.Workflows, b.Workflows)
	clustered := reflect.DeepEqual(ca.Workflows.Workflows, cb.Workflows.Workflows)
	fmt.Printf("\n== determinism ==\nstandalone replay identical: %v, cluster replay identical: %v\n",
		standalone, clustered)
	if !standalone || !clustered {
		panic("chain run was not deterministic")
	}
}
