// Liveruntime: drive the real goroutine-based SFS scheduler with actual
// CPU-burning functions — the form the paper's artifact takes (§VI).
// Short functions complete in FILTER mode with near-zero queueing while
// a long function is demoted to CFS mode and politely yields.
//
// Run with: go run ./examples/liveruntime
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/serverless-sched/sfs/internal/live"
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	s := live.New(live.Config{
		Workers:      workers,
		InitialSlice: 30 * time.Millisecond,
		WindowSize:   50,
	})
	s.Start()
	defer s.Stop()
	fmt.Printf("live SFS runtime: %d workers, initial slice %v\n\n", workers, s.Slice())

	// A long function that will exhaust its FILTER slice and demote.
	longFut, err := s.Submit("long-report", func(ctx *live.Ctx) {
		ctx.Spin(400 * time.Millisecond)
	})
	if err != nil {
		panic(err)
	}

	// An I/O function: the blocking call releases its worker (§V-D).
	ioFut, err := s.Submit("thumbnail-io", func(ctx *live.Ctx) {
		ctx.Spin(3 * time.Millisecond)
		ctx.IO(func() { time.Sleep(40 * time.Millisecond) }) // fetch blob
		ctx.Spin(3 * time.Millisecond)
	})
	if err != nil {
		panic(err)
	}

	// A stream of short API-serving functions behind them.
	var wg sync.WaitGroup
	results := make([]live.Result, 40)
	for i := range results {
		i := i
		fut, err := s.Submit("api-call", func(ctx *live.Ctx) {
			ctx.Spin(2 * time.Millisecond)
		})
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); results[i] = fut.Wait() }()
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	var maxShort, sumShort time.Duration
	for _, r := range results {
		ta := r.Turnaround()
		sumShort += ta
		if ta > maxShort {
			maxShort = ta
		}
	}
	fmt.Printf("40 short functions: mean turnaround %v, worst %v (all %s mode)\n",
		(sumShort / time.Duration(len(results))).Round(time.Microsecond),
		maxShort.Round(time.Microsecond), live.ModeFilter)

	long := longFut.Wait()
	fmt.Printf("long function:      turnaround %v, finished in %v mode (demoted after its slice)\n",
		long.Turnaround().Round(time.Millisecond), long.Mode)
	io := ioFut.Wait()
	fmt.Printf("I/O function:       turnaround %v, finished in %v mode (worker released during I/O)\n",
		io.Turnaround().Round(time.Millisecond), io.Mode)

	fmt.Printf("\nscheduler stats: %d submitted, %d FILTER completions, %d demotions, %d overload-routed, adapted S=%v\n",
		s.Stats.Submitted.Load(), s.Stats.FilterComplete.Load(),
		s.Stats.Demotions.Load(), s.Stats.OverloadRouted.Load(), s.Slice())
}
