// Azure-replay: the paper's §VIII evaluation in miniature — replay a
// bursty Azure-sampled trace across load levels under SFS and CFS and
// watch SFS hold its median flat while CFS degrades (Fig 6/7), then
// demonstrate the overload hybrid on an injected spike train (Fig 12).
//
// Run with: go run ./examples/azure-replay
package main

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

const cores = 12

func replay(w *workload.Workload, s cpusim.Scheduler) metrics.Run {
	tasks := trace.Collect(w.Source())
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 100 * time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	return metrics.Run{Scheduler: s.Name(), Tasks: tasks}
}

func main() {
	fmt.Println("== load sweep (trace-driven arrivals) ==")
	header := []string{"load", "SFS p50", "CFS p50", "SFS RTE>=.95", "CFS RTE>=.95"}
	var rows [][]string
	for _, load := range []float64{0.65, 0.8, 1.0} {
		w := workload.AzureSampled(workload.AzureSampledSpec{
			N: 4000, Cores: cores, Load: load, Seed: 11,
		})
		sfs := replay(w, core.New(core.DefaultConfig()))
		cfs := replay(w, sched.NewCFS(sched.CFSConfig{}))
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", load*100),
			metrics.FormatDuration(sfs.Percentiles([]float64{50})[0]),
			metrics.FormatDuration(cfs.Percentiles([]float64{50})[0]),
			fmt.Sprintf("%.0f%%", 100*sfs.FractionRTEAtLeast(0.95)),
			fmt.Sprintf("%.0f%%", 100*cfs.FractionRTEAtLeast(0.95)),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	fmt.Println("\n== transient overload (5 injected spikes, Fig 12 setup) ==")
	w := workload.AzureSampled(workload.AzureSampledSpec{
		N: 4000, Cores: cores, Load: 0.9, Seed: 11,
		Spikes: 5, SpikeWidth: 200,
	})
	for _, hybrid := range []bool{true, false} {
		cfg := core.DefaultConfig()
		cfg.Hybrid = hybrid
		s := core.New(cfg)
		replay(w, s)
		var maxDelay time.Duration
		for _, d := range s.Stat.QueueDelays {
			if d.Delay > maxDelay {
				maxDelay = d.Delay
			}
		}
		fmt.Printf("%-16s max queue delay %-10s overload-routed %d\n",
			s.Name(), metrics.FormatDuration(maxDelay), s.Stat.OverloadRouted)
	}
}
