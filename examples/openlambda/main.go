// OpenLambda: the paper's §IX end-to-end evaluation in miniature — run
// the fib/md/sa application mix through the OpenLambda platform
// simulation (gateway + worker + sandbox overheads, UDP-notified SFS
// port) and compare OL+SFS against OL+CFS.
//
// Run with: go run ./examples/openlambda
package main

import (
	"fmt"
	"sort"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/faas"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
)

func main() {
	const cores = 24 // scaled-down deployment; the paper uses 72
	const n = 4000

	w := faas.OpenLambdaWorkload(n, cores, 0.9, 3)
	fmt.Printf("workload: %s\n", w.Description)

	cfsPlatform := faas.New(faas.Config{
		Cores:         cores,
		Overheads:     faas.DefaultOverheads(),
		CtxSwitchCost: 150 * time.Microsecond,
		Seed:          4,
	})
	cfsRes := cfsPlatform.Run(w, sched.NewCFS(sched.CFSConfig{}))

	sfs := core.New(core.DefaultConfig())
	sfsPlatform := faas.New(faas.Config{
		Cores:         cores,
		Overheads:     faas.DefaultOverheads(),
		CtxSwitchCost: 150 * time.Microsecond,
		SFSPort:       true, // sandbox -> SFS UDP notification hop
		Seed:          4,
	})
	sfsRes := sfsPlatform.Run(w, sfs)

	fmt.Printf("mean dispatch overhead: %v (CFS) / %v (SFS incl. UDP hop)\n\n",
		cfsRes.MeanDispatchOverhead.Round(time.Microsecond),
		sfsRes.MeanDispatchOverhead.Round(time.Microsecond))

	header := []string{"deployment", "p50", "p90", "p99", "mean", "ctx switches"}
	rows := [][]string{}
	for _, r := range []struct {
		name string
		res  faas.Result
	}{{"OL+CFS", cfsRes}, {"OL+SFS", sfsRes}} {
		ps := r.res.Run.Percentiles([]float64{50, 90, 99})
		rows = append(rows, []string{
			r.name,
			metrics.FormatDuration(ps[0]),
			metrics.FormatDuration(ps[1]),
			metrics.FormatDuration(ps[2]),
			metrics.FormatDuration(r.res.Run.MeanTurnaround()),
			fmt.Sprint(r.res.Engine.TotalCtxSwitches),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	// Fig 16: per-request context-switch ratio.
	ratios := metrics.CtxSwitchRatios(cfsRes.Run, sfsRes.Run)
	sort.Float64s(ratios)
	above1, above10 := 0, 0
	for _, r := range ratios {
		if r > 1 {
			above1++
		}
		if r >= 10 {
			above10++
		}
	}
	fmt.Printf("\nper-request CFS/SFS context-switch ratio: >1x for %.0f%%, >=10x for %.0f%% of requests\n",
		100*float64(above1)/float64(len(ratios)), 100*float64(above10)/float64(len(ratios)))

	// Per-application breakdown, as the paper's workload mixes
	// CPU-heavy (fib), I/O-heavy (md), and mixed (sa) functions.
	fmt.Println("\nper-app median turnaround:")
	for _, app := range []string{"fib", "md", "sa"} {
		var cfsT, sfsT []time.Duration
		for _, t := range cfsRes.Run.Tasks {
			if t.App == app {
				cfsT = append(cfsT, t.Turnaround())
			}
		}
		for _, t := range sfsRes.Run.Tasks {
			if t.App == app {
				sfsT = append(sfsT, t.Turnaround())
			}
		}
		sort.Slice(cfsT, func(i, j int) bool { return cfsT[i] < cfsT[j] })
		sort.Slice(sfsT, func(i, j int) bool { return sfsT[i] < sfsT[j] })
		fmt.Printf("  %-4s OL+CFS %-10s OL+SFS %s\n", app,
			metrics.FormatDuration(cfsT[len(cfsT)/2]),
			metrics.FormatDuration(sfsT[len(sfsT)/2]))
	}

	// Table II flavour: modeled user-space overhead of the SFS port.
	model := faas.DefaultOverheadModel()
	pollCPU, schedCPU, rel := model.Estimate(
		sfs.Stat.FilterBusy, 4*time.Millisecond, sfs.Stat.SchedulingOps, cores, sfsRes.Makespan)
	fmt.Printf("\nSFS user-space overhead model: poll %v + sched %v = %.1f%% of deployment CPU\n",
		pollCPU.Round(time.Millisecond), schedCPU.Round(time.Millisecond), rel*100)
}
