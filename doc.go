// Package sfs is a full reproduction of "SFS: Smart OS Scheduling for
// Serverless Functions" (Fu, Liu, Wang, Cheng, Chen — SC '22,
// arXiv:2209.01709).
//
// The module builds, from scratch and on the standard library only,
// every system the paper describes or depends on:
//
//   - a deterministic discrete-event multicore CPU simulator with
//     faithful models of Linux CFS, SCHED_FIFO, and SCHED_RR plus the
//     SRTF oracle and IDEAL baselines (internal/cpusim, internal/sched);
//   - SFS itself — the two-level FILTER+CFS user-space scheduler with
//     dynamic time slices, I/O polling, and hybrid overload handling
//     (internal/core);
//   - a streaming trace pipeline: one pull-based trace.Source interface
//     unifying every scenario family — Azure-sampled replays, the
//     paper's Table I mixture, synthetic RPS ramps — with deterministic
//     CSV export/import (internal/trace, internal/dist);
//   - FaaSBench, the Azure-trace-modeled workload generator
//     (internal/workload, internal/azure);
//   - an OpenLambda-like FaaS platform simulation (internal/faas);
//   - a real-time goroutine implementation of the SFS architecture
//     (internal/live);
//   - an experiment harness that regenerates every table and figure of
//     the paper's evaluation (internal/experiments).
//
// The root package holds the benchmark harness: one testing.B benchmark
// per paper table/figure (bench_test.go). See README.md for a package
// tour, quickstart, and how to run the benchmarks.
package sfs
