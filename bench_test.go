package sfs_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/experiments"
	"github.com/serverless-sched/sfs/internal/live"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/perfbench"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// benchExperiment runs one paper experiment per iteration (quick scale)
// and reports headline metrics extracted from its notes.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 42}
	var rep interface{ Render() string }
	for i := 0; i < b.N; i++ {
		rep = e.Run(cfg)
	}
	if rep == nil {
		b.Fatal("no report")
	}
}

// One benchmark per table/figure of the paper's evaluation. Each
// regenerates the experiment at quick scale; run cmd/experiments for the
// full-scale numbers recorded in EXPERIMENTS.md.

func BenchmarkFig01_AzureDurationCDF(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkTable1_DurationRanges(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig02a_MotivationDuration(b *testing.B)   { benchExperiment(b, "fig2a") }
func BenchmarkFig02b_MotivationRTE(b *testing.B)        { benchExperiment(b, "fig2b") }
func BenchmarkFig06_LoadSweepDuration(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig07_LoadSweepRTE(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig08_Percentiles(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig09_FixedVsAdaptiveSlice(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10_SliceTimeline(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11_IOPolling(b *testing.B)             { benchExperiment(b, "fig11") }
func BenchmarkFig12a_OverloadQueueDelay(b *testing.B)   { benchExperiment(b, "fig12a") }
func BenchmarkFig12b_OverloadDuration(b *testing.B)     { benchExperiment(b, "fig12b") }
func BenchmarkFig13_OpenLambdaDuration(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14_OpenLambdaRTE(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15_OpenLambdaPercentiles(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16_CtxSwitchRatio(b *testing.B)        { benchExperiment(b, "fig16") }
func BenchmarkTable2_SchedulerOverhead(b *testing.B)    { benchExperiment(b, "table2") }

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationSecondLevel(b *testing.B) { benchExperiment(b, "ablation-secondlevel") }
func BenchmarkAblationBaselines(b *testing.B)   { benchExperiment(b, "ablation-baselines") }
func BenchmarkAblationWindow(b *testing.B)      { benchExperiment(b, "ablation-window") }
func BenchmarkAblationOverload(b *testing.B)    { benchExperiment(b, "ablation-overload") }
func BenchmarkAblationTail(b *testing.B)        { benchExperiment(b, "ablation-tail") }
func BenchmarkAblationQueueing(b *testing.B)    { benchExperiment(b, "ablation-queueing") }
func BenchmarkSynthRamp(b *testing.B)           { benchExperiment(b, "synth-ramp") }

// BenchmarkPerfbench runs the perf harness's micro-benchmarks (engine
// step, cluster dispatch, trace decode/encode, metrics summary) at
// quick scale through the normal `go test -bench` interface. The same
// scenarios, measured by cmd/perfbench, produce the BENCH_<date>.json
// trajectory files and CI's regression gate.
func BenchmarkPerfbench(b *testing.B) {
	for _, s := range perfbench.Scenarios(true, 42) {
		b.Run(s.Name, s.Bench)
	}
}

// BenchmarkRunAllParallel measures the parallel experiment runner's
// wall-clock at several worker counts (the speedup cmd/perfbench
// records under "experiments").
func BenchmarkRunAllParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunAll(experiments.Config{Quick: true, Seed: 42}, workers)
			}
		})
	}
}

// BenchmarkTracePipeline measures streaming generation throughput
// (invocations per second of wall time) of each scenario family pulled
// through trace.Source, without materializing the stream.
func BenchmarkTracePipeline(b *testing.B) {
	const n = 5000
	for _, fam := range []struct {
		name string
		mk   func(seed uint64) trace.Source
	}{
		{"table1-poisson", func(seed uint64) trace.Source {
			return workload.Stream(workload.Spec{N: n, Cores: 16, Load: 0.8, Seed: seed})
		}},
		{"azure-sampled", func(seed uint64) trace.Source {
			return workload.AzureSampledStream(workload.AzureSampledSpec{N: n, Cores: 16, Load: 1.0, Seed: seed})
		}},
		{"synth-ramp", func(seed uint64) trace.Source {
			return workload.SyntheticStream(workload.SyntheticSpec{
				Shape: trace.ShapeRamp, StartRPS: 100, TargetRPS: 1000,
				N: n, Horizon: time.Hour, Seed: seed,
			})
		}},
	} {
		fam := fam
		b.Run(fam.name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				src := fam.mk(uint64(i))
				for {
					if _, ok := src.Next(); !ok {
						break
					}
					total++
				}
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "inv/s")
		})
	}
}

// BenchmarkEngineThroughput measures raw simulator speed: virtual task
// completions per second of wall time under each scheduler.
func BenchmarkEngineThroughput(b *testing.B) {
	const cores = 16
	w := workload.Generate(workload.Spec{N: 2000, Cores: cores, Load: 1.0, Seed: 7})
	for _, mk := range []struct {
		name string
		mk   func() cpusim.Scheduler
	}{
		{"CFS", func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) }},
		{"FIFO", func() cpusim.Scheduler { return sched.NewFIFO() }},
		{"RR", func() cpusim.Scheduler { return sched.NewRR(0) }},
		{"SRTF", func() cpusim.Scheduler { return sched.NewSRTF() }},
		{"SFS", func() cpusim.Scheduler { return core.New(core.DefaultConfig()) }},
	} {
		mk := mk
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 100 * time.Hour}, mk.mk())
				eng.Submit(w.Clone()...)
				eng.Run()
			}
			b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// BenchmarkSpeedupSummary reports the paper's headline comparison as
// benchmark metrics: improved fraction and mean speedup of SFS over CFS
// on the trace workload.
func BenchmarkSpeedupSummary(b *testing.B) {
	const cores = 12
	w := workload.AzureSampled(workload.AzureSampledSpec{N: 2000, Cores: cores, Load: 1.0, Seed: 5})
	var sum metrics.SpeedupSummary
	for i := 0; i < b.N; i++ {
		run := func(s cpusim.Scheduler) metrics.Run {
			eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 100 * time.Hour}, s)
			tasks := w.Clone()
			eng.Submit(tasks...)
			eng.Run()
			return metrics.Run{Scheduler: s.Name(), Tasks: tasks}
		}
		cfs := run(sched.NewCFS(sched.CFSConfig{}))
		sfs := run(core.New(core.DefaultConfig()))
		sum = metrics.CompareRuns(cfs, sfs)
	}
	b.ReportMetric(100*sum.ShortFraction, "%improved")
	b.ReportMetric(sum.ShortSpeedupArith, "x-speedup")
	b.ReportMetric(sum.LongSlowdownArith, "x-slowdown")
}

// BenchmarkLiveRuntime measures the real goroutine-based SFS runtime:
// end-to-end latency of short functions through the live scheduler (the
// Table II counterpart on real hardware).
func BenchmarkLiveRuntime(b *testing.B) {
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := live.New(live.Config{Workers: workers, InitialSlice: 50 * time.Millisecond})
			s.Start()
			defer s.Stop()
			b.ResetTimer()
			var lastQ time.Duration
			for i := 0; i < b.N; i++ {
				fut, err := s.Submit("bench", func(ctx *live.Ctx) {
					ctx.Spin(200 * time.Microsecond)
				})
				if err != nil {
					b.Fatal(err)
				}
				res := fut.Wait()
				lastQ = res.QueueDelay
			}
			b.ReportMetric(float64(lastQ.Microseconds()), "qdelay-us")
		})
	}
}

// BenchmarkLiveSubmitOverhead isolates the scheduler's submission path
// (global-queue enqueue + monitor update), the per-request user-space
// cost the paper's Table II accounts under "scheduling activities".
func BenchmarkLiveSubmitOverhead(b *testing.B) {
	s := live.New(live.Config{Workers: 1, InitialSlice: time.Second, QueueCapacity: 1 << 20})
	// Not started: measures pure submission cost without execution.
	b.ResetTimer()
	futs := make([]*live.Future, 0, b.N)
	for i := 0; i < b.N; i++ {
		fut, err := s.Submit("noop", func(ctx *live.Ctx) {})
		if err != nil {
			b.Skip("queue full; raise capacity for larger -benchtime")
		}
		futs = append(futs, fut)
	}
	b.StopTimer()
	s.Start()
	for _, f := range futs {
		f.Wait()
	}
	s.Stop()
}
