package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("nearby seeds produced %d collisions in 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 generator has low entropy: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children correlated: %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(14)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(15)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(16)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: sum %d want %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.ExpFloat64()
	}
}
