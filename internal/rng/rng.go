// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the SFS reproduction.
//
// All simulations must be reproducible from a single seed, so we avoid the
// global state of math/rand and implement splitmix64 (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA '14) followed by
// an xoshiro256** mixer. The generator is not cryptographically secure and
// is not safe for concurrent use; each simulation component owns its own
// stream, derived via Split.
//
// Split is the load-bearing operation: a parent seeded with S derives
// child streams deterministically, so a workload spec can hand
// independent streams to its duration sampler, app picker, I/O knob,
// and arrival process without their draws interleaving. That is what
// keeps generated traces stable when one consumer starts drawing more
// (or fewer) samples than before — the other streams are unaffected.
// The split order is part of a generator's compatibility contract:
// reordering Split calls changes every downstream trace.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a mixed output. It is used
// only to seed the xoshiro state so that nearby seeds yield unrelated
// streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent's current state, and the parent is
// advanced, so successive Splits yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative random 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless method would be faster; modulo bias is
	// negligible for the n (< 2^32) used in this codebase, but we still
	// reject to keep the distribution exact.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63n returns a uniformly random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inverse transform sampling.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, as in math/rand.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
