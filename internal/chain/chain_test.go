package chain

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// oneRequest returns a source with a single request for app at t=0.
func oneRequest(app string, svc time.Duration) trace.Source {
	t := task.New(0, 0, svc)
	t.App = app
	return trace.FromTasks("one", []*task.Task{t})
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"empty", Spec{}, false},
		{"single", Spec{Stages: []Stage{{}}}, true},
		{"forward", Spec{Stages: []Stage{{}, {Deps: []int{0}}}}, true},
		{"self", Spec{Stages: []Stage{{}, {Deps: []int{1}}}}, false},
		{"backward", Spec{Stages: []Stage{{Deps: []int{0}}}}, false},
		{"negative", Spec{Stages: []Stage{{}, {Deps: []int{-1}}}}, false},
		{"duplicate", Spec{Stages: []Stage{{}, {}, {Deps: []int{0, 0}}}}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestDiamondTiming: a fan-out/fan-in diamond of constant-service
// stages on an uncontended FIFO host must replay its exact schedule:
// branches released at the entry's completion, the join at the slowest
// branch's completion, end-to-end equal to the critical path
// (slowdown 1.0).
func TestDiamondTiming(t *testing.T) {
	spec := Spec{Stages: []Stage{
		{Name: "entry", Service: dist.Constant{Value: ms(10)}},
		{Name: "left", Service: dist.Constant{Value: ms(20)}, Deps: []int{0}},
		{Name: "right", Service: dist.Constant{Value: ms(20)}, Deps: []int{0}},
		{Name: "join", Service: dist.Constant{Value: ms(5)}, Deps: []int{1, 2}},
	}}
	inj, err := NewInjector(Config{Specs: map[string]Spec{"wf": spec}})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 4}, sched.NewFIFO())
	if _, err := Run(oneRequest("wf", ms(999)), inj, nil, eng); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Tasks()); got != 4 {
		t.Fatalf("engine saw %d tasks, want 4 stages", got)
	}
	byApp := map[string]*task.Task{}
	for _, tk := range eng.Tasks() {
		byApp[tk.App] = tk
	}
	// The entry stage is the request task with its service overridden by
	// the stage distribution.
	if byApp["entry"].Service != ms(10) {
		t.Fatalf("entry service %v, want the sampled 10ms", byApp["entry"].Service)
	}
	for app, wantArr := range map[string]time.Duration{
		"entry": 0, "left": ms(10), "right": ms(10), "join": ms(30),
	} {
		if got := time.Duration(byApp[app].Arrival); got != wantArr {
			t.Errorf("%s arrival %v, want %v", app, got, wantArr)
		}
	}
	wfs := inj.Workflows()
	if len(wfs) != 1 {
		t.Fatalf("%d workflows, want 1", len(wfs))
	}
	w := wfs[0]
	if !w.Done() || w.Stages != 4 {
		t.Fatalf("workflow %+v not complete with 4 stages", w)
	}
	if w.Turnaround() != ms(35) {
		t.Errorf("end-to-end turnaround %v, want 35ms (10+20+5)", w.Turnaround())
	}
	if w.Ideal != ms(35) {
		t.Errorf("critical-path ideal %v, want 35ms", w.Ideal)
	}
	if s := w.Slowdown(); s != 1.0 {
		t.Errorf("slowdown %v, want exactly 1.0 on an uncontended host", s)
	}
	if inj.Pending() != 0 {
		t.Errorf("%d workflows still pending", inj.Pending())
	}
}

// TestUnregisteredAppPassesThrough: requests without a spec run as
// plain invocations and are not tracked as workflows.
func TestUnregisteredAppPassesThrough(t *testing.T) {
	inj, err := NewInjector(Config{Specs: map[string]Spec{"wf": Linear(FamilyConfig{Depth: 2})}})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1}, sched.NewFIFO())
	if _, err := Run(oneRequest("plain", ms(7)), inj, nil, eng); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Tasks()); got != 1 {
		t.Fatalf("engine saw %d tasks, want 1 pass-through invocation", got)
	}
	if len(inj.Workflows()) != 0 {
		t.Fatal("pass-through invocation was tracked as a workflow")
	}
}

// TestLinearInheritsRequestService: nil-Service stages replay the
// request's own payload, and a depth-1 chain equals the plain task.
func TestLinearInheritsRequestService(t *testing.T) {
	inj, err := NewInjector(Config{Default: &Spec{Stages: []Stage{{}, {Deps: []int{0}}, {Deps: []int{1}}}}})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 2}, sched.NewFIFO())
	if _, err := Run(oneRequest("f", ms(8)), inj, nil, eng); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Tasks()); got != 3 {
		t.Fatalf("engine saw %d tasks, want 3", got)
	}
	for _, tk := range eng.Tasks() {
		if tk.Service != ms(8) {
			t.Errorf("stage %s service %v, want inherited 8ms", tk.App, tk.Service)
		}
		if !strings.HasPrefix(tk.App, "f#") && tk.App != "f#0" {
			t.Errorf("derived stage name %q, want f#<idx>", tk.App)
		}
	}
	w := inj.Workflows()[0]
	if w.Turnaround() != ms(24) || w.Ideal != ms(24) {
		t.Fatalf("turnaround %v ideal %v, want 24ms/24ms", w.Turnaround(), w.Ideal)
	}
}

// TestHopDelaysDownstreamStages: the configured hop cost shifts each
// released stage's arrival past its upstream completion.
func TestHopDelaysDownstreamStages(t *testing.T) {
	inj, err := NewInjector(Config{
		Specs: map[string]Spec{"wf": Linear(FamilyConfig{Depth: 2})},
		Hop:   func() time.Duration { return ms(3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1}, sched.NewFIFO())
	if _, err := Run(oneRequest("wf", ms(10)), inj, nil, eng); err != nil {
		t.Fatal(err)
	}
	var second *task.Task
	for _, tk := range eng.Tasks() {
		if tk.App == "wf#1" {
			second = tk
		}
	}
	if second == nil {
		t.Fatal("second stage missing")
	}
	if got := time.Duration(second.Arrival); got != ms(13) {
		t.Fatalf("second stage arrival %v, want 13ms (10ms finish + 3ms hop)", got)
	}
	if w := inj.Workflows()[0]; w.Turnaround() != ms(23) {
		t.Fatalf("turnaround %v, want 23ms", w.Turnaround())
	}
}

// TestStageIDsDisjointFromTrace: sampled stage tasks get IDs in the
// reserved high range; stage 0 keeps the request's ID (the workflow's
// ID).
func TestStageIDsDisjointFromTrace(t *testing.T) {
	inj, err := NewInjector(Config{Specs: map[string]Spec{"wf": Linear(FamilyConfig{Depth: 3})}})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1}, sched.NewFIFO())
	if _, err := Run(oneRequest("wf", ms(5)), inj, nil, eng); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, tk := range eng.Tasks() {
		if seen[tk.ID] {
			t.Fatalf("duplicate task ID %d", tk.ID)
		}
		seen[tk.ID] = true
		if tk.ID != 0 && tk.ID < stageIDBase {
			t.Fatalf("stage task ID %d collides with the trace ID range", tk.ID)
		}
	}
	if w := inj.Workflows()[0]; w.ID != 0 {
		t.Fatalf("workflow ID %d, want the request's ID 0", w.ID)
	}
}

// chainRun replays the synthetic chain family once and returns the
// workflow results plus every stage task's (arrival, finish) pairs.
func chainRun(t *testing.T, depth int, mgr *lifecycle.Manager) ([]time.Duration, []any) {
	t.Helper()
	tasks := make([]*task.Task, 40)
	for i := range tasks {
		tk := task.New(i, time.Duration(i)*ms(7), ms(5+i%11))
		tk.App = "wf"
		tasks[i] = tk
	}
	spec := Linear(FamilyConfig{Depth: depth, Service: dist.Uniform{Lo: ms(2), Hi: ms(30)}})
	spec.Stages[0].Service = nil
	inj, err := NewInjector(Config{Specs: map[string]Spec{"wf": spec}, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 2}, sched.NewCFS(sched.CFSConfig{}))
	if _, err := Run(trace.FromTasks("det", tasks), inj, mgr, eng); err != nil {
		t.Fatal(err)
	}
	var stamps []time.Duration
	for _, tk := range eng.Tasks() {
		stamps = append(stamps, time.Duration(tk.Arrival), time.Duration(tk.Finish))
	}
	var wfs []any
	for _, w := range inj.Workflows() {
		wfs = append(wfs, w)
	}
	return stamps, wfs
}

// TestRunDeterministic: same seed + same chain spec must replay
// byte-identically — every stage timestamp and every workflow result —
// including under a container lifecycle manager.
func TestRunDeterministic(t *testing.T) {
	mkMgr := func() *lifecycle.Manager {
		m, err := lifecycle.New(lifecycle.Config{Policy: lifecycle.NewFixedTTL(ms(500)), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, withLifecycle := range []bool{false, true} {
		var m1, m2 *lifecycle.Manager
		if withLifecycle {
			m1, m2 = mkMgr(), mkMgr()
		}
		s1, w1 := chainRun(t, 4, m1)
		s2, w2 := chainRun(t, 4, m2)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("lifecycle=%v: stage timestamps diverged", withLifecycle)
		}
		if !reflect.DeepEqual(w1, w2) {
			t.Fatalf("lifecycle=%v: workflow results diverged", withLifecycle)
		}
		if withLifecycle && m1.Stats() != m2.Stats() {
			t.Fatalf("lifecycle stats diverged:\n%+v\n%+v", m1.Stats(), m2.Stats())
		}
	}
}

// TestLifecycleWarmPoolsPerStage: each stage name is its own warm-pool
// key, so a second workflow reuses the first's containers stage by
// stage.
func TestLifecycleWarmPoolsPerStage(t *testing.T) {
	reqs := make([]*task.Task, 2)
	for i := range reqs {
		// Requests far enough apart that the first workflow's cold
		// starts have all resolved before the second arrives.
		tk := task.New(i, time.Duration(i)*10*time.Second, ms(10))
		tk.App = "wf"
		reqs[i] = tk
	}
	mgr, err := lifecycle.New(lifecycle.Config{Policy: lifecycle.NewFixedTTL(time.Minute), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(Config{Specs: map[string]Spec{"wf": Linear(FamilyConfig{Depth: 3})}})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 4}, sched.NewFIFO())
	if _, err := Run(trace.FromTasks("warm", reqs), inj, mgr, eng); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Invocations != 6 {
		t.Fatalf("%d container acquires, want 6 (2 workflows x 3 stages)", st.Invocations)
	}
	if st.ColdStarts != 3 || st.WarmHits() != 3 {
		t.Fatalf("cold=%d warm=%d, want 3 compulsory colds and 3 per-stage warm hits (stats %+v)",
			st.ColdStarts, st.WarmHits(), st)
	}
}

// TestFamilyRegistry: every presented name must resolve, lookups must
// be case-insensitive, and unknown names must list the choices. (The
// shared registry helper enforces name↔constructor sync structurally.)
func TestFamilyRegistry(t *testing.T) {
	for _, n := range sortedFamilyNames() {
		if _, err := NewFamily(n, FamilyConfig{}); err != nil {
			t.Errorf("name %s has no constructor: %v", n, err)
		}
		if _, err := NewFamily(strings.ToLower(n), FamilyConfig{}); err != nil {
			t.Errorf("NewFamily(%q) case-insensitive lookup failed: %v", strings.ToLower(n), err)
		}
	}
	_, err := NewFamily("nope", FamilyConfig{})
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	for _, n := range FamilyNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not mention %s", err, n)
		}
	}
	// The shapes themselves must validate at representative depths.
	for _, n := range FamilyNames() {
		for _, depth := range []int{0, 1, 2, 7} {
			spec, err := NewFamily(n, FamilyConfig{Depth: depth})
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Validate(); err != nil {
				t.Errorf("%s depth %d: %v", n, depth, err)
			}
		}
	}
}

// TestServiceFactor: nil-Service stages count 1x the request mean,
// sampled stages their own mean.
func TestServiceFactor(t *testing.T) {
	spec := Spec{Stages: []Stage{
		{},
		{Service: dist.Constant{Value: ms(30)}, Deps: []int{0}},
	}}
	if f := spec.ServiceFactor(ms(10)); f != 4 {
		t.Fatalf("ServiceFactor = %v, want 4 (1 inherited + 30ms/10ms)", f)
	}
	if f := Linear(FamilyConfig{Depth: 5}).ServiceFactor(ms(10)); f != 5 {
		t.Fatalf("all-inherit linear factor = %v, want 5", f)
	}
}
