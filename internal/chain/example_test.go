package chain_test

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// ExampleRun executes one fan-out/fan-in workflow on an idle FIFO
// host: the entry stage releases two parallel branches, the join fires
// when the slower branch completes, and the end-to-end result measures
// the critical path.
func ExampleRun() {
	spec := chain.Spec{Stages: []chain.Stage{
		{Name: "entry", Service: dist.Constant{Value: 10 * time.Millisecond}},
		{Name: "fast", Service: dist.Constant{Value: 5 * time.Millisecond}, Deps: []int{0}},
		{Name: "slow", Service: dist.Constant{Value: 20 * time.Millisecond}, Deps: []int{0}},
		{Name: "join", Service: dist.Constant{Value: 5 * time.Millisecond}, Deps: []int{1, 2}},
	}}
	inj, err := chain.NewInjector(chain.Config{Specs: map[string]chain.Spec{"wf": spec}})
	if err != nil {
		panic(err)
	}

	req := task.New(0, 0, time.Millisecond)
	req.App = "wf"
	eng := cpusim.NewEngine(cpusim.Config{Cores: 4}, sched.NewFIFO())
	if _, err := chain.Run(trace.FromTasks("example", []*task.Task{req}), inj, nil, eng); err != nil {
		panic(err)
	}

	w := inj.Workflows()[0]
	fmt.Printf("stages %d, critical path %v, end-to-end %v (slowdown %.1fx)\n",
		w.Stages, w.Ideal, w.Turnaround(), w.Slowdown())
	// Output:
	// stages 4, critical path 35ms, end-to-end 35ms (slowdown 1.0x)
}

// ExampleNewFamily selects a workflow shape from the family registry —
// the same name → constructor pattern the scheduler, dispatcher, and
// keep-alive registries use.
func ExampleNewFamily() {
	spec, err := chain.NewFamily("diamond", chain.FamilyConfig{Depth: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(spec)
	fmt.Println(chain.FamilyNames())
	// Output:
	// chain(6 stages, 8 edges)
	// [LINEAR DIAMOND]
}
