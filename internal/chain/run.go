package chain

import (
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Run drives a request stream through a workflow injector and a cpusim
// engine on one global event loop: requests expand into their root
// stages at their arrival instants, each completion releases the
// downstream stages whose dependencies are met, and released stages
// re-enter the loop as ordinary arrivals (at the completion instant,
// plus any configured hop delay). With a non-nil lifecycle manager,
// every stage additionally acquires a container at its own arrival — a
// cold start shifts the instant the stage becomes runnable — and
// releases it the moment it finishes, so chains interact with per-app
// warm pools stage by stage.
//
// Run is a stage configuration of the unified host runtime
// (internal/host): lifecycle then chain hooks, in that order, on the
// runtime's Drive loop — engine events before same-instant arrivals,
// released stages before same-instant requests, exactly as the cluster
// loop orders them — so same-seed replays are byte-identical. The
// engine must be fresh. Turnarounds measured afterwards are
// end-to-end: the original arrivals are restored, so cold-start
// latency counts against each stage (and therefore the workflow).
func Run(src trace.Source, inj *Injector, mgr *lifecycle.Manager, eng *cpusim.Engine) (simtime.Time, error) {
	var stages []host.Stage
	if mgr != nil {
		stages = append(stages, lifecycle.NewHostStage(mgr))
	}
	stages = append(stages, NewHostStage(inj))
	return host.New(eng, stages...).Drive(src)
}
