package chain

import (
	"container/heap"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// arrival is one pending stage release awaiting its arrival instant.
type arrival struct {
	t   *task.Task
	seq uint64
}

// arrivalHeap orders pending releases by (arrival time, release
// sequence) so same-instant releases are submitted in the order their
// upstream completions produced them — the tie-break that keeps replays
// byte-identical.
type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].t.Arrival != h[j].t.Arrival {
		return h[i].t.Arrival < h[j].t.Arrival
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run drives a request stream through a workflow injector and a cpusim
// engine on one global event loop: requests expand into their root
// stages at their arrival instants, each completion releases the
// downstream stages whose dependencies are met, and released stages
// re-enter the loop as ordinary arrivals (at the completion instant,
// plus any configured hop delay). With a non-nil lifecycle manager,
// every stage additionally acquires a container at its own arrival — a
// cold start shifts the instant the stage becomes runnable — and
// releases it the moment it finishes, so chains interact with per-app
// warm pools stage by stage.
//
// Engine events fire before same-instant arrivals, exactly as the
// cluster loop orders them, so same-seed replays are byte-identical.
// Run installs the engine's tracer to observe completions; the engine
// must be fresh. Turnarounds measured afterwards are end-to-end: the
// original arrivals are restored, so cold-start latency counts against
// each stage (and therefore the workflow).
func Run(src trace.Source, inj *Injector, mgr *lifecycle.Manager, eng *cpusim.Engine) (simtime.Time, error) {
	owner := map[*task.Task]*lifecycle.Container{}
	orig := map[*task.Task]simtime.Time{}
	var tasks []*task.Task
	var pend arrivalHeap
	var seq uint64

	// submit hands a stage (or plain invocation) to the engine at its
	// arrival instant, acquiring its container first when lifecycle
	// modeling is on.
	submit := func(t *task.Task) {
		orig[t] = t.Arrival
		tasks = append(tasks, t)
		if mgr != nil {
			delay, c := mgr.Acquire(t.Arrival, t.App)
			owner[t] = c
			if delay > 0 {
				t.Arrival += delay
			}
		}
		eng.Submit(t)
	}

	eng.SetTracer(func(ev cpusim.TraceEvent) {
		if ev.Kind != cpusim.TraceFinish {
			return
		}
		if mgr != nil {
			if c := owner[ev.Task]; c != nil {
				mgr.Release(ev.At, c)
				delete(owner, ev.Task)
			}
		}
		for _, nt := range inj.OnFinish(ev.Task) {
			// Released stages are not submitted mid-event: they queue
			// until the loop's clock reaches their arrival, so lifecycle
			// state always advances in global time order.
			heap.Push(&pend, arrival{t: nt, seq: seq})
			seq++
		}
	})

	next, more := src.Next()
	for {
		// The engine's earliest event, but only while it has unfinished
		// work: idle engines may hold re-arming timer events (the SFS
		// monitor) that would spin forever.
		evT := simtime.Infinity
		if eng.Pending() > 0 {
			evT = eng.NextEventTime()
		}
		arrT := simtime.Infinity
		fromHeap := false
		if pend.Len() > 0 {
			arrT = pend[0].t.Arrival
			fromHeap = true
		}
		if more && next.Arrival < arrT {
			// Released stages precede same-instant requests: they
			// originate from earlier completions.
			arrT = next.Arrival
			fromHeap = false
		}
		if evT == simtime.Infinity && arrT == simtime.Infinity {
			break
		}
		if evT <= arrT {
			// Completions free containers (and release stages) the next
			// arrival can see.
			eng.StepEvent()
			continue
		}
		if fromHeap {
			submit(heap.Pop(&pend).(arrival).t)
			continue
		}
		for _, rt := range inj.Expand(next) {
			submit(rt)
		}
		next, more = src.Next()
	}
	if err := trace.Err(src); err != nil {
		return eng.Now(), err
	}
	// Restore end-to-end arrivals: turnaround and RTE must charge the
	// cold start to the stage, not hide it.
	for _, t := range tasks {
		t.Arrival = orig[t]
	}
	return eng.Now(), nil
}
