// Package chain is the function-chain workflow layer: real serverless
// applications are rarely single invocations — a request fans through a
// chain (or DAG) of functions, and the end-to-end response time the
// user sees is the composition of every stage's queueing delay. The
// paper evaluates per-invocation metrics; this layer measures how the
// scheduler's per-stage wins (or losses) compound across stages, the
// regime data-driven serverless scheduling targets (Przybylski et al.)
// and where wrong decisions are most costly under bursty load (Kaffes
// et al.).
//
// A workflow Spec is a DAG of Stages declared per application: when a
// request for that application arrives, every stage's payload is
// sampled up front (from internal/dist, in stage order, so sampling
// never depends on scheduling), the root stages are released at the
// request's arrival, and each completion releases the downstream stages
// whose dependencies are all met — fan-out when several stages depend
// on one, fan-in when one stage depends on several. The Injector is the
// driver-facing state machine: Expand turns a request into its root
// stage tasks, OnFinish turns a completion into the stage tasks it
// releases, and Workflows reports per-workflow end-to-end turnaround
// and slowdown (internal/metrics.Workflow).
//
// Determinism: an Injector is a deterministic function of its Config
// and the sequence of Expand/OnFinish calls. Drivers issue those calls
// in simulation order — chain.Run, internal/cluster, and internal/faas
// all process completions before same-instant arrivals — so the same
// seed and chain spec replay byte-identically, standalone or across a
// cluster.
package chain

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/task"
)

// Stage is one function of a workflow DAG.
type Stage struct {
	// Name labels the stage's invocations (their task App, which is
	// also the warm-pool key in internal/lifecycle). Empty derives
	// "<requestApp>#<index>", so one Spec can serve many applications.
	Name string
	// Service samples the stage's CPU demand per workflow instance. Nil
	// inherits the triggering request's service time, so chains built
	// from nil-Service stages replay the request's sampled payload at
	// every stage.
	Service dist.Distribution
	// Deps are the upstream stage indices that must all complete before
	// this stage is released. Each must be smaller than the stage's own
	// index (edges point forward), which makes every Spec acyclic by
	// construction. An empty Deps marks a root stage, released at the
	// request's arrival.
	Deps []int
}

// Spec is a workflow: a DAG of stages in topological order.
type Spec struct {
	Stages []Stage
}

// Validate checks the spec's structural invariants: at least one stage,
// and only forward, non-duplicate dependency edges.
func (s Spec) Validate() error {
	if len(s.Stages) == 0 {
		return fmt.Errorf("chain: spec needs at least one stage")
	}
	for i, st := range s.Stages {
		seen := map[int]bool{}
		for _, d := range st.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("chain: stage %d depends on %d; edges must point forward (dep < stage)", i, d)
			}
			if seen[d] {
				return fmt.Errorf("chain: stage %d lists dependency %d twice", i, d)
			}
			seen[d] = true
		}
	}
	return nil
}

// ServiceFactor returns the chain's mean total CPU demand as a multiple
// of the triggering request's mean service time: nil-Service stages
// contribute 1x, sampled stages contribute Mean()/rootMean. Load
// calibration divides a per-request offered load by this factor so a
// chain workload offers the requested load in aggregate.
func (s Spec) ServiceFactor(rootMean time.Duration) float64 {
	f := 0.0
	for _, st := range s.Stages {
		if st.Service == nil || rootMean <= 0 {
			f++
			continue
		}
		f += float64(st.Service.Mean()) / float64(rootMean)
	}
	return f
}

// String implements fmt.Stringer with the spec's shape.
func (s Spec) String() string {
	edges := 0
	for _, st := range s.Stages {
		edges += len(st.Deps)
	}
	return fmt.Sprintf("chain(%d stages, %d edges)", len(s.Stages), edges)
}

// Config assembles an Injector.
type Config struct {
	// Specs maps request application names to their workflows. Requests
	// for unlisted applications pass through as plain invocations.
	Specs map[string]Spec
	// Default, when non-nil, applies to every application without a
	// Specs entry — how the CLIs chain an entire trace behind one
	// -chain flag.
	Default *Spec
	// Seed drives stage payload sampling.
	Seed uint64
	// Hop, when non-nil, samples a per-release dispatch delay added to
	// each downstream stage's arrival — the platform cost of the
	// internal invocation hop (internal/faas wires its worker+sandbox
	// overheads here). Nil models free internal dispatch, the simulator
	// default.
	Hop func() time.Duration
}

// stageIDBase is the first task ID the Injector assigns to sampled
// stage tasks. Root stages keep their request's ID; the high range
// keeps injected IDs disjoint from any realistic trace's IDs.
const stageIDBase = 1 << 30

// compiled is a validated spec plus its downstream adjacency.
type compiled struct {
	spec     Spec
	children [][]int // children[i] = stages that list i in Deps
}

func compile(spec Spec) (*compiled, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &compiled{spec: spec, children: make([][]int, len(spec.Stages))}
	for i, st := range spec.Stages {
		for _, d := range st.Deps {
			c.children[d] = append(c.children[d], i)
		}
	}
	return c, nil
}

// instance is one in-flight workflow.
type instance struct {
	c         *compiled
	wf        metrics.Workflow
	tasks     []*task.Task
	waiting   []int // unfinished dependency count per stage
	remaining int
	last      *task.Task // last-finishing stage task, set at completion
}

// stageRef locates a task inside its workflow.
type stageRef struct {
	inst  *instance
	stage int
}

// Injector is the workflow state machine one simulation run drives. It
// is single-use and not safe for concurrent use; drivers call Expand
// for requests and OnFinish for completions in simulation order.
type Injector struct {
	cfg       Config
	specs     map[string]*compiled
	def       *compiled
	r         *rng.RNG
	nextID    int
	byTask    map[*task.Task]stageRef
	instances []*instance
	pending   int
}

// NewInjector validates every spec and builds the injector.
func NewInjector(cfg Config) (*Injector, error) {
	in := &Injector{
		cfg:    cfg,
		specs:  map[string]*compiled{},
		r:      rng.New(cfg.Seed ^ 0xc4a1),
		nextID: stageIDBase,
		byTask: map[*task.Task]stageRef{},
	}
	for app, spec := range cfg.Specs {
		c, err := compile(spec)
		if err != nil {
			return nil, fmt.Errorf("%w (app %q)", err, app)
		}
		in.specs[app] = c
	}
	if cfg.Default != nil {
		c, err := compile(*cfg.Default)
		if err != nil {
			return nil, fmt.Errorf("%w (default spec)", err)
		}
		in.def = c
	}
	return in, nil
}

// lookup resolves the workflow spec for a request app (nil = plain
// invocation).
func (in *Injector) lookup(app string) *compiled {
	if c, ok := in.specs[app]; ok {
		return c
	}
	return in.def
}

// Chained reports whether requests for app expand into a workflow.
func (in *Injector) Chained(app string) bool { return in.lookup(app) != nil }

// Expand consumes one request invocation. For an application with a
// registered spec it instantiates the workflow — sampling every stage's
// payload now, in stage order, so the sample stream depends only on
// request order — and returns the root stage tasks, all arriving at the
// request's arrival time (the request task itself becomes stage 0).
// Requests for unregistered applications are returned unchanged and
// untracked. Drivers must call Expand in arrival order.
func (in *Injector) Expand(t *task.Task) []*task.Task {
	c := in.lookup(t.App)
	if c == nil {
		return []*task.Task{t}
	}

	reqApp, reqService := t.App, t.Service
	inst := &instance{
		c: c,
		wf: metrics.Workflow{
			ID:      t.ID,
			App:     reqApp,
			Stages:  len(c.spec.Stages),
			Arrival: t.Arrival,
			Finish:  -1,
		},
		tasks:     make([]*task.Task, len(c.spec.Stages)),
		waiting:   make([]int, len(c.spec.Stages)),
		remaining: len(c.spec.Stages),
	}

	var roots []*task.Task
	longest := make([]time.Duration, len(c.spec.Stages))
	for i, sg := range c.spec.Stages {
		svc := reqService
		if sg.Service != nil {
			if svc = sg.Service.Sample(in.r); svc <= 0 {
				svc = time.Millisecond
			}
		}
		var st *task.Task
		if i == 0 {
			// The request task is stage 0: it keeps its ID (the
			// workflow's ID) and, when the stage inherits its service,
			// its I/O profile.
			st = t
			if sg.Service != nil {
				st.Service = svc
				st.IOOps = nil // sampled payloads replace the request's I/O shape
			}
		} else {
			st = task.New(in.nextID, t.Arrival, svc)
			in.nextID++
			st.Weight = t.Weight
		}
		st.App = sg.Name
		if st.App == "" {
			st.App = fmt.Sprintf("%s#%d", reqApp, i)
		}
		inst.tasks[i] = st
		inst.waiting[i] = len(sg.Deps)
		in.byTask[st] = stageRef{inst: inst, stage: i}
		if len(sg.Deps) == 0 {
			roots = append(roots, st)
		}

		// Critical path: a stage's earliest uncontended completion is
		// its own ideal duration after its slowest dependency.
		longest[i] = st.IdealDuration()
		for _, d := range sg.Deps {
			if longest[d]+st.IdealDuration() > longest[i] {
				longest[i] = longest[d] + st.IdealDuration()
			}
		}
		if longest[i] > inst.wf.Ideal {
			inst.wf.Ideal = longest[i]
		}
	}
	in.instances = append(in.instances, inst)
	in.pending++
	return roots
}

// OnFinish records a completed invocation at its Finish time and
// returns the downstream stage tasks it releases, each arriving at the
// completion instant (plus the configured Hop delay). It is safe to
// call for tasks that are not chain stages (returns nil). The last
// completion of a workflow seals its end-to-end result.
func (in *Injector) OnFinish(t *task.Task) []*task.Task {
	ref, ok := in.byTask[t]
	if !ok {
		return nil
	}
	delete(in.byTask, t)
	inst := ref.inst
	inst.remaining--
	if inst.remaining == 0 {
		inst.wf.Finish = t.Finish
		inst.last = t
		in.pending--
	}
	var released []*task.Task
	for _, s := range inst.c.children[ref.stage] {
		inst.waiting[s]--
		if inst.waiting[s] > 0 {
			continue
		}
		at := t.Finish
		if in.cfg.Hop != nil {
			at += in.cfg.Hop()
		}
		inst.tasks[s].Arrival = at
		released = append(released, inst.tasks[s])
	}
	return released
}

// Pending returns the number of workflows with unfinished stages.
func (in *Injector) Pending() int { return in.pending }

// Len returns the number of workflows instantiated so far (finished or
// not) — the index domain of Final, AdjustFinish, and AdjustArrival.
func (in *Injector) Len() int { return len(in.instances) }

// Workflows returns every workflow's end-to-end result in request
// arrival order (unfinished workflows report Finish -1).
func (in *Injector) Workflows() []metrics.Workflow {
	out := make([]metrics.Workflow, len(in.instances))
	for i, inst := range in.instances {
		out[i] = inst.wf
	}
	return out
}

// Final returns workflow i's last-finishing stage task, or nil while
// the workflow is unfinished. internal/faas uses it to charge the
// response path to the stage that actually returns to the caller.
func (in *Injector) Final(i int) *task.Task { return in.instances[i].last }

// AdjustFinish shifts workflow i's recorded end-to-end finish by d —
// the hook internal/faas uses to append the platform's response-path
// overhead after the simulation completes. A no-op on unfinished
// workflows.
func (in *Injector) AdjustFinish(i int, d time.Duration) {
	if in.instances[i].wf.Finish >= 0 {
		in.instances[i].wf.Finish += d
	}
}

// AdjustArrival shifts workflow i's recorded request arrival by d (the
// faas pre-overhead restoration, mirroring what RunTrace does to task
// arrivals).
func (in *Injector) AdjustArrival(i int, d time.Duration) {
	in.instances[i].wf.Arrival += d
}

// RootID returns workflow i's triggering request ID.
func (in *Injector) RootID(i int) int { return in.instances[i].wf.ID }
