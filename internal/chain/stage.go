package chain

import (
	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// HostStage adapts a workflow Injector to the host-runtime stage
// pipeline: admitted requests expand into their root stages, and each
// completion releases the downstream stages whose dependencies are met
// back into the runtime as future arrivals (at the completion instant,
// plus any configured hop delay). Released stages are not submitted
// mid-event: the runtime queues them until its loop clock reaches
// their arrival, so lifecycle state always advances in global time
// order.
//
// (It is named HostStage because Stage in this package is a workflow
// stage — one function of a chain — not a pipeline hook.)
type HostStage struct {
	host.Base
	inj *Injector
	rt  *host.Runtime
}

var (
	_ host.Stage    = (*HostStage)(nil)
	_ host.Expander = (*HostStage)(nil)
	_ host.Binder   = (*HostStage)(nil)
)

// NewHostStage wraps inj as a pipeline stage.
func NewHostStage(inj *Injector) *HostStage {
	return &HostStage{inj: inj}
}

// BindRuntime implements host.Binder: released stages re-enter rt.
func (s *HostStage) BindRuntime(rt *host.Runtime) { s.rt = rt }

// Expand implements host.Expander: a chained request becomes its root
// stages, all arriving at the request instant.
func (s *HostStage) Expand(t *task.Task) []*task.Task { return s.inj.Expand(t) }

// OnFinish releases the downstream stages t's completion unblocks.
func (s *HostStage) OnFinish(at simtime.Time, t *task.Task) {
	for _, nt := range s.inj.OnFinish(t) {
		s.rt.Release(nt)
	}
}
