package chain

import (
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/registry"
)

// FamilyConfig carries the construction parameters of a named workflow
// family, mirroring the scheduler/dispatcher/keep-alive registries'
// factory configs.
type FamilyConfig struct {
	// Depth scales the family: LINEAR chains Depth stages; DIAMOND fans
	// out to Depth parallel branches between an entry and a join stage.
	// Non-positive defaults to 3.
	Depth int
	// Service samples each stage's payload; nil inherits the triggering
	// request's service time (every stage replays the request's sampled
	// duration).
	Service dist.Distribution
}

func (cfg FamilyConfig) depth() int {
	if cfg.Depth <= 0 {
		return 3
	}
	return cfg.Depth
}

// Linear returns a depth-stage linear chain: stage i runs after stage
// i-1, the canonical sequential workflow.
func Linear(cfg FamilyConfig) Spec {
	depth := cfg.depth()
	s := Spec{Stages: make([]Stage, depth)}
	for i := range s.Stages {
		s.Stages[i] = Stage{Service: cfg.Service}
		if i > 0 {
			s.Stages[i].Deps = []int{i - 1}
		}
	}
	return s
}

// Diamond returns a fan-out/fan-in DAG: an entry stage releases Depth
// parallel branches, and a join stage runs once every branch completes
// (Depth+2 stages in total).
func Diamond(cfg FamilyConfig) Spec {
	width := cfg.depth()
	s := Spec{Stages: make([]Stage, width+2)}
	s.Stages[0] = Stage{Service: cfg.Service}
	joinDeps := make([]int, width)
	for i := 0; i < width; i++ {
		s.Stages[1+i] = Stage{Service: cfg.Service, Deps: []int{0}}
		joinDeps[i] = 1 + i
	}
	s.Stages[width+1] = Stage{Service: cfg.Service, Deps: joinDeps}
	return s
}

// reg maps canonical names to family constructors in presentation
// order — the fourth registry on the shared internal/registry helper
// alongside internal/schedulers, internal/cluster, and
// internal/lifecycle, so the CLIs select workflow shapes by flag
// without the recognized set drifting between tools.
var reg = registry.New[func(cfg FamilyConfig) Spec]("workflow family").
	Add("LINEAR", Linear).
	Add("DIAMOND", Diamond)

// FamilyNames returns the canonical workflow family names NewFamily
// recognizes.
func FamilyNames() []string { return reg.Names() }

// NewFamily constructs a workflow spec by case-insensitive family name.
func NewFamily(name string, cfg FamilyConfig) (Spec, error) {
	mk, err := reg.Lookup(name)
	if err != nil {
		return Spec{}, err
	}
	return mk(cfg), nil
}

// sortedFamilyNames is used by tests to compare registries without
// caring about presentation order.
func sortedFamilyNames() []string { return reg.SortedNames() }
