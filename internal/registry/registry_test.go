package registry

import (
	"strings"
	"testing"
)

func TestLookupIsCaseInsensitive(t *testing.T) {
	r := New[func() int]("widget").
		Add("ALPHA", func() int { return 1 }).
		Add("BETA", func() int { return 2 })
	for _, name := range []string{"ALPHA", "alpha", "Alpha"} {
		mk, err := r.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if got := mk(); got != 1 {
			t.Fatalf("Lookup(%q) resolved to constructor returning %d, want 1", name, got)
		}
	}
}

func TestUnknownNameErrorShape(t *testing.T) {
	r := New[int]("widget").Add("ALPHA", 1).Add("BETA", 2)
	_, err := r.Lookup("nope")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	want := `unknown widget "nope" (want one of ALPHA, BETA)`
	if err.Error() != want {
		t.Fatalf("error %q, want %q", err.Error(), want)
	}
}

func TestNamesOrderAndIsolation(t *testing.T) {
	r := New[int]("widget").Add("ZULU", 0).Add("ALPHA", 1)
	if got := strings.Join(r.Names(), ","); got != "ZULU,ALPHA" {
		t.Fatalf("Names() = %s, want registration order ZULU,ALPHA", got)
	}
	if got := strings.Join(r.SortedNames(), ","); got != "ALPHA,ZULU" {
		t.Fatalf("SortedNames() = %s, want ALPHA,ZULU", got)
	}
	r.Names()[0] = "MUTATED"
	if r.names[0] != "ZULU" {
		t.Fatal("Names() exposed internal slice")
	}
}

func TestAddPanicsOnDuplicateAndNonCanonical(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { New[int]("widget").Add("A", 1).Add("A", 2) })
	mustPanic("lower-case", func() { New[int]("widget").Add("lower", 1) })
}
