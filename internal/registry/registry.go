// Package registry is the one generic name → constructor table behind
// every by-flag selection surface in the repo: schedulers
// (internal/schedulers), dispatch policies (internal/cluster),
// keep-alive policies (internal/lifecycle), workflow families
// (internal/chain), and scenario families (internal/workload). Each of
// those packages used to carry its own copy-pasted map + names slice +
// lookup; this helper gives them shared case-insensitive lookup and
// one unknown-name error shape, so the behavior cannot drift between
// registries (and docs_test.go's README/GUIDE sync checks cover them
// all the same way).
package registry

import (
	"fmt"
	"sort"
	"strings"
)

// Registry maps canonical names to constructors of type T (typically a
// factory func). Names are matched case-insensitively; the
// presentation order is the registration order.
type Registry[T any] struct {
	kind    string
	names   []string
	entries map[string]T
}

// New creates an empty registry. kind is the human-readable noun used
// in unknown-name errors ("scheduler", "dispatch policy", …).
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, entries: map[string]T{}}
}

// Add registers a constructor under its canonical (upper-case) name
// and returns the registry for chained declarations. It panics on a
// duplicate or non-canonical name: registries are package-level
// literals, so that is a programming error, not an input error.
func (r *Registry[T]) Add(name string, ctor T) *Registry[T] {
	if name != strings.ToUpper(name) {
		panic(fmt.Sprintf("registry: %s name %q is not canonical upper-case", r.kind, name))
	}
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s name %q", r.kind, name))
	}
	r.entries[name] = ctor
	r.names = append(r.names, name)
	return r
}

// Names returns the canonical names in presentation (registration)
// order, as a fresh slice.
func (r *Registry[T]) Names() []string { return append([]string(nil), r.names...) }

// SortedNames returns the canonical names sorted, for comparing
// registries without caring about presentation order.
func (r *Registry[T]) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// Lookup resolves a case-insensitive name to its constructor. The
// unknown-name error lists every recognized name in presentation
// order.
func (r *Registry[T]) Lookup(name string) (T, error) {
	v, ok := r.entries[strings.ToUpper(name)]
	if !ok {
		var zero T
		return zero, fmt.Errorf("unknown %s %q (want one of %s)", r.kind, name, strings.Join(r.names, ", "))
	}
	return v, nil
}
