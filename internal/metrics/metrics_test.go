package metrics

import (
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// mkTask builds a finished task with the given service and turnaround.
func mkTask(id int, service, turnaround time.Duration) *task.Task {
	t := task.New(id, 0, service)
	t.CPUUsed = service
	t.MarkFinished(turnaround)
	return t
}

func TestRunBasics(t *testing.T) {
	r := Run{Tasks: []*task.Task{
		mkTask(0, ms(10), ms(20)),
		mkTask(1, ms(30), ms(30)),
		task.New(2, 0, ms(5)), // unfinished: excluded
	}}
	tas := r.Turnarounds()
	if len(tas) != 2 {
		t.Fatalf("turnarounds %v", tas)
	}
	if r.MeanTurnaround() != ms(25) {
		t.Fatalf("mean %v", r.MeanTurnaround())
	}
	rtes := r.RTEs()
	if len(rtes) != 2 || rtes[0] != 0.5 || rtes[1] != 1.0 {
		t.Fatalf("rtes %v", rtes)
	}
	if got := r.FractionRTEAtLeast(0.95); got != 0.5 {
		t.Fatalf("frac %v", got)
	}
	cdf := r.DurationCDF()
	if len(cdf) != 2 || cdf[1].F != 1 {
		t.Fatalf("cdf %v", cdf)
	}
}

func TestPercentilesOrder(t *testing.T) {
	var tasks []*task.Task
	for i := 1; i <= 100; i++ {
		tasks = append(tasks, mkTask(i, ms(i), ms(i)))
	}
	r := Run{Tasks: tasks}
	ps := r.Percentiles(StandardPercentiles)
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatalf("percentiles not monotone: %v", ps)
		}
	}
	if ps[0] < ms(49) || ps[0] > ms(52) {
		t.Fatalf("p50 = %v", ps[0])
	}
}

func TestCompareRuns(t *testing.T) {
	// Baseline: everything takes 100ms. Treatment: task 0-8 take 10ms
	// (10x faster), task 9 takes 200ms (2x slower).
	var base, treat []*task.Task
	for i := 0; i < 10; i++ {
		base = append(base, mkTask(i, ms(10), ms(100)))
		if i < 9 {
			treat = append(treat, mkTask(i, ms(10), ms(10)))
		} else {
			treat = append(treat, mkTask(i, ms(10), ms(200)))
		}
	}
	sum := CompareRuns(Run{Tasks: base}, Run{Tasks: treat})
	if sum.ShortFraction != 0.9 || sum.LongFraction != 0.1 {
		t.Fatalf("fractions %+v", sum)
	}
	if sum.ShortSpeedup < 9.99 || sum.ShortSpeedup > 10.01 {
		t.Fatalf("short speedup %v", sum.ShortSpeedup)
	}
	if sum.ShortSpeedupArith < 9.99 || sum.ShortSpeedupArith > 10.01 {
		t.Fatalf("short arith %v", sum.ShortSpeedupArith)
	}
	if sum.LongSlowdown < 1.99 || sum.LongSlowdown > 2.01 {
		t.Fatalf("long slowdown %v", sum.LongSlowdown)
	}
	if sum.MedianSpeedup != 10 {
		t.Fatalf("median %v", sum.MedianSpeedup)
	}
	// Overall mean: 100 / (9*10+200)/10 = 100/29.
	if sum.OverallSpeedup < 3.44 || sum.OverallSpeedup > 3.45 {
		t.Fatalf("overall %v", sum.OverallSpeedup)
	}
}

func TestCompareRunsEmpty(t *testing.T) {
	sum := CompareRuns(Run{}, Run{})
	if sum.ShortFraction != 0 || sum.OverallSpeedup != 0 {
		t.Fatalf("empty compare %+v", sum)
	}
}

func TestCompareRunsMatchesByID(t *testing.T) {
	base := []*task.Task{mkTask(1, ms(10), ms(100))}
	treat := []*task.Task{mkTask(2, ms(10), ms(10)), mkTask(1, ms(10), ms(50))}
	sum := CompareRuns(Run{Tasks: base}, Run{Tasks: treat})
	// Only ID 1 matches: ratio 2.
	if sum.ShortFraction != 1 || sum.MedianSpeedup != 2 {
		t.Fatalf("%+v", sum)
	}
}

func TestCtxSwitchRatios(t *testing.T) {
	b := mkTask(0, ms(10), ms(10))
	b.CtxSwitches = 9
	s := mkTask(0, ms(10), ms(10))
	s.CtxSwitches = 0
	ratios := CtxSwitchRatios(Run{Tasks: []*task.Task{b}}, Run{Tasks: []*task.Task{s}})
	if len(ratios) != 1 || ratios[0] != 10 {
		t.Fatalf("ratios %v", ratios)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"name", "p50"}, [][]string{{"CFS", "100ms"}, {"SFS", "9ms"}})
	if !strings.Contains(out, "CFS") || !strings.Contains(out, "SFS") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(ms(1500)); got != "1500.0ms" {
		t.Fatalf("got %q", got)
	}
	if got := FormatDuration(22100 * time.Millisecond); got != "22.10s" {
		t.Fatalf("got %q", got)
	}
}

func TestRenderCDF(t *testing.T) {
	r := Run{Tasks: []*task.Task{mkTask(0, ms(10), ms(10)), mkTask(1, ms(20), ms(20))}}
	out := RenderCDF("test", r.DurationCDF())
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p99") {
		t.Fatalf("render:\n%s", out)
	}
	if empty := RenderCDF("none", nil); !strings.Contains(empty, "empty") {
		t.Fatal("empty CDF render")
	}
}

func TestColdStartStats(t *testing.T) {
	c := ColdStartStats{Invocations: 10, ColdStarts: 4, ColdLatency: ms(1000)}
	if got := c.WarmHits(); got != 6 {
		t.Fatalf("warm hits %d, want 6", got)
	}
	if got := c.WarmHitRatio(); got != 0.6 {
		t.Fatalf("warm-hit ratio %f, want 0.6", got)
	}
	if got := c.MeanColdLatency(); got != ms(250) {
		t.Fatalf("mean cold latency %v, want 250ms", got)
	}
	if (ColdStartStats{}).WarmHitRatio() != 0 || (ColdStartStats{}).MeanColdLatency() != 0 {
		t.Fatal("zero-value stats must not divide by zero")
	}
	header, cols := ColdStartHeader(), c.Columns()
	if len(header) != len(cols) {
		t.Fatalf("header has %d columns, row %d", len(header), len(cols))
	}
	row := strings.Join(cols, " ")
	for _, want := range []string{"4", "60.0%", "250.0ms"} {
		if !strings.Contains(row, want) {
			t.Fatalf("columns %q missing %q", row, want)
		}
	}
}
