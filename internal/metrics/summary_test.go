package metrics

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
)

// lognormalRun builds a run with heavy-tailed turnarounds, the shape the
// simulator actually produces.
func lognormalRun(n int, seed uint64) Run {
	r := rng.New(seed)
	tasks := make([]*task.Task, n)
	for i := range tasks {
		ta := time.Duration(math.Exp(math.Log(50e6) + 1.2*r.NormFloat64()))
		tasks[i] = mkTask(i, ta/2, ta)
	}
	return Run{Tasks: tasks}
}

// TestExactModeByteIdentical: with ExactQuantiles set, Percentiles must
// reproduce the pre-streaming implementation — a sort-based
// stats.DurationPercentiles over the turnaround slice — bit for bit,
// and therefore every rendered table built on it.
func TestExactModeByteIdentical(t *testing.T) {
	ExactQuantiles = true
	defer func() { ExactQuantiles = false }()

	r := lognormalRun(5000, 7)
	got := r.Percentiles(StandardPercentiles)
	want := stats.DurationPercentiles(r.Turnarounds(), StandardPercentiles)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %v: exact mode %v != pre-refactor %v",
				StandardPercentiles[i], got[i], want[i])
		}
	}
	gotStr := FormatDuration(got[0])
	wantStr := FormatDuration(want[0])
	if gotStr != wantStr {
		t.Fatalf("rendered cell %q != %q", gotStr, wantStr)
	}
}

// TestStreamingWithinTolerance: the default streaming estimates must
// land within a few percent of the exact sort on realistic samples.
func TestStreamingWithinTolerance(t *testing.T) {
	r := lognormalRun(20000, 11)
	exact := stats.DurationPercentiles(r.Turnarounds(), []float64{50, 90, 99})
	got := r.Percentiles([]float64{50, 90, 99})
	for i, tol := range []float64{0.05, 0.05, 0.10} {
		relErr := math.Abs(float64(got[i]-exact[i])) / float64(exact[i])
		if relErr > tol {
			t.Errorf("rank %d: streaming %v vs exact %v (rel err %.3f > %.2f)",
				i, got[i], exact[i], relErr, tol)
		}
	}
}

// TestSummarySinglePassMatchesMultiPass: Summarize's moments must agree
// with the independent MeanTurnaround path, and extreme ranks map to
// tracked min/max.
func TestSummarySinglePassMatchesMultiPass(t *testing.T) {
	r := lognormalRun(1000, 3)
	sum := r.Summarize(0, 50, 100)
	if sum.Mean() != r.MeanTurnaround() {
		t.Fatalf("summary mean %v != MeanTurnaround %v", sum.Mean(), r.MeanTurnaround())
	}
	if int(sum.N()) != len(r.Turnarounds()) {
		t.Fatalf("summary N %d != %d", sum.N(), len(r.Turnarounds()))
	}
	ps := sum.Percentiles()
	exact := stats.DurationPercentiles(r.Turnarounds(), []float64{0, 50, 100})
	if ps[0] != exact[0] || ps[2] != exact[2] {
		t.Fatalf("extreme ranks: got (%v, %v), want exact (%v, %v)", ps[0], ps[2], exact[0], exact[2])
	}
}

// TestSummaryEmptyRun: no finished tasks must not panic or divide by
// zero anywhere.
func TestSummaryEmptyRun(t *testing.T) {
	r := Run{Tasks: []*task.Task{task.New(0, 0, time.Millisecond)}}
	sum := r.Summarize(50, 99)
	if sum.N() != 0 || sum.Mean() != 0 {
		t.Fatalf("empty run: N=%d mean=%v", sum.N(), sum.Mean())
	}
	for _, p := range sum.Percentiles() {
		if p != 0 {
			t.Fatalf("empty run percentile %v", p)
		}
	}
}

// TestSummaryEmptyAndSingleBothModes: a run with zero or one finished
// task must report zeros (never NaN, never a panic) for the moments and
// sane percentiles in both the streaming and the exact mode — the
// degenerate inputs a deadline-aborted or single-request simulation
// produces.
func TestSummaryEmptyAndSingleBothModes(t *testing.T) {
	defer func(old bool) { ExactQuantiles = old }(ExactQuantiles)
	for _, exact := range []bool{false, true} {
		ExactQuantiles = exact

		// Empty: an unfinished task contributes nothing.
		empty := Run{Tasks: []*task.Task{task.New(0, 0, time.Millisecond)}}
		sum := empty.Summarize(50, 99, 99.9)
		if sum.N() != 0 || sum.Mean() != 0 || sum.Min() != 0 || sum.Max() != 0 {
			t.Fatalf("exact=%v: empty run moments N=%d mean=%v min=%v max=%v", exact, sum.N(), sum.Mean(), sum.Min(), sum.Max())
		}
		if std := sum.Std(); std != 0 || math.IsNaN(std) {
			t.Fatalf("exact=%v: empty run std %v, want 0", exact, std)
		}
		for _, p := range sum.Percentiles() {
			if p != 0 {
				t.Fatalf("exact=%v: empty run percentile %v, want 0", exact, p)
			}
		}
		if mt := empty.MeanTurnaround(); mt != 0 {
			t.Fatalf("exact=%v: empty run mean turnaround %v", exact, mt)
		}

		// Single finished task: every statistic is that sample.
		tk := task.New(0, 0, time.Millisecond)
		tk.MarkFinished(7 * time.Millisecond)
		single := Run{Tasks: []*task.Task{tk}}
		sum = single.Summarize(0, 50, 99, 100)
		if sum.N() != 1 || sum.Mean() != 7*time.Millisecond {
			t.Fatalf("exact=%v: single run N=%d mean=%v", exact, sum.N(), sum.Mean())
		}
		if std := sum.Std(); std != 0 || math.IsNaN(std) {
			t.Fatalf("exact=%v: single run std %v, want 0 (not NaN)", exact, std)
		}
		for i, p := range sum.Percentiles() {
			if p != 7*time.Millisecond {
				t.Fatalf("exact=%v: single run percentile %d = %v, want the sample", exact, i, p)
			}
		}
	}
}

// TestWorkflowRunDegenerate: the workflow-level summaries share the
// same zero guarantees.
func TestWorkflowRunDegenerate(t *testing.T) {
	empty := WorkflowRun{Workflows: []Workflow{{ID: 1, Finish: -1}}}
	if empty.Completed() != 0 || empty.MeanSlowdown() != 0 {
		t.Fatalf("unfinished-only run: completed=%d mean=%v", empty.Completed(), empty.MeanSlowdown())
	}
	for _, v := range empty.SlowdownPercentiles(50, 99) {
		if v != 0 {
			t.Fatalf("unfinished-only slowdown percentile %v", v)
		}
	}
	one := WorkflowRun{Workflows: []Workflow{{ID: 1, Arrival: 0, Finish: 10 * time.Millisecond, Ideal: 5 * time.Millisecond, Stages: 2}}}
	if one.Completed() != 1 || one.MeanSlowdown() != 2 {
		t.Fatalf("single workflow: completed=%d mean slowdown=%v, want 1/2.0", one.Completed(), one.MeanSlowdown())
	}
	if w := one.Workflows[0]; w.Turnaround() != 10*time.Millisecond {
		t.Fatalf("turnaround %v", w.Turnaround())
	}
	zeroIdeal := Workflow{Finish: 1, Ideal: 0}
	if s := zeroIdeal.Slowdown(); s != 0 || math.IsNaN(s) {
		t.Fatalf("zero-ideal slowdown %v, want 0", s)
	}
}
