// Package metrics extracts the paper's evaluation quantities from
// finished task sets: execution-duration distributions, run-time
// effectiveness (RTE), percentile breakdowns, context-switch ratios, and
// short/long speedup summaries.
//
// The central type is Run — a scheduler name plus the tasks it executed.
// Runs are cheap views over task slices (no copying), so one simulation
// can be sliced many ways: per arrival window (the synth-ramp
// experiment), per host (the cluster layer), or cluster-wide. Only
// finished tasks (Turnaround() >= 0) contribute to any statistic, which
// lets aborted or deadline-capped runs still report on what completed.
//
// CompareRuns matches tasks by ID across a baseline and a treatment of
// the same workload and produces the paper's headline split: the short
// majority's speedup versus the long minority's bounded slowdown (§I).
// Table and FormatDuration render results the way cmd/experiments and
// EXPERIMENTS.md present them.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
)

// StandardPercentiles are the breakdown points of the paper's Fig 8 and
// Fig 15.
var StandardPercentiles = []float64{50, 90, 99, 99.9, 99.99}

// Run summarizes one scheduler execution over a workload.
type Run struct {
	Scheduler string
	Load      float64
	Tasks     []*task.Task
}

// Turnarounds returns every finished task's turnaround time, in task ID
// order.
func (r Run) Turnarounds() []time.Duration {
	out := make([]time.Duration, 0, len(r.Tasks))
	for _, t := range r.Tasks {
		if ta := t.Turnaround(); ta >= 0 {
			out = append(out, ta)
		}
	}
	return out
}

// RTEs returns every finished task's run-time effectiveness.
func (r Run) RTEs() []float64 {
	out := make([]float64, 0, len(r.Tasks))
	for _, t := range r.Tasks {
		if t.Turnaround() >= 0 {
			out = append(out, t.RTE())
		}
	}
	return out
}

// DurationCDF returns the empirical turnaround CDF in milliseconds.
func (r Run) DurationCDF() []stats.CDFPoint {
	return stats.DurationCDF(r.Turnarounds())
}

// RTECDF returns the empirical RTE CDF.
func (r Run) RTECDF() []stats.CDFPoint {
	return stats.CDF(r.RTEs())
}

// Percentiles returns the turnaround values at the given percentile
// ranks. By default they are streaming P² estimates computed in one
// pass without retaining samples; set ExactQuantiles for the exact
// sort-based definition (validation mode).
func (r Run) Percentiles(ps []float64) []time.Duration {
	return r.Summarize(ps...).Percentiles()
}

// MeanTurnaround returns the mean turnaround across finished tasks.
func (r Run) MeanTurnaround() time.Duration {
	var o stats.Online
	for _, ta := range r.Turnarounds() {
		o.AddDuration(ta)
	}
	return o.MeanDuration()
}

// FractionRTEAtLeast returns the fraction of tasks with RTE >= bound
// (the paper's "93% of requests receive an RTE >= 0.95" style numbers).
func (r Run) FractionRTEAtLeast(bound float64) float64 {
	rtes := r.RTEs()
	if len(rtes) == 0 {
		return 0
	}
	n := 0
	for _, v := range rtes {
		if v >= bound {
			n++
		}
	}
	return float64(n) / float64(len(rtes))
}

// SpeedupSummary captures the paper's headline comparison (§I): the
// short majority improves by a large factor while the long minority
// regresses slightly.
type SpeedupSummary struct {
	ShortFraction     float64 // fraction of tasks classified as improved/short
	ShortSpeedup      float64 // geometric-mean factor by which they improved
	ShortSpeedupArith float64 // arithmetic-mean factor (the paper's 49.6x metric)
	LongFraction      float64
	LongSlowdown      float64 // geometric-mean factor by which the rest regressed
	LongSlowdownArith float64 // arithmetic-mean slowdown (the paper's 1.29x metric)
	MedianSpeedup     float64
	OverallSpeedup    float64 // ratio of mean turnarounds (baseline/treatment)
}

// CompareRuns computes per-task turnaround ratios baseline/treatment for
// the same workload (matched by task ID) and summarizes improvements
// versus regressions.
func CompareRuns(baseline, treatment Run) SpeedupSummary {
	base := map[int]time.Duration{}
	for _, t := range baseline.Tasks {
		if t.Turnaround() >= 0 {
			base[t.ID] = t.Turnaround()
		}
	}
	var ratios []float64
	var meanBase, meanTreat stats.Online
	for _, t := range treatment.Tasks {
		b, ok := base[t.ID]
		ta := t.Turnaround()
		if !ok || ta <= 0 {
			continue
		}
		ratios = append(ratios, float64(b)/float64(ta))
		meanBase.AddDuration(b)
		meanTreat.AddDuration(ta)
	}
	if len(ratios) == 0 {
		return SpeedupSummary{}
	}
	var sum SpeedupSummary
	var nShort, nLong int
	var logShort, logLong, sumShort, sumLong float64
	for _, r := range ratios {
		if r >= 1 {
			nShort++
			logShort += logOf(r)
			sumShort += r
		} else {
			nLong++
			logLong += logOf(1 / r)
			sumLong += 1 / r
		}
	}
	n := float64(len(ratios))
	sum.ShortFraction = float64(nShort) / n
	sum.LongFraction = float64(nLong) / n
	if nShort > 0 {
		sum.ShortSpeedup = expOf(logShort / float64(nShort))
		sum.ShortSpeedupArith = sumShort / float64(nShort)
	}
	if nLong > 0 {
		sum.LongSlowdown = expOf(logLong / float64(nLong))
		sum.LongSlowdownArith = sumLong / float64(nLong)
	}
	sum.MedianSpeedup = stats.Percentile(ratios, 50)
	if meanTreat.Mean() > 0 {
		sum.OverallSpeedup = meanBase.Mean() / meanTreat.Mean()
	}
	return sum
}

// CtxSwitchRatios returns, per matched task, the ratio of baseline
// context switches to treatment context switches (Fig 16). Both counts
// are offset by one so tasks with zero switches under the treatment
// produce finite ratios.
func CtxSwitchRatios(baseline, treatment Run) []float64 {
	base := map[int]int{}
	for _, t := range baseline.Tasks {
		base[t.ID] = t.CtxSwitches
	}
	out := make([]float64, 0, len(treatment.Tasks))
	for _, t := range treatment.Tasks {
		b, ok := base[t.ID]
		if !ok {
			continue
		}
		out = append(out, float64(b+1)/float64(t.CtxSwitches+1))
	}
	return out
}

// ColdStartStats summarizes a run's container cold-start behaviour:
// how many invocations found a warm container, how many paid a cold
// start, and the summed sampled cold-start latency. The lifecycle
// layer produces these; the reporting tables render them through
// ColdStartHeader and Columns.
type ColdStartStats struct {
	// Invocations is the total requests observed.
	Invocations int
	// ColdStarts is the number that created a container on demand.
	ColdStarts int
	// ColdLatency is the summed sampled cold-start latency.
	ColdLatency time.Duration
}

// WarmHits returns the invocations served by an already-warm container.
func (c ColdStartStats) WarmHits() int { return c.Invocations - c.ColdStarts }

// WarmHitRatio returns WarmHits / Invocations (0 when idle).
func (c ColdStartStats) WarmHitRatio() float64 {
	if c.Invocations == 0 {
		return 0
	}
	return float64(c.WarmHits()) / float64(c.Invocations)
}

// MeanColdLatency returns the mean sampled latency per cold start.
func (c ColdStartStats) MeanColdLatency() time.Duration {
	if c.ColdStarts == 0 {
		return 0
	}
	return c.ColdLatency / time.Duration(c.ColdStarts)
}

// ColdStartHeader returns the standard cold-start table columns,
// matching ColdStartStats.Columns cell for cell.
func ColdStartHeader() []string { return []string{"cold", "warm-hit", "cold-mean"} }

// Columns renders the stats as table cells in ColdStartHeader order.
func (c ColdStartStats) Columns() []string {
	return []string{
		fmt.Sprintf("%d", c.ColdStarts),
		fmt.Sprintf("%.1f%%", 100*c.WarmHitRatio()),
		FormatDuration(c.MeanColdLatency()),
	}
}

// Table renders labeled percentile rows as an aligned text table, the
// form the experiment harness prints for Fig 8/15.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders a duration in the unit the paper uses
// (milliseconds below 10 s, seconds above).
func FormatDuration(d time.Duration) string {
	if d < 10*time.Second {
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// RenderCDF produces a coarse ASCII rendering of a CDF for terminal
// inspection: one row per decile with the x value reached.
func RenderCDF(name string, cdf []stats.CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CDF %s\n", name)
	if len(cdf) == 0 {
		b.WriteString("  (empty)\n")
		return b.String()
	}
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0} {
		idx := sort.Search(len(cdf), func(i int) bool { return cdf[i].F >= f })
		if idx == len(cdf) {
			idx = len(cdf) - 1
		}
		fmt.Fprintf(&b, "  p%-5.1f %.3f\n", f*100, cdf[idx].X)
	}
	return b.String()
}

func logOf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

func expOf(x float64) float64 { return math.Exp(x) }
