package metrics

import (
	"time"

	"github.com/serverless-sched/sfs/internal/stats"
)

// ExactQuantiles switches every percentile computed through Summary
// (and therefore Run.Percentiles) from streaming P² estimation to the
// exact sort-based definition. The streaming default keeps large
// experiment sweeps O(1) in memory per percentile and sort-free; the
// exact mode exists for validation — tests flip it to check estimator
// tolerance and to reproduce the pre-streaming byte-exact outputs.
//
// The flag is read once per Summary at construction. It is a plain
// package variable because modes are a process-wide choice made at
// startup (cmd/experiments -exact, validation TestMains); it is not
// synchronized for concurrent toggling.
var ExactQuantiles = false

// Summary accumulates a run's turnaround statistics in one streaming
// pass: Welford moments (count, mean, min, max) plus one P² marker set
// per requested percentile rank. Unlike the sort-based helpers in
// internal/stats it never retains samples (except in exact mode), so
// summarizing a host, a window, or a whole cluster costs O(ranks) memory
// regardless of invocation count.
type Summary struct {
	ranks   []float64
	moments stats.Online
	est     []*stats.P2     // streaming mode, one per in-range rank
	samples []time.Duration // retained only in exact mode
	exact   bool
}

// NewSummary returns a streaming summary for the given percentile ranks
// (or an exact one when ExactQuantiles is set). Ranks at or beyond the
// extremes (<= 0, >= 100) are answered from the tracked min/max rather
// than a marker set.
func NewSummary(ranks ...float64) *Summary {
	s := &Summary{ranks: append([]float64(nil), ranks...), exact: ExactQuantiles}
	if !s.exact {
		s.est = make([]*stats.P2, len(s.ranks))
		for i, r := range s.ranks {
			if r > 0 && r < 100 {
				s.est[i] = stats.NewP2(r)
			}
		}
	}
	return s
}

// Add incorporates one turnaround sample.
func (s *Summary) Add(d time.Duration) {
	s.moments.AddDuration(d)
	if s.exact {
		s.samples = append(s.samples, d)
		return
	}
	for _, e := range s.est {
		if e != nil {
			e.AddDuration(d)
		}
	}
}

// N returns the number of samples.
func (s *Summary) N() int64 { return s.moments.N() }

// Mean returns the mean sample.
func (s *Summary) Mean() time.Duration { return s.moments.MeanDuration() }

// Std returns the sample standard deviation in nanoseconds.
func (s *Summary) Std() float64 { return s.moments.Std() }

// Min returns the smallest sample (0 if empty).
func (s *Summary) Min() time.Duration { return time.Duration(s.moments.Min()) }

// Max returns the largest sample (0 if empty).
func (s *Summary) Max() time.Duration { return time.Duration(s.moments.Max()) }

// Percentiles returns the values at the ranks the summary was built
// with, in the same order.
func (s *Summary) Percentiles() []time.Duration {
	if s.exact {
		return stats.DurationPercentiles(s.samples, s.ranks)
	}
	out := make([]time.Duration, len(s.ranks))
	for i, r := range s.ranks {
		switch {
		case s.moments.N() == 0:
			out[i] = 0
		case r <= 0:
			out[i] = s.Min()
		case r >= 100:
			out[i] = s.Max()
		default:
			out[i] = s.est[i].QuantileDuration()
		}
	}
	return out
}

// Summarize streams every finished task's turnaround through a Summary
// in one pass — the single-pass replacement for calling Percentiles and
// MeanTurnaround separately (each of which re-materialized the sample
// slice).
func (r Run) Summarize(ranks ...float64) *Summary {
	s := NewSummary(ranks...)
	for _, t := range r.Tasks {
		if ta := t.Turnaround(); ta >= 0 {
			s.Add(ta)
		}
	}
	return s
}
