package metrics

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/stats"
)

// Workflow is one function-chain instance's end-to-end outcome: a
// request that fanned through several stages (internal/chain), measured
// from the original request arrival to the completion of the last
// stage. It is the workflow-level counterpart of a task's turnaround —
// per-stage statistics live in the ordinary Run over the stage tasks,
// while Workflow captures how per-stage queueing compounds across the
// chain.
type Workflow struct {
	// ID is the triggering request's task ID (unique per trace).
	ID int
	// App is the request's application name (the workflow family).
	App string
	// Stages is the number of stages in the chain.
	Stages int
	// Arrival is the request's original arrival time.
	Arrival simtime.Time
	// Finish is the completion time of the chain's last stage, or -1
	// while any stage is unfinished (aborted or deadline-capped runs).
	Finish simtime.Time
	// Ideal is the critical-path duration on an uncontended machine:
	// the longest dependency path through the DAG, each stage
	// contributing its zero-interference duration (CPU + I/O).
	Ideal time.Duration
}

// Done reports whether every stage of the workflow finished.
func (w Workflow) Done() bool { return w.Finish >= 0 }

// Turnaround returns the end-to-end response time Finish-Arrival, or -1
// if the workflow is unfinished.
func (w Workflow) Turnaround() time.Duration {
	if !w.Done() {
		return -1
	}
	return w.Finish - w.Arrival
}

// Slowdown is the workflow-level slowdown metric: end-to-end turnaround
// divided by the critical-path ideal duration. 1.0 means every stage ran
// with zero queueing delay; per-stage delays compound multiplicatively
// along the chain. Unfinished workflows report 0.
func (w Workflow) Slowdown() float64 {
	ta := w.Turnaround()
	if ta < 0 || w.Ideal <= 0 {
		return 0
	}
	return float64(ta) / float64(w.Ideal)
}

// WorkflowRun summarizes one scheduler execution over a set of
// workflows, mirroring Run for tasks. Only finished workflows contribute
// to any statistic, so aborted runs still report on what completed.
type WorkflowRun struct {
	Scheduler string
	Workflows []Workflow
}

// Completed returns the number of finished workflows.
func (r WorkflowRun) Completed() int {
	n := 0
	for _, w := range r.Workflows {
		if w.Done() {
			n++
		}
	}
	return n
}

// MeanSlowdown returns the arithmetic-mean end-to-end slowdown across
// finished workflows (0 when none finished).
func (r WorkflowRun) MeanSlowdown() float64 {
	var o stats.Online
	for _, w := range r.Workflows {
		if w.Done() {
			o.Add(w.Slowdown())
		}
	}
	return o.Mean()
}

// SlowdownPercentiles returns the end-to-end slowdown values at the
// given percentile ranks (exact, sort-based: workflow counts are small
// relative to invocation counts).
func (r WorkflowRun) SlowdownPercentiles(ranks ...float64) []float64 {
	vals := make([]float64, 0, len(r.Workflows))
	for _, w := range r.Workflows {
		if w.Done() {
			vals = append(vals, w.Slowdown())
		}
	}
	out := make([]float64, len(ranks))
	for i, p := range ranks {
		out[i] = stats.Percentile(vals, p)
	}
	return out
}

// Summarize streams every finished workflow's end-to-end turnaround
// through a Summary (the same streaming accumulator the task tables
// use).
func (r WorkflowRun) Summarize(ranks ...float64) *Summary {
	s := NewSummary(ranks...)
	for _, w := range r.Workflows {
		if ta := w.Turnaround(); ta >= 0 {
			s.Add(ta)
		}
	}
	return s
}

// Render returns the one-line workflow summary the CLIs print.
func (r WorkflowRun) Render() string {
	sum := r.Summarize(50, 99)
	ps := sum.Percentiles()
	return fmt.Sprintf("workflows: %d/%d complete, e2e turnaround p50=%s p99=%s mean=%s, mean slowdown %.2fx",
		r.Completed(), len(r.Workflows),
		FormatDuration(ps[0]), FormatDuration(ps[1]), FormatDuration(sum.Mean()),
		r.MeanSlowdown())
}
