package experiments

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/trace"
)

// TestPredictedTraceDeterministic: the hand-rolled workload must replay
// byte-identically and carry the per-app identity signal (regular apps
// plus under-observed cold apps).
func TestPredictedTraceDeterministic(t *testing.T) {
	collect := func() []string {
		var out []string
		apps := map[string]bool{}
		src := predictedTrace(500, 32, 0.9, 7)
		for {
			tk, ok := src.Next()
			if !ok {
				break
			}
			apps[tk.App] = true
			out = append(out, tk.App+tk.Arrival.String()+tk.Service.String())
		}
		coldSeen := false
		for a := range apps {
			if len(a) > 5 && a[:5] == "cold-" {
				coldSeen = true
			}
		}
		if !coldSeen {
			t.Fatal("workload has no cold apps")
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != 500 {
		t.Fatalf("trace yielded %d tasks, want 500", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("task %d differs across replays:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
	if err := trace.Err(predictedTrace(10, 32, 0.9, 7)); err != nil {
		t.Fatal(err)
	}
}

// TestPredictedDispatchRegimeWinners is the experiment's headline
// claim, asserted: with accurate online predictions PSRTF beats SFS in
// at least one fleet shape, and under the adversarial cold-app prior
// the predictor's mistakes convoy elephants and prediction-free SFS
// wins — so acting on estimates is neither always good nor always bad.
func TestPredictedDispatchRegimeWinners(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cells := predictedDispatchCells(quick)
	mean := map[[4]string]time.Duration{}
	for _, c := range cells {
		mean[[4]string{c.regime, c.fleet, c.sched, c.dispatch}] = c.mean
		if c.mean <= 0 {
			t.Fatalf("cell %s/%s/%s/%s has non-positive mean %v", c.regime, c.fleet, c.sched, c.dispatch, c.mean)
		}
	}
	sfs := func(fleet string) time.Duration { return mean[[4]string{"none", fleet, "SFS", "LEASTLOADED"}] }
	psrtf := func(regime, fleet string) time.Duration {
		return mean[[4]string{regime, fleet, "PSRTF", "LEASTLOADED"}]
	}

	// Accurate predictions: PSRTF must win somewhere.
	if !(psrtf("none", "uniform") < sfs("uniform") || psrtf("none", "hetero") < sfs("hetero")) {
		t.Errorf("regime none: PSRTF (uniform %v, hetero %v) never beats SFS (uniform %v, hetero %v)",
			psrtf("none", "uniform"), psrtf("none", "hetero"), sfs("uniform"), sfs("hetero"))
	}
	// Adversarial prior: trusting the predictor must lose to SFS.
	if !(sfs("uniform") < psrtf("adversarial", "uniform")) {
		t.Errorf("adversarial regime: SFS %v should beat PSRTF %v", sfs("uniform"), psrtf("adversarial", "uniform"))
	}
}

// TestPredictedDispatchReport: structural checks — full sweep under
// "none", predictive-only cells under the error regimes, and winner
// notes covering every regime.
func TestPredictedDispatchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := runPredictedDispatch(quick)
	// none: 2 fleets x 3 scheds x 3 dispatchers; 2x/adversarial: only
	// cells with PSRTF or PREDICTED involved (5 per fleet).
	want := 2*3*3 + 2*2*5
	if len(rep.Rows) != want {
		t.Fatalf("report has %d rows, want %d", len(rep.Rows), want)
	}
	if len(rep.Notes) != 6 {
		t.Fatalf("report has %d notes, want 6 (3 regimes x 2 fleets)", len(rep.Notes))
	}
}
