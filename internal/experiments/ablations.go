package experiments

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/workload"
)

// Ablations beyond the paper's figures: design-choice studies DESIGN.md
// calls out (second-level scheduler choice, monitor window size,
// overload threshold, baseline scheduler family, tail sensitivity).
func init() {
	register("ablation-secondlevel", "SFS atop CFS vs atop EEVDF (Linux 6.6+)", runAblationSecondLevel)
	register("ablation-baselines", "SFS vs FIFO/RR/CoreGranular/Lottery baselines", runAblationBaselines)
	register("ablation-window", "Monitor window size N sensitivity", runAblationWindow)
	register("ablation-overload", "Overload factor O sensitivity", runAblationOverload)
	register("ablation-tail", "Table I fib tail vs production Azure heavy tail", runAblationTail)
	register("ablation-queueing", "Global queue vs per-core queues (§VI design argument)", runAblationQueueing)
}

// ablationWorkload is the shared high-load trace workload.
func ablationWorkload(cfg Config, cores int) *workload.Workload {
	n := scaleN(cfg, 10000)
	return azureWorkload(cfg, n, cores, 0.9, nil, 0)
}

func summarize(rep *Report, name string, r metrics.Run) {
	ps := r.Percentiles([]float64{50, 99})
	rep.Rows = append(rep.Rows, []string{
		name,
		fmtMS(ps[0]),
		fmtMS(ps[1]),
		metrics.FormatDuration(r.MeanTurnaround()),
		fmt.Sprintf("%.0f%%", 100*r.FractionRTEAtLeast(0.95)),
	})
}

func ablationHeader() []string {
	return []string{"scheduler", "p50(ms)", "p99(ms)", "mean", "RTE>=0.95"}
}

// runAblationSecondLevel swaps SFS's second level from CFS to EEVDF —
// the paper claims SFS is OS-scheduler-agnostic (§V-A); this verifies
// the claim against the scheduler that replaced CFS in Linux 6.6.
func runAblationSecondLevel(cfg Config) *Report {
	const cores = standaloneCores
	w := ablationWorkload(cfg, cores)
	rep := &Report{
		ID:     "ablation-secondlevel",
		Title:  "SFS is second-level agnostic: CFS vs EEVDF underneath",
		Paper:  "(extension; the paper's §V-A claims OS-scheduler-agnosticism)",
		Header: ablationHeader(),
	}
	variants := []struct {
		name string
		mk   func() cpusim.Scheduler
	}{
		{"CFS", func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) }},
		{"EEVDF", func() cpusim.Scheduler { return sched.NewEEVDF(sched.EEVDFConfig{}) }},
		{"SFS-on-CFS", func() cpusim.Scheduler { return core.New(core.DefaultConfig()) }},
		{"SFS-on-EEVDF", func() cpusim.Scheduler {
			c := core.DefaultConfig()
			c.SecondLevel = sched.NewEEVDF(sched.EEVDFConfig{})
			return core.New(c)
		}},
	}
	medians := map[string]time.Duration{}
	for _, v := range variants {
		r, _ := runOn(v.mk(), cores, w.Clone(), 0.9)
		summarize(rep, v.name, r)
		medians[v.name] = r.Percentiles([]float64{50})[0]
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"SFS median with CFS underneath %s vs EEVDF underneath %s — the FILTER level dominates short-function latency either way",
		metrics.FormatDuration(medians["SFS-on-CFS"]), metrics.FormatDuration(medians["SFS-on-EEVDF"])))
	return rep
}

// runAblationBaselines pits SFS against the wider scheduler family the
// paper situates itself in: RT policies (FIFO/RR), centralized
// core-granular scheduling (§XI), and classic proportional share
// (lottery).
func runAblationBaselines(cfg Config) *Report {
	const cores = standaloneCores
	w := ablationWorkload(cfg, cores)
	rep := &Report{
		ID:     "ablation-baselines",
		Title:  "SFS vs the scheduler family: FIFO, RR, CoreGranular, Lottery, SRTF",
		Paper:  "(extension of Fig 2's lineup with §XI's core-granular scheduler and lottery scheduling)",
		Header: ablationHeader(),
	}
	variants := []struct {
		name string
		mk   func() cpusim.Scheduler
	}{
		{"SFS", func() cpusim.Scheduler { return core.New(core.DefaultConfig()) }},
		{"SRTF", func() cpusim.Scheduler { return sched.NewSRTF() }},
		{"FIFO", func() cpusim.Scheduler { return sched.NewFIFO() }},
		{"RR", func() cpusim.Scheduler { return sched.NewRR(0) }},
		{"CoreGranular", func() cpusim.Scheduler { return sched.NewCoreGranular() }},
		{"Lottery", func() cpusim.Scheduler { return sched.NewLottery(0, cfg.Seed) }},
	}
	for _, v := range variants {
		r, eng := runOn(v.mk(), cores, w.Clone(), 0.9)
		summarize(rep, v.name, r)
		if v.name == "CoreGranular" {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"core-granular utilization %.0f%% (reserved cores idle during I/O; SFS's work-conserving design avoids this)",
				100*eng.Utilization()))
		}
	}
	return rep
}

// runAblationWindow sweeps the monitor's sliding-window size N (the
// paper fixes N=100 without a sensitivity study).
func runAblationWindow(cfg Config) *Report {
	const cores = standaloneCores
	w := ablationWorkload(cfg, cores)
	rep := &Report{
		ID:     "ablation-window",
		Title:  "Sensitivity to the monitor window size N (paper uses 100)",
		Paper:  "(extension; §V-C picks N=100)",
		Header: append(ablationHeader(), "recalcs"),
	}
	for _, n := range []int{25, 100, 400} {
		c := core.DefaultConfig()
		c.WindowSize = n
		s := core.New(c)
		r, _ := runOn(s, cores, w.Clone(), 0.9)
		ps := r.Percentiles([]float64{50, 99})
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("SFS N=%d", n),
			fmtMS(ps[0]), fmtMS(ps[1]),
			metrics.FormatDuration(r.MeanTurnaround()),
			fmt.Sprintf("%.0f%%", 100*r.FractionRTEAtLeast(0.95)),
			fmt.Sprint(len(s.Stat.SliceTimeline) - 1),
		})
	}
	rep.Notes = append(rep.Notes, "small N adapts faster to bursts but jitters S; large N smooths at the cost of lag")
	return rep
}

// runAblationOverload sweeps the overload factor O (the paper sets O=3
// empirically).
func runAblationOverload(cfg Config) *Report {
	const cores = standaloneCores
	n := scaleN(cfg, 10000)
	width := n / 20
	if width < 150 {
		width = 150
	}
	w := workload.AzureSampled(workload.AzureSampledSpec{
		N: n, Cores: cores, Load: derate(0.9), Seed: cfg.Seed,
		Spikes: 5, SpikeWidth: width,
	})
	rep := &Report{
		ID:     "ablation-overload",
		Title:  "Sensitivity to the overload factor O (paper sets O=3)",
		Paper:  "(extension; §V-E chooses O=3 empirically)",
		Header: append(ablationHeader(), "routed", "maxQdelay"),
	}
	for _, o := range []float64{1.5, 3, 6, 1e9} {
		c := core.DefaultConfig()
		c.OverloadFactor = o
		s := core.New(c)
		r, _ := runOn(s, cores, w.Clone(), 0.9)
		var maxD time.Duration
		for _, d := range s.Stat.QueueDelays {
			if d.Delay > maxD {
				maxD = d.Delay
			}
		}
		name := fmt.Sprintf("SFS O=%.1f", o)
		if o > 1e6 {
			name = "SFS O=inf"
		}
		ps := r.Percentiles([]float64{50, 99})
		rep.Rows = append(rep.Rows, []string{
			name, fmtMS(ps[0]), fmtMS(ps[1]),
			metrics.FormatDuration(r.MeanTurnaround()),
			fmt.Sprintf("%.0f%%", 100*r.FractionRTEAtLeast(0.95)),
			fmt.Sprint(s.Stat.OverloadRouted),
			metrics.FormatDuration(maxD),
		})
	}
	rep.Notes = append(rep.Notes, "lower O routes more aggressively (draining spikes sooner, touching more requests); O=inf is Fig 12's no-hybrid")
	return rep
}

// runAblationQueueing quantifies §VI's design argument for a single
// global queue: per-core queues with round-robin assignment suffer load
// imbalance (a long request blocks everything routed behind it on the
// same queue while other workers idle).
func runAblationQueueing(cfg Config) *Report {
	const cores = standaloneCores
	w := ablationWorkload(cfg, cores)
	rep := &Report{
		ID:     "ablation-queueing",
		Title:  "Global queue vs per-core queues with round-robin assignment",
		Paper:  "(§VI: 'a single global queue guarantees natural work conservation with good load balancing'; per-core designs suffer imbalance)",
		Header: ablationHeader(),
	}
	for _, v := range []struct {
		name    string
		perCore bool
	}{{"SFS (global queue)", false}, {"SFS (per-core queues)", true}} {
		c := core.DefaultConfig()
		c.PerCoreQueue = v.perCore
		r, _ := runOn(core.New(c), cores, w.Clone(), 0.9)
		summarize(rep, v.name, r)
	}
	rep.Notes = append(rep.Notes,
		"per-core queues lose the single-queue model's natural load balancing: short requests stuck behind a local long one wait while other FILTER workers idle")
	return rep
}

// runAblationTail replaces the fib-materialized Table I long mode with
// the Azure trace's production heavy tail (up to 224 s) and shows the
// SFS-vs-CFS trade under it.
func runAblationTail(cfg Config) *Report {
	const cores = standaloneCores
	n := scaleN(cfg, 10000)
	rep := &Report{
		ID:     "ablation-tail",
		Title:  "Duration-tail sensitivity: fib 34-35 mode vs production heavy tail",
		Paper:  "(extension; the paper's benchmark truncates the Azure tail at fib(35))",
		Header: append([]string{"tail", "scheduler"}, ablationHeader()[1:]...),
	}
	for _, tail := range []string{"fib34-35", "pareto224s"} {
		spec := workload.Spec{N: n, Cores: cores, Load: derate(0.9), Seed: cfg.Seed}
		if tail == "pareto224s" {
			spec.Duration = workload.AzureTailDistribution()
		}
		w := workload.Generate(spec)
		for _, mk := range []struct {
			name string
			mk   func() cpusim.Scheduler
		}{
			{"SFS", func() cpusim.Scheduler { return core.New(core.DefaultConfig()) }},
			{"CFS", func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) }},
		} {
			r, _ := runOn(mk.mk(), cores, w.Clone(), 0.9)
			ps := r.Percentiles([]float64{50, 99})
			rep.Rows = append(rep.Rows, []string{
				tail, mk.name,
				fmtMS(ps[0]), fmtMS(ps[1]),
				metrics.FormatDuration(r.MeanTurnaround()),
				fmt.Sprintf("%.0f%%", 100*r.FractionRTEAtLeast(0.95)),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"under the production tail, SFS's short-function protection matters even more: CFS spreads multi-minute functions' interference over everyone")
	return rep
}
