package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/predict"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

func init() {
	register("predicted-dispatch", "Prediction-driven scheduling and dispatch across error regimes", runPredictedDispatch)
}

// predictedAppMedians are the regular applications' lognormal medians:
// a strong app-identity → duration signal (low per-app variance, two
// decades of spread across apps) is exactly the workload where learned
// per-app estimates carry information, per Przybylski et al.'s
// characterization of serverless invocation predictability.
var predictedAppMedians = []time.Duration{
	2 * time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond,
	8 * time.Millisecond, 12 * time.Millisecond, 20 * time.Millisecond,
	35 * time.Millisecond, 60 * time.Millisecond,
}

const (
	predictedSigma     = 0.3  // per-app lognormal sigma
	predictedColdFrac  = 0.15 // fraction of traffic from one-shot cold apps
	predictedColdGroup = 4    // invocations per cold app name (< adversarial MinObs)
	predictedColdMed   = 300 * time.Millisecond
	predictedColdSigma = 0.2
)

// predictedTrace hand-rolls the sweep's workload: Poisson arrivals over
// a mix of well-known mice-to-medium apps and a steady stream of cold
// elephant apps whose names never accumulate enough observations to
// graduate past an estimator's MinObs threshold — the traffic that
// makes the adversarial-prior regime bite.
func predictedTrace(n, cores int, load float64, seed uint64) trace.Source {
	// Analytic mean service time of the mixture (lognormal mean is
	// median·exp(σ²/2)) calibrates the Poisson arrival rate to the
	// offered load, like every other workload generator in the repo.
	regMean := 0.0
	for _, m := range predictedAppMedians {
		regMean += float64(m) * math.Exp(predictedSigma*predictedSigma/2)
	}
	regMean /= float64(len(predictedAppMedians))
	coldMean := float64(predictedColdMed) * math.Exp(predictedColdSigma*predictedColdSigma/2)
	meanSvc := (1-predictedColdFrac)*regMean + predictedColdFrac*coldMean
	meanIAT := meanSvc / (float64(cores) * load)

	r := rng.New(seed)
	tasks := make([]*task.Task, 0, n)
	var at time.Duration
	cold := 0
	for i := 0; i < n; i++ {
		at += time.Duration(r.ExpFloat64() * meanIAT)
		var name string
		var d dist.Lognormal
		if r.Float64() < predictedColdFrac {
			name = fmt.Sprintf("cold-%d", cold/predictedColdGroup)
			cold++
			d = dist.Lognormal{Mu: math.Log(float64(predictedColdMed)), Sigma: predictedColdSigma}
		} else {
			m := predictedAppMedians[r.Intn(len(predictedAppMedians))]
			name = fmt.Sprintf("app-%v", m)
			d = dist.Lognormal{Mu: math.Log(float64(m)), Sigma: predictedSigma}
		}
		tk := task.New(i, at, d.Sample(r))
		tk.App = name
		tasks = append(tasks, tk)
	}
	return trace.FromTasks(fmt.Sprintf("predicted-mix(n=%d)", n), tasks)
}

// predictedRegimes are the prediction-error regimes the sweep crosses:
// accurate online learning, a deterministic 2x misestimate on half the
// apps, and a tiny-prior/high-threshold configuration under which every
// cold app looks free — adversarial for any policy that trusts its
// predictor.
func predictedRegimes() []struct {
	name string
	pc   predict.Config
} {
	return []struct {
		name string
		pc   predict.Config
	}{
		{"none", predict.Config{}},
		{"2x", predict.Config{NoiseFactor: 2}},
		{"adversarial", predict.Config{Prior: time.Microsecond, MinObs: predictedColdGroup * 2}},
	}
}

// predictedFleets pairs a uniform baseline fleet against a
// heterogeneous one alternating 1.5x and 0.5x hosts (same aggregate
// capacity), where speed-aware placement has something to exploit.
func predictedFleets(hosts int) []struct {
	name   string
	speeds []float64
} {
	hetero := make([]float64, hosts)
	for i := range hetero {
		if i%2 == 0 {
			hetero[i] = 1.5
		} else {
			hetero[i] = 0.5
		}
	}
	return []struct {
		name   string
		speeds []float64
	}{
		{"uniform", nil},
		{"hetero", hetero},
	}
}

// predictedCell is one cell of the sweep, with its numeric outcome kept
// for the winner notes and the regime-winner assertions in tests.
type predictedCell struct {
	regime, fleet, sched, dispatch string
	row                            []string
	mean                           time.Duration
}

// predictedDispatchCells runs the sweep and returns every cell in
// deterministic order. Cells where the regime cannot matter (neither
// the host scheduler nor the dispatcher consults a predictor) are run
// once under "none" rather than duplicated per regime.
func predictedDispatchCells(cfg Config) []predictedCell {
	const hosts, coresPerHost = 8, 4
	n := scaleN(cfg, 6000)
	scheds := []string{"SFS", "CFS", "PSRTF"}
	dispatchers := []string{"LEASTLOADED", "JSQ", "PREDICTED"}

	var cells []predictedCell
	for _, reg := range predictedRegimes() {
		for _, fleet := range predictedFleets(hosts) {
			for _, sc := range scheds {
				for _, dp := range dispatchers {
					if reg.name != "none" && sc != "PSRTF" && dp != "PREDICTED" {
						continue // regime is a no-op for this cell
					}
					cells = append(cells, predictedCell{regime: reg.name, fleet: fleet.name, sched: sc, dispatch: dp})
				}
			}
		}
	}

	regimeCfg := map[string]predict.Config{}
	for _, reg := range predictedRegimes() {
		regimeCfg[reg.name] = reg.pc
	}
	fleetSpeeds := map[string][]float64{}
	for _, fleet := range predictedFleets(hosts) {
		fleetSpeeds[fleet.name] = fleet.speeds
	}

	cfg.fan(len(cells), func(i int) {
		c := &cells[i]
		pc := regimeCfg[c.regime]
		if pc.Seed == 0 {
			pc.Seed = cfg.Seed
		}
		newSched := func() cpusim.Scheduler { return core.New(core.DefaultConfig()) }
		switch c.sched {
		case "CFS":
			newSched = func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) }
		case "PSRTF":
			newSched = func() cpusim.Scheduler { return sched.NewPSRTF(predict.New(pc)) }
		}
		d, err := cluster.NewDispatcher(c.dispatch, cluster.FactoryConfig{Hosts: hosts, Seed: cfg.Seed, Predict: pc})
		if err != nil {
			panic(err)
		}
		cl, err := cluster.New(cluster.Config{
			Hosts:        hosts,
			CoresPerHost: coresPerHost,
			NewScheduler: newSched,
			Dispatcher:   d,
			Speeds:       fleetSpeeds[c.fleet],
			NetDelay:     dist.Uniform{Lo: 200 * time.Microsecond, Hi: 2 * time.Millisecond},
			NetDelaySeed: cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		res, err := cl.Run(predictedTrace(n, hosts*coresPerHost, derate(0.9), cfg.Seed))
		if err != nil {
			panic(err)
		}
		sum := res.Merged.Summarize(50, 99)
		ps := sum.Percentiles()
		c.mean = sum.Mean()
		c.row = []string{
			c.regime, c.fleet, c.sched, c.dispatch,
			metrics.FormatDuration(ps[0]),
			metrics.FormatDuration(ps[1]),
			metrics.FormatDuration(c.mean),
			fmt.Sprintf("%.1f%%", 100*res.Merged.FractionRTEAtLeast(0.95)),
		}
	})
	return cells
}

// runPredictedDispatch sweeps prediction-driven policies at both
// levels — PSRTF inside each host, PREDICTED at the dispatcher —
// against their prediction-free baselines (SFS/CFS hosts, LEASTLOADED/
// JSQ dispatch) across prediction-error regimes and fleet shapes. The
// question it answers is when acting on runtime estimates helps and
// when it hurts: with accurate learned estimates, predicted policies
// approach their clairvoyant counterparts and beat SFS; under the
// adversarial cold-app regime (tiny prior, cold elephants constantly
// arriving), trusting the predictor convoys elephants ahead of known
// mice and SFS's prediction-free preemption wins — both directions are
// asserted by tests.
func runPredictedDispatch(cfg Config) *Report {
	rep := &Report{
		ID:    "predicted-dispatch",
		Title: "host scheduler x dispatch policy x prediction-error regime x fleet shape",
		Paper: "beyond the paper: data-driven scheduling and placement (Przybylski et al.) vs SFS's prediction-free design",
	}
	rep.Header = []string{"regime", "fleet", "sched", "dispatch", "p50", "p99", "mean", "RTE>=0.95"}

	cells := predictedDispatchCells(cfg)
	type key struct{ regime, fleet string }
	// SFS is prediction-free, so its LEASTLOADED baseline (run once,
	// under "none") stands in for every regime; PSRTF's mean varies per
	// regime.
	sfsBase := map[string]time.Duration{}
	psrtfMean := map[key]time.Duration{}
	for i := range cells {
		c := &cells[i]
		rep.Rows = append(rep.Rows, c.row)
		if c.dispatch != "LEASTLOADED" {
			continue
		}
		switch c.sched {
		case "SFS":
			sfsBase[c.fleet] = c.mean
		case "PSRTF":
			psrtfMean[key{c.regime, c.fleet}] = c.mean
		}
	}
	for _, reg := range predictedRegimes() {
		for _, fleet := range predictedFleets(8) {
			sfs, ok1 := sfsBase[fleet.name]
			psrtf, ok2 := psrtfMean[key{reg.name, fleet.name}]
			if !ok1 || !ok2 {
				continue
			}
			winner := "SFS"
			if psrtf < sfs {
				winner = "PSRTF"
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"regime %s, %s fleet (LEASTLOADED dispatch): SFS mean %s vs PSRTF mean %s — %s wins",
				reg.name, fleet.name, metrics.FormatDuration(sfs), metrics.FormatDuration(psrtf), winner))
		}
	}
	return rep
}
