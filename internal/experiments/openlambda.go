package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/faas"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("fig13", "OpenLambda end-to-end duration CDF, OL+SFS vs OL+CFS (72 cores)", runFig13)
	register("fig14", "OpenLambda RTE CDF, OL+SFS vs OL+CFS", runFig14)
	register("fig15", "OpenLambda percentile breakdowns", runFig15)
	register("fig16", "Ratio of CFS context switches to SFS context switches per request", runFig16)
	register("table2", "SFS CPU overhead vs polling interval (72-core deployment)", runTable2)
}

// olCores is the paper's OpenLambda deployment width (72 of the 96
// vCPUs of an m5.metal instance).
const olCores = 72

// olLoads are the §IX load levels.
var olLoads = []float64{0.8, 0.9, 1.0}

// olApps is the fib/md/sa mix of §IX-A.
func olApps() []workload.AppChoice {
	return []workload.AppChoice{
		{Profile: workload.AppFib, Weight: 0.5},
		{Profile: workload.AppMd, Weight: 0.25},
		{Profile: workload.AppSa, Weight: 0.25},
	}
}

type olRun struct {
	sfs metrics.Run
	cfs metrics.Run
	s   *core.SFS
	res faas.Result // SFS platform result (engine handle)
}

// olSweep runs the OpenLambda platform simulation across loads.
func olSweep(cfg Config, pollInterval time.Duration) map[float64]olRun {
	cores := scaleCores(cfg, olCores)
	n := scaleN(cfg, 10000)
	out := map[float64]olRun{}
	// Containerized function processes pay a real per-switch cost
	// (direct switch plus cache/TLB refill); at consolidation scale this
	// is what lets CFS's 10x-100x higher switch rate (Fig 16) erode its
	// own capacity while SFS's run-to-completion FILTER avoids it.
	const olSwitchCost = 150 * time.Microsecond
	for _, load := range olLoads {
		w := azureWorkload(cfg, n, cores, load, olApps(), 0)
		cfsP := faas.New(faas.Config{Cores: cores, Overheads: faas.DefaultOverheads(),
			CtxSwitchCost: olSwitchCost, Seed: cfg.Seed})
		cfsRes := cfsP.Run(w, sched.NewCFS(sched.CFSConfig{}))
		cc := core.DefaultConfig()
		if pollInterval > 0 {
			cc.PollInterval = pollInterval
		}
		s := core.New(cc)
		sfsP := faas.New(faas.Config{Cores: cores, Overheads: faas.DefaultOverheads(),
			CtxSwitchCost: olSwitchCost, SFSPort: true, Seed: cfg.Seed})
		sfsRes := sfsP.Run(w, s)
		sfsRun := sfsRes.Run
		sfsRun.Scheduler, sfsRun.Load = "OL+SFS", load
		cfsRun := cfsRes.Run
		cfsRun.Scheduler, cfsRun.Load = "OL+CFS", load
		out[load] = olRun{sfs: sfsRun, cfs: cfsRun, s: s, res: sfsRes}
	}
	return out
}

func runFig13(cfg Config) *Report {
	runs := olSweep(cfg, 0)
	rep := &Report{
		ID:    "fig13",
		Title: "OpenLambda performance CDF (fib/md/sa mix)",
		Paper: "functions run 14.1% longer on average under OL+CFS at 80% load; OL+SFS nearly identical across 80/90/100% while OL+CFS degrades",
	}
	for _, load := range olLoads {
		rep.Series = append(rep.Series, durationSeries("OL+SFS", load, runs[load].sfs))
	}
	for _, load := range olLoads {
		rep.Series = append(rep.Series, durationSeries("OL+CFS", load, runs[load].cfs))
	}
	m80s, m80c := runs[0.8].sfs.MeanTurnaround(), runs[0.8].cfs.MeanTurnaround()
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("at 80%% load OL+CFS mean is %.1f%% above OL+SFS (paper: 14.1%%)",
			100*(float64(m80c)/float64(m80s)-1)),
		fmt.Sprintf("OL+SFS median across loads: %s / %s / %s",
			metrics.FormatDuration(runs[0.8].sfs.Percentiles([]float64{50})[0]),
			metrics.FormatDuration(runs[0.9].sfs.Percentiles([]float64{50})[0]),
			metrics.FormatDuration(runs[1.0].sfs.Percentiles([]float64{50})[0])))
	return rep
}

func runFig14(cfg Config) *Report {
	runs := olSweep(cfg, 0)
	rep := &Report{
		ID:    "fig14",
		Title: "OpenLambda RTE CDF",
		Paper: "OL+SFS sustains high RTE across loads; OL+CFS RTE collapses as load grows",
	}
	for _, load := range olLoads {
		rep.Series = append(rep.Series, rteSeries("OL+SFS", load, runs[load].sfs))
		rep.Series = append(rep.Series, rteSeries("OL+CFS", load, runs[load].cfs))
	}
	for _, load := range olLoads {
		rep.Notes = append(rep.Notes, fmt.Sprintf("RTE>=0.8 at %.0f%%: OL+SFS %.0f%% vs OL+CFS %.0f%%",
			load*100,
			100*runs[load].sfs.FractionRTEAtLeast(0.8),
			100*runs[load].cfs.FractionRTEAtLeast(0.8)))
	}
	return rep
}

func runFig15(cfg Config) *Report {
	runs := olSweep(cfg, 0)
	rep := &Report{
		ID:     "fig15",
		Title:  "OpenLambda percentile breakdowns of duration",
		Paper:  "OL+SFS p99 4.75s: 1.65x/4.04x/7.93x speedup over OL+CFS at 80/90/100% load",
		Header: append([]string{"scheduler/load"}, pctHeader()...),
	}
	for _, load := range olLoads {
		rep.Rows = append(rep.Rows, pctRow(fmt.Sprintf("OL+SFS %.0f%%", load*100), runs[load].sfs))
	}
	for _, load := range olLoads {
		rep.Rows = append(rep.Rows, pctRow(fmt.Sprintf("OL+CFS %.0f%%", load*100), runs[load].cfs))
	}
	for _, c := range []struct {
		load  float64
		paper float64
	}{{0.8, 1.65}, {0.9, 4.04}, {1.0, 7.93}} {
		s99 := runs[c.load].sfs.Percentiles([]float64{99})[0]
		c99 := runs[c.load].cfs.Percentiles([]float64{99})[0]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"p99 speedup at %.0f%% load: %.2fx (paper %.2fx); OL+SFS p99 %s",
			c.load*100, float64(c99)/float64(s99), c.paper, metrics.FormatDuration(s99)))
	}
	return rep
}

func runFig16(cfg Config) *Report {
	runs := olSweep(cfg, 0)
	rep := &Report{
		ID:    "fig16",
		Title: "Per-request ratio of CFS context switches to SFS context switches",
		Paper: ">99% of requests context-switch more under CFS; ~85% suffer 10x more switches than SFS",
	}
	for _, load := range olLoads {
		ratios := metrics.CtxSwitchRatios(runs[load].cfs, runs[load].sfs)
		sort.Float64s(ratios)
		pts := make([]stats.CDFPoint, len(ratios))
		for i, r := range ratios {
			pts[i] = stats.CDFPoint{X: float64(i), F: r}
		}
		rep.Series = append(rep.Series, Series{Name: fmt.Sprintf("ratio %.0f%%", load*100), Points: pts, Line: true})
		above1, above10 := 0, 0
		for _, r := range ratios {
			if r > 1 {
				above1++
			}
			if r >= 10 {
				above10++
			}
		}
		n := float64(len(ratios))
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%.0f%% load: ratio>1 for %.1f%% of requests (paper >99%%), >=10x for %.1f%% (paper ~85%%)",
			load*100, 100*float64(above1)/n, 100*float64(above10)/n))
	}
	return rep
}

// runTable2 reproduces the overhead study: SFS's relative CPU cost for
// polling intervals of 1/4/8 ms, using the analytic overhead model fed
// by the simulator's measured FILTER busy time and decision counts.
func runTable2(cfg Config) *Report {
	rep := &Report{
		ID:     "table2",
		Title:  "SFS relative CPU overhead supporting the OpenLambda deployment",
		Paper:  "1ms: avg 3.8%; 4ms: avg 3.6% (74.4% of it status polling); 8ms: avg 3.4%; max 6.2-6.6%",
		Header: []string{"interval", "min", "average", "median", "max", "poll-share"},
	}
	model := faas.DefaultOverheadModel()
	cores := scaleCores(cfg, olCores)
	for _, interval := range []time.Duration{time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond} {
		// One sweep per interval; each load level contributes a sample,
		// giving the min/avg/median/max spread.
		runs := olSweep(cfg, interval)
		var rels []float64
		var pollShare float64
		for _, load := range olLoads {
			r := runs[load]
			pollCPU, schedCPU, rel := model.Estimate(
				r.s.Stat.FilterBusy, interval, r.s.Stat.SchedulingOps, cores, r.res.Makespan)
			rels = append(rels, rel*100)
			if pollCPU+schedCPU > 0 {
				pollShare = float64(pollCPU) / float64(pollCPU+schedCPU)
			}
		}
		sort.Float64s(rels)
		avg := (rels[0] + rels[1] + rels[2]) / 3
		rep.Rows = append(rep.Rows, []string{
			interval.String(),
			fmt.Sprintf("%.1f%%", rels[0]),
			fmt.Sprintf("%.1f%%", avg),
			fmt.Sprintf("%.1f%%", rels[1]),
			fmt.Sprintf("%.1f%%", rels[2]),
			fmt.Sprintf("%.0f%%", pollShare*100),
		})
	}
	rep.Notes = append(rep.Notes,
		"samples are the three load levels (80/90/100%); the paper samples over time windows of one deployment",
		"polling dominates the overhead, as in the paper (~74% at 4 ms)")
	return rep
}
