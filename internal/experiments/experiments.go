// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction's own substrates. Each experiment is
// registered under the paper's identifier (fig1, fig2a, ..., table2) and
// produces a Report containing the same series or rows the paper plots,
// plus paper-vs-measured notes that EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/workload"
)

// Config scales an experiment run.
type Config struct {
	// Quick shrinks request counts and core counts so the whole suite
	// runs in seconds (used by tests and benchmarks). Full mode matches
	// the paper's scale (10,000 replayed invocations, 12/16/72 cores).
	Quick bool
	// Seed drives all synthetic inputs. RunAll and RunOne derive a
	// per-experiment seed from it (see DeriveSeed) so results are
	// independent of worker count and execution order.
	Seed uint64

	// pool, when set by RunAll/RunOne, lets experiments fan their
	// independent inner sweep cells across the shared worker pool via
	// Config.fan. The zero Config fans serially.
	pool *Pool
}

// Series is one named line of a figure (e.g. "CFS 100%"): a CDF (F is a
// cumulative fraction over X) or, when Line is set, a plain (x, y)
// sequence such as a timeline.
type Series struct {
	Name   string
	Points []stats.CDFPoint
	Line   bool // Points are (x, y) samples rather than a CDF
}

// Report is an experiment's output.
type Report struct {
	ID     string
	Title  string
	Paper  string // what the paper reports for this experiment
	Series []Series
	Header []string
	Rows   [][]string
	Notes  []string // measured headline numbers, paper-vs-measured

	// WallClock is how long the experiment took, stamped by
	// RunAll/RunOne. It is deliberately absent from Render and CSV:
	// rendered bytes must be a pure function of (seed, scale) — the
	// DeterministicBytes contract perfbench asserts — and wall-clock
	// time never is. cmd/experiments prints it on its own line instead.
	WallClock time.Duration
}

// Render produces the textual form printed by cmd/experiments.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	if len(r.Header) > 0 {
		b.WriteString(metrics.Table(r.Header, r.Rows))
	}
	for _, s := range r.Series {
		b.WriteString(renderSeries(s))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// renderSeries summarizes a CDF at fixed fractions, or a line series by
// its y-range and mean.
func renderSeries(s Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "series %-22s", s.Name)
	if len(s.Points) == 0 {
		b.WriteString(" (empty)\n")
		return b.String()
	}
	if s.Line {
		min, max, sum := s.Points[0].F, s.Points[0].F, 0.0
		for _, p := range s.Points {
			if p.F < min {
				min = p.F
			}
			if p.F > max {
				max = p.F
			}
			sum += p.F
		}
		fmt.Fprintf(&b, "  n=%-6d ymin=%-10.3f ymean=%-10.3f ymax=%-10.3f\n",
			len(s.Points), min, sum/float64(len(s.Points)), max)
		return b.String()
	}
	for _, f := range []float64{0.5, 0.9, 0.99} {
		idx := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].F >= f })
		if idx >= len(s.Points) {
			idx = len(s.Points) - 1
		}
		fmt.Fprintf(&b, "  p%-4.0f=%-12.3f", f*100, s.Points[idx].X)
	}
	b.WriteByte('\n')
	return b.String()
}

// CSV renders the report's series (or rows) as CSV for plotting.
func (r *Report) CSV() string {
	var b strings.Builder
	if len(r.Header) > 0 {
		b.WriteString(strings.Join(r.Header, ","))
		b.WriteByte('\n')
		for _, row := range r.Rows {
			b.WriteString(strings.Join(row, ","))
			b.WriteByte('\n')
		}
		return b.String()
	}
	b.WriteString("series,x,f\n")
	for _, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, p.X, p.F)
		}
	}
	return b.String()
}

// Experiment pairs an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) *Report
}

// registry holds all experiments in paper order.
var registry []Experiment

func register(id, title string, run func(cfg Config) *Report) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in paper order.
func All() []Experiment { return append([]Experiment(nil), registry...) }

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared helpers ----

// scaleN returns the request count: the paper's 10,000 replayed
// invocations, or a quick-mode reduction.
func scaleN(cfg Config, full int) int {
	if cfg.Quick {
		n := full / 8
		if n < 400 {
			n = 400
		}
		return n
	}
	return full
}

// scaleCores shrinks large deployments in quick mode.
func scaleCores(cfg Config, full int) int {
	if cfg.Quick && full > 16 {
		return 16
	}
	return full
}

// runOn replays tasks under a scheduler and returns the run plus engine.
func runOn(s cpusim.Scheduler, cores int, tasks []*task.Task, load float64) (metrics.Run, *cpusim.Engine) {
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 10000 * time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	return metrics.Run{Scheduler: s.Name(), Load: load, Tasks: tasks}, eng
}

// durationSeries converts a run to a duration-CDF series named like the
// paper's legends ("CFS 100%").
func durationSeries(name string, load float64, r metrics.Run) Series {
	return Series{Name: fmt.Sprintf("%s %.0f%%", name, load*100), Points: r.DurationCDF()}
}

// rteSeries converts a run to an RTE-CDF series.
func rteSeries(name string, load float64, r metrics.Run) Series {
	return Series{Name: fmt.Sprintf("%s %.0f%%", name, load*100), Points: r.RTECDF()}
}

// fmtMS renders a duration as milliseconds for rows.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// smtYield derates the paper's EC2 vCPU capacity to full-core
// equivalents when calibrating offered load. The evaluation hardware
// exposes SMT hyperthreads and runs platform background work (OpenLambda
// servers, monitoring, the OS itself), so a nominal "100% of 16 vCPUs"
// arrival rate slightly oversubscribes the machine — the regime in which
// the paper observes CFS collapsing (89.9% of requests with RTE < 0.2 at
// 100% load) while its 80% level remains only moderately congested
// (11.4% below 0.2). The simulator's cores are ideal full cores with no
// background work, so experiments scale nominal loads by 1/smtYield;
// 0.97 reproduces the paper's saturation boundary: nominal 100% sits
// just past unity on the simulator's ideal cores (catastrophic for CFS
// on the small 12/16-core hosts, absorbed far better by the 72-core
// deployment), while nominal 80% remains moderately congested.
// EXPERIMENTS.md discusses this substitution.
const smtYield = 0.94

// derate converts a paper-nominal load level (defined against vCPUs) to
// the offered load on the simulator's full cores: nominal L on c vCPUs
// is L/smtYield on c full-core equivalents.
func derate(load float64) float64 { return load / smtYield }

// poissonWorkload builds the §VIII-A standalone workload: Table I
// durations with Poisson IATs calibrated to the nominal load (derated
// for SMT; see smtYield).
func poissonWorkload(cfg Config, n, cores int, load float64) *workload.Workload {
	return workload.Generate(workload.Spec{
		N: n, Cores: cores, Load: derate(load), Seed: cfg.Seed,
	})
}

// azureWorkload builds the canonical trace-driven workload (nominal
// load derated for SMT; see smtYield).
func azureWorkload(cfg Config, n, cores int, load float64, apps []workload.AppChoice, ioFrac float64) *workload.Workload {
	return workload.AzureSampled(workload.AzureSampledSpec{
		N: n, Cores: cores, Load: derate(load), Seed: cfg.Seed,
		Apps: apps, IOFraction: ioFrac,
	})
}
