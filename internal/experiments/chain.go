package experiments

import (
	"fmt"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("chain-slowdown", "End-to-end workflow slowdown x scheduler x chain depth x load", runChainSlowdown)
}

// chainSchedulers are the schedulers the sweep compares, in report
// order: SFS against the kernel default it replaces and the FIFO
// baseline its FILTER level resembles.
var chainSchedulers = []string{"SFS", "CFS", "FIFO"}

// runChainSlowdown goes beyond the paper's per-invocation metrics: it
// sweeps scheduler x chain depth x load over the synthetic multi-stage
// family (linear chains of Table I-distributed stages, request arrivals
// calibrated so the whole chain offers the target load) and reports
// per-workflow END-TO-END slowdown — turnaround from request arrival to
// last-stage completion, over the chain's critical-path ideal. The
// expectation, asserted in the notes: SFS's mean end-to-end slowdown
// stays at or below CFS's at every depth. The per-stage win compounds
// in absolute terms — the mean end-to-end gap in time units widens as
// chains deepen — while the slowdown *ratio* typically narrows with
// depth (deeper chains inflate both schedulers' critical-path
// denominators); the compounding note reports the measured ratios so
// the trend is visible rather than assumed.
func runChainSlowdown(cfg Config) *Report {
	const cores = 16
	n := scaleN(cfg, 2400)
	depths := []int{1, 2, 4, 8}
	loads := []float64{0.8, 1.0}
	if cfg.Quick {
		depths = []int{2, 4}
		loads = []float64{1.0}
	}

	rep := &Report{
		ID:    "chain-slowdown",
		Title: "per-workflow end-to-end slowdown, SFS vs CFS vs FIFO x chain depth x load",
		Paper: "beyond the paper: function-chain workflows (Przybylski et al. end-to-end scheduling, Kaffes et al. bursty chains)",
	}
	rep.Header = []string{"sched", "depth", "load", "wf p50", "wf p99", "wf mean", "mean slowdown", "p99 slowdown"}

	// Beyond the single-host sweep, a 64-host fleet behind JSQ dispatch
	// shows how end-to-end slowdown behaves when every stage also pays a
	// placement decision. The fleet runs on the sharded parallel engine
	// (deterministic at any shard count), so scaling the sweep to 64
	// hosts costs wall-clock, not reproducibility.
	const fleetHosts, fleetCores, fleetShards = 64, 2, 8

	type cell struct {
		sched   string
		depth   int
		load    float64
		fleet   bool // 64-host sharded JSQ fleet instead of one host
		trigger bool // TRIGGER scenario family's mixed-shape chains
	}
	var cells []cell
	for _, depth := range depths {
		for _, load := range loads {
			for _, sched := range chainSchedulers {
				cells = append(cells, cell{sched, depth, load, false, false})
			}
		}
		// Fleet cells: SFS vs CFS at the highest load only.
		for _, sched := range []string{"SFS", "CFS"} {
			cells = append(cells, cell{sched, depth, loads[len(loads)-1], true, false})
		}
	}
	// Trigger-mix cells: the TRIGGER scenario family feeds each trigger
	// class its own workflow shape (http → 2-stage chains, queue →
	// batched 3-stage chains, timers → diamond fan-outs), so one run
	// mixes depths and shapes the uniform sweep above never does.
	for _, sched := range chainSchedulers {
		cells = append(cells, cell{sched, 0, 0.8, false, true})
	}

	type cellResult struct {
		row  []string
		mean float64 // mean end-to-end slowdown
	}
	results := make([]cellResult, len(cells))
	cfg.fan(len(cells), func(i int) {
		c := cells[i]
		simCores := cores
		if c.fleet {
			simCores = fleetHosts * fleetCores
		}
		var src trace.Source
		var ccfg chain.Config
		var err error
		if c.trigger {
			src, ccfg, err = workload.TriggerStream(workload.TriggerSpec{
				N: n, Cores: simCores, Load: derate(c.load), Seed: cfg.Seed,
			})
		} else {
			src, ccfg, err = workload.ChainStream(workload.ChainSpec{
				N: n, Cores: simCores, Load: derate(c.load),
				Family: "LINEAR", Depth: c.depth, Seed: cfg.Seed,
			})
		}
		if err != nil {
			panic(err)
		}
		var wfr metrics.WorkflowRun
		if c.fleet {
			d, err := cluster.NewDispatcher("JSQ", cluster.FactoryConfig{Hosts: fleetHosts, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			cl, err := cluster.New(cluster.Config{
				Hosts:        fleetHosts,
				CoresPerHost: fleetCores,
				NewScheduler: func() cpusim.Scheduler {
					s, err := schedulers.New(c.sched)
					if err != nil {
						panic(err)
					}
					return s
				},
				Dispatcher: d,
				Chain:      &ccfg,
				Shards:     fleetShards,
			})
			if err != nil {
				panic(err)
			}
			res, err := cl.Run(src)
			if err != nil {
				panic(err)
			}
			wfr = res.Workflows
		} else {
			inj, err := chain.NewInjector(ccfg)
			if err != nil {
				panic(err)
			}
			s, err := schedulers.New(c.sched)
			if err != nil {
				panic(err)
			}
			eng := cpusim.NewEngine(cpusim.Config{Cores: cores}, s)
			if _, err := chain.Run(src, inj, nil, eng); err != nil {
				panic(err)
			}
			wfr = metrics.WorkflowRun{Scheduler: c.sched, Workflows: inj.Workflows()}
		}
		sum := wfr.Summarize(50, 99)
		ps := sum.Percentiles()
		slow := wfr.SlowdownPercentiles(99)
		label := c.sched
		if c.fleet {
			label = fmt.Sprintf("%s@%dx%d", c.sched, fleetHosts, fleetCores)
		}
		depthLabel := fmt.Sprintf("%d", c.depth)
		if c.trigger {
			depthLabel = "mix"
		}
		results[i] = cellResult{
			row: []string{
				label,
				depthLabel,
				fmt.Sprintf("%.0f%%", c.load*100),
				metrics.FormatDuration(ps[0]),
				metrics.FormatDuration(ps[1]),
				metrics.FormatDuration(sum.Mean()),
				fmt.Sprintf("%.2fx", wfr.MeanSlowdown()),
				fmt.Sprintf("%.2fx", slow[0]),
			},
			mean: wfr.MeanSlowdown(),
		}
	})

	type key struct {
		sched string
		depth int
		load  float64
	}
	mean := map[key]float64{}
	fleetMean := map[key]float64{}
	triggerMean := map[string]float64{}
	for i, c := range cells {
		rep.Rows = append(rep.Rows, results[i].row)
		switch {
		case c.trigger:
			triggerMean[c.sched] = results[i].mean
		case c.fleet:
			fleetMean[key{c.sched, c.depth, c.load}] = results[i].mean
		default:
			mean[key{c.sched, c.depth, c.load}] = results[i].mean
		}
	}

	// The headline assertion: SFS <= CFS on mean end-to-end slowdown at
	// every (depth, load) point of the sweep.
	for _, depth := range depths {
		for _, load := range loads {
			sfs := mean[key{"SFS", depth, load}]
			cfs := mean[key{"CFS", depth, load}]
			status := "holds"
			if sfs > cfs {
				status = "VIOLATED"
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"depth %d @ %.0f%%: SFS mean e2e slowdown %.2fx <= CFS %.2fx — %s",
				depth, load*100, sfs, cfs, status))
		}
	}
	// The fleet comparison is reported, not asserted: cluster-level
	// dispatch adds placement effects the single-host ordering claim
	// does not cover.
	for _, depth := range depths {
		fl := loads[len(loads)-1]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"fleet %dx%d @ depth %d: SFS mean e2e slowdown %.2fx vs CFS %.2fx (sharded JSQ dispatch, %d shards)",
			fleetHosts, fleetCores, depth,
			fleetMean[key{"SFS", depth, fl}], fleetMean[key{"CFS", depth, fl}], fleetShards))
	}
	// The trigger mix is reported, not asserted: diamond fan-outs and
	// queue batches mix critical-path shapes the linear-chain ordering
	// claim does not cover.
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"trigger mix @ 80%%: SFS mean e2e slowdown %.2fx vs CFS %.2fx vs FIFO %.2fx (http/queue/timer chains)",
		triggerMean["SFS"], triggerMean["CFS"], triggerMean["FIFO"]))
	// Compounding: the CFS-over-SFS advantage from the shallowest to the
	// deepest chain at the highest load.
	lo, hi := depths[0], depths[len(depths)-1]
	load := loads[len(loads)-1]
	if sfsLo := mean[key{"SFS", lo, load}]; sfsLo > 0 && mean[key{"SFS", hi, load}] > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"compounding @ %.0f%%: CFS/SFS mean-slowdown ratio %.2fx at depth %d vs %.2fx at depth %d",
			load*100, mean[key{"CFS", lo, load}]/sfsLo, lo,
			mean[key{"CFS", hi, load}]/mean[key{"SFS", hi, load}], hi))
	}
	return rep
}
