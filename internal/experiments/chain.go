package experiments

import (
	"fmt"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("chain-slowdown", "End-to-end workflow slowdown x scheduler x chain depth x load", runChainSlowdown)
}

// chainSchedulers are the schedulers the sweep compares, in report
// order: SFS against the kernel default it replaces and the FIFO
// baseline its FILTER level resembles.
var chainSchedulers = []string{"SFS", "CFS", "FIFO"}

// runChainSlowdown goes beyond the paper's per-invocation metrics: it
// sweeps scheduler x chain depth x load over the synthetic multi-stage
// family (linear chains of Table I-distributed stages, request arrivals
// calibrated so the whole chain offers the target load) and reports
// per-workflow END-TO-END slowdown — turnaround from request arrival to
// last-stage completion, over the chain's critical-path ideal. The
// expectation, asserted in the notes: SFS's mean end-to-end slowdown
// stays at or below CFS's at every depth. The per-stage win compounds
// in absolute terms — the mean end-to-end gap in time units widens as
// chains deepen — while the slowdown *ratio* typically narrows with
// depth (deeper chains inflate both schedulers' critical-path
// denominators); the compounding note reports the measured ratios so
// the trend is visible rather than assumed.
func runChainSlowdown(cfg Config) *Report {
	const cores = 16
	n := scaleN(cfg, 2400)
	depths := []int{1, 2, 4, 8}
	loads := []float64{0.8, 1.0}
	if cfg.Quick {
		depths = []int{2, 4}
		loads = []float64{1.0}
	}

	rep := &Report{
		ID:    "chain-slowdown",
		Title: "per-workflow end-to-end slowdown, SFS vs CFS vs FIFO x chain depth x load",
		Paper: "beyond the paper: function-chain workflows (Przybylski et al. end-to-end scheduling, Kaffes et al. bursty chains)",
	}
	rep.Header = []string{"sched", "depth", "load", "wf p50", "wf p99", "wf mean", "mean slowdown", "p99 slowdown"}

	type cell struct {
		sched string
		depth int
		load  float64
	}
	var cells []cell
	for _, depth := range depths {
		for _, load := range loads {
			for _, sched := range chainSchedulers {
				cells = append(cells, cell{sched, depth, load})
			}
		}
	}

	type cellResult struct {
		row  []string
		mean float64 // mean end-to-end slowdown
	}
	results := make([]cellResult, len(cells))
	cfg.fan(len(cells), func(i int) {
		c := cells[i]
		src, ccfg, err := workload.ChainStream(workload.ChainSpec{
			N: n, Cores: cores, Load: derate(c.load),
			Family: "LINEAR", Depth: c.depth, Seed: cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		inj, err := chain.NewInjector(ccfg)
		if err != nil {
			panic(err)
		}
		s, err := schedulers.New(c.sched)
		if err != nil {
			panic(err)
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: cores}, s)
		if _, err := chain.Run(src, inj, nil, eng); err != nil {
			panic(err)
		}
		wfr := metrics.WorkflowRun{Scheduler: c.sched, Workflows: inj.Workflows()}
		sum := wfr.Summarize(50, 99)
		ps := sum.Percentiles()
		slow := wfr.SlowdownPercentiles(99)
		results[i] = cellResult{
			row: []string{
				c.sched,
				fmt.Sprintf("%d", c.depth),
				fmt.Sprintf("%.0f%%", c.load*100),
				metrics.FormatDuration(ps[0]),
				metrics.FormatDuration(ps[1]),
				metrics.FormatDuration(sum.Mean()),
				fmt.Sprintf("%.2fx", wfr.MeanSlowdown()),
				fmt.Sprintf("%.2fx", slow[0]),
			},
			mean: wfr.MeanSlowdown(),
		}
	})

	type key struct {
		sched string
		depth int
		load  float64
	}
	mean := map[key]float64{}
	for i, c := range cells {
		rep.Rows = append(rep.Rows, results[i].row)
		mean[key{c.sched, c.depth, c.load}] = results[i].mean
	}

	// The headline assertion: SFS <= CFS on mean end-to-end slowdown at
	// every (depth, load) point of the sweep.
	for _, depth := range depths {
		for _, load := range loads {
			sfs := mean[key{"SFS", depth, load}]
			cfs := mean[key{"CFS", depth, load}]
			status := "holds"
			if sfs > cfs {
				status = "VIOLATED"
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"depth %d @ %.0f%%: SFS mean e2e slowdown %.2fx <= CFS %.2fx — %s",
				depth, load*100, sfs, cfs, status))
		}
	}
	// Compounding: the CFS-over-SFS advantage from the shallowest to the
	// deepest chain at the highest load.
	lo, hi := depths[0], depths[len(depths)-1]
	load := loads[len(loads)-1]
	if sfsLo := mean[key{"SFS", lo, load}]; sfsLo > 0 && mean[key{"SFS", hi, load}] > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"compounding @ %.0f%%: CFS/SFS mean-slowdown ratio %.2fx at depth %d vs %.2fx at depth %d",
			load*100, mean[key{"CFS", lo, load}]/sfsLo, lo,
			mean[key{"CFS", hi, load}]/mean[key{"SFS", hi, load}], hi))
	}
	return rep
}
