package experiments

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/metrics"
	"sort"

	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("fig6", "Standalone SFS vs CFS duration CDF across loads (16 vCPUs)", runFig6)
	register("fig7", "Standalone SFS vs CFS RTE CDF across loads", runFig7)
	register("fig8", "Percentile breakdowns of duration, SFS vs CFS per load", runFig8)
	register("fig9", "Adaptive time slice vs fixed 50/100/200 ms", runFig9)
	register("fig10", "Timeline of adapted time slice vs observed IATs", runFig10)
	register("fig11", "I/O handling: polling 1/4/8 ms vs I/O-oblivious SFS", runFig11)
	register("fig12a", "Overload handling: queueing-delay timeline, SFS vs SFS w/o hybrid", runFig12a)
	register("fig12b", "Overload handling: duration CDF, SFS vs SFS w/o hybrid", runFig12b)
}

// standaloneCores is the paper's c5a.4xlarge vCPU count.
const standaloneCores = 16

// standaloneLoads are the §VIII-A load levels.
var standaloneLoads = []float64{0.5, 0.65, 0.8, 0.9, 1.0}

// loadSweep runs SFS and CFS over the load levels on the Poisson-IAT
// Azure-duration workload (§VIII-A uses Poisson IATs).
func loadSweep(cfg Config) (sfs, cfs map[float64]metrics.Run, sfsScheds map[float64]*core.SFS) {
	n := scaleN(cfg, 10000)
	sfs = map[float64]metrics.Run{}
	cfs = map[float64]metrics.Run{}
	sfsScheds = map[float64]*core.SFS{}
	for _, load := range standaloneLoads {
		w := poissonWorkload(cfg, n, standaloneCores, load)
		s := core.New(core.DefaultConfig())
		r, _ := runOn(s, standaloneCores, w.Clone(), load)
		r.Scheduler = "SFS"
		sfs[load] = r
		sfsScheds[load] = s
		rc, _ := runOn(sched.NewCFS(sched.CFSConfig{}), standaloneCores, w.Clone(), load)
		cfs[load] = rc
	}
	return sfs, cfs, sfsScheds
}

func runFig6(cfg Config) *Report {
	sfs, cfs, _ := loadSweep(cfg)
	rep := &Report{
		ID:    "fig6",
		Title: "Performance CDF, standalone scheduler on 16 vCPUs, Poisson IATs",
		Paper: "SFS ~= CFS at 50% load; SFS maintains near-identical duration for 83% of requests at every load; CFS degrades with load",
	}
	for _, load := range standaloneLoads {
		rep.Series = append(rep.Series, durationSeries("SFS", load, sfs[load]))
	}
	for _, load := range standaloneLoads {
		rep.Series = append(rep.Series, durationSeries("CFS", load, cfs[load]))
	}
	sum := metrics.CompareRuns(cfs[1.0], sfs[1.0])
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("at 100%% load: %.0f%% of requests improved by %.1fx mean (paper: 83%% by 49.6x); %.0f%% regressed by %.2fx (paper: 17%% by 1.29x)",
			100*sum.ShortFraction, sum.ShortSpeedupArith, 100*sum.LongFraction, sum.LongSlowdownArith),
		fmt.Sprintf("SFS median across loads: %s..%s (paper: ~0.1s at every load)",
			metrics.FormatDuration(sfs[0.5].Percentiles([]float64{50})[0]),
			metrics.FormatDuration(sfs[1.0].Percentiles([]float64{50})[0])))
	return rep
}

func runFig7(cfg Config) *Report {
	sfs, cfs, _ := loadSweep(cfg)
	rep := &Report{
		ID:    "fig7",
		Title: "RTE CDF, standalone scheduler on 16 vCPUs",
		Paper: "93%/88% of requests reach RTE >= 0.95 under SFS at 65%/80% load, vs 55%/35% under CFS",
	}
	for _, load := range standaloneLoads {
		rep.Series = append(rep.Series, rteSeries("SFS", load, sfs[load]))
		rep.Series = append(rep.Series, rteSeries("CFS", load, cfs[load]))
	}
	for _, c := range []struct {
		load               float64
		paperSFS, paperCFS float64
	}{{0.65, 0.93, 0.55}, {0.8, 0.88, 0.35}} {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"RTE>=0.95 at %.0f%% load: SFS %.0f%% (paper %.0f%%), CFS %.0f%% (paper %.0f%%)",
			c.load*100,
			100*sfs[c.load].FractionRTEAtLeast(0.95), 100*c.paperSFS,
			100*cfs[c.load].FractionRTEAtLeast(0.95), 100*c.paperCFS))
	}
	return rep
}

func runFig8(cfg Config) *Report {
	sfs, cfs, _ := loadSweep(cfg)
	rep := &Report{
		ID:     "fig8",
		Title:  "Percentile breakdowns of function execution duration",
		Paper:  "SFS 99.9th at 80% load only 47.1% above CFS; CFS 99.9th grows 3.3s->22.1s from 50% to 65% load; SFS median ~0.1s at all loads",
		Header: append([]string{"scheduler/load"}, pctHeader()...),
	}
	for _, load := range standaloneLoads {
		rep.Rows = append(rep.Rows, pctRow(fmt.Sprintf("SFS %.0f%%", load*100), sfs[load]))
		rep.Rows = append(rep.Rows, pctRow(fmt.Sprintf("CFS %.0f%%", load*100), cfs[load]))
	}
	s999 := sfs[0.8].Percentiles([]float64{99.9})[0]
	c999 := cfs[0.8].Percentiles([]float64{99.9})[0]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"99.9th percentile at 80%% load: SFS %s vs CFS %s (%.0f%% higher; paper +47.1%%)",
		metrics.FormatDuration(s999), metrics.FormatDuration(c999),
		100*(float64(s999)/float64(c999)-1)))
	return rep
}

func pctHeader() []string {
	h := make([]string, len(metrics.StandardPercentiles))
	for i, p := range metrics.StandardPercentiles {
		h[i] = fmt.Sprintf("p%g(ms)", p)
	}
	return h
}

func pctRow(name string, r metrics.Run) []string {
	row := []string{name}
	for _, d := range r.Percentiles(metrics.StandardPercentiles) {
		row = append(row, fmtMS(d))
	}
	return row
}

// runFig9 compares the adaptive heuristic against statically fixed
// slices at 80% load on the trace-driven workload.
func runFig9(cfg Config) *Report {
	const cores = standaloneCores
	n := scaleN(cfg, 10000)
	w := azureWorkload(cfg, n, cores, 0.8, nil, 0)
	rep := &Report{
		ID:    "fig9",
		Title: "Adaptive time slice tuning vs statically fixed time slices (80% load)",
		Paper: "no static S is optimal: S=50ms helps ~30% of short requests but hurts the rest; adaptive SFS strikes the best balance",
	}
	variants := []struct {
		name  string
		fixed time.Duration
	}{
		{"SFS", 0},
		{"SFS 50", 50 * time.Millisecond},
		{"SFS 100", 100 * time.Millisecond},
		{"SFS 200", 200 * time.Millisecond},
	}
	means := map[string]time.Duration{}
	for _, v := range variants {
		c := core.DefaultConfig()
		c.FixedSlice = v.fixed
		r, _ := runOn(core.New(c), cores, w.Clone(), 0.8)
		r.Scheduler = v.name
		rep.Series = append(rep.Series, Series{Name: v.name, Points: r.DurationCDF()})
		means[v.name] = r.MeanTurnaround()
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"mean turnaround: adaptive %s, fixed50 %s, fixed100 %s, fixed200 %s",
		metrics.FormatDuration(means["SFS"]), metrics.FormatDuration(means["SFS 50"]),
		metrics.FormatDuration(means["SFS 100"]), metrics.FormatDuration(means["SFS 200"])))
	return rep
}

// runFig10 extracts the slice-adaptation timeline against observed IATs.
func runFig10(cfg Config) *Report {
	const cores = standaloneCores
	n := scaleN(cfg, 10000)
	w := azureWorkload(cfg, n, cores, 0.8, nil, 0)
	s := core.New(core.DefaultConfig())
	runOn(s, cores, w.Clone(), 0.8)
	rep := &Report{
		ID:     "fig10",
		Title:  "Timeline of time slice changes vs IATs during the workload",
		Paper:  "S tracks the sliding-window mean IAT x cores, rising during lulls and dropping during bursts",
		Header: []string{"t(s)", "S(ms)", "meanIAT(ms)"},
	}
	var sPts, iatPts []stats.CDFPoint
	for _, p := range s.Stat.SliceTimeline {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.2f", p.T.Seconds()), fmtMS(p.S), fmtMS(p.MeanIAT),
		})
		sPts = append(sPts, stats.CDFPoint{X: p.T.Seconds(), F: float64(p.S) / float64(time.Millisecond)})
		iatPts = append(iatPts, stats.CDFPoint{X: p.T.Seconds(), F: float64(p.MeanIAT) / float64(time.Millisecond)})
	}
	rep.Series = append(rep.Series,
		Series{Name: "S(ms) over time", Points: sPts, Line: true},
		Series{Name: "meanIAT(ms) over time", Points: iatPts, Line: true})
	rep.Notes = append(rep.Notes, fmt.Sprintf("%d recalculations over the run (every %d requests)",
		len(s.Stat.SliceTimeline)-1, core.DefaultConfig().WindowSize))
	return rep
}

// runFig11 toggles the I/O knob for 75% of requests (one leading
// 10-100ms op) and sweeps the polling interval.
func runFig11(cfg Config) *Report {
	const cores = standaloneCores
	n := scaleN(cfg, 10000)
	w := azureWorkload(cfg, n, cores, 0.8, nil, 0.75)
	rep := &Report{
		ID:    "fig11",
		Title: "Handling I/O: polling intervals vs I/O-oblivious SFS",
		Paper: "I/O-oblivious SFS wastes slice credit waiting for I/O and demotes short functions; performance insensitive to 1-8 ms polling",
	}
	type variant struct {
		name    string
		poll    time.Duration
		ioAware bool
	}
	variants := []variant{
		{"SFS + 1ms", time.Millisecond, true},
		{"SFS + 4ms", 4 * time.Millisecond, true},
		{"SFS + 8ms", 8 * time.Millisecond, true},
		{"I/O-oblivious SFS", 0, false},
	}
	means := map[string]time.Duration{}
	demotions := map[string]int{}
	for _, v := range variants {
		c := core.DefaultConfig()
		c.IOAware = v.ioAware
		if v.poll > 0 {
			c.PollInterval = v.poll
		}
		s := core.New(c)
		r, _ := runOn(s, cores, w.Clone(), 0.8)
		rep.Series = append(rep.Series, Series{Name: v.name, Points: r.DurationCDF()})
		means[v.name] = r.MeanTurnaround()
		demotions[v.name] = s.Stat.Demotions
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("mean turnaround: 1ms %s, 4ms %s, 8ms %s, oblivious %s",
			metrics.FormatDuration(means["SFS + 1ms"]), metrics.FormatDuration(means["SFS + 4ms"]),
			metrics.FormatDuration(means["SFS + 8ms"]), metrics.FormatDuration(means["I/O-oblivious SFS"])),
		fmt.Sprintf("demotions: 1ms %d, 4ms %d, 8ms %d, oblivious %d (oblivious should demote far more)",
			demotions["SFS + 1ms"], demotions["SFS + 4ms"], demotions["SFS + 8ms"], demotions["I/O-oblivious SFS"]))
	return rep
}

// fig12Runs executes SFS with and without the hybrid overload path on
// the trace workload with five injected transient-overload spikes, the
// shape of the paper's Fig 12(a) workload.
func fig12Runs(cfg Config) (hybrid, plain *core.SFS, hr, pr metrics.Run) {
	const cores = standaloneCores
	n := scaleN(cfg, 10000)
	// Each spike dumps enough near-simultaneous work to exceed the
	// FILTER pool's drain rate for several seconds (the paper's spikes
	// reach tens of seconds of queueing delay). The floor keeps the
	// spikes overload-triggering at quick scale.
	width := n / 20
	if width < 150 {
		width = 150
	}
	w := workload.AzureSampled(workload.AzureSampledSpec{
		N: n, Cores: cores, Load: derate(0.9), Seed: cfg.Seed,
		Spikes: 5, SpikeWidth: width,
	})
	hybrid = core.New(core.DefaultConfig())
	hr, _ = runOn(hybrid, cores, w.Clone(), 1.0)
	c := core.DefaultConfig()
	c.Hybrid = false
	plain = core.New(c)
	pr, _ = runOn(plain, cores, w.Clone(), 1.0)
	return hybrid, plain, hr, pr
}

func runFig12a(cfg Config) *Report {
	hybrid, plain, _, _ := fig12Runs(cfg)
	rep := &Report{
		ID:    "fig12a",
		Title: "Timeline of global-queue delays: SFS vs SFS w/o hybrid",
		Paper: "without hybrid, queueing-delay spikes reach tens of seconds and drain slowly; hybrid flattens the curve",
	}
	toSeries := func(name string, s *core.SFS) Series {
		pts := make([]stats.CDFPoint, 0, len(s.Stat.QueueDelays))
		for _, d := range s.Stat.QueueDelays {
			pts = append(pts, stats.CDFPoint{X: float64(d.Seq), F: d.Delay.Seconds()})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		return Series{Name: name, Points: pts, Line: true}
	}
	rep.Series = append(rep.Series, toSeries("SFS", hybrid), toSeries("SFS w/o hybrid", plain))
	maxOf := func(s *core.SFS) time.Duration {
		var m time.Duration
		for _, d := range s.Stat.QueueDelays {
			if d.Delay > m {
				m = d.Delay
			}
		}
		return m
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("max queue delay: hybrid %s vs no-hybrid %s; %d requests overload-routed to CFS",
			metrics.FormatDuration(maxOf(hybrid)), metrics.FormatDuration(maxOf(plain)),
			hybrid.Stat.OverloadRouted))
	return rep
}

func runFig12b(cfg Config) *Report {
	_, _, hr, pr := fig12Runs(cfg)
	rep := &Report{
		ID:    "fig12b",
		Title: "CDF of function duration: SFS vs SFS w/o hybrid",
		Paper: "hybrid reduces turnaround considerably for ~50% of requests",
	}
	rep.Series = append(rep.Series,
		Series{Name: "SFS", Points: hr.DurationCDF()},
		Series{Name: "SFS w/o hybrid", Points: pr.DurationCDF()})
	rep.Notes = append(rep.Notes, fmt.Sprintf("mean turnaround: hybrid %s vs no-hybrid %s",
		metrics.FormatDuration(hr.MeanTurnaround()), metrics.FormatDuration(pr.MeanTurnaround())))
	return rep
}
