package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryIndexOnce: Fan must invoke fn exactly once per index
// at any worker count, including nested fans.
func TestPoolRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		p := NewPool(workers)
		const n = 100
		var counts [n]int32
		p.Fan(n, func(i int) {
			// Nested fan borrows from the same pool without deadlock.
			p.Fan(3, func(int) {})
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestPoolBoundsConcurrency: at most `workers` cells run at once.
func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	var cur, max int32
	var mu sync.Mutex
	p.Fan(64, func(int) {
		n := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if n > max {
			max = n
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if max > workers {
		t.Fatalf("observed %d concurrent cells, pool allows %d", max, workers)
	}
}

// TestNilPoolFansSerially: experiments run outside RunAll (zero Config)
// must still work.
func TestNilPoolFansSerially(t *testing.T) {
	var cfg Config
	order := []int{}
	cfg.fan(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fan out of order: %v", order)
		}
	}
}

// TestDeriveSeed: positional seeding is deterministic, sensitive to
// both inputs, and decorrelates sibling experiments.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, "fig6") != DeriveSeed(42, "fig6") {
		t.Fatal("DeriveSeed is not deterministic")
	}
	if DeriveSeed(42, "fig6") == DeriveSeed(42, "fig7") {
		t.Fatal("sibling experiments share a derived seed")
	}
	if DeriveSeed(42, "fig6") == DeriveSeed(43, "fig6") {
		t.Fatal("base seed does not influence the derived seed")
	}
}

// TestRunAllDeterministicAcrossWorkers is the parallel-correctness
// contract: the full suite at 8 workers must render byte-identical
// reports and CSVs to the serial run, experiment by experiment.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	cfg := Config{Quick: true, Seed: 42}
	serial := RunAll(cfg, 1)
	parallel := RunAll(cfg, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("report counts differ: %d vs %d", len(serial), len(parallel))
	}
	exps := All()
	for i := range serial {
		if serial[i].ID != exps[i].ID || parallel[i].ID != exps[i].ID {
			t.Fatalf("report %d out of order: %s / %s / %s", i, serial[i].ID, parallel[i].ID, exps[i].ID)
		}
		if a, b := serial[i].Render(), parallel[i].Render(); a != b {
			t.Errorf("%s: rendered report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", exps[i].ID, a, b)
		}
		if a, b := serial[i].CSV(), parallel[i].CSV(); a != b {
			t.Errorf("%s: CSV bytes differ between workers=1 and workers=8", exps[i].ID)
		}
	}
}

// TestRunOneMatchesRunAll: a lone -id rerun must reproduce that slice
// of the full sweep byte for byte (same derived seed, same report).
func TestRunOneMatchesRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	cfg := Config{Quick: true, Seed: 42}
	all := RunAll(cfg, 4)
	e, ok := ByID("fig6")
	if !ok {
		t.Fatal("fig6 missing")
	}
	lone := RunOne(cfg, e, 4)
	for i, exp := range All() {
		if exp.ID != "fig6" {
			continue
		}
		if lone.Render() != all[i].Render() {
			t.Fatal("RunOne(fig6) differs from the fig6 slice of RunAll")
		}
	}
}

// TestDeriveSeedDistinctAdjacentIDs: adjacent experiment IDs — the
// near-identical strings real registries produce (fig1/fig2, exp-0/
// exp-1, one-character and one-digit deltas) — must map to pairwise
// distinct seeds for many base seeds, and every registered experiment
// ID must already be collision-free.
func TestDeriveSeedDistinctAdjacentIDs(t *testing.T) {
	uniq := map[string]bool{}
	var ids []string
	add := func(id string) {
		if !uniq[id] {
			uniq[id] = true
			ids = append(ids, id)
		}
	}
	for i := 0; i < 64; i++ {
		add(fmt.Sprintf("exp-%d", i))
		add(fmt.Sprintf("fig%d", i))
	}
	for _, e := range All() {
		add(e.ID)
	}
	for _, base := range []uint64{0, 1, 42, ^uint64(0)} {
		seen := map[uint64]string{}
		for _, id := range ids {
			s := DeriveSeed(base, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: IDs %q and %q derive the same seed %d", base, prev, id, s)
			}
			seen[s] = id
			if s == base {
				t.Errorf("base %d: ID %q derives the base seed itself", base, id)
			}
		}
	}
	// The same ID under adjacent base seeds must also decorrelate.
	for i := uint64(0); i < 64; i++ {
		if DeriveSeed(i, "keepalive") == DeriveSeed(i+1, "keepalive") {
			t.Fatalf("bases %d and %d collide for one ID", i, i+1)
		}
	}
}
