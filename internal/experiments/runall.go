package experiments

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the deterministic parallel runner. Two rules make
// parallel runs byte-identical to serial ones:
//
//  1. Seeding is positional, not temporal. Every experiment runs with a
//     seed derived from (base seed, experiment ID) — DeriveSeed — so the
//     randomness an experiment sees never depends on which worker picked
//     it up or in what order. cmd/experiments applies the same
//     derivation when running a single -id, so a lone rerun of fig6
//     reproduces the fig6 of a full -all sweep.
//
//  2. Collection is ordered, not racy. Workers write into per-index
//     slots; rows, notes, and reports are assembled from those slots in
//     registry/cell order after the fan-out completes. Nothing is
//     appended from a worker.
//
// Inner sweeps reuse the same pool: an experiment that fans its
// (family, memory, policy) cells calls Config.fan, which borrows idle
// workers when available and otherwise runs the cell inline on the
// caller. The caller always makes progress itself, so nested fan-outs
// can never deadlock the pool, and total concurrency stays bounded by
// the worker count.

// Pool is a bounded worker pool shared by the experiment runner and the
// inner sweeps of individual experiments. A Pool with W workers holds
// W-1 tokens: the calling goroutine is itself the W-th worker.
type Pool struct {
	tokens chan struct{}
}

// NewPool returns a pool that runs at most workers cells concurrently
// (including the caller). workers < 1 is treated as 1, i.e. fully
// serial execution.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tokens: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Fan runs fn(0), ..., fn(n-1), each exactly once. Indices are claimed
// from a shared atomic counter by the caller and by helper goroutines
// recruited from idle workers, so a long iteration running on the
// caller never blocks the rest of the fan-out: freed workers keep
// pulling the remaining indices (no head-of-line blocking). Before
// claiming each index the caller also recruits helpers for any tokens
// that freed up mid-fan. Fan returns once all n have completed. fn must
// write results to per-index storage — Fan guarantees completion, not
// ordering. A nil pool fans serially.
func (p *Pool) Fan(n int, fn func(i int)) {
	if p == nil || cap(p.tokens) == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	claim := func() int { return int(atomic.AddInt64(&next, 1)) }
	var wg sync.WaitGroup
	for {
		// Recruit a helper per idle worker while unclaimed work remains.
		// Helpers drain the counter and return their token on exit;
		// none of this blocks, so nested fans stay deadlock-free.
		for int(atomic.LoadInt64(&next))+1 < n {
			select {
			case <-p.tokens:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { p.tokens <- struct{}{} }()
					for {
						i := claim()
						if i >= n {
							return
						}
						fn(i)
					}
				}()
				continue
			default:
			}
			break
		}
		i := claim()
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}

// DeriveSeed maps (base seed, experiment ID) to the seed that
// experiment runs with, via FNV-1a over the ID and a splitmix64
// finalizer. The derivation is a pure function of its inputs — worker
// count and completion order cannot influence it — and decorrelates
// sibling experiments that would otherwise replay identical synthetic
// arrivals from the shared base seed.
func DeriveSeed(base uint64, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	x := base ^ h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ForExperiment returns the config an individual experiment must run
// with: the same scale knobs, the derived per-experiment seed.
func (cfg Config) ForExperiment(id string) Config {
	cfg.Seed = DeriveSeed(cfg.Seed, id)
	return cfg
}

// fan distributes an experiment's independent sweep cells across the
// runner's pool (inline when the experiment runs without one).
func (cfg Config) fan(n int, fn func(i int)) {
	cfg.pool.Fan(n, fn)
}

// RunAll runs every registered experiment across workers and returns
// their reports in registry (paper) order. The same cfg.Seed produces
// byte-identical reports at any worker count.
func RunAll(cfg Config, workers int) []*Report {
	exps := All()
	reports := make([]*Report, len(exps))
	cfg.pool = NewPool(workers)
	cfg.pool.Fan(len(exps), func(i int) {
		start := time.Now()
		rep := exps[i].Run(cfg.ForExperiment(exps[i].ID))
		rep.WallClock = time.Since(start)
		reports[i] = rep
	})
	return reports
}

// RunOne runs a single experiment with the same derived seed and inner
// sweep parallelism it would get inside RunAll, so a lone -id rerun
// reproduces that slice of the full sweep byte for byte.
func RunOne(cfg Config, e Experiment, workers int) *Report {
	cfg.pool = NewPool(workers)
	start := time.Now()
	rep := e.Run(cfg.ForExperiment(e.ID))
	rep.WallClock = time.Since(start)
	return rep
}
