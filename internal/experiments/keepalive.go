package experiments

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("keepalive", "Keep-alive policy x memory budget x scenario family", runKeepalive)
}

// keepaliveTTL is the fixed window swept by the TTL policy (and HIST's
// insufficient-history fallback): deliberately shorter than the
// provider-style default so the experiment exposes the policies'
// differences — a 10 s window covers dense bursts but misses the
// periodic family's longer inter-arrival gaps, which only the
// histogram policy's per-app predictions bridge.
const keepaliveTTL = 10 * time.Second

// keepaliveFamilies are the scenario families the experiment sweeps:
// azure's bursty sampling, the Shahrad-style periodic population, and
// two registry families whose keep-alive behaviour differs by
// construction — diurnal (night troughs outlast fixed TTL windows)
// and multitenant (a heavy bursty tenant competes with nine light
// ones for the shared warm pool).
var keepaliveFamilies = []string{"azure", "periodic", "diurnal", "multitenant"}

// periodicApps builds the periodic scenario family: apps invocations
// streams merged into one trace, app i firing every 5 s + i·(55/apps) s
// with constant 80 ms of CPU, phases staggered so arrivals interleave.
// This is the shape Shahrad et al. report dominating production FaaS
// populations — many rarely-but-regularly invoked functions — and the
// regime where keep-alive policy choice decides the cold-start rate.
func periodicApps(n, apps int, seed uint64) trace.Source {
	srcs := make([]trace.Source, apps)
	per := n / apps
	for i := 0; i < apps; i++ {
		period := 5*time.Second + time.Duration(i)*55*time.Second/time.Duration(apps-1)
		profile := workload.AppProfile{Name: fmt.Sprintf("app%02d", i), CPUFraction: 1}
		src := workload.Stream(workload.Spec{
			N:        per,
			Duration: dist.Constant{Value: 80 * time.Millisecond},
			Arrival:  dist.NewTraceProcess([]time.Duration{period}),
			Apps:     []workload.AppChoice{{Profile: profile, Weight: 1}},
			Seed:     seed + uint64(i),
		})
		offset := period * time.Duration(i) / time.Duration(apps)
		srcs[i] = trace.Map(src, func(t *task.Task) *task.Task {
			t.Arrival += offset
			return t
		})
	}
	return trace.Merge(srcs...)
}

// runKeepalive sweeps every registered keep-alive policy across memory
// budgets and four scenario families on a single SFS host, then probes
// the dispatch-side interaction on a small cluster. The expected
// ordering at equal memory — HIST >= TTL >= NONE on warm-hit ratio —
// falls out of construction: NONE never reuses, a fixed window misses
// every app whose inter-arrival gap exceeds it, and the histogram
// learns each app's gap and keeps (or pre-warms) exactly as long as
// needed.
func runKeepalive(cfg Config) *Report {
	const cores = 16
	nAzure := scaleN(cfg, 6000)
	nPeriodic := scaleN(cfg, 1920)
	const apps = 24
	memories := []int{0, 2048, 1024}
	if cfg.Quick {
		memories = []int{0, 1024}
	}

	rep := &Report{
		ID:    "keepalive",
		Title: "keep-alive policy x memory budget x scenario family, SFS host",
		Paper: "beyond the paper: stateful cold starts over the pre-warmed §IX setup (Shahrad et al. keep-alive, Przybylski et al. placement)",
	}
	rep.Header = []string{"family", "memory", "policy", "warm-hit", "cold", "cold-mean", "p50", "p99", "mean"}

	type key struct {
		family string
		memory int
	}
	ratios := map[key]map[string]float64{}

	mix := []workload.AppChoice{
		{Profile: workload.AppFib, Weight: 0.5},
		{Profile: workload.AppMd, Weight: 0.25},
		{Profile: workload.AppSa, Weight: 0.25},
	}
	mkSource := func(family string) trace.Source {
		if family == "periodic" {
			return periodicApps(nPeriodic, apps, cfg.Seed)
		}
		// Everything else comes from the scenario-family registry:
		// azure's bursty sampling, diurnal's day/night cycle (long
		// night gaps stress fixed TTL windows), and multitenant's
		// per-tenant pools (one heavy tenant crowding out nine light
		// ones under a shared memory budget).
		src, err := workload.NewFamily(family, workload.FamilyConfig{
			N: nAzure, Cores: cores, Load: derate(0.8), Seed: cfg.Seed, Apps: mix,
		})
		if err != nil {
			panic(err)
		}
		return src
	}

	memLabel := func(mb int) string {
		if mb == 0 {
			return "inf"
		}
		return fmt.Sprintf("%dMB", mb)
	}

	// Every (family, memory, policy) cell is an independent simulation:
	// enumerate them up front, fan them across the runner's worker pool,
	// and assemble rows in cell order afterwards so the report is
	// byte-identical at any worker count.
	type cell struct {
		family string
		mem    int
		policy string
	}
	var cells []cell
	for _, family := range keepaliveFamilies {
		for _, mem := range memories {
			for _, policy := range lifecycle.PolicyNames() {
				cells = append(cells, cell{family, mem, policy})
			}
		}
	}
	type cellResult struct {
		row   []string
		ratio float64
	}
	results := make([]cellResult, len(cells))
	cfg.fan(len(cells), func(i int) {
		c := cells[i]
		p, err := lifecycle.NewPolicy(c.policy, lifecycle.PolicyConfig{TTL: keepaliveTTL, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		mgr, err := lifecycle.New(lifecycle.Config{Policy: p, MemoryMB: c.mem, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: cores}, core.New(core.DefaultConfig()))
		if _, err := lifecycle.Run(mkSource(c.family), mgr, eng); err != nil {
			panic(err)
		}
		run := metrics.Run{Scheduler: c.policy, Tasks: eng.Tasks()}
		sum := run.Summarize(50, 99)
		ps := sum.Percentiles()
		st := mgr.Stats()
		results[i] = cellResult{
			row: []string{
				c.family, memLabel(c.mem), c.policy,
				fmt.Sprintf("%.1f%%", 100*st.WarmHitRatio()),
				fmt.Sprintf("%d", st.ColdStarts),
				metrics.FormatDuration(st.MeanColdLatency()),
				metrics.FormatDuration(ps[0]),
				metrics.FormatDuration(ps[1]),
				metrics.FormatDuration(sum.Mean()),
			},
			ratio: st.WarmHitRatio(),
		}
	})
	for i, c := range cells {
		rep.Rows = append(rep.Rows, results[i].row)
		k := key{c.family, c.mem}
		if ratios[k] == nil {
			ratios[k] = map[string]float64{}
		}
		ratios[k][c.policy] = results[i].ratio
	}

	// The headline ordering, checked at every equal-memory point.
	for _, family := range keepaliveFamilies {
		for _, mem := range memories {
			r := ratios[key{family, mem}]
			ok := r["HIST"] >= r["TTL"] && r["TTL"] >= r["NONE"]
			status := "holds"
			if !ok {
				status = "VIOLATED"
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s @ %s: HIST %.1f%% >= TTL %.1f%% >= NONE %.1f%% — %s",
				family, memLabel(mem), 100*r["HIST"], 100*r["TTL"], 100*r["NONE"], status))
		}
	}

	// Dispatch-side interaction: with per-host warm pools, routing on
	// warm state (WARMFIRST) against affinity-blind spreading (RR) and
	// static affinity (HASH). Independent runs, fanned like the cells
	// above; notes are appended in dispatcher order afterwards.
	const hosts, hostCores = 4, 8
	dispatches := []string{"RR", "HASH", "WARMFIRST"}
	dispatchNotes := make([]string, len(dispatches))
	cfg.fan(len(dispatches), func(i int) {
		dispatch := dispatches[i]
		d, err := cluster.NewDispatcher(dispatch, cluster.FactoryConfig{Hosts: hosts, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		cl, err := cluster.New(cluster.Config{
			Hosts:        hosts,
			CoresPerHost: hostCores,
			NewScheduler: func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
			Dispatcher:   d,
			NewLifecycle: func() *lifecycle.Manager {
				mgr, err := lifecycle.New(lifecycle.Config{
					Policy:   lifecycle.NewFixedTTL(keepaliveTTL),
					MemoryMB: 1024,
					Seed:     cfg.Seed,
				})
				if err != nil {
					panic(err)
				}
				return mgr
			},
		})
		if err != nil {
			panic(err)
		}
		src := workload.AzureSampledStream(workload.AzureSampledSpec{
			N: nAzure, Cores: hosts * hostCores, Load: derate(0.8), Seed: cfg.Seed,
			Apps: []workload.AppChoice{
				{Profile: workload.AppFib, Weight: 0.5},
				{Profile: workload.AppMd, Weight: 0.25},
				{Profile: workload.AppSa, Weight: 0.25},
			},
		})
		res, err := cl.Run(src)
		if err != nil {
			panic(err)
		}
		dispatchNotes[i] = fmt.Sprintf(
			"cluster %dx%d, TTL@1024MB, %s dispatch: %.1f%% warm hits, mean %s",
			hosts, hostCores, dispatch, 100*res.Lifecycle.WarmHitRatio(),
			metrics.FormatDuration(res.Merged.MeanTurnaround()))
	})
	rep.Notes = append(rep.Notes, dispatchNotes...)
	return rep
}
