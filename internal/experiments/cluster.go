package experiments

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("cluster-dispatch", "Dispatch policy x host count x load over SFS hosts", runClusterDispatch)
}

// runClusterDispatch goes beyond the paper's single-host evaluation: it
// sweeps every registered dispatch policy across cluster sizes and load
// levels, with each host running SFS, on the Azure-sampled,
// synthetic-RPS, and flash-crowd scenario families. The comparison shows where
// cluster-level placement starts to dominate OS-level scheduling:
// affinity policies concentrate bursts that per-host SFS then has to
// absorb, while pull-based dispatch trades central queue delay for
// never oversubscribing a host (the Hiku trade-off).
//
// Every (family, load, hosts, policy) cell is an independent cluster
// simulation, so the sweep fans across the runner's worker pool; rows
// and best-policy notes are assembled in cell order afterwards, keeping
// the report byte-identical at any worker count.
//
// Fleets of shardedFloor hosts or more run on the sharded parallel
// engine (shardedShards shards): serial event-at-a-time simulation stops
// scaling there, and the sharded engine's results are themselves
// deterministic at any shard or worker count (internal/cluster), so the
// report stays byte-stable.
func runClusterDispatch(cfg Config) *Report {
	const coresPerHost = 8
	const shardedFloor, shardedShards = 64, 8
	n := scaleN(cfg, 10000)
	hostCounts := []int{2, 4, 8, 64}
	loads := []float64{0.8, 1.0}
	if cfg.Quick {
		hostCounts = []int{2, 4, 64}
		loads = []float64{1.0}
	}

	rep := &Report{
		ID:    "cluster-dispatch",
		Title: fmt.Sprintf("dispatch policy x host count x load, SFS hosts with %d cores each", coresPerHost),
		Paper: "beyond the paper: cluster-level placement over per-host SFS (Kaffes et al., Hiku)",
	}
	rep.Header = []string{"family", "load", "hosts", "dispatch", "p50", "p99", "mean", "RTE>=0.95", "qdelay max"}

	type cell struct {
		family string
		load   float64
		hosts  int
		policy string
	}
	var cells []cell
	for _, hosts := range hostCounts {
		for _, load := range loads {
			for _, policy := range cluster.Names() {
				cells = append(cells, cell{"azure", load, hosts, policy})
			}
		}
		// Synthetic RPS ramp crossing cluster saturation, as in the
		// synth-ramp experiment but calibrated to the whole cluster.
		for _, policy := range cluster.Names() {
			cells = append(cells, cell{"synth-ramp", 0, hosts, policy})
		}
		// Flash crowds (registry family, its own 0.6 base load): 50x
		// decay spikes of one correlated app are the adversarial case
		// for affinity dispatch — HASH pins the whole crowd to one
		// host while load-aware policies spread it.
		for _, policy := range cluster.Names() {
			cells = append(cells, cell{"flashcrowd", 0, hosts, policy})
		}
	}

	type cellResult struct {
		row  []string
		mean time.Duration
	}
	results := make([]cellResult, len(cells))
	cfg.fan(len(cells), func(i int) {
		c := cells[i]
		total := c.hosts * coresPerHost
		var src trace.Source
		if c.family == "azure" {
			src = workload.AzureSampledStream(workload.AzureSampledSpec{
				N: n, Cores: total, Load: derate(c.load), Seed: cfg.Seed,
			})
		} else if c.family == "flashcrowd" {
			var err error
			src, err = workload.NewFamily("flashcrowd", workload.FamilyConfig{
				N: n, Cores: total, Seed: cfg.Seed,
			})
			if err != nil {
				panic(err)
			}
		} else {
			meanSvc := workload.TableIDistribution().Mean()
			satRPS := float64(total) / meanSvc.Seconds()
			src = workload.SyntheticStream(workload.SyntheticSpec{
				Shape:     trace.ShapeRamp,
				StartRPS:  0.3 * satRPS,
				TargetRPS: 1.2 * satRPS,
				Horizon:   time.Duration(float64(n) / (0.75 * satRPS) * float64(time.Second)),
				N:         n,
				Seed:      cfg.Seed,
			})
		}
		d, err := cluster.NewDispatcher(c.policy, cluster.FactoryConfig{Hosts: c.hosts, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		shards := 0
		if c.hosts >= shardedFloor {
			shards = shardedShards
		}
		cl, err := cluster.New(cluster.Config{
			Hosts:        c.hosts,
			CoresPerHost: coresPerHost,
			NewScheduler: func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
			Dispatcher:   d,
			Shards:       shards,
		})
		if err != nil {
			panic(err)
		}
		res, err := cl.Run(src)
		if err != nil {
			panic(err)
		}
		sum := res.Merged.Summarize(50, 99)
		ps := sum.Percentiles()
		mean := sum.Mean()
		results[i] = cellResult{
			row: []string{
				c.family,
				fmt.Sprintf("%.0f%%", c.load*100),
				fmt.Sprintf("%d", c.hosts),
				c.policy,
				metrics.FormatDuration(ps[0]),
				metrics.FormatDuration(ps[1]),
				metrics.FormatDuration(mean),
				fmt.Sprintf("%.1f%%", 100*res.Merged.FractionRTEAtLeast(0.95)),
				metrics.FormatDuration(res.QueueDelayMax),
			},
			mean: mean,
		}
	})

	type key struct {
		family string
		load   float64
		hosts  int
	}
	best := map[key]struct {
		policy string
		mean   time.Duration
	}{}
	for i, c := range cells {
		rep.Rows = append(rep.Rows, results[i].row)
		k := key{c.family, c.load, c.hosts}
		if b, ok := best[k]; !ok || results[i].mean < b.mean {
			best[k] = struct {
				policy string
				mean   time.Duration
			}{c.policy, results[i].mean}
		}
	}

	for _, hosts := range hostCounts {
		for _, load := range loads {
			if b, ok := best[key{"azure", load, hosts}]; ok {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"azure %d hosts @ %.0f%%: best mean turnaround under %s (%s)",
					hosts, load*100, b.policy, metrics.FormatDuration(b.mean)))
			}
		}
		if b, ok := best[key{"synth-ramp", 0, hosts}]; ok {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"synth-ramp %d hosts: best mean turnaround under %s (%s)",
				hosts, b.policy, metrics.FormatDuration(b.mean)))
		}
		if b, ok := best[key{"flashcrowd", 0, hosts}]; ok {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"flashcrowd %d hosts: best mean turnaround under %s (%s)",
				hosts, b.policy, metrics.FormatDuration(b.mean)))
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"fleets of %d+ hosts run on the sharded engine (%d shards, %v dispatch latency); results are deterministic at any shard count",
		shardedFloor, shardedShards, cluster.DefaultDispatchLatency))
	return rep
}
