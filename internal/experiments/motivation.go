package experiments

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/azure"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("fig1", "CDF of average function execution duration, Azure Functions trace", runFig1)
	register("table1", "Duration-range probabilities and fib N mapping", runTable1)
	register("fig2a", "Motivation: duration CDF under FIFO/RR/CFS/SRTF/IDEAL (12 cores, 80%/100%)", runFig2a)
	register("fig2b", "Motivation: RTE CDF under FIFO/RR/CFS/SRTF/IDEAL (12 cores, 80%/100%)", runFig2b)
}

// runFig1 regenerates the Azure duration CDF of §IV-A: seven orders of
// magnitude, with 37.2% / 57.2% / 99.9% of functions under 300 ms / 1 s /
// 224 s.
func runFig1(cfg Config) *Report {
	n := scaleN(cfg, 80000)
	tr := azure.Synthesize(n, cfg.Seed)
	ds := tr.AvgDurations()
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	rep := &Report{
		ID:    "fig1",
		Title: "CDF of the average function execution duration (synthetic Azure trace)",
		Paper: "37.2% < 300 ms, 57.2% < 1 s, 99.9% < 224 s; durations span seven orders of magnitude",
	}
	rep.Series = append(rep.Series, Series{Name: "Azure avg duration (ms)", Points: stats.CDF(xs)})
	for _, a := range []struct {
		bound time.Duration
		want  float64
	}{{300 * time.Millisecond, 0.372}, {time.Second, 0.572}, {224 * time.Second, 0.999}} {
		got := stats.FractionBelow(xs, float64(a.bound)/float64(time.Millisecond))
		rep.Notes = append(rep.Notes, fmt.Sprintf("fraction < %v: measured %.3f (paper %.3f)", a.bound, got, a.want))
	}
	return rep
}

// runTable1 reproduces Table I: the probability of each duration range
// and the fib N parameters that realize it under the fib cost model.
func runTable1(cfg Config) *Report {
	rep := &Report{
		ID:     "table1",
		Title:  "Probability distribution of function duration ranges and fib Ns",
		Paper:  "40.6% 0-50ms (N 20-26), 9.8% 50-100ms (27-28), 6.8% 100-200ms (29), 22.7% 200-400ms (30-31), 15.7% >=1550ms (34-35)",
		Header: []string{"probability", "range", "fib N", "fib(NLo)", "fib(NHi)"},
	}
	for _, row := range workload.TableI() {
		rng := fmt.Sprintf("%v-%v", row.Lo, row.Hi)
		if row.Hi == 0 {
			rng = fmt.Sprintf(">=%v", row.Lo)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.1f%%", row.Probability*100),
			rng,
			fmt.Sprintf("%d-%d", row.FibNLo, row.FibNHi),
			fmtMS(workload.FibDuration(row.FibNLo)) + "ms",
			fmtMS(workload.FibDuration(row.FibNHi)) + "ms",
		})
	}
	rep.Notes = append(rep.Notes,
		"fib cost model pins fib(26)=45ms and scales by the golden ratio per N; each range's fib Ns land inside the range")
	return rep
}

// motivationSchedulers builds the Fig 2 scheduler lineup.
func motivationSchedulers() []func() cpusim.Scheduler {
	return []func() cpusim.Scheduler{
		func() cpusim.Scheduler { return sched.NewSRTF() },
		func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
		func() cpusim.Scheduler { return sched.NewFIFO() },
		func() cpusim.Scheduler { return sched.NewRR(0) },
	}
}

// fig2Runs executes the motivation study: the Azure-sampled workload on
// 12 cores at 80% and 100% load under every Linux policy plus the SRTF
// oracle and the IDEAL baseline.
func fig2Runs(cfg Config) ([]metrics.Run, metrics.Run) {
	const cores = 12
	n := scaleN(cfg, 10000)
	var runs []metrics.Run
	for _, load := range []float64{0.8, 1.0} {
		w := azureWorkload(cfg, n, cores, load, nil, 0)
		for _, mk := range motivationSchedulers() {
			r, _ := runOn(mk(), cores, w.Clone(), load)
			runs = append(runs, r)
		}
	}
	// IDEAL: zero contention (load label 0 means "IDEAL").
	w := azureWorkload(cfg, n, cores, 1.0, nil, 0)
	tasks := w.Clone()
	sched.RunIdeal(tasks)
	ideal := metrics.Run{Scheduler: "IDEAL", Load: 0, Tasks: tasks}
	return runs, ideal
}

func runFig2a(cfg Config) *Report {
	runs, ideal := fig2Runs(cfg)
	rep := &Report{
		ID:    "fig2a",
		Title: "Execution duration distribution, Azure-sampled workload on 12 cores",
		Paper: "under 100% load CFS runs >1 order of magnitude slower than SRTF (40th/70th pct slowdowns of 16x/24x); FIFO worst (convoy effect)",
	}
	for _, r := range runs {
		rep.Series = append(rep.Series, durationSeries(r.Scheduler, r.Load, r))
	}
	rep.Series = append(rep.Series, Series{Name: "IDEAL", Points: ideal.DurationCDF()})

	// Headline checks: SRTF vs CFS medians at 100%.
	var srtf100, cfs100, fifo100 metrics.Run
	for _, r := range runs {
		if r.Load == 1.0 {
			switch r.Scheduler {
			case "SRTF":
				srtf100 = r
			case "CFS":
				cfs100 = r
			case "FIFO":
				fifo100 = r
			}
		}
	}
	ps := []float64{40, 70}
	s := stats.DurationPercentiles(srtf100.Turnarounds(), ps)
	c := stats.DurationPercentiles(cfs100.Turnarounds(), ps)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("CFS/SRTF slowdown at 100%% load: p40 %.1fx (paper 16x), p70 %.1fx (paper 24x)",
			float64(c[0])/float64(s[0]), float64(c[1])/float64(s[1])),
		fmt.Sprintf("FIFO mean %.0fms vs SRTF mean %.0fms (convoy effect)",
			float64(fifo100.MeanTurnaround())/1e6, float64(srtf100.MeanTurnaround())/1e6))
	return rep
}

func runFig2b(cfg Config) *Report {
	runs, ideal := fig2Runs(cfg)
	rep := &Report{
		ID:    "fig2b",
		Title: "Run-time effectiveness (RTE) distribution, Azure-sampled workload on 12 cores",
		Paper: "11.4% (80% load) and 89.9% (100% load) of requests under CFS score RTE < 0.2",
	}
	for _, r := range runs {
		rep.Series = append(rep.Series, rteSeries(r.Scheduler, r.Load, r))
	}
	rep.Series = append(rep.Series, Series{Name: "IDEAL", Points: ideal.RTECDF()})
	for _, r := range runs {
		if r.Scheduler != "CFS" {
			continue
		}
		rtes := r.RTEs()
		low := stats.FractionBelow(rtes, 0.2)
		want := 0.114
		if r.Load == 1.0 {
			want = 0.899
		}
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("CFS %.0f%% load: RTE<0.2 for %.1f%% of requests (paper %.1f%%)",
				r.Load*100, low*100, want*100))
	}
	return rep
}
