package experiments

import (
	"fmt"
	"strings"
	"testing"
)

var quick = Config{Quick: true, Seed: 42}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "table1", "fig2a", "fig2b",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12a", "fig12b",
		"fig13", "fig14", "fig15", "fig16", "table2",
		"ablation-secondlevel", "ablation-baselines", "ablation-window",
		"ablation-overload", "ablation-tail", "ablation-queueing",
		"synth-ramp", "cluster-dispatch", "keepalive", "chain-slowdown",
		"predicted-dispatch",
	}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID found")
	}
}

// TestAllExperimentsProduceReports runs the full suite in quick mode and
// checks each report is structurally sound and renders.
func TestAllExperimentsProduceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(quick)
			if rep.ID != e.ID {
				t.Fatalf("report ID %q != experiment ID %q", rep.ID, e.ID)
			}
			if len(rep.Series) == 0 && len(rep.Rows) == 0 {
				t.Fatal("report has neither series nor rows")
			}
			out := rep.Render()
			if !strings.Contains(out, e.ID) {
				t.Fatal("render missing ID")
			}
			csv := rep.CSV()
			if len(strings.Split(strings.TrimSpace(csv), "\n")) < 2 {
				t.Fatal("CSV has no data rows")
			}
			for _, n := range rep.Notes {
				t.Log(n)
			}
		})
	}
}

// TestFig2Shape verifies the motivation study's ordering: SRTF beats
// CFS, which beats FIFO, at full load.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	runs, ideal := fig2Runs(quick)
	byName := map[string]float64{}
	for _, r := range runs {
		if r.Load == 1.0 {
			byName[r.Scheduler] = float64(r.MeanTurnaround())
		}
	}
	if !(byName["SRTF"] < byName["CFS"]) {
		t.Errorf("SRTF mean %v should beat CFS %v", byName["SRTF"], byName["CFS"])
	}
	if !(byName["CFS"] < byName["FIFO"]) {
		t.Errorf("CFS mean %v should beat FIFO %v (convoy)", byName["CFS"], byName["FIFO"])
	}
	if ideal.MeanTurnaround() <= 0 {
		t.Error("IDEAL run empty")
	}
	if float64(ideal.MeanTurnaround()) > byName["SRTF"] {
		t.Error("IDEAL should lower-bound SRTF")
	}
}

// TestFig9AdaptiveCompetitive: the adaptive slice must not be beaten
// badly by every fixed slice (it should be at or near the best).
func TestFig9AdaptiveCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := runFig9(quick)
	if len(rep.Series) != 4 {
		t.Fatalf("want 4 variants, got %d", len(rep.Series))
	}
}

// TestFig11ObliviousWorse: I/O-oblivious SFS must demote far more
// functions than any polling variant.
func TestFig11ObliviousWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := runFig11(quick)
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "demotions") {
			found = true
		}
	}
	if !found {
		t.Fatal("fig11 missing demotion note")
	}
}

// TestTable2OverheadMagnitude: the modeled overhead should land in the
// paper's single-digit-percent range.
func TestTable2OverheadMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := runTable2(quick)
	if len(rep.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		avg := row[2]
		var v float64
		if _, err := fmtSscan(avg, &v); err != nil {
			t.Fatalf("unparseable avg %q", avg)
		}
		if v <= 0 || v > 15 {
			t.Errorf("interval %s: avg overhead %s out of plausible range", row[0], avg)
		}
	}
}

// fmtSscan parses "3.6%" into a float.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(strings.TrimSuffix(s, "%"), "%f", v)
}

// TestKeepaliveOrdering: the keepalive experiment must reproduce the
// expected warm-hit ordering — HIST >= TTL >= NONE at equal memory —
// on every family × memory point, and every ordering note must report
// "holds".
func TestKeepaliveOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := runKeepalive(quick)
	checked := 0
	for _, n := range rep.Notes {
		if !strings.Contains(n, ">=") {
			continue
		}
		checked++
		if strings.Contains(n, "VIOLATED") {
			t.Errorf("ordering violated: %s", n)
		}
	}
	if checked == 0 {
		t.Fatal("keepalive report has no ordering notes")
	}
	// The periodic family is constructed so the gaps between policies
	// are wide, not ties: verify from the raw rows that HIST is
	// strictly better than TTL there at unlimited memory.
	var hist, ttl float64
	for _, row := range rep.Rows {
		if row[0] != "periodic" || row[1] != "inf" {
			continue
		}
		var v float64
		if _, err := fmtSscan(row[3], &v); err != nil {
			t.Fatalf("unparseable warm-hit %q", row[3])
		}
		switch row[2] {
		case "HIST":
			hist = v
		case "TTL":
			ttl = v
		}
	}
	if hist <= ttl {
		t.Errorf("periodic family: HIST warm-hit %.1f%% should strictly beat TTL %.1f%%", hist, ttl)
	}
}

// TestChainSlowdownOrdering: on the synthetic multi-stage family, SFS's
// mean end-to-end workflow slowdown must be at or below CFS's at every
// (depth, load) point — the chain-slowdown experiment's acceptance
// assertion, reported in its notes.
func TestChainSlowdownOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := runChainSlowdown(quick)
	checked := 0
	for _, n := range rep.Notes {
		if !strings.Contains(n, "<=") {
			continue
		}
		checked++
		if strings.Contains(n, "VIOLATED") {
			t.Errorf("SFS <= CFS end-to-end slowdown violated: %s", n)
		}
	}
	if checked == 0 {
		t.Fatal("chain-slowdown report has no ordering notes")
	}
}
