package experiments

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

func init() {
	register("synth-ramp", "Synthetic RPS ramp: SFS vs CFS as offered load crosses saturation", runSynthRamp)
}

// runSynthRamp goes beyond the paper's steady-state load levels: an
// invitro-style RPS ramp sweeps the offered load from comfortable to
// past saturation within one trace, so the comparison shows where along
// the ramp each scheduler's tail detaches — the transition the
// steady-state figures can only bracket.
func runSynthRamp(cfg Config) *Report {
	const cores = 16
	n := scaleN(cfg, 10000)

	// Calibrate the ramp around the saturation rate: with Table I
	// durations on 16 cores, RPS_sat = cores / E[service]. The ramp runs
	// 0.3x..1.3x of it.
	meanSvc := workload.TableIDistribution().Mean()
	satRPS := float64(cores) / meanSvc.Seconds()
	spec := workload.SyntheticSpec{
		Shape:     trace.ShapeRamp,
		StartRPS:  0.3 * satRPS,
		TargetRPS: 1.3 * satRPS,
		Horizon:   time.Duration(float64(n) / (0.8 * satRPS) * float64(time.Second)),
		N:         n,
		Seed:      cfg.Seed,
	}
	w := workload.Synthetic(spec)

	sfsRun, _ := runOn(core.New(core.DefaultConfig()), cores, w.Clone(), 0)
	cfsRun, _ := runOn(sched.NewCFS(sched.CFSConfig{}), cores, w.Clone(), 0)

	rep := &Report{
		ID:    "synth-ramp",
		Title: fmt.Sprintf("RPS ramp %.0f → %.0f rps on %d cores (saturation ~%.0f rps)", spec.StartRPS, spec.TargetRPS, cores, satRPS),
		Paper: "beyond the paper: load-transition behaviour, not a steady-state level",
	}

	// Per-quarter p99 turnaround along the ramp: where does each
	// scheduler's tail detach?
	quarters := 4
	header := []string{"ramp quarter", "offered rps", "SFS p99", "CFS p99", "SFS mean", "CFS mean"}
	span := w.Tasks[len(w.Tasks)-1].Arrival
	for q := 0; q < quarters; q++ {
		lo := span * time.Duration(q) / time.Duration(quarters)
		hi := span * time.Duration(q+1) / time.Duration(quarters)
		if q == quarters-1 {
			hi = span + 1 // the final arrival belongs to the last quarter
		}
		sfsQ := sliceRun(sfsRun, lo, hi)
		cfsQ := sliceRun(cfsRun, lo, hi)
		midRPS := spec.StartRPS + (spec.TargetRPS-spec.StartRPS)*(float64(q)+0.5)/float64(quarters)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d/4", q+1),
			fmt.Sprintf("%.0f", midRPS),
			metrics.FormatDuration(sfsQ.Percentiles([]float64{99})[0]),
			metrics.FormatDuration(cfsQ.Percentiles([]float64{99})[0]),
			metrics.FormatDuration(sfsQ.MeanTurnaround()),
			metrics.FormatDuration(cfsQ.MeanTurnaround()),
		})
	}
	rep.Header = header
	rep.Series = append(rep.Series,
		Series{Name: "SFS", Points: sfsRun.DurationCDF()},
		Series{Name: "CFS", Points: cfsRun.DurationCDF()})

	sum := metrics.CompareRuns(cfsRun, sfsRun)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("across the whole ramp: %.0f%% of requests improved under SFS (mean %.1fx), %.0f%% regressed (mean %.2fx)",
			100*sum.ShortFraction, sum.ShortSpeedupArith, 100*sum.LongFraction, sum.LongSlowdownArith),
		fmt.Sprintf("trace: %s", w.Description))
	return rep
}

// sliceRun restricts a run to tasks arriving in [lo, hi).
func sliceRun(r metrics.Run, lo, hi time.Duration) metrics.Run {
	out := metrics.Run{Scheduler: r.Scheduler, Load: r.Load}
	for _, t := range r.Tasks {
		if t.Arrival >= lo && t.Arrival < hi {
			out.Tasks = append(out.Tasks, t)
		}
	}
	return out
}
