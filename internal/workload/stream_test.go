package workload

import (
	"bytes"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/trace"
)

// TestStreamMatchesGenerate: Generate is defined as Collect(Stream), so
// the two entry points must realize identical invocation streams.
func TestStreamMatchesGenerate(t *testing.T) {
	spec := Spec{N: 400, Cores: 4, Load: 0.9, Seed: 17, IOFraction: 0.4,
		Apps: []AppChoice{{Profile: AppFib, Weight: 1}, {Profile: AppMd, Weight: 1}}}
	w := Generate(spec)
	src := Stream(spec)
	for i, want := range w.Tasks {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("stream ended at %d", i)
		}
		if got.ID != want.ID || got.Arrival != want.Arrival || got.Service != want.Service ||
			got.App != want.App || len(got.IOOps) != len(want.IOOps) {
			t.Fatalf("task %d: stream %v vs generate %v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stream longer than generated workload")
	}
}

// TestStreamUnbounded: N == 0 streams past any fixed count and stays
// monotone.
func TestStreamUnbounded(t *testing.T) {
	src := trace.Limit(Stream(Spec{Cores: 2, Load: 0.8, Seed: 3}), 1000)
	n, err := trace.Validate(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("limited unbounded stream yielded %d", n)
	}
}

// TestWorkloadSourceReplays: Workload.Source must be a replayable view —
// repeated pulls yield isolated copies of the same stream.
func TestWorkloadSourceReplays(t *testing.T) {
	w := Generate(Spec{N: 50, Cores: 2, Load: 0.8, Seed: 5})
	a := trace.Collect(w.Source())
	a[0].CPUUsed = time.Second
	b := trace.Collect(w.Source())
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("collected %d and %d", len(a), len(b))
	}
	if b[0].CPUUsed != 0 || w.Tasks[0].CPUUsed != 0 {
		t.Fatal("Source copies share state")
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Service != b[i].Service {
			t.Fatalf("replays diverge at %d", i)
		}
	}
}

func TestAzureSampledStreamMatchesWorkload(t *testing.T) {
	spec := AzureSampledSpec{N: 300, Cores: 4, Load: 1.0, Seed: 9, Spikes: 2}
	w := AzureSampled(spec)
	got := trace.Collect(AzureSampledStream(spec))
	if len(got) != len(w.Tasks) {
		t.Fatalf("stream %d tasks, workload %d", len(got), len(w.Tasks))
	}
	for i := range got {
		if got[i].Arrival != w.Tasks[i].Arrival || got[i].Service != w.Tasks[i].Service {
			t.Fatalf("diverge at %d", i)
		}
	}
}

func TestSyntheticWorkload(t *testing.T) {
	spec := SyntheticSpec{
		Shape: trace.ShapeRamp, StartRPS: 100, TargetRPS: 400,
		Horizon: 30 * time.Second, Seed: 21, IOFraction: 0.5,
		Apps: []AppChoice{{Profile: AppFib, Weight: 1}, {Profile: AppSa, Weight: 1}},
	}
	w := Synthetic(spec)
	if len(w.Tasks) == 0 {
		t.Fatal("empty synthetic workload")
	}
	if w.MeanService <= 0 || w.MeanIAT <= 0 {
		t.Fatalf("stats not populated: svc=%v iat=%v", w.MeanService, w.MeanIAT)
	}
	apps := map[string]int{}
	withIO := 0
	for i, tk := range w.Tasks {
		if err := tk.Validate(); err != nil {
			t.Fatal(err)
		}
		if i > 0 && tk.Arrival < w.Tasks[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
		apps[tk.App]++
		if len(tk.IOOps) > 0 {
			withIO++
		}
	}
	if apps["fib"] == 0 || apps["sa"] == 0 {
		t.Fatalf("app mix not applied: %v", apps)
	}
	if frac := float64(withIO) / float64(len(w.Tasks)); frac < 0.4 {
		t.Fatalf("I/O knob fraction %.2f (sa profile + knob should exceed 0.4)", frac)
	}
	// Determinism across the full pipeline, via CSV bytes.
	var a, b bytes.Buffer
	if _, err := trace.WriteCSV(&a, SyntheticStream(spec)); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteCSV(&b, SyntheticStream(spec)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed synthetic workloads are not byte-identical")
	}
}

// TestThreeFamiliesOneInterface is the acceptance check: all three
// scenario families flow through trace.Source with deterministic seeded
// output.
func TestThreeFamiliesOneInterface(t *testing.T) {
	sources := map[string]func() trace.Source{
		"table1-poisson": func() trace.Source { return Stream(Spec{N: 200, Cores: 4, Load: 0.8, Seed: 1}) },
		"azure-sampled":  func() trace.Source { return AzureSampledStream(AzureSampledSpec{N: 200, Cores: 4, Load: 1, Seed: 1}) },
		"synth-ramp": func() trace.Source {
			return SyntheticStream(SyntheticSpec{
				Shape: trace.ShapeRamp, StartRPS: 50, TargetRPS: 200, Horizon: 10 * time.Second, Seed: 1})
		},
	}
	for name, mk := range sources {
		t.Run(name, func(t *testing.T) {
			var a, b bytes.Buffer
			na, err := trace.WriteCSV(&a, mk())
			if err != nil {
				t.Fatal(err)
			}
			if na == 0 {
				t.Fatal("empty family")
			}
			if _, err := trace.WriteCSV(&b, mk()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatal("family not deterministic")
			}
			src, err := trace.NewCSVSource(bytes.NewReader(a.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if n, err := trace.Validate(src); err != nil || n != na {
				t.Fatalf("round trip: n=%d err=%v", n, err)
			}
		})
	}
}
