package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	w := Generate(Spec{
		N: 200, Cores: 4, Load: 0.8, Seed: 31, IOFraction: 0.5,
		Apps: []AppChoice{
			{Profile: AppFib, Weight: 1},
			{Profile: AppMd, Weight: 1},
		},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, w.Tasks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w.Tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(got), len(w.Tasks))
	}
	for i, orig := range w.Tasks {
		g := got[i]
		if g.ID != orig.ID || g.App != orig.App {
			t.Fatalf("task %d identity mismatch", i)
		}
		// Microsecond resolution: values are truncated, not perturbed.
		if g.Arrival != orig.Arrival.Truncate(time.Microsecond) {
			t.Fatalf("task %d arrival %v vs %v", i, g.Arrival, orig.Arrival)
		}
		if g.Service != orig.Service.Truncate(time.Microsecond) {
			t.Fatalf("task %d service %v vs %v", i, g.Service, orig.Service)
		}
		if len(g.IOOps) != len(orig.IOOps) {
			t.Fatalf("task %d io ops %d vs %d", i, len(g.IOOps), len(orig.IOOps))
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		w := Generate(Spec{N: int(n%50) + 1, Cores: 2, Load: 0.5, Seed: seed, IOFraction: 0.3})
		var buf bytes.Buffer
		if WriteCSV(&buf, w.Tasks) != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || len(got) != len(w.Tasks) {
			return false
		}
		// Writing the read-back workload must be byte-identical (fixed
		// point after one truncation).
		var buf2 bytes.Buffer
		if WriteCSV(&buf2, got) != nil {
			return false
		}
		got2, err := ReadCSV(&buf2)
		if err != nil || len(got2) != len(got) {
			return false
		}
		for i := range got {
			if got[i].Arrival != got2[i].Arrival || got[i].Service != got2[i].Service {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":  "a,b,c,d,e\n",
		"bad id":      "id,app,arrival_us,service_us,io_ops\nx,fib,0,1000,\n",
		"bad arrival": "id,app,arrival_us,service_us,io_ops\n0,fib,x,1000,\n",
		"bad io op":   "id,app,arrival_us,service_us,io_ops\n0,fib,0,1000,zzz\n",
		"bad io nums": "id,app,arrival_us,service_us,io_ops\n0,fib,0,1000,a:b\n",
		"invalid svc": "id,app,arrival_us,service_us,io_ops\n0,fib,0,0,\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	tasks, err := ReadCSV(strings.NewReader("id,app,arrival_us,service_us,io_ops\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Fatal("expected empty workload")
	}
}
