package workload

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/azure"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/trace"
)

// AzureSampledSpec configures the paper's canonical evaluation workload
// (§VII): Table I durations with inter-arrival times replayed from 100
// hot applications of the (synthetic) Azure trace, scaled proportionally
// to hit a target load.
type AzureSampledSpec struct {
	N     int     // invocation count (the paper replays 10,000)
	Cores int     // cores of the host the load is calibrated for
	Load  float64 // target average CPU utilization (e.g. 1.0)
	Seed  uint64
	// Apps optionally overrides the application mix (default pure fib,
	// as in the standalone evaluation; the OpenLambda evaluation uses
	// fib/md/sa).
	Apps []AppChoice
	// IOFraction etc. pass through to the generator.
	IOFraction float64
	// Spikes injects this many transient arrival bursts into the trace
	// (the paper's Fig 12 workload exhibits five such queueing-delay
	// spikes). Each spike compresses SpikeWidth consecutive IATs to
	// near zero.
	Spikes     int
	SpikeWidth int
}

// azureSpec derives the plain generation spec behind an Azure-sampled
// workload: it calibrates the mean IAT for the requested load from the
// Table I distribution's analytic mean, synthesizes per-app bursty
// arrival processes around that rate, and wires them in as a replayed
// arrival trace.
func azureSpec(spec AzureSampledSpec) Spec {
	if spec.N <= 0 {
		panic("workload: N must be positive")
	}
	if spec.Cores <= 0 {
		panic("workload: cores must be positive")
	}
	if spec.Load <= 0 {
		spec.Load = 1.0
	}
	// Calibrate against the analytic mean ideal duration, scaled by the
	// app mix's CPU fraction so load reflects CPU demand (I/O time
	// occupies no core).
	meanCPU := time.Duration(float64(TableIDistribution().Mean()) * meanCPUFraction(spec.Apps))
	meanIAT := queueing.IATForLoad(meanCPU, spec.Cores, spec.Load)

	tr := azure.Synthesize(5000, spec.Seed^0xa5a5)
	hot := tr.SampleHotApps(100, 200, spec.Seed^0x5a5a)
	iats := tr.IATTrace(hot, spec.N, meanIAT, spec.Seed^0x1234)
	// The merged MMPP construction realizes a mean IAT that can drift
	// from the request (episode truncation, per-app rounding); rescale
	// so the offered load is exactly the requested level while the
	// burst structure is preserved.
	if len(iats) > 0 {
		var sum time.Duration
		for _, d := range iats {
			sum += d
		}
		realized := sum / time.Duration(len(iats))
		if realized > 0 {
			f := float64(meanIAT) / float64(realized)
			for i := range iats {
				iats[i] = time.Duration(float64(iats[i]) * f)
			}
		}
	}
	if spec.Spikes > 0 {
		width := spec.SpikeWidth
		if width <= 0 {
			width = len(iats) / (spec.Spikes * 5)
		}
		iats = AddSpikes(iats, spec.Spikes, width)
	}
	return Spec{
		N:          spec.N,
		Cores:      spec.Cores,
		Seed:       spec.Seed,
		Arrival:    dist.NewTraceProcess(iats),
		Apps:       spec.Apps,
		IOFraction: spec.IOFraction,
	}
}

func azureDescription(spec AzureSampledSpec) string {
	load := spec.Load
	if load <= 0 {
		load = 1.0
	}
	return fmt.Sprintf("azure-sampled(n=%d, load=%.0f%%, cores=%d, seed=%d, spikes=%d)",
		spec.N, load*100, spec.Cores, spec.Seed, spec.Spikes)
}

// AzureSampledStream returns the canonical trace-driven workload as a
// pull-based trace.Source. The per-app arrival synthesis is materialized
// once (the merged MMPP needs a global sort), but invocations are built
// lazily as the stream is pulled.
func AzureSampledStream(spec AzureSampledSpec) trace.Source {
	src, _ := stream(azureSpec(spec))
	return trace.Derive(azureDescription(spec), src.Next, src)
}

// AzureSampled materializes the trace-driven workload by collecting its
// stream.
func AzureSampled(spec AzureSampledSpec) *Workload {
	gen := azureSpec(spec)
	src, stats := stream(gen)
	tasks := trace.Collect(src)
	return &Workload{
		Tasks:       tasks,
		Spec:        gen,
		MeanService: stats.meanService(),
		MeanIAT:     stats.meanIAT(),
		Description: azureDescription(spec),
	}
}

// AddSpikes returns a copy of iats with k transient-overload spikes: at
// each spike position, width consecutive IATs are compressed to 100 µs
// so that a burst of invocations lands almost simultaneously, as in the
// concurrent-invocation spikes reported for production FaaS workloads
// (§V-E). The removed inter-arrival time is not redistributed, so each
// spike transiently raises the offered load far above the steady level.
func AddSpikes(iats []time.Duration, k, width int) []time.Duration {
	if k <= 0 || width <= 0 || len(iats) == 0 {
		return append([]time.Duration(nil), iats...)
	}
	out := append([]time.Duration(nil), iats...)
	const compressed = 100 * time.Microsecond
	for s := 0; s < k; s++ {
		// Spikes at 1/(k+1), 2/(k+1), ... of the trace.
		center := (s + 1) * len(out) / (k + 1)
		lo := center - width/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + width
		if hi > len(out) {
			hi = len(out)
		}
		for i := lo; i < hi; i++ {
			if out[i] > compressed {
				out[i] = compressed
			}
		}
	}
	return out
}
