package workload

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/azure"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/queueing"
)

// AzureSampledSpec configures the paper's canonical evaluation workload
// (§VII): Table I durations with inter-arrival times replayed from 100
// hot applications of the (synthetic) Azure trace, scaled proportionally
// to hit a target load.
type AzureSampledSpec struct {
	N     int     // invocation count (the paper replays 10,000)
	Cores int     // cores of the host the load is calibrated for
	Load  float64 // target average CPU utilization (e.g. 1.0)
	Seed  uint64
	// Apps optionally overrides the application mix (default pure fib,
	// as in the standalone evaluation; the OpenLambda evaluation uses
	// fib/md/sa).
	Apps []AppChoice
	// IOFraction etc. pass through to the generator.
	IOFraction float64
	// Spikes injects this many transient arrival bursts into the trace
	// (the paper's Fig 12 workload exhibits five such queueing-delay
	// spikes). Each spike compresses SpikeWidth consecutive IATs to
	// near zero.
	Spikes     int
	SpikeWidth int
}

// AzureSampled generates the trace-driven workload: it first probes the
// Table I duration distribution to learn the realized mean service time,
// derives the mean IAT for the requested load, synthesizes per-app
// bursty arrival processes around that rate, and replays them.
func AzureSampled(spec AzureSampledSpec) *Workload {
	if spec.N <= 0 {
		panic("workload: N must be positive")
	}
	if spec.Cores <= 0 {
		panic("workload: cores must be positive")
	}
	if spec.Load <= 0 {
		spec.Load = 1.0
	}
	// Probe pass: realized mean ideal duration for this N/seed, scaled
	// by the app mix's CPU fraction so load reflects CPU demand.
	probe := Generate(Spec{N: spec.N, Cores: spec.Cores, Load: spec.Load, Seed: spec.Seed})
	meanCPU := time.Duration(float64(probe.MeanService) * meanCPUFraction(spec.Apps))
	meanIAT := queueing.IATForLoad(meanCPU, spec.Cores, spec.Load)

	tr := azure.Synthesize(5000, spec.Seed^0xa5a5)
	hot := tr.SampleHotApps(100, 200, spec.Seed^0x5a5a)
	iats := tr.IATTrace(hot, spec.N, meanIAT, spec.Seed^0x1234)
	// The merged MMPP construction realizes a mean IAT that can drift
	// from the request (episode truncation, per-app rounding); rescale
	// so the offered load is exactly the requested level while the
	// burst structure is preserved.
	if len(iats) > 0 {
		var sum time.Duration
		for _, d := range iats {
			sum += d
		}
		realized := sum / time.Duration(len(iats))
		if realized > 0 {
			f := float64(meanIAT) / float64(realized)
			for i := range iats {
				iats[i] = time.Duration(float64(iats[i]) * f)
			}
		}
	}
	if spec.Spikes > 0 {
		width := spec.SpikeWidth
		if width <= 0 {
			width = len(iats) / (spec.Spikes * 5)
		}
		iats = AddSpikes(iats, spec.Spikes, width)
	}
	w := Generate(Spec{
		N:          spec.N,
		Cores:      spec.Cores,
		Seed:       spec.Seed,
		Arrival:    dist.NewTraceProcess(iats),
		Apps:       spec.Apps,
		IOFraction: spec.IOFraction,
	})
	w.Description = fmt.Sprintf("azure-sampled(n=%d, load=%.0f%%, cores=%d, seed=%d, spikes=%d)",
		spec.N, spec.Load*100, spec.Cores, spec.Seed, spec.Spikes)
	return w
}

// AddSpikes returns a copy of iats with k transient-overload spikes: at
// each spike position, width consecutive IATs are compressed to 100 µs
// so that a burst of invocations lands almost simultaneously, as in the
// concurrent-invocation spikes reported for production FaaS workloads
// (§V-E). The removed inter-arrival time is not redistributed, so each
// spike transiently raises the offered load far above the steady level.
func AddSpikes(iats []time.Duration, k, width int) []time.Duration {
	if k <= 0 || width <= 0 || len(iats) == 0 {
		return append([]time.Duration(nil), iats...)
	}
	out := append([]time.Duration(nil), iats...)
	const compressed = 100 * time.Microsecond
	for s := 0; s < k; s++ {
		// Spikes at 1/(k+1), 2/(k+1), ... of the trace.
		center := (s + 1) * len(out) / (k + 1)
		lo := center - width/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + width
		if hi > len(out) {
			hi = len(out)
		}
		for i := lo; i < hi; i++ {
			if out[i] > compressed {
				out[i] = compressed
			}
		}
	}
	return out
}
