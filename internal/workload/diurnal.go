package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// DiurnalSpec configures the diurnal scenario family: request rate
// follows a sine-on-trend daily cycle with a weekend dip, the
// non-stationary shape production FaaS fleets see at the hours scale
// (Shahrad et al.; Kaffes et al.'s Azure-trace scheduling study). The
// mean rate is calibrated so the whole horizon offers Load to Cores;
// within it, midday peaks run (1+Amplitude)x the daily mean and nights
// bottom out at (1-Amplitude)x, weekend days are scaled by WeekendDip,
// and TrendSlope grows the baseline linearly across the horizon.
type DiurnalSpec struct {
	// N caps the number of invocations and, when DayLength is zero,
	// sizes the simulated day so that ~N arrivals span Days days.
	N int
	// Cores the load is calibrated for.
	Cores int
	// Load is the horizon-average offered CPU load (default 0.8).
	Load float64
	// Days in the horizon (default 7: five weekdays, two weekend days).
	Days int
	// DayLength is the simulated length of one day. Zero derives it
	// from N and the calibrated rate so the horizon holds ~N arrivals.
	DayLength time.Duration
	// Amplitude is the sine swing around the daily mean in [0, 1)
	// (default 0.6).
	Amplitude float64
	// WeekendDip multiplies the rate on days 5 and 6 of each week
	// (default 0.5; 1 disables the dip).
	WeekendDip float64
	// TrendSlope grows the baseline linearly to (1+TrendSlope)x across
	// the horizon (default 0.1).
	TrendSlope float64
	// Duration samples ideal durations (default TableIDistribution).
	Duration dist.Distribution
	// Apps is the application mix (default pure fib).
	Apps []AppChoice
	// IOFraction adds the Fig 11 leading-I/O knob.
	IOFraction   float64
	IOMin, IOMax time.Duration
	// Seed drives all sampling.
	Seed uint64
}

// withDefaults fills the spec's derivable fields.
func (spec DiurnalSpec) withDefaults() DiurnalSpec {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	if spec.Load <= 0 {
		spec.Load = 0.8
	}
	if spec.Days <= 0 {
		spec.Days = 7
	}
	if spec.Amplitude <= 0 || spec.Amplitude >= 1 {
		spec.Amplitude = 0.6
	}
	if spec.WeekendDip <= 0 || spec.WeekendDip > 1 {
		spec.WeekendDip = 0.5
	}
	if spec.TrendSlope < 0 {
		spec.TrendSlope = 0
	} else if spec.TrendSlope == 0 {
		spec.TrendSlope = 0.1
	}
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	if len(spec.Apps) == 0 {
		spec.Apps = []AppChoice{{Profile: AppFib, Weight: 1}}
	}
	return spec
}

// DiurnalStream returns the diurnal family as a pull-based
// trace.Source: arrivals are thinned from the sine-on-trend profile
// lazily, and each invocation is built through the shared
// app-mix/I/O-knob pipeline. Same spec → byte-identical stream.
func DiurnalStream(spec DiurnalSpec) trace.Source {
	src, _ := diurnalStream(spec)
	return src
}

func diurnalStream(spec DiurnalSpec) (trace.Source, *genStats) {
	spec = spec.withDefaults()
	if spec.N <= 0 && spec.DayLength <= 0 {
		panic("workload: diurnal spec needs N or DayLength")
	}

	// Calibrate the horizon-mean arrival rate to the requested load.
	meanCPU := time.Duration(float64(spec.Duration.Mean()) * meanCPUFraction(spec.Apps))
	meanRPS := float64(time.Second) / float64(queueing.IATForLoad(meanCPU, spec.Cores, spec.Load))

	day := spec.DayLength
	if day <= 0 {
		day = time.Duration(float64(spec.N) / meanRPS / float64(spec.Days) * float64(time.Second))
	}
	horizon := time.Duration(spec.Days) * day

	// The modulation's horizon mean, so base*mean(modulation) == meanRPS:
	// the sine integrates to 1 per full day, weekend days contribute
	// WeekendDip, and the linear trend averages (1 + slope/2).
	weekMean := 0.0
	for d := 0; d < spec.Days; d++ {
		if d%7 >= 5 {
			weekMean += spec.WeekendDip
		} else {
			weekMean += 1
		}
	}
	weekMean /= float64(spec.Days)
	modMean := weekMean * (1 + spec.TrendSlope/2)
	base := meanRPS / modMean

	rate := func(t time.Duration) float64 {
		frac := float64(t) / float64(day)
		// Trough at midnight, peak at midday.
		daily := 1 + spec.Amplitude*math.Sin(2*math.Pi*frac-math.Pi/2)
		wk := 1.0
		if int(t/day)%7 >= 5 {
			wk = spec.WeekendDip
		}
		trend := 1 + spec.TrendSlope*float64(t)/float64(horizon)
		return base * daily * wk * trend
	}
	peak := base * (1 + spec.Amplitude) * (1 + spec.TrendSlope)

	desc := fmt.Sprintf("diurnal(n=%d, days=%d, day=%v, amp=%.2f, dip=%.2f, trend=%.2f, load=%.2f on %d cores, seed=%d)",
		spec.N, spec.Days, day.Round(time.Millisecond), spec.Amplitude, spec.WeekendDip, spec.TrendSlope,
		spec.Load, spec.Cores, spec.Seed)
	inner := trace.NewRate(trace.RateSpec{
		Desc:     desc,
		Rate:     rate,
		Peak:     peak,
		Horizon:  horizon,
		N:        spec.N,
		Duration: spec.Duration,
		Seed:     spec.Seed,
	})
	return builderStream(inner, spec.Apps, spec.IOFraction, spec.IOMin, spec.IOMax, spec.Seed, desc)
}

// Diurnal materializes the diurnal workload by collecting its stream.
func Diurnal(spec DiurnalSpec) *Workload {
	src, stats := diurnalStream(spec)
	tasks := trace.Collect(src)
	return &Workload{
		Tasks:       tasks,
		MeanService: stats.meanService(),
		MeanIAT:     stats.meanIAT(),
		Description: src.String(),
	}
}

// builderStream pipes an inner duration-sampled source (each task's
// Service holds the sampled ideal duration) through the shared
// app-mix/I/O-knob builder, accumulating realized stream statistics —
// the post-processing stage every rate-profile family shares.
func builderStream(inner trace.Source, apps []AppChoice, ioFraction float64, ioMin, ioMax time.Duration, seed uint64, desc string) (trace.Source, *genStats) {
	r := rng.New(seed)
	appR := r.Split()
	ioR := r.Split()
	b := newBuilder(apps, ioFraction, ioMin, ioMax, appR, ioR)
	stats := &genStats{}
	var last task.Task
	src := trace.Map(inner, func(t *task.Task) *task.Task {
		if stats.n > 0 {
			stats.iatSum += t.Arrival - last.Arrival
		}
		last.Arrival = t.Arrival
		stats.idealSum += t.Service
		stats.n++
		return b.build(t.ID, t.Arrival, t.Service)
	})
	return trace.Derive(desc, src.Next, src), stats
}
