package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// FlashCrowdSpec configures the flash-crowd scenario family: a steady
// baseline punctuated by sudden rate spikes — SpikeFactor x the
// baseline at onset, decaying exponentially — with correlated app skew:
// during a spike most arrivals hit that spike's single "crowd" app, the
// way a viral link or a retry storm hammers one function while the rest
// of the fleet idles along. This is the transient-overload regime the
// paper observes in production traces (§V-E) pushed to Hiku-scale
// burstiness, and the shape that separates dispatch policies that
// spread load from ones that concentrate it.
type FlashCrowdSpec struct {
	// N caps the number of invocations and sizes the horizon.
	N int
	// Cores the load is calibrated for.
	Cores int
	// Load is the horizon-average offered CPU load including spike mass
	// (default 0.6, leaving headroom the spikes then blow through).
	Load float64
	// Spikes is the number of flash events (default 3).
	Spikes int
	// SpikeFactor is the rate multiplier at spike onset (default 50).
	SpikeFactor float64
	// SpikeTau is the exponential decay constant; zero derives it from
	// the spike spacing (spacing/12, clamped to at most spacing/4).
	SpikeTau time.Duration
	// SkewProb is the probability an arrival inside a spike window hits
	// the spike's crowd app instead of the base mix (default 0.8).
	SkewProb float64
	// Duration samples ideal durations (default TableIDistribution).
	Duration dist.Distribution
	// Apps is the base application mix (default pure fib).
	Apps []AppChoice
	// IOFraction adds the Fig 11 leading-I/O knob to base-mix arrivals.
	IOFraction   float64
	IOMin, IOMax time.Duration
	// Seed drives all sampling.
	Seed uint64
}

// withDefaults fills the spec's derivable fields.
func (spec FlashCrowdSpec) withDefaults() FlashCrowdSpec {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	if spec.Load <= 0 {
		spec.Load = 0.6
	}
	if spec.Spikes <= 0 {
		spec.Spikes = 3
	}
	if spec.SpikeFactor <= 1 {
		spec.SpikeFactor = 50
	}
	if spec.SkewProb <= 0 || spec.SkewProb > 1 {
		spec.SkewProb = 0.8
	}
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	if len(spec.Apps) == 0 {
		spec.Apps = []AppChoice{{Profile: AppFib, Weight: 1}}
	}
	return spec
}

// FlashCrowdStream returns the flash-crowd family as a pull-based
// trace.Source. Same spec → byte-identical stream.
func FlashCrowdStream(spec FlashCrowdSpec) trace.Source {
	src, _ := flashCrowdStream(spec)
	return src
}

func flashCrowdStream(spec FlashCrowdSpec) (trace.Source, *genStats) {
	spec = spec.withDefaults()
	if spec.N <= 0 {
		panic("workload: flash-crowd spec needs N")
	}

	// Calibrate the horizon-average rate (spike mass included) to Load.
	meanCPU := time.Duration(float64(spec.Duration.Mean()) * meanCPUFraction(spec.Apps))
	meanRPS := float64(time.Second) / float64(queueing.IATForLoad(meanCPU, spec.Cores, spec.Load))
	horizon := time.Duration(float64(spec.N) / meanRPS * float64(time.Second))

	spacing := horizon / time.Duration(spec.Spikes+1)
	tau := spec.SpikeTau
	if tau <= 0 {
		tau = spacing / 12
	}
	if tau > spacing/4 {
		tau = spacing / 4 // keeps spike residuals from stacking across events
	}

	// Each spike adds (SpikeFactor-1)*tau of extra rate-mass; the base
	// level absorbs it so the horizon mean stays at meanRPS.
	extra := float64(spec.Spikes) * (spec.SpikeFactor - 1) * float64(tau) / float64(horizon)
	base := meanRPS / (1 + extra)

	// Spike onsets at 1/(k+1), 2/(k+1), ... of the horizon, mirroring
	// AddSpikes' placement on the Azure-sampled family.
	onsets := make([]time.Duration, spec.Spikes)
	for s := range onsets {
		onsets[s] = spacing * time.Duration(s+1)
	}
	rate := func(t time.Duration) float64 {
		m := 1.0
		for _, on := range onsets {
			if t >= on {
				m += (spec.SpikeFactor - 1) * math.Exp(-float64(t-on)/float64(tau))
			}
		}
		return base * m
	}
	// Residual overlap past one spike is bounded by exp(-4) per prior
	// event (tau <= spacing/4); a 5% margin covers it.
	peak := base * spec.SpikeFactor * 1.05

	desc := fmt.Sprintf("flashcrowd(n=%d, spikes=%dx%.0f, tau=%v, skew=%.2f, load=%.2f on %d cores, seed=%d)",
		spec.N, spec.Spikes, spec.SpikeFactor, tau.Round(time.Millisecond), spec.SkewProb,
		spec.Load, spec.Cores, spec.Seed)
	inner := trace.NewRate(trace.RateSpec{
		Desc:     desc,
		Rate:     rate,
		Peak:     peak,
		Horizon:  horizon,
		N:        spec.N,
		Duration: spec.Duration,
		Seed:     spec.Seed,
	})

	// The correlated-skew stage replaces the plain builder map: inside a
	// spike window, SkewProb of arrivals collapse onto that spike's
	// crowd app (pure CPU — the viral endpoint), the rest flow through
	// the base mix. crowdOf returns -1 outside every window.
	window := 5 * tau // covers >99% of each spike's excess mass
	crowdOf := func(t time.Duration) int {
		for s := len(onsets) - 1; s >= 0; s-- {
			if t >= onsets[s] && t < onsets[s]+window {
				return s
			}
		}
		return -1
	}
	r := rng.New(spec.Seed)
	appR := r.Split()
	ioR := r.Split()
	skewR := r.Split()
	b := newBuilder(spec.Apps, spec.IOFraction, spec.IOMin, spec.IOMax, appR, ioR)
	stats := &genStats{}
	var last task.Task
	src := trace.Map(inner, func(t *task.Task) *task.Task {
		if stats.n > 0 {
			stats.iatSum += t.Arrival - last.Arrival
		}
		last.Arrival = t.Arrival
		stats.idealSum += t.Service
		stats.n++
		built := b.build(t.ID, t.Arrival, t.Service)
		// One skew draw per arrival keeps the base stream identical
		// whether or not a window is active.
		hit := skewR.Float64() < spec.SkewProb
		if s := crowdOf(time.Duration(t.Arrival)); s >= 0 && hit {
			crowd := AppProfile{Name: fmt.Sprintf("crowd%02d", s), CPUFraction: 1}
			built = task.New(t.ID, t.Arrival, time.Millisecond)
			crowd.Build(built, t.Service)
		}
		return built
	})
	return trace.Derive(desc, src.Next, src), stats
}

// FlashCrowd materializes the flash-crowd workload by collecting its
// stream.
func FlashCrowd(spec FlashCrowdSpec) *Workload {
	src, stats := flashCrowdStream(spec)
	tasks := trace.Collect(src)
	return &Workload{
		Tasks:       tasks,
		MeanService: stats.meanService(),
		MeanIAT:     stats.meanIAT(),
		Description: src.String(),
	}
}
