package workload

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/task"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestTableIProbabilitiesSumToOne(t *testing.T) {
	var sum float64
	for _, row := range TableI() {
		sum += row.Probability
	}
	// The paper's rows sum to 95.6%; the remaining mass sits in dropped
	// <1% gaps. Our generator renormalizes, so just sanity-check.
	if sum < 0.95 || sum > 1.0 {
		t.Fatalf("Table I probability mass %v", sum)
	}
}

func TestFibDurationMonotone(t *testing.T) {
	prev := time.Duration(0)
	for n := 10; n <= 40; n++ {
		d := FibDuration(n)
		if d <= prev {
			t.Fatalf("FibDuration not monotone at N=%d: %v <= %v", n, d, prev)
		}
		prev = d
	}
}

func TestFibCalibrationMatchesTableI(t *testing.T) {
	// Table I says fib N in 20..26 finishes in under ~50ms and N 34-35
	// lands in the >=1550ms range.
	if d := FibDuration(26); d > 50*time.Millisecond {
		t.Fatalf("fib(26) = %v, want <= 50ms", d)
	}
	if d := FibDuration(34); d < 1550*time.Millisecond/2 {
		t.Fatalf("fib(34) = %v, too fast for the long mode", d)
	}
	// Round trip.
	for _, n := range []int{20, 26, 30, 35} {
		d := FibDuration(n)
		if got := FibNFor(d); got != n {
			t.Errorf("FibNFor(FibDuration(%d)) = %d", n, got)
		}
	}
	if FibNFor(0) != 1 {
		t.Error("FibNFor(0) should clamp to 1")
	}
}

func TestTableIDistributionShape(t *testing.T) {
	d := TableIDistribution()
	r := rng.New(1)
	const n = 200000
	buckets := map[string]int{}
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		switch {
		case v < ms(50):
			buckets["0-50"]++
		case v < ms(100):
			buckets["50-100"]++
		case v < ms(200):
			buckets["100-200"]++
		case v < ms(400):
			buckets["200-400"]++
		case v >= ms(1550):
			buckets[">=1550"]++
		default:
			buckets["gap"]++
		}
	}
	checks := map[string]float64{
		"0-50": 0.406 / 0.956, "50-100": 0.098 / 0.956, "100-200": 0.068 / 0.956,
		"200-400": 0.227 / 0.956, ">=1550": 0.157 / 0.956,
	}
	for k, want := range checks {
		got := float64(buckets[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %s: %.3f, want %.3f", k, got, want)
		}
	}
	if buckets["gap"] != 0 {
		t.Errorf("%d samples landed in excluded gaps", buckets["gap"])
	}
	// Tail bounded by the Azure 99.9th percentile anchor.
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v > AzureTailCap {
			t.Fatalf("sample %v exceeds tail cap", v)
		}
	}
}

func TestAppProfiles(t *testing.T) {
	tk := newTask()
	AppFib.Build(tk, ms(100))
	if tk.Service != ms(100) || len(tk.IOOps) != 0 {
		t.Fatalf("fib: svc=%v io=%d", tk.Service, len(tk.IOOps))
	}

	tk = newTask()
	AppMd.Build(tk, ms(100))
	if tk.Service != ms(35) {
		t.Fatalf("md service %v", tk.Service)
	}
	if len(tk.IOOps) != 2 {
		t.Fatalf("md io ops %d", len(tk.IOOps))
	}
	if tk.IOOps[0].At != 0 {
		t.Fatal("md first IO should lead")
	}
	if tk.IdealDuration() != ms(100) {
		t.Fatalf("md ideal %v", tk.IdealDuration())
	}

	tk = newTask()
	AppSa.Build(tk, ms(100))
	if tk.Service != ms(70) || len(tk.IOOps) != 1 {
		t.Fatalf("sa: svc=%v io=%d", tk.Service, len(tk.IOOps))
	}
	if err := tk.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateLoadCalibration(t *testing.T) {
	for _, load := range []float64{0.5, 0.8, 1.0} {
		w := Generate(Spec{N: 20000, Cores: 8, Load: load, Seed: 3})
		got := w.OfferedLoad(8)
		if math.Abs(got-load)/load > 0.08 {
			t.Errorf("load %.2f: offered %.3f", load, got)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(Spec{N: 500, Cores: 4, Load: 0.8, Seed: 9})
	b := Generate(Spec{N: 500, Cores: 4, Load: 0.8, Seed: 9})
	for i := range a.Tasks {
		if a.Tasks[i].Service != b.Tasks[i].Service || a.Tasks[i].Arrival != b.Tasks[i].Arrival {
			t.Fatalf("same-seed workloads diverge at %d", i)
		}
	}
	c := Generate(Spec{N: 500, Cores: 4, Load: 0.8, Seed: 10})
	diff := false
	for i := range a.Tasks {
		if a.Tasks[i].Service != c.Tasks[i].Service {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateArrivalsMonotone(t *testing.T) {
	w := Generate(Spec{N: 1000, Cores: 4, Load: 1.0, Seed: 4})
	for i := 1; i < len(w.Tasks); i++ {
		if w.Tasks[i].Arrival < w.Tasks[i-1].Arrival {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
}

func TestGenerateIOKnob(t *testing.T) {
	w := Generate(Spec{
		N: 2000, Cores: 4, Load: 0.8, Seed: 5,
		IOFraction: 0.75, IOMin: ms(10), IOMax: ms(100),
	})
	withIO := 0
	for _, tk := range w.Tasks {
		if len(tk.IOOps) > 0 {
			withIO++
			op := tk.IOOps[0]
			if op.At != 0 {
				t.Fatal("knob IO must lead the execution")
			}
			if op.Dur < ms(10) || op.Dur >= ms(100) {
				t.Fatalf("IO duration %v outside [10,100)ms", op.Dur)
			}
		}
		if err := tk.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	frac := float64(withIO) / float64(len(w.Tasks))
	if math.Abs(frac-0.75) > 0.05 {
		t.Fatalf("IO fraction %.3f, want ~0.75", frac)
	}
}

func TestGenerateAppMix(t *testing.T) {
	w := Generate(Spec{
		N: 3000, Cores: 4, Load: 0.8, Seed: 6,
		Apps: []AppChoice{
			{Profile: AppFib, Weight: 2},
			{Profile: AppMd, Weight: 1},
			{Profile: AppSa, Weight: 1},
		},
	})
	counts := map[string]int{}
	for _, tk := range w.Tasks {
		counts[tk.App]++
	}
	fibFrac := float64(counts["fib"]) / float64(len(w.Tasks))
	if math.Abs(fibFrac-0.5) > 0.05 {
		t.Fatalf("fib fraction %.3f, want ~0.5 (counts %v)", fibFrac, counts)
	}
	if counts["md"] == 0 || counts["sa"] == 0 {
		t.Fatalf("missing apps: %v", counts)
	}
}

func TestCloneIsolation(t *testing.T) {
	w := Generate(Spec{N: 50, Cores: 2, Load: 0.8, Seed: 7})
	c1 := w.Clone()
	c1[0].CPUUsed = ms(5)
	c1[0].CtxSwitches = 3
	c2 := w.Clone()
	if c2[0].CPUUsed != 0 || c2[0].CtxSwitches != 0 {
		t.Fatal("clones share accounting state")
	}
	if w.Tasks[0].CPUUsed != 0 {
		t.Fatal("clone mutated the original")
	}
}

func TestCustomArrivalProcess(t *testing.T) {
	w := Generate(Spec{
		N: 4, Cores: 1, Seed: 8,
		Arrival: dist.NewTraceProcess([]time.Duration{ms(10), ms(20), ms(30)}),
	})
	want := []time.Duration{0, ms(10), ms(30), ms(60)}
	for i, tk := range w.Tasks {
		if tk.Arrival != want[i] {
			t.Fatalf("arrival %d = %v, want %v", i, tk.Arrival, want[i])
		}
	}
}

func newTask() *task.Task { return task.New(0, 0, time.Millisecond) }
