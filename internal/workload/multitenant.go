package workload

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// MultiTenantSpec configures the multi-tenant scenario family: one
// heavy tenant holding HeavyShare of the offered load and bursting in a
// square wave — BurstFactor x its own mean for a tenth of each burst
// period — merged with a fleet of light tenants running steady Poisson
// streams. Each tenant is its own application, so per-app keep-alive
// and dispatch policies see the noisy-neighbor problem directly: does
// the heavy tenant's burst evict everyone else's warm containers?
type MultiTenantSpec struct {
	// N caps the merged invocation count and sizes the horizon.
	N int
	// Cores the aggregate load is calibrated for.
	Cores int
	// Load is the horizon-average offered CPU load across all tenants
	// (default 0.8).
	Load float64
	// Tenants is the total tenant count, heavy one included
	// (default 9: one heavy plus eight light).
	Tenants int
	// HeavyShare is the heavy tenant's fraction of the total mean rate
	// (default 0.5).
	HeavyShare float64
	// BurstFactor multiplies the heavy tenant's rate during its burst
	// windows (default 4; its quiet level drops so its mean holds).
	BurstFactor float64
	// Bursts is the number of burst windows across the horizon
	// (default 6).
	Bursts int
	// Duration samples ideal durations (default TableIDistribution).
	Duration dist.Distribution
	// Apps is the CPU/I-O structure mix applied under each tenant's
	// identity (default pure fib).
	Apps []AppChoice
	// IOFraction adds the Fig 11 leading-I/O knob.
	IOFraction   float64
	IOMin, IOMax time.Duration
	// Seed drives all sampling.
	Seed uint64
}

// withDefaults fills the spec's derivable fields.
func (spec MultiTenantSpec) withDefaults() MultiTenantSpec {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	if spec.Load <= 0 {
		spec.Load = 0.8
	}
	if spec.Tenants < 2 {
		spec.Tenants = 9
	}
	if spec.HeavyShare <= 0 || spec.HeavyShare >= 1 {
		spec.HeavyShare = 0.5
	}
	if spec.BurstFactor <= 1 {
		spec.BurstFactor = 4
	}
	if spec.Bursts <= 0 {
		spec.Bursts = 6
	}
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	if len(spec.Apps) == 0 {
		spec.Apps = []AppChoice{{Profile: AppFib, Weight: 1}}
	}
	return spec
}

// heavyDuty is the fraction of each burst period the heavy tenant
// spends at BurstFactor x its mean rate.
const heavyDuty = 0.1

// MultiTenantStream returns the multi-tenant family as a pull-based
// trace.Source. Same spec → byte-identical stream.
func MultiTenantStream(spec MultiTenantSpec) trace.Source {
	src, _ := multiTenantStream(spec)
	return src
}

func multiTenantStream(spec MultiTenantSpec) (trace.Source, *genStats) {
	spec = spec.withDefaults()
	if spec.N <= 0 {
		panic("workload: multi-tenant spec needs N")
	}

	meanCPU := time.Duration(float64(spec.Duration.Mean()) * meanCPUFraction(spec.Apps))
	meanRPS := float64(time.Second) / float64(queueing.IATForLoad(meanCPU, spec.Cores, spec.Load))
	horizon := time.Duration(float64(spec.N) / meanRPS * float64(time.Second))

	r := rng.New(spec.Seed)
	appR := r.Split()
	ioR := r.Split()
	heavyR := r.Split()

	// Heavy tenant: square wave with duty-cycle bursts. The quiet level
	// is lowered so the tenant's mean rate stays at its share.
	heavyMean := meanRPS * spec.HeavyShare
	period := horizon / time.Duration(spec.Bursts)
	burstLen := time.Duration(float64(period) * heavyDuty)
	quiet := heavyMean * (1 - heavyDuty*spec.BurstFactor) / (1 - heavyDuty)
	if quiet < 0 {
		quiet = 0 // duty*BurstFactor > 1: all of the tenant's mass is in bursts
	}
	phase := time.Duration(heavyR.Float64() * float64(period))
	heavyRate := func(t time.Duration) float64 {
		if (t+phase)%period < burstLen {
			return heavyMean * spec.BurstFactor
		}
		return quiet
	}
	srcs := []trace.Source{trace.NewRate(trace.RateSpec{
		Desc:     fmt.Sprintf("tenant-heavy(%.1f rps x%.0f bursts)", heavyMean, spec.BurstFactor),
		Rate:     heavyRate,
		Peak:     heavyMean * spec.BurstFactor,
		Horizon:  horizon,
		Duration: spec.Duration,
		App:      "tenant-heavy",
		Seed:     spec.Seed ^ 0x7e4a,
	})}

	// Light tenants: steady Poisson streams splitting the remainder.
	lightRate := meanRPS * (1 - spec.HeavyShare) / float64(spec.Tenants-1)
	for i := 1; i < spec.Tenants; i++ {
		name := fmt.Sprintf("tenant%02d", i)
		srcs = append(srcs, trace.NewRate(trace.RateSpec{
			Desc:     fmt.Sprintf("%s(%.2f rps)", name, lightRate),
			Rate:     func(time.Duration) float64 { return lightRate },
			Peak:     lightRate,
			Horizon:  horizon,
			Duration: spec.Duration,
			App:      name,
			Seed:     spec.Seed ^ (0x11c5 * uint64(i+1)),
		}))
	}

	merged := trace.Limit(trace.Merge(srcs...), spec.N)
	desc := fmt.Sprintf("multitenant(n=%d, tenants=%d, heavy=%.2f x%.0f, load=%.2f on %d cores, seed=%d)",
		spec.N, spec.Tenants, spec.HeavyShare, spec.BurstFactor, spec.Load, spec.Cores, spec.Seed)

	// Build CPU/I-O structure from the mix but keep the tenant identity
	// as the application name — keep-alive pools are per tenant here.
	b := newBuilder(spec.Apps, spec.IOFraction, spec.IOMin, spec.IOMax, appR, ioR)
	stats := &genStats{}
	var last task.Task
	src := trace.Map(merged, func(t *task.Task) *task.Task {
		if stats.n > 0 {
			stats.iatSum += t.Arrival - last.Arrival
		}
		last.Arrival = t.Arrival
		stats.idealSum += t.Service
		stats.n++
		tenant := t.App
		built := b.build(t.ID, t.Arrival, t.Service)
		built.App = tenant
		return built
	})
	return trace.Derive(desc, src.Next, src), stats
}

// MultiTenant materializes the multi-tenant workload by collecting its
// stream.
func MultiTenant(spec MultiTenantSpec) *Workload {
	src, stats := multiTenantStream(spec)
	tasks := trace.Collect(src)
	return &Workload{
		Tasks:       tasks,
		MeanService: stats.meanService(),
		MeanIAT:     stats.meanIAT(),
		Description: src.String(),
	}
}
