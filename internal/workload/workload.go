// Package workload implements FaaSBench, the paper's workload generator
// (§VII): it synthesizes function invocation streams modeled after the
// Azure Functions traces, with configurable duration distributions
// (Table I), inter-arrival-time processes, an I/O knob, and the
// fib/md/sa application mix used in the OpenLambda evaluation.
//
// Generation is streaming: every scenario family (Poisson/Table I,
// Azure-sampled replays, synthetic RPS shapes) is exposed as a
// trace.Source — a pull-based iterator that never materializes the
// invocation stream — and Generate/AzureSampled/Synthetic are thin
// collectors over those sources for consumers that need slices.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// TableIRow is one row of the paper's Table I: a duration range, its
// probability in the downscaled Azure Day-1 distribution, and the fib N
// parameters that produce durations in that range.
type TableIRow struct {
	Probability float64
	Lo, Hi      time.Duration // duration range [Lo, Hi); Hi == 0 means open-ended
	FibNLo      int
	FibNHi      int
}

// TableI reproduces the paper's Table I verbatim. The missing ranges
// (50-100 excluded gaps) each carried < 1% probability in the Azure trace
// and are dropped, exactly as in the paper.
func TableI() []TableIRow {
	ms := time.Millisecond
	return []TableIRow{
		{Probability: 0.406, Lo: 0, Hi: 50 * ms, FibNLo: 20, FibNHi: 26},
		{Probability: 0.098, Lo: 50 * ms, Hi: 100 * ms, FibNLo: 27, FibNHi: 28},
		{Probability: 0.068, Lo: 100 * ms, Hi: 200 * ms, FibNLo: 29, FibNHi: 29},
		{Probability: 0.227, Lo: 200 * ms, Hi: 400 * ms, FibNLo: 30, FibNHi: 31},
		{Probability: 0.157, Lo: 1550 * ms, Hi: 0, FibNLo: 34, FibNHi: 35},
	}
}

// goldenRatio is the base of fib's exponential running time.
const goldenRatio = 1.6180339887498949

// fibCalibrationN and fibCalibrationDur anchor the fib cost model: the
// paper reports that fib with N in 20..26 finishes under ~45 ms, so we
// pin fib(26) = 45 ms and scale by the golden ratio per unit of N.
const (
	fibCalibrationN   = 26
	fibCalibrationDur = 45 * time.Millisecond
)

// FibDuration models the execution duration of the FaaSBench fib
// function for a given N: exponential in N with base phi.
func FibDuration(n int) time.Duration {
	return time.Duration(float64(fibCalibrationDur) * math.Pow(goldenRatio, float64(n-fibCalibrationN)))
}

// FibNFor returns the smallest fib N whose modeled duration is at least
// d (inverse of FibDuration, clamped to [1, 64]).
func FibNFor(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	n := fibCalibrationN + int(math.Ceil(math.Log(float64(d)/float64(fibCalibrationDur))/math.Log(goldenRatio)))
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// AzureTailCap bounds the open-ended Table I mode: the Azure analysis in
// the paper reports 99.9% of functions run under 224 s.
const AzureTailCap = 224 * time.Second

// tailDist is the open-ended >= 1550 ms mode of Table I: a bounded Pareto
// starting at the mode's floor, matching the Azure trace's heavy tail
// over roughly three further orders of magnitude.
type tailDist struct {
	xm    time.Duration
	alpha float64
	cap   time.Duration
}

func (td tailDist) Sample(r *rng.RNG) time.Duration {
	// Inverse-CDF sampling of a bounded Pareto on [xm, cap].
	l := math.Pow(float64(td.xm), td.alpha)
	h := math.Pow(float64(td.cap), td.alpha)
	u := r.Float64()
	x := math.Pow((h*l)/(h-u*(h-l)), 1/td.alpha)
	return time.Duration(x)
}

func (td tailDist) Mean() time.Duration {
	if td.alpha == 1 {
		return time.Duration(float64(td.xm) * math.Log(float64(td.cap)/float64(td.xm)))
	}
	l, h := float64(td.xm), float64(td.cap)
	la := math.Pow(l, td.alpha)
	m := la / (1 - math.Pow(l/h, td.alpha)) * td.alpha / (td.alpha - 1) *
		(1/math.Pow(l, td.alpha-1) - 1/math.Pow(h, td.alpha-1))
	return time.Duration(m)
}

func (td tailDist) String() string {
	return fmt.Sprintf("boundedPareto(xm=%v,alpha=%.2f,cap=%v)", td.xm, td.alpha, td.cap)
}

// TableIDistribution builds the paper's multimodal duration distribution
// from Table I, materialized the way FaaSBench materializes it: uniform
// within each bounded range, and the open-ended ">= 1550 ms" mode
// realized by fib N in 34-35 — durations between fib(34) and fib(35)
// (roughly 2.1-3.4 s), NOT an unbounded heavy tail. (The Azure trace's
// true tail extends to hundreds of seconds — see AzureTailDistribution —
// but the paper's benchmark generates its long mode from those two fib
// parameters only.)
func TableIDistribution() dist.Distribution {
	rows := TableI()
	modes := make([]dist.Mode, 0, len(rows))
	for _, row := range rows {
		var d dist.Distribution
		if row.Hi == 0 {
			lo := FibDuration(row.FibNLo)
			hi := FibDuration(row.FibNHi)
			if lo < row.Lo {
				lo = row.Lo
			}
			d = dist.Uniform{Lo: lo, Hi: hi}
		} else {
			d = dist.Uniform{Lo: row.Lo, Hi: row.Hi}
		}
		modes = append(modes, dist.Mode{Weight: row.Probability, Dist: d})
	}
	return dist.NewMixture(modes...)
}

// AzureTailDistribution is a Table I variant whose long mode follows the
// Azure trace's real heavy tail (bounded Pareto up to the 224 s 99.9th
// percentile anchor) instead of the fib 34-35 materialization. Used by
// ablation benchmarks to study scheduler behaviour under the production
// tail the paper's benchmark truncates.
func AzureTailDistribution() dist.Distribution {
	rows := TableI()
	modes := make([]dist.Mode, 0, len(rows))
	for _, row := range rows {
		var d dist.Distribution
		if row.Hi == 0 {
			d = tailDist{xm: row.Lo, alpha: 1.3, cap: AzureTailCap}
		} else {
			d = dist.Uniform{Lo: row.Lo, Hi: row.Hi}
		}
		modes = append(modes, dist.Mode{Weight: row.Probability, Dist: d})
	}
	return dist.NewMixture(modes...)
}

// AppProfile describes how a function application converts an ideal
// duration into CPU and I/O segments. The paper's OpenLambda workload
// mixes three applications (§IX-A).
type AppProfile struct {
	Name string
	// CPUFraction of the ideal duration is CPU burst; the rest is split
	// evenly across NumIO blocking operations.
	CPUFraction float64
	// NumIO is the number of blocking I/O operations (0 for pure CPU).
	NumIO int
	// IOAtStart places the first I/O op before any CPU work (like md and
	// the Fig 11 microbenchmark); otherwise ops are spread evenly.
	IOAtStart bool
}

// The paper's three applications: fib is CPU-heavy, md is I/O-intensive
// (reads a JSON file, converts to markdown), sa is both CPU- and
// I/O-intensive (loads a sentiment dictionary, then predicts).
var (
	AppFib = AppProfile{Name: "fib", CPUFraction: 1.0}
	AppMd  = AppProfile{Name: "md", CPUFraction: 0.35, NumIO: 2, IOAtStart: true}
	AppSa  = AppProfile{Name: "sa", CPUFraction: 0.7, NumIO: 1, IOAtStart: true}
)

// Build converts an ideal duration into a task's service time and I/O
// ops according to the profile.
func (p AppProfile) Build(t *task.Task, ideal time.Duration) {
	if p.CPUFraction <= 0 || p.CPUFraction > 1 {
		panic(fmt.Sprintf("workload: app %s has invalid CPU fraction %f", p.Name, p.CPUFraction))
	}
	service := time.Duration(float64(ideal) * p.CPUFraction)
	if service <= 0 {
		service = time.Millisecond
	}
	t.Service = service
	t.App = p.Name
	if p.NumIO <= 0 {
		return
	}
	ioTotal := ideal - service
	if ioTotal <= 0 {
		return
	}
	per := ioTotal / time.Duration(p.NumIO)
	for i := 0; i < p.NumIO; i++ {
		var at time.Duration
		if p.IOAtStart && i == 0 {
			at = 0
		} else {
			// Spread remaining ops evenly through the CPU demand.
			at = service * time.Duration(i) / time.Duration(p.NumIO)
		}
		t.WithIO(at, per)
	}
}

// Spec configures one FaaSBench workload generation run.
type Spec struct {
	// N is the number of invocation requests.
	N int
	// Duration samples ideal durations; defaults to TableIDistribution.
	Duration dist.Distribution
	// Arrival generates IATs. If nil, a Poisson process is created whose
	// rate offers Load to Cores (the paper's load-sweep methodology).
	Arrival dist.ArrivalProcess
	// Load is the target average CPU utilization fraction across Cores
	// (e.g. 0.8); used only when Arrival is nil.
	Load float64
	// Cores the workload will run on; used for load calibration.
	Cores int
	// Apps is the application mix with selection weights; defaults to
	// 100% fib.
	Apps []AppChoice
	// IOFraction, when positive, adds one leading I/O op (uniform
	// IOMin..IOMax) to this fraction of requests — the Fig 11 I/O knob.
	IOFraction   float64
	IOMin, IOMax time.Duration
	// Seed drives all sampling.
	Seed uint64
}

// AppChoice pairs an application profile with a mix weight.
type AppChoice struct {
	Profile AppProfile
	Weight  float64
}

// Workload is a generated invocation stream plus its provenance.
type Workload struct {
	Tasks       []*task.Task
	Spec        Spec
	MeanService time.Duration // mean ideal duration of the generated tasks
	MeanIAT     time.Duration
	Description string
}

// withDefaults fills the spec's derivable fields.
func (spec Spec) withDefaults() Spec {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	if len(spec.Apps) == 0 {
		spec.Apps = []AppChoice{{Profile: AppFib, Weight: 1}}
	}
	return spec
}

// builder converts sampled ideal durations into tasks: it picks an
// application profile from the mix and applies the Fig 11 I/O knob. One
// builder owns its RNG streams, so a seeded pipeline replays exactly.
type builder struct {
	apps       []AppChoice
	appCum     []float64
	appTotal   float64
	ioFraction float64
	io         dist.Uniform
	appR, ioR  *rng.RNG
}

func newBuilder(apps []AppChoice, ioFraction float64, ioMin, ioMax time.Duration, appR, ioR *rng.RNG) *builder {
	b := &builder{apps: apps, ioFraction: ioFraction, appR: appR, ioR: ioR}
	for _, a := range apps {
		b.appTotal += a.Weight
		b.appCum = append(b.appCum, b.appTotal)
	}
	lo, hi := ioMin, ioMax
	if lo <= 0 {
		lo = 10 * time.Millisecond
	}
	if hi <= lo {
		hi = lo + 90*time.Millisecond
	}
	b.io = dist.Uniform{Lo: lo, Hi: hi}
	return b
}

// build assembles one invocation from its id, arrival, and ideal
// duration.
func (b *builder) build(id int, at simtime.Time, ideal time.Duration) *task.Task {
	t := task.New(id, at, time.Millisecond)
	// Pick the application profile.
	u := b.appR.Float64() * b.appTotal
	idx := 0
	for idx < len(b.appCum)-1 && u >= b.appCum[idx] {
		idx++
	}
	b.apps[idx].Profile.Build(t, ideal)
	// The Fig 11 I/O knob: a single leading I/O operation.
	if b.ioFraction > 0 && b.ioR.Float64() < b.ioFraction {
		iod := b.io.Sample(b.ioR)
		// Prepend: ops must stay sorted by At, and At=0 sorts first.
		t.IOOps = append([]task.IOOp{{At: 0, Dur: iod}}, t.IOOps...)
	}
	return t
}

// genStats accumulates realized stream statistics as invocations are
// pulled, so collectors can report MeanService/MeanIAT without a second
// pass.
type genStats struct {
	n        int
	idealSum time.Duration
	iatSum   time.Duration
}

func (g *genStats) meanService() time.Duration {
	if g.n == 0 {
		return 0
	}
	return g.idealSum / time.Duration(g.n)
}

func (g *genStats) meanIAT() time.Duration {
	if g.n <= 1 {
		return 0
	}
	return g.iatSum / time.Duration(g.n-1)
}

// stream is the streaming generation core shared by Stream, Generate,
// and the Azure-sampled wrappers.
func stream(spec Spec) (trace.Source, *genStats) {
	spec = spec.withDefaults()
	r := rng.New(spec.Seed)
	durR := r.Split()
	appR := r.Split()
	ioR := r.Split()
	arrR := r.Split()

	// Arrival calibration: offered load is defined against CPU demand,
	// so the calibration discounts the analytic mean ideal duration by
	// the app mix's mean CPU fraction (I/O time occupies no core).
	// Using the distribution's analytic mean — rather than a realized
	// probe sample — is what lets the stream start emitting immediately
	// and never materialize, at the cost of a sampling-error-sized load
	// deviation that vanishes with N.
	arrival := spec.Arrival
	if arrival == nil {
		load := spec.Load
		if load <= 0 {
			load = 0.8
		}
		meanCPU := time.Duration(float64(spec.Duration.Mean()) * meanCPUFraction(spec.Apps))
		arrival = dist.PoissonProcess{Mean: queueing.IATForLoad(meanCPU, spec.Cores, load)}
	}

	b := newBuilder(spec.Apps, spec.IOFraction, spec.IOMin, spec.IOMax, appR, ioR)
	stats := &genStats{}
	var at simtime.Time
	desc := fmt.Sprintf("faasbench(n=%d, dur=%s, arr=%s, cores=%d)", spec.N, spec.Duration, arrival, spec.Cores)
	src := trace.New(desc, func() (*task.Task, bool) {
		if spec.N > 0 && stats.n >= spec.N {
			return nil, false
		}
		if stats.n > 0 {
			iat := arrival.NextIAT(arrR)
			if iat < 0 {
				iat = 0
			}
			at += iat
			stats.iatSum += iat
		}
		d := spec.Duration.Sample(durR)
		if d <= 0 {
			d = time.Millisecond
		}
		t := b.build(stats.n, at, d)
		stats.idealSum += d
		stats.n++
		return t, true
	})
	return src, stats
}

// Stream returns the spec's invocation stream as a pull-based
// trace.Source. A spec with N == 0 streams forever; consumers bound it
// with trace.Limit or their own cutoff. Re-invoking Stream with the same
// spec replays the identical stream.
func Stream(spec Spec) trace.Source {
	src, _ := stream(spec)
	return src
}

// Generate materializes a workload from the spec by collecting its
// stream — the slice-shaped entry point the simulator consumes. The
// arrival process is calibrated to the requested load from the duration
// distribution's analytic mean, mirroring the paper's proportional IAT
// adjustment (§VIII-A).
func Generate(spec Spec) *Workload {
	if spec.N <= 0 {
		panic("workload: N must be positive")
	}
	src, stats := stream(spec)
	tasks := trace.Collect(src)
	return &Workload{
		Tasks:       tasks,
		Spec:        spec,
		MeanService: stats.meanService(),
		MeanIAT:     stats.meanIAT(),
		Description: src.String(),
	}
}

// Clone returns a deep copy of the workload's tasks with accounting
// reset, so the same invocation stream can be replayed under multiple
// schedulers.
func (w *Workload) Clone() []*task.Task {
	return trace.CloneTasks(w.Tasks)
}

// Source returns the workload as a replayable trace.Source: each pull
// yields a fresh copy of the next invocation, so one materialized
// workload can feed any number of runs through the same interface the
// streaming generators use.
func (w *Workload) Source() trace.Source {
	return trace.FromTasks(w.Description, w.Tasks)
}

// meanCPUFraction returns the weight-averaged CPU fraction of an app
// mix (1.0 for the default pure-fib mix).
func meanCPUFraction(apps []AppChoice) float64 {
	if len(apps) == 0 {
		return 1
	}
	var num, den float64
	for _, a := range apps {
		num += a.Weight * a.Profile.CPUFraction
		den += a.Weight
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// OfferedLoad returns the workload's average offered CPU utilization on
// c cores (CPU demand only; blocked I/O time occupies no core).
func (w *Workload) OfferedLoad(c int) float64 {
	if w.MeanIAT <= 0 {
		return math.Inf(1)
	}
	var cpu time.Duration
	for _, t := range w.Tasks {
		cpu += t.Service
	}
	meanCPU := cpu / time.Duration(len(w.Tasks))
	return queueing.OfferedLoad(meanCPU, w.MeanIAT, c)
}
