package workload

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/trace"
)

// ChainSpec configures the synthetic multi-stage scenario family: each
// request is a function-chain workflow (a linear chain or a
// fan-out/fan-in diamond) whose stage payloads are sampled from one
// duration distribution, with Poisson request arrivals calibrated so
// the *whole chain* — every stage's CPU demand, not just the request's
// — offers Load to Cores. This is the workload where per-stage queueing
// compounds into end-to-end response time, the regime the chain layer
// exists to measure.
type ChainSpec struct {
	// N is the number of workflow requests.
	N int
	// Cores the load is calibrated for.
	Cores int
	// Load is the target average CPU utilization fraction across Cores,
	// counting every stage of every chain (default 0.8).
	Load float64
	// Family is the workflow shape: one of chain.FamilyNames()
	// (default LINEAR).
	Family string
	// Depth scales the family: LINEAR stages or DIAMOND branches
	// (default 3).
	Depth int
	// Duration samples stage payloads (default TableIDistribution, so
	// each stage looks like one paper-distribution invocation).
	Duration dist.Distribution
	// App names the workflow application (default "chain").
	App string
	// Seed drives all sampling.
	Seed uint64
}

// ChainStream builds the family: a request source (the workflow
// triggers; each request's own sampled duration is stage 0's payload)
// plus the chain.Config that expands those requests into workflows.
// Both are deterministic in the spec, so the same spec replays
// byte-identically. The error reports an unknown family name.
func ChainStream(spec ChainSpec) (trace.Source, chain.Config, error) {
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	if spec.App == "" {
		spec.App = "chain"
	}
	if spec.Family == "" {
		spec.Family = "LINEAR"
	}
	if spec.Load <= 0 {
		spec.Load = 0.8
	}
	// Stage 0 inherits the request's sampled duration; later stages
	// sample the same distribution inside the injector.
	wf, err := chain.NewFamily(spec.Family, chain.FamilyConfig{Depth: spec.Depth, Service: spec.Duration})
	if err != nil {
		return nil, chain.Config{}, err
	}
	wf.Stages[0].Service = nil

	// Calibrate request IATs to the chain's total CPU demand: factor x
	// the per-request mean, so the aggregate offered load is spec.Load.
	mean := spec.Duration.Mean()
	factor := wf.ServiceFactor(mean)
	meanChain := time.Duration(float64(mean) * factor)
	src := Stream(Spec{
		N:       spec.N,
		Cores:   spec.Cores,
		Arrival: dist.PoissonProcess{Mean: queueing.IATForLoad(meanChain, spec.Cores, spec.Load)},
		Apps: []AppChoice{{
			Profile: AppProfile{Name: spec.App, CPUFraction: 1},
			Weight:  1,
		}},
		Duration: spec.Duration,
		Seed:     spec.Seed,
	})
	desc := fmt.Sprintf("%s x %s depth=%d (chain load %.2f on %d cores)",
		src, spec.Family, wfDepth(spec), spec.Load, spec.Cores)
	src = trace.Derive(desc, src.Next, src)
	cfg := chain.Config{
		Specs: map[string]chain.Spec{spec.App: wf},
		Seed:  spec.Seed,
	}
	return src, cfg, nil
}

// wfDepth resolves the spec's effective depth (the family default when
// unset).
func wfDepth(spec ChainSpec) int {
	if spec.Depth <= 0 {
		return 3
	}
	return spec.Depth
}
