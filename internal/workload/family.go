package workload

import (
	"time"

	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/registry"
	"github.com/serverless-sched/sfs/internal/trace"
)

// FamilyConfig carries the construction parameters shared by every
// scenario family, mirroring the scheduler/dispatcher/keep-alive/chain
// registries' factory configs. Knobs a family doesn't use are ignored;
// knobs beyond these (spike factors, tenant counts, trend slopes) take
// that family's documented defaults — callers needing full control use
// the family's own Spec type directly.
type FamilyConfig struct {
	// N is the invocation count (each family also sizes its horizon
	// from it).
	N int
	// Cores the offered load is calibrated for.
	Cores int
	// Load is the target average CPU utilization fraction (families
	// default it when non-positive).
	Load float64
	// Apps is the application mix (default pure fib).
	Apps []AppChoice
	// Seed drives all sampling.
	Seed uint64
}

// reg maps canonical names to scenario-family constructors in
// presentation order — the fifth registry on the shared
// internal/registry helper alongside internal/schedulers,
// internal/cluster, internal/lifecycle, and internal/chain, so the
// CLIs and experiments select workloads by flag without the recognized
// set drifting between tools.
var reg = registry.New[func(cfg FamilyConfig) trace.Source]("scenario family").
	Add("POISSON", poissonFamily).
	Add("AZURE", azureFamily).
	Add("SYNTH", synthFamily).
	Add("DIURNAL", diurnalFamily).
	Add("FLASHCROWD", flashCrowdFamily).
	Add("MULTITENANT", multiTenantFamily).
	Add("TRIGGER", triggerFamily)

// FamilyNames returns the canonical scenario family names NewFamily
// recognizes.
func FamilyNames() []string { return reg.Names() }

// NewFamily constructs a scenario family's invocation stream by
// case-insensitive name. Same config → byte-identical stream.
func NewFamily(name string, cfg FamilyConfig) (trace.Source, error) {
	mk, err := reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return mk(cfg), nil
}

// NewFamilyWorkload materializes a scenario family into a Workload,
// deriving the realized mean service and inter-arrival times from the
// collected stream — the slice-shaped registry entry point for callers
// (sfs-sim, experiments) that replay one trace under many schedulers.
func NewFamilyWorkload(name string, cfg FamilyConfig) (*Workload, error) {
	src, err := NewFamily(name, cfg)
	if err != nil {
		return nil, err
	}
	tasks := trace.Collect(src)
	if err := trace.Err(src); err != nil {
		return nil, err
	}
	w := &Workload{Tasks: tasks, Description: src.String()}
	if len(tasks) > 0 {
		var ideal time.Duration
		for _, t := range tasks {
			ideal += t.IdealDuration()
		}
		w.MeanService = ideal / time.Duration(len(tasks))
	}
	if len(tasks) > 1 {
		span := time.Duration(tasks[len(tasks)-1].Arrival - tasks[0].Arrival)
		w.MeanIAT = span / time.Duration(len(tasks)-1)
	}
	return w, nil
}

// sortedFamilyNames is used by tests to compare registries without
// caring about presentation order.
func sortedFamilyNames() []string { return reg.SortedNames() }

// poissonFamily is the paper's baseline: Table I durations, Poisson
// arrivals calibrated to the offered load.
func poissonFamily(cfg FamilyConfig) trace.Source {
	return Stream(Spec{N: cfg.N, Cores: cfg.Cores, Load: cfg.Load, Apps: cfg.Apps, Seed: cfg.Seed})
}

// azureFamily replays IATs sampled from the synthetic Azure trace's hot
// applications (§VII).
func azureFamily(cfg FamilyConfig) trace.Source {
	return AzureSampledStream(AzureSampledSpec{N: cfg.N, Cores: cfg.Cores, Load: cfg.Load, Apps: cfg.Apps, Seed: cfg.Seed})
}

// synthFamily ramps the request rate through saturation — 0.3x to 1.2x
// the mix's saturating RPS — the invitro-style load-transition profile.
func synthFamily(cfg FamilyConfig) trace.Source {
	spec := SyntheticSpec{N: cfg.N, Apps: cfg.Apps, Seed: cfg.Seed}
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = 1
	}
	meanCPU := time.Duration(float64(spec.Duration.Mean()) * meanCPUFraction(cfg.Apps))
	sat := float64(time.Second) / float64(queueing.IATForLoad(meanCPU, cores, 1.0))
	spec.Shape = trace.ShapeRamp
	spec.StartRPS = 0.3 * sat
	spec.TargetRPS = 1.2 * sat
	// Mean rate 0.75x saturation sizes the horizon to hold ~N arrivals.
	spec.Horizon = time.Duration(float64(cfg.N) / (0.75 * sat) * float64(time.Second))
	return SyntheticStream(spec)
}

func diurnalFamily(cfg FamilyConfig) trace.Source {
	return DiurnalStream(DiurnalSpec{N: cfg.N, Cores: cfg.Cores, Load: cfg.Load, Apps: cfg.Apps, Seed: cfg.Seed})
}

func flashCrowdFamily(cfg FamilyConfig) trace.Source {
	return FlashCrowdStream(FlashCrowdSpec{N: cfg.N, Cores: cfg.Cores, Load: cfg.Load, Apps: cfg.Apps, Seed: cfg.Seed})
}

func multiTenantFamily(cfg FamilyConfig) trace.Source {
	return MultiTenantStream(MultiTenantSpec{N: cfg.N, Cores: cfg.Cores, Load: cfg.Load, Apps: cfg.Apps, Seed: cfg.Seed})
}

// triggerFamily is the plain-invocation view of the trigger mix; use
// TriggerStream directly to also get the workflow config it feeds.
func triggerFamily(cfg FamilyConfig) trace.Source {
	return TriggerSource(TriggerSpec{N: cfg.N, Cores: cfg.Cores, Load: cfg.Load, Seed: cfg.Seed})
}
