package workload

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/trace"
)

// SyntheticSpec configures an invitro-style synthetic workload: instead
// of calibrating arrivals to an offered load, the request rate follows
// an explicit RPS profile (constant, linear ramp, RPS-slot staircase, or
// sine wave) over a horizon — the scenario family used to study how a
// scheduler tracks load transitions rather than a steady state.
type SyntheticSpec struct {
	// Shape, StartRPS, TargetRPS, Slots, SlotDur, Horizon, and N
	// parameterize the arrival profile exactly as trace.SynthSpec.
	Shape     trace.Shape
	StartRPS  float64
	TargetRPS float64
	Slots     int
	SlotDur   time.Duration
	Horizon   time.Duration
	N         int
	// Duration samples ideal durations; defaults to TableIDistribution.
	Duration dist.Distribution
	// Apps is the application mix (default pure fib).
	Apps []AppChoice
	// IOFraction adds the Fig 11 leading-I/O knob.
	IOFraction   float64
	IOMin, IOMax time.Duration
	// Seed drives all sampling.
	Seed uint64
}

// SyntheticStream returns the synthetic workload as a pull-based
// trace.Source: arrivals are generated lazily by thinning a
// non-homogeneous Poisson process, and each invocation is built through
// the same app-mix/I/O-knob pipeline as the other scenario families.
func SyntheticStream(spec SyntheticSpec) trace.Source {
	src, _ := syntheticStream(spec)
	return src
}

func syntheticStream(spec SyntheticSpec) (trace.Source, *genStats) {
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	if len(spec.Apps) == 0 {
		spec.Apps = []AppChoice{{Profile: AppFib, Weight: 1}}
	}
	inner := trace.NewSynthetic(trace.SynthSpec{
		Shape:     spec.Shape,
		StartRPS:  spec.StartRPS,
		TargetRPS: spec.TargetRPS,
		Slots:     spec.Slots,
		SlotDur:   spec.SlotDur,
		Horizon:   spec.Horizon,
		N:         spec.N,
		Duration:  spec.Duration,
		Seed:      spec.Seed,
	})
	// The inner source's Service is the sampled ideal duration; the
	// builder splits it into CPU and I/O per the app profile.
	desc := fmt.Sprintf("%s × %d apps", inner, len(spec.Apps))
	return builderStream(inner, spec.Apps, spec.IOFraction, spec.IOMin, spec.IOMax, spec.Seed, desc)
}

// Synthetic materializes the synthetic workload by collecting its
// stream.
func Synthetic(spec SyntheticSpec) *Workload {
	src, stats := syntheticStream(spec)
	tasks := trace.Collect(src)
	return &Workload{
		Tasks:       tasks,
		MeanService: stats.meanService(),
		MeanIAT:     stats.meanIAT(),
		Description: src.String(),
	}
}
