package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// famCfg is the small config the family sweeps use.
var famCfg = FamilyConfig{N: 2000, Cores: 4, Load: 0.8, Seed: 42}

// TestFamilyRegistry: every registered family constructs, is
// case-insensitive, caps at N, yields a valid arrival-ordered trace,
// and replays byte-identically; unknown names error and list the
// catalog.
func TestFamilyRegistry(t *testing.T) {
	for _, name := range FamilyNames() {
		t.Run(name, func(t *testing.T) {
			src, err := NewFamily(strings.ToLower(name), famCfg)
			if err != nil {
				t.Fatalf("NewFamily(%s): %v", name, err)
			}
			a := trace.Collect(src)
			if len(a) == 0 || len(a) > famCfg.N {
				t.Fatalf("%s: %d invocations, want 1..%d", name, len(a), famCfg.N)
			}
			// Families size their horizon so ~N arrivals fit; allow wide
			// sampling slack but catch gross miscalibration.
			if len(a) < famCfg.N/2 {
				t.Errorf("%s: only %d invocations for N=%d", name, len(a), famCfg.N)
			}
			for i, tk := range a {
				if tk.ID != i {
					t.Fatalf("%s: task %d has ID %d, want sequential", name, i, tk.ID)
				}
				if i > 0 && tk.Arrival < a[i-1].Arrival {
					t.Fatalf("%s: arrival order violated at %d", name, i)
				}
				if tk.Service <= 0 {
					t.Fatalf("%s: task %d has non-positive service", name, i)
				}
				if tk.App == "" {
					t.Fatalf("%s: task %d has no app", name, i)
				}
			}
			src2, _ := NewFamily(name, famCfg)
			b := trace.Collect(src2)
			if len(a) != len(b) {
				t.Fatalf("%s: replay length %d vs %d", name, len(a), len(b))
			}
			for i := range a {
				if a[i].Arrival != b[i].Arrival || a[i].Service != b[i].Service || a[i].App != b[i].App {
					t.Fatalf("%s: replay diverges at invocation %d", name, i)
				}
			}
		})
	}

	if _, err := NewFamily("nope", famCfg); err == nil {
		t.Fatal("unknown family accepted")
	} else if !strings.Contains(err.Error(), "DIURNAL") {
		t.Errorf("error %q does not list the catalog", err)
	}
}

// TestDiurnalShape: midday-centred halves of each day must out-arrive
// the midnight-centred halves, and weekend days must dip below weekday
// volume.
func TestDiurnalShape(t *testing.T) {
	spec := DiurnalSpec{N: 20000, Cores: 8, Load: 0.8, Days: 7, Seed: 9}
	src, _ := diurnalStream(spec)
	tasks := trace.Collect(src)
	if len(tasks) < 10000 {
		t.Fatalf("only %d arrivals", len(tasks))
	}
	horizon := time.Duration(tasks[len(tasks)-1].Arrival)
	day := horizon / 7
	dayCount := make([]int, 7)
	mid, night := 0, 0
	for _, tk := range tasks {
		at := time.Duration(tk.Arrival)
		d := int(at / day)
		if d > 6 {
			d = 6
		}
		dayCount[d]++
		frac := float64(at%day) / float64(day)
		if frac >= 0.25 && frac < 0.75 {
			mid++
		} else {
			night++
		}
	}
	if mid < night {
		t.Errorf("midday arrivals %d < night arrivals %d; sine shape missing", mid, night)
	}
	weekday := (dayCount[0] + dayCount[1] + dayCount[2] + dayCount[3] + dayCount[4]) / 5
	weekend := (dayCount[5] + dayCount[6]) / 2
	if float64(weekend) > 0.8*float64(weekday) {
		t.Errorf("weekend mean %d vs weekday mean %d; dip missing", weekend, weekday)
	}
}

// TestFlashCrowdShape: spike windows must be far denser than baseline,
// and most spike-window arrivals must hit that spike's crowd app.
func TestFlashCrowdShape(t *testing.T) {
	spec := FlashCrowdSpec{N: 20000, Cores: 8, Load: 0.6, Seed: 11}
	src, _ := flashCrowdStream(spec)
	tasks := trace.Collect(src)
	if len(tasks) < 5000 {
		t.Fatalf("only %d arrivals", len(tasks))
	}
	horizon := time.Duration(tasks[len(tasks)-1].Arrival)
	crowd := map[string]int{}
	for _, tk := range tasks {
		if strings.HasPrefix(tk.App, "crowd") {
			crowd[tk.App]++
		}
	}
	if len(crowd) != 3 {
		t.Fatalf("crowd apps = %v, want 3 distinct", crowd)
	}
	for app, n := range crowd {
		if n < 100 {
			t.Errorf("crowd app %s only has %d arrivals", app, n)
		}
	}
	// Density check: the busiest 2% window of the trace should hold many
	// times the uniform share of arrivals.
	buckets := make([]int, 50)
	for _, tk := range tasks {
		b := int(time.Duration(tk.Arrival) * 50 / (horizon + 1))
		buckets[b]++
	}
	max, sum := 0, 0
	for _, n := range buckets {
		sum += n
		if n > max {
			max = n
		}
	}
	if float64(max) < 3*float64(sum)/50 {
		t.Errorf("densest 2%% bucket holds %d of %d arrivals; no flash spike visible", max, sum)
	}
}

// TestMultiTenantShape: the heavy tenant must carry roughly its share,
// every light tenant must appear, and the heavy tenant's arrivals must
// be burstier than a light tenant's.
func TestMultiTenantShape(t *testing.T) {
	spec := MultiTenantSpec{N: 20000, Cores: 8, Load: 0.8, Seed: 13}
	src, _ := multiTenantStream(spec)
	tasks := trace.Collect(src)
	if len(tasks) < 10000 {
		t.Fatalf("only %d arrivals", len(tasks))
	}
	perApp := map[string]int{}
	for _, tk := range tasks {
		perApp[tk.App]++
	}
	if len(perApp) != 9 {
		t.Fatalf("%d tenants, want 9: %v", len(perApp), perApp)
	}
	heavy := perApp["tenant-heavy"]
	share := float64(heavy) / float64(len(tasks))
	if share < 0.35 || share > 0.65 {
		t.Errorf("heavy tenant share = %.2f, want ~0.5", share)
	}
	for app, n := range perApp {
		if n == 0 {
			t.Errorf("tenant %s has no arrivals", app)
		}
	}
	// Burstiness: the heavy tenant's densest 2% window should be much
	// fuller than a steady tenant's.
	horizon := time.Duration(tasks[len(tasks)-1].Arrival)
	peakShare := func(app string) float64 {
		buckets := make([]int, 50)
		total := 0
		for _, tk := range tasks {
			if tk.App != app {
				continue
			}
			buckets[int(time.Duration(tk.Arrival)*50/(horizon+1))]++
			total++
		}
		max := 0
		for _, n := range buckets {
			if n > max {
				max = n
			}
		}
		return float64(max) / float64(total)
	}
	if hp, lp := peakShare("tenant-heavy"), peakShare("tenant01"); hp < 1.5*lp {
		t.Errorf("heavy tenant peak share %.3f vs light %.3f; bursts missing", hp, lp)
	}
}

// TestTriggerShape: all three trigger classes appear with roughly their
// configured shares, queue batches arrive in gap-spaced runs, and the
// chain config maps every trigger app to a workflow.
func TestTriggerShape(t *testing.T) {
	spec := TriggerSpec{N: 10000, Cores: 8, Seed: 17}
	src, cfg, stats, err := triggerStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	tasks := trace.Collect(src)
	if len(tasks) < 5000 {
		t.Fatalf("only %d arrivals", len(tasks))
	}
	if stats.meanService() <= 0 {
		t.Error("stats did not accumulate")
	}
	classes := map[string]int{}
	for _, tk := range tasks {
		switch {
		case tk.App == "http":
			classes["http"]++
		case tk.App == "queue":
			classes["queue"]++
		case strings.HasPrefix(tk.App, "timer"):
			classes["timer"]++
		default:
			t.Fatalf("unexpected app %q", tk.App)
		}
	}
	n := float64(len(tasks))
	if s := float64(classes["http"]) / n; s < 0.35 || s > 0.65 {
		t.Errorf("http share %.2f, want ~0.5", s)
	}
	if s := float64(classes["queue"]) / n; s < 0.18 || s > 0.45 {
		t.Errorf("queue share %.2f, want ~0.3", s)
	}
	if s := float64(classes["timer"]) / n; s < 0.08 || s > 0.35 {
		t.Errorf("timer share %.2f, want ~0.2", s)
	}
	// Every trigger app resolves to a workflow in the chain config.
	for _, app := range []string{"http", "queue", "timer00", "timer03"} {
		if _, ok := cfg.Specs[app]; !ok {
			t.Errorf("chain config missing app %q", app)
		}
	}
	if len(cfg.Specs["http"].Stages) != 2 {
		t.Errorf("http chain has %d stages, want 2", len(cfg.Specs["http"].Stages))
	}
	if len(cfg.Specs["queue"].Stages) != 3 {
		t.Errorf("queue chain has %d stages, want 3", len(cfg.Specs["queue"].Stages))
	}
	if len(cfg.Specs["timer00"].Stages) != 5 {
		t.Errorf("timer chain has %d stages, want 5 (diamond width 3)", len(cfg.Specs["timer00"].Stages))
	}
}

// TestBuilderStreamMatchesBatch: the streaming Poisson family must equal
// the materialized Generate output invocation-for-invocation — the
// registry's streaming path is not a second implementation.
func TestBuilderStreamMatchesBatch(t *testing.T) {
	spec := Spec{N: 500, Cores: 4, Load: 0.7, Seed: 23, IOFraction: 0.3}
	w := Generate(spec)
	src, _ := NewFamily("POISSON", FamilyConfig{N: 500, Cores: 4, Load: 0.7, Seed: 23})
	_ = src // POISSON has no IOFraction knob; compare Stream directly.
	streamed := trace.Collect(Stream(spec))
	if len(streamed) != len(w.Tasks) {
		t.Fatalf("stream %d vs batch %d", len(streamed), len(w.Tasks))
	}
	for i := range streamed {
		a, b := streamed[i], w.Tasks[i]
		if a.Arrival != b.Arrival || a.Service != b.Service || a.App != b.App || len(a.IOOps) != len(b.IOOps) {
			t.Fatalf("invocation %d: stream %+v vs batch %+v", i, a, b)
		}
	}
}

// TestPeriodicSourceOrder: jittered cron ticks must stay strictly
// within the horizon and non-decreasing.
func TestPeriodicSourceOrder(t *testing.T) {
	spec := TriggerSpec{N: 5000, Cores: 2, TimerShare: 1, HTTPShare: 0.0001, QueueShare: 0.0001, Seed: 29}
	src, _, _, _ := triggerStream(spec)
	seen := 0
	var prev *task.Task
	for {
		tk, ok := src.Next()
		if !ok {
			break
		}
		if prev != nil && tk.Arrival < prev.Arrival {
			t.Fatalf("merged order violated at id %d", tk.ID)
		}
		prev = tk
		if strings.HasPrefix(tk.App, "timer") {
			seen++
		}
	}
	if seen < 100 {
		t.Fatalf("only %d timer ticks", seen)
	}
}
