package workload

import (
	"io"

	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Workload persistence lives in internal/trace, where it streams on both
// sides; these wrappers keep the slice-shaped entry points that the
// simulator CLIs archive and replay workloads through.

// WriteCSV serializes tasks in arrival order (see trace.WriteCSV for the
// schema).
func WriteCSV(w io.Writer, tasks []*task.Task) error {
	return trace.WriteTasksCSV(w, tasks)
}

// ReadCSV deserializes a workload written by WriteCSV. Tasks are
// validated; the first invalid row aborts with a row-numbered error.
func ReadCSV(r io.Reader) ([]*task.Task, error) {
	return trace.ReadCSV(r)
}
