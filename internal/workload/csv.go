package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Workload persistence: a generated invocation stream can be written to
// CSV and replayed later (or on another machine) bit-identically, which
// is how experiment inputs are archived alongside results.
//
// Schema: id,app,arrival_us,service_us,io_ops
// where io_ops is a semicolon-separated list of at_us:dur_us pairs.

// WriteCSV serializes tasks in arrival order.
func WriteCSV(w io.Writer, tasks []*task.Task) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "app", "arrival_us", "service_us", "io_ops"}); err != nil {
		return err
	}
	for _, t := range tasks {
		var ops strings.Builder
		for i, op := range t.IOOps {
			if i > 0 {
				ops.WriteByte(';')
			}
			fmt.Fprintf(&ops, "%d:%d", op.At.Microseconds(), op.Dur.Microseconds())
		}
		rec := []string{
			strconv.Itoa(t.ID),
			t.App,
			strconv.FormatInt(t.Arrival.Microseconds(), 10),
			strconv.FormatInt(t.Service.Microseconds(), 10),
			ops.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserializes a workload written by WriteCSV. Tasks are
// validated; the first invalid row aborts with a row-numbered error.
func ReadCSV(r io.Reader) ([]*task.Task, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	want := []string{"id", "app", "arrival_us", "service_us", "io_ops"}
	if len(header) < len(want) {
		return nil, fmt.Errorf("workload: header %v, want %v", header, want)
	}
	for i, h := range want {
		if header[i] != h {
			return nil, fmt.Errorf("workload: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var tasks []*task.Task
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", row, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad id: %w", row, err)
		}
		arrUS, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad arrival: %w", row, err)
		}
		svcUS, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad service: %w", row, err)
		}
		t := task.New(id, simtime.Time(arrUS)*time.Microsecond, time.Duration(svcUS)*time.Microsecond)
		t.App = rec[1]
		if ops := rec[4]; ops != "" {
			for _, pair := range strings.Split(ops, ";") {
				at, dur, ok := strings.Cut(pair, ":")
				if !ok {
					return nil, fmt.Errorf("workload: row %d: bad io op %q", row, pair)
				}
				atUS, err1 := strconv.ParseInt(at, 10, 64)
				durUS, err2 := strconv.ParseInt(dur, 10, 64)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("workload: row %d: bad io op %q", row, pair)
				}
				t.WithIO(time.Duration(atUS)*time.Microsecond, time.Duration(durUS)*time.Microsecond)
			}
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", row, err)
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}
