package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// TriggerSpec configures the trigger-mix scenario family: the
// platform-facing event sources FaaS providers actually see — HTTP
// front-door requests (Poisson), queue consumers draining message
// batches (one Poisson event fans into Batch closely-spaced
// invocations), and cron timers (periodic, jittered, log-spaced
// periods) — each feeding its own function-chain workflow. The request
// rate is calibrated so the aggregate chain CPU demand (every stage of
// every workflow) offers Load to Cores.
type TriggerSpec struct {
	// N caps the merged trigger-request count and sizes the horizon.
	N int
	// Cores the aggregate chain load is calibrated for.
	Cores int
	// Load is the horizon-average offered CPU load counting every chain
	// stage (default 0.8).
	Load float64
	// HTTPShare, QueueShare, TimerShare split the request rate across
	// trigger classes (defaults 0.5/0.3/0.2; normalized if they don't
	// sum to 1).
	HTTPShare, QueueShare, TimerShare float64
	// Batch is the number of invocations one queue event fans into,
	// spaced QueueGap apart (default 8).
	Batch int
	// QueueGap is the spacing between a queue batch's members
	// (default 1ms — the dequeue loop's pace).
	QueueGap time.Duration
	// Timers is the number of periodic timer applications; their
	// periods are log-spaced so the fastest timer fires ~2^(Timers-1)
	// times as often as the slowest (default 4).
	Timers int
	// Duration samples stage payloads (default TableIDistribution).
	Duration dist.Distribution
	// Seed drives all sampling.
	Seed uint64
}

// withDefaults fills the spec's derivable fields.
func (spec TriggerSpec) withDefaults() TriggerSpec {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	if spec.Load <= 0 {
		spec.Load = 0.8
	}
	if spec.HTTPShare <= 0 && spec.QueueShare <= 0 && spec.TimerShare <= 0 {
		spec.HTTPShare, spec.QueueShare, spec.TimerShare = 0.5, 0.3, 0.2
	}
	total := spec.HTTPShare + spec.QueueShare + spec.TimerShare
	spec.HTTPShare /= total
	spec.QueueShare /= total
	spec.TimerShare /= total
	if spec.Batch <= 0 {
		spec.Batch = 8
	}
	if spec.QueueGap <= 0 {
		spec.QueueGap = time.Millisecond
	}
	if spec.Timers <= 0 {
		spec.Timers = 4
	}
	if spec.Duration == nil {
		spec.Duration = TableIDistribution()
	}
	return spec
}

// timerApp names the i-th periodic timer application.
func timerApp(i int) string { return fmt.Sprintf("timer%02d", i) }

// TriggerStream builds the trigger-mix family: the merged trigger
// source plus the chain.Config expanding each trigger class into its
// workflow — HTTP requests run a two-stage linear chain (auth → work),
// queue messages a three-stage linear pipeline, and timers a diamond
// (fan-out scan, fan-in report). Both halves are deterministic in the
// spec. The error is always nil today (the signature mirrors
// ChainStream so callers treat families uniformly).
func TriggerStream(spec TriggerSpec) (trace.Source, chain.Config, error) {
	src, cfg, _, err := triggerStream(spec)
	return src, cfg, err
}

func triggerStream(spec TriggerSpec) (trace.Source, chain.Config, *genStats, error) {
	spec = spec.withDefaults()
	if spec.N <= 0 {
		panic("workload: trigger spec needs N")
	}

	// Per-class workflows; stage 0 inherits the trigger's own sampled
	// duration, later stages sample the distribution in the injector.
	mkChain := func(family string, depth int) chain.Spec {
		wf, err := chain.NewFamily(family, chain.FamilyConfig{Depth: depth, Service: spec.Duration})
		if err != nil {
			panic("workload: " + err.Error()) // registry names are compiled in
		}
		wf.Stages[0].Service = nil
		return wf
	}
	httpWF := mkChain("LINEAR", 2)
	queueWF := mkChain("LINEAR", 3)
	timerWF := mkChain("DIAMOND", 3)

	// Calibrate the total trigger rate so the aggregate chain CPU
	// demand — requests x their class's whole-workflow service factor —
	// offers Load to Cores.
	mean := spec.Duration.Mean()
	meanSec := mean.Seconds()
	factor := spec.HTTPShare*httpWF.ServiceFactor(mean) +
		spec.QueueShare*queueWF.ServiceFactor(mean) +
		spec.TimerShare*timerWF.ServiceFactor(mean)
	totalRPS := float64(spec.Cores) * spec.Load / (meanSec * factor)
	horizon := time.Duration(float64(spec.N) / totalRPS * float64(time.Second))

	r := rng.New(spec.Seed)
	httpSeed := r.Split().Uint64()
	queueSeed := r.Split().Uint64()
	timerR := r.Split()

	httpSrc := trace.NewRate(trace.RateSpec{
		Desc:     fmt.Sprintf("http(%.1f rps)", totalRPS*spec.HTTPShare),
		Rate:     func(time.Duration) float64 { return totalRPS * spec.HTTPShare },
		Peak:     totalRPS * spec.HTTPShare,
		Horizon:  horizon,
		Duration: spec.Duration,
		App:      "http",
		Seed:     httpSeed,
	})

	queueSrc := queueBatchSource(totalRPS*spec.QueueShare, spec.Batch, spec.QueueGap, horizon, spec.Duration, queueSeed)

	// Timer periods are log-spaced: timer i fires at rate ∝ 2^-i, the
	// whole set summing to the class's share of the request rate.
	srcs := []trace.Source{httpSrc, queueSrc}
	weightSum := 0.0
	for i := 0; i < spec.Timers; i++ {
		weightSum += math.Pow(2, -float64(i))
	}
	for i := 0; i < spec.Timers; i++ {
		rate := totalRPS * spec.TimerShare * math.Pow(2, -float64(i)) / weightSum
		period := time.Duration(float64(time.Second) / rate)
		srcs = append(srcs, periodicSource(timerApp(i), period, horizon, spec.Duration, timerR.Split()))
	}

	merged := trace.Limit(trace.Merge(srcs...), spec.N)
	desc := fmt.Sprintf("trigger(n=%d, http/queue/timer=%.2f/%.2f/%.2f, batch=%d, timers=%d, load=%.2f on %d cores, seed=%d)",
		spec.N, spec.HTTPShare, spec.QueueShare, spec.TimerShare, spec.Batch, spec.Timers,
		spec.Load, spec.Cores, spec.Seed)
	stats := &genStats{}
	var last task.Task
	src := trace.Map(merged, func(t *task.Task) *task.Task {
		if stats.n > 0 {
			stats.iatSum += t.Arrival - last.Arrival
		}
		last.Arrival = t.Arrival
		stats.idealSum += t.Service
		stats.n++
		return t
	})

	specs := map[string]chain.Spec{"http": httpWF, "queue": queueWF}
	for i := 0; i < spec.Timers; i++ {
		specs[timerApp(i)] = timerWF
	}
	cfg := chain.Config{Specs: specs, Seed: spec.Seed}
	return trace.Derive(desc, src.Next, src), cfg, stats, nil
}

// TriggerSource returns only the merged trigger stream (the family
// registry's plain-invocation view, no workflow expansion).
func TriggerSource(spec TriggerSpec) trace.Source {
	src, _, _, _ := triggerStream(spec)
	return src
}

// queueBatchSource drains Poisson queue events into invocation batches:
// events arrive at eventRPS = rps/batch, and each fans into batch
// members spaced gap apart, every member sampling its own payload.
func queueBatchSource(rps float64, batch int, gap time.Duration, horizon time.Duration, d dist.Distribution, seed uint64) trace.Source {
	r := rng.New(seed)
	durR := r.Split()
	events := trace.NewRate(trace.RateSpec{
		Desc:     fmt.Sprintf("queue-events(%.2f rps)", rps/float64(batch)),
		Rate:     func(time.Duration) float64 { return rps / float64(batch) },
		Peak:     rps / float64(batch),
		Horizon:  horizon,
		Duration: d,
		App:      "queue",
		Seed:     r.Split().Uint64(),
	})
	var pending []*task.Task
	id := 0
	desc := fmt.Sprintf("queue(%.1f rps, batch=%d@%v)", rps, batch, gap)
	return trace.Derive(desc, func() (*task.Task, bool) {
		if len(pending) == 0 {
			ev, ok := events.Next()
			if !ok {
				return nil, false
			}
			pending = append(pending, ev)
			for i := 1; i < batch; i++ {
				dur := d.Sample(durR)
				if dur <= 0 {
					dur = time.Millisecond
				}
				m := task.New(0, ev.Arrival+simtime.Time(i)*simtime.Time(gap), dur)
				m.App = "queue"
				pending = append(pending, m)
			}
		}
		t := pending[0]
		pending = pending[1:]
		t.ID = id
		id++
		return t, true
	}, events)
}

// periodicSource fires a cron timer: arrivals at a seeded phase plus
// every period, each tick jittered by ±10% of the period (jitter this
// small keeps arrivals strictly increasing).
func periodicSource(app string, period, horizon time.Duration, d dist.Distribution, r *rng.RNG) trace.Source {
	durR := r.Split()
	jitR := r.Split()
	phase := time.Duration(r.Float64() * float64(period))
	tick := 0
	id := 0
	desc := fmt.Sprintf("%s(every %v)", app, period.Round(time.Millisecond))
	return trace.Derive(desc, func() (*task.Task, bool) {
		at := phase + time.Duration(tick)*period + time.Duration((jitR.Float64()*2-1)*0.1*float64(period))
		tick++
		if at < 0 {
			at = 0
		}
		if at >= horizon {
			return nil, false
		}
		dur := d.Sample(durR)
		if dur <= 0 {
			dur = time.Millisecond
		}
		t := task.New(id, simtime.Time(at), dur)
		t.App = app
		id++
		return t, true
	})
}

// Trigger materializes the trigger-mix workload (plain invocations, no
// workflow expansion) by collecting its stream.
func Trigger(spec TriggerSpec) *Workload {
	src, _, stats, _ := triggerStream(spec)
	tasks := trace.Collect(src)
	return &Workload{
		Tasks:       tasks,
		MeanService: stats.meanService(),
		MeanIAT:     stats.meanIAT(),
		Description: src.String(),
	}
}
