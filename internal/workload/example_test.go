package workload_test

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/workload"
)

// ExampleGenerate builds a small FaaSBench workload calibrated to 80%
// offered load on 4 cores.
func ExampleGenerate() {
	w := workload.Generate(workload.Spec{
		N:     1000,
		Cores: 4,
		Load:  0.8,
		Seed:  1,
	})
	load := w.OfferedLoad(4)
	fmt.Printf("%d tasks, offered load within 10%% of target: %v\n",
		len(w.Tasks), load > 0.72 && load < 0.88)
	// Arrival times are non-decreasing and every task is valid.
	ok := true
	for i, t := range w.Tasks {
		if t.Validate() != nil || (i > 0 && t.Arrival < w.Tasks[i-1].Arrival) {
			ok = false
		}
	}
	fmt.Println("valid:", ok)
	// Output:
	// 1000 tasks, offered load within 10% of target: true
	// valid: true
}

// ExampleFibDuration shows the Table I fib cost model round trip.
func ExampleFibDuration() {
	d := workload.FibDuration(30)
	fmt.Println(workload.FibNFor(d) == 30, d > 200*time.Millisecond && d < 400*time.Millisecond)
	// Output: true true
}

// ExampleAppProfile_Build converts an ideal duration into CPU and I/O
// segments for the paper's md (markdown, I/O-heavy) application.
func ExampleAppProfile_Build() {
	t := exampleTask()
	workload.AppMd.Build(t, 100*time.Millisecond)
	fmt.Printf("service=%v ioOps=%d ideal=%v\n", t.Service, len(t.IOOps), t.IdealDuration())
	// Output: service=35ms ioOps=2 ideal=100ms
}

// exampleTask builds the blank task the examples fill in.
func exampleTask() *task.Task { return task.New(0, 0, time.Millisecond) }
