package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Binary trace format ("SFTB" v1): the fast-path counterpart of the
// CSV codec for million-invocation traces. Layout:
//
//	magic "SFTB" | version byte | records...
//
// Each record is a uvarint payload length followed by the payload:
//
//	varint  id delta from previous record (first record: delta from 0)
//	uvarint app ref — 0 means a new app name follows inline
//	        (uvarint length + bytes, appended to the table);
//	        k>0 means table entry k-1
//	uvarint arrival delta from previous record, microseconds
//	uvarint service, microseconds
//	uvarint number of I/O ops, then per op:
//	        uvarint At delta from previous op's At, microseconds
//	        uvarint Dur, microseconds
//
// Timestamps are truncated to microseconds exactly as the CSV codec
// truncates them, so CSV→binary→CSV and binary→CSV→binary conversions
// are lossless fixed points, and export→import→export of a binary
// trace is byte-identical. Arrival deltas being unsigned encodes the
// Source contract (non-decreasing arrivals) into the format itself.

const (
	binaryMagic   = "SFTB"
	binaryVersion = 1

	// maxBinaryRecord bounds one record's payload so a corrupt length
	// prefix cannot ask for an absurd allocation.
	maxBinaryRecord = 1 << 20

	// maxUS is the largest microsecond count that converts back to a
	// simtime.Time without overflow.
	maxUS = int64(simtime.Infinity) / int64(time.Microsecond)
)

// WriteBinary streams src to w in binary form, returning the number of
// invocations written. Both generation errors (via trace.Err) and
// write errors are reported.
func WriteBinary(w io.Writer, src Source) (int, error) {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return 0, err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return 0, err
	}
	appOf := map[string]uint64{}
	var prevID, prevArrUS int64
	n := 0
	payload := make([]byte, 0, 256)
	var lenBuf [binary.MaxVarintLen64]byte
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		arrUS := t.Arrival.Microseconds()
		if arrUS < prevArrUS {
			return n, fmt.Errorf("trace: record %d: arrival %v precedes predecessor", n+1, t.Arrival)
		}
		payload = binary.AppendVarint(payload[:0], int64(t.ID)-prevID)
		if t.App == "" {
			payload = binary.AppendUvarint(payload, 1) // table entry 0, pre-seeded to ""
		} else if ref, seen := appOf[t.App]; seen {
			payload = binary.AppendUvarint(payload, ref)
		} else {
			appOf[t.App] = uint64(len(appOf)) + 2 // entry 0 is ""
			payload = binary.AppendUvarint(payload, 0)
			payload = binary.AppendUvarint(payload, uint64(len(t.App)))
			payload = append(payload, t.App...)
		}
		payload = binary.AppendUvarint(payload, uint64(arrUS-prevArrUS))
		payload = binary.AppendUvarint(payload, uint64(t.Service.Microseconds()))
		payload = binary.AppendUvarint(payload, uint64(len(t.IOOps)))
		prevAtUS := int64(0)
		for _, op := range t.IOOps {
			atUS := op.At.Microseconds()
			payload = binary.AppendUvarint(payload, uint64(atUS-prevAtUS))
			payload = binary.AppendUvarint(payload, uint64(op.Dur.Microseconds()))
			prevAtUS = atUS
		}
		if len(payload) > maxBinaryRecord {
			return n, fmt.Errorf("trace: record %d: payload %d bytes exceeds limit %d", n+1, len(payload), maxBinaryRecord)
		}
		ln := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		if _, err := bw.Write(lenBuf[:ln]); err != nil {
			return n, err
		}
		if _, err := bw.Write(payload); err != nil {
			return n, err
		}
		prevID, prevArrUS = int64(t.ID), arrUS
		n++
	}
	if err := Err(src); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// binRec is one decoded record before materialization: Next turns it
// into an arena-backed task, ReadBinaryTape appends it straight onto
// struct-of-arrays columns. The I/O slices are scratch space reused
// across records.
type binRec struct {
	id     int64
	appRef int // index into binSource.apps (entry 0 is "")
	arrUS  int64
	svcUS  int64
	ioAt   []int64 // absolute microseconds, validated ascending
	ioDur  []int64 // microseconds
}

// binSource lazily decodes records from a reader. It buffers input in
// its own window and parses records as plain slices of it: the decode
// hot loop is slice indexing, not per-byte (or per-record) calls
// through bufio and io.ByteReader interfaces.
type binSource struct {
	r         io.Reader
	win       []byte // win[off:size] is buffered, unconsumed input
	off, size int
	eof       bool
	arena     *task.Arena
	apps      []string
	prevID    int64
	prevArrUS int64
	rec       binRec
	row       int
	err       error
	done      bool
}

// binReadChunk is the refill granularity of the decode window.
const binReadChunk = 64 << 10

// NewBinarySource opens a binary trace for streaming replay. The
// header is validated eagerly; records are decoded on demand. Each
// decoded record is validated, and the first malformed record
// terminates the stream with a record-numbered error available via
// Err.
func NewBinarySource(r io.Reader) (Source, error) {
	return newBinSource(r)
}

func newBinSource(r io.Reader) (*binSource, error) {
	var hdr [len(binaryMagic) + 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w", err)
	}
	if string(hdr[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q, want %q", hdr[:len(binaryMagic)], binaryMagic)
	}
	if v := hdr[len(binaryMagic)]; v != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary trace version %d (want %d)", v, binaryVersion)
	}
	return &binSource{r: r, arena: task.NewArena(), apps: []string{""}}, nil
}

// fill makes at least need unconsumed bytes available in the window,
// stopping early only at end of input (s.eof) or a read error.
func (s *binSource) fill(need int) error {
	if s.size-s.off >= need || s.eof {
		return nil
	}
	if s.off > 0 {
		copy(s.win, s.win[s.off:s.size])
		s.size -= s.off
		s.off = 0
	}
	want := need
	if want < binReadChunk {
		want = binReadChunk
	}
	if cap(s.win) < want {
		grown := make([]byte, want)
		copy(grown, s.win[:s.size])
		s.win = grown
	}
	s.win = s.win[:cap(s.win)]
	empties := 0
	for s.size < need {
		n, err := s.r.Read(s.win[s.size:])
		s.size += n
		if err == io.EOF {
			s.eof = true
			return nil
		}
		if err != nil {
			return err
		}
		if n == 0 {
			if empties++; empties > 100 {
				return io.ErrNoProgress
			}
		} else {
			empties = 0
		}
	}
	return nil
}

// Next implements Source.
func (s *binSource) Next() (*task.Task, bool) {
	if !s.decode() {
		return nil, false
	}
	r := &s.rec
	t := s.arena.New(int(r.id), simtime.Time(r.arrUS)*simtime.Time(time.Microsecond), time.Duration(r.svcUS)*time.Microsecond)
	t.App = s.apps[r.appRef]
	if len(r.ioAt) > 0 {
		ops := s.arena.IO(len(r.ioAt))
		for i := range ops {
			ops[i] = task.IOOp{At: time.Duration(r.ioAt[i]) * time.Microsecond, Dur: time.Duration(r.ioDur[i]) * time.Microsecond}
		}
		t.IOOps = ops
	}
	return t, true
}

// decode advances to the next record, leaving it in s.rec. It returns
// false at end of input or on error (recorded for Err).
func (s *binSource) decode() bool {
	if s.done {
		return false
	}
	s.row++
	// One extra byte beyond MaxVarintLen64 lets binary.Uvarint see the
	// 11th continuation byte of an overlong length prefix and report
	// overflow (n < 0) instead of "incomplete" (n == 0): after fill, an
	// incomplete prefix can only mean the input ended mid-varint.
	if s.size-s.off < binary.MaxVarintLen64+1 {
		if err := s.fill(binary.MaxVarintLen64 + 1); err != nil {
			s.fail(fmt.Errorf("trace: binary record %d: %w", s.row, err))
			return false
		}
	}
	if s.off == s.size {
		s.done = true // clean exhaustion at a record boundary
		s.row--
		return false
	}
	ln, n := binary.Uvarint(s.win[s.off:s.size])
	switch {
	case n > 0:
		s.off += n
	case n < 0:
		s.fail(fmt.Errorf("trace: binary record %d: length varint overflows 64 bits", s.row))
		return false
	default:
		s.fail(fmt.Errorf("trace: binary record %d: truncated record length", s.row))
		return false
	}
	if ln > maxBinaryRecord {
		s.fail(fmt.Errorf("trace: binary record %d: length %d exceeds limit %d", s.row, ln, maxBinaryRecord))
		return false
	}
	need := int(ln)
	if s.size-s.off < need {
		if err := s.fill(need); err != nil {
			s.fail(fmt.Errorf("trace: binary record %d: truncated payload: %w", s.row, err))
			return false
		}
	}
	if s.size-s.off < need {
		s.fail(fmt.Errorf("trace: binary record %d: truncated payload: %w", s.row, io.ErrUnexpectedEOF))
		return false
	}
	p := s.win[s.off : s.off+need]
	s.off += need
	if perr := s.parse(p); perr != nil {
		s.fail(fmt.Errorf("trace: binary record %d: %w", s.row, perr))
		return false
	}
	return true
}

// parse decodes and validates one record payload into s.rec. It keeps
// no reference into p: app names are copied when interned.
func (s *binSource) parse(p []byte) error {
	idDelta, p, err := getVarint(p, "id")
	if err != nil {
		return err
	}
	ref, p, err := getUvarint(p, "app ref")
	if err != nil {
		return err
	}
	if ref == 0 {
		nameLen, rest, err := getUvarint(p, "app name length")
		if err != nil {
			return err
		}
		if nameLen > uint64(len(rest)) {
			return fmt.Errorf("app name length %d overruns record", nameLen)
		}
		s.apps = append(s.apps, string(rest[:nameLen]))
		s.rec.appRef = len(s.apps) - 1
		p = rest[nameLen:]
	} else {
		if ref > uint64(len(s.apps)) {
			return fmt.Errorf("app ref %d out of range (table has %d entries)", ref, len(s.apps))
		}
		s.rec.appRef = int(ref - 1)
	}
	arrDelta, p, err := getUvarint(p, "arrival delta")
	if err != nil {
		return err
	}
	svcUS, p, err := getUvarint(p, "service")
	if err != nil {
		return err
	}
	nIO, p, err := getUvarint(p, "io count")
	if err != nil {
		return err
	}
	arrUS := s.prevArrUS + int64(arrDelta)
	if int64(arrDelta) < 0 || arrUS > maxUS || arrUS < s.prevArrUS {
		return fmt.Errorf("arrival delta %d overflows", arrDelta)
	}
	if svcUS > uint64(maxUS) {
		return fmt.Errorf("service %d overflows", svcUS)
	}
	// Each op costs at least two payload bytes, so nIO is bounded by the
	// record length; reject before allocating.
	if nIO > uint64(len(p)) {
		return fmt.Errorf("io count %d overruns record", nIO)
	}
	id := s.prevID + idDelta
	s.rec.ioAt = s.rec.ioAt[:0]
	s.rec.ioDur = s.rec.ioDur[:0]
	prevAtUS := int64(0)
	for i := 0; i < int(nIO); i++ {
		atDelta, rest, err := getUvarint(p, "io at")
		if err != nil {
			return err
		}
		durUS, rest, err := getUvarint(rest, "io dur")
		if err != nil {
			return err
		}
		p = rest
		atUS := prevAtUS + int64(atDelta)
		if int64(atDelta) < 0 || atUS > maxUS || atUS < prevAtUS || durUS > uint64(maxUS) {
			return fmt.Errorf("io op %d overflows", i)
		}
		if atUS > int64(svcUS) {
			return fmt.Errorf("task %d: IO op %d at %v outside service interval [0,%v]",
				id, i, time.Duration(atUS)*time.Microsecond, time.Duration(svcUS)*time.Microsecond)
		}
		s.rec.ioAt = append(s.rec.ioAt, atUS)
		s.rec.ioDur = append(s.rec.ioDur, int64(durUS))
		prevAtUS = atUS
	}
	if len(p) != 0 {
		return fmt.Errorf("%d trailing bytes after record", len(p))
	}
	// The remaining task.Validate invariants hold by construction
	// (unsigned deltas make arrivals and I/O orders non-decreasing and
	// non-negative); only positivity needs an explicit check.
	if svcUS == 0 {
		return fmt.Errorf("task %d: non-positive service time %v", id, time.Duration(0))
	}
	s.rec.id = id
	s.rec.arrUS = arrUS
	s.rec.svcUS = int64(svcUS)
	s.prevID, s.prevArrUS = id, arrUS
	return nil
}

func getUvarint(p []byte, field string) (uint64, []byte, error) {
	// One- and two-byte values (µs-scale deltas, app refs, I/O counts)
	// dominate real traces; decode them without the full varint loop.
	if len(p) > 0 && p[0] < 0x80 {
		return uint64(p[0]), p[1:], nil
	}
	if len(p) > 1 && p[1] < 0x80 {
		return uint64(p[0]&0x7f) | uint64(p[1])<<7, p[2:], nil
	}
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("malformed %s varint", field)
	}
	return v, p[n:], nil
}

func getVarint(p []byte, field string) (int64, []byte, error) {
	u, rest, err := getUvarint(p, field)
	if err != nil {
		return 0, nil, err
	}
	// Zigzag decode, exactly as binary.Varint does.
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, rest, nil
}

func (s *binSource) fail(err error) {
	s.err = err
	s.done = true
}

// Err implements Failer.
func (s *binSource) Err() error { return s.err }

// String implements Source.
func (s *binSource) String() string { return "binary" }

// ReadBinary materializes a binary trace, the strict counterpart of
// NewBinarySource for callers that need the whole workload.
func ReadBinary(r io.Reader) ([]*task.Task, error) {
	src, err := NewBinarySource(r)
	if err != nil {
		return nil, err
	}
	tasks := Collect(src)
	if err := Err(src); err != nil {
		return nil, err
	}
	return tasks, nil
}

// ReadBinaryTape decodes a binary trace straight onto a
// struct-of-arrays Tape: no per-record task materialization, no arena
// blocks — decoded fields append directly to the tape's columns, and
// the stream's app table maps onto the tape's intern table once per
// distinct app. This is the fast path for loading million-invocation
// archives; the result is replay-ready via Tape.Source, and
// Tape.Materialize reproduces exactly the tasks ReadBinary returns.
func ReadBinaryTape(r io.Reader) (*Tape, error) {
	// In-memory readers (bytes.Reader & friends) reveal their size;
	// records run ~10–20 bytes, so size/12 is a close row-count guess
	// that pre-sizes the columns past most growth reallocations. A miss
	// costs at most a couple of doublings.
	rows := 0
	if l, ok := r.(interface{ Len() int }); ok {
		rows = l.Len() / 12
	}
	s, err := newBinSource(r)
	if err != nil {
		return nil, err
	}
	tp := NewTape()
	if rows > 0 {
		tp.ids = make([]int64, 0, rows)
		tp.appIdx = make([]int32, 0, rows)
		tp.arrivalNS = make([]int64, 0, rows)
		tp.serviceNS = make([]int64, 0, rows)
		tp.weights = make([]int32, 0, rows)
		tp.ioOff = append(make([]int32, 0, rows+1), 0)
	}
	tapeIdx := []int32{-1} // stream app-table index → tape app index ("" is -1)
	for s.decode() {
		rec := &s.rec
		for len(tapeIdx) < len(s.apps) {
			name := s.apps[len(tapeIdx)]
			ai, ok := tp.appOf[name]
			if !ok {
				ai = int32(len(tp.apps))
				tp.apps = append(tp.apps, name)
				tp.appOf[name] = ai
			}
			tapeIdx = append(tapeIdx, ai)
		}
		tp.ids = append(tp.ids, rec.id)
		tp.appIdx = append(tp.appIdx, tapeIdx[rec.appRef])
		tp.arrivalNS = append(tp.arrivalNS, rec.arrUS*int64(time.Microsecond))
		tp.serviceNS = append(tp.serviceNS, rec.svcUS*int64(time.Microsecond))
		tp.weights = append(tp.weights, task.DefaultWeight)
		for i := range rec.ioAt {
			tp.ioAtNS = append(tp.ioAtNS, rec.ioAt[i]*int64(time.Microsecond))
			tp.ioDurNS = append(tp.ioDurNS, rec.ioDur[i]*int64(time.Microsecond))
		}
		tp.ioOff = append(tp.ioOff, int32(len(tp.ioAtNS)))
	}
	if s.err != nil {
		return nil, s.err
	}
	return tp, nil
}

// DetectSource sniffs r's leading bytes and opens it as a binary or
// CSV trace source accordingly, so replay paths accept either format
// transparently.
func DetectSource(r io.Reader) (Source, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: sniffing format: %w", err)
	}
	if string(head) == binaryMagic {
		return NewBinarySource(br)
	}
	return NewCSVSource(br)
}
