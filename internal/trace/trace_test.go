package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// staticTasks builds a small fixed trace.
func staticTasks() []*task.Task {
	a := task.New(0, 0, ms(10))
	a.App = "fib"
	b := task.New(1, ms(5), ms(20))
	b.App = "md"
	b.WithIO(ms(2), ms(30))
	c := task.New(2, ms(12), ms(5))
	c.App = "sa"
	return []*task.Task{a, b, c}
}

func TestFromTasksClones(t *testing.T) {
	orig := staticTasks()
	src := FromTasks("test", orig)
	got := Collect(src)
	if len(got) != 3 {
		t.Fatalf("collected %d", len(got))
	}
	got[0].CPUUsed = ms(5)
	got[1].IOOps[0].Dur = 0
	if orig[0].CPUUsed != 0 || orig[1].IOOps[0].Dur != ms(30) {
		t.Fatal("FromTasks must yield isolated copies")
	}
	// Exhausted source stays exhausted.
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded")
	}
}

func TestLimit(t *testing.T) {
	src := Limit(FromTasks("test", staticTasks()), 2)
	if got := len(Collect(src)); got != 2 {
		t.Fatalf("limit yielded %d", got)
	}
}

func TestMapTransformAndDrop(t *testing.T) {
	src := Map(FromTasks("test", staticTasks()), func(tk *task.Task) *task.Task {
		if tk.App == "md" {
			return nil // drop
		}
		tk.Weight = 2048
		return tk
	})
	got := Collect(src)
	if len(got) != 2 {
		t.Fatalf("map yielded %d", len(got))
	}
	for _, tk := range got {
		if tk.Weight != 2048 {
			t.Fatal("map transform not applied")
		}
	}
}

func TestMergeOrdersByArrival(t *testing.T) {
	a := []*task.Task{task.New(0, 0, ms(1)), task.New(1, ms(10), ms(1))}
	b := []*task.Task{task.New(0, ms(5), ms(1)), task.New(1, ms(15), ms(1))}
	got := Collect(Merge(FromTasks("a", a), FromTasks("b", b)))
	if len(got) != 4 {
		t.Fatalf("merged %d", len(got))
	}
	want := []simtime.Time{0, ms(5), ms(10), ms(15)}
	for i, tk := range got {
		if tk.Arrival != want[i] {
			t.Fatalf("arrival %d = %v, want %v", i, tk.Arrival, want[i])
		}
		if tk.ID != i {
			t.Fatalf("merged ID %d = %d, want sequential", i, tk.ID)
		}
	}
}

func TestConcatRebasesToSeam(t *testing.T) {
	a := []*task.Task{task.New(0, 0, ms(1)), task.New(1, ms(10), ms(1))}
	b := []*task.Task{task.New(0, ms(3), ms(1)), task.New(1, ms(7), ms(1))}
	got := Collect(Concat(FromTasks("a", a), FromTasks("b", b)))
	want := []simtime.Time{0, ms(10), ms(10), ms(14)}
	if len(got) != 4 {
		t.Fatalf("concat yielded %d", len(got))
	}
	for i, tk := range got {
		if tk.Arrival != want[i] {
			t.Fatalf("arrival %d = %v, want %v", i, tk.Arrival, want[i])
		}
		if tk.ID != i {
			t.Fatalf("ID %d = %d", i, tk.ID)
		}
	}
	if n, err := Validate(FromTasks("chk", got)); err != nil || n != 4 {
		t.Fatalf("validate: n=%d err=%v", n, err)
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	bad := []*task.Task{task.New(0, ms(5), ms(1)), task.New(1, 0, ms(1))}
	if _, err := Validate(FromTasks("bad", bad)); err == nil {
		t.Fatal("out-of-order arrivals accepted")
	}
	invalid := []*task.Task{task.New(0, 0, 0)} // zero service
	if _, err := Validate(FromTasks("bad2", invalid)); err == nil {
		t.Fatal("invalid task accepted")
	}
}

func synthSpec(seed uint64) SynthSpec {
	return SynthSpec{
		Shape:     ShapeRamp,
		StartRPS:  50,
		TargetRPS: 500,
		Horizon:   20 * time.Second,
		Duration:  dist.Uniform{Lo: ms(1), Hi: ms(50)},
		Seed:      seed,
	}
}

// TestTraceDeterminism is the satellite-task contract: the same seed
// must produce a byte-identical trace through the whole pipeline,
// including CSV export.
func TestTraceDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	na, err := WriteCSV(&a, NewSynthetic(synthSpec(7)))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := WriteCSV(&b, NewSynthetic(synthSpec(7)))
	if err != nil {
		t.Fatal(err)
	}
	if na == 0 || na != nb {
		t.Fatalf("counts %d vs %d", na, nb)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed traces are not byte-identical")
	}
	var c bytes.Buffer
	if _, err := WriteCSV(&c, NewSynthetic(synthSpec(8))); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestCSVRoundTripEquivalentSource: export → import yields an equivalent
// source (µs truncation is a fixed point, so a second export is
// byte-identical).
func TestCSVRoundTripEquivalentSource(t *testing.T) {
	var first bytes.Buffer
	n, err := WriteCSV(&first, NewSynthetic(synthSpec(9)))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVSource(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	n2, err := WriteCSV(&second, src)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("round trip lost invocations: %d vs %d", n2, n)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("export → import → export is not byte-identical")
	}
	// And the imported stream is a valid trace.
	src2, err := NewCSVSource(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Validate(src2); err != nil || got != n {
		t.Fatalf("validate: n=%d err=%v", got, err)
	}
}

func TestCSVSourceErrors(t *testing.T) {
	if _, err := NewCSVSource(strings.NewReader("a,b,c,d,e\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	src, err := NewCSVSource(strings.NewReader("id,app,arrival_us,service_us,io_ops\n0,fib,0,1000,\nx,fib,0,1000,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Next(); !ok {
		t.Fatal("first row should parse")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("bad row should terminate the stream")
	}
	if Err(src) == nil {
		t.Fatal("Err must report the parse failure")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("failed source must stay exhausted")
	}
}

// TestCombinatorsPropagateErr: a mid-stream failure must survive
// composition — a wrapped failing source cannot read as clean
// exhaustion.
func TestCombinatorsPropagateErr(t *testing.T) {
	const brokenCSV = "id,app,arrival_us,service_us,io_ops\n0,fib,0,1000,\nx,fib,0,1000,\n"
	mk := func() Source {
		src, err := NewCSVSource(strings.NewReader(brokenCSV))
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	for name, wrap := range map[string]func(Source) Source{
		"limit":  func(s Source) Source { return Limit(s, 10) },
		"map":    func(s Source) Source { return Map(s, func(tk *task.Task) *task.Task { return tk }) },
		"merge":  func(s Source) Source { return Merge(s) },
		"concat": func(s Source) Source { return Concat(s) },
		"nested": func(s Source) Source { return Limit(Map(s, func(tk *task.Task) *task.Task { return tk }), 10) },
	} {
		src := wrap(mk())
		got := Collect(src)
		if len(got) != 1 {
			t.Fatalf("%s: collected %d of the 1 valid row", name, len(got))
		}
		if Err(src) == nil {
			t.Fatalf("%s swallowed the mid-stream failure", name)
		}
	}
}

// TestCSVQuotedAppRoundTrip: the hand-rolled CSV encoder must quote
// awkward app names exactly as encoding/csv would, and they must
// survive a round trip.
func TestCSVQuotedAppRoundTrip(t *testing.T) {
	mk := func() []*task.Task {
		a := task.New(0, 0, time.Millisecond)
		a.App = `weird,app "v2"`
		b := task.New(1, time.Millisecond, 2*time.Millisecond)
		b.App = "plain"
		return []*task.Task{a, b}
	}

	var hand bytes.Buffer
	if _, err := WriteCSV(&hand, FromTasks("quoted", mk())); err != nil {
		t.Fatal(err)
	}

	// Reference encoding via encoding/csv over the same logical rows.
	var ref bytes.Buffer
	cw := csv.NewWriter(&ref)
	_ = cw.Write([]string{"id", "app", "arrival_us", "service_us", "io_ops"})
	_ = cw.Write([]string{"0", `weird,app "v2"`, "0", "1000", ""})
	_ = cw.Write([]string{"1", "plain", "1000", "2000", ""})
	cw.Flush()
	if hand.String() != ref.String() {
		t.Fatalf("hand-rolled encoding diverges from encoding/csv:\n%q\nvs\n%q", hand.String(), ref.String())
	}

	back, err := ReadCSV(bytes.NewReader(hand.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].App != `weird,app "v2"` || back[1].App != "plain" {
		t.Fatalf("round trip mangled app names: %+v", back)
	}
}

// TestCSVFieldQuotingMatchesEncodingCSV: appendField's quoting decision
// must agree with encoding/csv for every edge the standard library
// special-cases (separators, quotes, newlines, leading whitespace, the
// `\.` marker).
func TestCSVFieldQuotingMatchesEncodingCSV(t *testing.T) {
	for _, app := range []string{
		"plain", "with,comma", `with"quote`, "with\nnewline", "with\rcr",
		" leading-space", "\tleading-tab", `\.`, "trailing-space ", "",
	} {
		tk := task.New(0, 0, time.Millisecond)
		tk.App = app

		var hand bytes.Buffer
		if _, err := WriteCSV(&hand, FromTasks("q", []*task.Task{tk})); err != nil {
			t.Fatalf("app %q: %v", app, err)
		}

		var ref bytes.Buffer
		cw := csv.NewWriter(&ref)
		_ = cw.Write([]string{"id", "app", "arrival_us", "service_us", "io_ops"})
		_ = cw.Write([]string{"0", app, "0", "1000", ""})
		cw.Flush()

		if hand.String() != ref.String() {
			t.Errorf("app %q: hand-rolled %q != encoding/csv %q", app, hand.String(), ref.String())
		}
	}
}

// tagged builds a source of n invocations for app, all arriving at the
// given instants (one invocation per instant).
func tagged(app string, instants ...time.Duration) Source {
	tasks := make([]*task.Task, len(instants))
	for i, at := range instants {
		tk := task.New(i, simtime.Time(at), ms(5))
		tk.App = app
		tasks[i] = tk
	}
	return FromTasks(app, tasks)
}

// TestMergeTieBreakAcrossThreeSources: when three or more sources emit
// invocations at identical timestamps, Merge must interleave them in
// source order at every tied instant, assign sequential IDs, and be
// reproducible — the determinism contract multi-tenant compositions
// rest on.
func TestMergeTieBreakAcrossThreeSources(t *testing.T) {
	mk := func() Source {
		return Merge(
			tagged("a", 0, ms(10), ms(20)),
			tagged("b", 0, ms(10), ms(20)),
			tagged("c", 0, ms(10), ms(20)),
		)
	}
	out := Collect(mk())
	if len(out) != 9 {
		t.Fatalf("merged %d invocations, want 9", len(out))
	}
	wantApps := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i, tk := range out {
		if tk.ID != i {
			t.Errorf("invocation %d has ID %d, want sequential reassignment", i, tk.ID)
		}
		if tk.App != wantApps[i] {
			t.Errorf("invocation %d from %q, want %q (ties break by source index)", i, tk.App, wantApps[i])
		}
		if want := simtime.Time(ms(10 * (i / 3))); tk.Arrival != want {
			t.Errorf("invocation %d arrives at %v, want %v", i, tk.Arrival, want)
		}
	}
	// Reproducible: a second construction yields the identical stream.
	again := Collect(mk())
	for i := range out {
		if out[i].App != again[i].App || out[i].Arrival != again[i].Arrival {
			t.Fatalf("merge replay diverged at %d", i)
		}
	}
}

// TestMergeTieBreakUnevenSources: the tie-break is by source index
// among the *current heads* (k-way merge semantics, not round-robin):
// once a lower-indexed source's next invocation also ties, it drains
// before any higher-indexed source gets another turn, and a source
// that exhausts mid-tie simply drops out.
func TestMergeTieBreakUnevenSources(t *testing.T) {
	out := Collect(Merge(
		tagged("a", 0),
		tagged("b", 0, 0),
		tagged("c", 0, 0, 0),
	))
	wantApps := []string{"a", "b", "b", "c", "c", "c"}
	if len(out) != len(wantApps) {
		t.Fatalf("merged %d invocations, want %d", len(out), len(wantApps))
	}
	for i, tk := range out {
		if tk.App != wantApps[i] || tk.Arrival != 0 {
			t.Errorf("invocation %d = %s@%v, want %s@0", i, tk.App, tk.Arrival, wantApps[i])
		}
	}
}

// TestConcatIdenticalTimestampsAcrossSources: concatenating three
// sources whose invocations all share one timestamp must land every
// invocation on the same rebased instant, preserve per-source emission
// order, and reassign sequential IDs.
func TestConcatIdenticalTimestampsAcrossSources(t *testing.T) {
	out := Collect(Concat(
		tagged("a", ms(5), ms(5)),
		tagged("b", ms(7), ms(7)),
		tagged("c", ms(9), ms(9), ms(9)),
	))
	if len(out) != 7 {
		t.Fatalf("concatenated %d invocations, want 7", len(out))
	}
	wantApps := []string{"a", "a", "b", "b", "c", "c", "c"}
	for i, tk := range out {
		if tk.ID != i {
			t.Errorf("invocation %d has ID %d, want sequential reassignment", i, tk.ID)
		}
		if tk.App != wantApps[i] {
			t.Errorf("invocation %d from %q, want %q", i, tk.App, wantApps[i])
		}
		// Every source's invocations share one timestamp, and each
		// source is rebased to the previous source's last arrival: all
		// seven land at the first source's 5ms instant.
		if tk.Arrival != simtime.Time(ms(5)) {
			t.Errorf("invocation %d arrives at %v, want 5ms", i, tk.Arrival)
		}
	}
}
