package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
)

// binFixture builds a small trace exercising every codec feature:
// interned and repeated app names, the empty app, id gaps, repeated
// arrivals, multi-op I/O lists.
func binFixture() []*task.Task {
	t0 := task.New(3, 0, 5*time.Millisecond)
	t0.App = "fib26"
	t1 := task.New(4, 2*time.Millisecond, 3*time.Millisecond)
	t1.App = "md"
	t1.WithIO(time.Millisecond, 4*time.Millisecond)
	t1.WithIO(2*time.Millisecond, 500*time.Microsecond)
	t2 := task.New(10, 2*time.Millisecond, time.Millisecond) // same arrival as t1
	t3 := task.New(11, 7*time.Millisecond, 9*time.Millisecond)
	t3.App = "fib26" // repeat: must hit the intern table
	t3.Weight = task.DefaultWeight
	return []*task.Task{t0, t1, t2, t3}
}

func mustEncode(tasks []*task.Task) []byte {
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, FromTasks("fixture", tasks))
	if err != nil {
		panic(err)
	}
	if n != len(tasks) {
		panic("short write")
	}
	return buf.Bytes()
}

func encodeBinary(t *testing.T, tasks []*task.Task) []byte {
	t.Helper()
	return mustEncode(tasks)
}

func TestBinaryRoundTripFixedPoint(t *testing.T) {
	first := encodeBinary(t, binFixture())
	decoded, err := ReadBinary(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	var second bytes.Buffer
	if _, err := WriteBinary(&second, FromTasks("redecoded", decoded)); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first, second.Bytes()) {
		t.Fatalf("export→import→export not byte-identical:\n% x\nvs\n% x", first, second.Bytes())
	}
}

func TestBinaryDecodedFieldsMatch(t *testing.T) {
	want := binFixture()
	got, err := ReadBinary(bytes.NewReader(encodeBinary(t, want)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d tasks, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.ID != w.ID || g.App != w.App || g.Arrival != w.Arrival || g.Service != w.Service || g.Weight != w.Weight {
			t.Errorf("task %d: got %v, want %v", i, g, w)
		}
		if len(g.IOOps) != len(w.IOOps) {
			t.Fatalf("task %d: %d io ops, want %d", i, len(g.IOOps), len(w.IOOps))
		}
		for j := range w.IOOps {
			if g.IOOps[j] != w.IOOps[j] {
				t.Errorf("task %d op %d: got %+v, want %+v", i, j, g.IOOps[j], w.IOOps[j])
			}
		}
	}
}

// TestBinaryCSVCrossConversion checks the two codecs describe the same
// trace: CSV→binary→CSV reproduces the CSV bytes and the direct binary
// encoding, in both directions.
func TestBinaryCSVCrossConversion(t *testing.T) {
	tasks := binFixture()
	var csvBuf bytes.Buffer
	if _, err := WriteCSV(&csvBuf, FromTasks("fixture", tasks)); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	csvSrc, err := NewCSVSource(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatalf("NewCSVSource: %v", err)
	}
	var viaCSV bytes.Buffer
	if _, err := WriteBinary(&viaCSV, csvSrc); err != nil {
		t.Fatalf("csv→binary: %v", err)
	}
	direct := encodeBinary(t, tasks)
	if !bytes.Equal(direct, viaCSV.Bytes()) {
		t.Fatalf("binary-from-CSV differs from binary-from-tasks")
	}
	binSrc, err := NewBinarySource(bytes.NewReader(direct))
	if err != nil {
		t.Fatalf("NewBinarySource: %v", err)
	}
	var backToCSV bytes.Buffer
	if _, err := WriteCSV(&backToCSV, binSrc); err != nil {
		t.Fatalf("binary→csv: %v", err)
	}
	if !bytes.Equal(csvBuf.Bytes(), backToCSV.Bytes()) {
		t.Fatalf("CSV→binary→CSV not a fixed point:\n%s\nvs\n%s", csvBuf.Bytes(), backToCSV.Bytes())
	}
}

func TestBinaryHeaderErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", []byte("SF")},
		{"bad magic", []byte("NOPE\x01")},
		{"bad version", []byte("SFTB\x09")},
	} {
		if _, err := NewBinarySource(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: NewBinarySource succeeded, want error", tc.name)
		}
	}
}

func TestBinaryTruncatedAndCorrupt(t *testing.T) {
	fixture := binFixture()
	full := encodeBinary(t, fixture)
	// The encoding is streaming, so encoding the first k tasks yields a
	// prefix of the full trace; those prefix lengths are the record
	// boundaries. Every strict prefix ending inside a record must error,
	// while boundary cuts decode cleanly to fewer tasks.
	bounds := map[int]bool{}
	for k := 0; k <= len(fixture); k++ {
		bounds[len(encodeBinary(t, fixture[:k]))] = true
	}
	for cut := len(binaryMagic) + 1; cut < len(full); cut++ {
		tasks, err := ReadBinary(bytes.NewReader(full[:cut]))
		if bounds[cut] {
			if err != nil {
				t.Errorf("cut at record boundary %d: unexpected error %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("truncation at %d decoded %d tasks with no error", cut, len(tasks))
		}
	}
	// Flipping the first record's length prefix to a huge value.
	huge := append([]byte(nil), full[:len(binaryMagic)+1]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Error("oversized record length accepted")
	}
	if !strings.Contains(errString(t, huge), "limit") {
		t.Errorf("oversized length error missing limit context: %v", errString(t, huge))
	}
	// Zero-service records fail task validation with a record number.
	var zero bytes.Buffer
	if _, err := WriteBinary(&zero, New("bad", oneShot(task.New(1, 0, 0)))); err != nil {
		t.Fatalf("encoding zero-service task: %v", err)
	}
	if err := readErr(zero.Bytes()); err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Errorf("zero-service decode error = %v, want record-numbered validation failure", err)
	}
}

func errString(t *testing.T, data []byte) string {
	t.Helper()
	err := readErr(data)
	if err == nil {
		return ""
	}
	return err.Error()
}

func readErr(data []byte) error {
	_, err := ReadBinary(bytes.NewReader(data))
	return err
}

func oneShot(t *task.Task) func() (*task.Task, bool) {
	done := false
	return func() (*task.Task, bool) {
		if done {
			return nil, false
		}
		done = true
		return t, true
	}
}

func TestBinaryRejectsArrivalRegression(t *testing.T) {
	a := task.New(0, 5*time.Millisecond, time.Millisecond)
	b := task.New(1, time.Millisecond, time.Millisecond)
	tasks := []*task.Task{a, b}
	i := 0
	src := New("regressing", func() (*task.Task, bool) {
		if i >= len(tasks) {
			return nil, false
		}
		tk := tasks[i]
		i++
		return tk, true
	})
	if _, err := WriteBinary(&bytes.Buffer{}, src); err == nil {
		t.Fatal("WriteBinary accepted a regressing arrival")
	}
}

func TestDetectSource(t *testing.T) {
	tasks := binFixture()
	bin := encodeBinary(t, tasks)
	src, err := DetectSource(bytes.NewReader(bin))
	if err != nil {
		t.Fatalf("DetectSource(binary): %v", err)
	}
	if src.String() != "binary" {
		t.Fatalf("DetectSource(binary) = %q source", src.String())
	}
	if got := Collect(src); len(got) != len(tasks) {
		t.Fatalf("binary detect decoded %d tasks, want %d", len(got), len(tasks))
	}
	var csvBuf bytes.Buffer
	if _, err := WriteCSV(&csvBuf, FromTasks("fixture", tasks)); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	src, err = DetectSource(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatalf("DetectSource(csv): %v", err)
	}
	if src.String() != "csv" {
		t.Fatalf("DetectSource(csv) = %q source", src.String())
	}
	if got := Collect(src); len(got) != len(tasks) {
		t.Fatalf("csv detect decoded %d tasks, want %d", len(got), len(tasks))
	}
	if _, err := DetectSource(bytes.NewReader(nil)); err == nil {
		t.Fatal("DetectSource(empty) succeeded")
	}
}
