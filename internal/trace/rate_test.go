package trace

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
)

// TestRateSourceDeterminism: same spec → byte-identical stream.
func TestRateSourceDeterminism(t *testing.T) {
	mk := func() Source {
		return NewRate(RateSpec{
			Desc:     "test",
			Rate:     func(at time.Duration) float64 { return 50 + 50*math.Sin(float64(at)/float64(time.Second)) },
			Peak:     100,
			Horizon:  20 * time.Second,
			Duration: dist.Constant{Value: 10 * time.Millisecond},
			Seed:     7,
		})
	}
	a := Collect(mk())
	b := Collect(mk())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Service != b[i].Service || a[i].App != b[i].App {
			t.Fatalf("invocation %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRateSourceTracksProfile: a two-level square-wave profile must
// realize roughly twice as many arrivals in its high half.
func TestRateSourceTracksProfile(t *testing.T) {
	horizon := 100 * time.Second
	src := NewRate(RateSpec{
		Rate: func(at time.Duration) float64 {
			if at < horizon/2 {
				return 40
			}
			return 80
		},
		Peak:     80,
		Horizon:  horizon,
		Duration: dist.Constant{Value: time.Millisecond},
		Seed:     3,
	})
	lo, hi, n := 0, 0, 0
	for {
		tk, ok := src.Next()
		if !ok {
			break
		}
		n++
		if time.Duration(tk.Arrival) < horizon/2 {
			lo++
		} else {
			hi++
		}
	}
	if n < 1000 {
		t.Fatalf("only %d arrivals generated", n)
	}
	ratio := float64(hi) / float64(lo)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("high/low arrival ratio = %.2f (lo=%d hi=%d), want ~2", ratio, lo, hi)
	}
}

// TestRateSourceCapsAndOrder: the N cap holds, arrivals are
// non-decreasing and inside the horizon, and negative rates are
// treated as zero.
func TestRateSourceCapsAndOrder(t *testing.T) {
	src := NewRate(RateSpec{
		Rate:     func(at time.Duration) float64 { return 100 },
		Peak:     100,
		Horizon:  time.Hour,
		N:        250,
		Duration: dist.Constant{Value: time.Millisecond},
		Seed:     5,
	})
	tasks := Collect(src)
	if len(tasks) != 250 {
		t.Fatalf("N cap: got %d tasks, want 250", len(tasks))
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Arrival < tasks[i-1].Arrival {
			t.Fatalf("arrival order violated at %d", i)
		}
	}

	dead := NewRate(RateSpec{
		Rate:     func(at time.Duration) float64 { return -1 },
		Peak:     10,
		Horizon:  time.Second,
		Duration: dist.Constant{Value: time.Millisecond},
		Seed:     5,
	})
	if got := Collect(dead); len(got) != 0 {
		t.Errorf("negative-rate profile emitted %d arrivals, want 0", len(got))
	}
}
