package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Trace persistence: any Source can be exported to CSV row by row and
// replayed later (or on another machine) as an equivalent Source, which
// is how experiment inputs are archived alongside results. Export is
// streaming on both sides: writing pulls one invocation at a time, and
// reading parses rows lazily, so a multi-gigabyte trace never lives in
// memory.
//
// Schema: id,app,arrival_us,service_us,io_ops
// where io_ops is a semicolon-separated list of at_us:dur_us pairs.
// Timestamps are truncated to microseconds; one truncation is a fixed
// point, so export → import → export is byte-identical.

// csvHeader is the exported schema.
var csvHeader = []string{"id", "app", "arrival_us", "service_us", "io_ops"}

// WriteCSV streams src to w, returning the number of invocations
// written. Both generation errors (via trace.Err) and write errors are
// reported.
func WriteCSV(w io.Writer, src Source) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return 0, err
	}
	n := 0
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		if err := cw.Write(record(t)); err != nil {
			return n, err
		}
		n++
	}
	if err := Err(src); err != nil {
		return n, err
	}
	cw.Flush()
	return n, cw.Error()
}

// WriteTasksCSV serializes an already-materialized task slice (the
// legacy entry point kept for workload archives).
func WriteTasksCSV(w io.Writer, tasks []*task.Task) error {
	_, err := WriteCSV(w, FromTasks("tasks", tasks))
	return err
}

// record renders one invocation as a CSV row.
func record(t *task.Task) []string {
	var ops strings.Builder
	for i, op := range t.IOOps {
		if i > 0 {
			ops.WriteByte(';')
		}
		fmt.Fprintf(&ops, "%d:%d", op.At.Microseconds(), op.Dur.Microseconds())
	}
	return []string{
		strconv.Itoa(t.ID),
		t.App,
		strconv.FormatInt(t.Arrival.Microseconds(), 10),
		strconv.FormatInt(t.Service.Microseconds(), 10),
		ops.String(),
	}
}

// csvSource lazily parses rows from a reader.
type csvSource struct {
	cr   *csv.Reader
	row  int
	err  error
	done bool
}

// NewCSVSource opens a CSV trace for streaming replay. The header is
// validated eagerly; rows are parsed on demand. Each parsed task is
// validated, and the first invalid row terminates the stream with a
// row-numbered error available via Err.
func NewCSVSource(r io.Reader) (Source, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < len(csvHeader) {
		return nil, fmt.Errorf("trace: header %v, want %v", header, csvHeader)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], h)
		}
	}
	return &csvSource{cr: cr}, nil
}

// Next implements Source.
func (s *csvSource) Next() (*task.Task, bool) {
	if s.done {
		return nil, false
	}
	s.row++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return nil, false
	}
	if err != nil {
		s.fail(fmt.Errorf("trace: row %d: %w", s.row, err))
		return nil, false
	}
	t, err := parseRecord(rec)
	if err != nil {
		s.fail(fmt.Errorf("trace: row %d: %w", s.row, err))
		return nil, false
	}
	return t, true
}

func (s *csvSource) fail(err error) {
	s.err = err
	s.done = true
}

// Err implements Failer.
func (s *csvSource) Err() error { return s.err }

// String implements Source.
func (s *csvSource) String() string { return "csv" }

// parseRecord parses and validates one CSV row.
func parseRecord(rec []string) (*task.Task, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return nil, fmt.Errorf("bad id: %w", err)
	}
	arrUS, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad arrival: %w", err)
	}
	svcUS, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad service: %w", err)
	}
	t := task.New(id, simtime.Time(arrUS)*time.Microsecond, time.Duration(svcUS)*time.Microsecond)
	t.App = rec[1]
	if ops := rec[4]; ops != "" {
		for _, pair := range strings.Split(ops, ";") {
			at, dur, ok := strings.Cut(pair, ":")
			if !ok {
				return nil, fmt.Errorf("bad io op %q", pair)
			}
			atUS, err1 := strconv.ParseInt(at, 10, 64)
			durUS, err2 := strconv.ParseInt(dur, 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad io op %q", pair)
			}
			t.WithIO(time.Duration(atUS)*time.Microsecond, time.Duration(durUS)*time.Microsecond)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadCSV materializes a CSV trace, the strict counterpart of
// NewCSVSource for callers that need the whole workload.
func ReadCSV(r io.Reader) ([]*task.Task, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	tasks := Collect(src)
	if err := Err(src); err != nil {
		return nil, err
	}
	return tasks, nil
}
