package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Trace persistence: any Source can be exported to CSV row by row and
// replayed later (or on another machine) as an equivalent Source, which
// is how experiment inputs are archived alongside results. Export is
// streaming on both sides: writing pulls one invocation at a time, and
// reading parses rows lazily, so a multi-gigabyte trace never lives in
// memory.
//
// Schema: id,app,arrival_us,service_us,io_ops
// where io_ops is a semicolon-separated list of at_us:dur_us pairs.
// Timestamps are truncated to microseconds; one truncation is a fixed
// point, so export → import → export is byte-identical.

// csvHeader is the exported schema.
var csvHeader = []string{"id", "app", "arrival_us", "service_us", "io_ops"}

// WriteCSV streams src to w, returning the number of invocations
// written. Both generation errors (via trace.Err) and write errors are
// reported.
//
// Rows are encoded by hand into one reused buffer (strconv.Append*
// onto a scratch slice, flushed through one bufio.Writer) instead of
// encoding/csv's per-row field slices, so exporting an N-row trace
// costs O(1) allocations rather than O(N). The emitted bytes are
// identical to encoding/csv's output: fields are quoted the same way
// when (and only when) they need it, and rows end in "\n".
func WriteCSV(w io.Writer, src Source) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(csvHeader, ",") + "\n"); err != nil {
		return 0, err
	}
	n := 0
	buf := make([]byte, 0, 128)
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		buf = appendRecord(buf[:0], t)
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
		n++
	}
	if err := Err(src); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// WriteTasksCSV serializes an already-materialized task slice (the
// legacy entry point kept for workload archives).
func WriteTasksCSV(w io.Writer, tasks []*task.Task) error {
	_, err := WriteCSV(w, FromTasks("tasks", tasks))
	return err
}

// appendRecord renders one invocation as a CSV row (with trailing
// newline) onto buf without allocating.
func appendRecord(buf []byte, t *task.Task) []byte {
	buf = strconv.AppendInt(buf, int64(t.ID), 10)
	buf = append(buf, ',')
	buf = appendField(buf, t.App)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, t.Arrival.Microseconds(), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, t.Service.Microseconds(), 10)
	buf = append(buf, ',')
	for i, op := range t.IOOps {
		if i > 0 {
			buf = append(buf, ';')
		}
		buf = strconv.AppendInt(buf, op.At.Microseconds(), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, op.Dur.Microseconds(), 10)
	}
	return append(buf, '\n')
}

// appendField appends a free-form field (the app name), quoting it
// exactly when encoding/csv would: when it contains a separator,
// quote, or newline, begins with whitespace, or is the literal `\.`
// (the Postgres end-of-data marker encoding/csv special-cases).
func appendField(buf []byte, s string) []byte {
	if !fieldNeedsQuotes(s) {
		return append(buf, s...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			buf = append(buf, '"', '"')
		} else {
			buf = append(buf, s[i])
		}
	}
	return append(buf, '"')
}

// fieldNeedsQuotes mirrors encoding/csv's rule for a comma separator
// without CRLF line endings.
func fieldNeedsQuotes(s string) bool {
	if s == "" {
		return false
	}
	if s == `\.` {
		return true
	}
	if strings.ContainsAny(s, ",\"\r\n") {
		return true
	}
	r, _ := utf8.DecodeRuneInString(s)
	return unicode.IsSpace(r)
}

// csvSource lazily parses rows from a reader.
type csvSource struct {
	cr   *csv.Reader
	row  int
	err  error
	done bool
}

// NewCSVSource opens a CSV trace for streaming replay. The header is
// validated eagerly; rows are parsed on demand. Each parsed task is
// validated, and the first invalid row terminates the stream with a
// row-numbered error available via Err.
func NewCSVSource(r io.Reader) (Source, error) {
	cr := csv.NewReader(r)
	// Rows are parsed field-by-field into a fresh task before the next
	// Read, so the reader can safely reuse its record slice.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < len(csvHeader) {
		return nil, fmt.Errorf("trace: header %v, want %v", header, csvHeader)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], h)
		}
	}
	return &csvSource{cr: cr}, nil
}

// Next implements Source.
func (s *csvSource) Next() (*task.Task, bool) {
	if s.done {
		return nil, false
	}
	s.row++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return nil, false
	}
	if err != nil {
		s.fail(fmt.Errorf("trace: row %d: %w", s.row, err))
		return nil, false
	}
	t, err := parseRecord(rec)
	if err != nil {
		s.fail(fmt.Errorf("trace: row %d: %w", s.row, err))
		return nil, false
	}
	return t, true
}

func (s *csvSource) fail(err error) {
	s.err = err
	s.done = true
}

// Err implements Failer.
func (s *csvSource) Err() error { return s.err }

// String implements Source.
func (s *csvSource) String() string { return "csv" }

// parseRecord parses and validates one CSV row.
func parseRecord(rec []string) (*task.Task, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return nil, fmt.Errorf("bad id: %w", err)
	}
	arrUS, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad arrival: %w", err)
	}
	svcUS, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad service: %w", err)
	}
	t := task.New(id, simtime.Time(arrUS)*time.Microsecond, time.Duration(svcUS)*time.Microsecond)
	t.App = rec[1]
	// Walk the op list with Cut instead of Split to avoid allocating a
	// slice per row on the import hot path. An empty element (including
	// one left by a trailing ';') is rejected exactly as Split-based
	// parsing did.
	if ops := rec[4]; ops != "" {
		lastUS := int64(-1 << 62)
		for {
			pair, rest, found := strings.Cut(ops, ";")
			at, dur, ok := strings.Cut(pair, ":")
			if !ok {
				return nil, fmt.Errorf("bad io op %q", pair)
			}
			atUS, err1 := strconv.ParseInt(at, 10, 64)
			durUS, err2 := strconv.ParseInt(dur, 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad io op %q", pair)
			}
			// WithIO panics on out-of-order ops; a malformed row must
			// be a parse error, not a crash.
			if atUS < lastUS {
				return nil, fmt.Errorf("io op %q out of order", pair)
			}
			lastUS = atUS
			t.WithIO(time.Duration(atUS)*time.Microsecond, time.Duration(durUS)*time.Microsecond)
			if !found {
				break
			}
			ops = rest
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadCSV materializes a CSV trace, the strict counterpart of
// NewCSVSource for callers that need the whole workload.
func ReadCSV(r io.Reader) ([]*task.Task, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	tasks := Collect(src)
	if err := Err(src); err != nil {
		return nil, err
	}
	return tasks, nil
}
