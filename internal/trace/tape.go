package trace

import (
	"sort"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Tape is a struct-of-arrays snapshot of a trace: one column per hot
// task-definition field, I/O ops flattened into shared columns indexed
// by per-task offsets, and app names interned into a string table.
// A million-invocation workload is a dozen large slices instead of a
// million heap objects, and replaying it allocates task structs from a
// block arena rather than re-parsing or re-cloning anything.
type Tape struct {
	ids       []int64
	appIdx    []int32 // index into apps; -1 for the empty app
	apps      []string
	appOf     map[string]int32
	arrivalNS []int64
	serviceNS []int64
	weights   []int32
	ioOff     []int32 // len = Len()+1; ops of task i are [ioOff[i], ioOff[i+1])
	ioAtNS    []int64
	ioDurNS   []int64
}

// NewTape returns an empty tape.
func NewTape() *Tape {
	return &Tape{appOf: map[string]int32{}, ioOff: []int32{0}}
}

// Append copies one task definition onto the tape.
func (tp *Tape) Append(t *task.Task) {
	tp.ids = append(tp.ids, int64(t.ID))
	ai := int32(-1)
	if t.App != "" {
		var ok bool
		if ai, ok = tp.appOf[t.App]; !ok {
			ai = int32(len(tp.apps))
			tp.apps = append(tp.apps, t.App)
			tp.appOf[t.App] = ai
		}
	}
	tp.appIdx = append(tp.appIdx, ai)
	tp.arrivalNS = append(tp.arrivalNS, int64(t.Arrival))
	tp.serviceNS = append(tp.serviceNS, int64(t.Service))
	tp.weights = append(tp.weights, int32(t.Weight))
	for _, op := range t.IOOps {
		tp.ioAtNS = append(tp.ioAtNS, int64(op.At))
		tp.ioDurNS = append(tp.ioDurNS, int64(op.Dur))
	}
	tp.ioOff = append(tp.ioOff, int32(len(tp.ioAtNS)))
}

// Len returns the number of invocations on the tape.
func (tp *Tape) Len() int { return len(tp.ids) }

// TapeFrom drains a source onto a fresh tape. Mid-stream source
// failures are reported via trace.Err semantics.
func TapeFrom(src Source) (*Tape, error) {
	tp := NewTape()
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		tp.Append(t)
	}
	if err := Err(src); err != nil {
		return nil, err
	}
	return tp, nil
}

// Materialize builds the full task slice from the tape, allocating
// every task and I/O slice out of a (arena-reset-reusable) block
// arena. Passing nil uses a fresh arena.
func (tp *Tape) Materialize(a *task.Arena) []*task.Task {
	if a == nil {
		a = task.NewArena()
	}
	out := make([]*task.Task, tp.Len())
	for i := range out {
		out[i] = tp.task(a, i)
	}
	return out
}

// task materializes invocation i from the arena.
func (tp *Tape) task(a *task.Arena, i int) *task.Task {
	t := a.New(int(tp.ids[i]), simtime.Time(tp.arrivalNS[i]), time.Duration(tp.serviceNS[i]))
	if ai := tp.appIdx[i]; ai >= 0 {
		t.App = tp.apps[ai]
	}
	t.Weight = int(tp.weights[i])
	lo, hi := tp.ioOff[i], tp.ioOff[i+1]
	if hi > lo {
		ops := a.IO(int(hi - lo))
		for j := range ops {
			ops[j] = task.IOOp{
				At:  time.Duration(tp.ioAtNS[lo+int32(j)]),
				Dur: time.Duration(tp.ioDurNS[lo+int32(j)]),
			}
		}
		t.IOOps = ops
	}
	return t
}

// SortByArrival reorders the tape into non-decreasing arrival order
// (ties by original position, so the sort is stable) and reassigns
// sequential IDs, turning an append-in-any-order tape into a valid
// replayable trace. Ingestion paths that append invocations
// producer-by-producer — the Azure per-function CSV schema emits one
// function's whole timeline per row — sort once at the end instead of
// buffering task objects for a merge.
func (tp *Tape) SortByArrival() {
	n := tp.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return tp.arrivalNS[perm[a]] < tp.arrivalNS[perm[b]]
	})
	next := NewTape()
	// Keep the interned string table (and its indices) as-is; only the
	// per-invocation columns are permuted.
	next.apps, next.appOf = tp.apps, tp.appOf
	for _, i := range perm {
		next.ids = append(next.ids, int64(len(next.ids)))
		next.appIdx = append(next.appIdx, tp.appIdx[i])
		next.arrivalNS = append(next.arrivalNS, tp.arrivalNS[i])
		next.serviceNS = append(next.serviceNS, tp.serviceNS[i])
		next.weights = append(next.weights, tp.weights[i])
		lo, hi := tp.ioOff[i], tp.ioOff[i+1]
		next.ioAtNS = append(next.ioAtNS, tp.ioAtNS[lo:hi]...)
		next.ioDurNS = append(next.ioDurNS, tp.ioDurNS[lo:hi]...)
		next.ioOff = append(next.ioOff, int32(len(next.ioAtNS)))
	}
	*tp = *next
}

// Source replays the tape as a fresh Source, materializing one task per
// Next out of a private arena — the tape-backed equivalent of
// FromTasks without the per-task clone allocations.
func (tp *Tape) Source() Source {
	a := task.NewArena()
	i := 0
	return New("tape", func() (*task.Task, bool) {
		if i >= tp.Len() {
			return nil, false
		}
		t := tp.task(a, i)
		i++
		return t, true
	})
}
