package trace_test

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// mk builds a tiny materialized source for the examples: invocations at
// the given millisecond arrivals, each with 1 ms of CPU demand.
func mk(desc string, arrivalsMS ...int) trace.Source {
	var tasks []*task.Task
	for i, ms := range arrivalsMS {
		tasks = append(tasks, task.New(i, simtime.Time(ms)*simtime.Time(time.Millisecond), time.Millisecond))
	}
	return trace.FromTasks(desc, tasks)
}

func dump(src trace.Source) {
	for {
		t, ok := src.Next()
		if !ok {
			return
		}
		fmt.Printf("id=%d at=%v\n", t.ID, t.Arrival)
	}
}

// ExampleLimit caps an (arbitrarily long) stream at n invocations —
// the standard way to bound an N == 0 synthetic source.
func ExampleLimit() {
	src := trace.Limit(mk("ticks", 0, 10, 20, 30, 40), 2)
	dump(src)
	// Output:
	// id=0 at=0s
	// id=1 at=10ms
}

// ExampleMap rewrites invocations in flight; returning nil drops them.
// Here every odd invocation is dropped and the rest are given a name.
func ExampleMap() {
	src := trace.Map(mk("ticks", 0, 10, 20, 30), func(t *task.Task) *task.Task {
		if t.ID%2 == 1 {
			return nil
		}
		t.App = "fib"
		return t
	})
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		fmt.Printf("id=%d app=%s at=%v\n", t.ID, t.App, t.Arrival)
	}
	// Output:
	// id=0 app=fib at=0s
	// id=2 app=fib at=20ms
}

// ExampleMerge interleaves tenant streams by arrival time — the
// multi-tenant composition primitive. IDs are reassigned sequentially
// on the merged stream.
func ExampleMerge() {
	a := mk("tenant-a", 0, 30)
	b := mk("tenant-b", 10, 20)
	dump(trace.Merge(a, b))
	// Output:
	// id=0 at=0s
	// id=1 at=10ms
	// id=2 at=20ms
	// id=3 at=30ms
}

// ExampleConcat chains phases back to back: the second source is
// time-shifted so its first arrival lands at the previous source's
// last arrival — warm-up, steady state, overload as one stream.
func ExampleConcat() {
	warmup := mk("warmup", 0, 10)
	steady := mk("steady", 0, 5)
	dump(trace.Concat(warmup, steady))
	// Output:
	// id=0 at=0s
	// id=1 at=10ms
	// id=2 at=10ms
	// id=3 at=15ms
}
