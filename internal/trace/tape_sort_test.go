package trace

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// TestTapeSortByArrival: appending out of order then sorting yields a
// valid trace with sequential IDs, arrival-ordered invocations, stable
// ties, and every task's I/O ops still attached to it.
func TestTapeSortByArrival(t *testing.T) {
	mk := func(id int, at time.Duration, app string, nIO int) *task.Task {
		tk := task.New(id, simtime.Time(at), 10*time.Millisecond)
		tk.App = app
		for i := 0; i < nIO; i++ {
			tk.WithIO(time.Duration(i)*time.Millisecond, time.Duration(id)*time.Millisecond)
		}
		return tk
	}
	tp := NewTape()
	tp.Append(mk(0, 30*time.Millisecond, "c", 2))
	tp.Append(mk(1, 10*time.Millisecond, "a", 0))
	tp.Append(mk(2, 20*time.Millisecond, "b", 1))
	tp.Append(mk(3, 20*time.Millisecond, "b2", 3)) // tie with id 2: must stay after it

	tp.SortByArrival()
	tasks := tp.Materialize(nil)
	if len(tasks) != 4 {
		t.Fatalf("len = %d", len(tasks))
	}
	wantApps := []string{"a", "b", "b2", "c"}
	wantIO := []int{0, 1, 3, 2}
	for i, tk := range tasks {
		if tk.ID != i {
			t.Errorf("task %d: ID = %d, want sequential", i, tk.ID)
		}
		if tk.App != wantApps[i] {
			t.Errorf("task %d: app = %q, want %q", i, tk.App, wantApps[i])
		}
		if len(tk.IOOps) != wantIO[i] {
			t.Errorf("task %d (%s): %d I/O ops, want %d", i, tk.App, len(tk.IOOps), wantIO[i])
		}
		if i > 0 && tk.Arrival < tasks[i-1].Arrival {
			t.Errorf("task %d arrives before predecessor", i)
		}
	}
	// The sorted tape must pass full trace validation when replayed.
	if _, err := Validate(tp.Source()); err != nil {
		t.Fatalf("sorted tape invalid: %v", err)
	}
}
