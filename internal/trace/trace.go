// Package trace is the streaming workload pipeline: every scenario
// family in this repository — Azure-sampled replays, the paper's Table I
// mixture, synthetic RPS ramps — is produced and consumed through one
// pull-based Source interface instead of materialized task slices.
//
// A Source is an iterator of timestamped invocations in arrival order.
// Sources are deterministic functions of their construction parameters
// (spec + seed), so re-opening a source replays the identical stream;
// that property is what makes traces exportable, replayable, and
// byte-for-byte reproducible across machines. Combinators (Limit, Map,
// Merge, Concat) compose sources without buffering; Collect materializes
// one for consumers that need slices (the discrete-event engine).
package trace

import (
	"container/heap"
	"fmt"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Source is a pull-based iterator of timestamped invocations.
//
// Next returns invocations with non-decreasing Arrival fields and
// yields ownership of each returned task: callers may mutate it freely.
// After Next returns false the source is exhausted and every further
// call must return false.
type Source interface {
	// Next returns the next invocation, or nil, false when the stream is
	// exhausted.
	Next() (*task.Task, bool)
	// String describes the source's provenance (scenario family,
	// parameters, seed).
	String() string
}

// Failer is implemented by sources that can fail mid-stream (e.g. CSV
// parsers). After Next returns false, Err distinguishes clean exhaustion
// (nil) from a truncated stream.
type Failer interface {
	Err() error
}

// Err returns the terminal error of a source, or nil for sources that
// cannot fail.
func Err(src Source) error {
	if f, ok := src.(Failer); ok {
		return f.Err()
	}
	return nil
}

// funcSource adapts a closure to Source, optionally delegating Err to
// the sources it derives from.
type funcSource struct {
	desc   string
	next   func() (*task.Task, bool)
	inners []Source
}

func (f *funcSource) Next() (*task.Task, bool) { return f.next() }
func (f *funcSource) String() string           { return f.desc }

// Err implements Failer: a derived source fails when any source it
// draws from failed.
func (f *funcSource) Err() error {
	for _, s := range f.inners {
		if err := Err(s); err != nil {
			return err
		}
	}
	return nil
}

// New adapts a next closure into a Source described by desc.
func New(desc string, next func() (*task.Task, bool)) Source {
	return &funcSource{desc: desc, next: next}
}

// Derive adapts a next closure into a Source whose Err reports the
// first error of the sources it draws from — combinators and wrappers
// must use this so a mid-stream failure (e.g. a malformed CSV row)
// survives composition instead of reading as clean exhaustion.
func Derive(desc string, next func() (*task.Task, bool), from ...Source) Source {
	return &funcSource{desc: desc, next: next, inners: from}
}

// FromTasks returns a Source that replays tasks in order, yielding a
// fresh copy of each with accounting reset — the streaming equivalent of
// Workload.Clone, so one materialized trace can feed many runs.
func FromTasks(desc string, tasks []*task.Task) Source {
	i := 0
	return New(desc, func() (*task.Task, bool) {
		if i >= len(tasks) {
			return nil, false
		}
		t := CloneTask(tasks[i])
		i++
		return t, true
	})
}

// CloneTask deep-copies a task's definition (identity, arrival, service,
// I/O ops, weight) with all accounting reset.
func CloneTask(t *task.Task) *task.Task {
	n := task.New(t.ID, t.Arrival, t.Service)
	n.App = t.App
	n.Weight = t.Weight
	n.IOOps = append([]task.IOOp(nil), t.IOOps...)
	return n
}

// CloneTasks deep-copies a whole task slice the way CloneTask does, but
// block-allocates: one backing array for all task structs and one for
// all I/O ops, instead of 2N individual allocations. Replay paths that
// clone a materialized workload per run (benchmarks, experiment sweeps)
// use this to keep per-run allocation cost flat.
func CloneTasks(tasks []*task.Task) []*task.Task {
	nIO := 0
	for _, t := range tasks {
		nIO += len(t.IOOps)
	}
	block := make([]task.Task, len(tasks))
	ioBlock := make([]task.IOOp, 0, nIO)
	out := make([]*task.Task, len(tasks))
	for i, t := range tasks {
		n := &block[i]
		*n = *task.New(t.ID, t.Arrival, t.Service)
		n.App = t.App
		n.Weight = t.Weight
		if len(t.IOOps) > 0 {
			start := len(ioBlock)
			ioBlock = append(ioBlock, t.IOOps...)
			n.IOOps = ioBlock[start : start+len(t.IOOps) : start+len(t.IOOps)]
		}
		out[i] = n
	}
	return out
}

// Collect drains a source into a slice. Use trace.Err afterwards when
// the source can fail mid-stream.
func Collect(src Source) []*task.Task {
	var out []*task.Task
	for {
		t, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// Limit caps a source at n invocations.
func Limit(src Source, n int) Source {
	taken := 0
	return Derive(fmt.Sprintf("limit(%d, %s)", n, src), func() (*task.Task, bool) {
		if taken >= n {
			return nil, false
		}
		t, ok := src.Next()
		if !ok {
			return nil, false
		}
		taken++
		return t, true
	}, src)
}

// Map applies fn to every invocation as it streams past. fn receives
// ownership of the task and returns the (possibly same, possibly
// replaced) task to emit; returning nil drops the invocation.
func Map(src Source, fn func(*task.Task) *task.Task) Source {
	return Derive(src.String(), func() (*task.Task, bool) {
		for {
			t, ok := src.Next()
			if !ok {
				return nil, false
			}
			if t = fn(t); t != nil {
				return t, true
			}
		}
	}, src)
}

// mergeItem is one source's head-of-stream in the merge heap.
type mergeItem struct {
	t   *task.Task
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int      { return len(h) }
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].t.Arrival != h[j].t.Arrival {
		return h[i].t.Arrival < h[j].t.Arrival
	}
	return h[i].src < h[j].src // stable tie-break keeps merges deterministic
}
func (h *mergeHeap) Push(x any) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Merge interleaves sources by arrival time (k-way heap merge) — the
// multi-tenant composition primitive: each tenant is a source, the
// platform sees one stream. Task IDs are reassigned sequentially so the
// merged stream has unique IDs.
func Merge(srcs ...Source) Source {
	h := make(mergeHeap, 0, len(srcs))
	primed := false
	id := 0
	desc := "merge("
	for i, s := range srcs {
		if i > 0 {
			desc += ", "
		}
		desc += s.String()
	}
	desc += ")"
	return Derive(desc, func() (*task.Task, bool) {
		if !primed {
			primed = true
			for i, s := range srcs {
				if t, ok := s.Next(); ok {
					h = append(h, mergeItem{t: t, src: i})
				}
			}
			heap.Init(&h)
		}
		if h.Len() == 0 {
			return nil, false
		}
		it := h[0]
		if t, ok := srcs[it.src].Next(); ok {
			h[0] = mergeItem{t: t, src: it.src}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		it.t.ID = id
		id++
		return it.t, true
	}, srcs...)
}

// Concat chains sources back to back: each source after the first is
// time-shifted so its first arrival lands at the previous source's last
// arrival — phased scenarios (warm-up, steady state, overload) as one
// stream. Task IDs are reassigned sequentially.
func Concat(srcs ...Source) Source {
	cur, id := 0, 0
	var offset, last simtime.Time // shift for the current source; last emitted arrival
	rebased := true               // the first source passes through unshifted
	desc := "concat("
	for i, s := range srcs {
		if i > 0 {
			desc += ", "
		}
		desc += s.String()
	}
	desc += ")"
	return Derive(desc, func() (*task.Task, bool) {
		for cur < len(srcs) {
			t, ok := srcs[cur].Next()
			if !ok {
				cur++
				rebased = false
				continue
			}
			if !rebased {
				rebased = true
				offset = last - t.Arrival // re-base this source to the seam
			}
			t.Arrival += offset
			last = t.Arrival
			t.ID = id
			id++
			return t, true
		}
		return nil, false
	}, srcs...)
}

// Validate streams a source through task validation and a monotonicity
// check, returning the invocation count or the first violation.
func Validate(src Source) (int, error) {
	n := 0
	prev := task.New(0, -1, 1)
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		if err := t.Validate(); err != nil {
			return n, fmt.Errorf("trace: invocation %d: %w", n, err)
		}
		if t.Arrival < prev.Arrival {
			return n, fmt.Errorf("trace: invocation %d arrives at %v before predecessor %v", n, t.Arrival, prev.Arrival)
		}
		prev = t
		n++
	}
	if err := Err(src); err != nil {
		return n, err
	}
	return n, nil
}
