package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/serverless-sched/sfs/internal/task"
)

// TestReadBinaryTapeMatchesReadBinary pins the two binary decode
// sinks to each other: the columnar tape loader must describe exactly
// the tasks the streaming source materializes, and must surface the
// same decode errors.
func TestReadBinaryTapeMatchesReadBinary(t *testing.T) {
	raw := encodeBinary(t, binFixture())
	want, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	tp, err := ReadBinaryTape(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadBinaryTape: %v", err)
	}
	got := tp.Materialize(nil)
	if len(got) != len(want) {
		t.Fatalf("tape materialized %d tasks, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.ID != w.ID || g.App != w.App || g.Arrival != w.Arrival || g.Service != w.Service || g.Weight != w.Weight {
			t.Errorf("task %d: got %v, want %v", i, g, w)
		}
		if len(g.IOOps) != len(w.IOOps) {
			t.Fatalf("task %d: %d io ops, want %d", i, len(g.IOOps), len(w.IOOps))
		}
		for j := range w.IOOps {
			if g.IOOps[j] != w.IOOps[j] {
				t.Errorf("task %d op %d: got %+v, want %+v", i, j, g.IOOps[j], w.IOOps[j])
			}
		}
	}
	// Re-encoding the tape must reproduce the original bytes, the same
	// fixed point the streaming decoder guarantees.
	var again bytes.Buffer
	if _, err := WriteBinary(&again, tp.Source()); err != nil {
		t.Fatalf("re-encode from tape: %v", err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatalf("tape re-encode not byte-identical")
	}
	// Error parity with the streaming decoder: truncation mid-record and
	// invalid records must fail the tape load too.
	if _, err := ReadBinaryTape(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Error("truncated trace loaded onto tape with no error")
	}
	var zero bytes.Buffer
	if _, err := WriteBinary(&zero, New("bad", oneShot(task.New(1, 0, 0)))); err != nil {
		t.Fatalf("encoding zero-service task: %v", err)
	}
	if _, err := ReadBinaryTape(bytes.NewReader(zero.Bytes())); err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Errorf("zero-service tape load error = %v, want record-numbered failure", err)
	}
	if _, err := ReadBinaryTape(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad header accepted by ReadBinaryTape")
	}
}

func TestTapeMaterializeMatchesClone(t *testing.T) {
	tasks := binFixture()
	tp, err := TapeFrom(FromTasks("fixture", tasks))
	if err != nil {
		t.Fatalf("TapeFrom: %v", err)
	}
	if tp.Len() != len(tasks) {
		t.Fatalf("Len = %d, want %d", tp.Len(), len(tasks))
	}
	check := func(got []*task.Task) {
		t.Helper()
		if len(got) != len(tasks) {
			t.Fatalf("materialized %d tasks, want %d", len(got), len(tasks))
		}
		for i, w := range tasks {
			g := got[i]
			if g.ID != w.ID || g.App != w.App || g.Arrival != w.Arrival || g.Service != w.Service || g.Weight != w.Weight {
				t.Errorf("task %d: got %v, want %v", i, g, w)
			}
			if len(g.IOOps) != len(w.IOOps) {
				t.Fatalf("task %d: %d io ops, want %d", i, len(g.IOOps), len(w.IOOps))
			}
			for j := range w.IOOps {
				if g.IOOps[j] != w.IOOps[j] {
					t.Errorf("task %d op %d: got %+v, want %+v", i, j, g.IOOps[j], w.IOOps[j])
				}
			}
		}
	}
	check(tp.Materialize(nil))
	// Arena reuse: a second materialization through a reset arena must
	// produce the same definitions.
	a := task.NewArena()
	tp.Materialize(a)
	a.Reset()
	check(tp.Materialize(a))
	check(Collect(tp.Source()))
	// App interning: repeated names share one table entry.
	if len(tp.apps) != 2 {
		t.Fatalf("app table has %d entries, want 2: %v", len(tp.apps), tp.apps)
	}
}
