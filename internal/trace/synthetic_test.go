package trace

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
)

// realizedRPS buckets a source's arrivals into windows and returns the
// per-window request rates.
func realizedRPS(src Source, horizon time.Duration, windows int) []float64 {
	counts := make([]float64, windows)
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		w := int(float64(t.Arrival) / float64(horizon) * float64(windows))
		if w >= windows {
			w = windows - 1
		}
		counts[w]++
	}
	per := horizon.Seconds() / float64(windows)
	for i := range counts {
		counts[i] /= per
	}
	return counts
}

func TestSyntheticRampRates(t *testing.T) {
	const horizon = 100 * time.Second
	src := NewSynthetic(SynthSpec{
		Shape: ShapeRamp, StartRPS: 100, TargetRPS: 1100,
		Horizon: horizon, Duration: dist.Constant{Value: ms(1)}, Seed: 1,
	})
	rates := realizedRPS(src, horizon, 10)
	// Window i spans fractions [i/10,(i+1)/10): expected mean rate is the
	// midpoint of the linear ramp.
	for i, got := range rates {
		want := 100 + 1000*(float64(i)+0.5)/10
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("window %d: %.0f rps, want ~%.0f", i, got, want)
		}
	}
	if rates[9] < 2*rates[0] {
		t.Errorf("ramp did not rise: first %.0f last %.0f", rates[0], rates[9])
	}
}

func TestSyntheticStepSlots(t *testing.T) {
	const slot = 10 * time.Second
	src := NewSynthetic(SynthSpec{
		Shape: ShapeStep, StartRPS: 100, TargetRPS: 500,
		Slots: 5, SlotDur: slot,
		Duration: dist.Constant{Value: ms(1)}, Seed: 2,
	})
	rates := realizedRPS(src, 5*slot, 5)
	for i, got := range rates {
		want := 100 + 400*float64(i)/4
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("slot %d: %.0f rps, want ~%.0f", i, got, want)
		}
	}
}

func TestSyntheticConstantAndSine(t *testing.T) {
	const horizon = 50 * time.Second
	rates := realizedRPS(NewSynthetic(SynthSpec{
		Shape: ShapeConstant, StartRPS: 200,
		Horizon: horizon, Duration: dist.Constant{Value: ms(1)}, Seed: 3,
	}), horizon, 5)
	for i, got := range rates {
		if math.Abs(got-200)/200 > 0.1 {
			t.Errorf("constant window %d: %.0f rps", i, got)
		}
	}
	// Sine: one full cycle around the midpoint; quarter-cycle windows
	// average above/below the mid on the way up/down.
	sine := realizedRPS(NewSynthetic(SynthSpec{
		Shape: ShapeSine, StartRPS: 100, TargetRPS: 300,
		Horizon: horizon, Duration: dist.Constant{Value: ms(1)}, Seed: 4,
	}), horizon, 4)
	if !(sine[0] > 210 && sine[1] < 310 && sine[2] < 190) {
		t.Errorf("sine wave shape off: %v", sine)
	}
}

func TestSyntheticNCap(t *testing.T) {
	src := NewSynthetic(SynthSpec{
		Shape: ShapeConstant, StartRPS: 1000, Horizon: time.Hour,
		N: 250, Duration: dist.Constant{Value: ms(1)}, Seed: 5,
	})
	got := Collect(src)
	if len(got) != 250 {
		t.Fatalf("N cap yielded %d", len(got))
	}
	for i, tk := range got {
		if tk.ID != i {
			t.Fatalf("ID %d = %d", i, tk.ID)
		}
		if i > 0 && tk.Arrival < got[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
		if tk.App != "synth" {
			t.Fatalf("app %q", tk.App)
		}
	}
}

func TestSyntheticDurationsFollowDist(t *testing.T) {
	src := NewSynthetic(SynthSpec{
		Shape: ShapeConstant, StartRPS: 500, Horizon: 20 * time.Second,
		Duration: dist.Uniform{Lo: ms(10), Hi: ms(20)}, Seed: 6,
	})
	n := 0
	var sum time.Duration
	for {
		tk, ok := src.Next()
		if !ok {
			break
		}
		if tk.Service < ms(10) || tk.Service >= ms(20) {
			t.Fatalf("service %v outside [10,20)ms", tk.Service)
		}
		sum += tk.Service
		n++
	}
	if n == 0 {
		t.Fatal("no invocations")
	}
	mean := sum / time.Duration(n)
	if mean < ms(14) || mean > ms(16) {
		t.Fatalf("mean service %v, want ~15ms", mean)
	}
}

func TestParseShape(t *testing.T) {
	for _, s := range []string{"constant", "ramp", "step", "sine"} {
		if _, err := ParseShape(s); err != nil {
			t.Errorf("%s rejected: %v", s, err)
		}
	}
	if _, err := ParseShape("sawtooth"); err == nil {
		t.Error("bad shape accepted")
	}
}

func TestSyntheticSpecPanics(t *testing.T) {
	for name, spec := range map[string]SynthSpec{
		"no rate":    {Shape: ShapeConstant, Horizon: time.Second, Duration: dist.Constant{Value: ms(1)}},
		"no horizon": {Shape: ShapeRamp, StartRPS: 1, Duration: dist.Constant{Value: ms(1)}},
		"no dist":    {Shape: ShapeRamp, StartRPS: 1, Horizon: time.Second},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewSynthetic(spec)
		}()
	}
}
