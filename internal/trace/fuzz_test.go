package trace

import (
	"bytes"
	"testing"

	"github.com/serverless-sched/sfs/internal/task"
)

// The codec fuzz targets. Each seeds the corpus with one well-formed
// trace plus the malformed prefixes that previously tripped the
// decoders, then checks two properties on anything that decodes
// cleanly: the decode must round-trip (re-encode → re-decode →
// identical invocations), and for the binary format the slice and
// struct-of-arrays decoders must agree byte for byte. CI runs each
// target briefly (-fuzz with a short -fuzztime) so the corpus keeps
// probing new mutations; a plain `go test` replays just the seeds.

// sameTasks reports whether two decoded traces describe identical
// invocations, field by field.
func sameTasks(a, b []*task.Task) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		g := b[i]
		if g.ID != w.ID || g.App != w.App || g.Arrival != w.Arrival ||
			g.Service != w.Service || g.Weight != w.Weight || len(g.IOOps) != len(w.IOOps) {
			return false
		}
		for j := range w.IOOps {
			if g.IOOps[j] != w.IOOps[j] {
				return false
			}
		}
	}
	return true
}

func FuzzReadBinary(f *testing.F) {
	f.Add(mustEncode(binFixture()))
	f.Add([]byte("SFTB\x01"))
	f.Add([]byte("SFTB\x01\x02\x00\x01"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, err := ReadBinary(bytes.NewReader(data))
		tp, tapeErr := ReadBinaryTape(bytes.NewReader(data))
		if (err == nil) != (tapeErr == nil) {
			t.Fatalf("decoder disagreement: ReadBinary err=%v, ReadBinaryTape err=%v", err, tapeErr)
		}
		if err != nil {
			return
		}
		// The fast struct-of-arrays path must describe the same
		// invocations as the slice path.
		if mat := tp.Materialize(nil); !sameTasks(tasks, mat) {
			t.Fatalf("tape decode diverged from slice decode:\nslice %v\ntape  %v", tasks, mat)
		}
		// Whatever decodes cleanly must re-encode to a decodable trace
		// describing the same invocations.
		var buf bytes.Buffer
		if _, err := WriteBinary(&buf, FromTasks("fuzz", tasks)); err != nil {
			t.Fatalf("re-encoding decoded tasks: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded tasks: %v", err)
		}
		if !sameTasks(tasks, again) {
			t.Fatalf("binary round trip changed the trace:\nfirst  %v\nsecond %v", tasks, again)
		}
	})
}

func FuzzReadCSV(f *testing.F) {
	var valid bytes.Buffer
	if _, err := WriteCSV(&valid, FromTasks("seed", binFixture())); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("id,app,arrival_us,service_us,io_ops\n"))
	f.Add([]byte("id,app,arrival_us,service_us,io_ops\n1,fib,0,100,\n"))
	f.Add([]byte("id,app,arrival_us,service_us,io_ops\n1,fib,0,100,50:10;60:5\n"))
	// Out-of-order io ops once panicked the importer (found by this
	// fuzzer; also pinned in testdata/fuzz): must be a parse error.
	f.Add([]byte("id,app,arrival_us,service_us,io_ops\n1,fib,0,100,60:5;50:10\n"))
	f.Add([]byte("id,app,arrival_us,service_us,io_ops\n1,\"a,b\",0,100,\n"))
	f.Add([]byte("id,app\n"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Timestamps are already microsecond-truncated after one
		// decode, so export → import must be an exact fixed point.
		var buf bytes.Buffer
		if _, err := WriteCSV(&buf, FromTasks("fuzz", tasks)); err != nil {
			t.Fatalf("re-encoding decoded tasks: %v", err)
		}
		again, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded tasks: %v", err)
		}
		if !sameTasks(tasks, again) {
			t.Fatalf("csv round trip changed the trace:\nfirst  %v\nsecond %v", tasks, again)
		}
		// A second export of the re-imported trace must be
		// byte-identical — the documented canonicalization fixed point.
		var buf2 bytes.Buffer
		if _, err := WriteCSV(&buf2, FromTasks("fuzz", again)); err != nil {
			t.Fatalf("third encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("export → import → export not byte-identical:\nfirst  %q\nsecond %q", buf.Bytes(), buf2.Bytes())
		}
	})
}
