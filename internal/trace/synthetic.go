package trace

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Shape selects the request-rate profile of a synthetic trace, mirroring
// the vhive/invitro trace synthesizer's RPS modes: a constant rate, a
// linear ramp from a starting RPS to a target RPS, a staircase of fixed
// RPS slots, and a sinusoidal diurnal-style wave.
type Shape string

// Shapes.
const (
	ShapeConstant Shape = "constant"
	ShapeRamp     Shape = "ramp"
	ShapeStep     Shape = "step"
	ShapeSine     Shape = "sine"
)

// ParseShape validates a shape name from a CLI flag.
func ParseShape(s string) (Shape, error) {
	switch Shape(s) {
	case ShapeConstant, ShapeRamp, ShapeStep, ShapeSine:
		return Shape(s), nil
	}
	return "", fmt.Errorf("trace: unknown shape %q (want constant, ramp, step, or sine)", s)
}

// SynthSpec configures a synthetic invocation source.
type SynthSpec struct {
	// Shape is the RPS profile (default ShapeRamp).
	Shape Shape
	// StartRPS is the request rate at t=0 (requests per second).
	StartRPS float64
	// TargetRPS is the rate reached at the end of the horizon (ramp,
	// step, sine peak). Defaults to StartRPS.
	TargetRPS float64
	// Slots is the number of fixed-RPS slots of the step shape (the
	// invitro synthesizer's "RPS slots"; default 10).
	Slots int
	// SlotDur is the duration of one slot. When Horizon is zero the
	// horizon is Slots*SlotDur.
	SlotDur time.Duration
	// Horizon is the trace's total time span. Required unless Slots and
	// SlotDur define it.
	Horizon time.Duration
	// N caps the number of invocations (0 = until the horizon ends).
	N int
	// Duration samples each invocation's ideal duration.
	Duration dist.Distribution
	// App labels the emitted invocations (default "synth").
	App string
	// Seed drives all sampling.
	Seed uint64
}

// horizon resolves the spec's time span.
func (s SynthSpec) horizon() time.Duration {
	if s.Horizon > 0 {
		return s.Horizon
	}
	return time.Duration(s.slots()) * s.SlotDur
}

func (s SynthSpec) slots() int {
	if s.Slots <= 0 {
		return 10
	}
	return s.Slots
}

// rps returns the instantaneous request rate at elapsed time t.
func (s SynthSpec) rps(t, horizon time.Duration) float64 {
	frac := float64(t) / float64(horizon)
	switch s.Shape {
	case ShapeConstant:
		return s.StartRPS
	case ShapeStep:
		slots := s.slots()
		k := int(frac * float64(slots))
		if k >= slots {
			k = slots - 1
		}
		if slots == 1 {
			return s.StartRPS
		}
		return s.StartRPS + (s.TargetRPS-s.StartRPS)*float64(k)/float64(slots-1)
	case ShapeSine:
		mid := (s.StartRPS + s.TargetRPS) / 2
		amp := (s.TargetRPS - s.StartRPS) / 2
		return mid + amp*math.Sin(2*math.Pi*frac)
	default: // ShapeRamp
		return s.StartRPS + (s.TargetRPS-s.StartRPS)*frac
	}
}

// peakRPS bounds the shape's rate from above (the thinning envelope).
func (s SynthSpec) peakRPS() float64 {
	return math.Max(s.StartRPS, s.TargetRPS)
}

// synthSource generates arrivals lazily via thinning of a
// non-homogeneous Poisson process: candidate arrivals are drawn at the
// peak rate and accepted with probability rate(t)/peak, so no arrival
// table is ever materialized.
type synthSource struct {
	spec    SynthSpec
	horizon time.Duration
	arrR    *rng.RNG
	durR    *rng.RNG
	t       float64 // elapsed ns
	id      int
	done    bool
}

// NewSynthetic builds a synthetic source. It panics on an unusable spec
// (no positive rate, no horizon, or nil duration distribution) because
// specs are programmer-provided, as elsewhere in the generator layer.
func NewSynthetic(spec SynthSpec) Source {
	if spec.Shape == "" {
		spec.Shape = ShapeRamp
	}
	if spec.TargetRPS == 0 {
		spec.TargetRPS = spec.StartRPS
	}
	if spec.StartRPS < 0 || spec.TargetRPS < 0 {
		panic("trace: negative RPS")
	}
	if spec.peakRPS() <= 0 {
		panic("trace: synthetic trace needs a positive StartRPS or TargetRPS")
	}
	if spec.horizon() <= 0 {
		panic("trace: synthetic trace needs Horizon or Slots*SlotDur")
	}
	if spec.Duration == nil {
		panic("trace: synthetic trace needs a duration distribution")
	}
	if spec.App == "" {
		spec.App = "synth"
	}
	r := rng.New(spec.Seed)
	return &synthSource{
		spec:    spec,
		horizon: spec.horizon(),
		arrR:    r.Split(),
		durR:    r.Split(),
	}
}

// Next implements Source.
func (s *synthSource) Next() (*task.Task, bool) {
	if s.done {
		return nil, false
	}
	if s.spec.N > 0 && s.id >= s.spec.N {
		s.done = true
		return nil, false
	}
	peak := s.spec.peakRPS() / float64(time.Second) // arrivals per ns
	for {
		s.t += s.arrR.ExpFloat64() / peak
		at := time.Duration(s.t)
		if at >= s.horizon {
			s.done = true
			return nil, false
		}
		accept := s.spec.rps(at, s.horizon) / s.spec.peakRPS()
		if s.arrR.Float64() >= accept {
			continue
		}
		d := s.spec.Duration.Sample(s.durR)
		if d <= 0 {
			d = time.Millisecond
		}
		t := task.New(s.id, simtime.Time(at), d)
		t.App = s.spec.App
		s.id++
		return t, true
	}
}

// String implements Source.
func (s *synthSource) String() string {
	return fmt.Sprintf("synth(shape=%s, rps=%g..%g, horizon=%v, dur=%s, seed=%d)",
		s.spec.Shape, s.spec.StartRPS, s.spec.TargetRPS, s.horizon, s.spec.Duration, s.spec.Seed)
}
