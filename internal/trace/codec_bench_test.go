package trace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// benchTasks builds a representative trace: interleaved apps, spread
// arrivals, a sprinkling of IO ops.
func benchTasks(n int) []*task.Task {
	apps := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	tasks := make([]*task.Task, n)
	at := time.Duration(0)
	for i := range tasks {
		at += time.Duration(1+i%7) * time.Millisecond
		t := task.New(i+1, simtime.Time(at), time.Duration(5+i%40)*time.Millisecond)
		t.App = apps[i%len(apps)]
		if i%8 == 0 {
			t.IOOps = []task.IOOp{{At: time.Millisecond, Dur: 3 * time.Millisecond}}
		}
		tasks[i] = t
	}
	return tasks
}

func benchEncode(b *testing.B, n int, write func(io.Writer, Source) (int, error)) {
	tasks := benchTasks(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := write(io.Discard, FromTasks("bench", tasks)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode(b *testing.B, n int, write func(io.Writer, Source) (int, error), open func(io.Reader) (Source, error)) {
	var buf bytes.Buffer
	if _, err := write(&buf, FromTasks("bench", benchTasks(n))); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := open(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if err := Err(src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDecodeTape measures the load-to-tape path: archival bytes to a
// replay-ready struct-of-arrays Tape, the form both codecs feed large
// replays through.
func benchDecodeTape(b *testing.B, n int, write func(io.Writer, Source) (int, error), load func(io.Reader) (*Tape, error)) {
	var buf bytes.Buffer
	if _, err := write(&buf, FromTasks("bench", benchTasks(n))); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp, err := load(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if tp.Len() != n {
			b.Fatalf("loaded %d tasks, want %d", tp.Len(), n)
		}
	}
}

func openCSV(r io.Reader) (Source, error)    { return NewCSVSource(r) }
func openBinary(r io.Reader) (Source, error) { return NewBinarySource(r) }

func loadCSVTape(r io.Reader) (*Tape, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	return TapeFrom(src)
}

func BenchmarkCSVEncode(b *testing.B)        { benchEncode(b, 8000, WriteCSV) }
func BenchmarkBinaryEncode(b *testing.B)     { benchEncode(b, 8000, WriteBinary) }
func BenchmarkCSVDecode(b *testing.B)        { benchDecode(b, 8000, WriteCSV, openCSV) }
func BenchmarkBinaryDecode(b *testing.B)     { benchDecode(b, 8000, WriteBinary, openBinary) }
func BenchmarkCSVDecodeTape(b *testing.B)    { benchDecodeTape(b, 8000, WriteCSV, loadCSVTape) }
func BenchmarkBinaryDecodeTape(b *testing.B) { benchDecodeTape(b, 8000, WriteBinary, ReadBinaryTape) }
