package trace

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// RateSpec configures an arbitrary-profile arrival source: instead of
// the fixed shape catalog in SynthSpec, the caller supplies the
// instantaneous request rate as a function of elapsed time. This is the
// substrate the richer scenario families (diurnal cycles with weekend
// dips, flash-crowd decay spikes, episodic tenant bursts) are built on.
type RateSpec struct {
	// Desc names the source for String (scenario family + knobs + seed).
	Desc string
	// Rate returns the instantaneous request rate in RPS at elapsed time
	// t in [0, Horizon). It must be non-negative and never exceed Peak.
	Rate func(t time.Duration) float64
	// Peak is the thinning envelope: an upper bound on Rate over the
	// horizon. The closer it sits to the true maximum, the fewer
	// candidate arrivals are rejected.
	Peak float64
	// Horizon is the trace's total time span.
	Horizon time.Duration
	// N caps the number of invocations (0 = until the horizon ends).
	N int
	// Duration samples each invocation's ideal duration.
	Duration dist.Distribution
	// App labels the emitted invocations (default "rate").
	App string
	// Seed drives all sampling.
	Seed uint64
}

// rateSource generates arrivals lazily by thinning a non-homogeneous
// Poisson process against the caller's rate function: candidates are
// drawn at the Peak rate and accepted with probability Rate(t)/Peak, so
// no arrival table is ever materialized — the same algorithm as the
// shape-catalog synthetic source, generalized to any profile.
type rateSource struct {
	spec RateSpec
	arrR *rng.RNG
	durR *rng.RNG
	t    float64 // elapsed ns
	id   int
	done bool
}

// NewRate builds a rate-function source. Like NewSynthetic it panics on
// an unusable spec (non-positive peak or horizon, nil rate or duration)
// because specs are programmer-provided.
func NewRate(spec RateSpec) Source {
	if spec.Rate == nil {
		panic("trace: rate source needs a Rate function")
	}
	if spec.Peak <= 0 {
		panic("trace: rate source needs a positive Peak envelope")
	}
	if spec.Horizon <= 0 {
		panic("trace: rate source needs a positive Horizon")
	}
	if spec.Duration == nil {
		panic("trace: rate source needs a duration distribution")
	}
	if spec.App == "" {
		spec.App = "rate"
	}
	if spec.Desc == "" {
		spec.Desc = fmt.Sprintf("rate(peak=%g, horizon=%v, seed=%d)", spec.Peak, spec.Horizon, spec.Seed)
	}
	r := rng.New(spec.Seed)
	return &rateSource{
		spec: spec,
		arrR: r.Split(),
		durR: r.Split(),
	}
}

// Next implements Source.
func (s *rateSource) Next() (*task.Task, bool) {
	if s.done {
		return nil, false
	}
	if s.spec.N > 0 && s.id >= s.spec.N {
		s.done = true
		return nil, false
	}
	peak := s.spec.Peak / float64(time.Second) // arrivals per ns
	for {
		s.t += s.arrR.ExpFloat64() / peak
		at := time.Duration(s.t)
		if at >= s.spec.Horizon {
			s.done = true
			return nil, false
		}
		rate := s.spec.Rate(at)
		if rate < 0 {
			rate = 0
		}
		// A rate above the envelope would silently under-sample the
		// profile; clamping keeps the draw valid while the accept ratio
		// documents the envelope as a hard bound.
		accept := rate / s.spec.Peak
		if accept > 1 {
			accept = 1
		}
		if s.arrR.Float64() >= accept {
			continue
		}
		d := s.spec.Duration.Sample(s.durR)
		if d <= 0 {
			d = time.Millisecond
		}
		t := task.New(s.id, simtime.Time(at), d)
		t.App = s.spec.App
		s.id++
		return t, true
	}
}

// String implements Source.
func (s *rateSource) String() string { return s.spec.Desc }
