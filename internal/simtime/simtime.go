// Package simtime provides the virtual clock and event queue that drive the
// discrete-event simulations in this repository.
//
// Virtual time is represented as time.Duration since simulation start,
// giving nanosecond resolution and readable formatting for free. The event
// queue is an indexed binary min-heap keyed by (time, sequence) so that
// events scheduled for the same instant fire in FIFO order, which keeps
// simulations deterministic.
//
// A Queue never advances on its own: Step (or Run/RunAll) pops the
// earliest event and moves Now to its time, so whoever calls Step owns
// the pace of time. cpusim.Engine.Run steps one queue to completion;
// the cluster layer instead interleaves many queues by always stepping
// the engine whose next event is globally earliest. Scheduling At a
// time already in the past is clamped to Now and fires on the next
// Step — the idiom for "immediate" follow-up work. Cancel is O(log n)
// and safe on already-fired events, which is what lets schedulers
// re-arm timers without bookkeeping.
//
// Event structs are pooled: once an event fires or is cancelled, its
// struct is recycled for a later At/After call, so steady-state
// simulations allocate no event memory at all. Handles are therefore
// value-type EventRefs carrying a generation counter — a ref to a
// recycled event simply stops matching, which keeps Cancel on stale
// handles a safe no-op instead of a use-after-free on someone else's
// timer.
package simtime

import "time"

// Time is virtual time since simulation start.
type Time = time.Duration

// Infinity is a sentinel virtual time later than any event a simulation
// will schedule.
const Infinity Time = 1<<63 - 1

// Event is a callback scheduled to fire at a virtual time. Event structs
// are owned and recycled by the Queue; callers hold EventRef handles.
type Event struct {
	At   Time
	Fn   func(now Time)
	seq  uint64
	idx  int // heap index; -1 when not queued
	gen  uint32
	dead bool
}

// EventRef is a value handle to a scheduled event. The zero EventRef is
// valid and refers to no event. Because event structs are recycled, a
// ref is only live while its generation matches; Cancel and Cancelled
// on a stale ref (fired, cancelled, or recycled) are safe no-ops.
type EventRef struct {
	e   *Event
	gen uint32
}

// Cancelled reports whether the referenced event is no longer pending:
// it fired, was cancelled, or its struct was recycled for a newer event.
// The zero EventRef reports false.
func (r EventRef) Cancelled() bool {
	return r.e != nil && (r.e.gen != r.gen || r.e.dead)
}

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use. Queue is not safe for concurrent use; simulations are single
// threaded by design.
type Queue struct {
	now    Time
	seq    uint64
	heap   []*Event
	free   []*Event // recycled event structs
	fired  uint64
	sched  uint64
	cancel uint64
}

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Stats returns counters of scheduled, fired, and cancelled events.
func (q *Queue) Stats() (scheduled, fired, cancelled uint64) {
	return q.sched, q.fired, q.cancel
}

// alloc takes an event struct from the free list or the heap allocator.
func (q *Queue) alloc() *Event {
	if n := len(q.free); n > 0 {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

// release returns a finished event struct to the free list, bumping its
// generation so outstanding refs to its previous life go stale.
func (q *Queue) release(e *Event) {
	e.gen++
	e.Fn = nil
	q.free = append(q.free, e)
}

// At schedules fn at absolute virtual time at. Scheduling in the past (or
// at the current instant) fires the event at the current time on the next
// Step; this is valid and used for "immediate" follow-up work. The returned
// EventRef may be passed to Cancel.
func (q *Queue) At(at Time, fn func(now Time)) EventRef {
	if at < q.now {
		at = q.now
	}
	e := q.alloc()
	e.At, e.Fn, e.seq, e.dead = at, fn, q.seq, false
	q.seq++
	q.sched++
	q.push(e)
	return EventRef{e: e, gen: e.gen}
}

// After schedules fn after delay d from the current virtual time.
func (q *Queue) After(d Time, fn func(now Time)) EventRef {
	if d < 0 {
		d = 0
	}
	return q.At(q.now+d, fn)
}

// Cancel removes a pending event. Cancelling a zero, already-fired,
// already-cancelled, or recycled ref is a no-op.
func (q *Queue) Cancel(r EventRef) {
	e := r.e
	if e == nil || e.gen != r.gen || e.dead {
		return
	}
	e.dead = true
	if e.idx >= 0 {
		q.remove(e.idx)
		q.cancel++
		q.release(e)
	}
}

// PeekTime returns the time of the next pending event, or Infinity if none.
func (q *Queue) PeekTime() Time {
	if len(q.heap) == 0 {
		return Infinity
	}
	return q.heap[0].At
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		e := q.heap[0]
		q.remove(0)
		if e.dead {
			q.release(e)
			continue
		}
		q.now = e.At
		e.dead = true
		q.fired++
		fn := e.Fn
		q.release(e)
		fn(q.now)
		return true
	}
	return false
}

// Run fires events until the queue drains or until the next event would be
// after deadline. It returns the number of events fired.
func (q *Queue) Run(deadline Time) int {
	n := 0
	for len(q.heap) > 0 && q.PeekTime() <= deadline {
		if q.Step() {
			n++
		}
	}
	if q.now < deadline && deadline < Infinity {
		q.now = deadline
	}
	return n
}

// RunAll fires events until the queue is drained and returns the count.
func (q *Queue) RunAll() int {
	n := 0
	for q.Step() {
		n++
	}
	return n
}

// less orders events by time, breaking ties by scheduling sequence so
// same-instant events fire in FIFO order.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].idx = i
	q.heap[j].idx = j
}

func (q *Queue) push(e *Event) {
	e.idx = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.idx)
}

func (q *Queue) remove(i int) {
	n := len(q.heap) - 1
	e := q.heap[i]
	if i != n {
		q.swap(i, n)
	}
	q.heap[n] = nil
	q.heap = q.heap[:n]
	e.idx = -1
	if i < n {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
