package simtime

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/rng"
)

func TestFiringOrder(t *testing.T) {
	q := &Queue{}
	var got []int
	q.At(30*time.Millisecond, func(Time) { got = append(got, 3) })
	q.At(10*time.Millisecond, func(Time) { got = append(got, 1) })
	q.At(20*time.Millisecond, func(Time) { got = append(got, 2) })
	if n := q.RunAll(); n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order %v", got)
		}
	}
	if q.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v, want 30ms", q.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	q := &Queue{}
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(time.Millisecond, func(Time) { got = append(got, i) })
	}
	q.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	q := &Queue{}
	var at Time
	q.After(5*time.Millisecond, func(now Time) {
		q.After(7*time.Millisecond, func(now2 Time) { at = now2 })
	})
	q.RunAll()
	if at != 12*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 12ms", at)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	q := &Queue{}
	var fired Time = -1
	q.After(10*time.Millisecond, func(now Time) {
		q.At(now-5*time.Millisecond, func(at Time) { fired = at })
	})
	q.RunAll()
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamp to 10ms", fired)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	q := &Queue{}
	fired := false
	q.After(-time.Second, func(Time) { fired = true })
	q.RunAll()
	if !fired || q.Now() != 0 {
		t.Fatalf("negative delay: fired=%v now=%v", fired, q.Now())
	}
}

func TestCancel(t *testing.T) {
	q := &Queue{}
	fired := 0
	e1 := q.After(time.Millisecond, func(Time) { fired++ })
	q.After(2*time.Millisecond, func(Time) { fired++ })
	q.Cancel(e1)
	if !e1.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	q.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	_, f, c := q.Stats()
	if f != 1 || c != 1 {
		t.Fatalf("stats fired=%d cancelled=%d", f, c)
	}
}

func TestCancelNilAndDouble(t *testing.T) {
	q := &Queue{}
	q.Cancel(EventRef{}) // must not panic
	e := q.After(time.Millisecond, func(Time) {})
	q.Cancel(e)
	q.Cancel(e) // double cancel must not panic
	q.RunAll()
}

func TestCancelFromWithinEvent(t *testing.T) {
	q := &Queue{}
	fired := false
	var victim EventRef
	q.After(time.Millisecond, func(Time) { q.Cancel(victim) })
	victim = q.After(2*time.Millisecond, func(Time) { fired = true })
	q.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunDeadline(t *testing.T) {
	q := &Queue{}
	fired := 0
	for i := 1; i <= 10; i++ {
		q.After(time.Duration(i)*time.Millisecond, func(Time) { fired++ })
	}
	n := q.Run(5 * time.Millisecond)
	if n != 5 || fired != 5 {
		t.Fatalf("Run(5ms) fired %d (%d), want 5", n, fired)
	}
	if q.Len() != 5 {
		t.Fatalf("pending %d, want 5", q.Len())
	}
	if q.Now() != 5*time.Millisecond {
		t.Fatalf("clock %v, want 5ms", q.Now())
	}
}

func TestPeekTime(t *testing.T) {
	q := &Queue{}
	if q.PeekTime() != Infinity {
		t.Fatal("empty queue PeekTime should be Infinity")
	}
	q.After(3*time.Millisecond, func(Time) {})
	if q.PeekTime() != 3*time.Millisecond {
		t.Fatalf("PeekTime %v, want 3ms", q.PeekTime())
	}
}

// TestHeapStress randomly schedules and cancels events and checks that
// firing times are globally non-decreasing.
func TestHeapStress(t *testing.T) {
	q := &Queue{}
	r := rng.New(7)
	var last Time = -1
	var pending []EventRef
	scheduled := 0
	for i := 0; i < 200; i++ {
		e := q.After(time.Duration(r.Intn(1000))*time.Millisecond, func(now Time) {
			if now < last {
				t.Fatalf("clock went backwards: %v < %v", now, last)
			}
			last = now
		})
		pending = append(pending, e)
		scheduled++
	}
	for q.Len() > 0 {
		// Randomly cancel, schedule, or step.
		switch r.Intn(4) {
		case 0:
			q.Cancel(pending[r.Intn(len(pending))])
		case 1:
			if scheduled < 1000 {
				e := q.After(time.Duration(r.Intn(500))*time.Millisecond, func(now Time) {
					if now < last {
						t.Fatalf("clock went backwards: %v < %v", now, last)
					}
					last = now
				})
				pending = append(pending, e)
				scheduled++
			}
		default:
			q.Step()
		}
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	q := &Queue{}
	r := rng.New(9)
	for i := 0; i < 1024; i++ {
		q.After(time.Duration(r.Intn(1_000_000)), func(Time) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(time.Duration(r.Intn(1_000_000)), func(Time) {})
		q.Step()
	}
}

// TestEventRecycling: fired and cancelled event structs are reused by
// later schedules, and stale refs to their previous lives are inert.
func TestEventRecycling(t *testing.T) {
	q := &Queue{}
	first := q.After(time.Millisecond, func(Time) {})
	q.RunAll()
	if !first.Cancelled() {
		t.Fatal("fired event's ref should report no longer pending")
	}

	// The struct backing `first` is now on the free list; the next
	// schedule reuses it. Cancelling the stale ref must not touch the
	// new event.
	fired := false
	second := q.After(time.Millisecond, func(Time) { fired = true })
	q.Cancel(first) // stale: different generation
	q.RunAll()
	if !fired {
		t.Fatal("stale Cancel killed an unrelated recycled event")
	}
	_ = second

	// Same for a cancelled (never fired) event.
	third := q.After(time.Millisecond, func(Time) {})
	q.Cancel(third)
	fired = false
	fourth := q.After(time.Millisecond, func(Time) { fired = true })
	q.Cancel(third) // stale double-cancel on a recycled struct
	q.RunAll()
	if !fired {
		t.Fatal("stale double-cancel killed a recycled event")
	}
	_ = fourth
}

// TestZeroEventRef: the zero ref is inert everywhere.
func TestZeroEventRef(t *testing.T) {
	q := &Queue{}
	var zero EventRef
	q.Cancel(zero) // must not panic
	if zero.Cancelled() {
		t.Fatal("zero ref must not report cancelled")
	}
}

// BenchmarkScheduleFireAllocs verifies the steady-state schedule/fire
// cycle runs allocation-free thanks to event recycling.
func BenchmarkScheduleFireAllocs(b *testing.B) {
	q := &Queue{}
	fn := func(Time) {}
	for i := 0; i < 64; i++ {
		q.After(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(time.Duration(i%1000), fn)
		q.Step()
	}
}
