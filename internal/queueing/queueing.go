// Package queueing implements the M/G/c quantities SFS's time-slice
// heuristic is derived from (§V-C of the paper) plus Erlang-C and
// Little's-law helpers used to validate simulator output.
//
// The paper models the FILTER pool as a multi-server queueing system with
// per-core traffic intensity rho = lambda / (c * mu); SFS bounds rho by
// capping the FILTER service time at S = meanIAT * c.
//
// Two roles in the repository:
//
//   - Calibration: IATForLoad inverts the load definition to compute
//     the mean inter-arrival time that offers a target utilization to c
//     cores — every workload generator's Load knob goes through it.
//   - Validation: ErlangC / expected-wait formulas give closed-form
//     steady-state answers an M/M/c simulation must converge to, which
//     the cpusim validation tests check.
//
// All formulas return ErrUnstable rather than a number once rho >= 1,
// because steady-state waiting time is unbounded there; callers probing
// the saturated regime (deliberately, in overload experiments) must
// treat that as a regime marker, not a failure.
package queueing

import (
	"errors"
	"math"
	"time"
)

// ErrUnstable is returned by delay formulas when the system is saturated
// (rho >= 1) and steady-state waiting time is unbounded.
var ErrUnstable = errors.New("queueing: system unstable (rho >= 1)")

// TrafficIntensity returns rho = lambda/(c*mu) for arrival rate lambda
// (requests/sec), per-core service rate mu (requests/sec), and c cores.
// It panics on non-positive mu or c.
func TrafficIntensity(lambda, mu float64, c int) float64 {
	if mu <= 0 {
		panic("queueing: service rate must be positive")
	}
	if c <= 0 {
		panic("queueing: need at least one core")
	}
	return lambda / (float64(c) * mu)
}

// IntensityFromIAT computes rho from a mean inter-arrival time and a mean
// service time: lambda = 1/meanIAT, mu = 1/meanService.
func IntensityFromIAT(meanIAT, meanService time.Duration, c int) float64 {
	if meanIAT <= 0 {
		return math.Inf(1)
	}
	lambda := 1 / meanIAT.Seconds()
	mu := 1 / meanService.Seconds()
	return TrafficIntensity(lambda, mu, c)
}

// FilterSlice computes SFS's time-slice parameter S = meanIAT * c (§V-C):
// the cap on FILTER-mode execution that bounds the FILTER pool's traffic
// intensity near one.
func FilterSlice(meanIAT time.Duration, c int) time.Duration {
	if meanIAT < 0 {
		meanIAT = 0
	}
	return meanIAT * time.Duration(c)
}

// ErlangC returns the probability that an arriving request must queue in
// an M/M/c system with offered load a = lambda/mu and c servers.
func ErlangC(a float64, c int) (float64, error) {
	if c <= 0 {
		panic("queueing: need at least one server")
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 0, ErrUnstable
	}
	// Compute iteratively to avoid factorial overflow.
	// inv = sum_{k=0}^{c-1} (c! / k!) * a^(k-c) -- folded incrementally.
	term := 1.0 // a^k / k! relative accumulator
	sum := 1.0
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	last := term * a / float64(c) // a^c / c!
	pWait := (last / (1 - rho)) / (sum + last/(1-rho))
	return pWait, nil
}

// MMcWait returns the mean waiting time (time in queue, excluding service)
// of an M/M/c system.
func MMcWait(lambda, mu float64, c int) (time.Duration, error) {
	rho := TrafficIntensity(lambda, mu, c)
	if rho >= 1 {
		return 0, ErrUnstable
	}
	pw, err := ErlangC(lambda/mu, c)
	if err != nil {
		return 0, err
	}
	wq := pw / (float64(c)*mu - lambda) // seconds
	return time.Duration(wq * float64(time.Second)), nil
}

// MG1Wait returns the Pollaczek-Khinchine mean waiting time of an M/G/1
// queue with arrival rate lambda, mean service time es (seconds), and
// service-time second moment es2 (seconds^2).
func MG1Wait(lambda, es, es2 float64) (time.Duration, error) {
	rho := lambda * es
	if rho >= 1 {
		return 0, ErrUnstable
	}
	wq := lambda * es2 / (2 * (1 - rho))
	return time.Duration(wq * float64(time.Second)), nil
}

// LittlesLaw returns L = lambda * W, the expected number in system for
// arrival rate lambda (1/sec) and mean time in system W.
func LittlesLaw(lambda float64, w time.Duration) float64 {
	return lambda * w.Seconds()
}

// OfferedLoad returns the average CPU utilization fraction a workload
// offers to c cores: (mean service time / mean IAT) / c. The paper's load
// levels (50%..100%) are defined this way.
func OfferedLoad(meanService, meanIAT time.Duration, c int) float64 {
	if meanIAT <= 0 || c <= 0 {
		return math.Inf(1)
	}
	return float64(meanService) / float64(meanIAT) / float64(c)
}

// IATForLoad returns the mean IAT that makes a workload with the given
// mean service time offer `load` (fraction, e.g. 0.8) to c cores. This is
// how experiments sweep load levels, mirroring the paper's proportional
// IAT adjustment (§VIII-A).
func IATForLoad(meanService time.Duration, c int, load float64) time.Duration {
	if load <= 0 || c <= 0 {
		panic("queueing: load and cores must be positive")
	}
	return time.Duration(float64(meanService) / (load * float64(c)))
}
