package queueing

import (
	"math"
	"testing"
	"time"
)

func TestTrafficIntensity(t *testing.T) {
	if rho := TrafficIntensity(8, 1, 10); rho != 0.8 {
		t.Fatalf("rho = %v, want 0.8", rho)
	}
	if rho := TrafficIntensity(20, 1, 10); rho != 2 {
		t.Fatalf("rho = %v, want 2", rho)
	}
}

func TestTrafficIntensityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero mu")
		}
	}()
	TrafficIntensity(1, 0, 1)
}

func TestIntensityFromIAT(t *testing.T) {
	// 100ms service, 50ms IAT, 4 cores: lambda=20/s, mu=10/s, rho=0.5
	rho := IntensityFromIAT(50*time.Millisecond, 100*time.Millisecond, 4)
	if math.Abs(rho-0.5) > 1e-9 {
		t.Fatalf("rho = %v, want 0.5", rho)
	}
	if !math.IsInf(IntensityFromIAT(0, time.Second, 1), 1) {
		t.Fatal("zero IAT should give infinite intensity")
	}
}

func TestFilterSlice(t *testing.T) {
	// The paper's S = meanIAT * c rule (§V-C).
	if s := FilterSlice(10*time.Millisecond, 12); s != 120*time.Millisecond {
		t.Fatalf("S = %v, want 120ms", s)
	}
	if s := FilterSlice(-time.Second, 4); s != 0 {
		t.Fatalf("negative IAT should clamp: %v", s)
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: P(wait) = rho.
	p, err := ErlangC(0.5, 1)
	if err != nil || math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("M/M/1 ErlangC = %v (%v), want 0.5", p, err)
	}
	// M/M/2 with a=1 (rho=0.5): C = 1/3.
	p, err = ErlangC(1, 2)
	if err != nil || math.Abs(p-1.0/3.0) > 1e-9 {
		t.Fatalf("M/M/2 ErlangC = %v (%v), want 1/3", p, err)
	}
}

func TestErlangCUnstable(t *testing.T) {
	if _, err := ErlangC(2, 2); err != ErrUnstable {
		t.Fatalf("expected ErrUnstable, got %v", err)
	}
}

func TestMMcWait(t *testing.T) {
	// M/M/1 with lambda=1, mu=2: Wq = rho/(mu-lambda) = 0.5/1 = 0.5s.
	w, err := MMcWait(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Seconds()-0.5) > 1e-9 {
		t.Fatalf("Wq = %v, want 500ms", w)
	}
	if _, err := MMcWait(3, 1, 2); err != ErrUnstable {
		t.Fatal("saturated M/M/c should be unstable")
	}
}

func TestMG1Wait(t *testing.T) {
	// M/D/1 (deterministic service): es2 = es^2.
	// lambda=1, es=0.5 => rho=0.5, Wq = 1*0.25/(2*0.5) = 0.25s.
	w, err := MG1Wait(1, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Seconds()-0.25) > 1e-9 {
		t.Fatalf("Wq = %v, want 250ms", w)
	}
	// M/M/1 via P-K: es2 = 2*es^2 doubles the deterministic wait.
	w2, err := MG1Wait(1, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2.Seconds()-0.5) > 1e-9 {
		t.Fatalf("M/M/1 Wq = %v, want 500ms", w2)
	}
	if _, err := MG1Wait(3, 0.5, 0.25); err != ErrUnstable {
		t.Fatal("rho>1 should be unstable")
	}
}

func TestLittlesLaw(t *testing.T) {
	if l := LittlesLaw(2, 3*time.Second); l != 6 {
		t.Fatalf("L = %v, want 6", l)
	}
}

func TestOfferedLoadAndInverse(t *testing.T) {
	// meanService 800ms, 8 cores, want load 1.0 -> IAT 100ms.
	iat := IATForLoad(800*time.Millisecond, 8, 1.0)
	if iat != 100*time.Millisecond {
		t.Fatalf("IAT = %v, want 100ms", iat)
	}
	if l := OfferedLoad(800*time.Millisecond, iat, 8); math.Abs(l-1.0) > 1e-9 {
		t.Fatalf("round-trip load = %v, want 1.0", l)
	}
	// Lower load stretches the IAT proportionally.
	if iat50 := IATForLoad(800*time.Millisecond, 8, 0.5); iat50 != 200*time.Millisecond {
		t.Fatalf("IAT at 50%% = %v, want 200ms", iat50)
	}
	if !math.IsInf(OfferedLoad(time.Second, 0, 1), 1) {
		t.Fatal("zero IAT should be infinite load")
	}
}
