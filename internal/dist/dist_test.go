package dist

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/rng"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// sampleMean draws n values and returns the empirical mean.
func sampleMean(d Distribution, n int, seed uint64) time.Duration {
	r := rng.New(seed)
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / time.Duration(n)
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: ms(10), Hi: ms(100)}
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < ms(10) || v >= ms(100) {
			t.Fatalf("sample %v outside [10ms,100ms)", v)
		}
	}
	if u.Mean() != ms(55) {
		t.Fatalf("mean %v, want 55ms", u.Mean())
	}
	got := sampleMean(u, 50000, 2)
	if math.Abs(float64(got-u.Mean()))/float64(u.Mean()) > 0.02 {
		t.Fatalf("empirical mean %v far from analytic %v", got, u.Mean())
	}
	// Degenerate range collapses to Lo.
	if (Uniform{Lo: ms(5), Hi: ms(5)}).Sample(r) != ms(5) {
		t.Fatal("degenerate uniform should return Lo")
	}
}

func TestConstant(t *testing.T) {
	c := Constant{Value: ms(42)}
	if c.Sample(nil) != ms(42) || c.Mean() != ms(42) {
		t.Fatal("constant must always return Value")
	}
}

func TestLognormal(t *testing.T) {
	// Median 100ms, sigma 0.5.
	l := Lognormal{Mu: math.Log(float64(ms(100))), Sigma: 0.5}
	r := rng.New(3)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if l.Sample(r) < ms(100) {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("median check: %.3f below exp(Mu), want 0.5", frac)
	}
	wantMean := time.Duration(float64(ms(100)) * math.Exp(0.125))
	if got := l.Mean(); math.Abs(float64(got-wantMean))/float64(wantMean) > 1e-9 {
		t.Fatalf("analytic mean %v, want %v", got, wantMean)
	}
	got := sampleMean(l, 200000, 4)
	if math.Abs(float64(got-wantMean))/float64(wantMean) > 0.02 {
		t.Fatalf("empirical mean %v far from analytic %v", got, wantMean)
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		Mode{Weight: 3, Dist: Constant{Value: ms(1)}},
		Mode{Weight: 1, Dist: Constant{Value: ms(100)}},
	)
	r := rng.New(5)
	short := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(r) == ms(1) {
			short++
		}
	}
	if frac := float64(short) / n; math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("mode selection %.3f, want 0.75", frac)
	}
	// Weighted mean: (3*1 + 1*100)/4 = 25.75ms.
	if got, want := m.Mean(), time.Duration(25.75*float64(ms(1))); got != want {
		t.Fatalf("mixture mean %v, want %v", got, want)
	}
}

func TestMixtureZeroWeightModeNeverSampled(t *testing.T) {
	m := NewMixture(
		Mode{Weight: 0, Dist: Constant{Value: ms(999)}},
		Mode{Weight: 1, Dist: Constant{Value: ms(1)}},
	)
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		if m.Sample(r) != ms(1) {
			t.Fatal("zero-weight mode sampled")
		}
	}
}

func TestMixturePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no modes":        func() { NewMixture() },
		"zero total":      func() { NewMixture(Mode{Weight: 0, Dist: Constant{}}) },
		"negative weight": func() { NewMixture(Mode{Weight: -1, Dist: Constant{}}) },
		"nil dist":        func() { NewMixture(Mode{Weight: 1, Dist: nil}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPoissonProcess(t *testing.T) {
	p := PoissonProcess{Mean: ms(20)}
	r := rng.New(7)
	var sum time.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		iat := p.NextIAT(r)
		if iat < 0 {
			t.Fatal("negative IAT")
		}
		sum += iat
	}
	got := sum / time.Duration(n)
	if math.Abs(float64(got-ms(20)))/float64(ms(20)) > 0.02 {
		t.Fatalf("mean IAT %v, want ~20ms", got)
	}
}

func TestTraceProcessReplaysAndCycles(t *testing.T) {
	tp := NewTraceProcess([]time.Duration{ms(1), ms(2), ms(3)})
	if tp.Len() != 3 {
		t.Fatalf("len %d", tp.Len())
	}
	want := []time.Duration{ms(1), ms(2), ms(3), ms(1), ms(2)}
	for i, w := range want {
		if got := tp.NextIAT(nil); got != w {
			t.Fatalf("IAT %d = %v, want %v", i, got, w)
		}
	}
	empty := NewTraceProcess(nil)
	if empty.NextIAT(nil) != 0 {
		t.Fatal("empty trace should return 0")
	}
}

func TestDeterminism(t *testing.T) {
	m := NewMixture(
		Mode{Weight: 0.4, Dist: Uniform{Lo: 0, Hi: ms(50)}},
		Mode{Weight: 0.6, Dist: Lognormal{Mu: math.Log(float64(ms(10))), Sigma: 1}},
	)
	a, b := rng.New(9), rng.New(9)
	for i := 0; i < 1000; i++ {
		if m.Sample(a) != m.Sample(b) {
			t.Fatal("same-seed sampling diverged")
		}
	}
}

func TestStrings(t *testing.T) {
	// Provenance strings must be non-empty and stable enough to embed in
	// workload descriptions.
	for _, d := range []Distribution{
		Uniform{Lo: 0, Hi: ms(50)},
		Constant{Value: ms(1)},
		Lognormal{Mu: math.Log(float64(ms(10))), Sigma: 1},
		NewMixture(Mode{Weight: 1, Dist: Constant{Value: ms(1)}}),
	} {
		if d.String() == "" {
			t.Errorf("%T: empty String()", d)
		}
	}
	if (PoissonProcess{Mean: ms(5)}).String() == "" || NewTraceProcess(nil).String() == "" {
		t.Error("arrival processes need String()")
	}
}
