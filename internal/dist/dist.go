// Package dist provides the probability distributions and arrival
// processes that parameterize workload generation: duration
// distributions (uniform, lognormal, constant, and weighted mixtures,
// the building blocks of the paper's Table I and the Azure duration
// population) and inter-arrival-time processes (Poisson and recorded
// traces).
//
// Every distribution exposes an analytic Mean so that arrival processes
// can be calibrated to a target offered load without materializing a
// probe sample first — the property the streaming trace pipeline in
// internal/trace depends on.
package dist

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/rng"
)

// Distribution samples durations. Implementations must be deterministic
// functions of the supplied RNG stream, so that a seeded generator
// replays identically.
type Distribution interface {
	// Sample draws one value.
	Sample(r *rng.RNG) time.Duration
	// Mean returns the analytic expectation.
	Mean() time.Duration
	// String describes the distribution for workload provenance lines.
	String() string
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Distribution.
func (u Uniform) Sample(r *rng.RNG) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Float64()*float64(u.Hi-u.Lo))
}

// Mean implements Distribution.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// String implements Distribution.
func (u Uniform) String() string { return fmt.Sprintf("uniform[%v,%v)", u.Lo, u.Hi) }

// Constant is the degenerate distribution that always returns Value.
type Constant struct {
	Value time.Duration
}

// Sample implements Distribution.
func (c Constant) Sample(*rng.RNG) time.Duration { return c.Value }

// Mean implements Distribution.
func (c Constant) Mean() time.Duration { return c.Value }

// String implements Distribution.
func (c Constant) String() string { return fmt.Sprintf("const(%v)", c.Value) }

// Lognormal is the log-normal distribution: exp(N(Mu, Sigma^2)), with Mu
// in log-nanoseconds (the median is exp(Mu) nanoseconds).
type Lognormal struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (l Lognormal) Sample(r *rng.RNG) time.Duration {
	return time.Duration(math.Exp(l.Mu + l.Sigma*r.NormFloat64()))
}

// Mean implements Distribution.
func (l Lognormal) Mean() time.Duration {
	return time.Duration(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}

// String implements Distribution.
func (l Lognormal) String() string {
	return fmt.Sprintf("lognormal(median=%v,sigma=%.2f)", time.Duration(math.Exp(l.Mu)), l.Sigma)
}

// Mode is one weighted component of a Mixture.
type Mode struct {
	Weight float64
	Dist   Distribution
}

// Mixture is a weighted mixture of distributions. Weights need not sum
// to one; sampling normalizes by the total weight (the paper's Table I
// rows sum to 95.6% because sub-1% gaps are dropped).
type Mixture struct {
	modes []Mode
	total float64
}

// NewMixture builds a mixture from modes. It panics if no mode has
// positive weight or a positively-weighted mode has a nil distribution.
func NewMixture(modes ...Mode) Mixture {
	m := Mixture{modes: append([]Mode(nil), modes...)}
	for _, mode := range m.modes {
		if mode.Weight < 0 {
			panic("dist: negative mixture weight")
		}
		if mode.Weight > 0 && mode.Dist == nil {
			panic("dist: weighted mixture mode with nil distribution")
		}
		m.total += mode.Weight
	}
	if m.total <= 0 {
		panic("dist: mixture needs at least one positively weighted mode")
	}
	return m
}

// Modes returns the mixture's components.
func (m Mixture) Modes() []Mode { return append([]Mode(nil), m.modes...) }

// Sample implements Distribution: pick a mode with probability
// proportional to its weight, then sample it.
func (m Mixture) Sample(r *rng.RNG) time.Duration {
	u := r.Float64() * m.total
	for _, mode := range m.modes {
		if mode.Weight == 0 {
			continue
		}
		if u < mode.Weight {
			return mode.Dist.Sample(r)
		}
		u -= mode.Weight
	}
	// Floating-point slack: fall through to the last weighted mode.
	for i := len(m.modes) - 1; i >= 0; i-- {
		if m.modes[i].Weight > 0 {
			return m.modes[i].Dist.Sample(r)
		}
	}
	panic("dist: unreachable: mixture has no weighted mode")
}

// Mean implements Distribution.
func (m Mixture) Mean() time.Duration {
	var sum float64
	for _, mode := range m.modes {
		if mode.Weight > 0 {
			sum += mode.Weight * float64(mode.Dist.Mean())
		}
	}
	return time.Duration(sum / m.total)
}

// String implements Distribution.
func (m Mixture) String() string {
	var b strings.Builder
	b.WriteString("mixture(")
	for i, mode := range m.modes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.3f:%s", mode.Weight/m.total, mode.Dist)
	}
	b.WriteByte(')')
	return b.String()
}

// ArrivalProcess generates inter-arrival times. Like Distribution,
// implementations must be deterministic in the RNG stream.
type ArrivalProcess interface {
	// NextIAT returns the time between the previous arrival and the next.
	NextIAT(r *rng.RNG) time.Duration
	// String describes the process for workload provenance lines.
	String() string
}

// PoissonProcess generates exponentially distributed IATs with the given
// mean — the memoryless arrival model of the paper's standalone
// evaluation (§VIII-A).
type PoissonProcess struct {
	Mean time.Duration
}

// NextIAT implements ArrivalProcess.
func (p PoissonProcess) NextIAT(r *rng.RNG) time.Duration {
	return time.Duration(float64(p.Mean) * r.ExpFloat64())
}

// String implements ArrivalProcess.
func (p PoissonProcess) String() string { return fmt.Sprintf("poisson(mean=%v)", p.Mean) }

// TraceProcess replays a recorded IAT sequence, cycling when the
// sequence is exhausted so a short trace can drive an arbitrarily long
// generation run.
type TraceProcess struct {
	iats []time.Duration
	pos  int
}

// NewTraceProcess builds a replaying arrival process over iats. The
// slice is not copied; callers must not mutate it afterwards.
func NewTraceProcess(iats []time.Duration) *TraceProcess {
	return &TraceProcess{iats: iats}
}

// Len returns the number of recorded IATs.
func (t *TraceProcess) Len() int { return len(t.iats) }

// NextIAT implements ArrivalProcess, replaying the recorded sequence in
// order and wrapping around at the end. It draws nothing from r.
func (t *TraceProcess) NextIAT(*rng.RNG) time.Duration {
	if len(t.iats) == 0 {
		return 0
	}
	iat := t.iats[t.pos]
	t.pos = (t.pos + 1) % len(t.iats)
	return iat
}

// String implements ArrivalProcess.
func (t *TraceProcess) String() string { return fmt.Sprintf("trace(n=%d)", len(t.iats)) }
