package task

import (
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
)

// arenaBlock is the number of Task structs (and IOOp payloads) per
// arena block. Large enough that block allocation is amortized away,
// small enough that a mostly-unused arena stays cheap.
const arenaBlock = 4096

// Arena block-allocates Task structs and IOOp payloads. Million-task
// simulations materialize their workload through an arena so the hot
// loops walk a handful of large contiguous blocks instead of chasing
// one heap object per invocation, and re-materializing the same trace
// for the next run (Reset) costs zero allocations once the blocks
// exist.
//
// An Arena is not safe for concurrent use. Reset invalidates every
// task previously handed out: callers must drop all references to a
// generation before starting the next one.
type Arena struct {
	taskBlocks [][]Task
	ioBlocks   [][]IOOp
	ti, tn     int // current task block / used entries within it
	ii, in     int // current IOOp block / used entries within it
	total      int
}

// NewArena returns an empty arena. Blocks are allocated lazily on
// first use.
func NewArena() *Arena { return &Arena{} }

// New allocates one task from the arena, initialized exactly as
// task.New initializes it.
func (a *Arena) New(id int, arrival simtime.Time, service time.Duration) *Task {
	if a.ti >= len(a.taskBlocks) {
		a.taskBlocks = append(a.taskBlocks, make([]Task, arenaBlock))
	}
	t := &a.taskBlocks[a.ti][a.tn]
	if a.tn++; a.tn == arenaBlock {
		a.ti++
		a.tn = 0
	}
	*t = Task{
		ID:       id,
		Arrival:  arrival,
		Service:  service,
		Weight:   DefaultWeight,
		Start:    -1,
		Finish:   -1,
		lastCore: -1,
	}
	a.total++
	return t
}

// IO allocates a zeroed IOOp slice of length n from the arena (full
// capacity n, so appends never bleed into a neighbor). Requests larger
// than one block fall back to a plain allocation rather than
// fragmenting the block chain.
func (a *Arena) IO(n int) []IOOp {
	if n <= 0 {
		return nil
	}
	if n > arenaBlock {
		return make([]IOOp, n)
	}
	if a.ii < len(a.ioBlocks) && arenaBlock-a.in < n {
		a.ii++
		a.in = 0
	}
	if a.ii >= len(a.ioBlocks) {
		a.ioBlocks = append(a.ioBlocks, make([]IOOp, arenaBlock))
	}
	s := a.ioBlocks[a.ii][a.in : a.in+n : a.in+n]
	a.in += n
	for i := range s {
		s[i] = IOOp{}
	}
	return s
}

// Len returns the number of tasks allocated since construction or the
// last Reset.
func (a *Arena) Len() int { return a.total }

// Reset rewinds the arena for reuse, retaining every block it has
// allocated. All previously returned tasks and IOOp slices become
// invalid: the next generation will overwrite them in place.
func (a *Arena) Reset() {
	a.ti, a.tn, a.ii, a.in, a.total = 0, 0, 0, 0, 0
}
