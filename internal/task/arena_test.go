package task

import (
	"testing"
	"time"
)

func TestArenaMatchesNew(t *testing.T) {
	a := NewArena()
	got := a.New(7, 3*time.Millisecond, 5*time.Millisecond)
	want := New(7, 3*time.Millisecond, 5*time.Millisecond)
	if got.ID != want.ID || got.Arrival != want.Arrival || got.Service != want.Service ||
		got.Weight != want.Weight || got.Start != want.Start || got.Finish != want.Finish ||
		got.LastCore() != want.LastCore() {
		t.Fatalf("arena task = %+v, want %+v", got, want)
	}
}

func TestArenaCrossesBlocks(t *testing.T) {
	a := NewArena()
	n := arenaBlock*2 + 17
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = a.New(i, time.Duration(i), time.Millisecond)
	}
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	for i, tk := range tasks {
		if tk.ID != i || tk.Arrival != time.Duration(i) {
			t.Fatalf("task %d corrupted after later allocations: %+v", i, tk)
		}
	}
}

func TestArenaIO(t *testing.T) {
	a := NewArena()
	s1 := a.IO(3)
	s1[0] = IOOp{At: time.Millisecond, Dur: time.Second}
	s2 := a.IO(2)
	if len(s1) != 3 || cap(s1) != 3 || len(s2) != 2 {
		t.Fatalf("bad slice shapes: len/cap %d/%d, %d", len(s1), cap(s1), len(s2))
	}
	// Appending past capacity must not clobber the neighbor slice.
	_ = append(s1, IOOp{Dur: time.Hour})
	if s2[0] != (IOOp{}) {
		t.Fatalf("append to earlier slice corrupted later slice: %+v", s2[0])
	}
	if got := a.IO(0); got != nil {
		t.Fatalf("IO(0) = %v, want nil", got)
	}
	if got := a.IO(arenaBlock + 1); len(got) != arenaBlock+1 {
		t.Fatalf("oversized IO request: len %d", len(got))
	}
	// Force a block boundary: request more than remains in the block.
	a.IO(arenaBlock - 7)
	s3 := a.IO(16)
	if len(s3) != 16 {
		t.Fatalf("post-boundary IO: len %d", len(s3))
	}
}

func TestArenaReset(t *testing.T) {
	a := NewArena()
	first := a.New(1, 0, time.Millisecond)
	io := a.IO(2)
	io[0] = IOOp{Dur: time.Second}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len after Reset = %d", a.Len())
	}
	second := a.New(2, time.Millisecond, time.Millisecond)
	if first != second {
		t.Fatalf("Reset did not reuse the first slot")
	}
	io2 := a.IO(2)
	if io2[0] != (IOOp{}) {
		t.Fatalf("IO slice not zeroed after Reset: %+v", io2[0])
	}
}
