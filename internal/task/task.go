// Package task defines the unit of work scheduled by every scheduler in
// this repository: a function invocation with a CPU demand, optional I/O
// operations, and full lifecycle accounting (waiting time, context
// switches, run-time effectiveness).
package task

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
)

// State is the kernel-level lifecycle state of a task, mirroring the
// process states SFS polls via gopsutil in the paper (§V-D).
type State int

// Task states.
const (
	StateNew      State = iota // created, not yet arrived
	StateRunnable              // waiting in a runqueue
	StateRunning               // executing on a core
	StateSleeping              // blocked on I/O
	StateFinished              // returned
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateFinished:
		return "finished"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// IOOp is a blocking I/O operation that begins once the task has consumed
// At of CPU time and lasts Dur of wall-clock time.
type IOOp struct {
	At  time.Duration // cumulative CPU time at which the op starts
	Dur time.Duration // wall-clock duration of the operation
}

// DefaultWeight is the CFS load weight of a nice-0 task.
const DefaultWeight = 1024

// Task is one function invocation request.
//
// Scheduling fields (VRuntime, SchedData, SliceLeft, Mode) are owned by
// whichever scheduler the task runs under; the engine never touches them.
type Task struct {
	ID      int
	App     string // function application name, e.g. "fib26", "md", "sa"
	Arrival simtime.Time
	Service time.Duration // total CPU demand
	IOOps   []IOOp        // sorted ascending by At; At values must be <= Service
	Weight  int           // CFS load weight; DefaultWeight if zero

	// --- engine accounting ---
	State        State
	CPUUsed      time.Duration // CPU time consumed so far
	IOTime       time.Duration // wall time spent blocked
	WaitTime     time.Duration // time spent runnable but not running
	Start        simtime.Time  // first time on a core (-1 before that)
	Finish       simtime.Time  // completion time (-1 before that)
	CtxSwitches  int           // involuntary preemptions where another task took over
	Dispatches   int           // times placed on a core
	Migrations   int           // dispatches on a different core than last time
	nextIO       int           // index of next pending IOOp
	lastReady    simtime.Time  // when the task last became runnable
	lastCore     int           // core of previous dispatch (-1 initially)
	wokeAt       simtime.Time  // when the task last woke from sleep
	EnqueuedSFS  simtime.Time  // SFS global-queue enqueue time (scheduler-owned)
	QueueDelay   time.Duration // initial global-queue delay observed by SFS
	DemotedToCFS bool          // true once a FILTER task is demoted (SFS only)

	// --- scheduler-owned scratch ---
	VRuntime  time.Duration // CFS virtual runtime
	SliceLeft time.Duration // SFS: remaining FILTER slice budget
	SchedData any           // arbitrary per-scheduler state
}

// New constructs a task with the mandatory fields set and accounting
// initialized.
func New(id int, arrival simtime.Time, service time.Duration) *Task {
	return &Task{
		ID:       id,
		Arrival:  arrival,
		Service:  service,
		Weight:   DefaultWeight,
		Start:    -1,
		Finish:   -1,
		lastCore: -1,
	}
}

// WithIO appends an I/O op and returns the task for chaining. Ops must be
// added in ascending At order.
func (t *Task) WithIO(at, dur time.Duration) *Task {
	if n := len(t.IOOps); n > 0 && t.IOOps[n-1].At > at {
		panic("task: IO ops must be added in ascending At order")
	}
	t.IOOps = append(t.IOOps, IOOp{At: at, Dur: dur})
	return t
}

// NextIO returns the next pending I/O op, or nil if none remain.
func (t *Task) NextIO() *IOOp {
	if t.nextIO >= len(t.IOOps) {
		return nil
	}
	return &t.IOOps[t.nextIO]
}

// PopIO consumes the next pending I/O op.
func (t *Task) PopIO() { t.nextIO++ }

// Remaining returns the CPU time the task still needs.
func (t *Task) Remaining() time.Duration { return t.Service - t.CPUUsed }

// TotalIO returns the sum of all I/O op durations.
func (t *Task) TotalIO() time.Duration {
	var sum time.Duration
	for _, op := range t.IOOps {
		sum += op.Dur
	}
	return sum
}

// IdealDuration is the turnaround the task would see on an uncontended
// machine: all CPU plus all I/O, no waiting. This is the paper's IDEAL
// baseline.
func (t *Task) IdealDuration() time.Duration { return t.Service + t.TotalIO() }

// Turnaround returns Finish-Arrival, or -1 if unfinished.
func (t *Task) Turnaround() time.Duration {
	if t.Finish < 0 {
		return -1
	}
	return t.Finish - t.Arrival
}

// RTE is the paper's run-time effectiveness metric (§III): the ratio of
// the function's service time (aggregate CPU time under zero interference)
// to its end-to-end turnaround time. 1.0 is optimal for pure-CPU tasks;
// tasks with I/O have a best case of Service/(Service+IO).
func (t *Task) RTE() float64 {
	ta := t.Turnaround()
	if ta <= 0 {
		return 0
	}
	return float64(t.Service) / float64(ta)
}

// MarkReady records that the task became runnable at now (arrival, wake,
// or preemption); waiting time accrues from this instant.
func (t *Task) MarkReady(now simtime.Time) {
	t.State = StateRunnable
	t.lastReady = now
}

// MarkRunning records dispatch on a core, accruing waiting time.
func (t *Task) MarkRunning(now simtime.Time, core int) {
	if t.Start < 0 {
		t.Start = now
	}
	t.WaitTime += now - t.lastReady
	if t.lastCore >= 0 && t.lastCore != core {
		t.Migrations++
	}
	t.lastCore = core
	t.Dispatches++
	t.State = StateRunning
}

// MarkSleeping records an I/O block beginning at now.
func (t *Task) MarkSleeping(now simtime.Time) {
	t.State = StateSleeping
	t.wokeAt = -1
	_ = now
}

// MarkWoken records the end of an I/O block of duration d at now.
func (t *Task) MarkWoken(now simtime.Time, d time.Duration) {
	t.IOTime += d
	t.wokeAt = now
	t.MarkReady(now)
}

// MarkFinished finalizes the task at now.
func (t *Task) MarkFinished(now simtime.Time) {
	t.State = StateFinished
	t.Finish = now
}

// LastCore returns the core of the task's most recent dispatch, or -1.
func (t *Task) LastCore() int { return t.lastCore }

// Validate checks structural invariants of the task definition, returning
// an error describing the first violation.
func (t *Task) Validate() error {
	if t.Service <= 0 {
		return fmt.Errorf("task %d: non-positive service time %v", t.ID, t.Service)
	}
	if t.Arrival < 0 {
		return fmt.Errorf("task %d: negative arrival %v", t.ID, t.Arrival)
	}
	prev := time.Duration(-1)
	for i, op := range t.IOOps {
		if op.At < 0 || op.At > t.Service {
			return fmt.Errorf("task %d: IO op %d at %v outside service interval [0,%v]", t.ID, i, op.At, t.Service)
		}
		if op.Dur < 0 {
			return fmt.Errorf("task %d: IO op %d negative duration %v", t.ID, i, op.Dur)
		}
		if op.At < prev {
			return fmt.Errorf("task %d: IO ops out of order at index %d", t.ID, i)
		}
		prev = op.At
	}
	return nil
}

// String implements fmt.Stringer.
func (t *Task) String() string {
	return fmt.Sprintf("task{id=%d app=%s arr=%v svc=%v io=%d}", t.ID, t.App, t.Arrival, t.Service, len(t.IOOps))
}
