package task

import (
	"testing"
	"time"
)

func TestNewDefaults(t *testing.T) {
	tk := New(7, 100*time.Millisecond, 50*time.Millisecond)
	if tk.ID != 7 || tk.Arrival != 100*time.Millisecond || tk.Service != 50*time.Millisecond {
		t.Fatal("constructor fields wrong")
	}
	if tk.Weight != DefaultWeight {
		t.Fatalf("weight %d", tk.Weight)
	}
	if tk.Start != -1 || tk.Finish != -1 || tk.LastCore() != -1 {
		t.Fatal("sentinels not initialized")
	}
	if tk.State != StateNew {
		t.Fatalf("state %v", tk.State)
	}
}

func TestIOOpsOrderingEnforced(t *testing.T) {
	tk := New(1, 0, 100*time.Millisecond)
	tk.WithIO(10*time.Millisecond, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order WithIO did not panic")
		}
	}()
	tk.WithIO(5*time.Millisecond, time.Millisecond)
}

func TestIOIteration(t *testing.T) {
	tk := New(1, 0, 100*time.Millisecond).
		WithIO(0, 5*time.Millisecond).
		WithIO(50*time.Millisecond, 10*time.Millisecond)
	io := tk.NextIO()
	if io == nil || io.At != 0 {
		t.Fatalf("first op %+v", io)
	}
	tk.PopIO()
	io = tk.NextIO()
	if io == nil || io.At != 50*time.Millisecond {
		t.Fatalf("second op %+v", io)
	}
	tk.PopIO()
	if tk.NextIO() != nil {
		t.Fatal("ops not exhausted")
	}
	if tk.TotalIO() != 15*time.Millisecond {
		t.Fatalf("total IO %v", tk.TotalIO())
	}
	if tk.IdealDuration() != 115*time.Millisecond {
		t.Fatalf("ideal %v", tk.IdealDuration())
	}
}

func TestLifecycleAccounting(t *testing.T) {
	tk := New(1, 10*time.Millisecond, 30*time.Millisecond)
	tk.MarkReady(10 * time.Millisecond)
	tk.MarkRunning(25*time.Millisecond, 0) // waited 15ms
	if tk.WaitTime != 15*time.Millisecond {
		t.Fatalf("wait %v", tk.WaitTime)
	}
	if tk.Start != 25*time.Millisecond {
		t.Fatalf("start %v", tk.Start)
	}
	tk.CPUUsed = 10 * time.Millisecond
	tk.MarkSleeping(35 * time.Millisecond)
	tk.MarkWoken(45*time.Millisecond, 10*time.Millisecond)
	if tk.IOTime != 10*time.Millisecond {
		t.Fatalf("io time %v", tk.IOTime)
	}
	tk.MarkRunning(50*time.Millisecond, 1) // waited 5ms more, migrated
	if tk.WaitTime != 20*time.Millisecond {
		t.Fatalf("wait %v", tk.WaitTime)
	}
	if tk.Migrations != 1 {
		t.Fatalf("migrations %d", tk.Migrations)
	}
	if tk.Dispatches != 2 {
		t.Fatalf("dispatches %d", tk.Dispatches)
	}
	tk.CPUUsed = 30 * time.Millisecond
	tk.MarkFinished(70 * time.Millisecond)
	if tk.Turnaround() != 60*time.Millisecond {
		t.Fatalf("turnaround %v", tk.Turnaround())
	}
	// RTE = service / turnaround = 30/60.
	if rte := tk.RTE(); rte != 0.5 {
		t.Fatalf("rte %v", rte)
	}
}

func TestTurnaroundUnfinished(t *testing.T) {
	tk := New(1, 0, time.Millisecond)
	if tk.Turnaround() != -1 {
		t.Fatal("unfinished turnaround should be -1")
	}
	if tk.RTE() != 0 {
		t.Fatal("unfinished RTE should be 0")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Task
		ok   bool
	}{
		{"valid", func() *Task { return New(1, 0, time.Millisecond) }, true},
		{"zero service", func() *Task { return New(1, 0, 0) }, false},
		{"negative arrival", func() *Task { return New(1, -time.Second, time.Millisecond) }, false},
		{"io beyond service", func() *Task {
			tk := New(1, 0, time.Millisecond)
			tk.IOOps = []IOOp{{At: 2 * time.Millisecond, Dur: time.Millisecond}}
			return tk
		}, false},
		{"negative io dur", func() *Task {
			tk := New(1, 0, time.Millisecond)
			tk.IOOps = []IOOp{{At: 0, Dur: -time.Millisecond}}
			return tk
		}, false},
		{"io at end", func() *Task {
			tk := New(1, 0, time.Millisecond)
			tk.IOOps = []IOOp{{At: time.Millisecond, Dur: time.Millisecond}}
			return tk
		}, true},
		{"unsorted io", func() *Task {
			tk := New(1, 0, 10*time.Millisecond)
			tk.IOOps = []IOOp{{At: 5 * time.Millisecond}, {At: 1 * time.Millisecond}}
			return tk
		}, false},
	}
	for _, c := range cases {
		err := c.mk().Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateNew: "new", StateRunnable: "runnable", StateRunning: "running",
		StateSleeping: "sleeping", StateFinished: "finished", State(99): "state(99)",
	} {
		if s.String() != want {
			t.Errorf("%d -> %q, want %q", int(s), s.String(), want)
		}
	}
}
