// Package predict is the online per-app runtime estimator behind the
// data-driven policies (PSRTF host scheduling, PREDICTED cluster
// dispatch). SFS's premise is scheduling *without* service-time
// knowledge; the related work — Przybylski et al.'s data-driven
// dispatch and Kaffes et al.'s practical serverless scheduling — shows
// what becomes possible when the platform estimates runtimes from its
// own completion log. This package supplies that estimate: a streaming
// per-application mean (Welford) plus a P² tail percentile, updated on
// every observed completion, in O(1) memory per application.
//
// Determinism is a hard contract: an Estimator is a pure function of
// its configuration and the sequence of Observe calls, with no wall
// clock and no global RNG, so simulations built on it replay
// byte-identically. Even the injected prediction error (Config.
// NoiseFactor, used by experiments to study estimator-quality regimes)
// is a deterministic per-app coin — a hash of (Seed, app) — rather
// than a sampled stream, so it is independent of observation order.
package predict

import (
	"hash/fnv"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/stats"
)

// DefaultPrior is the cold-application estimate used before an app has
// MinObs completions: 100ms, roughly the Azure Functions median
// duration, so an unknown function is treated as "typical" rather than
// free or enormous.
const DefaultPrior = 100 * time.Millisecond

// DefaultRank is the percentile each app's P² marker tracks.
const DefaultRank = 95.0

// Config parameterizes an Estimator. The zero value is valid: it
// predicts DefaultPrior for cold apps, trusts the mean after a single
// observation, tracks P95, and injects no error.
type Config struct {
	// Prior is the estimate returned for an application with fewer than
	// MinObs observed completions. Zero or negative selects
	// DefaultPrior. The cold path never yields zero or NaN: callers can
	// divide by a prediction unconditionally.
	Prior time.Duration
	// MinObs is the number of completions required before the learned
	// estimate replaces Prior. Values below 1 mean 1.
	MinObs int
	// Rank is the percentile tracked per app by Percentile, in the open
	// interval (0, 100). Zero selects DefaultRank.
	Rank float64
	// NoiseFactor injects multiplicative prediction error into learned
	// estimates: each app's predictions are scaled by NoiseFactor or
	// 1/NoiseFactor, chosen by a deterministic coin hashed from (Seed,
	// app). 0 or 1 disables injection; experiments use 2 for the "2x
	// error" regime. Values below zero are treated as disabled.
	NoiseFactor float64
	// Seed drives only the per-app noise coin; an Estimator without
	// noise is seed-independent.
	Seed uint64
}

// appStats is one application's O(1) learning state.
type appStats struct {
	n    int64
	mean float64 // Welford streaming mean, in ns
	m2   float64 // Welford sum of squared deviations
	tail *stats.P2
}

// Estimator learns per-application runtimes from completions.
// It is not safe for concurrent use; each host scheduler or dispatcher
// owns its own instance (mirroring how a per-host agent would learn
// from its local completion log).
type Estimator struct {
	cfg  Config
	apps map[string]*appStats
}

// New builds an estimator, normalizing the zero-value defaults
// documented on Config.
func New(cfg Config) *Estimator {
	if cfg.Prior <= 0 {
		cfg.Prior = DefaultPrior
	}
	if cfg.MinObs < 1 {
		cfg.MinObs = 1
	}
	if cfg.Rank <= 0 || cfg.Rank >= 100 {
		cfg.Rank = DefaultRank
	}
	if cfg.NoiseFactor < 0 {
		cfg.NoiseFactor = 0
	}
	return &Estimator{cfg: cfg, apps: map[string]*appStats{}}
}

// Observe records one completed invocation of app with the given
// measured runtime. Non-positive durations are recorded as 1ns so
// means and markers stay positive.
func (e *Estimator) Observe(app string, d time.Duration) {
	if d <= 0 {
		d = 1
	}
	st := e.apps[app]
	if st == nil {
		st = &appStats{tail: stats.NewP2(e.cfg.Rank)}
		e.apps[app] = st
	}
	st.n++
	x := float64(d)
	delta := x - st.mean
	st.mean += delta / float64(st.n)
	st.m2 += delta * (x - st.mean)
	st.tail.Add(x)
}

// Predict returns the estimated runtime of the next invocation of app:
// the app's learned streaming mean once MinObs completions have been
// observed, the configured Prior before that. The result is always
// positive — never zero and never NaN — even for an app the estimator
// has never seen.
func (e *Estimator) Predict(app string) time.Duration {
	st := e.apps[app]
	if st == nil || st.n < int64(e.cfg.MinObs) {
		return e.cfg.Prior
	}
	p := time.Duration(math.Round(st.mean * e.noise(app)))
	if p < 1 {
		p = 1
	}
	return p
}

// Percentile returns the app's tracked tail percentile (Config.Rank),
// with the same cold-app fallback and positivity guarantee as Predict.
func (e *Estimator) Percentile(app string) time.Duration {
	st := e.apps[app]
	if st == nil || st.n < int64(e.cfg.MinObs) {
		return e.cfg.Prior
	}
	p := time.Duration(math.Round(st.tail.Quantile() * e.noise(app)))
	if p < 1 {
		p = 1
	}
	return p
}

// Observations returns how many completions of app have been recorded.
func (e *Estimator) Observations(app string) int64 {
	if st := e.apps[app]; st != nil {
		return st.n
	}
	return 0
}

// Apps returns how many distinct applications have been observed.
func (e *Estimator) Apps() int { return len(e.apps) }

// noise returns the multiplicative error applied to app's learned
// estimates: NoiseFactor or its reciprocal, chosen by a deterministic
// coin over (Seed, app). With injection disabled it is exactly 1.
func (e *Estimator) noise(app string) float64 {
	f := e.cfg.NoiseFactor
	if f == 0 || f == 1 {
		return 1
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(e.cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(app))
	if h.Sum64()&1 == 0 {
		return f
	}
	return 1 / f
}
