package predict

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/rng"
)

// TestColdAppPrior: the zero-observation path returns the documented
// prior — positive, never NaN — for both the mean and tail estimates,
// and switches to learned values only after MinObs completions.
func TestColdAppPrior(t *testing.T) {
	e := New(Config{})
	if got := e.Predict("unseen"); got != DefaultPrior {
		t.Fatalf("cold Predict = %v, want default prior %v", got, DefaultPrior)
	}
	if got := e.Percentile("unseen"); got != DefaultPrior {
		t.Fatalf("cold Percentile = %v, want default prior %v", got, DefaultPrior)
	}

	e = New(Config{Prior: time.Microsecond, MinObs: 3})
	e.Observe("app", 50*time.Millisecond)
	e.Observe("app", 50*time.Millisecond)
	if got := e.Predict("app"); got != time.Microsecond {
		t.Fatalf("below MinObs Predict = %v, want configured prior %v", got, time.Microsecond)
	}
	e.Observe("app", 50*time.Millisecond)
	if got := e.Predict("app"); got != 50*time.Millisecond {
		t.Fatalf("at MinObs Predict = %v, want learned 50ms", got)
	}

	// Degenerate observations must never produce a zero or negative
	// prediction (callers divide by predictions).
	e = New(Config{})
	e.Observe("tiny", 0)
	e.Observe("tiny", -time.Second)
	if got := e.Predict("tiny"); got < 1 {
		t.Fatalf("Predict after degenerate observations = %v, want >= 1ns", got)
	}
	if math.IsNaN(float64(e.Predict("tiny"))) {
		t.Fatal("Predict returned NaN")
	}
}

// TestConvergenceConstant: on a constant workload the mean estimate is
// exact and the tail percentile equals the constant.
func TestConvergenceConstant(t *testing.T) {
	e := New(Config{})
	const v = 7 * time.Millisecond
	for i := 0; i < 1000; i++ {
		e.Observe("const", v)
	}
	if got := e.Predict("const"); got != v {
		t.Fatalf("constant-workload Predict = %v, want %v", got, v)
	}
	if got := e.Percentile("const"); got != v {
		t.Fatalf("constant-workload Percentile = %v, want %v", got, v)
	}
	if got := e.Observations("const"); got != 1000 {
		t.Fatalf("Observations = %d, want 1000", got)
	}
}

// TestConvergenceLognormal: on a lognormal workload the streaming mean
// converges to the analytic mean and the P² tail estimate stays within
// tolerance of the exact sample percentile.
func TestConvergenceLognormal(t *testing.T) {
	d := dist.Lognormal{Mu: math.Log(float64(20 * time.Millisecond)), Sigma: 0.5}
	r := rng.New(42)
	e := New(Config{})
	const n = 20000
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		samples = append(samples, float64(s))
		e.Observe("ln", s)
	}

	var sum float64
	for _, s := range samples {
		sum += s
	}
	exactMean := sum / n
	if got := float64(e.Predict("ln")); math.Abs(got-exactMean)/exactMean > 1e-6 {
		t.Fatalf("streaming mean %v deviates from exact sample mean %v", got, exactMean)
	}
	// The streaming mean should also approach the analytic mean.
	if analytic := float64(d.Mean()); math.Abs(exactMean-analytic)/analytic > 0.05 {
		t.Fatalf("sample mean %v off analytic mean %v by more than 5%%", exactMean, analytic)
	}

	sort.Float64s(samples)
	exactP95 := samples[int(0.95*n)]
	got := float64(e.Percentile("ln"))
	if math.Abs(got-exactP95)/exactP95 > 0.05 {
		t.Fatalf("P² p95 %v off exact sample p95 %v by more than 5%%", got, exactP95)
	}
}

// TestDeterministicReplay: the same observation sequence yields
// byte-identical rendered estimates, and the injected noise coin is a
// function of (seed, app) only — independent of observation order.
func TestDeterministicReplay(t *testing.T) {
	replay := func() string {
		d := dist.Lognormal{Mu: math.Log(float64(5 * time.Millisecond)), Sigma: 1.0}
		r := rng.New(7)
		e := New(Config{NoiseFactor: 2, Seed: 11})
		apps := []string{"a", "b", "c"}
		for i := 0; i < 5000; i++ {
			e.Observe(apps[i%len(apps)], d.Sample(r))
		}
		out := ""
		for _, a := range apps {
			out += fmt.Sprintf("%s:%d:%d:%d;", a, e.Observations(a), e.Predict(a), e.Percentile(a))
		}
		return out
	}
	first := replay()
	for i := 0; i < 3; i++ {
		if got := replay(); got != first {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestNoiseFactor: injected error scales learned estimates by the
// factor or its reciprocal per app, deterministically in the seed, and
// leaves the cold-app prior untouched.
func TestNoiseFactor(t *testing.T) {
	const v = 10 * time.Millisecond
	exact := New(Config{Seed: 3})
	noisy := New(Config{NoiseFactor: 2, Seed: 3})
	apps := []string{"w", "x", "y", "z"}
	for _, a := range apps {
		for i := 0; i < 10; i++ {
			exact.Observe(a, v)
			noisy.Observe(a, v)
		}
	}
	up, down := 0, 0
	for _, a := range apps {
		e, n := exact.Predict(a), noisy.Predict(a)
		switch n {
		case 2 * e:
			up++
		case e / 2:
			down++
		default:
			t.Fatalf("app %s: noisy %v is neither 2x nor 0.5x of exact %v", a, n, e)
		}
	}
	if up+down != len(apps) {
		t.Fatalf("noise accounting: up=%d down=%d apps=%d", up, down, len(apps))
	}
	// Cold apps return the prior verbatim; noise applies to learned
	// estimates only.
	if got := noisy.Predict("never-seen"); got != DefaultPrior {
		t.Fatalf("cold Predict under noise = %v, want %v", got, DefaultPrior)
	}
}

// TestP2AgainstExactQuantiles sweeps tracked ranks against the exact
// sorted-sample percentile on a heavy-tailed input.
func TestP2AgainstExactQuantiles(t *testing.T) {
	for _, rank := range []float64{50, 90, 99} {
		rank := rank
		t.Run(fmt.Sprintf("p%.0f", rank), func(t *testing.T) {
			d := dist.Lognormal{Mu: math.Log(float64(time.Millisecond)), Sigma: 1.2}
			r := rng.New(99)
			e := New(Config{Rank: rank})
			const n = 30000
			samples := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				s := d.Sample(r)
				samples = append(samples, float64(s))
				e.Observe("hv", s)
			}
			sort.Float64s(samples)
			exact := samples[int(rank/100*n)]
			got := float64(e.Percentile("hv"))
			if math.Abs(got-exact)/exact > 0.10 {
				t.Fatalf("P² p%.0f = %v, exact %v (>10%% off)", rank, got, exact)
			}
		})
	}
}

// TestAppsCount: distinct apps tracked, O(1) state per app implied by
// the map size.
func TestAppsCount(t *testing.T) {
	e := New(Config{})
	for i := 0; i < 64; i++ {
		e.Observe(fmt.Sprintf("app-%d", i%16), time.Millisecond)
	}
	if got := e.Apps(); got != 16 {
		t.Fatalf("Apps = %d, want 16", got)
	}
}
