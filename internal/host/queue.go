package host

import (
	"container/heap"

	"github.com/serverless-sched/sfs/internal/task"
)

// hookQueue is the single ordered queue of released arrivals shared by
// every drive loop. It orders pending releases by (arrival time,
// release sequence) so same-instant releases are submitted in the
// order their upstream completions produced them — the tie-break that
// keeps replays byte-identical. It replaces the two hand-rolled lazy
// queues the lifecycle and chain drivers used to carry.
type hookQueue struct{ h releaseHeap }

func (q *hookQueue) push(t *task.Task, seq uint64) {
	heap.Push(&q.h, release{t: t, seq: seq})
}

// head returns the earliest pending release without removing it, or
// nil when the queue is empty.
func (q *hookQueue) head() *task.Task {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0].t
}

func (q *hookQueue) pop() *task.Task {
	return heap.Pop(&q.h).(release).t
}

// release is one pending stage release awaiting its arrival instant.
type release struct {
	t   *task.Task
	seq uint64
}

type releaseHeap []release

func (h releaseHeap) Len() int { return len(h) }
func (h releaseHeap) Less(i, j int) bool {
	if h[i].t.Arrival != h[j].t.Arrival {
		return h[i].t.Arrival < h[j].t.Arrival
	}
	return h[i].seq < h[j].seq
}
func (h releaseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)   { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
