package host

import "github.com/serverless-sched/sfs/internal/simtime"

// Heap is an index-addressable binary min-heap of runtime indices
// keyed by each runtime's next pending event time. It replaces the
// O(hosts) scan the global event loop used to run before every step:
// peeking the globally-earliest runtime is O(1) and re-keying a
// runtime after it steps or receives work is O(log hosts).
//
// Ordering matches the scan it replaced exactly — earliest time first,
// ties broken by lowest index — so replays are byte-identical at any
// host count. Runtimes with no pending work are parked at
// simtime.Infinity rather than removed, which keeps every runtime
// addressable by index.
type Heap struct {
	key  []simtime.Time // runtime index -> current key
	heap []int          // heap of runtime indices
	pos  []int          // runtime index -> position in heap
}

// NewHeap builds a heap of n runtimes, all parked at Infinity.
func NewHeap(n int) *Heap {
	h := &Heap{
		key:  make([]simtime.Time, n),
		heap: make([]int, n),
		pos:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.key[i] = simtime.Infinity
		h.heap[i] = i
		h.pos[i] = i
	}
	return h
}

// Min returns the runtime with the earliest key (lowest index on ties)
// and that key. Runtimes with no work report simtime.Infinity.
func (h *Heap) Min() (idx int, at simtime.Time) {
	top := h.heap[0]
	return top, h.key[top]
}

// Update re-keys runtime i and restores the heap invariant.
func (h *Heap) Update(i int, at simtime.Time) {
	if h.key[i] == at {
		return
	}
	h.key[i] = at
	p := h.pos[i]
	if !h.up(p) {
		h.down(p)
	}
}

// less orders heap positions by (key, runtime index); the index
// tie-break reproduces the old scan's first-minimum choice.
func (h *Heap) less(a, b int) bool {
	ha, hb := h.heap[a], h.heap[b]
	if h.key[ha] != h.key[hb] {
		return h.key[ha] < h.key[hb]
	}
	return ha < hb
}

func (h *Heap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *Heap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *Heap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
