package host

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
)

// TestHeapMatchesScan drives the heap with random re-keys and checks
// its minimum against the linear scan it replaced (earliest time wins,
// ties by lowest runtime index) after every update.
func TestHeapMatchesScan(t *testing.T) {
	const hosts = 9
	h := NewHeap(hosts)
	keys := make([]simtime.Time, hosts)
	for i := range keys {
		keys[i] = simtime.Infinity
	}
	scanMin := func() (int, simtime.Time) {
		best, at := -1, simtime.Infinity
		for i, k := range keys {
			if k < at {
				best, at = i, k
			}
		}
		if best < 0 {
			// All parked: the heap reports some runtime at Infinity; the
			// index is irrelevant because callers guard on the key.
			return h.heap[0], simtime.Infinity
		}
		return best, at
	}

	r := rng.New(11)
	for step := 0; step < 5000; step++ {
		i := r.Intn(hosts)
		var k simtime.Time
		switch r.Intn(4) {
		case 0:
			k = simtime.Infinity // runtime went idle
		default:
			// Coarse buckets force frequent exact ties so the
			// index tie-break is actually exercised.
			k = time.Duration(r.Intn(50)) * time.Millisecond
		}
		keys[i] = k
		h.Update(i, k)

		wantHost, wantAt := scanMin()
		gotHost, gotAt := h.Min()
		if gotAt != wantAt || (wantAt < simtime.Infinity && gotHost != wantHost) {
			t.Fatalf("step %d: heap min (runtime %d, %v), scan min (runtime %d, %v)",
				step, gotHost, gotAt, wantHost, wantAt)
		}
	}
}
