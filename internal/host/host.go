// Package host is the unified per-host runtime at the center of every
// simulation driver in this repository.
//
// Before this package existed the repo had five near-duplicate
// discrete-event drive loops — the faas platform, lifecycle.Run,
// chain.Run, and the serial and sharded cluster loops — each
// hand-wiring the same concerns (container acquire/release, workflow
// stage release, completion observation) into its own event loop. A
// Runtime collapses them into one composable core: it owns a cpusim
// engine plus an ordered pipeline of pluggable Stages, and guarantees
// one deterministic hook ordering everywhere:
//
//   - engine events fire before same-instant arrivals, so a completion
//     frees capacity (and warm containers) the next arrival can see;
//   - arrivals a stage releases mid-run (workflow fan-out) are queued
//     on a single (time, sequence) hook queue and precede same-instant
//     source arrivals, because they originate from earlier completions;
//   - at an arrival, stages hook in pipeline order: Expand rewrites the
//     admitted invocation, then each BeforeSubmit may delay the
//     engine-visible arrival (cold starts); at a completion, OnFinish
//     runs in the same pipeline order.
//
// The public drivers are thin shells over this core: lifecycle.Run and
// chain.Run are stage configurations of Runtime.Drive, the faas
// platform composes both, and the cluster layer drives many Runtimes
// through a Group — the serial loop steps the globally-earliest host
// one event at a time while the sharded engine advances whole windows,
// but both deliver work through the same Runtime.Place hook path, so a
// stage written once works standalone, on the serial cluster, and at
// any -shards count. A standalone Runtime.Drive is byte-identical to a
// one-host cluster under a trivial dispatcher (the degenerate-case
// parity pinned by TestStandaloneClusterParity).
package host

import (
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Stage is one composable hook bundle in a host runtime's pipeline.
// Stages observe and perturb the per-invocation lifecycle; the engine
// and all scheduling stay in cpusim. Hooks run in pipeline order at
// deterministic instants, so a stage list plus a seed fully determines
// a run.
//
// Stages that rewrite admitted invocations additionally implement
// Expander; stages that release follow-up arrivals implement Binder to
// receive the Runtime they feed.
type Stage interface {
	// BeforeSubmit fires when t is about to enter the engine at instant
	// at. The returned delay postpones the engine-visible arrival — a
	// container cold start — without moving the instant the stage
	// itself observed. Stages must not retain t past OnFinish.
	BeforeSubmit(at simtime.Time, t *task.Task) time.Duration
	// OnFinish fires at t's completion instant.
	OnFinish(at simtime.Time, t *task.Task)
}

// Expander is implemented by stages that rewrite an admitted source
// invocation into the task(s) actually entering the host — the chain
// stage expands a request into its workflow's root stages. Only source
// admissions are expanded; tasks released mid-run re-enter as-is.
type Expander interface {
	Expand(t *task.Task) []*task.Task
}

// Binder is implemented by stages that feed arrivals back into the
// runtime (workflow fan-out). BindRuntime is called once, before the
// run starts.
type Binder interface {
	BindRuntime(rt *Runtime)
}

// Base is a no-op Stage for embedding, so concrete stages implement
// only the hooks they use.
type Base struct{}

// BeforeSubmit implements Stage as a no-op.
func (Base) BeforeSubmit(simtime.Time, *task.Task) time.Duration { return 0 }

// OnFinish implements Stage as a no-op.
func (Base) OnFinish(simtime.Time, *task.Task) {}

// FinishFunc adapts a completion callback into a Stage — the shape the
// cluster uses for predictor observation (a dispatcher's
// CompletionObserver), for metrics taps, and for collecting the
// completions a chain coordinator fans back through dispatch.
type FinishFunc func(at simtime.Time, t *task.Task)

// BeforeSubmit implements Stage as a no-op.
func (FinishFunc) BeforeSubmit(simtime.Time, *task.Task) time.Duration { return 0 }

// OnFinish implements Stage by calling the function.
func (f FinishFunc) OnFinish(at simtime.Time, t *task.Task) { f(at, t) }

// Runtime is one simulated host: a cpusim engine wrapped in an ordered
// stage pipeline. The engine must be fresh — no tasks submitted, no
// tracer installed — because the Runtime owns the engine's tracer when
// any stage is present.
type Runtime struct {
	eng       *cpusim.Engine
	stages    []Stage
	expanders []Expander
	pend      hookQueue // (time, seq)-ordered released arrivals
	seq       uint64
	queued    int // assigned but not yet submitted (sharded windows)
}

// New wraps eng in a runtime running the given stage pipeline. Stages
// hook in the order given; stages implementing Binder are bound here.
func New(eng *cpusim.Engine, stages ...Stage) *Runtime {
	rt := &Runtime{eng: eng, stages: stages}
	for _, s := range stages {
		if ex, ok := s.(Expander); ok {
			rt.expanders = append(rt.expanders, ex)
		}
		if b, ok := s.(Binder); ok {
			b.BindRuntime(rt)
		}
	}
	if len(stages) > 0 {
		eng.SetTracer(func(ev cpusim.TraceEvent) {
			if ev.Kind != cpusim.TraceFinish {
				return
			}
			for _, s := range rt.stages {
				s.OnFinish(ev.At, ev.Task)
			}
		})
	}
	return rt
}

// Engine returns the wrapped engine (for metrics extraction and the
// read-only views dispatchers decide from).
func (rt *Runtime) Engine() *cpusim.Engine { return rt.eng }

// Queued is the number of invocations assigned to this host but not
// yet submitted to its engine — nonzero only inside sharded windows,
// where delivery is deferred to the owning shard (see Group.Enqueue).
func (rt *Runtime) Queued() int { return rt.queued }

// NextEventTime is the runtime's key in a next-event ordering: the
// engine's earliest pending event while it has unfinished work, and
// simtime.Infinity otherwise. Idle engines may hold re-arming timer
// events (e.g. the SFS monitor) that would spin a driver forever;
// parking them at Infinity is the contract every drive loop keys on.
func (rt *Runtime) NextEventTime() simtime.Time { return rt.eng.NextPendingEventTime() }

// StepEvent fires the engine's earliest pending event.
func (rt *Runtime) StepEvent() bool { return rt.eng.StepEvent() }

// Place runs the pipeline's BeforeSubmit hooks for t at instant at —
// each returned delay postpones the engine-visible arrival — and hands
// the task to the engine. This is the single submit path shared by
// every driver: the standalone Drive loop, the serial cluster's
// dispatch, and sharded window delivery.
func (rt *Runtime) Place(at simtime.Time, t *task.Task) {
	for _, s := range rt.stages {
		if d := s.BeforeSubmit(at, t); d > 0 {
			t.Arrival += d
		}
	}
	rt.eng.Submit(t)
}

// Release queues t as a future arrival of this runtime at t.Arrival.
// Stages call it from OnFinish (workflow fan-out); the Drive loop
// submits released tasks in (arrival time, release sequence) order, so
// same-instant releases enter in the order their upstream completions
// produced them — the tie-break that keeps replays byte-identical.
func (rt *Runtime) Release(t *task.Task) {
	rt.pend.push(t, rt.seq)
	rt.seq++
}

// expand applies the pipeline's Expanders to an admitted source
// invocation in order. With no expanders the invocation passes through
// untouched (and the caller takes an allocation-free path).
func (rt *Runtime) expand(t *task.Task) []*task.Task {
	tasks := []*task.Task{t}
	for _, ex := range rt.expanders {
		var out []*task.Task
		for _, tt := range tasks {
			out = append(out, ex.Expand(tt)...)
		}
		tasks = out
	}
	return tasks
}

// Drive pulls src to exhaustion through the stage pipeline and runs
// the engine to completion on one event loop — the standalone (1-host)
// driver every single-host entry point shells out to. Engine events
// fire before same-instant arrivals, and released arrivals precede
// same-instant source arrivals, exactly as the cluster loops order
// them. Turnarounds measured afterwards are end-to-end: original
// arrivals are restored, so stage-injected delays (cold starts) count
// against the request.
func (rt *Runtime) Drive(src trace.Source) (simtime.Time, error) {
	orig := map[*task.Task]simtime.Time{}
	var tasks []*task.Task
	submit := func(t *task.Task) {
		orig[t] = t.Arrival
		tasks = append(tasks, t)
		rt.Place(t.Arrival, t)
	}

	next, more := src.Next()
	for {
		evT := rt.NextEventTime()
		arrT := simtime.Infinity
		fromQueue := false
		if h := rt.pend.head(); h != nil {
			arrT = h.Arrival
			fromQueue = true
		}
		if more && next.Arrival < arrT {
			// Released arrivals precede same-instant source arrivals:
			// they originate from earlier completions.
			arrT = next.Arrival
			fromQueue = false
		}
		if evT == simtime.Infinity && arrT == simtime.Infinity {
			break
		}
		if evT <= arrT {
			// Completions free containers (and release downstream
			// stages) the next arrival can see.
			rt.StepEvent()
			continue
		}
		if fromQueue {
			submit(rt.pend.pop())
			continue
		}
		if len(rt.expanders) == 0 {
			submit(next)
		} else {
			for _, t := range rt.expand(next) {
				submit(t)
			}
		}
		next, more = src.Next()
	}
	if err := trace.Err(src); err != nil {
		return rt.eng.Now(), err
	}
	// Restore end-to-end arrivals: turnaround and RTE must charge
	// stage-injected delays to the request, not hide them.
	for _, t := range tasks {
		t.Arrival = orig[t]
	}
	return rt.eng.Now(), nil
}
