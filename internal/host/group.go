package host

import (
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// submission is one placed invocation traveling to its runtime: it was
// assigned by a dispatcher and will enter the runtime's engine at `at`
// during the group's next Advance window.
type submission struct {
	t   *task.Task
	at  simtime.Time
	idx int // group-local runtime index
}

// Group drives a fleet of Runtimes in global next-event order. It is
// the host-advance core both cluster loops share: the serial loop
// steps the globally-earliest runtime one event at a time (Min, Step,
// Deliver), while the sharded engine builds one Group per shard and
// advances whole windows (Enqueue, Advance) — either way every event
// and delivery flows through the same primitives, so replays are
// byte-identical at any partitioning.
type Group struct {
	rts     []*Runtime
	hh      *Heap
	subs    []submission // time-ordered; coordinator appends, Advance consumes
	subHead int
}

// NewGroup builds a group over rts. The runtimes must be fresh: their
// engines hold no work, so every heap key starts at Infinity.
func NewGroup(rts []*Runtime) *Group {
	return &Group{rts: rts, hh: NewHeap(len(rts))}
}

// Len is the number of runtimes in the group.
func (g *Group) Len() int { return len(g.rts) }

// Runtime returns the i'th runtime.
func (g *Group) Runtime(i int) *Runtime { return g.rts[i] }

// Min returns the runtime with the earliest pending engine event
// (lowest index on ties) and that event's time; idle runtimes report
// simtime.Infinity.
func (g *Group) Min() (idx int, at simtime.Time) { return g.hh.Min() }

// Step fires runtime i's earliest pending event and re-keys it.
func (g *Group) Step(i int) {
	g.rts[i].StepEvent()
	g.hh.Update(i, g.rts[i].NextEventTime())
}

// Deliver hands t to runtime i at instant `at` — through the runtime's
// full stage pipeline — and re-keys it. This is the serial path's
// immediate delivery; Advance uses it for queued submissions.
func (g *Group) Deliver(i int, at simtime.Time, t *task.Task) {
	g.rts[i].Place(at, t)
	g.hh.Update(i, g.rts[i].NextEventTime())
}

// Enqueue defers delivery of t to runtime i until Advance reaches
// instant `at`. Submissions must be enqueued in non-decreasing `at`
// order (the sharded coordinator's dispatch order guarantees this);
// the runtime's Queued count reflects the assignment immediately so
// dispatchers see same-window placements.
func (g *Group) Enqueue(i int, at simtime.Time, t *task.Task) {
	g.subs = append(g.subs, submission{t: t, at: at, idx: i})
	g.rts[i].queued++
}

// NextSubmissionTime is the delivery instant of the earliest
// undelivered submission, or simtime.Infinity when none are queued.
func (g *Group) NextSubmissionTime() simtime.Time {
	if g.subHead < len(g.subs) {
		return g.subs[g.subHead].at
	}
	return simtime.Infinity
}

// Advance runs the group's runtimes up to (but excluding) bound,
// interleaving queued submissions with engine events in exact time
// order — engine events first on ties, as everywhere else — and
// returns the number of tasks that completed. Between barriers a
// sharded window touches its group only through this method.
func (g *Group) Advance(bound simtime.Time) (completions int) {
	pendingBefore := 0
	for _, rt := range g.rts {
		pendingBefore += rt.eng.Pending()
	}
	submitted := 0
	for {
		hi, ht := g.hh.Min()
		st := g.NextSubmissionTime()
		if ht >= bound && st >= bound {
			break
		}
		if ht <= st {
			// Engine events fire before same-instant submissions, exactly
			// as the serial loop fires host events before same-instant
			// arrivals.
			g.Step(hi)
			continue
		}
		sub := g.subs[g.subHead]
		g.subHead++
		g.rts[sub.idx].queued--
		g.Deliver(sub.idx, sub.at, sub.t)
		submitted++
	}
	pendingAfter := 0
	for _, rt := range g.rts {
		pendingAfter += rt.eng.Pending()
	}
	if g.subHead == len(g.subs) {
		g.subs = g.subs[:0]
		g.subHead = 0
	}
	return pendingBefore + submitted - pendingAfter
}
