package core_test

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

// randomTasks builds a random workload with optional I/O from a seed.
func randomTasks(seed uint64, nRaw uint8) []*task.Task {
	r := rng.New(seed)
	n := int(nRaw%50) + 5
	var tasks []*task.Task
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		svc := time.Duration(1+r.Intn(300)) * time.Millisecond
		tk := task.New(i, at, svc)
		if r.Float64() < 0.4 {
			off := time.Duration(r.Int63n(int64(svc) + 1))
			tk.WithIO(off, time.Duration(r.Intn(60))*time.Millisecond)
		}
		tasks = append(tasks, tk)
		at += time.Duration(r.Intn(30)) * time.Millisecond
	}
	return tasks
}

// randomConfig derives a random-but-valid SFS config.
func randomConfig(seed uint64) core.Config {
	r := rng.New(seed ^ 0xc0ffee)
	cfg := core.DefaultConfig()
	cfg.WindowSize = 1 + r.Intn(200)
	cfg.InitialSlice = time.Duration(1+r.Intn(300)) * time.Millisecond
	if r.Float64() < 0.3 {
		cfg.FixedSlice = time.Duration(1+r.Intn(200)) * time.Millisecond
	}
	cfg.OverloadFactor = 0.5 + 5*r.Float64()
	cfg.PollInterval = time.Duration(1+r.Intn(8)) * time.Millisecond
	cfg.IOAware = r.Float64() < 0.7
	cfg.Hybrid = r.Float64() < 0.7
	return cfg
}

// TestPropertySFSInvariants fuzzes SFS across random workloads, core
// counts, and configurations: every request must finish with exact CPU
// accounting and a consistent turnaround decomposition, regardless of
// which level it ran in.
func TestPropertySFSInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, coresRaw uint8) bool {
		cores := int(coresRaw%6) + 1
		tasks := randomTasks(seed, nRaw)
		s := core.New(randomConfig(seed))
		eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 24 * time.Hour}, s)
		eng.Submit(tasks...)
		eng.Run()
		if eng.Aborted() {
			return false
		}
		filterDone, demoted := 0, 0
		for _, tk := range tasks {
			if tk.State != task.StateFinished {
				return false
			}
			if tk.CPUUsed != tk.Service {
				return false
			}
			if tk.Turnaround() != tk.Service+tk.IOTime+tk.WaitTime {
				return false
			}
			if tk.Turnaround() < tk.IdealDuration() {
				return false
			}
			if tk.DemotedToCFS {
				demoted++
			} else {
				filterDone++
			}
		}
		// Internal counters must reconcile with task outcomes.
		if s.Stat.FilterCompletions != filterDone {
			return false
		}
		if s.Stat.Demotions+s.Stat.OverloadRouted != demoted {
			return false
		}
		return s.Stat.Requests == len(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySFSNeverSlowerThanConvoy: SFS's mean turnaround should
// never exceed plain FIFO's on short-heavy workloads (FIFO's convoy is
// the worst case SFS is designed to avoid).
func TestPropertySFSNeverSlowerThanConvoy(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var a, b []*task.Task
		at := time.Duration(0)
		for i := 0; i < 80; i++ {
			// Bimodal: mostly 5-20ms shorts, some 500ms+ longs.
			svc := time.Duration(5+r.Intn(15)) * time.Millisecond
			if r.Float64() < 0.15 {
				svc = time.Duration(500+r.Intn(500)) * time.Millisecond
			}
			a = append(a, task.New(i, at, svc))
			b = append(b, task.New(i, at, svc))
			at += time.Duration(r.Intn(20)) * time.Millisecond
		}
		mean := func(tasks []*task.Task, s cpusim.Scheduler) time.Duration {
			eng := cpusim.NewEngine(cpusim.Config{Cores: 2, Deadline: 24 * time.Hour}, s)
			eng.Submit(tasks...)
			eng.Run()
			var sum time.Duration
			for _, tk := range tasks {
				sum += tk.Turnaround()
			}
			return sum / time.Duration(len(tasks))
		}
		sfsMean := mean(a, core.New(core.DefaultConfig()))
		fifoMean := mean(b, sched.NewFIFO())
		// Allow 5% slack for slice-boundary noise.
		return float64(sfsMean) <= 1.05*float64(fifoMean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
