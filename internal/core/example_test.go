package core_test

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/task"
)

// Example demonstrates the SFS scheduler end to end on a deterministic
// two-function scenario: a short function completes inside its FILTER
// slice untouched, while a long one is demoted to the CFS level.
func Example() {
	sfs := core.New(core.Config{
		InitialSlice: 100 * time.Millisecond, // S before the monitor adapts
		PollInterval: 4 * time.Millisecond,
		IOAware:      true,
		Hybrid:       true,
	})
	engine := cpusim.NewEngine(cpusim.Config{Cores: 1}, sfs)

	long := task.New(0, 0, 500*time.Millisecond)                    // arrives first
	short := task.New(1, 150*time.Millisecond, 20*time.Millisecond) // arrives during the long run

	engine.Submit(long, short)
	engine.Run()

	fmt.Printf("short: turnaround %v, demoted=%v, ctx switches=%d\n",
		short.Turnaround(), short.DemotedToCFS, short.CtxSwitches)
	fmt.Printf("long:  turnaround %v, demoted=%v\n",
		long.Turnaround(), long.DemotedToCFS)
	fmt.Printf("filter completions=%d demotions=%d\n",
		sfs.Stat.FilterCompletions, sfs.Stat.Demotions)

	// Output:
	// short: turnaround 20ms, demoted=false, ctx switches=0
	// long:  turnaround 520ms, demoted=true
	// filter completions=1 demotions=1
}

// ExampleConfig_fixedSlice pins the time slice, disabling adaptation —
// the configuration behind the paper's Fig 9 sensitivity study.
func ExampleConfig_fixedSlice() {
	cfg := core.DefaultConfig()
	cfg.FixedSlice = 50 * time.Millisecond
	s := core.New(cfg)
	fmt.Println(s.Name(), s.Slice())
	// Output: SFS-fixed50ms 50ms
}
