package core_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/workload"
)

// runWorkload replays tasks under the given scheduler and returns a
// metrics run.
func runWorkload(t *testing.T, name string, s cpusim.Scheduler, cores int, tasks []*task.Task) metrics.Run {
	t.Helper()
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 24 * time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	if eng.Aborted() {
		t.Fatalf("%s: simulation aborted with %d pending tasks", name, eng.Pending())
	}
	for _, tk := range tasks {
		if tk.Turnaround() < 0 {
			t.Fatalf("%s: task %d unfinished", name, tk.ID)
		}
		if tk.CPUUsed != tk.Service {
			t.Fatalf("%s: task %d consumed %v of %v CPU", name, tk.ID, tk.CPUUsed, tk.Service)
		}
		if tk.Turnaround() < tk.IdealDuration() {
			t.Fatalf("%s: task %d turnaround %v below ideal %v", name, tk.ID, tk.Turnaround(), tk.IdealDuration())
		}
	}
	return metrics.Run{Scheduler: name, Tasks: tasks}
}

func testWorkload(cores int, n int, load float64, seed uint64) *workload.Workload {
	return workload.Generate(workload.Spec{
		N:     n,
		Cores: cores,
		Load:  load,
		Seed:  seed,
	})
}

// TestAllSchedulersComplete runs the Azure-sampled workload under every
// scheduler and checks basic sanity of the outcome.
func TestAllSchedulersComplete(t *testing.T) {
	const cores = 4
	w := testWorkload(cores, 400, 0.8, 42)
	scheds := map[string]func() cpusim.Scheduler{
		"CFS":  func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
		"FIFO": func() cpusim.Scheduler { return sched.NewFIFO() },
		"RR":   func() cpusim.Scheduler { return sched.NewRR(0) },
		"SRTF": func() cpusim.Scheduler { return sched.NewSRTF() },
		"SFS":  func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
	}
	for name, mk := range scheds {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			runWorkload(t, name, mk(), cores, w.Clone())
		})
	}
}

// TestSFSBeatsCFSForShortFunctions is the headline claim: under high
// load, SFS dramatically improves the turnaround of the short-function
// majority relative to CFS, at a modest cost to the long minority.
func TestSFSBeatsCFSForShortFunctions(t *testing.T) {
	const cores = 8
	w := testWorkload(cores, 2000, 1.0, 7)

	cfsRun := runWorkload(t, "CFS", sched.NewCFS(sched.CFSConfig{}), cores, w.Clone())
	sfsRun := runWorkload(t, "SFS", core.New(core.DefaultConfig()), cores, w.Clone())

	sum := metrics.CompareRuns(cfsRun, sfsRun)
	t.Logf("short fraction=%.2f speedup=%.1fx; long fraction=%.2f slowdown=%.2fx; median speedup=%.2fx",
		sum.ShortFraction, sum.ShortSpeedup, sum.LongFraction, sum.LongSlowdown, sum.MedianSpeedup)

	if sum.ShortFraction < 0.6 {
		t.Errorf("expected a majority of tasks to improve under SFS, got %.2f", sum.ShortFraction)
	}
	// At steady Poisson load the backlog is moderate; the dramatic
	// paper-scale speedups appear under bursty trace arrivals (see
	// TestBurstyTraceMagnitudes).
	if sum.ShortSpeedup < 1.25 {
		t.Errorf("expected substantial speedup for improved tasks, got %.2fx", sum.ShortSpeedup)
	}
	// The paper reports 1.29x average slowdown for the long minority; be
	// generous but bounded.
	if sum.LongSlowdown > 6 {
		t.Errorf("long-task slowdown too severe: %.2fx", sum.LongSlowdown)
	}

	// RTE claim: far more SFS requests achieve RTE >= 0.95 than CFS.
	sfsHigh := sfsRun.FractionRTEAtLeast(0.95)
	cfsHigh := cfsRun.FractionRTEAtLeast(0.95)
	t.Logf("RTE>=0.95: SFS %.2f vs CFS %.2f", sfsHigh, cfsHigh)
	if sfsHigh <= cfsHigh {
		t.Errorf("SFS high-RTE fraction %.2f should exceed CFS %.2f", sfsHigh, cfsHigh)
	}
}

// TestSRTFBeatsCFS checks the motivation study's ordering (Fig 2): the
// SRTF oracle outperforms CFS on mean turnaround, and FIFO suffers the
// convoy effect (worst median for short tasks).
func TestSRTFBeatsCFS(t *testing.T) {
	const cores = 4
	w := testWorkload(cores, 1000, 1.0, 99)

	srtf := runWorkload(t, "SRTF", sched.NewSRTF(), cores, w.Clone())
	cfs := runWorkload(t, "CFS", sched.NewCFS(sched.CFSConfig{}), cores, w.Clone())
	fifo := runWorkload(t, "FIFO", sched.NewFIFO(), cores, w.Clone())

	if srtf.MeanTurnaround() >= cfs.MeanTurnaround() {
		t.Errorf("SRTF mean %v should beat CFS %v", srtf.MeanTurnaround(), cfs.MeanTurnaround())
	}
	// FIFO's convoy effect shows up at the median: short tasks queue
	// behind long ones.
	sp := metrics.StandardPercentiles
	fifoP := fifo.Percentiles(sp)
	srtfP := srtf.Percentiles(sp)
	if fifoP[0] <= srtfP[0] {
		t.Errorf("FIFO median %v should exceed SRTF median %v (convoy effect)", fifoP[0], srtfP[0])
	}
}
