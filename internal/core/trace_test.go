package core_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/workload"
)

// TestBurstyTraceMagnitudes replays the Azure-sampled trace workload
// (bursty arrivals, §VII) and checks the paper's headline relationships
// at full load: SFS ≫ CFS for the short majority, SRTF close to optimal,
// and a large gap in high-RTE fractions.
func TestBurstyTraceMagnitudes(t *testing.T) {
	if testing.Short() {
		t.Skip("trace replay is slow")
	}
	const cores = 12
	w := workload.AzureSampled(workload.AzureSampledSpec{
		N: 10000, Cores: cores, Load: 1.0, Seed: 5,
	})

	run := func(name string, s cpusim.Scheduler) metrics.Run {
		tasks := w.Clone()
		eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 1000 * time.Hour}, s)
		eng.Submit(tasks...)
		eng.Run()
		if eng.Aborted() {
			t.Fatalf("%s aborted", name)
		}
		return metrics.Run{Scheduler: name, Tasks: tasks}
	}

	cfs := run("CFS", sched.NewCFS(sched.CFSConfig{}))
	sfs := run("SFS", core.New(core.DefaultConfig()))
	srtf := run("SRTF", sched.NewSRTF())

	sum := metrics.CompareRuns(cfs, sfs)
	t.Logf("SFS vs CFS: improved=%.0f%% geo=%.1fx arith=%.1fx; regressed=%.0f%% slowdown=%.2fx (arith %.2fx)",
		100*sum.ShortFraction, sum.ShortSpeedup, sum.ShortSpeedupArith,
		100*sum.LongFraction, sum.LongSlowdown, sum.LongSlowdownArith)
	t.Logf("RTE>=0.95: SFS %.2f CFS %.2f SRTF %.2f",
		sfs.FractionRTEAtLeast(0.95), cfs.FractionRTEAtLeast(0.95), srtf.FractionRTEAtLeast(0.95))

	if sum.ShortFraction < 0.7 {
		t.Errorf("expected >=70%% of requests improved, got %.2f", sum.ShortFraction)
	}
	if sum.ShortSpeedupArith < 2 {
		t.Errorf("expected large mean speedup for improved requests, got %.2fx", sum.ShortSpeedupArith)
	}
	if sum.LongSlowdownArith > 4 {
		t.Errorf("long-task mean slowdown too severe: %.2fx", sum.LongSlowdownArith)
	}
	if got, want := sfs.FractionRTEAtLeast(0.95), cfs.FractionRTEAtLeast(0.95); got < want+0.3 {
		t.Errorf("SFS high-RTE fraction %.2f should far exceed CFS %.2f", got, want)
	}
	// SRTF (oracle) should have the best mean turnaround, SFS between
	// SRTF and CFS.
	if srtf.MeanTurnaround() > sfs.MeanTurnaround() {
		t.Errorf("SRTF mean %v should not exceed SFS mean %v", srtf.MeanTurnaround(), sfs.MeanTurnaround())
	}
	if sfs.MeanTurnaround() > cfs.MeanTurnaround() {
		t.Errorf("SFS mean %v should not exceed CFS mean %v", sfs.MeanTurnaround(), cfs.MeanTurnaround())
	}
	// Context switches: CFS should dominate (Fig 16).
	ratios := metrics.CtxSwitchRatios(cfs, sfs)
	above1 := 0
	for _, r := range ratios {
		if r > 1 {
			above1++
		}
	}
	if frac := float64(above1) / float64(len(ratios)); frac < 0.5 {
		t.Errorf("expected most requests to context-switch more under CFS, got %.2f", frac)
	}
}
