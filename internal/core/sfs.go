// Package core implements SFS, the paper's contribution: a user-space
// two-level function scheduler that approximates SRTF by combining a
// FIFO-like, dynamically time-sliced FILTER policy (level one, mapped to
// SCHED_FIFO in the real system) with CFS (level two) for functions that
// exhaust their slice.
//
// The scheduler plugs into the cpusim engine exactly like the Linux
// policy models in internal/sched, but internally it reproduces the
// architecture of Figure 4 of the paper:
//
//   - a single global queue of function requests (work conserving, load
//     balanced by construction);
//   - one SFS worker per core that fetches requests whenever free and
//     runs them in FILTER mode, bounded by the dynamic time slice S;
//   - a monitor that recomputes S = mean(IAT of last N requests) × cores
//     every N enqueued requests (§V-C);
//   - an I/O poller that observes running→sleep transitions only at poll
//     boundaries, stops slice timekeeping, and re-enqueues woken
//     functions to the global queue (§V-D);
//   - an overload detector that temporarily routes requests straight to
//     CFS when the head-of-queue delay exceeds O × S (§V-E).
package core

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
)

// Config holds the SFS tunables, with defaults matching the paper.
type Config struct {
	// WindowSize is N, the number of recent inter-arrival times the
	// monitor averages, and also the recomputation period (default 100).
	WindowSize int
	// InitialSlice seeds S before the first window recomputation
	// (default 100 ms).
	InitialSlice time.Duration
	// FixedSlice, when positive, disables adaptation and pins S (used by
	// the Fig 9 sensitivity study).
	FixedSlice time.Duration
	// OverloadFactor is O: a head-of-queue delay above O × S triggers
	// hybrid CFS routing (default 3).
	OverloadFactor float64
	// PollInterval is the kernel-status polling period (default 4 ms).
	PollInterval time.Duration
	// IOAware enables block detection via polling; when false SFS is
	// "I/O-oblivious" (Fig 11): slice time keeps ticking through I/O.
	IOAware bool
	// Hybrid enables the overload fallback to CFS; when false SFS is
	// "SFS w/o hybrid" (Fig 12).
	Hybrid bool
	// CFS configures the second-level scheduler.
	CFS sched.CFSConfig
	// SecondLevel optionally replaces the second-level scheduler
	// entirely (SFS is OS-scheduler-agnostic, §V-A); nil uses CFS with
	// the CFS config above. Used by the EEVDF ablation.
	SecondLevel cpusim.Scheduler
	// PerCoreQueue replaces the single global queue with per-worker
	// queues (round-robin request assignment, no stealing). The paper
	// rejects this design for its load imbalance and core
	// under-utilization (§VI); the ablation quantifies that argument.
	PerCoreQueue bool
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation.
func DefaultConfig() Config {
	return Config{
		WindowSize:     100,
		InitialSlice:   100 * time.Millisecond,
		OverloadFactor: 3,
		PollInterval:   4 * time.Millisecond,
		IOAware:        true,
		Hybrid:         true,
	}
}

// workerState enumerates what an SFS worker is doing.
type workerState int

const (
	wFree          workerState = iota // ready to fetch from the global queue
	wRunning                          // its FILTER task is on the core
	wBlockWait                        // task blocked; poll has not noticed yet
	wAttachedSleep                    // (oblivious mode) task blocked, slice ticking
	wResumePending                    // task woke; waiting to get its core back
)

func (s workerState) String() string {
	switch s {
	case wFree:
		return "free"
	case wRunning:
		return "running"
	case wBlockWait:
		return "block-wait"
	case wAttachedSleep:
		return "attached-sleep"
	case wResumePending:
		return "resume-pending"
	default:
		return fmt.Sprintf("worker(%d)", int(s))
	}
}

// worker is the per-core SFS scheduling worker (a goroutine in the real
// implementation).
type worker struct {
	state     workerState
	t         *task.Task
	ev        simtime.EventRef // pending detect (aware) or deadline (oblivious) event
	busySince simtime.Time
	busyTime  time.Duration // accumulated FILTER-mode core time (for the overhead model)
}

// ent is SFS's per-task scheduling state.
type ent struct {
	seq           int          // request submission ID (first-enqueue order)
	enq           simtime.Time // current global-queue enqueue timestamp
	sliceAssigned bool
	deadline      simtime.Time // oblivious mode: wall-clock slice deadline
	blockStart    simtime.Time
	worker        int // index of attached worker, -1 if none
	queue         int // assigned queue (always 0 with the global queue)
	delayRecorded bool
}

// SlicePoint is one sample of the monitor's adaptation timeline (Fig 10).
type SlicePoint struct {
	T       simtime.Time
	S       time.Duration
	MeanIAT time.Duration
}

// DelayPoint is one request's global-queue delay sample (Fig 12a).
type DelayPoint struct {
	Seq   int
	T     simtime.Time
	Delay time.Duration
}

// Stats aggregates SFS-internal counters for the experiments.
type Stats struct {
	SliceTimeline     []SlicePoint
	QueueDelays       []DelayPoint
	Demotions         int   // FILTER slice exhaustions demoted to CFS
	OverloadRouted    int   // requests routed directly to CFS by the hybrid path
	FilterCompletions int   // requests that finished entirely in FILTER mode
	Requests          int   // unique requests enqueued
	SchedulingOps     int64 // scheduling decisions taken (overhead model input)
	FilterBusy        time.Duration
}

// SFS is the Smart Function Scheduler. It implements cpusim.Scheduler.
type SFS struct {
	cfg     Config
	api     cpusim.API
	cfs     cpusim.Scheduler // second level; CFS unless overridden
	workers []worker

	// FIFO request queues: one global queue by default, or one per
	// worker in the PerCoreQueue ablation. Heads are at qHeads[i].
	queues [][]*task.Task
	qHeads []int

	s           time.Duration // current time slice parameter S
	window      *stats.Window
	lastArrival simtime.Time
	haveArrival bool
	sinceRecalc int

	ents map[*task.Task]*ent

	// Stat holds the run's internal counters and timelines.
	Stat Stats
}

// New constructs an SFS scheduler with the given configuration; zero
// fields are defaulted.
func New(cfg Config) *SFS {
	def := DefaultConfig()
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = def.WindowSize
	}
	if cfg.InitialSlice <= 0 {
		cfg.InitialSlice = def.InitialSlice
	}
	if cfg.OverloadFactor <= 0 {
		cfg.OverloadFactor = def.OverloadFactor
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = def.PollInterval
	}
	second := cfg.SecondLevel
	if second == nil {
		second = sched.NewCFS(cfg.CFS)
	}
	s := &SFS{
		cfg:    cfg,
		cfs:    second,
		window: stats.NewWindow(cfg.WindowSize),
		ents:   make(map[*task.Task]*ent),
	}
	s.s = cfg.InitialSlice
	if cfg.FixedSlice > 0 {
		s.s = cfg.FixedSlice
	}
	return s
}

// Name implements cpusim.Scheduler.
func (s *SFS) Name() string {
	switch {
	case s.cfg.SecondLevel != nil:
		return "SFS-on-" + s.cfg.SecondLevel.Name()
	case !s.cfg.Hybrid:
		return "SFS-noHybrid"
	case !s.cfg.IOAware:
		return "SFS-ioOblivious"
	case s.cfg.FixedSlice > 0:
		return fmt.Sprintf("SFS-fixed%dms", s.cfg.FixedSlice/time.Millisecond)
	case s.cfg.PerCoreQueue:
		return "SFS-perCoreQueue"
	default:
		return "SFS"
	}
}

// Bind implements cpusim.Scheduler.
func (s *SFS) Bind(api cpusim.API) {
	s.api = api
	s.cfs.Bind(api)
	s.workers = make([]worker, api.NumCores())
	nq := 1
	if s.cfg.PerCoreQueue {
		nq = api.NumCores()
	}
	s.queues = make([][]*task.Task, nq)
	s.qHeads = make([]int, nq)
	s.Stat.SliceTimeline = append(s.Stat.SliceTimeline, SlicePoint{T: 0, S: s.s})
}

// queueFor returns the queue index serving the given core.
func (s *SFS) queueFor(core int) int {
	if s.cfg.PerCoreQueue {
		return core
	}
	return 0
}

// Slice returns the current time slice parameter S.
func (s *SFS) Slice() time.Duration { return s.s }

// QueueLen returns the number of requests waiting across all queues.
func (s *SFS) QueueLen() int {
	n := 0
	for i := range s.queues {
		n += len(s.queues[i]) - s.qHeads[i]
	}
	return n
}

// entOf returns (creating if needed) the SFS state for t.
func (s *SFS) entOf(t *task.Task) *ent {
	e := s.ents[t]
	if e == nil {
		e = &ent{worker: -1, seq: -1}
		s.ents[t] = e
	}
	return e
}

// Enqueue implements cpusim.Scheduler: requests enter the global queue;
// demoted tasks go straight to CFS; attached wakes resume their worker.
func (s *SFS) Enqueue(now simtime.Time, t *task.Task) {
	s.Stat.SchedulingOps++
	if t.DemotedToCFS {
		s.cfs.Enqueue(now, t)
		return
	}
	e := s.entOf(t)

	// An I/O wake of a task still attached to a worker.
	if e.worker >= 0 {
		w := &s.workers[e.worker]
		if w.t != t {
			panic("core: worker/task attachment out of sync")
		}
		switch w.state {
		case wBlockWait:
			// Aware mode, but the task woke before the poll noticed the
			// block: the worker's timer never stopped, so the blocked
			// wall time is charged against the slice and the task
			// resumes in place.
			s.api.Cancel(w.ev)
			w.ev = simtime.EventRef{}
			t.SliceLeft -= now - e.blockStart
			if t.SliceLeft <= 0 {
				s.detach(w, e)
				s.demote(now, t)
				return
			}
			w.state = wResumePending
		case wAttachedSleep:
			// Oblivious mode: slice deadline is wall-clock; resume if
			// any budget remains.
			s.api.Cancel(w.ev)
			w.ev = simtime.EventRef{}
			if now >= e.deadline {
				s.detach(w, e)
				s.demote(now, t)
				return
			}
			w.state = wResumePending
		default:
			panic(fmt.Sprintf("core: wake for attached task but worker is %v", w.state))
		}
		return
	}

	// New request or a detached post-I/O re-enqueue.
	if e.seq < 0 {
		e.seq = s.Stat.Requests
		s.Stat.Requests++
		if s.cfg.PerCoreQueue {
			// Round-robin assignment, as a front-end load balancer
			// without queue-depth knowledge would do.
			e.queue = e.seq % len(s.queues)
		}
		if s.haveArrival {
			s.observeIAT(now, now-s.lastArrival)
		}
		s.lastArrival = now
		s.haveArrival = true
	}
	e.enq = now
	t.EnqueuedSFS = now
	s.queues[e.queue] = append(s.queues[e.queue], t)
}

// observeIAT feeds the monitor's sliding window and recomputes S every
// WindowSize requests (§V-C).
func (s *SFS) observeIAT(now simtime.Time, iat time.Duration) {
	s.window.Push(iat)
	s.sinceRecalc++
	if s.sinceRecalc < s.cfg.WindowSize {
		return
	}
	s.sinceRecalc = 0
	mean := s.window.Mean()
	if s.cfg.FixedSlice <= 0 {
		s.s = mean * time.Duration(s.api.NumCores())
		if s.s <= 0 {
			s.s = time.Millisecond
		}
	}
	s.Stat.SliceTimeline = append(s.Stat.SliceTimeline, SlicePoint{T: now, S: s.s, MeanIAT: mean})
}

// popQueue removes and returns the head of queue i.
func (s *SFS) popQueue(i int) *task.Task {
	t := s.queues[i][s.qHeads[i]]
	s.queues[i][s.qHeads[i]] = nil
	s.qHeads[i]++
	if s.qHeads[i] > 1024 && s.qHeads[i]*2 > len(s.queues[i]) {
		s.queues[i] = append([]*task.Task(nil), s.queues[i][s.qHeads[i]:]...)
		s.qHeads[i] = 0
	}
	return t
}

// peekQueue returns the head of queue i without removing it.
func (s *SFS) peekQueue(i int) *task.Task {
	if len(s.queues[i])-s.qHeads[i] == 0 {
		return nil
	}
	return s.queues[i][s.qHeads[i]]
}

// recordDelay records a request's first observed global-queue delay.
func (s *SFS) recordDelay(now simtime.Time, t *task.Task, e *ent) {
	if e.delayRecorded {
		return
	}
	e.delayRecorded = true
	delay := now - e.enq
	t.QueueDelay = delay
	s.Stat.QueueDelays = append(s.Stat.QueueDelays, DelayPoint{Seq: e.seq, T: now, Delay: delay})
}

// demote hands a FILTER task over to the CFS level permanently.
func (s *SFS) demote(now simtime.Time, t *task.Task) {
	t.DemotedToCFS = true
	s.Stat.Demotions++
	if t.State == task.StateRunnable {
		s.cfs.Enqueue(now, t)
	}
	// Sleeping tasks are routed to CFS by Enqueue when they wake.
}

// detach breaks the worker/task attachment.
func (s *SFS) detach(w *worker, e *ent) {
	w.t = nil
	w.state = wFree
	e.worker = -1
}

// overloaded reports whether a request that has waited delay should be
// routed straight to CFS under the hybrid policy (§V-E).
func (s *SFS) overloaded(delay time.Duration) bool {
	if !s.cfg.Hybrid {
		return false
	}
	return float64(delay) > s.cfg.OverloadFactor*float64(s.s)
}

// PickNext implements cpusim.Scheduler.
func (s *SFS) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	s.Stat.SchedulingOps++
	w := &s.workers[core]
	switch w.state {
	case wResumePending:
		t := w.t
		e := s.entOf(t)
		budget := t.SliceLeft
		if !s.cfg.IOAware {
			budget = e.deadline - now
		}
		if budget <= 0 {
			s.detach(w, e)
			s.demote(now, t)
			break // fall to the free path
		}
		w.state = wRunning
		w.busySince = now
		return t, budget
	case wBlockWait, wAttachedSleep:
		// Worker occupied; CFS sneaks in on this core (work
		// conservation, §V-D).
		return s.cfs.PickNext(now, core)
	case wRunning:
		// The engine believes the core is free, so the worker's task
		// must have just left via Descheduled; treat as free.
		w.state = wFree
		w.t = nil
	}

	qi := s.queueFor(core)
	for {
		t := s.peekQueue(qi)
		if t == nil {
			return s.cfs.PickNext(now, core)
		}
		e := s.entOf(t)
		delay := now - e.enq
		s.popQueue(qi)
		s.recordDelay(now, t, e)
		if s.overloaded(delay) {
			// Transient overload: bypass FILTER and let CFS drain the
			// backlog (§V-E).
			t.DemotedToCFS = true
			s.Stat.OverloadRouted++
			s.cfs.Enqueue(now, t)
			continue
		}
		if !e.sliceAssigned {
			e.sliceAssigned = true
			t.SliceLeft = s.s
			if !s.cfg.IOAware {
				e.deadline = now + s.s
			}
		}
		budget := t.SliceLeft
		if !s.cfg.IOAware {
			budget = e.deadline - now
		}
		if budget <= 0 {
			s.demote(now, t)
			continue
		}
		w.t = t
		w.state = wRunning
		w.busySince = now
		e.worker = core
		return t, budget
	}
}

// nextPollDelay returns how long after now the polling loop will next
// observe the task's kernel state (§V-D): polls happen on a fixed global
// grid with period PollInterval.
func (s *SFS) nextPollDelay(now simtime.Time) time.Duration {
	p := s.cfg.PollInterval
	rem := now % p
	return p - rem
}

// Descheduled implements cpusim.Scheduler.
func (s *SFS) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	s.Stat.SchedulingOps++
	if t.DemotedToCFS {
		s.cfs.Descheduled(now, core, t, ran, reason)
		return
	}
	w := &s.workers[core]
	if w.t != t || w.state != wRunning {
		panic(fmt.Sprintf("core: FILTER task descheduled but worker is %v", w.state))
	}
	e := s.entOf(t)
	w.busyTime += now - w.busySince
	s.Stat.FilterBusy += now - w.busySince
	t.SliceLeft -= ran

	switch reason {
	case cpusim.ReasonFinished:
		s.Stat.FilterCompletions++
		s.detach(w, e)
		delete(s.ents, t)
	case cpusim.ReasonPreempted:
		// Slice exhausted (the engine only preempts FILTER tasks at
		// their budget; SFS never volunteers them for preemption).
		s.detach(w, e)
		s.demote(now, t)
	case cpusim.ReasonBlocked:
		e.blockStart = now
		if s.cfg.IOAware {
			// The poller will notice the sleep at the next poll tick,
			// stop timekeeping, record the unused slice, and free the
			// worker. Until then the worker waits and only CFS can use
			// the core.
			w.state = wBlockWait
			w.ev = s.api.After(s.nextPollDelay(now), func(at simtime.Time) {
				s.onBlockDetected(at, core)
			})
		} else {
			// Oblivious mode: slice keeps ticking on the wall clock; if
			// the deadline passes while the task sleeps it is demoted.
			w.state = wAttachedSleep
			wait := e.deadline - now
			if wait < 0 {
				wait = 0
			}
			w.ev = s.api.After(wait, func(at simtime.Time) {
				s.onObliviousDeadline(at, core)
			})
		}
	}
}

// onBlockDetected fires at the poll tick after a FILTER task blocked
// (aware mode): the worker charges the blocked-so-far wall time against
// the slice, releases the task, and fetches new work.
func (s *SFS) onBlockDetected(now simtime.Time, core int) {
	s.Stat.SchedulingOps++
	w := &s.workers[core]
	if w.state != wBlockWait {
		return // the task woke first and the event should have been cancelled
	}
	t := w.t
	e := s.entOf(t)
	w.ev = simtime.EventRef{}
	// Timekeeping ran from the block until this detection.
	t.SliceLeft -= now - e.blockStart
	s.detach(w, e)
	if t.SliceLeft <= 0 {
		s.demote(now, t)
	}
	// The freed worker may immediately fetch the next request,
	// preempting any CFS task that sneaked onto the core.
	s.api.Reschedule(core)
}

// onObliviousDeadline fires when an attached sleeping task's wall-clock
// slice deadline passes in I/O-oblivious mode.
func (s *SFS) onObliviousDeadline(now simtime.Time, core int) {
	s.Stat.SchedulingOps++
	w := &s.workers[core]
	if w.state != wAttachedSleep {
		return
	}
	t := w.t
	e := s.entOf(t)
	w.ev = simtime.EventRef{}
	s.detach(w, e)
	s.demote(now, t)
	s.api.Reschedule(core)
}

// WantsPreempt implements cpusim.Scheduler: FILTER work preempts CFS-mode
// tasks (SCHED_FIFO has higher static priority than SCHED_NORMAL), but
// FILTER tasks themselves are never preempted by SFS.
func (s *SFS) WantsPreempt(now simtime.Time, core int) bool {
	cur := s.api.Running(core)
	if cur == nil {
		return false
	}
	w := &s.workers[core]
	if w.state == wRunning && w.t == cur {
		return false // never preempt a FILTER task
	}
	if w.state == wResumePending {
		return true // a woken FIFO task reclaims its core from CFS
	}
	if w.state == wFree {
		if head := s.peekQueue(s.queueFor(core)); head != nil {
			e := s.entOf(head)
			if !s.overloaded(now - e.enq) {
				return true // fresh FILTER work beats a CFS task
			}
		}
	}
	// Delegate to CFS's own wakeup-preemption logic for CFS-vs-CFS.
	return s.cfs.WantsPreempt(now, core)
}

// SecondLevel exposes the second-level scheduler (for tests, metrics,
// and the EEVDF ablation).
func (s *SFS) SecondLevel() cpusim.Scheduler { return s.cfs }
