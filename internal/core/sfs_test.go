package core_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/workload"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func runSFS(t *testing.T, cfg core.Config, cores int, tasks ...*task.Task) (*core.SFS, *cpusim.Engine) {
	t.Helper()
	s := core.New(cfg)
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	if eng.Aborted() {
		t.Fatal("simulation aborted")
	}
	return s, eng
}

func TestShortFunctionRunsUninterrupted(t *testing.T) {
	// A function shorter than S must complete in FILTER mode with zero
	// context switches and RTE 1 (§V-B case 4.1).
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(100)
	short := task.New(0, 0, ms(30))
	s, _ := runSFS(t, cfg, 1, short)
	if short.CtxSwitches != 0 {
		t.Fatalf("ctx switches %d", short.CtxSwitches)
	}
	if short.RTE() != 1.0 {
		t.Fatalf("RTE %v", short.RTE())
	}
	if short.DemotedToCFS {
		t.Fatal("short task was demoted")
	}
	if s.Stat.FilterCompletions != 1 {
		t.Fatalf("filter completions %d", s.Stat.FilterCompletions)
	}
}

func TestLongFunctionDemotedToCFS(t *testing.T) {
	// A function longer than S is preempted at the slice boundary and
	// demoted to CFS (§V-B case 4.2).
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(50)
	long := task.New(0, 0, ms(200))
	s, _ := runSFS(t, cfg, 1, long)
	if !long.DemotedToCFS {
		t.Fatal("long task was not demoted")
	}
	if s.Stat.Demotions != 1 {
		t.Fatalf("demotions %d", s.Stat.Demotions)
	}
	if long.Finish != ms(200) {
		t.Fatalf("finish %v (work conservation should complete it immediately)", long.Finish)
	}
}

func TestFilterPreemptsCFS(t *testing.T) {
	// A demoted long task is running under CFS; a new short request must
	// preempt it instantly (FIFO static priority beats CFS).
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(50)
	long := task.New(0, 0, ms(500))
	short := task.New(1, ms(100), ms(10))
	runSFS(t, cfg, 1, long, short)
	// Short arrives at 100ms while the demoted long runs under CFS; it
	// should start immediately and finish at 110ms.
	if short.Finish != ms(110) {
		t.Fatalf("short finish %v, want 110ms", short.Finish)
	}
	if short.WaitTime != 0 {
		t.Fatalf("short waited %v", short.WaitTime)
	}
}

func TestFIFOOrderWithinFilter(t *testing.T) {
	// FILTER schedules requests in enqueue order (First In...).
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(100)
	a := task.New(0, 0, ms(50))
	b := task.New(1, ms(1), ms(50))
	c := task.New(2, ms(2), ms(50))
	runSFS(t, cfg, 1, a, b, c)
	if !(a.Finish < b.Finish && b.Finish < c.Finish) {
		t.Fatalf("FILTER order violated: %v %v %v", a.Finish, b.Finish, c.Finish)
	}
	// b and c run to completion after waiting, with no preemption.
	if b.CtxSwitches != 0 || c.CtxSwitches != 0 {
		t.Fatal("queued FILTER tasks should not be preempted")
	}
}

func TestSliceAdaptsToIAT(t *testing.T) {
	// After WindowSize arrivals with mean IAT m, S should be ~m*cores
	// (§V-C).
	cfg := core.DefaultConfig()
	cfg.WindowSize = 50
	const cores = 4
	const iatMs = 20
	var tasks []*task.Task
	for i := 0; i < 120; i++ {
		tasks = append(tasks, task.New(i, time.Duration(i)*ms(iatMs), ms(5)))
	}
	s, _ := runSFS(t, cfg, cores, tasks...)
	want := ms(iatMs * cores)
	if s.Slice() != want {
		t.Fatalf("adapted S = %v, want %v", s.Slice(), want)
	}
	if len(s.Stat.SliceTimeline) < 3 {
		t.Fatalf("timeline has %d points, want >= 3 (initial + 2 recalcs)", len(s.Stat.SliceTimeline))
	}
}

func TestFixedSliceDoesNotAdapt(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.FixedSlice = ms(75)
	cfg.WindowSize = 10
	var tasks []*task.Task
	for i := 0; i < 50; i++ {
		tasks = append(tasks, task.New(i, time.Duration(i)*ms(5), ms(2)))
	}
	s, _ := runSFS(t, cfg, 2, tasks...)
	if s.Slice() != ms(75) {
		t.Fatalf("fixed S drifted to %v", s.Slice())
	}
}

func TestIOAwareStopsTimekeeping(t *testing.T) {
	// With I/O-aware polling, a leading I/O op must not consume the
	// FILTER slice: the function still completes in FILTER mode.
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(50)
	cfg.PollInterval = ms(4)
	// 40ms CPU after a 100ms leading I/O: oblivious SFS would demote
	// (100ms I/O > 50ms slice); aware SFS must not.
	tk := task.New(0, 0, ms(40)).WithIO(0, ms(100))
	s, _ := runSFS(t, cfg, 1, tk)
	if tk.DemotedToCFS {
		t.Fatal("I/O-aware SFS demoted a short task during its I/O")
	}
	if s.Stat.Demotions != 0 {
		t.Fatalf("demotions %d", s.Stat.Demotions)
	}
	// Turnaround: ~100ms I/O + 40ms CPU + up to one poll of detection
	// lag on the re-enqueue path.
	if tk.Turnaround() > ms(150) {
		t.Fatalf("turnaround %v too long", tk.Turnaround())
	}
}

func TestIOObliviousDemotesThroughSleep(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(50)
	cfg.IOAware = false
	tk := task.New(0, 0, ms(40)).WithIO(0, ms(100))
	s, _ := runSFS(t, cfg, 1, tk)
	if !tk.DemotedToCFS {
		t.Fatal("oblivious SFS should demote: the sleep burned the whole slice")
	}
	_ = s
}

func TestIOWorkConservationDuringBlock(t *testing.T) {
	// While a FILTER task sleeps, CFS tasks sneak onto the core (§V-D).
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(30)
	cfg.PollInterval = ms(4)
	// Long task demoted to CFS quickly.
	long := task.New(0, 0, ms(500))
	// Sleeper arrives, runs 5ms, sleeps 100ms.
	sleeper := task.New(1, ms(1), ms(10)).WithIO(ms(5), ms(100))
	runSFS(t, cfg, 1, long, sleeper)
	// The long task should finish around 500ms + overheads, having used
	// the sleeper's block time; without work conservation it would sit
	// idle 100ms.
	if long.Finish > ms(560) {
		t.Fatalf("long finish %v; core idled during the sleep", long.Finish)
	}
}

func TestOverloadRoutesToCFS(t *testing.T) {
	// A burst far exceeding FILTER throughput must trip the overload
	// detector and route requests straight to CFS (§V-E).
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(20)
	cfg.WindowSize = 1000 // keep S fixed during the burst
	var tasks []*task.Task
	for i := 0; i < 200; i++ {
		// All arrive at once: queueing delay for later requests greatly
		// exceeds O*S = 60ms.
		tasks = append(tasks, task.New(i, 0, ms(15)))
	}
	s, _ := runSFS(t, cfg, 2, tasks...)
	if s.Stat.OverloadRouted == 0 {
		t.Fatal("overload detector never fired")
	}
	if s.Stat.OverloadRouted < 100 {
		t.Fatalf("only %d requests routed to CFS during a 200-request burst", s.Stat.OverloadRouted)
	}
}

func TestNoHybridKeepsEverythingInFilter(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Hybrid = false
	cfg.InitialSlice = ms(20)
	var tasks []*task.Task
	for i := 0; i < 100; i++ {
		tasks = append(tasks, task.New(i, 0, ms(15)))
	}
	s, _ := runSFS(t, cfg, 2, tasks...)
	if s.Stat.OverloadRouted != 0 {
		t.Fatalf("hybrid disabled but %d requests routed", s.Stat.OverloadRouted)
	}
}

func TestHybridReducesQueueingDelay(t *testing.T) {
	// The paper's Fig 12: with hybrid, tail queueing delay during bursts
	// is much lower than without.
	mk := func() []*task.Task {
		var tasks []*task.Task
		id := 0
		at := time.Duration(0)
		// Steady phase, burst, steady phase.
		for i := 0; i < 100; i++ {
			tasks = append(tasks, task.New(id, at, ms(10)))
			id++
			at += ms(6)
		}
		for i := 0; i < 300; i++ { // burst: all within 30ms
			tasks = append(tasks, task.New(id, at+time.Duration(i)*100*time.Microsecond, ms(10)))
			id++
		}
		at += ms(30)
		for i := 0; i < 100; i++ {
			tasks = append(tasks, task.New(id, at, ms(10)))
			id++
			at += ms(6)
		}
		return tasks
	}
	cfgH := core.DefaultConfig()
	cfgH.InitialSlice = ms(12)
	cfgH.WindowSize = 100000 // pin S
	sH, _ := runSFS(t, cfgH, 2, mk()...)

	cfgN := cfgH
	cfgN.Hybrid = false
	sN, _ := runSFS(t, cfgN, 2, mk()...)

	maxDelay := func(s *core.SFS) time.Duration {
		var m time.Duration
		for _, d := range s.Stat.QueueDelays {
			if d.Delay > m {
				m = d.Delay
			}
		}
		return m
	}
	h, n := maxDelay(sH), maxDelay(sN)
	t.Logf("max queue delay: hybrid=%v nohybrid=%v", h, n)
	if h >= n {
		t.Fatalf("hybrid max delay %v should be below no-hybrid %v", h, n)
	}
}

func TestResumedTaskUsesRemainingSlice(t *testing.T) {
	// §V-D: when a woken function is rescheduled in FILTER, it runs for
	// the remainder of its slice, then demotes.
	cfg := core.DefaultConfig()
	cfg.InitialSlice = ms(50)
	cfg.PollInterval = ms(1)
	// 10ms CPU, sleep, then 60ms more CPU: slice (50ms) minus first
	// burst (10ms) leaves 40ms, so it demotes mid-second-burst.
	tk := task.New(0, 0, ms(70)).WithIO(ms(10), ms(30))
	s, _ := runSFS(t, cfg, 1, tk)
	if !tk.DemotedToCFS {
		t.Fatal("task should exhaust slice remainder and demote")
	}
	if s.Stat.Demotions != 1 {
		t.Fatalf("demotions %d", s.Stat.Demotions)
	}
	if tk.Finish < ms(100) || tk.Finish > ms(120) {
		t.Fatalf("finish %v, want ~100-120ms (70 CPU + 30 IO + overheads)", tk.Finish)
	}
}

func TestQueueDelayRecordedPerRequest(t *testing.T) {
	cfg := core.DefaultConfig()
	var tasks []*task.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, task.New(i, time.Duration(i)*ms(1), ms(5)))
	}
	s, _ := runSFS(t, cfg, 2, tasks...)
	if len(s.Stat.QueueDelays) != 20 {
		t.Fatalf("recorded %d delay samples, want 20", len(s.Stat.QueueDelays))
	}
	seen := map[int]bool{}
	for _, d := range s.Stat.QueueDelays {
		if seen[d.Seq] {
			t.Fatalf("duplicate delay sample for request %d", d.Seq)
		}
		seen[d.Seq] = true
		if d.Delay < 0 {
			t.Fatalf("negative delay %v", d.Delay)
		}
	}
}

func TestSFSNames(t *testing.T) {
	if core.New(core.DefaultConfig()).Name() != "SFS" {
		t.Fatal("default name")
	}
	cfg := core.DefaultConfig()
	cfg.Hybrid = false
	if core.New(cfg).Name() != "SFS-noHybrid" {
		t.Fatal("noHybrid name")
	}
	cfg = core.DefaultConfig()
	cfg.IOAware = false
	if core.New(cfg).Name() != "SFS-ioOblivious" {
		t.Fatal("ioOblivious name")
	}
	cfg = core.DefaultConfig()
	cfg.FixedSlice = ms(100)
	if core.New(cfg).Name() != "SFS-fixed100ms" {
		t.Fatal("fixed name")
	}
}

func TestPerCoreQueueLoadImbalance(t *testing.T) {
	// Two cores, per-core queues, round-robin assignment: requests with
	// even submission order land on queue 0, odd on queue 1. A long
	// first request on queue 0 convoys every even-indexed short behind
	// it, while the global-queue variant lets any free worker take them.
	mk := func(perCore bool) (time.Duration, *core.SFS) {
		cfg := core.DefaultConfig()
		cfg.InitialSlice = time.Second // no demotion: pure queueing effect
		cfg.WindowSize = 100000
		cfg.PerCoreQueue = perCore
		var tasks []*task.Task
		tasks = append(tasks, task.New(0, 0, 800*time.Millisecond)) // queue 0
		for i := 1; i < 20; i++ {
			tasks = append(tasks, task.New(i, time.Duration(i)*time.Millisecond, 5*time.Millisecond))
		}
		s, _ := runSFS(t, cfg, 2, tasks...)
		var sum time.Duration
		for _, tk := range tasks[1:] {
			sum += tk.Turnaround()
		}
		return sum / time.Duration(len(tasks)-1), s
	}
	globalMean, _ := mk(false)
	perCoreMean, s := mk(true)
	if s.Name() != "SFS-perCoreQueue" {
		t.Fatalf("name %q", s.Name())
	}
	t.Logf("mean short turnaround: global=%v per-core=%v", globalMean, perCoreMean)
	if perCoreMean <= globalMean {
		t.Fatalf("per-core queues (%v) should convoy shorts vs global queue (%v)", perCoreMean, globalMean)
	}
}

func TestPerCoreQueueStillCompletesEverything(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.PerCoreQueue = true
	w := workload.Generate(workload.Spec{N: 500, Cores: 4, Load: 0.9, Seed: 33, IOFraction: 0.3})
	s, eng := runSFS(t, cfg, 4, w.Clone()...)
	if eng.Pending() != 0 {
		t.Fatal("unfinished tasks under per-core queues")
	}
	if s.Stat.Requests != 500 {
		t.Fatalf("requests %d", s.Stat.Requests)
	}
}

func TestWorkloadIntegrationWithIOKnob(t *testing.T) {
	// Fig 11 setup: 75% of requests carry one leading 10-100ms I/O op.
	w := workload.Generate(workload.Spec{
		N: 300, Cores: 2, Load: 0.8, Seed: 21,
		IOFraction: 0.75,
		Duration:   dist.Uniform{Lo: ms(5), Hi: ms(80)},
	})
	withIO := 0
	for _, tk := range w.Tasks {
		if len(tk.IOOps) > 0 {
			withIO++
		}
	}
	frac := float64(withIO) / float64(len(w.Tasks))
	if frac < 0.65 || frac > 0.85 {
		t.Fatalf("IO fraction %.2f, want ~0.75", frac)
	}
	s, eng := runSFS(t, core.DefaultConfig(), 2, w.Clone()...)
	_ = s
	if eng.Pending() != 0 {
		t.Fatal("unfinished tasks")
	}
}
