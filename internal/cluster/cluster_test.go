package cluster

import (
	"fmt"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// testSource returns a modest Azure-sampled stream calibrated for the
// given total core count.
func testSource(n, totalCores int, seed uint64) trace.Source {
	return workload.AzureSampledStream(workload.AzureSampledSpec{
		N: n, Cores: totalCores, Load: 0.9, Seed: seed,
	})
}

func mkCluster(t *testing.T, hosts, cores int, sched, dispatch string, seed uint64) *Cluster {
	t.Helper()
	d, err := NewDispatcher(dispatch, FactoryConfig{Hosts: hosts, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Hosts:        hosts,
		CoresPerHost: cores,
		NewScheduler: func() cpusim.Scheduler { s, _ := schedulers.New(sched); return s },
		Dispatcher:   d,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAllPoliciesCompleteAllTasks: every registered policy must finish
// every invocation under every registered scheduler's default config.
func TestAllPoliciesCompleteAllTasks(t *testing.T) {
	const n, hosts, cores = 400, 3, 4
	for _, dispatch := range Names() {
		t.Run(dispatch, func(t *testing.T) {
			c := mkCluster(t, hosts, cores, "SFS", dispatch, 7)
			res, err := c.Run(testSource(n, hosts*cores, 7))
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted {
				t.Fatal("run aborted")
			}
			if got := len(res.Merged.Tasks); got != n {
				t.Fatalf("merged run has %d tasks, want %d", got, n)
			}
			finished := 0
			total := 0
			for _, t2 := range res.Merged.Tasks {
				if t2.Turnaround() >= 0 {
					finished++
				}
			}
			for _, hr := range res.PerHost {
				total += hr.Dispatches
				if hr.Dispatches != len(hr.Run.Tasks) {
					t.Errorf("host dispatches %d != host task count %d", hr.Dispatches, len(hr.Run.Tasks))
				}
			}
			if finished != n {
				t.Errorf("%d of %d tasks finished", finished, n)
			}
			if total != n {
				t.Errorf("host dispatches sum to %d, want %d", total, n)
			}
			if res.Makespan <= 0 {
				t.Error("non-positive makespan")
			}
		})
	}
}

// fingerprint reduces a result to a comparison string covering the
// acceptance criterion's "identical metrics" bar.
func fingerprint(res *Result) string {
	ps := res.Merged.Percentiles([]float64{50, 99, 99.9})
	s := fmt.Sprintf("%s|%v|%v %v %v|%v|q=%v/%v/%d|",
		res.Merged.Scheduler, res.Makespan, ps[0], ps[1], ps[2],
		res.Merged.MeanTurnaround(), res.QueueDelayMean, res.QueueDelayMax, res.CentralQueueMax)
	for _, hr := range res.PerHost {
		s += fmt.Sprintf("h(%d,%d,%.6f)", hr.Dispatches, hr.CtxSwitches, hr.Utilization)
	}
	return s
}

// TestDeterminism: same seed + spec + host count must yield identical
// metrics across runs, for every policy and several host counts.
func TestDeterminism(t *testing.T) {
	const n, cores = 300, 4
	for _, hosts := range []int{1, 2, 5} {
		for _, dispatch := range Names() {
			t.Run(fmt.Sprintf("%s/hosts=%d", dispatch, hosts), func(t *testing.T) {
				run := func() string {
					c := mkCluster(t, hosts, cores, "SFS", dispatch, 99)
					res, err := c.Run(testSource(n, hosts*cores, 99))
					if err != nil {
						t.Fatal(err)
					}
					return fingerprint(res)
				}
				a, b := run(), run()
				if a != b {
					t.Fatalf("non-deterministic cluster run:\n  %s\n  %s", a, b)
				}
			})
		}
	}
}

// TestSingleHostMatchesEngine: a 1-host cluster under a push policy
// must reproduce a plain cpusim run of the same trace exactly.
func TestSingleHostMatchesEngine(t *testing.T) {
	const n, cores = 300, 4
	c := mkCluster(t, 1, cores, "CFS", "RR", 3)
	res, err := c.Run(testSource(n, cores, 3))
	if err != nil {
		t.Fatal(err)
	}

	s, err := schedulers.New("CFS")
	if err != nil {
		t.Fatal(err)
	}
	tasks := trace.Collect(testSource(n, cores, 3))
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 10000 * time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	direct := metrics.Run{Tasks: tasks}

	want := direct.Percentiles([]float64{50, 99})
	got := res.Merged.Percentiles([]float64{50, 99})
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("1-host cluster diverges from direct engine: p[%d] %v != %v", i, got[i], want[i])
		}
	}
	if direct.MeanTurnaround() != res.Merged.MeanTurnaround() {
		t.Fatalf("mean turnaround %v != %v", res.Merged.MeanTurnaround(), direct.MeanTurnaround())
	}
}

// TestRoundRobinSpreadsEvenly: RR must balance dispatch counts to
// within one invocation.
func TestRoundRobinSpreadsEvenly(t *testing.T) {
	const n, hosts, cores = 400, 4, 2
	c := mkCluster(t, hosts, cores, "FIFO", "RR", 1)
	res, err := c.Run(testSource(n, hosts*cores, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, hr := range res.PerHost {
		if hr.Dispatches != n/hosts {
			t.Errorf("uneven RR split: %d", hr.Dispatches)
		}
	}
}

// TestHashAffinityIsSticky: with a multi-app mix, every invocation of
// one application must land on the same host.
func TestHashAffinityIsSticky(t *testing.T) {
	const n, hosts, cores = 400, 4, 2
	src := workload.AzureSampledStream(workload.AzureSampledSpec{
		N: n, Cores: hosts * cores, Load: 0.8, Seed: 5,
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
	c := mkCluster(t, hosts, cores, "CFS", "HASH", 5)
	res, err := c.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	appHost := map[string]int{}
	for hi, hr := range res.PerHost {
		for _, tk := range hr.Run.Tasks {
			if prev, ok := appHost[tk.App]; ok && prev != hi {
				t.Fatalf("app %s split across hosts %d and %d", tk.App, prev, hi)
			}
			appHost[tk.App] = hi
		}
	}
}

// TestPullBasedBoundsInFlight: under PULL no host may ever hold more
// in-flight invocations than cores, and overflow shows up as central
// queueing.
func TestPullBasedBoundsInFlight(t *testing.T) {
	const hosts, cores = 2, 2
	// A deliberate burst: 40 long tasks arriving at once on 4 total
	// cores forces central queueing.
	var tasks []*task.Task
	for i := 0; i < 40; i++ {
		tasks = append(tasks, task.New(i, 0, 50*time.Millisecond))
	}
	src := trace.FromTasks("burst", tasks)
	c := mkCluster(t, hosts, cores, "FIFO", "PULL", 1)
	res, err := c.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.CentralQueueMax == 0 {
		t.Error("burst should have queued centrally")
	}
	if res.QueueDelayMax == 0 {
		t.Error("central queueing should delay dispatch")
	}
	for _, hr := range res.PerHost {
		if hr.Dispatches != 20 {
			t.Errorf("pull should spread the burst evenly, got %d", hr.Dispatches)
		}
	}
	// Every task still finishes, and turnaround includes queue delay.
	for _, tk := range res.Merged.Tasks {
		if tk.Turnaround() < 0 {
			t.Fatalf("task %d unfinished", tk.ID)
		}
	}
}

// TestLeastLoadedPrefersIdle: with one host pre-loaded, LEASTLOADED
// must send the next arrival elsewhere.
func TestLeastLoadedPrefersIdle(t *testing.T) {
	tasks := []*task.Task{
		task.New(0, 0, 100*time.Millisecond),
		task.New(1, simtime.Time(time.Millisecond), 10*time.Millisecond),
	}
	c := mkCluster(t, 2, 1, "FIFO", "LEASTLOADED", 1)
	res, err := c.Run(trace.FromTasks("pair", tasks))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerHost[0].Dispatches != 1 || res.PerHost[1].Dispatches != 1 {
		t.Fatalf("least-loaded should split the pair, got %d/%d",
			res.PerHost[0].Dispatches, res.PerHost[1].Dispatches)
	}
}

// TestConfigValidation covers New's error paths.
func TestConfigValidation(t *testing.T) {
	d, _ := NewDispatcher("RR", FactoryConfig{})
	mk := func() cpusim.Scheduler { s, _ := schedulers.New("FIFO"); return s }
	cases := []Config{
		{Hosts: 0, CoresPerHost: 1, NewScheduler: mk, Dispatcher: d},
		{Hosts: 1, CoresPerHost: 0, NewScheduler: mk, Dispatcher: d},
		{Hosts: 1, CoresPerHost: 1, Dispatcher: d},
		{Hosts: 1, CoresPerHost: 1, NewScheduler: mk},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}
