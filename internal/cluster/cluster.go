// Package cluster is the multi-host simulation layer: it fans one
// trace.Source out across N simulated hosts, each a host.Runtime
// running its own cpusim engine under its own scheduler instance (SFS,
// CFS, EEVDF, …), and merges per-host results into cluster-level
// summaries.
//
// The paper evaluates SFS on a single host; this layer grows the
// reproduction into a scheduling-evaluation system for the cluster
// questions raised by follow-on work — Kaffes et al.'s core-granular
// cluster scheduling and Hiku's pull-based dispatch — where cluster
// placement interacts with each host's OS-level scheduler. A pluggable
// Dispatcher decides which host sees each invocation; a central FIFO
// queue holds work that pull-based policies decline to place.
//
// Per-host behavior is composed from host-runtime stages
// (internal/host): with Config.NewLifecycle set every host carries a
// container lifecycle stage (internal/lifecycle) — an invocation
// acquires a warm or cold container on its dispatched host, cold-start
// latency delays the instant it becomes runnable there, and dispatch
// policies can route on warm state (WARMFIRST prefers hosts already
// holding an idle sandbox for the app) — and completion-observing
// dispatchers and the chain coordinator tap completions through
// further stages on the same pipeline.
//
// The simulation is deterministic: every engine is driven from one
// global loop that always fires the globally-earliest pending event
// (host ties break by index, host events before same-instant arrivals),
// dispatchers are deterministic functions of seed and observed state,
// container expiry and pre-warm events are processed in the same global
// time order, and sources are deterministic in their spec — so the same
// spec/seed/host-count/policy yields identical metrics on every run.
//
// With Config.Shards > 0 the run switches to the sharded
// discrete-event engine (sharded.go): hosts are partitioned into
// shards that advance in parallel between epoch barriers spaced by the
// modeled dispatch latency. Sharded output is deterministic in the
// same strong sense — identical at any shard and worker count — but
// models a non-zero dispatcher→host latency, so it is a distinct
// (coarser-grained) simulation from the zero-latency serial path. Both
// paths drive hosts through the same host.Group advance primitives, so
// a stage wired once works at any -shards count.
package cluster

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Config parameterizes a cluster run.
type Config struct {
	// Hosts is the number of simulated hosts.
	Hosts int
	// CoresPerHost is each host's core count.
	CoresPerHost int
	// CtxSwitchCost is passed through to every host engine.
	CtxSwitchCost time.Duration
	// Speeds gives each host a relative CPU speed factor (1.0 =
	// baseline): host i retires Speeds[i] seconds of CPU demand per
	// second of wall time, modeling a heterogeneous fleet of machine
	// generations. Empty means a uniform fleet at 1.0; otherwise the
	// length must equal Hosts and every factor must be positive and
	// finite. Task demand accounting stays in unit-speed terms, so the
	// same trace is comparable across fleets.
	Speeds []float64
	// NetDelay, when non-nil, samples a dispatcher→host network delay
	// for every successful placement, added to the instant the
	// invocation becomes runnable on its host (on top of any cold
	// start). Draws come from one cluster-owned stream seeded by
	// NetDelaySeed, consumed in dispatch order — deterministic at any
	// shard count. Negative samples are clamped to zero; a negative
	// mean is rejected at New.
	NetDelay dist.Distribution
	// NetDelaySeed seeds the NetDelay sample stream.
	NetDelaySeed uint64
	// Deadline aborts the simulation at this virtual time if tasks are
	// still unfinished (0 = no deadline).
	Deadline simtime.Time
	// NewScheduler constructs one OS-level scheduler per host; every
	// host gets its own instance so scheduler state never leaks across
	// machines.
	NewScheduler func() cpusim.Scheduler
	// Dispatcher is the cluster-level placement policy.
	Dispatcher Dispatcher
	// NewLifecycle, when non-nil, constructs one container lifecycle
	// manager per host: invocations acquire a (possibly cold) container
	// on their dispatched host, and affinity-aware dispatchers can read
	// each host's warm pool through Host.Warm. Nil models the paper's
	// pre-warmed setup with no cold starts.
	NewLifecycle func() *lifecycle.Manager
	// Chain, when non-nil, expands requests into function-chain
	// workflows (internal/chain): root stages dispatch at the request's
	// arrival, and each completion releases its downstream stages back
	// through the dispatcher — so successive stages may land on
	// different hosts (and, with NewLifecycle set, hit per-host warm
	// pools). Per-workflow end-to-end results land in Result.Workflows.
	Chain *chain.Config
	// Shards, when > 0, partitions the hosts into that many contiguous
	// shards advanced in parallel between epoch barriers (see
	// sharded.go). Shard counts above Hosts are clamped. 0 selects the
	// legacy zero-latency serial loop.
	Shards int
	// DispatchLatency is the modeled dispatcher→host latency in sharded
	// mode; it is the conservative lookahead between barriers, so every
	// cross-shard interaction (central-queue claims, chain-stage
	// handoffs) costs at least one latency. Zero defaults to
	// DefaultDispatchLatency. Ignored when Shards == 0.
	DispatchLatency time.Duration
	// Workers caps the goroutines advancing shards inside a window in
	// sharded mode; 0 uses GOMAXPROCS. Output is identical at any
	// worker count. Ignored when Shards == 0.
	Workers int
}

// node pairs one host runtime with its dispatch accounting and
// (optionally) its container lifecycle manager. It implements the Host
// view dispatchers decide from. The runtime (and its stage pipeline)
// is wired at Run start, because the stage set depends on the
// execution mode.
type node struct {
	idx        int
	eng        *cpusim.Engine
	mgr        *lifecycle.Manager // nil when lifecycle modeling is off
	rt         *host.Runtime      // set at Run start
	speed      float64
	dispatched int
}

func (n *node) Index() int      { return n.idx }
func (n *node) Speed() float64  { return n.speed }
func (n *node) Cores() int      { return n.eng.NumCores() }
func (n *node) InFlight() int   { return n.eng.Pending() + n.assigned() }
func (n *node) BusyCores() int  { return n.eng.BusyCores() }
func (n *node) Dispatched() int { return n.dispatched }

func (n *node) Warm(app string) int {
	if n.mgr == nil {
		return 0
	}
	return n.mgr.WarmIdle(app)
}

func (n *node) Queued() int {
	if q := n.eng.Pending() + n.assigned() - n.eng.BusyCores(); q > 0 {
		return q
	}
	return 0
}

// assigned counts invocations assigned to this host but not yet
// submitted to its engine (sharded mode defers submission into the
// owning shard's window). Folding it into the dispatcher's view keeps
// same-window assignments visible to later placement decisions; it is
// always zero on the serial path and at barriers after a window has
// run.
func (n *node) assigned() int {
	if n.rt == nil {
		return 0
	}
	return n.rt.Queued()
}

// record remembers an invocation's pre-dispatch identity so metrics can
// be computed against original arrival times after the run.
type record struct {
	t    *task.Task
	orig simtime.Time // arrival as emitted by the source
	host int
	at   simtime.Time // dispatch instant (== orig unless held centrally)
}

// HostResult is one host's share of a cluster run.
type HostResult struct {
	Run         metrics.Run
	Dispatches  int
	CtxSwitches int64
	Utilization float64
	// Speed is the host's CPU speed factor (1.0 on uniform fleets).
	Speed float64
	// Lifecycle holds the host's container warm-pool counters (zero
	// when lifecycle modeling was off).
	Lifecycle lifecycle.Stats
}

// Result is the outcome of a cluster run.
type Result struct {
	Scheduler  string // per-host scheduler name
	Dispatcher string
	// Merged views every invocation cluster-wide, in source order, with
	// turnarounds measured from original arrival — central-queue delay
	// under pull-based policies counts against the request.
	Merged  metrics.Run
	PerHost []HostResult
	// Makespan is the latest finish time across all hosts.
	Makespan simtime.Time
	// QueueDelayMax/QueueDelayMean summarize time spent in the central
	// queue before dispatch (zero under pure push policies).
	QueueDelayMax  time.Duration
	QueueDelayMean time.Duration
	// CentralQueueMax is the central queue's high-water mark.
	CentralQueueMax int
	// Lifecycle merges every host's container warm-pool counters (zero
	// when Config.NewLifecycle was nil).
	Lifecycle lifecycle.Stats
	// Workflows holds per-workflow end-to-end results when Config.Chain
	// was set (empty otherwise).
	Workflows metrics.WorkflowRun
	// Shards records how many shards the run used (0 = serial path);
	// Lookahead is the epoch-barrier lookahead that applied (zero on
	// the serial path).
	Shards    int
	Lookahead time.Duration
	// Aborted reports that the run ended with unfinished work: a
	// deadline abort, or a host left stranded with pending tasks and no
	// future events (a scheduler that parked work without re-arming).
	// A dispatcher stall — work held centrally while every host sat
	// idle — is reported as an error from Run instead.
	Aborted bool
}

// RenderPerHost returns the human-readable per-host breakdown both
// CLIs print: an optional central-queue summary line followed by one
// table row per host.
func (res *Result) RenderPerHost() string {
	var b strings.Builder
	if res.QueueDelayMax > 0 {
		fmt.Fprintf(&b, "central queue: high-water %d held, dispatch delay mean %s max %s\n",
			res.CentralQueueMax, metrics.FormatDuration(res.QueueDelayMean), metrics.FormatDuration(res.QueueDelayMax))
	}
	header := []string{"host", "dispatched", "ctx switches", "util", "p50", "p99", "mean"}
	// The speed column appears only on heterogeneous fleets, so uniform
	// output (and every fixture that predates speeds) is unchanged.
	withSpeed := false
	for _, hr := range res.PerHost {
		if hr.Speed != 0 && hr.Speed != 1 {
			withSpeed = true
		}
	}
	if withSpeed {
		header = append([]string{header[0], "speed"}, header[1:]...)
	}
	withLifecycle := res.Lifecycle.Invocations > 0
	if withLifecycle {
		header = append(header, metrics.ColdStartHeader()...)
	}
	var rows [][]string
	for i, hr := range res.PerHost {
		sum := hr.Run.Summarize(50, 99)
		ps := sum.Percentiles()
		row := []string{
			fmt.Sprintf("%d", i),
		}
		if withSpeed {
			row = append(row, fmt.Sprintf("%.2gx", hr.Speed))
		}
		row = append(row,
			fmt.Sprintf("%d", hr.Dispatches),
			fmt.Sprintf("%d", hr.CtxSwitches),
			fmt.Sprintf("%.0f%%", hr.Utilization*100),
			metrics.FormatDuration(ps[0]),
			metrics.FormatDuration(ps[1]),
			metrics.FormatDuration(sum.Mean()),
		)
		if withLifecycle {
			row = append(row, hr.Lifecycle.Columns()...)
		}
		rows = append(rows, row)
	}
	b.WriteString(metrics.Table(header, rows))
	return b.String()
}

// Cluster simulates N hosts behind one dispatcher.
type Cluster struct {
	cfg    Config
	nodes  []*node
	views  []Host
	inj    *chain.Injector    // nil unless Config.Chain was set
	obs    CompletionObserver // the dispatcher, when it wants completions
	netRNG *rng.RNG           // nil unless Config.NetDelay was set
}

// netDelayOf draws the next dispatch's network delay (zero when the
// model is off), clamping negative samples.
func (c *Cluster) netDelayOf() time.Duration {
	if c.netRNG == nil {
		return 0
	}
	if d := c.cfg.NetDelay.Sample(c.netRNG); d > 0 {
		return d
	}
	return 0
}

// New validates the config and builds the cluster's hosts.
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("cluster: need at least one host, got %d", cfg.Hosts)
	}
	if cfg.CoresPerHost <= 0 {
		return nil, fmt.Errorf("cluster: need at least one core per host, got %d", cfg.CoresPerHost)
	}
	if cfg.NewScheduler == nil {
		return nil, fmt.Errorf("cluster: NewScheduler is required")
	}
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("cluster: Dispatcher is required")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: negative shard count %d", cfg.Shards)
	}
	if cfg.DispatchLatency < 0 {
		return nil, fmt.Errorf("cluster: negative dispatch latency %v", cfg.DispatchLatency)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("cluster: negative worker count %d", cfg.Workers)
	}
	if len(cfg.Speeds) > 0 && len(cfg.Speeds) != cfg.Hosts {
		return nil, fmt.Errorf("cluster: %d speed factors for %d hosts", len(cfg.Speeds), cfg.Hosts)
	}
	for i, sp := range cfg.Speeds {
		if sp <= 0 || math.IsNaN(sp) || math.IsInf(sp, 0) {
			return nil, fmt.Errorf("cluster: host %d has invalid speed factor %v (must be positive and finite)", i, sp)
		}
	}
	if cfg.NetDelay != nil && cfg.NetDelay.Mean() < 0 {
		return nil, fmt.Errorf("cluster: network delay %s has negative mean %v", cfg.NetDelay, cfg.NetDelay.Mean())
	}
	c := &Cluster{cfg: cfg}
	c.obs, _ = cfg.Dispatcher.(CompletionObserver)
	if cfg.NetDelay != nil {
		c.netRNG = rng.New(cfg.NetDelaySeed)
	}
	if cfg.Chain != nil {
		inj, err := chain.NewInjector(*cfg.Chain)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.inj = inj
	}
	for i := 0; i < cfg.Hosts; i++ {
		sp := 1.0
		if len(cfg.Speeds) > 0 {
			sp = cfg.Speeds[i]
		}
		n := &node{idx: i, speed: sp, eng: cpusim.NewEngine(cpusim.Config{
			Cores:         cfg.CoresPerHost,
			CtxSwitchCost: cfg.CtxSwitchCost,
			Speed:         sp,
		}, cfg.NewScheduler())}
		if cfg.NewLifecycle != nil {
			if n.mgr = cfg.NewLifecycle(); n.mgr == nil {
				return nil, fmt.Errorf("cluster: NewLifecycle returned nil for host %d", i)
			}
		}
		c.nodes = append(c.nodes, n)
		c.views = append(c.views, n)
	}
	return c, nil
}

// wireRuntimes wraps every node's engine in a host.Runtime running the
// given per-node stage pipeline (nil entries are dropped) and returns
// the fleet as a slice for host.Group. stagesFor is consulted once per
// node, in index order.
func (c *Cluster) wireRuntimes(stagesFor func(n *node) []host.Stage) []*host.Runtime {
	rts := make([]*host.Runtime, len(c.nodes))
	for i, n := range c.nodes {
		n.rt = host.New(n.eng, stagesFor(n)...)
		rts[i] = n.rt
	}
	return rts
}

// Run pulls the source to exhaustion through the dispatcher and drives
// every host engine to completion in global virtual-time order. A
// Cluster is single-use: build a fresh one per run.
func (c *Cluster) Run(src trace.Source) (*Result, error) {
	if c.cfg.Shards > 0 {
		return c.runSharded(src)
	}
	deadline := c.cfg.Deadline
	if deadline == 0 {
		deadline = simtime.Infinity
	}

	var (
		records []record
		central []int // indices into records of held invocations, FIFO
		maxQ    int
		now     simtime.Time
		aborted bool
	)

	// Per-host stage pipelines, hooked in the serial loop's completion
	// order: the lifecycle stage releases the finished invocation's
	// container back to the warm pool, a completion-observing
	// dispatcher (PREDICTED) is notified synchronously at the finish
	// event — before the freed capacity is re-offered below — and
	// completions are collected for the chain injector, which may
	// release downstream stages back through the dispatcher.
	var finished []*task.Task
	g := host.NewGroup(c.wireRuntimes(func(n *node) []host.Stage {
		var stages []host.Stage
		if n.mgr != nil {
			stages = append(stages, lifecycle.NewHostStage(n.mgr))
		}
		if c.obs != nil {
			hi := n.idx
			stages = append(stages, host.FinishFunc(func(at simtime.Time, t *task.Task) {
				c.obs.TaskFinished(at, hi, t)
			}))
		}
		if c.inj != nil {
			stages = append(stages, host.FinishFunc(func(at simtime.Time, t *task.Task) {
				finished = append(finished, t)
			}))
		}
		return stages
	}))

	// offer asks the dispatcher to place records[ri], parking it in the
	// central queue on Hold.
	offer := func(at simtime.Time, ri int) bool {
		rec := &records[ri]
		if c.cfg.NewLifecycle != nil {
			// Age out expired containers first so affinity-aware
			// policies (and the lifecycle stage's acquire inside Deliver)
			// see the warm pools as of the decision instant.
			for _, n := range c.nodes {
				n.mgr.AdvanceTo(at)
			}
		}
		idx := c.cfg.Dispatcher.Pick(at, rec.t, c.views)
		if idx == Hold {
			return false
		}
		if idx < 0 || idx >= len(c.nodes) {
			panic(fmt.Sprintf("cluster: dispatcher %s picked host %d of %d", c.cfg.Dispatcher.Name(), idx, len(c.nodes)))
		}
		rec.host = idx
		rec.at = at
		// A held invocation is claimed after its arrival; move its
		// engine-visible arrival to the claim instant so the host's
		// event order stays causal. The original arrival is restored
		// before metrics are computed.
		if at > rec.t.Arrival {
			rec.t.Arrival = at
		}
		// Network delay between dispatcher and host postpones the
		// instant the invocation is runnable; the dispatch instant itself
		// (rec.at, queue-delay accounting) is unaffected. The chosen
		// host's lifecycle stage then acquires a container inside
		// Deliver; a cold start further delays runnability there.
		rec.t.Arrival += c.netDelayOf()
		g.Deliver(idx, at, rec.t)
		c.nodes[idx].dispatched++
		return true
	}

	// drainCentral re-offers held work oldest-first, stopping at the
	// first invocation the dispatcher still declines (FIFO order is part
	// of the pull-based contract).
	drainCentral := func(at simtime.Time) {
		for len(central) > 0 {
			if !offer(at, central[0]) {
				return
			}
			central = central[1:]
		}
	}

	// admit registers an invocation arriving at `at` and offers it to
	// the dispatcher, parking it behind any already-held work so nothing
	// overtakes the central queue's FIFO order.
	admit := func(t *task.Task, at simtime.Time) {
		records = append(records, record{t: t, orig: t.Arrival, host: Hold, at: -1})
		ri := len(records) - 1
		if len(central) > 0 || !offer(at, ri) {
			central = append(central, ri)
			if len(central) > maxQ {
				maxQ = len(central)
			}
		}
	}

	next, more := src.Next()
	for {
		// The globally-earliest host event, among hosts that still have
		// unfinished work (ties break by lowest host index, mirroring
		// the heap's comparator).
		heHost, heTime := g.Min()
		arrTime := simtime.Infinity
		if more {
			arrTime = next.Arrival
		}

		if heTime < simtime.Infinity && heTime <= arrTime {
			// Host events fire before same-instant arrivals so a
			// completion frees capacity the dispatcher can see.
			if heTime > deadline {
				aborted = true
				break
			}
			before := c.nodes[heHost].eng.Pending()
			g.Step(heHost)
			if heTime > now {
				now = heTime
			}
			if c.nodes[heHost].eng.Pending() < before {
				drainCentral(now)
			}
			// A completion may release downstream chain stages: they
			// re-enter dispatch as arrivals at the completion instant,
			// after held work has had its chance at the freed capacity.
			if c.inj != nil && len(finished) > 0 {
				for _, ft := range finished {
					for _, dt := range c.inj.OnFinish(ft) {
						admit(dt, now)
					}
				}
				finished = finished[:0]
			}
			continue
		}

		if more {
			if arrTime > deadline {
				aborted = true
				break
			}
			if arrTime > now {
				now = arrTime
			}
			if c.inj != nil {
				// A chained request expands into its root stages, all
				// arriving at the request instant; the request task
				// itself is stage 0.
				for _, rt := range c.inj.Expand(next) {
					admit(rt, now)
				}
			} else {
				admit(next, now)
			}
			next, more = src.Next()
			continue
		}

		if len(central) > 0 {
			// No host events, no arrivals, work still held: the
			// dispatcher declined placement with the whole cluster
			// idle. That is a policy bug; report rather than spin.
			return nil, fmt.Errorf("cluster: dispatcher %s stalled with %d invocations held and all hosts idle",
				c.cfg.Dispatcher.Name(), len(central))
		}
		break
	}
	if err := trace.Err(src); err != nil {
		return nil, err
	}
	// A host with pending tasks but no future events is wedged (its
	// scheduler parked work without re-arming); surface that as an
	// abort rather than letting the tasks silently vanish from stats.
	for _, n := range c.nodes {
		if n.eng.Pending() > 0 {
			aborted = true
		}
	}

	return c.result(records, maxQ, aborted), nil
}

// result restores original arrivals and assembles per-host and merged
// metrics.
func (c *Cluster) result(records []record, maxQ int, aborted bool) *Result {
	schedName := c.cfg.NewScheduler().Name()
	res := &Result{
		Scheduler:       schedName,
		Dispatcher:      c.cfg.Dispatcher.Name(),
		CentralQueueMax: maxQ,
		Aborted:         aborted,
	}

	perHost := make([][]*task.Task, len(c.nodes))
	all := make([]*task.Task, 0, len(records))
	var delaySum time.Duration
	for i := range records {
		rec := &records[i]
		rec.t.Arrival = rec.orig
		all = append(all, rec.t)
		if rec.host >= 0 {
			perHost[rec.host] = append(perHost[rec.host], rec.t)
			if d := rec.at - rec.orig; d > 0 {
				delaySum += d
				if d > res.QueueDelayMax {
					res.QueueDelayMax = d
				}
			}
		}
		if f := rec.t.Finish; f > res.Makespan {
			res.Makespan = f
		}
	}
	if len(records) > 0 {
		res.QueueDelayMean = delaySum / time.Duration(len(records))
	}

	label := fmt.Sprintf("%s x%d/%s", schedName, len(c.nodes), res.Dispatcher)
	res.Merged = metrics.Run{Scheduler: label, Tasks: all}
	if c.inj != nil {
		res.Workflows = metrics.WorkflowRun{Scheduler: label, Workflows: c.inj.Workflows()}
	}
	for i, n := range c.nodes {
		// Utilization over the shared cluster horizon, not each host's
		// local clock: a host that went idle early was idle for the
		// rest of the run, and per-host columns must be comparable.
		util := 0.0
		if res.Makespan > 0 {
			util = float64(n.eng.BusyTime()) / (float64(res.Makespan) * float64(n.eng.NumCores()))
		}
		hr := HostResult{
			Run:         metrics.Run{Scheduler: fmt.Sprintf("%s host%d", schedName, i), Tasks: perHost[i]},
			Dispatches:  n.dispatched,
			CtxSwitches: n.eng.TotalCtxSwitches,
			Utilization: util,
			Speed:       n.speed,
		}
		if n.mgr != nil {
			hr.Lifecycle = n.mgr.Stats()
			res.Lifecycle.Add(hr.Lifecycle)
		}
		res.PerHost = append(res.PerHost, hr)
	}
	return res
}
