package cluster

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/workload"
)

// validCfg is a minimal passing config for validation tests to perturb.
func validCfg(hosts int) Config {
	return Config{
		Hosts:        hosts,
		CoresPerHost: 2,
		NewScheduler: func() cpusim.Scheduler { return sched.NewFIFO() },
		Dispatcher:   leastLoaded{},
	}
}

// TestSpeedsValidation: New must reject speed vectors of the wrong
// length and any non-positive or non-finite factor, and accept a valid
// heterogeneous vector.
func TestSpeedsValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		speeds []float64
	}{
		{"wrong length", []float64{1, 1}},
		{"negative", []float64{1, -0.5, 1, 1}},
		{"zero", []float64{1, 1, 0, 1}},
		{"NaN", []float64{1, 1, 1, math.NaN()}},
		{"Inf", []float64{math.Inf(1), 1, 1, 1}},
	} {
		cfg := validCfg(4)
		cfg.Speeds = tc.speeds
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: speeds %v accepted", tc.name, tc.speeds)
		}
	}
	cfg := validCfg(4)
	cfg.Speeds = []float64{2, 1, 0.5, 1}
	cl, err := New(cfg)
	if err != nil {
		t.Fatalf("valid speeds rejected: %v", err)
	}
	for i, want := range cfg.Speeds {
		if got := cl.views[i].Speed(); got != want {
			t.Errorf("host %d Speed() = %v, want %v", i, got, want)
		}
	}
}

// TestNetDelayValidation: a negative-mean delay distribution is a
// config bug and must be rejected; a legitimate one is accepted.
func TestNetDelayValidation(t *testing.T) {
	cfg := validCfg(2)
	cfg.NetDelay = dist.Constant{Value: -time.Millisecond}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative-mean net delay accepted")
	}
	cfg.NetDelay = dist.Uniform{Lo: 200 * time.Microsecond, Hi: 2 * time.Millisecond}
	if _, err := New(cfg); err != nil {
		t.Fatalf("valid net delay rejected: %v", err)
	}
}

// TestPredictedPicksBySpeedAndBacklog drives the policy directly
// through hand-set host views: scores are predicted work over speed,
// ties break to the lowest index, and completions release the charged
// estimate.
func TestPredictedPicksBySpeedAndBacklog(t *testing.T) {
	d, err := NewDispatcher("predicted", FactoryConfig{Hosts: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := d.(*predicted)
	p.Estimator().Observe("app", 10*time.Millisecond)
	hosts := []Host{
		fakeHost{idx: 0, cores: 2, speed: 1},
		fakeHost{idx: 1, cores: 2, speed: 2},
	}
	mk := func(id int) *task.Task {
		tk := task.New(id, 0, 10*time.Millisecond)
		tk.App = "app"
		return tk
	}
	now := simtime.Time(0)
	t0, t1, t2 := mk(0), mk(1), mk(2)
	// Empty backlogs: 10ms/2x = 5ms beats 10ms/1x.
	if got := p.Pick(now, t0, hosts); got != 1 {
		t.Fatalf("pick 1 = %d, want fast host 1", got)
	}
	// Fast host now holds 10ms: (10+10)/2 = 10 ties 10/1 = 10 → index 0.
	if got := p.Pick(now, t1, hosts); got != 0 {
		t.Fatalf("pick 2 = %d, want tie to host 0", got)
	}
	// Both hold 10ms: (10+10)/1 = 20 vs (10+10)/2 = 10 → host 1.
	if got := p.Pick(now, t2, hosts); got != 1 {
		t.Fatalf("pick 3 = %d, want host 1", got)
	}
	// t0 finishing releases its charge: host 1 back to 10ms predicted.
	t0.Service = 10 * time.Millisecond
	p.TaskFinished(now, 1, t0)
	if got := p.backlog[1]; got != 10*time.Millisecond {
		t.Fatalf("backlog[1] after release = %v, want 10ms", got)
	}
	if got := p.backlog[0]; got != 10*time.Millisecond {
		t.Fatalf("backlog[0] = %v, want 10ms", got)
	}
}

// TestPredictedColdUsesPrior: before any completions every app predicts
// the prior, so placement degrades to backlog spreading — never NaN,
// never a panic, and all hosts get work.
func TestPredictedColdUsesPrior(t *testing.T) {
	d, err := NewDispatcher("PREDICTED", FactoryConfig{Hosts: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := []Host{
		fakeHost{idx: 0, cores: 2},
		fakeHost{idx: 1, cores: 2},
		fakeHost{idx: 2, cores: 2},
	}
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		tk := task.New(i, 0, time.Millisecond)
		tk.App = "never-seen"
		got := d.Pick(0, tk, hosts)
		if got < 0 || got >= len(hosts) {
			t.Fatalf("cold pick %d out of range: %d", i, got)
		}
		seen[got] = true
	}
	if len(seen) != len(hosts) {
		t.Fatalf("cold picks covered %d of %d hosts", len(seen), len(hosts))
	}
}

// TestFasterFleetFinishesSooner: an end-to-end sanity check that speed
// factors reach the host engines — a uniformly 2x fleet must beat the
// baseline fleet's makespan on the same trace.
func TestFasterFleetFinishesSooner(t *testing.T) {
	run := func(speeds []float64) simtime.Time {
		cfg := validCfg(4)
		cfg.Speeds = speeds
		cfg.NewScheduler = func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) }
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := workload.AzureSampledStream(workload.AzureSampledSpec{N: 200, Cores: 8, Load: 0.9, Seed: 5})
		res, err := cl.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborted {
			t.Fatal("run aborted")
		}
		return res.Makespan
	}
	base := run(nil)
	fast := run([]float64{2, 2, 2, 2})
	if fast >= base {
		t.Fatalf("2x fleet makespan %v not better than baseline %v", fast, base)
	}
}

// TestNetDelayDelaysRunnability: a constant dispatch network delay must
// push every invocation's start at least that far past its arrival,
// without being charged as central-queue delay.
func TestNetDelayDelaysRunnability(t *testing.T) {
	const delay = 5 * time.Millisecond
	cfg := validCfg(2)
	cfg.NetDelay = dist.Constant{Value: delay}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.AzureSampledStream(workload.AzureSampledSpec{N: 50, Cores: 4, Load: 0.5, Seed: 9})
	res, err := cl.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range res.Merged.Tasks {
		if lag := time.Duration(tk.Start - tk.Arrival); lag < delay {
			t.Fatalf("task %d started %v after arrival, want >= %v", tk.ID, lag, delay)
		}
	}
	if res.QueueDelayMax != 0 {
		t.Fatalf("net delay leaked into queue-delay accounting: max %v", res.QueueDelayMax)
	}
}

// TestShardedPredictedParity: the full new-feature stack — PREDICTED
// dispatch learning from barrier-merged completions, PSRTF hosts
// learning locally, heterogeneous speed factors, and a stochastic
// network-delay stream — must stay byte-identical between shards=1 and
// shards=8. Runs under -race via the usual test invocation; workers
// stays at GOMAXPROCS so the parallel window path is exercised.
func TestShardedPredictedParity(t *testing.T) {
	const hosts, cores, seed = 16, 2, 11
	speeds := make([]float64, hosts)
	for i := range speeds {
		if i%2 == 0 {
			speeds[i] = 1.5
		} else {
			speeds[i] = 0.5
		}
	}
	run := func(shards int) string {
		d, err := NewDispatcher("PREDICTED", FactoryConfig{Hosts: hosts, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Hosts:        hosts,
			CoresPerHost: cores,
			NewScheduler: func() cpusim.Scheduler { return sched.NewPSRTF(nil) },
			Dispatcher:   d,
			Speeds:       speeds,
			NetDelay:     dist.Uniform{Lo: 200 * time.Microsecond, Hi: 2 * time.Millisecond},
			NetDelaySeed: seed,
			Shards:       shards,
		}
		src := workload.AzureSampledStream(workload.AzureSampledSpec{
			N: 400, Cores: hosts * cores, Load: 0.9, Seed: seed,
			Apps: []workload.AppChoice{
				{Profile: workload.AppFib, Weight: 2},
				{Profile: workload.AppMd, Weight: 1},
				{Profile: workload.AppSa, Weight: 1},
			},
		})
		return shardedFP(runSharded(t, cfg, src))
	}
	ref := run(1)
	if got := run(8); got != ref {
		t.Errorf("shards=8 diverges from shards=1:\n%s", firstDiff(ref, got))
	}
	if !strings.Contains(ref, "PREDICTED") {
		t.Fatalf("fingerprint does not record the dispatcher: %q", ref[:80])
	}
}
