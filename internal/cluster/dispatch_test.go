package cluster

import (
	"strings"
	"testing"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// TestRegistryNamesInSync: every presented name must be unique and
// resolvable, and each constructed policy must report its canonical
// name. (The shared registry helper enforces name↔constructor sync
// structurally; this pins the public surface.)
func TestRegistryNamesInSync(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate name %s", n)
		}
		seen[n] = true
		d, err := NewDispatcher(n, FactoryConfig{Hosts: 4, Seed: 1})
		if err != nil {
			t.Errorf("name %s has no constructor: %v", n, err)
			continue
		}
		if d.Name() != n {
			t.Errorf("policy %s reports name %s", n, d.Name())
		}
	}
}

// TestNewDispatcherCaseInsensitive: lookups must ignore case.
func TestNewDispatcherCaseInsensitive(t *testing.T) {
	for _, n := range Names() {
		for _, variant := range []string{strings.ToLower(n), strings.ToUpper(n), n[:1] + strings.ToLower(n[1:])} {
			d, err := NewDispatcher(variant, FactoryConfig{Hosts: 2, Seed: 1})
			if err != nil {
				t.Errorf("NewDispatcher(%q): %v", variant, err)
				continue
			}
			if d.Name() != n {
				t.Errorf("NewDispatcher(%q) built %s", variant, d.Name())
			}
		}
	}
}

// TestNewDispatcherUnknown: unknown names must error and the error must
// list the valid choices.
func TestNewDispatcherUnknown(t *testing.T) {
	_, err := NewDispatcher("bogus", FactoryConfig{Hosts: 2})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not mention %s", err, n)
		}
	}
}

// TestNamesIsACopy: mutating the returned slice must not corrupt the
// registry.
func TestNamesIsACopy(t *testing.T) {
	a := Names()
	a[0] = "CLOBBERED"
	if Names()[0] == "CLOBBERED" {
		t.Fatal("Names returns the registry's backing array")
	}
}

// fakeHost is a hand-set Host view for pure policy tests.
type fakeHost struct {
	idx, cores, inFlight, busy, dispatched int
	warm                                   map[string]int
	speed                                  float64 // 0 reads as 1.0
}

func (f fakeHost) Index() int { return f.idx }
func (f fakeHost) Speed() float64 {
	if f.speed == 0 {
		return 1
	}
	return f.speed
}
func (f fakeHost) Cores() int          { return f.cores }
func (f fakeHost) InFlight() int       { return f.inFlight }
func (f fakeHost) BusyCores() int      { return f.busy }
func (f fakeHost) Dispatched() int     { return f.dispatched }
func (f fakeHost) Warm(app string) int { return f.warm[app] }
func (f fakeHost) Queued() int {
	if q := f.inFlight - f.busy; q > 0 {
		return q
	}
	return 0
}

// TestPolicyPicks exercises each policy against a fixed host panel.
func TestPolicyPicks(t *testing.T) {
	hosts := []Host{
		fakeHost{idx: 0, cores: 4, inFlight: 4, busy: 4}, // full
		fakeHost{idx: 1, cores: 4, inFlight: 6, busy: 4}, // overfull, 2 queued
		fakeHost{idx: 2, cores: 4, inFlight: 1, busy: 1}, // mostly free
	}
	tk := task.New(0, 0, 1)
	now := simtime.Time(0)

	pick := func(name string) int {
		d, err := NewDispatcher(name, FactoryConfig{Hosts: len(hosts), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return d.Pick(now, tk, hosts)
	}

	if got := pick("LEASTLOADED"); got != 2 {
		t.Errorf("LEASTLOADED picked %d, want 2", got)
	}
	if got := pick("JSQ"); got != 0 && got != 2 {
		// hosts 0 and 2 both have zero queued; tie breaks to lowest index
		t.Errorf("JSQ picked %d, want 0", got)
	}
	if got := pick("JSQ"); got != 0 {
		t.Errorf("JSQ tie should break to lowest index, got %d", got)
	}
	if got := pick("PULL"); got != 2 {
		t.Errorf("PULL picked %d, want 2 (most free slots)", got)
	}

	// PULL holds when no host has free capacity.
	full := []Host{
		fakeHost{idx: 0, cores: 2, inFlight: 2, busy: 2},
		fakeHost{idx: 1, cores: 2, inFlight: 3, busy: 2},
	}
	d, _ := NewDispatcher("PULL", FactoryConfig{Hosts: 2})
	if got := d.Pick(now, tk, full); got != Hold {
		t.Errorf("PULL on a full cluster picked %d, want Hold", got)
	}

	// RR cycles 0,1,2,0...
	rr, _ := NewDispatcher("RR", FactoryConfig{Hosts: len(hosts)})
	for i, want := range []int{0, 1, 2, 0, 1} {
		if got := rr.Pick(now, tk, hosts); got != want {
			t.Fatalf("RR pick %d = %d, want %d", i, got, want)
		}
	}

	// RANDOM with the same seed replays the same sequence.
	seq := func() []int {
		d, _ := NewDispatcher("RANDOM", FactoryConfig{Hosts: len(hosts), Seed: 42})
		var out []int
		for i := 0; i < 16; i++ {
			p := d.Pick(now, tk, hosts)
			if p < 0 || p >= len(hosts) {
				t.Fatalf("RANDOM picked out-of-range host %d", p)
			}
			out = append(out, p)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RANDOM is not deterministic in its seed")
		}
	}

	// HASH is a pure function of the app name.
	h, _ := NewDispatcher("HASH", FactoryConfig{Hosts: len(hosts)})
	ta := task.New(1, 0, 1)
	ta.App = "md"
	first := h.Pick(now, ta, hosts)
	for i := 0; i < 5; i++ {
		if got := h.Pick(now, ta, hosts); got != first {
			t.Fatal("HASH not sticky for equal app names")
		}
	}
}

// TestWarmFirstPicks: WARMFIRST must follow warm containers for the
// app, break warm ties by load, and degrade to LEASTLOADED when no
// host is warm.
func TestWarmFirstPicks(t *testing.T) {
	d, err := NewDispatcher("WARMFIRST", FactoryConfig{Hosts: 3})
	if err != nil {
		t.Fatal(err)
	}
	now := simtime.Time(0)
	tk := task.New(0, 0, 1)
	tk.App = "fib"

	hosts := []Host{
		fakeHost{idx: 0, cores: 4, inFlight: 3, warm: map[string]int{"fib": 1}},
		fakeHost{idx: 1, cores: 4, inFlight: 1, warm: map[string]int{"md": 2}},
		fakeHost{idx: 2, cores: 4, inFlight: 2, warm: map[string]int{"fib": 2}},
	}
	// Hosts 0 and 2 are warm for fib; 2 is less loaded.
	if got := d.Pick(now, tk, hosts); got != 2 {
		t.Errorf("WARMFIRST picked %d, want warm host 2", got)
	}
	// No warm host for the app: least loaded wins.
	tk.App = "sa"
	if got := d.Pick(now, tk, hosts); got != 1 {
		t.Errorf("WARMFIRST without warm hosts picked %d, want least-loaded 1", got)
	}
	// Warm tie at equal load breaks to the lowest index.
	tie := []Host{
		fakeHost{idx: 0, cores: 4, inFlight: 2, warm: map[string]int{"sa": 1}},
		fakeHost{idx: 1, cores: 4, inFlight: 2, warm: map[string]int{"sa": 1}},
	}
	if got := d.Pick(now, tk, tie); got != 0 {
		t.Errorf("WARMFIRST tie picked %d, want 0", got)
	}
}
