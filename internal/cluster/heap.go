package cluster

import "github.com/serverless-sched/sfs/internal/simtime"

// hostHeap is an index-addressable binary min-heap of host indices keyed
// by each host's next pending event time. It replaces the O(hosts) scan
// the global event loop used to run before every step: peeking the
// globally-earliest host is O(1) and re-keying a host after it steps or
// receives work is O(log hosts).
//
// Ordering matches the scan it replaced exactly — earliest time first,
// ties broken by lowest host index — so replays are byte-identical at
// any host count. Hosts with no pending work are parked at
// simtime.Infinity rather than removed, which keeps every host
// addressable by index.
type hostHeap struct {
	key  []simtime.Time // host index -> current key
	heap []int          // heap of host indices
	pos  []int          // host index -> position in heap
}

// newHostHeap builds a heap of n hosts, all parked at Infinity.
func newHostHeap(n int) *hostHeap {
	h := &hostHeap{
		key:  make([]simtime.Time, n),
		heap: make([]int, n),
		pos:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.key[i] = simtime.Infinity
		h.heap[i] = i
		h.pos[i] = i
	}
	return h
}

// min returns the host with the earliest key (lowest index on ties) and
// that key. Hosts with no work report simtime.Infinity.
func (h *hostHeap) min() (host int, at simtime.Time) {
	top := h.heap[0]
	return top, h.key[top]
}

// update re-keys host i and restores the heap invariant.
func (h *hostHeap) update(i int, at simtime.Time) {
	if h.key[i] == at {
		return
	}
	h.key[i] = at
	p := h.pos[i]
	if !h.up(p) {
		h.down(p)
	}
}

// less orders heap positions by (key, host index); the index tie-break
// reproduces the old scan's first-minimum choice.
func (h *hostHeap) less(a, b int) bool {
	ha, hb := h.heap[a], h.heap[b]
	if h.key[ha] != h.key[hb] {
		return h.key[ha] < h.key[hb]
	}
	return ha < hb
}

func (h *hostHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *hostHeap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *hostHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
