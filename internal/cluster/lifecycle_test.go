package cluster

import (
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/workload"
)

// lifecycleCluster builds a cluster whose hosts model container
// lifecycles under the given keep-alive policy name.
func lifecycleCluster(t *testing.T, hosts int, dispatch, policy string, memoryMB int) *Cluster {
	t.Helper()
	d, err := NewDispatcher(dispatch, FactoryConfig{Hosts: hosts, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{
		Hosts:        hosts,
		CoresPerHost: 4,
		NewScheduler: func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
		Dispatcher:   d,
		NewLifecycle: func() *lifecycle.Manager {
			p, err := lifecycle.NewPolicy(policy, lifecycle.PolicyConfig{TTL: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			m, err := lifecycle.New(lifecycle.Config{
				Policy:      p,
				MemoryMB:    memoryMB,
				ImagePull:   dist.Constant{Value: 100 * time.Millisecond},
				SandboxBoot: dist.Constant{Value: 50 * time.Millisecond},
				Seed:        5,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func mixSource(n, cores int, seed uint64) *workload.Workload {
	return workload.AzureSampled(workload.AzureSampledSpec{
		N: n, Cores: cores, Load: 0.8, Seed: seed,
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
}

// TestClusterLifecycleDeterminism: same seed/spec/policy must replay to
// byte-identical metrics and lifecycle counters — the cluster half of
// the determinism criterion.
func TestClusterLifecycleDeterminism(t *testing.T) {
	w := mixSource(800, 8, 21)
	run := func() *Result {
		cl := lifecycleCluster(t, 2, "WARMFIRST", "HIST", 2048)
		res, err := cl.Run(w.Source())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Lifecycle != r2.Lifecycle {
		t.Fatalf("merged lifecycle stats diverged:\n%+v\n%+v", r1.Lifecycle, r2.Lifecycle)
	}
	if len(r1.Merged.Tasks) != len(r2.Merged.Tasks) {
		t.Fatal("task counts diverged")
	}
	for i := range r1.Merged.Tasks {
		a, b := r1.Merged.Tasks[i], r2.Merged.Tasks[i]
		if a.Finish != b.Finish || a.Arrival != b.Arrival {
			t.Fatalf("task %d diverged: finish %v vs %v", i, a.Finish, b.Finish)
		}
	}
	for i := range r1.PerHost {
		if r1.PerHost[i].Lifecycle != r2.PerHost[i].Lifecycle {
			t.Fatalf("host %d lifecycle stats diverged", i)
		}
	}
}

// TestClusterLifecycleAccounting: merged counters must cover every
// invocation exactly once, and cold starts must appear in RenderPerHost.
func TestClusterLifecycleAccounting(t *testing.T) {
	w := mixSource(600, 8, 22)
	cl := lifecycleCluster(t, 2, "RR", "TTL", 0)
	res, err := cl.Run(w.Source())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Lifecycle
	if st.Invocations != len(w.Tasks) {
		t.Fatalf("lifecycle saw %d invocations, want %d", st.Invocations, len(w.Tasks))
	}
	if st.WarmHits()+st.ColdStarts != st.Invocations {
		t.Fatalf("warm %d + cold %d != invocations %d", st.WarmHits(), st.ColdStarts, st.Invocations)
	}
	if st.WarmHits() == 0 {
		t.Fatal("a minute-long TTL should produce warm hits on a bursty trace")
	}
	out := res.RenderPerHost()
	for _, col := range []string{"warm-hit", "cold"} {
		if !strings.Contains(out, col) {
			t.Fatalf("RenderPerHost lacks %q column:\n%s", col, out)
		}
	}
}

// TestWarmFirstBeatsSpreadOnWarmHits: routing on warm state must yield
// at least the warm-hit ratio of affinity-blind spreading under the
// same trace, memory, and policy.
func TestWarmFirstBeatsSpreadOnWarmHits(t *testing.T) {
	w := mixSource(1000, 16, 23)
	ratio := func(dispatch string) float64 {
		cl := lifecycleCluster(t, 4, dispatch, "TTL", 512)
		res, err := cl.Run(w.Source())
		if err != nil {
			t.Fatal(err)
		}
		return res.Lifecycle.WarmHitRatio()
	}
	warm, rr := ratio("WARMFIRST"), ratio("RR")
	t.Logf("warm-hit ratio: WARMFIRST %.3f vs RR %.3f", warm, rr)
	if warm < rr {
		t.Fatalf("WARMFIRST warm-hit ratio %.3f below RR %.3f", warm, rr)
	}
}

// TestColdStartDelaysClusterTasks: a task dispatched cold must not
// start before its cold-start latency has elapsed.
func TestColdStartDelaysClusterTasks(t *testing.T) {
	w := mixSource(200, 8, 24)
	cl := lifecycleCluster(t, 2, "RR", "NONE", 0)
	res, err := cl.Run(w.Source())
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifecycle.WarmHits() != 0 {
		t.Fatalf("NONE produced %d warm hits", res.Lifecycle.WarmHits())
	}
	const cold = 150 * time.Millisecond
	for _, tk := range res.Merged.Tasks {
		if tk.Start >= 0 && tk.Start-tk.Arrival < cold {
			t.Fatalf("task %d started %v after arrival, inside its %v cold start",
				tk.ID, tk.Start-tk.Arrival, cold)
		}
	}
}
