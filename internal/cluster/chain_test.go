package cluster

import (
	"reflect"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// chainClusterRun executes the synthetic chain family across hosts and
// returns the result (fatal on any error).
func chainClusterRun(t *testing.T, hosts int, dispatch string, withLifecycle bool) *Result {
	t.Helper()
	src, ccfg, err := workload.ChainStream(workload.ChainSpec{
		N: 120, Cores: hosts * 2, Load: 0.8, Family: "LINEAR", Depth: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(dispatch, FactoryConfig{Hosts: hosts, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Hosts:        hosts,
		CoresPerHost: 2,
		NewScheduler: func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
		Dispatcher:   d,
		Chain:        &ccfg,
	}
	if withLifecycle {
		cfg.NewLifecycle = func() *lifecycle.Manager {
			m, err := lifecycle.New(lifecycle.Config{Policy: lifecycle.NewFixedTTL(time.Minute), Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChainClusterCompletes: every workflow finishes, every stage is a
// dispatched invocation, and downstream stages spread across hosts.
func TestChainClusterCompletes(t *testing.T) {
	res := chainClusterRun(t, 3, "RR", false)
	if res.Aborted {
		t.Fatal("run aborted")
	}
	if got := len(res.Merged.Tasks); got != 120*3 {
		t.Fatalf("merged %d invocations, want 360 (120 workflows x 3 stages)", got)
	}
	for _, tk := range res.Merged.Tasks {
		if tk.Finish < 0 {
			t.Fatalf("unfinished stage %v", tk)
		}
	}
	if got := res.Workflows.Completed(); got != 120 {
		t.Fatalf("%d workflows complete, want 120", got)
	}
	if s := res.Workflows.MeanSlowdown(); s < 1 {
		t.Fatalf("mean end-to-end slowdown %v below 1", s)
	}
	spread := 0
	for _, hr := range res.PerHost {
		if hr.Dispatches > 0 {
			spread++
		}
	}
	if spread != 3 {
		t.Fatalf("stages dispatched to %d of 3 hosts", spread)
	}
}

// TestChainClusterDeterministic: same seed + same chain spec + same
// host count must replay byte-identically in cluster mode — the
// acceptance criterion's -hosts N half.
func TestChainClusterDeterministic(t *testing.T) {
	for _, withLifecycle := range []bool{false, true} {
		a := chainClusterRun(t, 3, "LEASTLOADED", withLifecycle)
		b := chainClusterRun(t, 3, "LEASTLOADED", withLifecycle)
		if !reflect.DeepEqual(a.Workflows.Workflows, b.Workflows.Workflows) {
			t.Fatalf("lifecycle=%v: workflow results diverged", withLifecycle)
		}
		stamps := func(r *Result) []time.Duration {
			var out []time.Duration
			for _, tk := range r.Merged.Tasks {
				out = append(out, time.Duration(tk.Arrival), time.Duration(tk.Finish), tk.WaitTime)
			}
			return out
		}
		if !reflect.DeepEqual(stamps(a), stamps(b)) {
			t.Fatalf("lifecycle=%v: merged task timelines diverged", withLifecycle)
		}
		for i := range a.PerHost {
			if a.PerHost[i].Dispatches != b.PerHost[i].Dispatches {
				t.Fatalf("lifecycle=%v: host %d dispatch counts diverged", withLifecycle, i)
			}
		}
		if a.Lifecycle != b.Lifecycle {
			t.Fatalf("lifecycle=%v: lifecycle stats diverged", withLifecycle)
		}
	}
}

// TestChainClusterWarmPools: with per-host lifecycle managers,
// successive stages acquire containers on their dispatched hosts — the
// acquire count is one per stage, and repeats hit per-host warm pools.
func TestChainClusterWarmPools(t *testing.T) {
	res := chainClusterRun(t, 2, "HASH", true)
	if got := res.Lifecycle.Invocations; got != 120*3 {
		t.Fatalf("%d container acquires, want one per stage (360)", got)
	}
	// HASH pins each stage name to one host, so after the compulsory
	// colds nearly everything is a warm hit.
	if ratio := res.Lifecycle.WarmHitRatio(); ratio < 0.5 {
		t.Fatalf("warm-hit ratio %.2f too low for per-app affinity", ratio)
	}
}

// TestChainClusterFanIn: a fan-in stage waits for every branch even
// when the branches finish on different hosts.
func TestChainClusterFanIn(t *testing.T) {
	spec := chain.Diamond(chain.FamilyConfig{Depth: 2})
	req := task.New(0, 0, 10*time.Millisecond)
	req.App = "wf"
	d, err := NewDispatcher("RR", FactoryConfig{Hosts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{
		Hosts:        2,
		CoresPerHost: 1,
		NewScheduler: func() cpusim.Scheduler { return sched.NewFIFO() },
		Dispatcher:   d,
		Chain:        &chain.Config{Specs: map[string]chain.Spec{"wf": spec}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(trace.FromTasks("fanin", []*task.Task{req}))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Workflows.Completed(); got != 1 {
		t.Fatalf("%d workflows complete, want 1", got)
	}
	w := res.Workflows.Workflows[0]
	// Entry 10ms, two 10ms branches in parallel on two hosts, join 10ms:
	// end-to-end is the 30ms critical path.
	if w.Turnaround() != 30*time.Millisecond {
		t.Fatalf("fan-in turnaround %v, want 30ms", w.Turnaround())
	}
	if w.Ideal != 30*time.Millisecond || w.Slowdown() != 1.0 {
		t.Fatalf("ideal %v slowdown %v, want 30ms / 1.0", w.Ideal, w.Slowdown())
	}
}
