package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// shardedCase is one cell of the determinism matrix.
type shardedCase struct {
	dispatch  string
	chain     bool
	lifecycle bool
}

// shardedConfig assembles a cluster config for one matrix cell; the
// returned source factory yields a fresh identical stream per run.
func shardedConfig(t *testing.T, tc shardedCase, hosts, cores, shards, workers int) (Config, func() trace.Source) {
	t.Helper()
	const n, seed = 240, 11
	d, err := NewDispatcher(tc.dispatch, FactoryConfig{Hosts: hosts, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Hosts:        hosts,
		CoresPerHost: cores,
		NewScheduler: func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
		Dispatcher:   d,
		Shards:       shards,
		Workers:      workers,
	}
	if tc.lifecycle {
		cfg.NewLifecycle = func() *lifecycle.Manager {
			m, err := lifecycle.New(lifecycle.Config{Policy: lifecycle.NewFixedTTL(time.Minute), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
	}
	var mkSource func() trace.Source
	if tc.chain {
		src, ccfg, err := workload.ChainStream(workload.ChainSpec{
			N: n / 2, Cores: hosts * cores, Load: 0.8, Family: "LINEAR", Depth: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Chain = &ccfg
		first := true
		mkSource = func() trace.Source {
			if first {
				first = false
				return src
			}
			again, _, err := workload.ChainStream(workload.ChainSpec{
				N: n / 2, Cores: hosts * cores, Load: 0.8, Family: "LINEAR", Depth: 3, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			return again
		}
	} else {
		mkSource = func() trace.Source {
			return workload.AzureSampledStream(workload.AzureSampledSpec{
				N: n, Cores: hosts * cores, Load: 0.9, Seed: seed,
			})
		}
	}
	return cfg, mkSource
}

// fingerprint renders every observable of a result that the CSV/report
// surfaces derive from — per-task accounting in source order, per-host
// counters, queue stats, lifecycle stats, workflow count — so equal
// fingerprints mean byte-identical rendered output.
func shardedFP(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|makespan=%d|qmax=%d|qdmax=%d|qdmean=%d|aborted=%v|central=%d\n",
		res.Scheduler, res.Dispatcher, res.Makespan, res.CentralQueueMax,
		res.QueueDelayMax, res.QueueDelayMean, res.Aborted, res.CentralQueueMax)
	fmt.Fprintf(&b, "lifecycle=%+v\n", res.Lifecycle)
	fmt.Fprintf(&b, "workflows=%d\n", len(res.Workflows.Workflows))
	for _, tk := range res.Merged.Tasks {
		fmt.Fprintf(&b, "t%d app=%s arr=%d svc=%d start=%d fin=%d wait=%d io=%d cpu=%d ctx=%d disp=%d mig=%d\n",
			tk.ID, tk.App, tk.Arrival, tk.Service, tk.Start, tk.Finish,
			tk.WaitTime, tk.IOTime, tk.CPUUsed, tk.CtxSwitches, tk.Dispatches, tk.Migrations)
	}
	for i, hr := range res.PerHost {
		fmt.Fprintf(&b, "h%d disp=%d ctx=%d tasks=%d\n", i, hr.Dispatches, hr.CtxSwitches, len(hr.Run.Tasks))
	}
	return b.String()
}

func runSharded(t *testing.T, cfg Config, src trace.Source) *Result {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedDeterminismMatrix: -shards 8 must reproduce -shards 1
// byte-identically for every dispatch policy, with and without chain
// expansion and container lifecycles. Workers is left at GOMAXPROCS so
// the race detector sees the parallel window path.
func TestShardedDeterminismMatrix(t *testing.T) {
	const hosts, cores = 16, 2
	for _, dispatch := range Names() {
		for _, withChain := range []bool{false, true} {
			for _, withLifecycle := range []bool{false, true} {
				tc := shardedCase{dispatch: dispatch, chain: withChain, lifecycle: withLifecycle}
				name := fmt.Sprintf("%s/chain=%v/lifecycle=%v", dispatch, withChain, withLifecycle)
				t.Run(name, func(t *testing.T) {
					cfg1, mkSource := shardedConfig(t, tc, hosts, cores, 1, 0)
					ref := shardedFP(runSharded(t, cfg1, mkSource()))
					cfg8, _ := shardedConfig(t, tc, hosts, cores, 8, 0)
					got := shardedFP(runSharded(t, cfg8, mkSource()))
					if got != ref {
						t.Errorf("shards=8 diverges from shards=1:\n%s", firstDiff(ref, got))
					}
				})
			}
		}
	}
}

// TestShardedFamilyParity: for every registered scenario family —
// including the shaped ones (diurnal, flashcrowd, multitenant,
// trigger) whose bursts concentrate arrivals in ways the uniform
// matrix above never does — the sharded engine at 8 shards must
// reproduce the serial engine byte-identically. Runs under -race via
// the usual test invocation; workers stays at GOMAXPROCS so the
// parallel window path is exercised.
func TestShardedFamilyParity(t *testing.T) {
	const hosts, cores, seed = 16, 2, 11
	mk := func(family string) trace.Source {
		src, err := workload.NewFamily(family, workload.FamilyConfig{
			N: 400, Cores: hosts * cores, Load: 0.9, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	for _, family := range workload.FamilyNames() {
		t.Run(family, func(t *testing.T) {
			run := func(shards int) string {
				d, err := NewDispatcher("JSQ", FactoryConfig{Hosts: hosts, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				cfg := Config{
					Hosts:        hosts,
					CoresPerHost: cores,
					NewScheduler: func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
					Dispatcher:   d,
					Shards:       shards,
				}
				return shardedFP(runSharded(t, cfg, mk(family)))
			}
			ref := run(1)
			if got := run(8); got != ref {
				t.Errorf("%s: shards=8 diverges from shards=1:\n%s", family, firstDiff(ref, got))
			}
		})
	}
}

// TestShardedWorkerCountInvariance: the worker pool size must not
// influence results, only wall-clock.
func TestShardedWorkerCountInvariance(t *testing.T) {
	const hosts, cores = 16, 2
	tc := shardedCase{dispatch: "JSQ", chain: true, lifecycle: true}
	var ref string
	for _, workers := range []int{1, 3, 8} {
		cfg, mkSource := shardedConfig(t, tc, hosts, cores, 8, workers)
		fp := shardedFP(runSharded(t, cfg, mkSource()))
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Errorf("workers=%d diverges:\n%s", workers, firstDiff(ref, fp))
		}
	}
}

// TestShardedCompletesAllTasks: sharded runs finish every invocation,
// and per-host dispatch counts reconcile, for every policy.
func TestShardedCompletesAllTasks(t *testing.T) {
	const hosts, cores, n = 16, 2, 240
	for _, dispatch := range Names() {
		t.Run(dispatch, func(t *testing.T) {
			cfg, mkSource := shardedConfig(t, shardedCase{dispatch: dispatch}, hosts, cores, 8, 0)
			res := runSharded(t, cfg, mkSource())
			if res.Aborted {
				t.Fatal("run aborted")
			}
			if res.Shards != 8 || res.Lookahead != DefaultDispatchLatency {
				t.Fatalf("Shards/Lookahead = %d/%v", res.Shards, res.Lookahead)
			}
			finished, total := 0, 0
			for _, tk := range res.Merged.Tasks {
				if tk.Turnaround() >= 0 {
					finished++
				}
			}
			for _, hr := range res.PerHost {
				total += hr.Dispatches
			}
			if finished != n || total != n {
				t.Errorf("finished %d, dispatched %d, want %d", finished, total, n)
			}
		})
	}
}

// TestShardedDeadlineParity: a deadline abort must fire identically at
// any shard count.
func TestShardedDeadlineParity(t *testing.T) {
	const hosts, cores = 16, 2
	var fps []string
	for _, shards := range []int{1, 8} {
		cfg, mkSource := shardedConfig(t, shardedCase{dispatch: "RR"}, hosts, cores, shards, 0)
		cfg.Deadline = 200 * simtime.Time(time.Millisecond)
		res := runSharded(t, cfg, mkSource())
		if !res.Aborted {
			t.Fatalf("shards=%d: run not aborted by deadline", shards)
		}
		fps = append(fps, shardedFP(res))
	}
	if fps[0] != fps[1] {
		t.Errorf("deadline abort diverges across shard counts:\n%s", firstDiff(fps[0], fps[1]))
	}
}

// holdDispatcher always declines placement.
type holdDispatcher struct{}

func (holdDispatcher) Name() string                              { return "HOLDALL" }
func (holdDispatcher) Pick(simtime.Time, *task.Task, []Host) int { return Hold }

// TestShardedStallError: a dispatcher that never places work must
// surface the same stall error the serial path reports.
func TestShardedStallError(t *testing.T) {
	for _, shards := range []int{1, 8} {
		cl, err := New(Config{
			Hosts:        16,
			CoresPerHost: 2,
			NewScheduler: func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
			Dispatcher:   holdDispatcher{},
			Shards:       shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := workload.AzureSampledStream(workload.AzureSampledSpec{N: 10, Cores: 32, Load: 0.5, Seed: 3})
		_, err = cl.Run(src)
		if err == nil || !strings.Contains(err.Error(), "stalled") {
			t.Errorf("shards=%d: err = %v, want stall error", shards, err)
		}
	}
}

// TestShardedClampsShardCount: more shards than hosts clamps to one
// host per shard and still matches the single-shard reference.
func TestShardedClampsShardCount(t *testing.T) {
	const hosts, cores = 4, 2
	cfg1, mkSource := shardedConfig(t, shardedCase{dispatch: "LEASTLOADED"}, hosts, cores, 1, 0)
	ref := shardedFP(runSharded(t, cfg1, mkSource()))
	cfg64, _ := shardedConfig(t, shardedCase{dispatch: "LEASTLOADED"}, hosts, cores, 64, 0)
	res := runSharded(t, cfg64, mkSource())
	if res.Shards != hosts {
		t.Fatalf("Shards = %d, want clamp to %d", res.Shards, hosts)
	}
	if got := shardedFP(res); got != ref {
		t.Errorf("clamped run diverges:\n%s", firstDiff(ref, got))
	}
}

// firstDiff locates the first differing line of two fingerprints.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
