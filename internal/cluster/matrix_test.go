package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// tasksFP renders the per-task observable surface in the given order —
// the same fields shardedFP prints — so equal strings mean
// byte-identical downstream output.
func tasksFP(tasks []*task.Task) string {
	var b strings.Builder
	for _, tk := range tasks {
		fmt.Fprintf(&b, "t%d app=%s arr=%d svc=%d start=%d fin=%d wait=%d io=%d cpu=%d ctx=%d disp=%d mig=%d\n",
			tk.ID, tk.App, tk.Arrival, tk.Service, tk.Start, tk.Finish,
			tk.WaitTime, tk.IOTime, tk.CPUUsed, tk.CtxSwitches, tk.Dispatches, tk.Migrations)
	}
	return b.String()
}

// matrixCase is one cell of the unified-core integration matrix.
type matrixCase struct {
	sched     string
	dispatch  string
	keepalive string // "" = lifecycle modeling off
	chain     bool
}

// matrixRun executes one cell at the given shard count with freshly
// constructed scheduler, dispatcher, lifecycle, and source — every
// stateful component rebuilt so repeated calls are true replays.
func matrixRun(t *testing.T, tc matrixCase, shards int) string {
	t.Helper()
	const hosts, cores, n, seed = 8, 2, 120, 11
	d, err := NewDispatcher(tc.dispatch, FactoryConfig{Hosts: hosts, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Hosts:        hosts,
		CoresPerHost: cores,
		NewScheduler: func() cpusim.Scheduler {
			s, err := schedulers.New(tc.sched)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		Dispatcher: d,
		Shards:     shards,
	}
	if tc.keepalive != "" {
		cfg.NewLifecycle = func() *lifecycle.Manager {
			p, err := lifecycle.NewPolicy(tc.keepalive, lifecycle.PolicyConfig{TTL: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			m, err := lifecycle.New(lifecycle.Config{Policy: p, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
	}
	var src trace.Source
	if tc.chain {
		chainSrc, ccfg, err := workload.ChainStream(workload.ChainSpec{
			N: n / 2, Cores: hosts * cores, Load: 0.8, Family: "LINEAR", Depth: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Chain = &ccfg
		src = chainSrc
	} else {
		var err error
		src, err = workload.NewFamily("POISSON", workload.FamilyConfig{
			N: n, Cores: hosts * cores, Load: 0.9, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return shardedFP(runSharded(t, cfg, src))
}

// TestUnifiedCoreMatrix: scheduler × dispatcher × keep-alive × chain
// on/off × shards {0, 1, 8} through the unified host-runtime core.
// Every serial (shards=0) cell must replay byte-identically, and the
// sharded model must be byte-identical at 1 and 8 shards (each also
// replay-stable). Runs under -race via the usual test invocation, so
// the parallel window path is exercised with stages attached.
func TestUnifiedCoreMatrix(t *testing.T) {
	for _, sc := range []string{"SFS", "CFS"} {
		for _, dp := range []string{"RR", "JSQ", "PULL", "PREDICTED"} {
			for _, ka := range []string{"", "TTL", "HIST"} {
				for _, withChain := range []bool{false, true} {
					tc := matrixCase{sched: sc, dispatch: dp, keepalive: ka, chain: withChain}
					kaName := ka
					if kaName == "" {
						kaName = "off"
					}
					name := fmt.Sprintf("%s/%s/ka=%s/chain=%v", sc, dp, kaName, withChain)
					t.Run(name, func(t *testing.T) {
						serial := matrixRun(t, tc, 0)
						if again := matrixRun(t, tc, 0); again != serial {
							t.Fatal("serial replay diverged through the unified core")
						}
						one := matrixRun(t, tc, 1)
						if again := matrixRun(t, tc, 1); again != one {
							t.Fatal("sharded (-shards 1) replay diverged through the unified core")
						}
						if eight := matrixRun(t, tc, 8); eight != one {
							t.Fatal("-shards 8 diverged from -shards 1 through the unified core")
						}
					})
				}
			}
		}
	}
}

// TestStandaloneClusterParity pins the refactor's degenerate-case
// contract: a standalone host.Runtime.Drive over a bare engine must be
// byte-identical to a 1-host cluster under the trivial dispatcher —
// the standalone driver IS the 1-host case of the cluster loop, not a
// separate code path that happens to agree.
func TestStandaloneClusterParity(t *testing.T) {
	const cores, n, seed = 4, 300, 7
	collect := func() []*task.Task {
		src, err := workload.NewFamily("POISSON", workload.FamilyConfig{
			N: n, Cores: cores, Load: 0.9, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks := trace.Collect(src)
		if err := trace.Err(src); err != nil {
			t.Fatal(err)
		}
		return tasks
	}
	for _, sc := range []string{"SFS", "CFS", "EEVDF", "FIFO"} {
		t.Run(sc, func(t *testing.T) {
			// Standalone: one bare runtime, no stages.
			s, err := schedulers.New(sc)
			if err != nil {
				t.Fatal(err)
			}
			tasks := collect()
			i := 0
			src := trace.New("parity", func() (*task.Task, bool) {
				if i >= len(tasks) {
					return nil, false
				}
				tk := tasks[i]
				i++
				return tk, true
			})
			eng := cpusim.NewEngine(cpusim.Config{Cores: cores}, s)
			if _, err := host.New(eng).Drive(src); err != nil {
				t.Fatal(err)
			}
			standalone := tasksFP(tasks)

			// Degenerate cluster: one host, round-robin (always host 0).
			d, err := NewDispatcher("RR", FactoryConfig{Hosts: 1, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			cl, err := New(Config{
				Hosts:        1,
				CoresPerHost: cores,
				NewScheduler: func() cpusim.Scheduler {
					s, err := schedulers.New(sc)
					if err != nil {
						t.Fatal(err)
					}
					return s
				},
				Dispatcher: d,
			})
			if err != nil {
				t.Fatal(err)
			}
			clSrc, err := workload.NewFamily("POISSON", workload.FamilyConfig{
				N: n, Cores: cores, Load: 0.9, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl.Run(clSrc)
			if err != nil {
				t.Fatal(err)
			}
			if cluster := tasksFP(res.Merged.Tasks); cluster != standalone {
				t.Fatal("standalone Drive diverged from the 1-host cluster loop")
			}
		})
	}
}
