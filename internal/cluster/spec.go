package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
)

// ParseSpeeds parses a CLI fleet-speed spec into a per-host speed
// vector. The spec is a comma-separated list of `speed` or `speedxN`
// entries expanded in order:
//
//	"2"          — every host at 2x
//	"1.5x4,0.5x4" — four 1.5x hosts then four 0.5x hosts
//	"2x1,1x7"     — one fast host in an otherwise uniform fleet
//
// A single bare entry (no count) applies to all hosts; otherwise the
// counts must sum exactly to hosts. An empty spec returns nil (uniform
// 1.0 fleet). Factor validity (positive, finite) is enforced by
// cluster.New; this parser only rejects malformed syntax.
func ParseSpeeds(spec string, hosts int) ([]float64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	entries := strings.Split(spec, ",")
	if len(entries) == 1 && !strings.Contains(entries[0], "x") {
		sp, err := strconv.ParseFloat(strings.TrimSpace(entries[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("speed spec %q: %w", spec, err)
		}
		out := make([]float64, hosts)
		for i := range out {
			out[i] = sp
		}
		return out, nil
	}
	var out []float64
	for _, e := range entries {
		e = strings.TrimSpace(e)
		val, countStr, hasCount := strings.Cut(e, "x")
		sp, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("speed spec entry %q: %w", e, err)
		}
		count := 1
		if hasCount {
			if count, err = strconv.Atoi(countStr); err != nil {
				return nil, fmt.Errorf("speed spec entry %q: %w", e, err)
			}
			if count < 1 {
				return nil, fmt.Errorf("speed spec entry %q: count must be at least 1", e)
			}
		}
		for i := 0; i < count; i++ {
			out = append(out, sp)
		}
	}
	if len(out) != hosts {
		return nil, fmt.Errorf("speed spec %q covers %d hosts, cluster has %d", spec, len(out), hosts)
	}
	return out, nil
}

// ParseNetDelay parses a CLI dispatcher→host network-delay spec:
//
//	""           — no delay modeled (nil)
//	"500us"      — constant delay
//	"200us-2ms"  — uniform on [lo, hi)
func ParseNetDelay(spec string) (dist.Distribution, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if i := strings.Index(spec, "-"); i > 0 {
		lo, err := time.ParseDuration(strings.TrimSpace(spec[:i]))
		if err != nil {
			return nil, fmt.Errorf("net-delay spec %q: %w", spec, err)
		}
		hi, err := time.ParseDuration(strings.TrimSpace(spec[i+1:]))
		if err != nil {
			return nil, fmt.Errorf("net-delay spec %q: %w", spec, err)
		}
		if lo < 0 || hi < lo {
			return nil, fmt.Errorf("net-delay spec %q: want 0 <= lo <= hi", spec)
		}
		return dist.Uniform{Lo: lo, Hi: hi}, nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil {
		return nil, fmt.Errorf("net-delay spec %q: %w", spec, err)
	}
	if d < 0 {
		return nil, fmt.Errorf("net-delay spec %q: negative delay", spec)
	}
	return dist.Constant{Value: d}, nil
}
