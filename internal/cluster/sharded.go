package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Sharded conservative parallel discrete-event simulation.
//
// Hosts are partitioned into contiguous shards, each a host.Group over
// its runtimes with a private next-event heap. Virtual time is cut
// into fixed windows [k·L, (k+1)·L) where L is the modeled
// dispatcher→host latency (Config.DispatchLatency): because every
// cluster-level interaction — placement of an arrival, a central-queue
// claim, a chain-stage handoff — takes at least L to reach a host, no
// event inside a window can influence another shard within the same
// window. That is the conservative lookahead: shards advance through a
// window in parallel with no locks and no cross-shard reads.
//
// The coordinator runs single-threaded at each barrier. It advances
// lifecycle clocks to the barrier, collects the window's completions
// (merged across shards in (time, host, seq) order — seq being each
// shard's append order, preserved by a stable sort), lets the chain
// injector release downstream stages, re-offers centrally-held work,
// admits every source arrival inside the next window, and hands each
// assignment to the owning shard's group as a timestamped submission.
// Group.Advance interleaves submissions with host events in exact time
// order (host events first on ties, as on the serial path), so a
// host's event sequence depends only on the submissions it receives —
// never on how hosts are partitioned or which worker goroutine runs
// the shard. Everything the coordinator computes (dispatch decisions,
// window bounds, admission order) is a function of barrier-time state
// that is itself shard-count-independent, so the same seed yields
// byte-identical results at any -shards / -workers setting.
//
// Dispatch decisions observe host state as of the window boundary
// (plus assignments already made this window, via the runtime's Queued
// count); the serial path instead observes the exact decision instant.
// The sharded engine therefore models a cluster whose dispatcher works
// from slightly stale state — the price of the latency it models, not
// a bug; determinism is defined within sharded mode, with -shards 1 as
// the reference.

// DefaultDispatchLatency is the sharded engine's lookahead when
// Config.DispatchLatency is zero: the modeled minimum latency between
// the cluster dispatcher and any host.
const DefaultDispatchLatency = time.Millisecond

// finishRec is one completion observed inside a window, reported to
// the coordinator at the barrier for chain-stage release.
type finishRec struct {
	t    *task.Task
	at   simtime.Time
	host int // global host index
}

// shard owns a contiguous run of hosts — a host.Group plus its barrier
// report. Between barriers a shard is touched only by its worker; at
// barriers only by the coordinator.
type shard struct {
	grp  *host.Group
	base int // global index of the group's runtime 0
	// finished and completions are the shard's barrier report: chain
	// completions in observation order, and the count of tasks that
	// left the engines this window (feeds central-queue re-offers).
	finished    []finishRec
	completions int
}

// advance runs the shard's hosts up to (but excluding) bound,
// interleaving pending submissions with host events in time order.
func (sh *shard) advance(bound simtime.Time) {
	sh.completions += sh.grp.Advance(bound)
}

// runSharded is Run's sharded-mode twin: same contract, parallel
// engine.
func (c *Cluster) runSharded(src trace.Source) (*Result, error) {
	deadline := c.cfg.Deadline
	if deadline == 0 {
		deadline = simtime.Infinity
	}
	lookahead := c.cfg.DispatchLatency
	if lookahead == 0 {
		lookahead = DefaultDispatchLatency
	}
	nShards := c.cfg.Shards
	if nShards > len(c.nodes) {
		nShards = len(c.nodes)
	}

	// Contiguous partition, sizes differing by at most one. Each node's
	// stage pipeline reports into its owning shard: the lifecycle stage
	// releases containers inside the window, while completions queue in
	// the shard's barrier report (the coordinator notifies a
	// completion-observing dispatcher only at barriers, in merged
	// deterministic order — unlike the serial path's synchronous
	// notify).
	shards := make([]*shard, nShards)
	shardOf := make([]int, len(c.nodes))
	per, rem := len(c.nodes)/nShards, len(c.nodes)%nShards
	base := 0
	for s := range shards {
		n := per
		if s < rem {
			n++
		}
		sh := &shard{base: base}
		for i := base; i < base+n; i++ {
			shardOf[i] = s
		}
		rts := make([]*host.Runtime, 0, n)
		for _, nd := range c.nodes[base : base+n] {
			var stages []host.Stage
			if nd.mgr != nil {
				stages = append(stages, lifecycle.NewHostStage(nd.mgr))
			}
			if c.inj != nil || c.obs != nil {
				gi := nd.idx
				stages = append(stages, host.FinishFunc(func(at simtime.Time, t *task.Task) {
					sh.finished = append(sh.finished, finishRec{t: t, at: at, host: gi})
				}))
			}
			nd.rt = host.New(nd.eng, stages...)
			rts = append(rts, nd.rt)
		}
		sh.grp = host.NewGroup(rts)
		shards[s] = sh
		base += n
	}

	var (
		records []record
		central []int // indices into records of held invocations, FIFO
		maxQ    int
		now     simtime.Time
		aborted bool
	)

	// offer asks the dispatcher to place records[ri] as of the
	// coordinator's current view, routing the assignment to the owning
	// shard's group as a submission at `at`. Unlike the serial path,
	// nothing touches the host engine here — the group performs the
	// stage hooks and submit inside its window.
	offer := func(at simtime.Time, ri int) bool {
		rec := &records[ri]
		idx := c.cfg.Dispatcher.Pick(at, rec.t, c.views)
		if idx == Hold {
			return false
		}
		if idx < 0 || idx >= len(c.nodes) {
			panic(fmt.Sprintf("cluster: dispatcher %s picked host %d of %d", c.cfg.Dispatcher.Name(), idx, len(c.nodes)))
		}
		rec.host = idx
		rec.at = at
		if at > rec.t.Arrival {
			rec.t.Arrival = at
		}
		// Network delay postpones runnability on the host; the submission
		// still travels at the dispatch instant, and the coordinator draws
		// delays in global dispatch order, so the stream is identical at
		// any shard count.
		rec.t.Arrival += c.netDelayOf()
		c.nodes[idx].dispatched++
		sh := shards[shardOf[idx]]
		sh.grp.Enqueue(idx-sh.base, at, rec.t)
		return true
	}

	drainCentral := func(at simtime.Time) {
		for len(central) > 0 {
			if !offer(at, central[0]) {
				return
			}
			central = central[1:]
		}
	}

	admit := func(t *task.Task, at simtime.Time) {
		records = append(records, record{t: t, orig: t.Arrival, host: Hold, at: -1})
		ri := len(records) - 1
		if len(central) > 0 || !offer(at, ri) {
			central = append(central, ri)
			if len(central) > maxQ {
				maxQ = len(central)
			}
		}
	}

	// Window execution: one persistent worker per strided shard group,
	// synchronized by channel sends (which carry the happens-before
	// edges that make barrier-time coordinator access race-free). The
	// assignment of shards to workers affects neither results — shards
	// are mutually independent within a window — nor the barrier
	// algorithm, so any -workers value is byte-equivalent.
	nWorkers := c.cfg.Workers
	if nWorkers == 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	if nWorkers > nShards {
		nWorkers = nShards
	}
	runWindow := func(bound simtime.Time) {
		for _, sh := range shards {
			sh.advance(bound)
		}
	}
	if nWorkers > 1 {
		workCh := make([]chan simtime.Time, nWorkers)
		doneCh := make(chan struct{}, nWorkers)
		for w := 0; w < nWorkers; w++ {
			workCh[w] = make(chan simtime.Time)
			go func(w int) {
				for bound := range workCh[w] {
					for s := w; s < nShards; s += nWorkers {
						shards[s].advance(bound)
					}
					doneCh <- struct{}{}
				}
			}(w)
		}
		defer func() {
			for _, ch := range workCh {
				close(ch)
			}
		}()
		runWindow = func(bound simtime.Time) {
			for _, ch := range workCh {
				ch <- bound
			}
			for range workCh {
				<-doneCh
			}
		}
	}

	next, more := src.Next()
	for {
		// ---- barrier: coordinator owns all state ----
		if c.cfg.NewLifecycle != nil {
			// One monotone advance per barrier; shards move each manager
			// forward again during the window via the lifecycle stage's
			// acquire/release hooks.
			for _, n := range c.nodes {
				n.mgr.AdvanceTo(now)
			}
		}

		// Completions from the last window are merged across shards in
		// deterministic (time, host, seq) order — equal (time, host)
		// entries come from one shard, whose append order the stable sort
		// preserves — then handled in the serial loop's order within a
		// completion event: a completion-observing dispatcher learns
		// first, held work gets its claim on the freed capacity (FIFO),
		// and chain stages released by those completions re-enter
		// dispatch last.
		completions := 0
		for _, sh := range shards {
			completions += sh.completions
			sh.completions = 0
		}
		var finished []finishRec
		if c.inj != nil || c.obs != nil {
			for _, sh := range shards {
				finished = append(finished, sh.finished...)
				sh.finished = sh.finished[:0]
			}
			if len(finished) > 0 {
				sort.SliceStable(finished, func(i, j int) bool {
					if finished[i].at != finished[j].at {
						return finished[i].at < finished[j].at
					}
					return finished[i].host < finished[j].host
				})
				if c.obs != nil {
					for _, fr := range finished {
						c.obs.TaskFinished(fr.at, fr.host, fr.t)
					}
				}
			}
		}
		if completions > 0 {
			drainCentral(now)
		}
		if c.inj != nil {
			for _, fr := range finished {
				for _, dt := range c.inj.OnFinish(fr.t) {
					admit(dt, now)
				}
			}
		}

		// Earliest future event anywhere: source arrival, undelivered
		// submission, or host engine event.
		earliest := simtime.Infinity
		if more {
			earliest = next.Arrival
		}
		for _, sh := range shards {
			if st := sh.grp.NextSubmissionTime(); st < earliest {
				earliest = st
			}
			if _, ht := sh.grp.Min(); ht < earliest {
				earliest = ht
			}
		}
		if earliest == simtime.Infinity {
			if len(central) > 0 {
				return nil, fmt.Errorf("cluster: dispatcher %s stalled with %d invocations held and all hosts idle",
					c.cfg.Dispatcher.Name(), len(central))
			}
			break
		}
		if earliest > deadline {
			aborted = true
			break
		}

		// Next window on the fixed L-grid containing the earliest event;
		// the fixed grid (rather than [earliest, earliest+L)) keeps
		// window boundaries independent of per-window content.
		t0 := earliest - earliest%lookahead
		if t0 < now {
			t0 = now
		}
		bound := t0 + lookahead
		if bound < t0 {
			bound = simtime.Infinity // overflow far beyond any trace
		}
		if deadline != simtime.Infinity && bound > deadline+1 {
			// Never simulate past the deadline; the next barrier aborts.
			bound = deadline + 1
		}

		// Admit every arrival inside the window. Placement sees host
		// state as of `now` plus this window's own assignments.
		for more && next.Arrival < bound {
			if c.inj != nil {
				for _, rt := range c.inj.Expand(next) {
					admit(rt, next.Arrival)
				}
			} else {
				admit(next, next.Arrival)
			}
			next, more = src.Next()
		}

		// ---- window: shards advance in parallel ----
		runWindow(bound)
		now = bound
	}

	if err := trace.Err(src); err != nil {
		return nil, err
	}
	for _, n := range c.nodes {
		if n.eng.Pending() > 0 {
			aborted = true
		}
	}

	res := c.result(records, maxQ, aborted)
	res.Shards = nShards
	res.Lookahead = lookahead
	return res, nil
}
