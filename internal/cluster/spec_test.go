package cluster

import (
	"reflect"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
)

func TestParseSpeeds(t *testing.T) {
	cases := []struct {
		spec  string
		hosts int
		want  []float64
	}{
		{"", 4, nil},
		{"  ", 4, nil},
		{"2", 3, []float64{2, 2, 2}},
		{"1.5x2,0.5x2", 4, []float64{1.5, 1.5, 0.5, 0.5}},
		{"2x1,1x3", 4, []float64{2, 1, 1, 1}},
		{"1.5x1", 1, []float64{1.5}},
		{" 1.5x2 , 0.5x2 ", 4, []float64{1.5, 1.5, 0.5, 0.5}},
		{"3,1,2", 3, []float64{3, 1, 2}},
	}
	for _, c := range cases {
		got, err := ParseSpeeds(c.spec, c.hosts)
		if err != nil {
			t.Errorf("ParseSpeeds(%q, %d): %v", c.spec, c.hosts, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpeeds(%q, %d) = %v, want %v", c.spec, c.hosts, got, c.want)
		}
	}
}

func TestParseSpeedsErrors(t *testing.T) {
	for _, c := range []struct {
		spec  string
		hosts int
	}{
		{"1.5x2", 4},       // count short of hosts
		{"1.5x2,0.5x3", 4}, // count beyond hosts
		{"fastx2,1x2", 4},  // non-numeric speed
		{"1.5xq", 1},       // non-numeric count
		{"1.5x0,1x4", 4},   // zero count
		{"abc", 4},         // bare non-numeric
	} {
		if _, err := ParseSpeeds(c.spec, c.hosts); err == nil {
			t.Errorf("ParseSpeeds(%q, %d): want error, got nil", c.spec, c.hosts)
		}
	}
}

// Parsed speed vectors feed cluster.New unchanged, so its validation
// (positivity, finiteness) applies; the parser itself accepts any float.
func TestParseSpeedsNonPositiveRejectedByNew(t *testing.T) {
	sp, err := ParseSpeeds("-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := validCfg(2)
	cfg.Speeds = sp
	if _, err := New(cfg); err == nil {
		t.Fatal("cluster.New accepted negative parsed speeds")
	}
}

func TestParseNetDelay(t *testing.T) {
	if d, err := ParseNetDelay(""); err != nil || d != nil {
		t.Fatalf("empty spec: got %v, %v", d, err)
	}
	d, err := ParseNetDelay("500us")
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := d.(dist.Constant); !ok || c.Value != 500*time.Microsecond {
		t.Fatalf("constant spec parsed as %v", d)
	}
	d, err = ParseNetDelay("200us-2ms")
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := d.(dist.Uniform); !ok || u.Lo != 200*time.Microsecond || u.Hi != 2*time.Millisecond {
		t.Fatalf("uniform spec parsed as %v", d)
	}
}

func TestParseNetDelayErrors(t *testing.T) {
	for _, spec := range []string{
		"fast",      // not a duration
		"2ms-200us", // hi < lo
		"-1ms",      // negative constant
		"1ms-x",     // bad hi
	} {
		if _, err := ParseNetDelay(spec); err == nil {
			t.Errorf("ParseNetDelay(%q): want error, got nil", spec)
		}
	}
}
