package cluster

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Host is the read-only view of one simulated host that dispatch
// policies decide from. All quantities are instantaneous at the
// dispatch decision's virtual time.
type Host interface {
	// Index is the host's position in the cluster (0..Hosts-1).
	Index() int
	// Cores is the host's core count.
	Cores() int
	// InFlight is the number of invocations dispatched to the host and
	// not yet finished (running, runnable, or blocked on I/O).
	InFlight() int
	// BusyCores is the number of cores currently executing a task.
	BusyCores() int
	// Queued is the number of in-flight invocations not currently on a
	// core (waiting in a runqueue or blocked on I/O).
	Queued() int
	// Dispatched is the cumulative number of invocations ever sent to
	// this host.
	Dispatched() int
	// Warm is the number of idle warm containers the host holds for
	// app — always 0 when container lifecycle modeling is disabled.
	// Affinity-aware policies (WARMFIRST) route on it.
	Warm(app string) int
}

// Dispatcher is the cluster-level placement policy: it decides, for each
// arriving invocation, which host's OS-level scheduler will see it.
//
// Pick returns the index of the chosen host, or Hold to leave the
// invocation in the cluster's central queue. Held invocations are
// re-offered (oldest first) every time any host completes a task, which
// is how pull-based policies are expressed: return Hold until a host
// has claimable capacity. Implementations must be deterministic
// functions of their construction parameters and the observed host
// views — no wall clock, no global RNG.
type Dispatcher interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick selects a host for t at virtual time now, or returns Hold.
	Pick(now simtime.Time, t *task.Task, hosts []Host) int
}

// Hold is the Pick return value that parks an invocation in the central
// queue instead of assigning it to a host.
const Hold = -1

// ---- policies ----

// roundRobin cycles through hosts in index order.
type roundRobin struct{ next int }

func (d *roundRobin) Name() string { return "RR" }

func (d *roundRobin) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	h := d.next % len(hosts)
	d.next++
	return h
}

// random picks a host uniformly from a seeded stream, so runs replay
// exactly.
type random struct{ r *rng.RNG }

func (d *random) Name() string { return "RANDOM" }

func (d *random) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	return d.r.Intn(len(hosts))
}

// leastLoaded sends each invocation to the host with the fewest
// in-flight invocations (running, runnable, or blocked), breaking ties
// by lowest index.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "LEASTLOADED" }

func (leastLoaded) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best := 0
	for i, h := range hosts {
		if h.InFlight() < hosts[best].InFlight() {
			best = i
		}
	}
	return best
}

// joinShortestQueue sends each invocation to the host with the fewest
// invocations waiting off-core (runqueue depth plus blocked tasks),
// ignoring work that is actively running — the classic JSQ policy at
// host granularity. Ties break by lowest index.
type joinShortestQueue struct{}

func (joinShortestQueue) Name() string { return "JSQ" }

func (joinShortestQueue) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best := 0
	for i, h := range hosts {
		if h.Queued() < hosts[best].Queued() {
			best = i
		}
	}
	return best
}

// pullBased models Hiku-style pull scheduling: hosts claim work only
// while they have claimable capacity (fewer in-flight invocations than
// cores), and everything else waits in the cluster's central queue
// until a completion frees a slot. Among hosts with capacity the one
// with the most free slots claims first (ties to the lowest index), so
// work spreads to the idlest host exactly as an idle-worker queue
// would.
type pullBased struct{}

func (pullBased) Name() string { return "PULL" }

func (pullBased) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best, bestFree := Hold, 0
	for i, h := range hosts {
		if free := h.Cores() - h.InFlight(); free > bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// hashAffinity pins each function application to one host by hashing
// its name (FNV-1a), the locality-preserving policy: a function's warm
// state, caches, and working set stay on one machine. Invocations
// without an application name hash their ID instead, which degrades to
// random-ish spreading.
type hashAffinity struct{}

func (hashAffinity) Name() string { return "HASH" }

func (hashAffinity) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	key := t.App
	if key == "" {
		key = strconv.Itoa(t.ID)
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(hosts)))
}

// warmFirst prefers hosts already holding an idle warm container for
// the invocation's application — the dispatch-side counterpart of
// keep-alive, in the spirit of Przybylski et al.'s data-driven
// placement: where HASH pins an app to one host unconditionally,
// WARMFIRST follows the warm state itself, so it exploits affinity
// when a sandbox exists and load-balances when none does. Among warm
// hosts the least-loaded wins (ties to the lowest index); with no warm
// host anywhere it degrades to LEASTLOADED, whose spreading seeds warm
// pools on every machine. Requires cluster lifecycle modeling to see
// any warm state; without it Warm is always 0 and the policy is
// exactly LEASTLOADED.
type warmFirst struct{}

func (warmFirst) Name() string { return "WARMFIRST" }

func (warmFirst) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best := -1
	for i, h := range hosts {
		if h.Warm(t.App) == 0 {
			continue
		}
		if best < 0 || h.InFlight() < hosts[best].InFlight() {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return leastLoaded{}.Pick(now, t, hosts)
}

// ---- registry ----

// FactoryConfig carries the construction parameters a dispatch policy
// may need.
type FactoryConfig struct {
	// Hosts is the cluster size the policy will dispatch over.
	Hosts int
	// Seed drives randomized policies (RANDOM); deterministic policies
	// ignore it.
	Seed uint64
}

// constructors maps canonical names to policy constructors, mirroring
// internal/schedulers so CLIs select dispatchers by flag without the
// recognized set drifting between tools.
var constructors = map[string]func(cfg FactoryConfig) Dispatcher{
	"RR":          func(FactoryConfig) Dispatcher { return &roundRobin{} },
	"RANDOM":      func(cfg FactoryConfig) Dispatcher { return &random{r: rng.New(cfg.Seed)} },
	"LEASTLOADED": func(FactoryConfig) Dispatcher { return leastLoaded{} },
	"JSQ":         func(FactoryConfig) Dispatcher { return joinShortestQueue{} },
	"PULL":        func(FactoryConfig) Dispatcher { return pullBased{} },
	"HASH":        func(FactoryConfig) Dispatcher { return hashAffinity{} },
	"WARMFIRST":   func(FactoryConfig) Dispatcher { return warmFirst{} },
}

// names in presentation order.
var names = []string{"RR", "RANDOM", "LEASTLOADED", "JSQ", "PULL", "HASH", "WARMFIRST"}

// Names returns the canonical dispatch-policy names NewDispatcher
// recognizes.
func Names() []string { return append([]string(nil), names...) }

// NewDispatcher constructs a dispatch policy by case-insensitive name.
func NewDispatcher(name string, cfg FactoryConfig) (Dispatcher, error) {
	mk, ok := constructors[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("unknown dispatch policy %q (want one of %s)", name, strings.Join(names, ", "))
	}
	return mk(cfg), nil
}
