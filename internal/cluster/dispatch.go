package cluster

import (
	"hash/fnv"
	"math"
	"strconv"
	"time"

	"github.com/serverless-sched/sfs/internal/predict"
	"github.com/serverless-sched/sfs/internal/registry"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// Host is the read-only view of one simulated host that dispatch
// policies decide from. All quantities are instantaneous at the
// dispatch decision's virtual time.
type Host interface {
	// Index is the host's position in the cluster (0..Hosts-1).
	Index() int
	// Cores is the host's core count.
	Cores() int
	// InFlight is the number of invocations dispatched to the host and
	// not yet finished (running, runnable, or blocked on I/O).
	InFlight() int
	// BusyCores is the number of cores currently executing a task.
	BusyCores() int
	// Queued is the number of in-flight invocations not currently on a
	// core (waiting in a runqueue or blocked on I/O).
	Queued() int
	// Dispatched is the cumulative number of invocations ever sent to
	// this host.
	Dispatched() int
	// Warm is the number of idle warm containers the host holds for
	// app — always 0 when container lifecycle modeling is disabled.
	// Affinity-aware policies (WARMFIRST) route on it.
	Warm(app string) int
	// Speed is the host's relative CPU speed factor (1.0 = baseline):
	// the host retires Speed seconds of CPU demand per second of wall
	// time. Speed-aware policies (PREDICTED) normalize predicted work
	// by it; a uniform fleet reports 1.0 everywhere.
	Speed() float64
}

// Dispatcher is the cluster-level placement policy: it decides, for each
// arriving invocation, which host's OS-level scheduler will see it.
//
// Pick returns the index of the chosen host, or Hold to leave the
// invocation in the cluster's central queue. Held invocations are
// re-offered (oldest first) every time any host completes a task, which
// is how pull-based policies are expressed: return Hold until a host
// has claimable capacity. Implementations must be deterministic
// functions of their construction parameters and the observed host
// views — no wall clock, no global RNG.
type Dispatcher interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick selects a host for t at virtual time now, or returns Hold.
	Pick(now simtime.Time, t *task.Task, hosts []Host) int
}

// Hold is the Pick return value that parks an invocation in the central
// queue instead of assigning it to a host.
const Hold = -1

// CompletionObserver is implemented by dispatchers that learn from (or
// release accounting on) task completions, such as PREDICTED. The
// cluster delivers every finish to the dispatcher that placed it: on
// the serial path synchronously at the completion event, in sharded
// mode at the next barrier, merged across shards in deterministic
// (time, host) order. Either way the observer runs single-threaded on
// the coordinating goroutine and always before the freed capacity is
// re-offered to held work.
type CompletionObserver interface {
	// TaskFinished reports that t completed on host at virtual time now.
	TaskFinished(now simtime.Time, host int, t *task.Task)
}

// ---- policies ----

// roundRobin cycles through hosts in index order.
type roundRobin struct{ next int }

func (d *roundRobin) Name() string { return "RR" }

func (d *roundRobin) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	h := d.next % len(hosts)
	d.next++
	return h
}

// random picks a host uniformly from a seeded stream, so runs replay
// exactly.
type random struct{ r *rng.RNG }

func (d *random) Name() string { return "RANDOM" }

func (d *random) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	return d.r.Intn(len(hosts))
}

// leastLoaded sends each invocation to the host with the fewest
// in-flight invocations (running, runnable, or blocked), breaking ties
// by lowest index.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "LEASTLOADED" }

func (leastLoaded) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best := 0
	for i, h := range hosts {
		if h.InFlight() < hosts[best].InFlight() {
			best = i
		}
	}
	return best
}

// joinShortestQueue sends each invocation to the host with the fewest
// invocations waiting off-core (runqueue depth plus blocked tasks),
// ignoring work that is actively running — the classic JSQ policy at
// host granularity. Ties break by lowest index.
type joinShortestQueue struct{}

func (joinShortestQueue) Name() string { return "JSQ" }

func (joinShortestQueue) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best := 0
	for i, h := range hosts {
		if h.Queued() < hosts[best].Queued() {
			best = i
		}
	}
	return best
}

// pullBased models Hiku-style pull scheduling: hosts claim work only
// while they have claimable capacity (fewer in-flight invocations than
// cores), and everything else waits in the cluster's central queue
// until a completion frees a slot. Among hosts with capacity the one
// with the most free slots claims first (ties to the lowest index), so
// work spreads to the idlest host exactly as an idle-worker queue
// would.
type pullBased struct{}

func (pullBased) Name() string { return "PULL" }

func (pullBased) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best, bestFree := Hold, 0
	for i, h := range hosts {
		if free := h.Cores() - h.InFlight(); free > bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// hashAffinity pins each function application to one host by hashing
// its name (FNV-1a), the locality-preserving policy: a function's warm
// state, caches, and working set stay on one machine. Invocations
// without an application name hash their ID instead, which degrades to
// random-ish spreading.
type hashAffinity struct{}

func (hashAffinity) Name() string { return "HASH" }

func (hashAffinity) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	key := t.App
	if key == "" {
		key = strconv.Itoa(t.ID)
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(hosts)))
}

// warmFirst prefers hosts already holding an idle warm container for
// the invocation's application — the dispatch-side counterpart of
// keep-alive, in the spirit of Przybylski et al.'s data-driven
// placement: where HASH pins an app to one host unconditionally,
// WARMFIRST follows the warm state itself, so it exploits affinity
// when a sandbox exists and load-balances when none does. Among warm
// hosts the least-loaded wins (ties to the lowest index); with no warm
// host anywhere it degrades to LEASTLOADED, whose spreading seeds warm
// pools on every machine. Requires cluster lifecycle modeling to see
// any warm state; without it Warm is always 0 and the policy is
// exactly LEASTLOADED.
type warmFirst struct{}

func (warmFirst) Name() string { return "WARMFIRST" }

func (warmFirst) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	best := -1
	for i, h := range hosts {
		if h.Warm(t.App) == 0 {
			continue
		}
		if best < 0 || h.InFlight() < hosts[best].InFlight() {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return leastLoaded{}.Pick(now, t, hosts)
}

// predicted dispatches each invocation to the host with the minimum
// predicted completion time: the host's outstanding predicted work
// (the sum of estimates for everything dispatched there and not yet
// finished) plus this invocation's own estimate, divided by the host's
// speed factor — so a 2x host with twice the backlog ties a 1x host,
// and heterogeneous fleets are balanced in time rather than task
// count. Estimates come from one shared online estimator
// (internal/predict) fed by every completion cluster-wide, the
// dispatch-level counterpart of PSRTF's per-host learning and the
// placement policy of Przybylski et al.'s data-driven scheduling.
//
// Its quality is exactly its predictor's: with converged estimates it
// approximates least-work-left, and under adversarial priors (cold
// apps predicted tiny) it piles elephants onto one host — the regime
// the predicted-dispatch experiment sweeps.
type predicted struct {
	est     *predict.Estimator
	backlog []time.Duration              // outstanding predicted work per host
	cost    map[*task.Task]time.Duration // what each in-flight task was charged
}

func newPredicted(est *predict.Estimator) *predicted {
	return &predicted{est: est, cost: map[*task.Task]time.Duration{}}
}

func (d *predicted) Name() string { return "PREDICTED" }

// Estimator exposes the shared predictor for tests and harnesses.
func (d *predicted) Estimator() *predict.Estimator { return d.est }

func (d *predicted) Pick(now simtime.Time, t *task.Task, hosts []Host) int {
	if len(d.backlog) < len(hosts) {
		d.backlog = append(d.backlog, make([]time.Duration, len(hosts)-len(d.backlog))...)
	}
	p := d.est.Predict(t.App)
	best, bestScore := 0, math.Inf(1)
	for i, h := range hosts {
		if score := float64(d.backlog[i]+p) / h.Speed(); score < bestScore {
			best, bestScore = i, score
		}
	}
	d.backlog[best] += p
	d.cost[t] = p
	return best
}

// TaskFinished implements CompletionObserver: release the completed
// task's charged estimate from its host's backlog and feed the true
// demand to the estimator.
func (d *predicted) TaskFinished(now simtime.Time, host int, t *task.Task) {
	if c, ok := d.cost[t]; ok {
		d.backlog[host] -= c
		delete(d.cost, t)
	}
	d.est.Observe(t.App, t.Service)
}

// ---- registry ----

// FactoryConfig carries the construction parameters a dispatch policy
// may need.
type FactoryConfig struct {
	// Hosts is the cluster size the policy will dispatch over.
	Hosts int
	// Seed drives randomized policies (RANDOM); deterministic policies
	// ignore it.
	Seed uint64
	// Predict configures PREDICTED's online runtime estimator; other
	// policies ignore it. A zero Predict.Seed inherits Seed so noise
	// injection stays tied to the run's seed by default.
	Predict predict.Config
}

// reg maps canonical names to policy constructors in presentation
// order, on the shared internal/registry helper — the same table shape
// as internal/schedulers, so CLIs select dispatchers by flag without
// the recognized set (or the unknown-name behavior) drifting between
// tools.
var reg = registry.New[func(cfg FactoryConfig) Dispatcher]("dispatch policy").
	Add("RR", func(FactoryConfig) Dispatcher { return &roundRobin{} }).
	Add("RANDOM", func(cfg FactoryConfig) Dispatcher { return &random{r: rng.New(cfg.Seed)} }).
	Add("LEASTLOADED", func(FactoryConfig) Dispatcher { return leastLoaded{} }).
	Add("JSQ", func(FactoryConfig) Dispatcher { return joinShortestQueue{} }).
	Add("PULL", func(FactoryConfig) Dispatcher { return pullBased{} }).
	Add("HASH", func(FactoryConfig) Dispatcher { return hashAffinity{} }).
	Add("WARMFIRST", func(FactoryConfig) Dispatcher { return warmFirst{} }).
	Add("PREDICTED", func(cfg FactoryConfig) Dispatcher {
		pc := cfg.Predict
		if pc.Seed == 0 {
			pc.Seed = cfg.Seed
		}
		return newPredicted(predict.New(pc))
	})

// Names returns the canonical dispatch-policy names NewDispatcher
// recognizes.
func Names() []string { return reg.Names() }

// NewDispatcher constructs a dispatch policy by case-insensitive name.
func NewDispatcher(name string, cfg FactoryConfig) (Dispatcher, error) {
	mk, err := reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return mk(cfg), nil
}
