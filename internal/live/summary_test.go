package live

import (
	"strings"
	"testing"
	"time"
)

func mkResult(mode Mode, turnaround, qdelay time.Duration) Result {
	base := time.Unix(1000, 0)
	return Result{
		Submitted:  base,
		Started:    base.Add(qdelay),
		Finished:   base.Add(turnaround),
		Mode:       mode,
		QueueDelay: qdelay,
	}
}

func TestSummarize(t *testing.T) {
	results := []Result{
		mkResult(ModeFilter, 10*time.Millisecond, time.Millisecond),
		mkResult(ModeFilter, 20*time.Millisecond, 2*time.Millisecond),
		mkResult(ModeCFS, 90*time.Millisecond, 5*time.Millisecond),
		{}, // unfinished: skipped
	}
	s := Summarize(results)
	if s.N != 3 {
		t.Fatalf("n %d", s.N)
	}
	if s.FilterComplete != 2 || s.CFSComplete != 1 {
		t.Fatalf("modes %d/%d", s.FilterComplete, s.CFSComplete)
	}
	if s.MeanTurnaround != 40*time.Millisecond {
		t.Fatalf("mean %v", s.MeanTurnaround)
	}
	if s.P50 != 20*time.Millisecond {
		t.Fatalf("p50 %v", s.P50)
	}
	if s.P99 != 90*time.Millisecond {
		t.Fatalf("p99 %v", s.P99)
	}
	if s.MaxQueueDelay != 5*time.Millisecond {
		t.Fatalf("maxQ %v", s.MaxQueueDelay)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("render %q", s.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.MeanTurnaround != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizeEndToEnd(t *testing.T) {
	sched := New(Config{Workers: 2, FixedSlice: 10 * time.Millisecond})
	sched.Start()
	defer sched.Stop()
	var results []Result
	for i := 0; i < 20; i++ {
		d := time.Millisecond
		if i%5 == 0 {
			d = 40 * time.Millisecond // these demote
		}
		fut, err := sched.Submit("x", func(ctx *Ctx) { ctx.Spin(d) })
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, fut.Wait())
	}
	s := Summarize(results)
	if s.N != 20 {
		t.Fatalf("n %d", s.N)
	}
	if s.CFSComplete == 0 {
		t.Fatal("expected some demotions")
	}
	if s.P50 <= 0 || s.P99 < s.P50 {
		t.Fatalf("percentiles %v/%v", s.P50, s.P99)
	}
}
