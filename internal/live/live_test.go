package live

import (
	"sync"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func newStarted(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s := New(cfg)
	s.Start()
	t.Cleanup(s.Stop)
	return s
}

func TestShortFunctionCompletesInFilter(t *testing.T) {
	s := newStarted(t, Config{Workers: 2, InitialSlice: ms(500)})
	fut, err := s.Submit("short", func(ctx *Ctx) { ctx.Spin(ms(10)) })
	if err != nil {
		t.Fatal(err)
	}
	res := fut.Wait()
	if res.Mode != ModeFilter {
		t.Fatalf("mode %v, want FILTER", res.Mode)
	}
	if res.Turnaround() < ms(5) {
		t.Fatalf("turnaround %v implausibly fast", res.Turnaround())
	}
	// The worker observes the completion asynchronously after the future
	// resolves; give the counter a moment.
	deadline := time.Now().Add(time.Second)
	for s.Stats.FilterComplete.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("filter completions %d", s.Stats.FilterComplete.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLongFunctionDemoted(t *testing.T) {
	s := newStarted(t, Config{Workers: 1, FixedSlice: ms(20)})
	fut, err := s.Submit("long", func(ctx *Ctx) { ctx.Spin(ms(120)) })
	if err != nil {
		t.Fatal(err)
	}
	res := fut.Wait()
	if res.Mode != ModeCFS {
		t.Fatalf("mode %v, want CFS after demotion", res.Mode)
	}
	if s.Stats.Demotions.Load() != 1 {
		t.Fatalf("demotions %d", s.Stats.Demotions.Load())
	}
}

func TestDemotionFreesWorkerForShorts(t *testing.T) {
	// One worker: a long function is demoted at 20ms; short functions
	// submitted behind it must not wait for the long one to finish.
	s := newStarted(t, Config{Workers: 1, FixedSlice: ms(20)})
	longFut, err := s.Submit("long", func(ctx *Ctx) { ctx.Spin(ms(300)) })
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(ms(5)) // let the long one start
	shortFut, err := s.Submit("short", func(ctx *Ctx) { ctx.Spin(ms(10)) })
	if err != nil {
		t.Fatal(err)
	}
	short := shortFut.Wait()
	if short.Turnaround() > ms(200) {
		t.Fatalf("short waited for the long function: %v", short.Turnaround())
	}
	long := longFut.Wait()
	if long.Mode != ModeCFS {
		t.Fatalf("long mode %v", long.Mode)
	}
}

func TestIOFreesWorker(t *testing.T) {
	// A function sleeping in FILTER mode must release its worker so a
	// second function can run meanwhile (§V-D).
	s := newStarted(t, Config{Workers: 1, FixedSlice: ms(500)})
	sleeperFut, err := s.Submit("sleeper", func(ctx *Ctx) {
		ctx.Spin(ms(5))
		ctx.Sleep(ms(150))
		ctx.Spin(ms(5))
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(ms(30)) // sleeper is now blocked in its IO
	start := time.Now()
	shortFut, err := s.Submit("short", func(ctx *Ctx) { ctx.Spin(ms(10)) })
	if err != nil {
		t.Fatal(err)
	}
	shortFut.Wait()
	if d := time.Since(start); d > ms(100) {
		t.Fatalf("short blocked behind a sleeping function: %v", d)
	}
	res := sleeperFut.Wait()
	if res.Mode != ModeFilter {
		t.Fatalf("sleeper mode %v, want FILTER (IO must not burn slice)", res.Mode)
	}
}

func TestOverloadRouting(t *testing.T) {
	// A large instantaneous burst on one worker with a tiny slice trips
	// the O*S delay threshold for queued requests.
	s := newStarted(t, Config{Workers: 1, FixedSlice: ms(5)})
	var futs []*Future
	for i := 0; i < 60; i++ {
		fut, err := s.Submit("burst", func(ctx *Ctx) { ctx.Spin(ms(4)) })
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, f := range futs {
		f.Wait()
	}
	if s.Stats.OverloadRouted.Load() == 0 {
		t.Fatal("overload routing never triggered")
	}
}

func TestSliceAdaptation(t *testing.T) {
	s := newStarted(t, Config{Workers: 2, WindowSize: 20, InitialSlice: ms(300)})
	var wg sync.WaitGroup
	for i := 0; i < 45; i++ {
		fut, err := s.Submit("tick", func(ctx *Ctx) { ctx.Spin(time.Millisecond) })
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); fut.Wait() }()
		time.Sleep(ms(2))
	}
	wg.Wait()
	got := s.Slice()
	// Mean IAT ~2-4ms (sleep plus scheduling noise) x 2 workers.
	if got == ms(300) {
		t.Fatal("slice never adapted")
	}
	if got < time.Millisecond || got > ms(40) {
		t.Fatalf("adapted slice %v outside plausible range", got)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Start()
	s.Stop()
	if _, err := s.Submit("late", func(ctx *Ctx) {}); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestManyConcurrentInvocations(t *testing.T) {
	s := newStarted(t, Config{Workers: 4, InitialSlice: ms(50)})
	const n = 200
	futs := make([]*Future, n)
	for i := range futs {
		var err error
		futs[i], err = s.Submit("mixed", func(ctx *Ctx) {
			ctx.Spin(time.Duration(500+i%1500) * time.Microsecond)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	modes := map[Mode]int{}
	for _, f := range futs {
		res := f.Wait()
		modes[res.Mode]++
		if res.Turnaround() <= 0 {
			t.Fatal("non-positive turnaround")
		}
	}
	if modes[ModeFilter] == 0 {
		t.Fatalf("no FILTER completions: %v", modes)
	}
	if got := s.Stats.Submitted.Load(); got != n {
		t.Fatalf("submitted %d, want %d", got, n)
	}
}

func TestCheckpointYieldsOnlyWhenContended(t *testing.T) {
	s := newStarted(t, Config{Workers: 1, FixedSlice: ms(1)})
	fut, err := s.Submit("demoted", func(ctx *Ctx) { ctx.Spin(ms(30)) })
	if err != nil {
		t.Fatal(err)
	}
	fut.Wait()
	// Demoted with an empty queue: checkpoints happened, but no yields
	// were necessary.
	if s.Stats.Checkpoints.Load() == 0 {
		t.Fatal("no checkpoints recorded")
	}
}
