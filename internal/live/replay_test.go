package live

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// replayTrace builds a tiny trace: short CPU bursts arriving 5ms apart,
// one with an I/O op.
func replayTrace() trace.Source {
	a := task.New(0, 0, 2*time.Millisecond)
	a.App = "short"
	b := task.New(1, 5*time.Millisecond, 2*time.Millisecond)
	b.App = "io"
	b.WithIO(time.Millisecond, 10*time.Millisecond)
	c := task.New(2, 10*time.Millisecond, 2*time.Millisecond)
	c.App = "short"
	return trace.FromTasks("replay-test", []*task.Task{a, b, c})
}

func TestReplayExecutesWholeTrace(t *testing.T) {
	s := newStarted(t, Config{Workers: 2, InitialSlice: 500 * time.Millisecond})
	rep, err := Replay(s, replayTrace(), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 3 || rep.Dropped != 0 {
		t.Fatalf("submitted %d dropped %d", rep.Submitted, rep.Dropped)
	}
	if rep.Summary.N != 3 {
		t.Fatalf("summary over %d results", rep.Summary.N)
	}
	if rep.Summary.FilterComplete != 3 {
		t.Fatalf("%d of 3 completed in FILTER", rep.Summary.FilterComplete)
	}
	// Arrival pacing: the whole trace spans 10ms, so wall time must be
	// at least that (plus the last function's work).
	if rep.Wall < 10*time.Millisecond {
		t.Fatalf("replay finished in %v, faster than the trace span", rep.Wall)
	}
	for _, r := range rep.Results {
		if r.Turnaround() <= 0 {
			t.Fatal("non-positive turnaround")
		}
	}
}

func TestReplaySpeedupAndCap(t *testing.T) {
	// A 2s-long trace replayed 100x compressed must finish in far less
	// than 2s of wall time.
	tasks := make([]*task.Task, 20)
	for i := range tasks {
		tk := task.New(i, time.Duration(i)*100*time.Millisecond, 5*time.Millisecond)
		tk.App = "paced"
		tasks[i] = tk
	}
	s := newStarted(t, Config{Workers: 2, InitialSlice: 500 * time.Millisecond})
	rep, err := Replay(s, trace.FromTasks("paced", tasks), ReplayConfig{Speedup: 100, MaxN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 10 {
		t.Fatalf("MaxN ignored: %d submitted", rep.Submitted)
	}
	if rep.Wall > time.Second {
		t.Fatalf("compressed replay took %v", rep.Wall)
	}
}

// TestReplayRejectsBadConfig: nonsense configurations must be reported
// as errors, not silently coerced (a negative Speedup used to replay in
// real time); the zero value still means the documented real-time
// default.
func TestReplayRejectsBadConfig(t *testing.T) {
	s := newStarted(t, Config{Workers: 1})
	for _, cfg := range []ReplayConfig{
		{Speedup: -1},
		{Speedup: math.Inf(1)},
		{Speedup: math.NaN()},
		{MaxService: -time.Millisecond},
		{MaxN: -1},
	} {
		if _, err := Replay(s, replayTrace(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	// Zero Speedup is the documented default, not an error.
	if _, err := Replay(s, replayTrace(), ReplayConfig{}); err != nil {
		t.Fatalf("zero-value config rejected: %v", err)
	}
}

// TestReplayPlanClampsCompressedService: MaxService bounds the
// compressed (wall-clock) spin total exactly — the clamp used to apply
// to trace time, a different bound than documented — and scaled
// segments must telescope with no per-segment truncation drift.
func TestReplayPlanClampsCompressedService(t *testing.T) {
	tk := task.New(0, 0, 10*time.Second)
	tk.WithIO(time.Second, 50*time.Millisecond)
	tk.WithIO(4*time.Second, 70*time.Millisecond)
	cfg := ReplayConfig{Speedup: 100, MaxService: 20 * time.Millisecond}
	// Compressed service is 100ms > 20ms cap: the spins must sum to the
	// cap exactly (cumulative mapping, not per-segment truncation).
	plan := replayPlan(tk, cfg)
	if len(plan) != 3 {
		t.Fatalf("plan has %d steps, want 3 (two I/O ops + final burst)", len(plan))
	}
	var spins time.Duration
	for _, st := range plan {
		spins += st.spin
	}
	if spins != cfg.MaxService {
		t.Fatalf("clamped spins sum to %v, want exactly %v", spins, cfg.MaxService)
	}
	// I/O ops keep their proportional positions: op at 1s of 10s -> 10%
	// of the clamped budget spun before the first sleep.
	if want := cfg.MaxService / 10; plan[0].spin != want {
		t.Errorf("first burst %v, want %v (10%% of the clamped budget)", plan[0].spin, want)
	}
	// Sleeps are compressed but not clamped.
	if plan[0].sleep != 500*time.Microsecond || plan[1].sleep != 700*time.Microsecond {
		t.Errorf("sleeps %v/%v, want 0.5ms/0.7ms", plan[0].sleep, plan[1].sleep)
	}
	// Below the cap, no clamping: spins sum to the compressed service.
	uncapped := replayPlan(tk, ReplayConfig{Speedup: 1000, MaxService: 20 * time.Millisecond})
	spins = 0
	for _, st := range uncapped {
		spins += st.spin
	}
	if spins != 10*time.Millisecond {
		t.Fatalf("uncapped spins sum to %v, want the 10ms compressed service", spins)
	}
}

// TestReplayPlanDuplicateOps: ops sharing an At position must not
// regress the CPU cursor or produce negative bursts.
func TestReplayPlanDuplicateOps(t *testing.T) {
	tk := task.New(0, 0, 8*time.Millisecond)
	tk.WithIO(2*time.Millisecond, time.Millisecond)
	tk.WithIO(2*time.Millisecond, time.Millisecond)
	var spins time.Duration
	for _, st := range replayPlan(tk, ReplayConfig{}) {
		if st.spin < 0 {
			t.Fatalf("negative burst %v", st.spin)
		}
		spins += st.spin
	}
	if spins != 8*time.Millisecond {
		t.Fatalf("spins sum to %v, want the full 8ms service", spins)
	}
}

func TestReplayClampsHeavyTail(t *testing.T) {
	tk := task.New(0, 0, 10*time.Second) // would spin 10s uncapped
	tk.App = "heavy"
	s := newStarted(t, Config{Workers: 1, InitialSlice: time.Second})
	start := time.Now()
	rep, err := Replay(s, trace.FromTasks("heavy", []*task.Task{tk}),
		ReplayConfig{MaxService: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 1 {
		t.Fatalf("submitted %d", rep.Submitted)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("clamp ineffective: replay took %v", elapsed)
	}
}
