package live

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// replayTrace builds a tiny trace: short CPU bursts arriving 5ms apart,
// one with an I/O op.
func replayTrace() trace.Source {
	a := task.New(0, 0, 2*time.Millisecond)
	a.App = "short"
	b := task.New(1, 5*time.Millisecond, 2*time.Millisecond)
	b.App = "io"
	b.WithIO(time.Millisecond, 10*time.Millisecond)
	c := task.New(2, 10*time.Millisecond, 2*time.Millisecond)
	c.App = "short"
	return trace.FromTasks("replay-test", []*task.Task{a, b, c})
}

func TestReplayExecutesWholeTrace(t *testing.T) {
	s := newStarted(t, Config{Workers: 2, InitialSlice: 500 * time.Millisecond})
	rep, err := Replay(s, replayTrace(), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 3 || rep.Dropped != 0 {
		t.Fatalf("submitted %d dropped %d", rep.Submitted, rep.Dropped)
	}
	if rep.Summary.N != 3 {
		t.Fatalf("summary over %d results", rep.Summary.N)
	}
	if rep.Summary.FilterComplete != 3 {
		t.Fatalf("%d of 3 completed in FILTER", rep.Summary.FilterComplete)
	}
	// Arrival pacing: the whole trace spans 10ms, so wall time must be
	// at least that (plus the last function's work).
	if rep.Wall < 10*time.Millisecond {
		t.Fatalf("replay finished in %v, faster than the trace span", rep.Wall)
	}
	for _, r := range rep.Results {
		if r.Turnaround() <= 0 {
			t.Fatal("non-positive turnaround")
		}
	}
}

func TestReplaySpeedupAndCap(t *testing.T) {
	// A 2s-long trace replayed 100x compressed must finish in far less
	// than 2s of wall time.
	tasks := make([]*task.Task, 20)
	for i := range tasks {
		tk := task.New(i, time.Duration(i)*100*time.Millisecond, 5*time.Millisecond)
		tk.App = "paced"
		tasks[i] = tk
	}
	s := newStarted(t, Config{Workers: 2, InitialSlice: 500 * time.Millisecond})
	rep, err := Replay(s, trace.FromTasks("paced", tasks), ReplayConfig{Speedup: 100, MaxN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 10 {
		t.Fatalf("MaxN ignored: %d submitted", rep.Submitted)
	}
	if rep.Wall > time.Second {
		t.Fatalf("compressed replay took %v", rep.Wall)
	}
}

func TestReplayClampsHeavyTail(t *testing.T) {
	tk := task.New(0, 0, 10*time.Second) // would spin 10s uncapped
	tk.App = "heavy"
	s := newStarted(t, Config{Workers: 1, InitialSlice: time.Second})
	start := time.Now()
	rep, err := Replay(s, trace.FromTasks("heavy", []*task.Task{tk}),
		ReplayConfig{MaxService: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 1 {
		t.Fatalf("submitted %d", rep.Submitted)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("clamp ineffective: replay took %v", elapsed)
	}
}
