// Package live is a real-time, goroutine-based implementation of the SFS
// scheduling architecture: the form the paper's artifact actually takes
// (a standalone user-space Go scheduler, §VI).
//
// Because goroutines cannot change their OS scheduling class (the
// limitation that motivates the simulator in internal/cpusim), this
// runtime approximates the two levels cooperatively:
//
//   - the global queue is a channel, as in the paper's implementation;
//   - SFS workers are goroutines, one per configured worker, that fetch
//     requests whenever free and run them in FILTER mode bounded by the
//     dynamically adapted slice S = mean(IAT of last N) × workers;
//   - demotion to "CFS" hands the function to the Go runtime's own
//     scheduler, with demoted functions yielding at checkpoints whenever
//     FILTER work is pending — approximating SCHED_FIFO's static
//     priority over SCHED_NORMAL;
//   - functions declare blocking I/O via Ctx.IO, which releases the
//     worker (stop timekeeping, record unused slice) and re-enqueues the
//     invocation when the I/O completes, as in §V-D;
//   - transient overload routes requests straight to CFS mode when the
//     head-of-queue delay exceeds O × S (§V-E).
//
// Functions participate cooperatively by calling Ctx.Checkpoint inside
// compute loops (the role kernel preemption plays for real processes).
// Policy-faithful evaluation numbers come from the simulator; this
// package demonstrates the library API and measures real scheduling
// overhead on the host.
package live

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the scheduling level an invocation finished in.
type Mode int32

// Modes.
const (
	ModeFilter Mode = iota // completed entirely in FILTER
	ModeCFS                // demoted (slice exhausted) or overload-routed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeFilter {
		return "FILTER"
	}
	return "CFS"
}

// Function is user code run by the scheduler. It must call
// ctx.Checkpoint() periodically inside compute loops and use ctx.IO for
// blocking operations.
type Function func(ctx *Ctx)

// Config tunes the live scheduler.
type Config struct {
	// Workers is the FILTER pool size (defaults to GOMAXPROCS).
	Workers int
	// WindowSize is the IAT sliding window N (default 100).
	WindowSize int
	// InitialSlice seeds S (default 100 ms).
	InitialSlice time.Duration
	// FixedSlice pins S, disabling adaptation.
	FixedSlice time.Duration
	// OverloadFactor is O (default 3).
	OverloadFactor float64
	// QueueCapacity bounds the global queue channel (default 65536).
	QueueCapacity int
}

// Result describes one finished invocation.
type Result struct {
	// ID is the submission sequence number; Name the function's label.
	ID   int
	Name string
	// Submitted/Started/Finished are the wall-clock lifecycle stamps:
	// enqueue, first execution, and return.
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Mode is the scheduling level the invocation finished in.
	Mode Mode
	// QueueDelay is the time spent in the global queue before a worker
	// first fetched the invocation.
	QueueDelay time.Duration
}

// Turnaround is the end-to-end duration.
func (r Result) Turnaround() time.Duration { return r.Finished.Sub(r.Submitted) }

// Future resolves to an invocation's Result.
type Future struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the invocation finishes.
func (f *Future) Wait() Result {
	<-f.done
	return f.res
}

// invocation is the scheduler-internal request state.
type invocation struct {
	id   int
	name string
	fn   Function
	fut  *Future

	submitted time.Time
	enqueued  atomic.Int64 // unix nanos of the current queue entry

	mode      atomic.Int32 // Mode
	started   atomic.Bool  // fn goroutine launched
	startedAt time.Time

	mu        sync.Mutex
	sliceLeft time.Duration
	assigned  bool

	resume   chan time.Duration // worker -> fn: run with this slice budget
	ioULeft  chan time.Duration // fn -> worker: entered IO, unused slice
	finished chan struct{}
}

// Stats are the scheduler's internal counters, updated live and safe
// to read concurrently.
type Stats struct {
	// Submitted counts every invocation handed to Submit.
	Submitted atomic.Int64
	// FilterComplete counts invocations that finished inside their
	// FILTER slice; Demotions those that exhausted it and moved to the
	// CFS level; OverloadRouted those sent straight to CFS by the
	// transient-overload detector (§V-E).
	FilterComplete atomic.Int64
	Demotions      atomic.Int64
	OverloadRouted atomic.Int64
	// Checkpoints counts cooperative Ctx.Checkpoint calls observed;
	// Yields the subset that actually yielded the processor to pending
	// FILTER work.
	Checkpoints atomic.Int64
	Yields      atomic.Int64
}

// Scheduler is the live SFS runtime. Create with New, then Start.
type Scheduler struct {
	cfg   Config
	queue chan *invocation
	stop  chan struct{}
	wg    sync.WaitGroup

	pending atomic.Int64 // queued, FILTER-eligible requests

	mu          sync.Mutex
	s           time.Duration
	window      []time.Duration
	windowPos   int
	windowLen   int
	lastArrival time.Time
	haveArrival bool
	sinceRecalc int
	nextID      int

	// Stats exposes internal counters.
	Stats   Stats
	started atomic.Bool
}

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("live: scheduler stopped")

// New builds a live scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 100
	}
	if cfg.InitialSlice <= 0 {
		cfg.InitialSlice = 100 * time.Millisecond
	}
	if cfg.OverloadFactor <= 0 {
		cfg.OverloadFactor = 3
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1 << 16
	}
	s := &Scheduler{
		cfg:    cfg,
		queue:  make(chan *invocation, cfg.QueueCapacity),
		stop:   make(chan struct{}),
		window: make([]time.Duration, cfg.WindowSize),
		s:      cfg.InitialSlice,
	}
	if cfg.FixedSlice > 0 {
		s.s = cfg.FixedSlice
	}
	return s
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Stop drains no further work and waits for workers to exit. Submitted
// functions that have not finished are abandoned by the workers but any
// already-running function goroutines run to completion.
func (s *Scheduler) Stop() {
	close(s.stop)
	s.wg.Wait()
}

// Slice returns the current time-slice parameter S.
func (s *Scheduler) Slice() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s
}

// Submit enqueues a function invocation.
func (s *Scheduler) Submit(name string, fn Function) (*Future, error) {
	select {
	case <-s.stop:
		return nil, ErrStopped
	default:
	}
	now := time.Now()
	inv := &invocation{
		name:      name,
		fn:        fn,
		fut:       &Future{done: make(chan struct{})},
		submitted: now,
		resume:    make(chan time.Duration),
		ioULeft:   make(chan time.Duration),
		finished:  make(chan struct{}),
	}
	inv.enqueued.Store(now.UnixNano())

	s.mu.Lock()
	inv.id = s.nextID
	s.nextID++
	if s.haveArrival {
		s.observeIAT(now.Sub(s.lastArrival))
	}
	s.lastArrival = now
	s.haveArrival = true
	s.mu.Unlock()

	s.Stats.Submitted.Add(1)
	s.pending.Add(1)
	select {
	case s.queue <- inv:
	default:
		s.pending.Add(-1)
		return nil, fmt.Errorf("live: global queue full (%d)", s.cfg.QueueCapacity)
	}
	return inv.fut, nil
}

// observeIAT updates the window and recomputes S every WindowSize
// arrivals. Caller holds s.mu.
func (s *Scheduler) observeIAT(iat time.Duration) {
	s.window[s.windowPos] = iat
	s.windowPos = (s.windowPos + 1) % len(s.window)
	if s.windowLen < len(s.window) {
		s.windowLen++
	}
	s.sinceRecalc++
	if s.sinceRecalc < s.cfg.WindowSize || s.cfg.FixedSlice > 0 {
		return
	}
	s.sinceRecalc = 0
	var sum time.Duration
	for i := 0; i < s.windowLen; i++ {
		sum += s.window[i]
	}
	mean := sum / time.Duration(s.windowLen)
	next := mean * time.Duration(s.cfg.Workers)
	if next < time.Millisecond {
		next = time.Millisecond
	}
	s.s = next
}

// worker is the FILTER-pool loop: fetch whenever free (§V-B step 2).
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case inv := <-s.queue:
			s.pending.Add(-1)
			s.dispatch(inv)
		}
	}
}

// dispatch runs one fetched request, choosing FILTER or overload-CFS.
func (s *Scheduler) dispatch(inv *invocation) {
	now := time.Now()
	delay := now.Sub(time.Unix(0, inv.enqueued.Load()))
	slice := s.Slice()
	if float64(delay) > s.cfg.OverloadFactor*float64(slice) {
		// Transient overload: bypass FILTER (§V-E).
		inv.mode.Store(int32(ModeCFS))
		s.Stats.OverloadRouted.Add(1)
		s.launch(inv, 0)
		return
	}

	inv.mu.Lock()
	if !inv.assigned {
		inv.assigned = true
		inv.sliceLeft = slice
	}
	budget := inv.sliceLeft
	inv.mu.Unlock()
	if budget <= 0 {
		s.demote(inv)
		s.launch(inv, 0)
		return
	}

	s.launch(inv, budget)
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-inv.finished:
		s.Stats.FilterComplete.Add(1)
	case unused := <-inv.ioULeft:
		// The function blocked on I/O: stop timekeeping, record the
		// unused slice, free this worker (§V-D). The function
		// re-enqueues itself when the I/O completes.
		inv.mu.Lock()
		inv.sliceLeft = unused
		inv.mu.Unlock()
	case <-timer.C:
		// Slice exhausted: demote to CFS (§V-B step 4.2). The function
		// keeps running under the Go scheduler and will yield to FILTER
		// work at checkpoints.
		inv.mu.Lock()
		inv.sliceLeft = 0
		inv.mu.Unlock()
		s.demote(inv)
	}
}

func (s *Scheduler) demote(inv *invocation) {
	if inv.mode.CompareAndSwap(int32(ModeFilter), int32(ModeCFS)) {
		s.Stats.Demotions.Add(1)
	}
}

// launch starts the function goroutine on first dispatch or resumes it
// with the given budget afterwards. budget is informational for the fn
// side; the authoritative timer lives with the worker.
func (s *Scheduler) launch(inv *invocation, budget time.Duration) {
	if inv.started.CompareAndSwap(false, true) {
		inv.startedAt = time.Now()
		ctx := &Ctx{sched: s, inv: inv}
		go func() {
			inv.fn(ctx)
			s.finish(inv)
		}()
		return
	}
	// Resumed after I/O: unblock the function if it is waiting to be
	// rescheduled (it may also still be mid-IO if overload routed it).
	select {
	case inv.resume <- budget:
	case <-inv.finished:
	}
}

// finish completes the invocation and resolves its future.
func (s *Scheduler) finish(inv *invocation) {
	now := time.Now()
	inv.fut.res = Result{
		ID:         inv.id,
		Name:       inv.name,
		Submitted:  inv.submitted,
		Started:    inv.startedAt,
		Finished:   now,
		Mode:       Mode(inv.mode.Load()),
		QueueDelay: inv.startedAt.Sub(inv.submitted),
	}
	close(inv.finished)
	close(inv.fut.done)
}

// Ctx is passed to running functions for cooperative scheduling.
type Ctx struct {
	sched *Scheduler
	inv   *invocation
}

// Checkpoint must be called periodically from compute loops. In FILTER
// mode it is nearly free; in CFS mode it yields the processor whenever
// FILTER work is pending, approximating SCHED_FIFO > SCHED_NORMAL.
func (c *Ctx) Checkpoint() {
	c.sched.Stats.Checkpoints.Add(1)
	if Mode(c.inv.mode.Load()) == ModeCFS && c.sched.pending.Load() > 0 {
		c.sched.Stats.Yields.Add(1)
		runtime.Gosched()
	}
}

// IO performs a blocking operation. In FILTER mode the scheduler's
// worker is released for other requests and this invocation re-enters
// the global queue when f returns (§V-D); in CFS mode it simply blocks.
func (c *Ctx) IO(f func()) {
	inv := c.inv
	if Mode(inv.mode.Load()) == ModeCFS {
		f()
		return
	}
	// Report the unused slice to the worker and release it. The worker
	// may have demoted us concurrently (slice raced with the IO); if so
	// just block inline.
	inv.mu.Lock()
	unused := inv.sliceLeft
	inv.mu.Unlock()
	select {
	case inv.ioULeft <- unused:
	default:
		// Worker already left (timer fired first): CFS semantics.
		f()
		return
	}
	f()
	// Re-enqueue and wait to be rescheduled.
	now := time.Now()
	inv.enqueued.Store(now.UnixNano())
	c.sched.pending.Add(1)
	select {
	case c.sched.queue <- inv:
		<-inv.resume
	default:
		// Queue full: degrade to CFS mode rather than deadlock.
		c.sched.pending.Add(-1)
		c.sched.demote(inv)
	}
}

// Sleep is a convenience IO wrapper around time.Sleep.
func (c *Ctx) Sleep(d time.Duration) { c.IO(func() { time.Sleep(d) }) }

// Spin burns roughly d of CPU time, checkpointing as it goes. It is the
// live counterpart of FaaSBench's fib function body.
func (c *Ctx) Spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 2000; i++ {
			x = x*1.0000001 + 1e-9
		}
		c.Checkpoint()
	}
	sink.Store(uint64(x)) // defeats dead-code elimination of the work
}

var sink atomic.Uint64
