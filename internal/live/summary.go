package live

import (
	"fmt"
	"sort"
	"time"
)

// Summary aggregates finished invocation results into the paper's
// metrics, the live counterpart of internal/metrics for simulator runs.
type Summary struct {
	N              int
	FilterComplete int
	CFSComplete    int
	MeanTurnaround time.Duration
	P50, P90, P99  time.Duration
	MaxQueueDelay  time.Duration
}

// Summarize computes a Summary over results. Unfinished (zero-valued)
// results are skipped.
func Summarize(results []Result) Summary {
	var s Summary
	var tas []time.Duration
	var sum time.Duration
	for _, r := range results {
		if r.Finished.IsZero() {
			continue
		}
		s.N++
		if r.Mode == ModeFilter {
			s.FilterComplete++
		} else {
			s.CFSComplete++
		}
		ta := r.Turnaround()
		tas = append(tas, ta)
		sum += ta
		if r.QueueDelay > s.MaxQueueDelay {
			s.MaxQueueDelay = r.QueueDelay
		}
	}
	if s.N == 0 {
		return s
	}
	s.MeanTurnaround = sum / time.Duration(s.N)
	sort.Slice(tas, func(i, j int) bool { return tas[i] < tas[j] })
	pct := func(p float64) time.Duration {
		idx := int(p/100*float64(len(tas)-1) + 0.5)
		if idx >= len(tas) {
			idx = len(tas) - 1
		}
		return tas[idx]
	}
	s.P50, s.P90, s.P99 = pct(50), pct(90), pct(99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d filter=%d cfs=%d mean=%v p50=%v p90=%v p99=%v maxQ=%v",
		s.N, s.FilterComplete, s.CFSComplete,
		s.MeanTurnaround.Round(time.Microsecond),
		s.P50.Round(time.Microsecond), s.P90.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.MaxQueueDelay.Round(time.Microsecond))
}
