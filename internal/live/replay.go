package live

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Replay drives the live scheduler with an invocation stream from the
// trace pipeline: the same trace.Source that feeds the simulator can be
// executed on real goroutines, with each invocation submitted at its
// (time-compressed) arrival instant, spinning real CPU for its service
// time and sleeping through its I/O ops.
//
// This is how simulator scenarios are cross-checked against the live
// runtime: policy metrics come from the simulator, real scheduling
// overhead from here.

// ReplayConfig tunes a live replay.
type ReplayConfig struct {
	// Speedup divides all trace times: arrivals, service, and I/O run
	// Speedup× faster than recorded. Zero means the default of 1 (real
	// time); a negative or non-finite value is a configuration error.
	// A 10s trace replayed at Speedup 100 takes ~100ms of wall time.
	Speedup float64
	// MaxN caps the number of replayed invocations (0 = the whole
	// stream).
	MaxN int
	// MaxService clamps each invocation's compressed (wall-clock)
	// service time, so a heavy-tailed trace cannot pin a worker for
	// seconds of wall time (0 = no clamp; negative is a configuration
	// error). The clamp scales the invocation's CPU segments
	// proportionally, keeping every I/O op at its relative position;
	// I/O durations themselves are compressed but not clamped.
	MaxService time.Duration
}

// validate rejects nonsensical replay configurations instead of
// silently coercing them (a negative Speedup used to replay in real
// time, hiding the caller's bug).
func (cfg ReplayConfig) validate() error {
	if cfg.Speedup < 0 || math.IsInf(cfg.Speedup, 0) || math.IsNaN(cfg.Speedup) {
		return fmt.Errorf("live: replay speedup must be positive (got %v); leave it zero for real time", cfg.Speedup)
	}
	if cfg.MaxService < 0 {
		return fmt.Errorf("live: negative MaxService %v", cfg.MaxService)
	}
	if cfg.MaxN < 0 {
		return fmt.Errorf("live: negative MaxN %d", cfg.MaxN)
	}
	return nil
}

// ReplayReport summarizes a finished replay.
type ReplayReport struct {
	Results []Result
	Summary Summary
	// Wall is the elapsed wall-clock time of the replay.
	Wall time.Duration
	// Submitted counts invocations handed to the scheduler; Dropped
	// counts submissions rejected by a full global queue.
	Submitted int
	Dropped   int
}

// Replay pulls invocations from src and executes them on s, which must
// already be started. It blocks until every submitted invocation
// finishes.
func Replay(s *Scheduler, src trace.Source, cfg ReplayConfig) (ReplayReport, error) {
	if err := cfg.validate(); err != nil {
		return ReplayReport{}, err
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 1
	}
	compress := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / cfg.Speedup)
	}

	var report ReplayReport
	var futs []*Future
	start := time.Now()
	for {
		if cfg.MaxN > 0 && report.Submitted+report.Dropped >= cfg.MaxN {
			break
		}
		tk, ok := src.Next()
		if !ok {
			break
		}
		// Pace: wait until this invocation's compressed arrival instant.
		if wait := compress(time.Duration(tk.Arrival)) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		fut, err := s.Submit(tk.App, replayFunction(tk, cfg))
		if err != nil {
			if err == ErrStopped {
				return report, fmt.Errorf("live: replay submit: %w", err)
			}
			report.Dropped++ // queue full: count and keep pacing
			continue
		}
		report.Submitted++
		futs = append(futs, fut)
	}
	if err := trace.Err(src); err != nil {
		return report, err
	}
	for _, f := range futs {
		report.Results = append(report.Results, f.Wait())
	}
	report.Wall = time.Since(start)
	report.Summary = Summarize(report.Results)
	return report, nil
}

// replayStep is one CPU burst followed by one I/O sleep (the final step
// has no sleep), both in compressed wall-clock time.
type replayStep struct {
	spin  time.Duration
	sleep time.Duration
}

// replayPlan converts a trace invocation into its wall-clock execution
// plan, computed before the function runs so the plan is testable and
// the closure does no arithmetic. MaxService bounds the *compressed*
// service total: when it clamps, CPU segments are scaled through one
// cumulative trace-position → wall-position mapping, so the bursts
// telescope to exactly the clamped total and every I/O op keeps its
// proportional position in the stream. (The previous per-segment
// scaling clamped the un-compressed service — a different bound than
// documented — and truncated each burst independently, drifting the
// segment boundaries away from the op list.)
func replayPlan(tk *task.Task, cfg ReplayConfig) []replayStep {
	speedup := cfg.Speedup
	if speedup == 0 {
		speedup = 1
	}
	compress := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / speedup)
	}
	scale := 1.0
	if total := compress(tk.Service); cfg.MaxService > 0 && total > cfg.MaxService {
		scale = float64(cfg.MaxService) / float64(total)
	}
	cum := func(d time.Duration) time.Duration {
		return time.Duration(float64(compress(d)) * scale)
	}
	plan := make([]replayStep, 0, len(tk.IOOps)+1)
	var done time.Duration // trace-time CPU position
	for _, op := range tk.IOOps {
		at := op.At
		if at < done {
			at = done
		}
		plan = append(plan, replayStep{spin: cum(at) - cum(done), sleep: compress(op.Dur)})
		done = at
	}
	return append(plan, replayStep{spin: cum(tk.Service) - cum(done)})
}

// replayFunction converts a trace invocation into a live function: CPU
// segments spin, I/O ops sleep through Ctx.IO (releasing the worker in
// FILTER mode, §V-D), in the order the task definition interleaves them.
func replayFunction(tk *task.Task, cfg ReplayConfig) Function {
	plan := replayPlan(tk, cfg)
	return func(ctx *Ctx) {
		for _, st := range plan {
			if st.spin > 0 {
				ctx.Spin(st.spin)
			}
			if st.sleep > 0 {
				ctx.Sleep(st.sleep)
			}
		}
	}
}
