package live

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Replay drives the live scheduler with an invocation stream from the
// trace pipeline: the same trace.Source that feeds the simulator can be
// executed on real goroutines, with each invocation submitted at its
// (time-compressed) arrival instant, spinning real CPU for its service
// time and sleeping through its I/O ops.
//
// This is how simulator scenarios are cross-checked against the live
// runtime: policy metrics come from the simulator, real scheduling
// overhead from here.

// ReplayConfig tunes a live replay.
type ReplayConfig struct {
	// Speedup divides all trace times: arrivals, service, and I/O run
	// Speedup× faster than recorded (default 1, real time). A 10s trace
	// replayed at Speedup 100 takes ~100ms of wall time.
	Speedup float64
	// MaxN caps the number of replayed invocations (0 = the whole
	// stream).
	MaxN int
	// MaxService clamps each invocation's compressed service time, so a
	// heavy-tailed trace cannot pin a worker for seconds of wall time
	// (0 = no clamp).
	MaxService time.Duration
}

// ReplayReport summarizes a finished replay.
type ReplayReport struct {
	Results []Result
	Summary Summary
	// Wall is the elapsed wall-clock time of the replay.
	Wall time.Duration
	// Submitted counts invocations handed to the scheduler; Dropped
	// counts submissions rejected by a full global queue.
	Submitted int
	Dropped   int
}

// Replay pulls invocations from src and executes them on s, which must
// already be started. It blocks until every submitted invocation
// finishes.
func Replay(s *Scheduler, src trace.Source, cfg ReplayConfig) (ReplayReport, error) {
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}
	compress := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / cfg.Speedup)
	}

	var report ReplayReport
	var futs []*Future
	start := time.Now()
	for {
		if cfg.MaxN > 0 && report.Submitted+report.Dropped >= cfg.MaxN {
			break
		}
		tk, ok := src.Next()
		if !ok {
			break
		}
		// Pace: wait until this invocation's compressed arrival instant.
		if wait := compress(time.Duration(tk.Arrival)) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		fut, err := s.Submit(tk.App, replayFunction(tk, compress, cfg.MaxService))
		if err != nil {
			if err == ErrStopped {
				return report, fmt.Errorf("live: replay submit: %w", err)
			}
			report.Dropped++ // queue full: count and keep pacing
			continue
		}
		report.Submitted++
		futs = append(futs, fut)
	}
	if err := trace.Err(src); err != nil {
		return report, err
	}
	for _, f := range futs {
		report.Results = append(report.Results, f.Wait())
	}
	report.Wall = time.Since(start)
	report.Summary = Summarize(report.Results)
	return report, nil
}

// replayFunction converts a trace invocation into a live function: CPU
// segments spin, I/O ops sleep through Ctx.IO (releasing the worker in
// FILTER mode, §V-D), in the order the task definition interleaves them.
func replayFunction(tk *task.Task, compress func(time.Duration) time.Duration, maxService time.Duration) Function {
	// Copy what the closure needs; the scheduler owns the task afterwards.
	service := tk.Service
	if maxService > 0 && service > maxService {
		service = maxService
	}
	scale := 1.0
	if tk.Service > 0 {
		scale = float64(service) / float64(tk.Service)
	}
	ops := append([]task.IOOp(nil), tk.IOOps...)
	return func(ctx *Ctx) {
		var done time.Duration // CPU consumed so far (trace time, unclamped)
		for _, op := range ops {
			if burst := time.Duration(float64(op.At-done) * scale); burst > 0 {
				ctx.Spin(compress(burst))
			}
			if op.At > done {
				done = op.At
			}
			ctx.Sleep(compress(op.Dur))
		}
		if burst := time.Duration(float64(tk.Service-done) * scale); burst > 0 {
			ctx.Spin(compress(burst))
		}
	}
}
