package sched

import (
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// CoreGranular models the centralized core-granular scheduler the paper
// discusses in §XI (Kaffes et al., SoCC '19): a single central queue
// assigns each function a dedicated core and the function runs to
// completion there without preemption. Unlike SCHED_FIFO, the core is
// reserved even while the function blocks on I/O — which avoids
// interference at the cost of core under-utilization, one of the
// trade-offs SFS's work-conserving design targets.
type CoreGranular struct {
	api      cpusim.API
	q        fifoQueue
	reserved []*task.Task // per-core reservation (also covers blocked owners)
}

// NewCoreGranular returns a centralized core-granular scheduler.
func NewCoreGranular() *CoreGranular { return &CoreGranular{} }

// Name implements cpusim.Scheduler.
func (c *CoreGranular) Name() string { return "CoreGranular" }

// Bind implements cpusim.Scheduler.
func (c *CoreGranular) Bind(api cpusim.API) {
	c.api = api
	c.reserved = make([]*task.Task, api.NumCores())
}

// Enqueue implements cpusim.Scheduler.
func (c *CoreGranular) Enqueue(now simtime.Time, t *task.Task) {
	for core, owner := range c.reserved {
		if owner == t {
			// The task woke from I/O on its reserved core; have the
			// engine reconsider that core (it is idle by construction).
			c.api.Reschedule(core)
			return
		}
	}
	c.q.Push(t)
}

// PickNext implements cpusim.Scheduler: a core either resumes its
// reserved owner or claims the next queued function for exclusive use.
func (c *CoreGranular) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	if owner := c.reserved[core]; owner != nil {
		if owner.State == task.StateRunnable {
			return owner, 0
		}
		return nil, 0 // owner is blocked: the core stays reserved and idle
	}
	t := c.q.Pop()
	if t == nil {
		return nil, 0
	}
	c.reserved[core] = t
	return t, 0
}

// Descheduled implements cpusim.Scheduler.
func (c *CoreGranular) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	switch reason {
	case cpusim.ReasonFinished:
		c.reserved[core] = nil
	case cpusim.ReasonBlocked:
		// Core remains reserved for the sleeping owner.
	case cpusim.ReasonPreempted:
		// Core-granular functions are never preempted by policy; an
		// external preemption returns the task to the front of nothing —
		// keep the reservation so it resumes on its core.
	}
}

// WantsPreempt implements cpusim.Scheduler: never.
func (c *CoreGranular) WantsPreempt(simtime.Time, int) bool { return false }

// Reserved returns how many cores are currently reserved (for tests).
func (c *CoreGranular) Reserved() int {
	n := 0
	for _, t := range c.reserved {
		if t != nil {
			n++
		}
	}
	return n
}

// Lottery models classic lottery scheduling (Waldspurger & Weihl,
// OSDI '94), the proportional-share family the paper situates CFS in
// (§II-B): every quantum, a runnable task wins the core with
// probability proportional to its tickets (task weight).
type Lottery struct {
	api     cpusim.API
	r       *rng.RNG
	tasks   []*task.Task // runnable, unordered
	Quantum time.Duration
}

// NewLottery returns a lottery scheduler with the given quantum
// (10 ms if non-positive) and seed.
func NewLottery(quantum time.Duration, seed uint64) *Lottery {
	if quantum <= 0 {
		quantum = 10 * time.Millisecond
	}
	return &Lottery{Quantum: quantum, r: rng.New(seed)}
}

// Name implements cpusim.Scheduler.
func (l *Lottery) Name() string { return "Lottery" }

// Bind implements cpusim.Scheduler.
func (l *Lottery) Bind(api cpusim.API) { l.api = api }

// Enqueue implements cpusim.Scheduler.
func (l *Lottery) Enqueue(now simtime.Time, t *task.Task) { l.tasks = append(l.tasks, t) }

// PickNext implements cpusim.Scheduler: hold the lottery.
func (l *Lottery) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	if len(l.tasks) == 0 {
		return nil, 0
	}
	total := 0
	for _, t := range l.tasks {
		total += l.tickets(t)
	}
	draw := l.r.Intn(total)
	idx := 0
	for i, t := range l.tasks {
		draw -= l.tickets(t)
		if draw < 0 {
			idx = i
			break
		}
	}
	t := l.tasks[idx]
	l.tasks[idx] = l.tasks[len(l.tasks)-1]
	l.tasks = l.tasks[:len(l.tasks)-1]
	return t, l.Quantum
}

func (l *Lottery) tickets(t *task.Task) int {
	if t.Weight > 0 {
		return t.Weight
	}
	return task.DefaultWeight
}

// Descheduled implements cpusim.Scheduler.
func (l *Lottery) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	if reason == cpusim.ReasonPreempted {
		l.tasks = append(l.tasks, t)
	}
}

// WantsPreempt implements cpusim.Scheduler: lottery re-draws only at
// quantum boundaries.
func (l *Lottery) WantsPreempt(simtime.Time, int) bool { return false }
