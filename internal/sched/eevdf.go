package sched

import (
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/rbtree"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// EEVDFConfig tunes the EEVDF model.
type EEVDFConfig struct {
	// BaseSlice is the per-request virtual slice (sched_base_slice);
	// Linux defaults to 0.75 ms scaled by 1+log2(ncpus) — ~3 ms on the
	// machines modeled here.
	BaseSlice time.Duration
}

// DefaultEEVDFConfig returns Linux-like defaults.
func DefaultEEVDFConfig() EEVDFConfig {
	return EEVDFConfig{BaseSlice: 3 * time.Millisecond}
}

// eevdfEnt is a scheduling entity under EEVDF.
type eevdfEnt struct {
	t        *task.Task
	vr       time.Duration // virtual runtime
	deadline time.Duration // virtual deadline = vr + BaseSlice at (re)queue
	rq       int
	node     *rbtree.Node[*eevdfEnt]
	everRan  bool
}

// eevdfRQ is one core's runqueue: entities ordered by virtual deadline,
// with an aggregate vruntime sum for O(1) eligibility checks.
type eevdfRQ struct {
	tree  *rbtree.Tree[*eevdfEnt]
	vrSum time.Duration // sum of queued entities' vruntime
	min   time.Duration // monotonic floor, used to place newcomers
}

// EEVDF models Linux's Earliest Eligible Virtual Deadline First
// scheduler, which replaced CFS as SCHED_NORMAL in kernel 6.6. It is
// not part of the paper's evaluation (the paper predates it); the
// reproduction includes it as the natural "future work" substrate:
// SFS is OS-scheduler-agnostic, so its second level can be EEVDF (see
// the ablation experiments).
//
// Model summary: each entity accrues vruntime while running; at
// (re)queue time it receives a virtual deadline vr + BaseSlice. A
// queued entity is eligible when its vruntime is at or below the
// queue's average; the scheduler runs the eligible entity with the
// earliest virtual deadline.
type EEVDF struct {
	cfg  EEVDFConfig
	api  cpusim.API
	rqs  []eevdfRQ
	cur  []*eevdfEnt
	ents map[*task.Task]*eevdfEnt

	// Steals counts idle-balance migrations.
	Steals int64
}

// NewEEVDF returns an EEVDF model; zero config fields are defaulted.
func NewEEVDF(cfg EEVDFConfig) *EEVDF {
	if cfg.BaseSlice <= 0 {
		cfg.BaseSlice = DefaultEEVDFConfig().BaseSlice
	}
	return &EEVDF{cfg: cfg, ents: make(map[*task.Task]*eevdfEnt)}
}

// Name implements cpusim.Scheduler.
func (e *EEVDF) Name() string { return "EEVDF" }

// Bind implements cpusim.Scheduler.
func (e *EEVDF) Bind(api cpusim.API) {
	e.api = api
	n := api.NumCores()
	e.rqs = make([]eevdfRQ, n)
	e.cur = make([]*eevdfEnt, n)
	for i := range e.rqs {
		e.rqs[i].tree = rbtree.New(func(a, b *eevdfEnt) bool {
			if a.deadline != b.deadline {
				return a.deadline < b.deadline
			}
			return a.t.ID < b.t.ID
		})
	}
}

func (e *EEVDF) nrRunning(i int) int {
	n := e.rqs[i].tree.Len()
	if e.cur[i] != nil {
		n++
	}
	return n
}

func (e *EEVDF) leastLoaded() int {
	best, bestN := 0, int(^uint(0)>>1)
	for i := range e.rqs {
		if n := e.nrRunning(i); n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// avgVruntime returns the runqueue's average vruntime over queued plus
// running entities (the zero-lag point against which eligibility is
// judged).
func (e *EEVDF) avgVruntime(i int) time.Duration {
	rq := &e.rqs[i]
	sum := rq.vrSum
	n := rq.tree.Len()
	if cur := e.cur[i]; cur != nil {
		sum += cur.vr + e.api.RanFor(i)
		n++
	}
	if n == 0 {
		return rq.min
	}
	return sum / time.Duration(n)
}

// insert adds ent to runqueue i, refreshing its deadline.
func (e *EEVDF) insert(i int, ent *eevdfEnt) {
	ent.rq = i
	ent.deadline = ent.vr + e.cfg.BaseSlice
	ent.node = e.rqs[i].tree.Insert(ent)
	e.rqs[i].vrSum += ent.vr
}

// removeNode detaches ent from its runqueue.
func (e *EEVDF) removeNode(ent *eevdfEnt) {
	e.rqs[ent.rq].tree.Delete(ent.node)
	ent.node = nil
	e.rqs[ent.rq].vrSum -= ent.vr
}

// Enqueue implements cpusim.Scheduler.
func (e *EEVDF) Enqueue(now simtime.Time, t *task.Task) {
	ent := e.ents[t]
	if ent == nil {
		ent = &eevdfEnt{t: t}
		e.ents[t] = ent
	}
	rq := e.leastLoaded()
	avg := e.avgVruntime(rq)
	if !ent.everRan {
		// Newcomers join at the zero-lag point: immediately eligible,
		// deadline one slice out.
		ent.vr = avg
	} else if ent.vr < avg-e.cfg.BaseSlice {
		// Returning sleepers keep their lag, bounded to one slice so a
		// long sleep cannot bank unbounded credit (lag clamping).
		ent.vr = avg - e.cfg.BaseSlice
	}
	e.insert(rq, ent)
}

// pickEligible returns the eligible entity with the earliest virtual
// deadline on runqueue i, or nil. Entities are scanned in deadline
// order; the first with vruntime <= the queue average wins. The scan is
// bounded but in adversarial shapes can visit many nodes; typical
// queues find an eligible entity within the first few.
func (e *EEVDF) pickEligible(i int) *eevdfEnt {
	avg := e.avgVruntime(i)
	var fallback *eevdfEnt
	found := (*eevdfEnt)(nil)
	e.rqs[i].tree.Ascend(func(ent *eevdfEnt) bool {
		if fallback == nil {
			fallback = ent
		}
		if ent.vr <= avg {
			found = ent
			return false
		}
		return true
	})
	if found != nil {
		return found
	}
	// Everything is ineligible (can happen transiently from rounding):
	// run the earliest deadline anyway rather than idling.
	return fallback
}

// PickNext implements cpusim.Scheduler.
func (e *EEVDF) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	rq := &e.rqs[core]
	if rq.tree.Len() == 0 && !e.steal(core) {
		e.cur[core] = nil
		return nil, 0
	}
	ent := e.pickEligible(core)
	if ent == nil {
		e.cur[core] = nil
		return nil, 0
	}
	e.removeNode(ent)
	e.cur[core] = ent
	return ent.t, e.cfg.BaseSlice
}

// steal pulls the earliest-deadline entity from the busiest other queue.
func (e *EEVDF) steal(core int) bool {
	busiest, busiestLen := -1, 0
	for i := range e.rqs {
		if i == core {
			continue
		}
		if l := e.rqs[i].tree.Len(); l > busiestLen {
			busiest, busiestLen = i, l
		}
	}
	if busiest < 0 {
		return false
	}
	ent := e.rqs[busiest].tree.Min().Value
	e.removeNode(ent)
	// Renormalize the vruntime into the destination queue's frame.
	ent.vr = ent.vr - e.rqs[busiest].min + e.rqs[core].min
	e.insert(core, ent)
	e.Steals++
	return true
}

// Descheduled implements cpusim.Scheduler.
func (e *EEVDF) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	ent := e.ents[t]
	if ent == nil {
		panic("sched: EEVDF descheduled unknown task")
	}
	ent.vr += weighted(ran, t.Weight)
	ent.everRan = true
	e.cur[core] = nil
	rq := &e.rqs[core]
	if ent.vr > rq.min {
		rq.min = ent.vr
	}
	switch reason {
	case cpusim.ReasonPreempted:
		e.insert(core, ent)
	case cpusim.ReasonBlocked:
		// Lag is retained for the wake-time clamp.
	case cpusim.ReasonFinished:
		delete(e.ents, t)
	}
}

// WantsPreempt implements cpusim.Scheduler: a queued eligible entity
// with an earlier virtual deadline than the running one preempts it.
func (e *EEVDF) WantsPreempt(now simtime.Time, core int) bool {
	cur := e.cur[core]
	if cur == nil {
		return false
	}
	rq := &e.rqs[core]
	if rq.tree.Len() == 0 {
		return false
	}
	best := e.pickEligible(core)
	if best == nil {
		return false
	}
	liveVR := cur.vr + weighted(e.api.RanFor(core), cur.t.Weight)
	return best.deadline < liveVR+e.cfg.BaseSlice && best.vr <= e.avgVruntime(core)
}
