package sched_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/predict"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

// app constructs a named-app task.
func app(id int, name string, arrival, service time.Duration) *task.Task {
	tk := task.New(id, arrival, service)
	tk.App = name
	return tk
}

// TestPSRTFLearnsAppOrdering: before any completions PSRTF is
// estimation-blind (both apps sit at the prior, so arrival order
// rules); after one completion of each app it has learned which app is
// short and reverses the order.
func TestPSRTFLearnsAppOrdering(t *testing.T) {
	long0 := app(0, "long", 0, ms(100))
	short0 := app(1, "short", 0, ms(1))
	// Second wave arrives after the first is fully retired: the long
	// task first (lower ID, same instant), the short one after it.
	long1 := app(2, "long", ms(200), ms(100))
	short1 := app(3, "short", ms(200), ms(1))
	run(t, sched.NewPSRTF(nil), 1, long0, short0, long1, short1)

	// Cold wave: equal predictions (the prior) mean no preemption, so
	// the first arrival runs to completion and the short task eats the
	// full long delay — the no-knowledge cost.
	if !(long0.Finish < short0.Finish) {
		t.Fatalf("cold wave: long %v should finish before short %v (arrival order)", long0.Finish, short0.Finish)
	}
	// Learned wave: the short app's 1ms estimate preempts the long
	// task almost immediately.
	if !(short1.Finish < long1.Finish) {
		t.Fatalf("learned wave: short %v should finish before long %v", short1.Finish, long1.Finish)
	}
	if short1.Finish >= ms(210) {
		t.Fatalf("learned short finished at %v, want within a few ms of its 200ms arrival", short1.Finish)
	}
}

// TestPSRTFAdversarialColdPrior: a tiny prior with a high observation
// threshold makes every cold app look free — the adversarial regime —
// so a cold elephant jumps ahead of a well-known mouse.
func TestPSRTFAdversarialColdPrior(t *testing.T) {
	est := predict.New(predict.Config{Prior: time.Microsecond, MinObs: 8})
	for i := 0; i < 8; i++ {
		est.Observe("mouse", ms(1))
	}
	elephant := app(0, "cold-elephant", 0, ms(100))
	mouse := app(1, "mouse", 0, ms(1))
	run(t, sched.NewPSRTF(est), 1, elephant, mouse)
	// The elephant's 1µs cold estimate beats the mouse's learned 1ms,
	// so the mouse waits out the full 100ms mistake.
	if !(elephant.Finish < mouse.Finish) {
		t.Fatalf("adversarial prior: elephant %v should finish before mouse %v", elephant.Finish, mouse.Finish)
	}
}

// TestPSRTFApproachesSRTFWithPerfectPerAppPredictions: when app
// identity fully determines service time and the estimator has
// observed each app, PSRTF reproduces SRTF's schedule.
func TestPSRTFApproachesSRTFWithPerfectPerAppPredictions(t *testing.T) {
	est := predict.New(predict.Config{})
	durs := map[string]time.Duration{"a": ms(8), "b": ms(4), "c": ms(9), "d": ms(5)}
	for name, d := range durs {
		est.Observe(name, d)
	}
	mk := func() []*task.Task {
		return []*task.Task{
			app(0, "a", 0, ms(8)),
			app(1, "b", ms(1), ms(4)),
			app(2, "c", ms(2), ms(9)),
			app(3, "d", ms(3), ms(5)),
		}
	}
	ps := mk()
	run(t, sched.NewPSRTF(est), 1, ps...)
	sr := mk()
	run(t, sched.NewSRTF(), 1, sr...)
	for i := range ps {
		if ps[i].Finish != sr[i].Finish {
			t.Fatalf("task %d: PSRTF finish %v != SRTF finish %v", i, ps[i].Finish, sr[i].Finish)
		}
	}
}

// TestPSRTFDeterministicReplay: identical inputs yield identical
// schedules, including the estimator's learning trajectory.
func TestPSRTFDeterministicReplay(t *testing.T) {
	replay := func() string {
		apps := []string{"u", "v", "w"}
		var tasks []*task.Task
		for i := 0; i < 60; i++ {
			tasks = append(tasks, app(i, apps[i%3], time.Duration(i)*ms(2), time.Duration(1+(i*7)%13)*ms(1)))
		}
		run(t, sched.NewPSRTF(nil), 2, tasks...)
		out := ""
		for _, tk := range tasks {
			out += fmt.Sprintf("%d:%v;", tk.ID, tk.Finish)
		}
		return out
	}
	first := replay()
	if second := replay(); second != first {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", second, first)
	}
}
