package sched

import (
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/rbtree"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// SRTF is the offline oracle scheduler: Shortest Remaining Time First.
// It assumes a priori knowledge of every task's remaining CPU demand and
// always runs the c globally shortest-remaining tasks, preempting on
// arrival when a shorter task appears. The paper uses it as the
// achievable lower bound on turnaround time (§IV-B).
type SRTF struct {
	api cpusim.API
	q   *rbtree.Tree[*task.Task]
}

// NewSRTF returns the SRTF oracle.
func NewSRTF() *SRTF {
	return &SRTF{}
}

// Name implements cpusim.Scheduler.
func (s *SRTF) Name() string { return "SRTF" }

// Bind implements cpusim.Scheduler.
func (s *SRTF) Bind(api cpusim.API) {
	s.api = api
	s.q = rbtree.New(func(a, b *task.Task) bool {
		if a.Remaining() != b.Remaining() {
			return a.Remaining() < b.Remaining()
		}
		return a.ID < b.ID
	})
}

// Enqueue implements cpusim.Scheduler.
//
// Note: the ordering key (Remaining) is stable while a task is queued,
// because only running tasks consume CPU; the tree is therefore never
// invalidated by key mutation.
func (s *SRTF) Enqueue(now simtime.Time, t *task.Task) { s.q.Insert(t) }

// PickNext implements cpusim.Scheduler: globally shortest remaining,
// unbounded slice (it runs until completion, block, or a shorter
// arrival).
func (s *SRTF) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	t, ok := s.q.PopMin()
	if !ok {
		return nil, 0
	}
	return t, 0
}

// Descheduled implements cpusim.Scheduler.
func (s *SRTF) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	if reason == cpusim.ReasonPreempted {
		s.q.Insert(t)
	}
}

// WantsPreempt implements cpusim.Scheduler: preempt only the core whose
// current task has the largest live remaining time, and only if the
// shortest queued task beats it. Restricting to the argmax core makes
// the preemption SRTF-optimal when the engine scans cores in order.
func (s *SRTF) WantsPreempt(now simtime.Time, core int) bool {
	min := s.q.Min()
	if min == nil {
		return false
	}
	cur := s.api.Running(core)
	if cur == nil {
		return false
	}
	live := cur.Remaining() - s.api.RanFor(core)
	if min.Value.Remaining() >= live {
		return false
	}
	// Only yield on the worst (largest live remaining) busy core.
	for other := 0; other < s.api.NumCores(); other++ {
		if other == core {
			continue
		}
		o := s.api.Running(other)
		if o == nil {
			continue
		}
		oLive := o.Remaining() - s.api.RanFor(other)
		if oLive > live || (oLive == live && other < core) {
			return false
		}
	}
	return true
}

// Queued returns the number of waiting tasks; exposed for tests.
func (s *SRTF) Queued() int { return s.q.Len() }
