// Package sched implements models of the Linux schedulers the paper
// evaluates — CFS (SCHED_NORMAL), FIFO (SCHED_FIFO), RR (SCHED_RR) — plus
// the SRTF offline oracle and the IDEAL zero-contention baseline.
//
// The models capture the policy-level behaviour that determines the
// paper's metrics (waiting time, preemption counts, turnaround): per-core
// vruntime-ordered red-black runqueues with latency-target slice sizing
// for CFS, run-to-block semantics for FIFO, fixed round-robin quanta for
// RR. They deliberately omit features no experiment touches (cgroups,
// NUMA domains, nice levels other than 0, RT throttling).
package sched

import (
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/rbtree"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// CFSConfig holds the tunables of the CFS model. The defaults mirror
// Linux on a ~16-core machine, where the kernel scales the base values
// (6 ms / 0.75 ms / 1 ms) by 1+log2(ncpus) capped at 4x... in practice
// sched_latency 24 ms, min granularity 3 ms, wakeup granularity 4 ms.
type CFSConfig struct {
	// TargetLatency is the scheduling period within which every runnable
	// task on a runqueue should run once (sched_latency_ns).
	TargetLatency time.Duration
	// MinGranularity is the floor on a task's slice
	// (sched_min_granularity_ns).
	MinGranularity time.Duration
	// WakeupGranularity limits wakeup preemption: a waking task preempts
	// only if the current task's vruntime exceeds the waking task's by
	// more than this (sched_wakeup_granularity_ns).
	WakeupGranularity time.Duration
	// SleeperCredit is the maximum vruntime credit granted to a waking
	// sleeper (half the target latency in Linux's place_entity).
	SleeperCredit time.Duration
}

// DefaultCFSConfig returns the Linux-like defaults described above.
func DefaultCFSConfig() CFSConfig {
	return CFSConfig{
		TargetLatency:     24 * time.Millisecond,
		MinGranularity:    3 * time.Millisecond,
		WakeupGranularity: 4 * time.Millisecond,
		SleeperCredit:     12 * time.Millisecond,
	}
}

// cfsEnt is the per-task scheduling entity (struct sched_entity).
type cfsEnt struct {
	t       *task.Task
	vr      time.Duration // vruntime
	rq      int           // runqueue (core) index this entity belongs to
	node    *rbtree.Node[*cfsEnt]
	everRan bool
}

// runqueue models one core's cfs_rq.
type runqueue struct {
	tree *rbtree.Tree[*cfsEnt]
	min  time.Duration // min_vruntime, monotonically non-decreasing
}

// CFS is the Completely Fair Scheduler model. It satisfies
// cpusim.Scheduler and is also embedded by the SFS scheduler as its
// lower-priority second level.
type CFS struct {
	cfg  CFSConfig
	api  cpusim.API
	rqs  []runqueue
	cur  []*cfsEnt // per-core currently running entity (nil if none)
	ents map[*task.Task]*cfsEnt

	// Stats.
	Steals int64 // idle-balance migrations between runqueues
}

// NewCFS returns a CFS model with the given config; zero fields are
// filled from DefaultCFSConfig.
func NewCFS(cfg CFSConfig) *CFS {
	def := DefaultCFSConfig()
	if cfg.TargetLatency <= 0 {
		cfg.TargetLatency = def.TargetLatency
	}
	if cfg.MinGranularity <= 0 {
		cfg.MinGranularity = def.MinGranularity
	}
	if cfg.WakeupGranularity <= 0 {
		cfg.WakeupGranularity = def.WakeupGranularity
	}
	if cfg.SleeperCredit <= 0 {
		cfg.SleeperCredit = def.SleeperCredit
	}
	return &CFS{cfg: cfg, ents: make(map[*task.Task]*cfsEnt)}
}

// Name implements cpusim.Scheduler.
func (c *CFS) Name() string { return "CFS" }

// Bind implements cpusim.Scheduler.
func (c *CFS) Bind(api cpusim.API) {
	c.api = api
	n := api.NumCores()
	c.rqs = make([]runqueue, n)
	c.cur = make([]*cfsEnt, n)
	for i := range c.rqs {
		c.rqs[i].tree = rbtree.New(entLess)
	}
}

func entLess(a, b *cfsEnt) bool {
	if a.vr != b.vr {
		return a.vr < b.vr
	}
	return a.t.ID < b.t.ID
}

// nrRunning returns the number of tasks on runqueue i including the one
// currently on its core.
func (c *CFS) nrRunning(i int) int {
	n := c.rqs[i].tree.Len()
	if c.cur[i] != nil {
		n++
	}
	return n
}

// TotalRunnable returns the number of runnable (queued or running) tasks
// across all runqueues.
func (c *CFS) TotalRunnable() int {
	n := 0
	for i := range c.rqs {
		n += c.nrRunning(i)
	}
	return n
}

// leastLoaded picks the runqueue with the fewest runnable tasks
// (select_task_rq's slow path, simplified).
func (c *CFS) leastLoaded() int {
	best, bestN := 0, int(^uint(0)>>1)
	for i := range c.rqs {
		if n := c.nrRunning(i); n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// Enqueue implements cpusim.Scheduler: place an arriving or waking task
// on the least-loaded runqueue with a placed vruntime.
func (c *CFS) Enqueue(now simtime.Time, t *task.Task) {
	ent := c.ents[t]
	if ent == nil {
		ent = &cfsEnt{t: t}
		c.ents[t] = ent
	}
	rq := c.leastLoaded()
	ent.rq = rq
	min := c.rqs[rq].min
	if !ent.everRan {
		// New task: START_DEBIT placement — one vslice behind
		// min_vruntime, so newcomers wait roughly one scheduling round
		// on a busy queue (Linux place_entity with initial=1).
		nr := c.nrRunning(rq) + 1
		vslice := c.cfg.TargetLatency / time.Duration(nr)
		if vslice < c.cfg.MinGranularity {
			vslice = c.cfg.MinGranularity
		}
		ent.vr = min + vslice
	} else {
		// Waking sleeper: grant bounded credit (place_entity), but never
		// let vruntime move backwards relative to its own history.
		placed := min - c.cfg.SleeperCredit
		if ent.vr < placed {
			ent.vr = placed
		}
	}
	ent.node = c.rqs[rq].tree.Insert(ent)
}

// PickNext implements cpusim.Scheduler: run the leftmost entity of the
// core's runqueue, stealing from the busiest queue when local is empty
// (idle balance).
func (c *CFS) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	rq := &c.rqs[core]
	if rq.tree.Len() == 0 {
		if !c.steal(core) {
			c.cur[core] = nil
			return nil, 0
		}
	}
	ent, _ := rq.tree.PopMin()
	ent.node = nil
	c.cur[core] = ent
	c.updateMin(core)
	return ent.t, c.sliceFor(core)
}

// sliceFor computes the slice for the task about to run on core:
// sched_latency divided among the runqueue's tasks, floored at the
// minimum granularity.
func (c *CFS) sliceFor(core int) time.Duration {
	nr := c.nrRunning(core)
	if nr <= 0 {
		nr = 1
	}
	slice := c.cfg.TargetLatency / time.Duration(nr)
	if slice < c.cfg.MinGranularity {
		slice = c.cfg.MinGranularity
	}
	return slice
}

// steal pulls the leftmost entity from the busiest other runqueue onto
// core's queue, normalizing vruntime across queues. Returns false if no
// queue has waiting tasks.
func (c *CFS) steal(core int) bool {
	busiest, busiestLen := -1, 0
	for i := range c.rqs {
		if i == core {
			continue
		}
		if l := c.rqs[i].tree.Len(); l > busiestLen {
			busiest, busiestLen = i, l
		}
	}
	if busiest < 0 {
		return false
	}
	ent, _ := c.rqs[busiest].tree.PopMin()
	ent.node = nil
	// Re-normalize vruntime to the destination queue's frame of
	// reference so the stolen task is neither starved nor dominant.
	ent.vr = ent.vr - c.rqs[busiest].min + c.rqs[core].min
	ent.rq = core
	ent.node = c.rqs[core].tree.Insert(ent)
	c.Steals++
	return true
}

// Descheduled implements cpusim.Scheduler: account vruntime and either
// requeue (preemption) or drop (block/finish) the entity.
func (c *CFS) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	ent := c.ents[t]
	if ent == nil {
		panic("sched: CFS descheduled unknown task")
	}
	ent.vr += weighted(ran, t.Weight)
	ent.everRan = true
	c.cur[core] = nil
	switch reason {
	case cpusim.ReasonPreempted:
		ent.rq = core
		ent.node = c.rqs[core].tree.Insert(ent)
	case cpusim.ReasonBlocked:
		// Entity leaves the queue; vruntime is retained for wake placement.
	case cpusim.ReasonFinished:
		delete(c.ents, t)
	}
	c.updateMin(core)
}

// weighted scales run time by the nice-0 weight ratio. All tasks in the
// reproduction run at nice 0, so this is usually identity.
func weighted(d time.Duration, weight int) time.Duration {
	if weight <= 0 || weight == task.DefaultWeight {
		return d
	}
	return time.Duration(int64(d) * int64(task.DefaultWeight) / int64(weight))
}

// updateMin advances the runqueue's monotonic min_vruntime.
func (c *CFS) updateMin(core int) {
	rq := &c.rqs[core]
	min := time.Duration(1<<63 - 1)
	if cur := c.cur[core]; cur != nil {
		min = cur.vr
	}
	if l := rq.tree.Min(); l != nil && l.Value.vr < min {
		min = l.Value.vr
	}
	if min != time.Duration(1<<63-1) && min > rq.min {
		rq.min = min
	}
}

// WantsPreempt implements cpusim.Scheduler: wakeup preemption — the
// leftmost queued entity preempts the current one if its vruntime lag
// exceeds the wakeup granularity.
func (c *CFS) WantsPreempt(now simtime.Time, core int) bool {
	cur := c.cur[core]
	if cur == nil {
		return false
	}
	leftmost := c.rqs[core].tree.Min()
	if leftmost == nil {
		return false
	}
	liveVR := cur.vr + weighted(c.api.RanFor(core), cur.t.Weight)
	return liveVR-leftmost.Value.vr > c.cfg.WakeupGranularity
}

// Runnable returns the queued entity count on core's runqueue (excluding
// the running task); exposed for SFS and tests.
func (c *CFS) Runnable(core int) int { return c.rqs[core].tree.Len() }
