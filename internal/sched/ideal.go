package sched

import (
	"github.com/serverless-sched/sfs/internal/task"
)

// RunIdeal computes each task's outcome in the paper's IDEAL scenario:
// infinite resources with zero contention, so every task starts the
// instant it arrives and its turnaround equals CPU demand plus I/O time.
// It fills in the same accounting fields the simulator would, so metric
// extraction works uniformly.
func RunIdeal(tasks []*task.Task) {
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			panic(err)
		}
		t.MarkReady(t.Arrival)
		t.MarkRunning(t.Arrival, 0)
		t.CPUUsed = t.Service
		t.IOTime = t.TotalIO()
		t.MarkFinished(t.Arrival + t.IdealDuration())
	}
}
