package sched_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

func TestEEVDFFairSharing(t *testing.T) {
	a := task.New(0, 0, ms(300))
	b := task.New(1, 0, ms(300))
	run(t, sched.NewEEVDF(sched.EEVDFConfig{}), 1, a, b)
	diff := a.Finish - b.Finish
	if diff < 0 {
		diff = -diff
	}
	if diff > ms(10) {
		t.Fatalf("finish gap %v too large for fair sharing", diff)
	}
	if a.Finish < ms(580) {
		t.Fatalf("a finished at %v; both should end near 600ms", a.Finish)
	}
}

func TestEEVDFLatencyForNewcomer(t *testing.T) {
	// A short task arriving into a queue of hogs becomes eligible
	// immediately (zero-lag placement) and finishes quickly.
	var hogs []*task.Task
	for i := 0; i < 6; i++ {
		hogs = append(hogs, task.New(i, 0, ms(400)))
	}
	late := task.New(99, ms(500), ms(6))
	run(t, sched.NewEEVDF(sched.EEVDFConfig{}), 1, append(hogs, late)...)
	if latency := late.Turnaround(); latency > ms(60) {
		t.Fatalf("newcomer turnaround %v; EEVDF should schedule it within a few slices", latency)
	}
}

func TestEEVDFCompletesWithIO(t *testing.T) {
	a := task.New(0, 0, ms(40)).WithIO(ms(10), ms(30))
	b := task.New(1, 0, ms(50))
	eng := run(t, sched.NewEEVDF(sched.EEVDFConfig{}), 1, a, b)
	if a.CPUUsed != a.Service || b.CPUUsed != b.Service {
		t.Fatal("CPU conservation violated")
	}
	if eng.Pending() != 0 {
		t.Fatal("tasks unfinished")
	}
}

func TestEEVDFMultiCoreBalance(t *testing.T) {
	var tasks []*task.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, task.New(i, 0, ms(100)))
	}
	run(t, sched.NewEEVDF(sched.EEVDFConfig{}), 4, tasks...)
	// 8 equal tasks on 4 cores: pairs share, so everything ends ~200ms.
	for _, tk := range tasks {
		if tk.Finish > ms(215) {
			t.Fatalf("task %d finished at %v; load balancing broken", tk.ID, tk.Finish)
		}
	}
}

func TestCoreGranularRunToCompletion(t *testing.T) {
	long := task.New(0, 0, ms(500))
	short := task.New(1, ms(1), ms(10))
	run(t, sched.NewCoreGranular(), 2, long, short)
	if long.CtxSwitches != 0 || short.CtxSwitches != 0 {
		t.Fatal("core-granular must never preempt")
	}
	// Two cores: each task gets its own core immediately.
	if short.Finish != ms(11) {
		t.Fatalf("short finish %v, want 11ms", short.Finish)
	}
}

func TestCoreGranularReservesCoreDuringIO(t *testing.T) {
	// One core: the I/O task reserves it; the second task must wait for
	// full completion even while the first sleeps (non-work-conserving,
	// unlike SFS).
	io := task.New(0, 0, ms(20)).WithIO(ms(10), ms(100))
	waiter := task.New(1, ms(1), ms(5))
	run(t, sched.NewCoreGranular(), 1, io, waiter)
	if io.Finish != ms(120) {
		t.Fatalf("io task finish %v, want 120ms", io.Finish)
	}
	if waiter.Start < ms(120) {
		t.Fatalf("waiter started at %v during the owner's reservation", waiter.Start)
	}
}

func TestCoreGranularConvoy(t *testing.T) {
	// With one core and a long head-of-line task, the convoy effect is
	// as severe as FIFO.
	long := task.New(0, 0, ms(800))
	short := task.New(1, ms(1), ms(2))
	run(t, sched.NewCoreGranular(), 1, long, short)
	if short.Start < ms(800) {
		t.Fatalf("short started at %v; expected convoy behind the long task", short.Start)
	}
}

func TestLotteryCompletesAndShares(t *testing.T) {
	a := task.New(0, 0, ms(300))
	b := task.New(1, 0, ms(300))
	eng := run(t, sched.NewLottery(ms(10), 7), 1, a, b)
	if eng.Pending() != 0 {
		t.Fatal("unfinished tasks")
	}
	// Probabilistic interleaving: both finish in the second half of the
	// 600ms schedule.
	if a.Finish < ms(400) || b.Finish < ms(400) {
		t.Fatalf("finishes %v/%v suggest no sharing", a.Finish, b.Finish)
	}
}

func TestLotteryWeightBias(t *testing.T) {
	// A task with 4x tickets should finish (statistically) first.
	heavy := task.New(0, 0, ms(200))
	heavy.Weight = 4 * task.DefaultWeight
	light := task.New(1, 0, ms(200))
	run(t, sched.NewLottery(ms(5), 11), 1, heavy, light)
	if heavy.Finish >= light.Finish {
		t.Fatalf("heavy (4x tickets) finished at %v, after light at %v", heavy.Finish, light.Finish)
	}
}

func TestLotteryDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) (time.Duration, time.Duration) {
		a := task.New(0, 0, ms(100))
		b := task.New(1, 0, ms(100))
		eng := cpusim.NewEngine(cpusim.Config{Cores: 1, Deadline: time.Hour}, sched.NewLottery(ms(5), seed))
		eng.Submit(a, b)
		eng.Run()
		return a.Finish, b.Finish
	}
	a1, b1 := mk(3)
	a2, b2 := mk(3)
	if a1 != a2 || b1 != b2 {
		t.Fatal("same-seed lottery runs diverged")
	}
}
