package sched_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func run(t *testing.T, s cpusim.Scheduler, cores int, tasks ...*task.Task) *cpusim.Engine {
	t.Helper()
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	if eng.Aborted() {
		t.Fatal("simulation aborted")
	}
	return eng
}

func TestCFSFairSharing(t *testing.T) {
	// Two equal CPU-bound tasks on one core finish at nearly the same
	// time under CFS (fair sharing), unlike FIFO.
	a := task.New(0, 0, ms(300))
	b := task.New(1, 0, ms(300))
	run(t, sched.NewCFS(sched.CFSConfig{}), 1, a, b)
	diff := a.Finish - b.Finish
	if diff < 0 {
		diff = -diff
	}
	// They alternate slices; finish gap is at most ~one slice.
	if diff > ms(25) {
		t.Fatalf("finish gap %v too large for fair sharing", diff)
	}
	if a.Finish < ms(575) || b.Finish < ms(575) {
		t.Fatalf("both should finish near 600ms: %v %v", a.Finish, b.Finish)
	}
}

func TestCFSSliceShrinksWithLoad(t *testing.T) {
	// With many runnable tasks, per-task slices shrink to the minimum
	// granularity, increasing context switches.
	var tasks []*task.Task
	for i := 0; i < 16; i++ {
		tasks = append(tasks, task.New(i, 0, ms(30)))
	}
	eng := run(t, sched.NewCFS(sched.CFSConfig{}), 1, tasks...)
	// 16 tasks x 30ms = 480ms of work in ~3ms slices: roughly 160
	// slices, most of which are real switches.
	if eng.TotalCtxSwitches < 100 {
		t.Fatalf("expected heavy context switching, got %d", eng.TotalCtxSwitches)
	}
}

func TestCFSNewTaskNotStarved(t *testing.T) {
	// A task arriving into a busy queue gets min_vruntime placement and
	// must run within roughly one scheduling period, not after the
	// backlog drains.
	var tasks []*task.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, task.New(i, 0, ms(500)))
	}
	late := task.New(99, ms(1000), ms(3))
	tasks = append(tasks, late)
	run(t, sched.NewCFS(sched.CFSConfig{}), 1, tasks...)
	if late.Start-late.Arrival > ms(100) {
		t.Fatalf("new task waited %v before first run", late.Start-late.Arrival)
	}
}

func TestCFSMultiQueueBalance(t *testing.T) {
	// Tasks arriving together spread across cores (least-loaded
	// placement) instead of piling on one runqueue.
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, task.New(i, 0, ms(100)))
	}
	run(t, sched.NewCFS(sched.CFSConfig{}), 4, tasks...)
	for _, tk := range tasks {
		if tk.Finish != ms(100) {
			t.Fatalf("task %d finish %v, want 100ms on its own core", tk.ID, tk.Finish)
		}
		if tk.CtxSwitches != 0 {
			t.Fatalf("task %d switched %d times", tk.ID, tk.CtxSwitches)
		}
	}
}

func TestCFSIdleBalanceSteals(t *testing.T) {
	// One long task occupies core 0's queue along with a waiting task;
	// when core 1 goes idle it should steal the waiting task.
	long1 := task.New(0, 0, ms(500))
	long2 := task.New(1, 0, ms(500))
	short1 := task.New(2, ms(1), ms(50))
	short2 := task.New(3, ms(1), ms(50))
	cfs := sched.NewCFS(sched.CFSConfig{})
	run(t, cfs, 2, long1, long2, short1, short2)
	// All four tasks over two cores: total work 1100ms, makespan should
	// be near 550 with stealing rather than 600+ with one idle core.
	if short1.Finish > ms(300) && short2.Finish > ms(300) {
		t.Fatalf("shorts finished late (%v, %v); stealing broken?", short1.Finish, short2.Finish)
	}
}

func TestCFSWakeupPreemption(t *testing.T) {
	// A task that slept long accrues vruntime credit and preempts the
	// hog when it wakes.
	hog := task.New(0, 0, ms(1000))
	sleeper := task.New(1, 0, ms(20)).WithIO(ms(5), ms(200))
	run(t, sched.NewCFS(sched.CFSConfig{}), 1, hog, sleeper)
	// Sleeper: runs early (5ms CPU), sleeps 200ms, wakes ~205-230ms, and
	// should preempt the hog quickly rather than waiting for it to end.
	if sleeper.Finish > ms(400) {
		t.Fatalf("woken sleeper finished at %v; wakeup preemption broken", sleeper.Finish)
	}
	if hog.CtxSwitches == 0 {
		t.Fatal("hog was never preempted")
	}
}

func TestCFSConfigDefaults(t *testing.T) {
	cfg := sched.DefaultCFSConfig()
	if cfg.TargetLatency != 24*time.Millisecond || cfg.MinGranularity != 3*time.Millisecond {
		t.Fatalf("unexpected defaults %+v", cfg)
	}
	// Zero-value config must be filled in.
	c := sched.NewCFS(sched.CFSConfig{})
	if c.Name() != "CFS" {
		t.Fatal("name")
	}
}

func TestCFSWeightedFairness(t *testing.T) {
	// A task with 3x the weight accrues vruntime at 1/3 the rate and so
	// receives ~3x the CPU share: with equal demands it finishes well
	// before the nice-0 task.
	heavy := task.New(0, 0, ms(300))
	heavy.Weight = 3 * task.DefaultWeight
	light := task.New(1, 0, ms(300))
	run(t, sched.NewCFS(sched.CFSConfig{}), 1, heavy, light)
	if heavy.Finish >= light.Finish {
		t.Fatalf("heavy finish %v should precede light %v", heavy.Finish, light.Finish)
	}
	// Heavy gets ~3/4 of the CPU until it finishes: expected finish
	// around 300/(3/4) = 400ms.
	if heavy.Finish < ms(360) || heavy.Finish > ms(460) {
		t.Fatalf("heavy finish %v, want ~400ms for a 3:1 share", heavy.Finish)
	}
	if light.Finish < ms(590) {
		t.Fatalf("light finish %v, want ~600ms", light.Finish)
	}
}

func TestFIFORunToCompletion(t *testing.T) {
	a := task.New(0, 0, ms(500))
	b := task.New(1, ms(1), ms(5))
	c := task.New(2, ms(2), ms(5))
	run(t, sched.NewFIFO(), 1, a, b, c)
	if a.CtxSwitches != 0 || b.CtxSwitches != 0 || c.CtxSwitches != 0 {
		t.Fatal("FIFO tasks must not be preempted")
	}
	if !(a.Finish < b.Finish && b.Finish < c.Finish) {
		t.Fatalf("FIFO order violated: %v %v %v", a.Finish, b.Finish, c.Finish)
	}
}

func TestFIFOBlockedTaskLosesPosition(t *testing.T) {
	// a blocks; b and c run; a resumes after waking at the queue tail.
	a := task.New(0, 0, ms(20)).WithIO(ms(10), ms(5))
	b := task.New(1, ms(1), ms(100))
	c := task.New(2, ms(2), ms(100))
	run(t, sched.NewFIFO(), 1, a, b, c)
	// a wakes at 15ms, goes to tail behind b and c.
	if a.Finish < c.Finish {
		t.Fatalf("woken FIFO task should requeue at tail: a=%v c=%v", a.Finish, c.Finish)
	}
}

func TestRRDefaultSlice(t *testing.T) {
	rr := sched.NewRR(0)
	if rr.Slice != sched.DefaultRRSlice {
		t.Fatalf("default RR slice %v", rr.Slice)
	}
}

func TestSRTFOptimalMeanTurnaround(t *testing.T) {
	// Classic example: SRTF minimizes mean turnaround on one core.
	mk := func() []*task.Task {
		return []*task.Task{
			task.New(0, 0, ms(8)),
			task.New(1, ms(1), ms(4)),
			task.New(2, ms(2), ms(9)),
			task.New(3, ms(3), ms(5)),
		}
	}
	mean := func(tasks []*task.Task) time.Duration {
		var sum time.Duration
		for _, tk := range tasks {
			sum += tk.Turnaround()
		}
		return sum / time.Duration(len(tasks))
	}
	srtfTasks := mk()
	run(t, sched.NewSRTF(), 1, srtfTasks...)
	fifoTasks := mk()
	run(t, sched.NewFIFO(), 1, fifoTasks...)
	rrTasks := mk()
	run(t, sched.NewRR(ms(2)), 1, rrTasks...)
	if mean(srtfTasks) > mean(fifoTasks) || mean(srtfTasks) > mean(rrTasks) {
		t.Fatalf("SRTF mean %v not optimal (FIFO %v, RR %v)",
			mean(srtfTasks), mean(fifoTasks), mean(rrTasks))
	}
	// Known schedule: t1 finishes at 5, t3 at 10, t0 at 17, t2 at 26.
	if srtfTasks[1].Finish != ms(5) || srtfTasks[3].Finish != ms(10) ||
		srtfTasks[0].Finish != ms(17) || srtfTasks[2].Finish != ms(26) {
		t.Fatalf("SRTF schedule wrong: %v %v %v %v",
			srtfTasks[0].Finish, srtfTasks[1].Finish, srtfTasks[2].Finish, srtfTasks[3].Finish)
	}
}

func TestRunIdeal(t *testing.T) {
	a := task.New(0, ms(10), ms(50)).WithIO(ms(25), ms(30))
	b := task.New(1, ms(10), ms(50))
	sched.RunIdeal([]*task.Task{a, b})
	if a.Finish != ms(90) { // 10 + 50 + 30
		t.Fatalf("a finish %v", a.Finish)
	}
	if b.Finish != ms(60) {
		t.Fatalf("b finish %v", b.Finish)
	}
	if b.RTE() != 1.0 {
		t.Fatalf("ideal pure-CPU RTE %v", b.RTE())
	}
	// With IO, ideal RTE = service/(service+io) < 1, as the paper notes.
	if got := a.RTE(); got < 0.62 || got > 0.63 {
		t.Fatalf("ideal IO RTE %v, want 50/80", got)
	}
}
