package sched

import (
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// fifoQueue is a simple FIFO of tasks with O(1) amortized operations.
type fifoQueue struct {
	items []*task.Task
	head  int
}

func (q *fifoQueue) Len() int { return len(q.items) - q.head }

func (q *fifoQueue) Push(t *task.Task) { q.items = append(q.items, t) }

// PushFront re-inserts a task at the head (used for preempted RT tasks,
// which keep their position per POSIX).
func (q *fifoQueue) PushFront(t *task.Task) {
	if q.head > 0 {
		q.head--
		q.items[q.head] = t
		return
	}
	q.items = append([]*task.Task{t}, q.items...)
}

func (q *fifoQueue) Pop() *task.Task {
	if q.Len() == 0 {
		return nil
	}
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append([]*task.Task(nil), q.items[q.head:]...)
		q.head = 0
	}
	return t
}

func (q *fifoQueue) Peek() *task.Task {
	if q.Len() == 0 {
		return nil
	}
	return q.items[q.head]
}

// FIFO models SCHED_FIFO with a single priority level: tasks run in
// arrival order until they finish or block; there is no time slicing.
// This exhibits the paper's "convoy effect" (§IV-B): short functions are
// stuck behind long ones.
type FIFO struct {
	api cpusim.API
	q   fifoQueue
}

// NewFIFO returns a SCHED_FIFO model.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements cpusim.Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// Bind implements cpusim.Scheduler.
func (f *FIFO) Bind(api cpusim.API) { f.api = api }

// Enqueue implements cpusim.Scheduler. Per POSIX, a task that blocks
// loses its queue position and is appended at the tail when it wakes;
// new arrivals also join the tail.
func (f *FIFO) Enqueue(now simtime.Time, t *task.Task) { f.q.Push(t) }

// PickNext implements cpusim.Scheduler: head of queue, unbounded slice.
func (f *FIFO) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	return f.q.Pop(), 0
}

// Descheduled implements cpusim.Scheduler.
func (f *FIFO) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	if reason == cpusim.ReasonPreempted {
		// Equal-priority FIFO tasks are never sliced; a preemption can
		// only come from an external actor, in which case the task keeps
		// its head-of-line position.
		f.q.PushFront(t)
	}
}

// WantsPreempt implements cpusim.Scheduler: equal-priority FIFO tasks
// never preempt each other.
func (f *FIFO) WantsPreempt(now simtime.Time, core int) bool { return false }

// DefaultRRSlice is Linux's default SCHED_RR quantum
// (/proc/sys/kernel/sched_rr_timeslice_ms = 100).
const DefaultRRSlice = 100 * time.Millisecond

// RR models SCHED_RR with a single priority level: FIFO order, but each
// task runs at most one quantum before rotating to the tail.
type RR struct {
	api   cpusim.API
	q     fifoQueue
	Slice time.Duration
}

// NewRR returns a SCHED_RR model with the given quantum (DefaultRRSlice
// if non-positive).
func NewRR(slice time.Duration) *RR {
	if slice <= 0 {
		slice = DefaultRRSlice
	}
	return &RR{Slice: slice}
}

// Name implements cpusim.Scheduler.
func (r *RR) Name() string { return "RR" }

// Bind implements cpusim.Scheduler.
func (r *RR) Bind(api cpusim.API) { r.api = api }

// Enqueue implements cpusim.Scheduler.
func (r *RR) Enqueue(now simtime.Time, t *task.Task) { r.q.Push(t) }

// PickNext implements cpusim.Scheduler.
func (r *RR) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	return r.q.Pop(), r.Slice
}

// Descheduled implements cpusim.Scheduler: a task whose quantum expired
// rotates to the tail.
func (r *RR) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	if reason == cpusim.ReasonPreempted {
		r.q.Push(t)
	}
}

// WantsPreempt implements cpusim.Scheduler.
func (r *RR) WantsPreempt(now simtime.Time, core int) bool { return false }
