package sched

import (
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/predict"
	"github.com/serverless-sched/sfs/internal/rbtree"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// PSRTF is predicted shortest-remaining-time-first: the data-driven
// counterpart of SRTF. Where SRTF reads each task's true remaining CPU
// demand (clairvoyant, the paper's lower bound), PSRTF substitutes an
// online per-application estimate (internal/predict) learned from the
// completions this host has observed — the policy a real platform
// could actually run, per Przybylski et al.'s data-driven scheduling.
// Its gap to SRTF is pure prediction error; its gap to SFS is the
// value (or cost) of acting on estimates, which the predicted-dispatch
// experiment sweeps across error regimes.
//
// Ordering keys are snapshotted at enqueue time: the red-black tree
// must never have a node's key change underneath it, and the estimator
// learns continuously, so each queued task carries the prediction that
// was current when it entered the queue (re-snapshotted on preemption
// re-entry). Completions feed the estimator with the task's true
// demand — the moment a real platform logs the invocation's CPU time.
type PSRTF struct {
	api cpusim.API
	est *predict.Estimator
	q   *rbtree.Tree[*task.Task]
	key map[*task.Task]time.Duration // snapshotted predicted remaining, valid while queued
}

// NewPSRTF returns a predicted-SRTF scheduler learning into est; a nil
// est gets a fresh default estimator (each host learns locally).
func NewPSRTF(est *predict.Estimator) *PSRTF {
	if est == nil {
		est = predict.New(predict.Config{})
	}
	return &PSRTF{est: est, key: map[*task.Task]time.Duration{}}
}

// Name implements cpusim.Scheduler.
func (s *PSRTF) Name() string { return "PSRTF" }

// Estimator exposes the learning state for tests and harnesses.
func (s *PSRTF) Estimator() *predict.Estimator { return s.est }

// Bind implements cpusim.Scheduler.
func (s *PSRTF) Bind(api cpusim.API) {
	s.api = api
	s.q = rbtree.New(func(a, b *task.Task) bool {
		ka, kb := s.key[a], s.key[b]
		if ka != kb {
			return ka < kb
		}
		return a.ID < b.ID
	})
}

// predictedRemaining estimates how much CPU demand t has left: the
// app's predicted total minus the demand already retired, floored at
// 1ns — a task that has outrun its prediction is "about to finish",
// the natural reading, rather than negative.
func (s *PSRTF) predictedRemaining(t *task.Task) time.Duration {
	rem := s.est.Predict(t.App) - t.CPUUsed
	if rem < 1 {
		rem = 1
	}
	return rem
}

// Enqueue implements cpusim.Scheduler: snapshot the prediction and
// insert. The snapshot (not the live estimate) is the tree key, so
// later learning never corrupts the tree's invariants.
func (s *PSRTF) Enqueue(now simtime.Time, t *task.Task) {
	s.key[t] = s.predictedRemaining(t)
	s.q.Insert(t)
}

// PickNext implements cpusim.Scheduler: shortest predicted remaining,
// unbounded slice (like SRTF it runs until completion, block, or a
// shorter prediction arrives).
func (s *PSRTF) PickNext(now simtime.Time, core int) (*task.Task, time.Duration) {
	t, ok := s.q.PopMin()
	if !ok {
		return nil, 0
	}
	delete(s.key, t)
	return t, 0
}

// Descheduled implements cpusim.Scheduler. A completion is the
// learning signal: the platform now knows the invocation's true CPU
// demand and feeds it to the estimator.
func (s *PSRTF) Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason cpusim.DescheduleReason) {
	switch reason {
	case cpusim.ReasonPreempted:
		s.key[t] = s.predictedRemaining(t)
		s.q.Insert(t)
	case cpusim.ReasonFinished:
		s.est.Observe(t.App, t.Service)
	}
}

// WantsPreempt implements cpusim.Scheduler, mirroring SRTF's argmax
// rule under predicted quantities: preempt only the busy core whose
// task has the largest predicted remaining, and only if the shortest
// queued prediction beats it. Running tasks are compared by their live
// estimate (prediction minus retired demand) — deterministic, since
// both inputs are engine state.
func (s *PSRTF) WantsPreempt(now simtime.Time, core int) bool {
	min := s.q.Min()
	if min == nil {
		return false
	}
	cur := s.api.Running(core)
	if cur == nil {
		return false
	}
	live := s.predictedRemaining(cur)
	if s.key[min.Value] >= live {
		return false
	}
	for other := 0; other < s.api.NumCores(); other++ {
		if other == core {
			continue
		}
		o := s.api.Running(other)
		if o == nil {
			continue
		}
		oLive := s.predictedRemaining(o)
		if oLive > live || (oLive == live && other < core) {
			return false
		}
	}
	return true
}

// Queued returns the number of waiting tasks; exposed for tests.
func (s *PSRTF) Queued() int { return s.q.Len() }
