// Package cpusim is a deterministic discrete-event simulator of a
// multicore machine running an OS task scheduler.
//
// The engine owns virtual time, the cores, and all task lifecycle
// accounting; a pluggable Scheduler (internal/sched, internal/core)
// decides which task runs where and for how long. The engine model is
// event-level rather than tick-level: when a task is dispatched the engine
// computes the next interesting instant (completion, I/O block, or slice
// expiry) and schedules a single event for it, which keeps multi-hour
// workloads with hundreds of thousands of slices cheap to simulate.
package cpusim

import (
	"fmt"
	"math"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// DescheduleReason explains why a task left a core.
type DescheduleReason int

// Deschedule reasons.
const (
	ReasonPreempted DescheduleReason = iota // slice expired or higher-priority task took the core
	ReasonBlocked                           // task started a blocking I/O op
	ReasonFinished                          // task completed
)

// String implements fmt.Stringer.
func (r DescheduleReason) String() string {
	switch r {
	case ReasonPreempted:
		return "preempted"
	case ReasonBlocked:
		return "blocked"
	case ReasonFinished:
		return "finished"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// API is the engine surface exposed to schedulers. Schedulers use it to
// read core state, schedule their own timer events (e.g. the SFS monitor
// and pollers), and request re-scheduling of a core.
type API interface {
	// Now returns the current virtual time.
	Now() simtime.Time
	// NumCores returns the number of simulated cores.
	NumCores() int
	// Running returns the task currently on core, or nil if idle.
	Running(core int) *task.Task
	// RanFor returns how long the current task on core has been running
	// in its current stint (0 if the core is idle).
	RanFor(core int) time.Duration
	// After schedules fn at now+d; the returned ref may be cancelled.
	After(d time.Duration, fn func(now simtime.Time)) simtime.EventRef
	// Cancel cancels a pending event scheduled via After. Cancelling a
	// zero or stale ref is a safe no-op.
	Cancel(ev simtime.EventRef)
	// Reschedule asks the engine to reconsider core: if idle, PickNext is
	// invoked; if busy and the scheduler's WantsPreempt(core) returns
	// true, the current task is preempted first.
	Reschedule(core int)
}

// Scheduler is the policy plugged into the engine. Implementations own
// the runnable set; the engine owns running tasks and all accounting.
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Bind hands the scheduler its engine API before the run starts.
	Bind(api API)
	// Enqueue delivers a task that just became runnable (arrival or I/O
	// wake). The engine has already marked it runnable.
	Enqueue(now simtime.Time, t *task.Task)
	// PickNext selects the task to run on core and the slice budget it
	// may use (0 means run until completion or block). Returning nil
	// leaves the core idle until the next Enqueue or Reschedule.
	PickNext(now simtime.Time, core int) (*task.Task, time.Duration)
	// Descheduled notifies the scheduler that t left core after running
	// for ran. On ReasonPreempted the task is runnable again and the
	// scheduler must retain it for a future PickNext. On ReasonBlocked
	// the task will be re-delivered via Enqueue when it wakes. On
	// ReasonFinished the task is gone.
	Descheduled(now simtime.Time, core int, t *task.Task, ran time.Duration, reason DescheduleReason)
	// WantsPreempt reports whether the scheduler would rather run a
	// different runnable task on core right now. The engine calls it
	// after enqueues and reschedules; returning true triggers a
	// preemption followed by PickNext.
	WantsPreempt(now simtime.Time, core int) bool
}

// coreState tracks what a simulated core is doing.
type coreState struct {
	cur      *task.Task
	runStart simtime.Time
	budget   time.Duration // slice given at dispatch (0 = unbounded)
	penalty  time.Duration // context-switch cost folded into this stint
	event    simtime.EventRef
	lastTask *task.Task    // previous occupant, for switch-cost accounting
	busyTime time.Duration // total core time consumed (incl. switch cost)
	// cpuBudget is the CPU progress the pending stint will charge when
	// its event fires. On a unit-speed host it equals the stint's wall
	// length minus the switch penalty; on speed-scaled hosts the two
	// differ (see Config.Speed), and charging the precomputed budget —
	// rather than re-deriving CPU from wall time — keeps completions
	// landing exactly on Service with no floating-point drift.
	cpuBudget time.Duration

	// fire is the core's stint-end callback, built once at engine
	// construction so the hot path schedules events without allocating
	// a closure per stint. fireReason is the pending stint's end reason;
	// only one stint event is ever outstanding per core, so a single
	// slot suffices.
	fire       func(now simtime.Time)
	fireReason DescheduleReason
}

// Config parameterizes an engine run.
type Config struct {
	Cores int
	// CtxSwitchCost models the direct cost of switching a core to a
	// different task: each such stint is lengthened by this amount
	// before the task makes CPU progress. Zero disables it.
	CtxSwitchCost time.Duration
	// Deadline aborts the simulation at this virtual time if tasks are
	// still unfinished (0 = no deadline). Used by tests to bound runs.
	Deadline simtime.Time
	// Speed is the host's relative CPU speed: a task's CPU demand is
	// consumed at Speed nanoseconds of progress per wall nanosecond, so
	// a 2.0 host finishes pure-CPU work in half the wall time and a 0.5
	// host in double. Task Service/CPUUsed stay in demand (unit-speed)
	// terms; only wall durations scale. Zero means 1.0 (every existing
	// caller is byte-unchanged); negative panics in NewEngine.
	// Heterogeneous-fleet simulations (internal/cluster Config.Speeds)
	// are the consumer.
	Speed float64
}

// Engine simulates a multicore machine under one scheduler.
type Engine struct {
	cfg     Config
	q       *simtime.Queue
	sched   Scheduler
	cores   []coreState
	pending int // tasks not yet finished
	tasks   []*task.Task

	// TotalCtxSwitches counts involuntary preemptions across all tasks.
	TotalCtxSwitches int64
	// TotalDispatches counts task placements on cores.
	TotalDispatches int64
	// SwitchOverhead accumulates core time lost to CtxSwitchCost.
	SwitchOverhead time.Duration
	aborted        bool
	tracer         func(TraceEvent)
	speed          float64 // normalized Config.Speed (never 0)
}

// NewEngine constructs an engine for the given scheduler. It panics on a
// non-positive core count.
func NewEngine(cfg Config, s Scheduler) *Engine {
	if cfg.Cores <= 0 {
		panic("cpusim: need at least one core")
	}
	if cfg.Speed < 0 || math.IsNaN(cfg.Speed) {
		panic("cpusim: negative speed factor")
	}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	e := &Engine{
		cfg:   cfg,
		q:     &simtime.Queue{},
		sched: s,
		cores: make([]coreState, cfg.Cores),
		speed: cfg.Speed,
	}
	for i := range e.cores {
		i := i
		e.cores[i].fire = func(now simtime.Time) {
			e.coreEvent(now, i, e.cores[i].fireReason)
		}
	}
	s.Bind(e)
	return e
}

// Now implements API.
func (e *Engine) Now() simtime.Time { return e.q.Now() }

// NumCores implements API.
func (e *Engine) NumCores() int { return len(e.cores) }

// Running implements API.
func (e *Engine) Running(core int) *task.Task { return e.cores[core].cur }

// RanFor implements API.
func (e *Engine) RanFor(core int) time.Duration {
	c := &e.cores[core]
	if c.cur == nil {
		return 0
	}
	return e.q.Now() - c.runStart
}

// After implements API.
func (e *Engine) After(d time.Duration, fn func(now simtime.Time)) simtime.EventRef {
	return e.q.After(d, fn)
}

// Cancel implements API.
func (e *Engine) Cancel(ev simtime.EventRef) { e.q.Cancel(ev) }

// Reschedule implements API.
func (e *Engine) Reschedule(core int) {
	now := e.q.Now()
	c := &e.cores[core]
	if c.cur == nil {
		e.dispatch(now, core)
		return
	}
	if e.sched.WantsPreempt(now, core) {
		e.preempt(now, core)
		e.dispatch(now, core)
	}
}

// Submit registers tasks; their arrival events are scheduled at their
// Arrival times. Must be called before Run.
func (e *Engine) Submit(tasks ...*task.Task) {
	for _, t := range tasks {
		t := t
		if err := t.Validate(); err != nil {
			panic(err)
		}
		e.tasks = append(e.tasks, t)
		e.pending++
		e.q.At(t.Arrival, func(now simtime.Time) { e.arrive(now, t) })
	}
}

// Run drives the simulation until every submitted task finishes (or the
// configured deadline passes) and returns the makespan.
func (e *Engine) Run() simtime.Time {
	deadline := e.cfg.Deadline
	if deadline == 0 {
		deadline = simtime.Infinity
	}
	for e.pending > 0 && e.q.Len() > 0 && e.q.PeekTime() <= deadline {
		e.q.Step()
	}
	if e.pending > 0 {
		e.aborted = true
	}
	return e.q.Now()
}

// NextPendingEventTime returns the virtual time of the engine's
// earliest pending event, gated on unfinished work: it returns
// simtime.Infinity once every submitted task has completed, even if
// the event queue still holds re-arming timer events (the SFS
// monitor) that would otherwise spin an external driver forever. This
// is the key every drive loop (internal/host) orders hosts by.
func (e *Engine) NextPendingEventTime() simtime.Time {
	if e.pending == 0 {
		return simtime.Infinity
	}
	return e.q.PeekTime()
}

// StepEvent fires the engine's earliest pending event, advancing the
// engine's local clock to its time. It returns false when no events
// remain. Together with NextPendingEventTime and incremental Submit it lets a
// multi-host driver step many engines in lockstep: always step the
// engine whose next event is globally earliest, and submit tasks with
// arrivals at or after the global clock.
func (e *Engine) StepEvent() bool { return e.q.Step() }

// BusyCores returns the number of cores currently running a task.
func (e *Engine) BusyCores() int {
	n := 0
	for i := range e.cores {
		if e.cores[i].cur != nil {
			n++
		}
	}
	return n
}

// Aborted reports whether Run stopped at the deadline with unfinished
// tasks.
func (e *Engine) Aborted() bool { return e.aborted }

// Pending returns the number of unfinished tasks.
func (e *Engine) Pending() int { return e.pending }

// Tasks returns all submitted tasks (for metric extraction).
func (e *Engine) Tasks() []*task.Task { return e.tasks }

// Utilization returns the fraction of core-time spent running tasks over
// the interval [0, makespan].
func (e *Engine) Utilization() float64 {
	if e.q.Now() == 0 {
		return 0
	}
	return float64(e.BusyTime()) / (float64(e.q.Now()) * float64(len(e.cores)))
}

// BusyTime returns the total core time consumed across all cores
// (including context-switch cost). Multi-host drivers use it to compute
// utilization over a shared horizon instead of each engine's local
// clock.
func (e *Engine) BusyTime() time.Duration {
	var busy time.Duration
	for i := range e.cores {
		busy += e.cores[i].busyTime
	}
	return busy
}

// arrive handles a task arrival event.
func (e *Engine) arrive(now simtime.Time, t *task.Task) {
	t.MarkReady(now)
	e.sched.Enqueue(now, t)
	e.afterEnqueue(now, t)
}

// afterEnqueue gives the scheduler a chance to place the new/woken task:
// first by filling idle cores, then via a single preemption if the
// scheduler asks for one.
func (e *Engine) afterEnqueue(now simtime.Time, t *task.Task) {
	for core := range e.cores {
		if e.cores[core].cur == nil {
			e.dispatch(now, core)
		}
	}
	// Cascade preemptions until the wakeup settles: a single enqueue can
	// displace a lower-priority task whose replacement again changes what
	// the scheduler wants elsewhere (e.g. an SFS FILTER wakeup bumping a
	// CFS task). Bounded by the core count per round.
	for round := 0; round <= len(e.cores) && t.State == task.StateRunnable; round++ {
		preempted := false
		for core := range e.cores {
			if e.cores[core].cur == nil {
				continue
			}
			if e.sched.WantsPreempt(now, core) {
				e.preempt(now, core)
				e.dispatch(now, core)
				preempted = true
				break
			}
		}
		if !preempted {
			break
		}
	}
}

// dispatch asks the scheduler for work on an idle core and starts it.
func (e *Engine) dispatch(now simtime.Time, core int) {
	if e.cores[core].cur != nil {
		panic("cpusim: dispatch on busy core")
	}
	t, slice := e.sched.PickNext(now, core)
	if t == nil {
		return
	}
	e.place(now, core, t, slice, true)
}

// place installs t on an idle core with the given slice budget and
// schedules the stint's end event. countDispatch is false when renewing a
// slice for the task that was already on the core.
func (e *Engine) place(now simtime.Time, core int, t *task.Task, slice time.Duration, countDispatch bool) {
	c := &e.cores[core]
	if c.cur != nil {
		panic("cpusim: place on busy core")
	}
	if t.State != task.StateRunnable {
		panic(fmt.Sprintf("cpusim: scheduler picked non-runnable %v in state %v", t, t.State))
	}
	t.MarkRunning(now, core)
	if countDispatch {
		e.TotalDispatches++
		e.trace(TraceDispatch, core, t)
	} else {
		// MarkRunning bumped Dispatches for what is really the same
		// stint; undo to keep dispatch counts meaningful.
		t.Dispatches--
	}
	c.cur = t
	c.runStart = now
	c.budget = slice
	c.penalty = 0
	if e.cfg.CtxSwitchCost > 0 && c.lastTask != t {
		c.penalty = e.cfg.CtxSwitchCost
		e.SwitchOverhead += c.penalty
	}
	c.lastTask = t

	// The stint ends at the earliest of completion, next I/O op, or
	// slice expiry — all offset by the switch penalty, during which the
	// task makes no CPU progress. Completion and I/O instants live in
	// CPU-demand terms; the slice budget is wall time, so the two are
	// compared after converting demand to wall via the host speed (an
	// identity on unit-speed hosts).
	cpuFor := t.Remaining()
	reason := ReasonFinished
	if io := t.NextIO(); io != nil {
		// <= so that an I/O op scheduled exactly at the end of the CPU
		// demand still blocks before the task is declared finished.
		if untilIO := io.At - t.CPUUsed; untilIO <= cpuFor {
			cpuFor = untilIO
			reason = ReasonBlocked
		}
	}
	wallFor := e.wallOf(cpuFor)
	if slice > 0 && slice < wallFor {
		// The floor of a sub-stint slice can reach zero CPU on very slow
		// hosts; clamp to 1ns so every slice makes progress and slice
		// renewal cannot spin at one instant.
		cpuSlice := e.cpuOf(slice)
		if cpuSlice < 1 {
			cpuSlice = 1
		}
		if cpuSlice < cpuFor {
			cpuFor = cpuSlice
			wallFor = slice
			reason = ReasonPreempted
		}
	}
	if cpuFor < 0 {
		panic("cpusim: negative run segment")
	}
	c.cpuBudget = cpuFor
	c.fireReason = reason
	c.event = e.q.After(wallFor+c.penalty, c.fire)
}

// wallOf converts a CPU-demand duration to the wall time this host
// needs to execute it (identity at unit speed; ceiling division keeps
// wall events on whole nanoseconds without undershooting demand).
func (e *Engine) wallOf(cpu time.Duration) time.Duration {
	if e.speed == 1 || cpu <= 0 {
		return cpu
	}
	w := time.Duration(math.Ceil(float64(cpu) / e.speed))
	if w < 1 {
		w = 1
	}
	return w
}

// cpuOf converts a wall duration to the CPU demand this host retires
// in it (identity at unit speed; the float truncation never exceeds
// the exact product, so derived budgets stay conservative).
func (e *Engine) cpuOf(wall time.Duration) time.Duration {
	if e.speed == 1 || wall <= 0 {
		return wall
	}
	return time.Duration(float64(wall) * e.speed)
}

// chargeRun updates accounting for a stint of wall length ran on core
// c that retired `useful` CPU demand. The switch penalty portion
// consumes core time but no task CPU progress.
func (e *Engine) chargeRun(c *coreState, t *task.Task, ran, useful time.Duration) {
	if useful < 0 {
		useful = 0
	}
	t.CPUUsed += useful
	c.busyTime += ran
	if t.CPUUsed > t.Service {
		panic("cpusim: task overran its service demand")
	}
}

// preempt forcibly removes the current task from core, returning it to
// the scheduler as runnable.
func (e *Engine) preempt(now simtime.Time, core int) {
	c := &e.cores[core]
	t := c.cur
	if t == nil {
		return
	}
	e.q.Cancel(c.event)
	ran := now - c.runStart
	// A mid-stint preemption retires the wall progress made so far,
	// converted to CPU demand; the conversion truncates, so clamp to
	// the stint's budget (which the cancelled event would have charged).
	useful := e.cpuOf(ran - c.penalty)
	if useful > c.cpuBudget {
		useful = c.cpuBudget
	}
	e.chargeRun(c, t, ran, useful)
	t.CtxSwitches++
	e.TotalCtxSwitches++
	e.trace(TracePreempt, core, t)
	t.MarkReady(now)
	c.cur = nil
	c.event = simtime.EventRef{}
	e.sched.Descheduled(now, core, t, ran, ReasonPreempted)
}

// coreEvent fires when the running task on core reaches the end of its
// current stint for the given reason.
func (e *Engine) coreEvent(now simtime.Time, core int, reason DescheduleReason) {
	c := &e.cores[core]
	t := c.cur
	if t == nil {
		panic("cpusim: core event on idle core")
	}
	ran := now - c.runStart
	// The stint event fired exactly when scheduled, so it retires
	// exactly the CPU budget place() computed — on speed-scaled hosts
	// this is what lands completions precisely on Service.
	e.chargeRun(c, t, ran, c.cpuBudget)
	c.cur = nil
	c.event = simtime.EventRef{}

	switch reason {
	case ReasonFinished:
		if t.Remaining() != 0 {
			panic("cpusim: finish event with CPU remaining")
		}
		t.MarkFinished(now)
		e.pending--
		e.trace(TraceFinish, core, t)
		e.sched.Descheduled(now, core, t, ran, ReasonFinished)
	case ReasonBlocked:
		io := t.NextIO()
		if io == nil {
			panic("cpusim: block event without pending IO")
		}
		t.PopIO()
		t.MarkSleeping(now)
		dur := io.Dur
		e.trace(TraceBlock, core, t)
		e.sched.Descheduled(now, core, t, ran, ReasonBlocked)
		e.q.After(dur, func(wake simtime.Time) {
			t.MarkWoken(wake, dur)
			e.trace(TraceWake, -1, t)
			e.sched.Enqueue(wake, t)
			e.afterEnqueue(wake, t)
		})
	case ReasonPreempted:
		// Slice expiry. The scheduler accounts the stint and picks the
		// successor; if it re-picks the same task this is a slice
		// renewal, not a context switch.
		t.MarkReady(now)
		e.sched.Descheduled(now, core, t, ran, ReasonPreempted)
		next, slice := e.sched.PickNext(now, core)
		if next == t {
			e.place(now, core, t, slice, false)
			return
		}
		t.CtxSwitches++
		e.TotalCtxSwitches++
		e.trace(TracePreempt, core, t)
		if next != nil {
			e.place(now, core, next, slice, true)
		}
		return
	}
	e.dispatch(now, core)
}
