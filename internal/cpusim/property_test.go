package cpusim_test

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

// randomWorkload builds a small random workload from quick-check bytes.
func randomWorkload(seed uint64, nRaw uint8) []*task.Task {
	r := rng.New(seed)
	n := int(nRaw%60) + 5
	var tasks []*task.Task
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		svc := time.Duration(1+r.Intn(200)) * time.Millisecond
		tk := task.New(i, at, svc)
		// Random I/O ops at random offsets.
		nio := r.Intn(3)
		prev := time.Duration(0)
		for j := 0; j < nio; j++ {
			span := svc - prev
			if span <= 0 {
				break
			}
			off := prev + time.Duration(r.Int63n(int64(span)+1))
			tk.WithIO(off, time.Duration(r.Intn(50))*time.Millisecond)
			prev = off
		}
		tasks = append(tasks, tk)
		at += time.Duration(r.Intn(40)) * time.Millisecond
	}
	return tasks
}

// checkRun runs tasks under s and verifies the engine's global
// invariants hold: every task completes exactly its demand, turnaround
// decomposes into service + I/O + wait, and nothing beats the ideal.
func checkRun(s cpusim.Scheduler, cores int, tasks []*task.Task) bool {
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 24 * time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	if eng.Aborted() {
		return false
	}
	for _, tk := range tasks {
		if tk.State != task.StateFinished {
			return false
		}
		if tk.CPUUsed != tk.Service {
			return false
		}
		if tk.Turnaround() != tk.Service+tk.IOTime+tk.WaitTime {
			return false
		}
		if tk.Turnaround() < tk.IdealDuration() {
			return false
		}
		if tk.Start < tk.Arrival || tk.Finish < tk.Start {
			return false
		}
	}
	return true
}

// TestPropertyEngineInvariants drives every scheduler over random
// workloads on random core counts via testing/quick.
func TestPropertyEngineInvariants(t *testing.T) {
	mks := map[string]func(seed uint64) cpusim.Scheduler{
		"CFS":          func(uint64) cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
		"EEVDF":        func(uint64) cpusim.Scheduler { return sched.NewEEVDF(sched.EEVDFConfig{}) },
		"FIFO":         func(uint64) cpusim.Scheduler { return sched.NewFIFO() },
		"RR":           func(uint64) cpusim.Scheduler { return sched.NewRR(0) },
		"SRTF":         func(uint64) cpusim.Scheduler { return sched.NewSRTF() },
		"CoreGranular": func(uint64) cpusim.Scheduler { return sched.NewCoreGranular() },
		"Lottery":      func(s uint64) cpusim.Scheduler { return sched.NewLottery(0, s) },
	}
	for name, mk := range mks {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64, nRaw, coresRaw uint8) bool {
				cores := int(coresRaw%7) + 1
				return checkRun(mk(seed), cores, randomWorkload(seed, nRaw))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyDeterminism: same seed, same scheduler, bit-identical
// outcome.
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		run := func() []time.Duration {
			tasks := randomWorkload(seed, nRaw)
			eng := cpusim.NewEngine(cpusim.Config{Cores: 3, Deadline: 24 * time.Hour}, sched.NewCFS(sched.CFSConfig{}))
			eng.Submit(tasks...)
			eng.Run()
			out := make([]time.Duration, len(tasks))
			for i, tk := range tasks {
				out[i] = tk.Finish
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWorkConservation: for single-queue work-conserving
// schedulers on one core, total busy time equals total service, and the
// makespan is at most arrival span + total service (no idling while
// work is pending).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		tasks := randomWorkload(seed, nRaw)
		// Strip I/O so the conservation bound is exact.
		var total time.Duration
		var lastArrival time.Duration
		for _, tk := range tasks {
			tk.IOOps = nil
			total += tk.Service
			if tk.Arrival > lastArrival {
				lastArrival = tk.Arrival
			}
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: 1, Deadline: 24 * time.Hour}, sched.NewRR(0))
		eng.Submit(tasks...)
		makespan := eng.Run()
		if makespan > lastArrival+total {
			return false
		}
		// Utilization over the busy period accounts for all service.
		busy := time.Duration(float64(makespan) * eng.Utilization())
		diff := busy - total
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
