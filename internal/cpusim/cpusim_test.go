package cpusim_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func run(t *testing.T, s cpusim.Scheduler, cores int, tasks ...*task.Task) *cpusim.Engine {
	t.Helper()
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	if eng.Aborted() {
		t.Fatal("simulation aborted")
	}
	return eng
}

func TestSingleTaskRunsToCompletion(t *testing.T) {
	tk := task.New(0, ms(5), ms(30))
	run(t, sched.NewFIFO(), 1, tk)
	if tk.Start != ms(5) {
		t.Fatalf("start %v, want 5ms", tk.Start)
	}
	if tk.Finish != ms(35) {
		t.Fatalf("finish %v, want 35ms", tk.Finish)
	}
	if tk.CtxSwitches != 0 || tk.WaitTime != 0 {
		t.Fatalf("ctx=%d wait=%v", tk.CtxSwitches, tk.WaitTime)
	}
	if tk.RTE() != 1.0 {
		t.Fatalf("rte %v", tk.RTE())
	}
}

func TestFIFOConvoy(t *testing.T) {
	long := task.New(0, 0, ms(1000))
	short := task.New(1, ms(1), ms(5))
	run(t, sched.NewFIFO(), 1, long, short)
	// Short arrives second and must wait for the full long task.
	if short.Start != ms(1000) {
		t.Fatalf("short started at %v, want 1000ms (convoy)", short.Start)
	}
	if short.Finish != ms(1005) {
		t.Fatalf("short finish %v", short.Finish)
	}
}

func TestRRInterleavesSlices(t *testing.T) {
	a := task.New(0, 0, ms(150))
	b := task.New(1, 0, ms(150))
	rr := sched.NewRR(ms(100))
	run(t, rr, 1, a, b)
	// a runs 0-100, b 100-200, a 200-250, b 250-300.
	if a.Finish != ms(250) {
		t.Fatalf("a finished at %v, want 250ms", a.Finish)
	}
	if b.Finish != ms(300) {
		t.Fatalf("b finished at %v, want 300ms", b.Finish)
	}
	if a.CtxSwitches != 1 {
		t.Fatalf("a ctx %d, want 1", a.CtxSwitches)
	}
}

func TestRRSoloTaskSliceRenewalNoSwitch(t *testing.T) {
	a := task.New(0, 0, ms(350))
	run(t, sched.NewRR(ms(100)), 1, a)
	// Slice expires 3 times but the task is alone: renewals, not switches.
	if a.CtxSwitches != 0 {
		t.Fatalf("solo RR task has %d ctx switches", a.CtxSwitches)
	}
	if a.Finish != ms(350) {
		t.Fatalf("finish %v", a.Finish)
	}
}

func TestSRTFPreemptsOnShorterArrival(t *testing.T) {
	long := task.New(0, 0, ms(100))
	short := task.New(1, ms(10), ms(20))
	run(t, sched.NewSRTF(), 1, long, short)
	// Short preempts at 10ms, runs to 30ms; long resumes and ends 120ms.
	if short.Finish != ms(30) {
		t.Fatalf("short finish %v, want 30ms", short.Finish)
	}
	if long.Finish != ms(120) {
		t.Fatalf("long finish %v, want 120ms", long.Finish)
	}
	if long.CtxSwitches != 1 {
		t.Fatalf("long ctx %d, want 1", long.CtxSwitches)
	}
}

func TestSRTFDoesNotPreemptForLonger(t *testing.T) {
	a := task.New(0, 0, ms(50))
	b := task.New(1, ms(10), ms(100))
	run(t, sched.NewSRTF(), 1, a, b)
	if a.CtxSwitches != 0 {
		t.Fatal("SRTF preempted for a longer task")
	}
	if b.Start != ms(50) {
		t.Fatalf("b started %v", b.Start)
	}
}

func TestIOBlockFreesCore(t *testing.T) {
	// a blocks for 50ms after 10ms CPU; b should use the core meanwhile.
	a := task.New(0, 0, ms(20)).WithIO(ms(10), ms(50))
	b := task.New(1, 0, ms(30))
	run(t, sched.NewFIFO(), 1, a, b)
	// Timeline: a 0-10 CPU, blocks; b 10-40; a wakes at 60, runs 60-70.
	if b.Finish != ms(40) {
		t.Fatalf("b finish %v, want 40ms", b.Finish)
	}
	if a.Finish != ms(70) {
		t.Fatalf("a finish %v, want 70ms", a.Finish)
	}
	if a.IOTime != ms(50) {
		t.Fatalf("a io time %v", a.IOTime)
	}
}

func TestIOAtServiceEnd(t *testing.T) {
	a := task.New(0, 0, ms(10)).WithIO(ms(10), ms(25))
	run(t, sched.NewFIFO(), 1, a)
	if a.Finish != ms(35) {
		t.Fatalf("finish %v, want 35ms (CPU then trailing IO)", a.Finish)
	}
}

func TestIOAtStart(t *testing.T) {
	a := task.New(0, 0, ms(10)).WithIO(0, ms(20))
	run(t, sched.NewFIFO(), 1, a)
	if a.Finish != ms(30) {
		t.Fatalf("finish %v, want 30ms (leading IO then CPU)", a.Finish)
	}
	if a.IdealDuration() != ms(30) {
		t.Fatalf("ideal %v", a.IdealDuration())
	}
}

func TestMultiCoreParallelism(t *testing.T) {
	tasks := []*task.Task{
		task.New(0, 0, ms(100)),
		task.New(1, 0, ms(100)),
		task.New(2, 0, ms(100)),
		task.New(3, 0, ms(100)),
	}
	eng := run(t, sched.NewFIFO(), 4, tasks...)
	for _, tk := range tasks {
		if tk.Finish != ms(100) {
			t.Fatalf("task %d finish %v, want 100ms (parallel)", tk.ID, tk.Finish)
		}
	}
	if u := eng.Utilization(); u < 0.99 {
		t.Fatalf("utilization %v, want ~1", u)
	}
}

func TestCtxSwitchCostDelaysProgress(t *testing.T) {
	a := task.New(0, 0, ms(100))
	b := task.New(1, 0, ms(100))
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1, CtxSwitchCost: ms(1), Deadline: time.Hour}, sched.NewRR(ms(50)))
	eng.Submit(a, b)
	eng.Run()
	// 4 stints with alternating tasks: each pays 1ms switch cost.
	if eng.SwitchOverhead != ms(4) {
		t.Fatalf("switch overhead %v, want 4ms", eng.SwitchOverhead)
	}
	if b.Finish != ms(204) {
		t.Fatalf("b finish %v, want 204ms", b.Finish)
	}
	if a.CPUUsed != ms(100) || b.CPUUsed != ms(100) {
		t.Fatal("switch cost corrupted CPU accounting")
	}
}

func TestDeadlineAborts(t *testing.T) {
	a := task.New(0, 0, time.Hour)
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1, Deadline: time.Minute}, sched.NewFIFO())
	eng.Submit(a)
	eng.Run()
	if !eng.Aborted() {
		t.Fatal("expected abort at deadline")
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending %d", eng.Pending())
	}
}

func TestWaitTimeAccounting(t *testing.T) {
	a := task.New(0, 0, ms(100))
	b := task.New(1, 0, ms(50))
	run(t, sched.NewFIFO(), 1, a, b)
	if b.WaitTime != ms(100) {
		t.Fatalf("b waited %v, want 100ms", b.WaitTime)
	}
	// RTE of b: 50 / 150.
	if got := b.RTE(); got < 0.33 || got > 0.34 {
		t.Fatalf("b RTE %v", got)
	}
}

func TestRejectsInvalidTask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Submit accepted an invalid task")
		}
	}()
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1}, sched.NewFIFO())
	eng.Submit(task.New(0, 0, 0))
}

func TestZeroCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted zero cores")
		}
	}()
	cpusim.NewEngine(cpusim.Config{Cores: 0}, sched.NewFIFO())
}

// TestConservationInvariants checks global invariants over a random-ish
// workload: CPU conservation, wall-clock sanity, and wait-time symmetry.
func TestConservationInvariants(t *testing.T) {
	var tasks []*task.Task
	at := time.Duration(0)
	for i := 0; i < 200; i++ {
		svc := ms(1 + (i*7)%120)
		tk := task.New(i, at, svc)
		if i%5 == 0 {
			tk.WithIO(svc/2, ms(5+(i%20)))
		}
		tasks = append(tasks, tk)
		at += ms((i * 3) % 25)
	}
	for _, mk := range []func() cpusim.Scheduler{
		func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
		func() cpusim.Scheduler { return sched.NewRR(0) },
		func() cpusim.Scheduler { return sched.NewSRTF() },
	} {
		clones := make([]*task.Task, len(tasks))
		for i, tk := range tasks {
			c := task.New(tk.ID, tk.Arrival, tk.Service)
			c.IOOps = append([]task.IOOp(nil), tk.IOOps...)
			clones[i] = c
		}
		s := mk()
		eng := run(t, s, 3, clones...)
		for _, tk := range clones {
			if tk.CPUUsed != tk.Service {
				t.Fatalf("%s: task %d CPU %v != service %v", s.Name(), tk.ID, tk.CPUUsed, tk.Service)
			}
			// Turnaround decomposition: service + IO + wait == turnaround
			// (switch cost disabled).
			if got, want := tk.Turnaround(), tk.Service+tk.IOTime+tk.WaitTime; got != want {
				t.Fatalf("%s: task %d turnaround %v != svc+io+wait %v", s.Name(), tk.ID, got, want)
			}
			if tk.Turnaround() < tk.IdealDuration() {
				t.Fatalf("%s: task %d beat ideal", s.Name(), tk.ID)
			}
		}
		_ = eng
	}
}
