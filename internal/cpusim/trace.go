package cpusim

import (
	"fmt"

	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// TraceKind classifies engine trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceDispatch TraceKind = iota // task placed on a core
	TracePreempt                   // task involuntarily descheduled
	TraceBlock                     // task started a blocking I/O op
	TraceWake                      // task's I/O completed
	TraceFinish                    // task completed
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceDispatch:
		return "dispatch"
	case TracePreempt:
		return "preempt"
	case TraceBlock:
		return "block"
	case TraceWake:
		return "wake"
	case TraceFinish:
		return "finish"
	default:
		return fmt.Sprintf("trace(%d)", int(k))
	}
}

// TraceEvent is one scheduling event observed by the engine.
type TraceEvent struct {
	At   simtime.Time
	Kind TraceKind
	Core int // -1 for wake events
	Task *task.Task
}

// String renders the event compactly ("12ms dispatch core0 task3").
func (e TraceEvent) String() string {
	return fmt.Sprintf("%v %s core%d task%d", e.At, e.Kind, e.Core, e.Task.ID)
}

// SetTracer installs a callback invoked for every scheduling event.
// Pass nil to disable. Tracing is intended for tests and debugging; it
// is off by default and adds no cost when unset. Must be called before
// Run.
func (e *Engine) SetTracer(fn func(TraceEvent)) { e.tracer = fn }

// trace emits an event if a tracer is installed.
func (e *Engine) trace(kind TraceKind, core int, t *task.Task) {
	if e.tracer != nil {
		e.tracer(TraceEvent{At: e.q.Now(), Kind: kind, Core: core, Task: t})
	}
}
