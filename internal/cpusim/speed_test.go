package cpusim_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

// runAt drives tasks on a single host with the given speed factor.
func runAt(t *testing.T, speed float64, s cpusim.Scheduler, cores int, tasks ...*task.Task) *cpusim.Engine {
	t.Helper()
	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Speed: speed, Deadline: time.Hour}, s)
	eng.Submit(tasks...)
	eng.Run()
	if eng.Aborted() {
		t.Fatal("simulation aborted")
	}
	return eng
}

// TestSpeedScalesCompletion: a 2x host finishes pure-CPU work in half
// the wall time, a 0.5x host in double; demand accounting stays in
// unit-speed terms either way.
func TestSpeedScalesCompletion(t *testing.T) {
	for _, tc := range []struct {
		speed  float64
		finish time.Duration
	}{
		{2.0, ms(15)},                  // 30ms demand at 2x
		{0.5, ms(60)},                  // 30ms demand at 0.5x
		{4.0, 7500 * time.Microsecond}, // 30ms demand at 4x
		{1.0, ms(30)},                  // identity
		{0, ms(30)},                    // zero means 1.0
	} {
		tk := task.New(0, 0, ms(30))
		runAt(t, tc.speed, sched.NewFIFO(), 1, tk)
		if time.Duration(tk.Finish) != tc.finish {
			t.Errorf("speed %.1f: finish %v, want %v", tc.speed, tk.Finish, tc.finish)
		}
		if tk.CPUUsed != ms(30) {
			t.Errorf("speed %.1f: CPUUsed %v, want full 30ms demand", tc.speed, tk.CPUUsed)
		}
	}
}

// TestSpeedWithIO: I/O instants are CPU-demand offsets, so a fast host
// reaches the op sooner but the blocked wall time is unchanged.
func TestSpeedWithIO(t *testing.T) {
	// 20ms demand, blocking I/O of 10ms after 10ms of CPU. At 2x: 5ms
	// CPU + 10ms I/O + 5ms CPU = 20ms wall.
	tk := task.New(0, 0, ms(20)).WithIO(ms(10), ms(10))
	runAt(t, 2.0, sched.NewFIFO(), 1, tk)
	if time.Duration(tk.Finish) != ms(20) {
		t.Fatalf("finish %v, want 20ms", tk.Finish)
	}
	if tk.IOTime != ms(10) {
		t.Fatalf("IOTime %v, want 10ms", tk.IOTime)
	}
	if tk.CPUUsed != ms(20) {
		t.Fatalf("CPUUsed %v, want 20ms", tk.CPUUsed)
	}
}

// TestSpeedWithSlices: a round-robin slice is wall time, so a 2x host
// retires twice the demand per slice; two equal tasks still finish all
// demand at the scaled makespan.
func TestSpeedWithSlices(t *testing.T) {
	a := task.New(0, 0, ms(20))
	b := task.New(1, 0, ms(20))
	runAt(t, 2.0, sched.NewRR(ms(5)), 1, a, b)
	// 40ms total demand on one core at 2x = 20ms of wall time.
	last := time.Duration(a.Finish)
	if time.Duration(b.Finish) > last {
		last = time.Duration(b.Finish)
	}
	if last != ms(20) {
		t.Fatalf("last finish %v, want 20ms", last)
	}
	if a.CPUUsed != ms(20) || b.CPUUsed != ms(20) {
		t.Fatalf("CPUUsed %v/%v, want 20ms each", a.CPUUsed, b.CPUUsed)
	}
}

// TestSpeedPreemptMidStint: preempting a task part way through a stint
// charges the wall progress converted to demand.
func TestSpeedPreemptMidStint(t *testing.T) {
	// SRTF on one core at 2x: the long task starts, and a short task
	// arriving at wall 5ms preempts it (10ms of demand retired by then).
	long := task.New(0, 0, ms(40))
	short := task.New(1, ms(5), ms(2))
	runAt(t, 2.0, sched.NewSRTF(), 1, long, short)
	// Short: arrives 5ms, 2ms demand = 1ms wall, finishes 6ms.
	if time.Duration(short.Finish) != ms(6) {
		t.Fatalf("short finish %v, want 6ms", short.Finish)
	}
	// Long: 40ms demand at 2x = 20ms wall + 1ms preempted = 21ms.
	if time.Duration(long.Finish) != ms(21) {
		t.Fatalf("long finish %v, want 21ms", long.Finish)
	}
	if long.CPUUsed != ms(40) {
		t.Fatalf("long CPUUsed %v, want 40ms", long.CPUUsed)
	}
}

// TestNegativeSpeedPanics: NewEngine rejects negative speed factors.
func TestNegativeSpeedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted a negative speed factor")
		}
	}()
	cpusim.NewEngine(cpusim.Config{Cores: 1, Speed: -1}, sched.NewFIFO())
}

// TestFractionalSpeedCompletes: awkward speed factors (repeating
// decimals in either direction) still land completions exactly on the
// task's demand with no overrun panic and no stranded remainder.
func TestFractionalSpeedCompletes(t *testing.T) {
	for _, speed := range []float64{0.3, 0.7, 1.3, 3.7, 1.0 / 3.0} {
		tasks := make([]*task.Task, 0, 16)
		for i := 0; i < 16; i++ {
			tasks = append(tasks, task.New(i, ms(i), time.Duration(1+i*7919)*time.Microsecond))
		}
		runAt(t, speed, sched.NewRR(ms(1)), 2, tasks...)
		for _, tk := range tasks {
			if tk.CPUUsed != tk.Service {
				t.Fatalf("speed %.3f: task %d retired %v of %v", speed, tk.ID, tk.CPUUsed, tk.Service)
			}
		}
	}
}
