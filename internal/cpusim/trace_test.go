package cpusim_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/task"
)

// TestGoldenTimelineRR verifies the engine emits the exact schedule a
// two-task round-robin run must produce.
func TestGoldenTimelineRR(t *testing.T) {
	a := task.New(0, 0, ms(150))
	b := task.New(1, 0, ms(150))
	var got []string
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1, Deadline: time.Hour}, sched.NewRR(ms(100)))
	eng.SetTracer(func(ev cpusim.TraceEvent) {
		got = append(got, fmt.Sprintf("%dms %s t%d", ev.At/time.Millisecond, ev.Kind, ev.Task.ID))
	})
	eng.Submit(a, b)
	eng.Run()
	want := []string{
		"0ms dispatch t0",
		"100ms preempt t0", // quantum expired, b takes over
		"100ms dispatch t1",
		"200ms preempt t1", // quantum expired, a resumes
		"200ms dispatch t0",
		"250ms finish t0", // a's remaining 50ms
		"250ms dispatch t1",
		"300ms finish t1",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("timeline mismatch\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestGoldenTimelineSRTFPreemption verifies arrival preemption events.
func TestGoldenTimelineSRTFPreemption(t *testing.T) {
	long := task.New(0, 0, ms(100))
	short := task.New(1, ms(10), ms(20))
	var got []string
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1, Deadline: time.Hour}, sched.NewSRTF())
	eng.SetTracer(func(ev cpusim.TraceEvent) {
		got = append(got, fmt.Sprintf("%dms %s t%d", ev.At/time.Millisecond, ev.Kind, ev.Task.ID))
	})
	eng.Submit(long, short)
	eng.Run()
	want := []string{
		"0ms dispatch t0",
		"10ms preempt t0", // the shorter arrival takes the core
		"10ms dispatch t1",
		"30ms finish t1",
		"30ms dispatch t0",
		"120ms finish t0",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("timeline mismatch\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestGoldenTimelineIO verifies block/wake events.
func TestGoldenTimelineIO(t *testing.T) {
	a := task.New(0, 0, ms(20)).WithIO(ms(10), ms(30))
	var got []string
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1, Deadline: time.Hour}, sched.NewFIFO())
	eng.SetTracer(func(ev cpusim.TraceEvent) {
		got = append(got, fmt.Sprintf("%dms %s t%d core%d", ev.At/time.Millisecond, ev.Kind, ev.Task.ID, ev.Core))
	})
	eng.Submit(a)
	eng.Run()
	want := []string{
		"0ms dispatch t0 core0",
		"10ms block t0 core0",
		"40ms wake t0 core-1",
		"40ms dispatch t0 core0",
		"50ms finish t0 core0",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("timeline mismatch\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestTraceKindStrings covers the stringer.
func TestTraceKindStrings(t *testing.T) {
	for k, want := range map[cpusim.TraceKind]string{
		cpusim.TraceDispatch: "dispatch", cpusim.TracePreempt: "preempt",
		cpusim.TraceBlock: "block", cpusim.TraceWake: "wake",
		cpusim.TraceFinish: "finish", cpusim.TraceKind(99): "trace(99)",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q", int(k), k.String())
		}
	}
}
