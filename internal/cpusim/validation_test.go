package cpusim_test

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/queueing"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
)

// buildMMc builds an M/M/c workload: Poisson arrivals at rate lambda,
// exponential service at rate mu (both per second).
func buildMMc(n int, lambda, mu float64, seed uint64) []*task.Task {
	r := rng.New(seed)
	var tasks []*task.Task
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		if i > 0 {
			at += time.Duration(r.ExpFloat64() / lambda * float64(time.Second))
		}
		svc := time.Duration(r.ExpFloat64() / mu * float64(time.Second))
		if svc < time.Microsecond {
			svc = time.Microsecond
		}
		tasks = append(tasks, task.New(i, at, svc))
	}
	return tasks
}

// TestEngineMatchesErlangC cross-validates the whole simulation stack
// against queueing theory: an M/M/c system served FCFS must reproduce
// the Erlang-C mean waiting time. This ties the discrete-event engine,
// the FIFO scheduler, and the analytic package together.
func TestEngineMatchesErlangC(t *testing.T) {
	cases := []struct {
		cores  int
		lambda float64 // arrivals/sec
		mu     float64 // service rate per core
	}{
		{1, 8, 10},  // rho=0.8, M/M/1
		{4, 30, 10}, // rho=0.75, M/M/4
		{8, 60, 10}, // rho=0.75, M/M/8
	}
	for _, c := range cases {
		c := c
		// Average over several seeds to tame stochastic error.
		var measured stats.Online
		for seed := uint64(1); seed <= 5; seed++ {
			tasks := buildMMc(30000, c.lambda, c.mu, seed)
			eng := cpusim.NewEngine(cpusim.Config{Cores: c.cores, Deadline: 1000 * time.Hour}, sched.NewFIFO())
			eng.Submit(tasks...)
			eng.Run()
			var w stats.Online
			// Skip a warmup prefix so the estimate is steady-state.
			for _, tk := range tasks[2000:] {
				w.AddDuration(tk.WaitTime)
			}
			measured.Add(w.Mean())
		}
		want, err := queueing.MMcWait(c.lambda, c.mu, c.cores)
		if err != nil {
			t.Fatal(err)
		}
		got := time.Duration(measured.Mean())
		rel := math.Abs(float64(got-want)) / float64(want)
		t.Logf("M/M/%d rho=%.2f: measured Wq=%v, Erlang-C Wq=%v (%.1f%% off)",
			c.cores, c.lambda/(c.mu*float64(c.cores)), got.Round(time.Millisecond), want.Round(time.Millisecond), rel*100)
		if rel > 0.10 {
			t.Errorf("M/M/%d: measured %v deviates %.0f%% from Erlang-C %v",
				c.cores, got, rel*100, want)
		}
	}
}

// TestEngineMatchesMG1 validates the Pollaczek-Khinchine formula for a
// deterministic-service M/D/1 queue.
func TestEngineMatchesMG1(t *testing.T) {
	const lambda = 8.0 // arrivals/sec
	const es = 0.1     // 100ms deterministic service
	var measured stats.Online
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		var tasks []*task.Task
		at := time.Duration(0)
		for i := 0; i < 30000; i++ {
			if i > 0 {
				at += time.Duration(r.ExpFloat64() / lambda * float64(time.Second))
			}
			tasks = append(tasks, task.New(i, at, 100*time.Millisecond))
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: 1, Deadline: 1000 * time.Hour}, sched.NewFIFO())
		eng.Submit(tasks...)
		eng.Run()
		var w stats.Online
		for _, tk := range tasks[2000:] {
			w.AddDuration(tk.WaitTime)
		}
		measured.Add(w.Mean())
	}
	want, err := queueing.MG1Wait(lambda, es, es*es)
	if err != nil {
		t.Fatal(err)
	}
	got := time.Duration(measured.Mean())
	rel := math.Abs(float64(got-want)) / float64(want)
	t.Logf("M/D/1 rho=%.2f: measured Wq=%v, P-K Wq=%v (%.1f%% off)",
		lambda*es, got.Round(time.Millisecond), want.Round(time.Millisecond), rel*100)
	if rel > 0.10 {
		t.Errorf("M/D/1: measured %v deviates %.0f%% from P-K %v", got, rel*100, want)
	}
}
