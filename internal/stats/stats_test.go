package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/serverless-sched/sfs/internal/rng"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("n = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", o.Mean())
	}
	// Sample (unbiased) variance of this classic dataset is 32/7.
	if math.Abs(o.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v, want %v", o.Var(), 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.N() != 0 {
		t.Fatal("zero-value Online should report zeros")
	}
}

func TestOnlineSingle(t *testing.T) {
	var o Online
	o.Add(3)
	if o.Var() != 0 {
		t.Fatalf("variance of single sample = %v", o.Var())
	}
}

// TestOnlineMatchesNaive cross-checks Welford against the two-pass
// formula on random data.
func TestOnlineMatchesNaive(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = r.NormFloat64()*10 + 5
		o.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	naiveVar := ss / float64(len(xs)-1)
	if math.Abs(o.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v vs naive %v", o.Mean(), mean)
	}
	if math.Abs(o.Var()-naiveVar) > 1e-6 {
		t.Fatalf("var %v vs naive %v", o.Var(), naiveVar)
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Mean() != 0 {
		t.Fatal("empty window mean should be 0")
	}
	w.Push(10)
	w.Push(20)
	if w.Len() != 2 || w.Full() {
		t.Fatalf("len=%d full=%v", w.Len(), w.Full())
	}
	if w.Mean() != 15 {
		t.Fatalf("mean = %v", w.Mean())
	}
	w.Push(30)
	w.Push(40) // evicts 10
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("len=%d full=%v", w.Len(), w.Full())
	}
	if w.Mean() != 30 {
		t.Fatalf("mean after eviction = %v, want 30", w.Mean())
	}
	vals := w.Values()
	want := []time.Duration{20, 30, 40}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values = %v", vals)
		}
	}
}

// TestWindowSlidingSum is a property test: the window sum always equals
// the sum of the last cap values pushed.
func TestWindowSlidingSum(t *testing.T) {
	f := func(capRaw uint8, pushes []uint16) bool {
		capacity := int(capRaw%31) + 1
		w := NewWindow(capacity)
		var hist []time.Duration
		for _, p := range pushes {
			d := time.Duration(p)
			w.Push(d)
			hist = append(hist, d)
			lo := len(hist) - capacity
			if lo < 0 {
				lo = 0
			}
			var want time.Duration
			for _, v := range hist[lo:] {
				want += v
			}
			if w.Sum() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty slice should be 0")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); got != 15 {
		t.Fatalf("p50 of {10,20} = %v, want 15", got)
	}
	if got := Percentile(xs, 75); got != 17.5 {
		t.Fatalf("p75 of {10,20} = %v, want 17.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestDurationPercentiles(t *testing.T) {
	ds := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	ps := DurationPercentiles(ds, []float64{0, 50, 100})
	if ps[0] != time.Millisecond || ps[1] != 2*time.Millisecond || ps[2] != 3*time.Millisecond {
		t.Fatalf("got %v", ps)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 1, 2, 3})
	if len(cdf) != 3 {
		t.Fatalf("dedup failed: %v", cdf)
	}
	if cdf[0].X != 1 || math.Abs(cdf[0].F-0.5) > 1e-12 {
		t.Fatalf("first point %v", cdf[0])
	}
	if cdf[2].X != 3 || cdf[2].F != 1 {
		t.Fatalf("last point %v", cdf[2])
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

// TestCDFMonotone is a property test: F is non-decreasing in X, ends at
// 1, and X values strictly increase.
func TestCDFMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		cdf := CDF(xs)
		prevF := 0.0
		prevX := math.Inf(-1)
		for _, p := range cdf {
			if p.X <= prevX || p.F < prevF {
				return false
			}
			prevX, prevF = p.X, p.F
		}
		return math.Abs(cdf[len(cdf)-1].F-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 2); got != 0.5 {
		t.Fatalf("FractionBelow = %v", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Fatal("empty FractionBelow should be 0")
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(10, 0, 4) // buckets [1,10) [10,100) [100,1e3) [1e3,1e4)
	for _, x := range []float64{5, 50, 500, 5000, 50000, 0.5, -1} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	for i := 0; i < 3; i++ {
		if _, _, c := h.Bucket(i); c != 1 {
			t.Fatalf("bucket %d count %d", i, c)
		}
	}
	// 5000 and the clamped 50000 both land in the last bucket.
	if _, _, c := h.Bucket(3); c != 2 {
		t.Fatalf("last bucket %d", c)
	}
	lo, hi, _ := h.Bucket(1)
	if lo != 10 || hi != 100 {
		t.Fatalf("bucket 1 bounds [%v,%v)", lo, hi)
	}
}
