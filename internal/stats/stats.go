// Package stats provides the statistical building blocks used across the
// SFS reproduction: online moment accumulators, sliding windows (the SFS
// monitor's IAT window), exact percentile/CDF extraction for experiment
// output, and log-spaced histograms.
//
// The accumulators fall into two families with different cost models:
//
//   - Streaming: Online (Welford's single-pass mean/variance) and
//     Window (fixed-capacity ring, the structure behind SFS's
//     mean-of-last-k-IATs slice adaptation) never hold more than O(1)
//     or O(k) state and are safe on the simulator's hot paths.
//   - Materialized: Percentile, CDF, and the histogram helpers sort or
//     bucket full samples and are meant for end-of-run reporting, where
//     the paper's figures need exact (not approximated) quantiles.
//
// Percentiles use the nearest-rank definition on a sorted copy; inputs
// are never mutated. CDFPoint slices are what internal/experiments
// plots as figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Online accumulates count/mean/variance in one pass using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// AddDuration incorporates a duration in nanoseconds.
func (o *Online) AddDuration(d time.Duration) { o.Add(float64(d)) }

// N returns the number of samples.
func (o *Online) N() int64 { return o.n }

// Mean returns the sample mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// MeanDuration returns the mean as a duration.
func (o *Online) MeanDuration() time.Duration { return time.Duration(o.mean) }

// Var returns the unbiased sample variance (0 for n < 2).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest sample (0 if empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample (0 if empty).
func (o *Online) Max() float64 { return o.max }

// Window is a fixed-capacity sliding window over durations. It backs the
// SFS monitor's view of the last N inter-arrival times (§V-C of the
// paper, N = 100).
type Window struct {
	buf  []time.Duration
	head int
	n    int
	sum  time.Duration
}

// NewWindow returns a window holding up to capacity values. It panics if
// capacity <= 0.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("stats: window capacity must be positive")
	}
	return &Window{buf: make([]time.Duration, capacity)}
}

// Push appends d, evicting the oldest value when full.
func (w *Window) Push(d time.Duration) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.head]
		w.buf[w.head] = d
		w.sum += d
		w.head = (w.head + 1) % len(w.buf)
		return
	}
	w.buf[(w.head+w.n)%len(w.buf)] = d
	w.sum += d
	w.n++
}

// Len returns the number of values currently held.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Sum returns the sum of held values.
func (w *Window) Sum() time.Duration { return w.sum }

// Mean returns the mean of held values, or 0 when empty.
func (w *Window) Mean() time.Duration {
	if w.n == 0 {
		return 0
	}
	return w.sum / time.Duration(w.n)
}

// Values returns the window contents oldest-first.
func (w *Window) Values() []time.Duration {
	out := make([]time.Duration, 0, w.n)
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(w.head+i)%len(w.buf)])
	}
	return out
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It sorts a copy; xs is left
// unmodified. Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	// Equal neighbors interpolate to themselves exactly: the weighted
	// form a*(1-f)+a*f reintroduces floating-point error on duplicate
	// samples (e.g. 7.5 -> 7.4999999999999999), which matters to
	// byte-identity claims downstream.
	if lo == hi || s[lo] == s[hi] {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// DurationPercentiles computes multiple percentiles of a duration sample
// in one sort. ps are percentile ranks in [0, 100].
func DurationPercentiles(ds []time.Duration, ps []float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(ds) == 0 {
		return out
	}
	s := make([]float64, len(ds))
	for i, d := range ds {
		s[i] = float64(d)
	}
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = time.Duration(percentileSorted(s, p))
	}
	return out
}

// CDFPoint is one point of an empirical CDF: fraction F of samples are <=
// X.
type CDFPoint struct {
	X float64
	F float64
}

// CDF computes the empirical CDF of xs, deduplicating equal values. The
// result is suitable for plotting the paper's CDF figures.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, len(s))
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		// Collapse runs of equal values to their final (highest) F.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], F: float64(i+1) / n})
	}
	return out
}

// DurationCDF computes the empirical CDF of durations in milliseconds.
func DurationCDF(ds []time.Duration) []CDFPoint {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	return CDF(xs)
}

// FractionBelow returns the fraction of xs that are <= bound.
func FractionBelow(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// LogHistogram counts samples in logarithmically spaced buckets, used to
// summarize distributions spanning several orders of magnitude (the Azure
// duration CDF spans seven).
type LogHistogram struct {
	base    float64
	minExp  int
	buckets []int64
	under   int64
	total   int64
}

// NewLogHistogram creates a histogram with buckets [base^e, base^(e+1))
// for e in [minExp, minExp+nBuckets).
func NewLogHistogram(base float64, minExp, nBuckets int) *LogHistogram {
	if base <= 1 {
		panic("stats: log histogram base must be > 1")
	}
	if nBuckets <= 0 {
		panic("stats: log histogram needs at least one bucket")
	}
	return &LogHistogram{base: base, minExp: minExp, buckets: make([]int64, nBuckets)}
}

// Add incorporates x. Non-positive and below-range values land in the
// underflow bucket; above-range values clamp to the last bucket.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x <= 0 {
		h.under++
		return
	}
	e := int(math.Floor(math.Log(x) / math.Log(h.base)))
	idx := e - h.minExp
	if idx < 0 {
		h.under++
		return
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
}

// Total returns the number of samples added.
func (h *LogHistogram) Total() int64 { return h.total }

// Bucket returns the count in bucket i and its [lo, hi) bounds.
func (h *LogHistogram) Bucket(i int) (lo, hi float64, count int64) {
	lo = math.Pow(h.base, float64(h.minExp+i))
	hi = math.Pow(h.base, float64(h.minExp+i+1))
	return lo, hi, h.buckets[i]
}

// NumBuckets returns the number of buckets, not counting underflow.
func (h *LogHistogram) NumBuckets() int { return len(h.buckets) }

// String renders a compact textual summary.
func (h *LogHistogram) String() string {
	s := fmt.Sprintf("loghist(base=%.1f total=%d under=%d)", h.base, h.total, h.under)
	return s
}
