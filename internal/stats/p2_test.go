package stats

import (
	"math"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/rng"
)

// p2RelErr streams samples through P² at the given rank and returns the
// relative error against the exact interpolated percentile.
func p2RelErr(t *testing.T, samples []float64, rank float64) float64 {
	t.Helper()
	e := NewP2(rank)
	for _, x := range samples {
		e.Add(x)
	}
	exact := Percentile(samples, rank)
	if exact == 0 {
		t.Fatalf("degenerate exact percentile at rank %v", rank)
	}
	return math.Abs(e.Quantile()-exact) / exact
}

// TestP2Lognormal: on a heavy-tailed lognormal (the shape of serverless
// durations), P² estimates must land within a few percent of the exact
// sort at the ranks the experiment tables print.
func TestP2Lognormal(t *testing.T) {
	r := rng.New(3)
	ln := dist.Lognormal{Mu: math.Log(100e6), Sigma: 1.5} // median 100ms
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = float64(ln.Sample(r))
	}
	for rank, tol := range map[float64]float64{50: 0.05, 90: 0.05, 99: 0.10} {
		if err := p2RelErr(t, samples, rank); err > tol {
			t.Errorf("lognormal P%g: relative error %.3f > %.2f", rank, err, tol)
		}
	}
}

// TestP2Mixture: a bimodal mixture (short functions + long functions,
// the paper's Table I shape) is the adversarial case for marker-based
// estimators; the estimate must still track the exact percentile.
func TestP2Mixture(t *testing.T) {
	r := rng.New(5)
	m := dist.NewMixture(
		dist.Mode{Weight: 0.8, Dist: dist.Uniform{Lo: 10 * time.Millisecond, Hi: 90 * time.Millisecond}},
		dist.Mode{Weight: 0.2, Dist: dist.Uniform{Lo: 2 * time.Second, Hi: 8 * time.Second}},
	)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = float64(m.Sample(r))
	}
	for rank, tol := range map[float64]float64{50: 0.08, 90: 0.15, 99: 0.10} {
		if err := p2RelErr(t, samples, rank); err > tol {
			t.Errorf("mixture P%g: relative error %.3f > %.2f", rank, err, tol)
		}
	}
}

// TestP2SmallSamples: below five observations the estimator must agree
// exactly with the interpolated percentile definition.
func TestP2SmallSamples(t *testing.T) {
	samples := []float64{40, 10, 30, 20}
	for n := 1; n <= len(samples); n++ {
		for _, rank := range []float64{50, 90, 99} {
			e := NewP2(rank)
			for _, x := range samples[:n] {
				e.Add(x)
			}
			want := Percentile(samples[:n], rank)
			if got := e.Quantile(); got != want {
				t.Errorf("n=%d P%g: got %v, want exact %v", n, rank, got, want)
			}
		}
	}
	if (&P2{p: 0.5}).Quantile() != 0 {
		t.Error("empty estimator should report 0")
	}
}

// TestP2Deterministic: identical input sequences yield identical
// estimates (the property experiment byte-identity rests on).
func TestP2Deterministic(t *testing.T) {
	r := rng.New(9)
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = r.Float64() * 1000
	}
	run := func() float64 {
		e := NewP2(99)
		for _, x := range samples {
			e.Add(x)
		}
		return e.Quantile()
	}
	if run() != run() {
		t.Fatal("P² is not deterministic on identical input")
	}
}

// TestP2Monotone: markers must stay ordered (q0 <= q1 <= q2 <= q3 <= q4)
// under adversarial constant and alternating inputs.
func TestP2Monotone(t *testing.T) {
	e := NewP2(90)
	for i := 0; i < 1000; i++ {
		x := 1.0
		if i%2 == 0 {
			x = 2
		}
		e.Add(x)
		for j := 0; j+1 < 5 && e.n >= 5; j++ {
			if e.q[j] > e.q[j+1] {
				t.Fatalf("markers out of order after %d adds: %v", i+1, e.q)
			}
		}
	}
}

// TestP2ConstantSamples: a constant stream must estimate exactly that
// constant at every rank, with finite markers, below and above the
// five-observation threshold.
func TestP2ConstantSamples(t *testing.T) {
	for _, rank := range []float64{1, 50, 90, 99, 99.9} {
		e := NewP2(rank)
		for i := 0; i < 2000; i++ {
			e.Add(7.5)
			q := e.Quantile()
			if math.IsNaN(q) || math.IsInf(q, 0) {
				t.Fatalf("P%g: non-finite estimate %v after %d constant adds", rank, q, i+1)
			}
			if q != 7.5 {
				t.Fatalf("P%g: estimate %v after %d constant adds, want 7.5", rank, q, i+1)
			}
		}
	}
}

// TestP2DuplicateHeavySamples: streams dominated by a few repeated
// values (the shape turnaround samples take under a quantized
// scheduler) must never produce NaN, never leave [min, max], and never
// break marker ordering.
func TestP2DuplicateHeavySamples(t *testing.T) {
	r := rng.New(4)
	vals := []float64{5, 5, 5, 100, 5, 250}
	for _, rank := range []float64{50, 95, 99} {
		e := NewP2(rank)
		min, max := math.Inf(1), math.Inf(-1)
		for i := 0; i < 5000; i++ {
			x := vals[int(r.Uint64()%uint64(len(vals)))]
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
			e.Add(x)
			q := e.Quantile()
			if math.IsNaN(q) || q < min || q > max {
				t.Fatalf("P%g: estimate %v outside [%v, %v] after %d adds", rank, q, min, max, i+1)
			}
			for j := 0; j+1 < 5 && e.n >= 5; j++ {
				if e.q[j] > e.q[j+1] {
					t.Fatalf("P%g: markers out of order after %d adds: %v", rank, i+1, e.q)
				}
			}
		}
	}
}

// TestP2SmallDuplicates: below five observations, duplicate and
// constant sample sets must agree exactly with the interpolated
// percentile definition (the stored-sample fallback path).
func TestP2SmallDuplicates(t *testing.T) {
	cases := [][]float64{
		{3},
		{3, 3},
		{3, 3, 3},
		{3, 3, 3, 3},
		{1, 1, 2},
		{2, 1, 1, 2},
	}
	for _, samples := range cases {
		for _, rank := range []float64{25, 50, 99} {
			e := NewP2(rank)
			for _, x := range samples {
				e.Add(x)
			}
			want := Percentile(samples, rank)
			got := e.Quantile()
			if math.IsNaN(got) || got != want {
				t.Errorf("samples %v P%g: got %v, want %v", samples, rank, got, want)
			}
		}
	}
}
