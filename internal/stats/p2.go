package stats

import (
	"math"
	"sort"
	"time"
)

// P2 estimates a single quantile online using the P² algorithm (Jain &
// Chlamtac, CACM 1985): five markers track the running minimum, maximum,
// the target quantile, and the two quantiles halfway to each extreme;
// marker heights are adjusted with piecewise-parabolic interpolation as
// observations stream past. State is O(1) regardless of sample count,
// which is what lets internal/metrics summarize million-invocation
// sweeps without retaining every turnaround for a post-hoc sort.
//
// The estimator is deterministic in its input order: the same sample
// sequence always yields the same estimate, so simulator outputs built
// on it stay byte-identical across runs (the experiment pipeline feeds
// samples in task order). Until five observations arrive the estimate
// falls back to the exact interpolated percentile of the stored
// samples, matching Percentile's definition on small inputs.
type P2 struct {
	p  float64    // target quantile in (0, 1)
	n  int64      // observations seen
	q  [5]float64 // marker heights
	np [5]float64 // marker positions (1-based, fractional between adjustments)
	dp [5]float64 // desired-position increments per observation
	ds [5]float64 // desired positions
}

// NewP2 returns an estimator for quantile p expressed as a percentile
// rank in [0, 100] (e.g. 99 for P99). It panics on a rank outside the
// open interval (0, 100); the extremes are tracked exactly by Online's
// Min/Max instead.
func NewP2(rank float64) *P2 {
	if rank <= 0 || rank >= 100 {
		panic("stats: P2 rank must be in (0, 100)")
	}
	p := rank / 100
	e := &P2{p: p}
	e.dp = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Rank returns the percentile rank this estimator targets.
func (e *P2) Rank() float64 { return e.p * 100 }

// N returns the number of observations.
func (e *P2) N() int64 { return e.n }

// Add incorporates x.
func (e *P2) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.np[i] = float64(i + 1)
				e.ds[i] = 1 + 4*e.dp[i]
			}
		}
		return
	}
	e.n++

	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.np[i]++
	}
	for i := 0; i < 5; i++ {
		e.ds[i] += e.dp[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.ds[i] - e.np[i]
		if (d >= 1 && e.np[i+1]-e.np[i] > 1) || (d <= -1 && e.np[i-1]-e.np[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			// Piecewise-parabolic prediction; fall back to linear when
			// it would break marker monotonicity.
			qn := e.parabolic(i, sign)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.np[i] += sign
		}
	}
}

// AddDuration incorporates a duration in nanoseconds.
func (e *P2) AddDuration(d time.Duration) { e.Add(float64(d)) }

func (e *P2) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.np[i+1]-e.np[i-1])*
		((e.np[i]-e.np[i-1]+d)*(e.q[i+1]-e.q[i])/(e.np[i+1]-e.np[i])+
			(e.np[i+1]-e.np[i]-d)*(e.q[i]-e.q[i-1])/(e.np[i]-e.np[i-1]))
}

func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.np[j]-e.np[i])
}

// Quantile returns the current estimate. Below five observations it is
// the exact interpolated percentile of the samples seen so far; with
// no observations it returns 0.
func (e *P2) Quantile() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(s)
		return percentileSorted(s, e.p*100)
	}
	return e.q[2]
}

// QuantileDuration returns the estimate as a duration, rounding the
// marker height to the nearest nanosecond.
func (e *P2) QuantileDuration() time.Duration {
	return time.Duration(math.Round(e.Quantile()))
}
