package lifecycle

import (
	"strings"
	"testing"
	"time"
)

// TestPolicyNamesInSync: every presented name must be unique and
// resolvable to a constructor. (The shared registry helper enforces
// name↔constructor sync structurally; this pins the public surface.)
func TestPolicyNamesInSync(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range PolicyNames() {
		if seen[n] {
			t.Errorf("duplicate name %s", n)
		}
		seen[n] = true
		if _, err := NewPolicy(n, PolicyConfig{}); err != nil {
			t.Errorf("name %s has no constructor: %v", n, err)
		}
	}
}

// TestNewPolicyConstructsEvery: each registered name must build a
// policy whose Name() round-trips to its registry key.
func TestNewPolicyConstructsEvery(t *testing.T) {
	for _, n := range PolicyNames() {
		p, err := NewPolicy(n, PolicyConfig{TTL: time.Second})
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", n, err)
			continue
		}
		if p.Name() != n {
			t.Errorf("policy %s reports name %s", n, p.Name())
		}
	}
}

// TestNewPolicyCaseInsensitive: lookups must ignore case.
func TestNewPolicyCaseInsensitive(t *testing.T) {
	for _, n := range PolicyNames() {
		for _, variant := range []string{strings.ToLower(n), n[:1] + strings.ToLower(n[1:])} {
			if _, err := NewPolicy(variant, PolicyConfig{}); err != nil {
				t.Errorf("NewPolicy(%q): %v", variant, err)
			}
		}
	}
}

// TestNewPolicyUnknown: unknown names must error, and the error must
// list every valid choice so CLI users can self-correct.
func TestNewPolicyUnknown(t *testing.T) {
	_, err := NewPolicy("nope", PolicyConfig{})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, n := range PolicyNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not mention %s", err, n)
		}
	}
}

// TestPolicyNamesIsACopy: mutating the returned slice must not corrupt
// the registry.
func TestPolicyNamesIsACopy(t *testing.T) {
	a := PolicyNames()
	a[0] = "CLOBBERED"
	if PolicyNames()[0] == "CLOBBERED" {
		t.Fatal("PolicyNames returns the registry's backing array")
	}
	if got := sortedPolicyNames(); len(got) != len(a) {
		t.Fatalf("sorted names length %d, want %d", len(got), len(a))
	}
}

// TestHistogramBuckets: the log-scale bucketing must be monotone and
// the quantile a conservative upper bound.
func TestHistogramBuckets(t *testing.T) {
	if bucketOf(time.Millisecond) != 0 || bucketOf(3*time.Millisecond) != 1 {
		t.Fatal("bucketOf lower buckets wrong")
	}
	if bucketOf(240*time.Hour) != histBuckets-1 {
		t.Fatal("bucketOf must clamp to the open-ended last bucket")
	}
	h := &appHist{}
	for _, iat := range []time.Duration{ms(100), ms(100), ms(100), ms(6000)} {
		h.buckets[bucketOf(iat)]++
		h.count++
	}
	if q := h.quantile(0.5); q < ms(100) || q > ms(256) {
		t.Fatalf("median quantile %v outside the 100ms bucket's bound", q)
	}
	if q := h.quantile(0.99); q < ms(6000) {
		t.Fatalf("p99 quantile %v must cover the 6s outlier", q)
	}
}
