package lifecycle_test

import (
	"fmt"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
)

// ExampleNew walks a container through its lifecycle: the first
// invocation of an application cold-starts (image pull + sandbox
// boot), the released container stays warm under the keep-alive
// policy, and the next invocation reuses it for free.
func ExampleNew() {
	mgr, err := lifecycle.New(lifecycle.Config{
		Policy:      lifecycle.NewFixedTTL(time.Minute),
		MemoryMB:    1024,
		ImagePull:   dist.Constant{Value: 200 * time.Millisecond},
		SandboxBoot: dist.Constant{Value: 50 * time.Millisecond},
	})
	if err != nil {
		panic(err)
	}

	delay, c := mgr.Acquire(0, "fib") // no warm container yet
	fmt.Printf("first:  +%v cold start\n", delay)
	mgr.Release(30*time.Millisecond, c) // invocation finished

	delay, c = mgr.Acquire(100*time.Millisecond, "fib") // within the TTL
	fmt.Printf("second: +%v (warm hit)\n", delay)
	mgr.Release(130*time.Millisecond, c)

	st := mgr.Stats()
	fmt.Printf("warm-hit ratio %.0f%%, mean cold latency %v\n",
		100*st.WarmHitRatio(), st.MeanColdLatency())
	// Output:
	// first:  +250ms cold start
	// second: +0s (warm hit)
	// warm-hit ratio 50%, mean cold latency 250ms
}

// ExampleNewPolicy shows the keep-alive policy registry — the third
// name → constructor registry alongside the scheduler and dispatcher
// ones: lookups are case-insensitive and unknown names fail with the
// full list of choices.
func ExampleNewPolicy() {
	p, err := lifecycle.NewPolicy("hist", lifecycle.PolicyConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name())

	_, err = lifecycle.NewPolicy("FOREVER", lifecycle.PolicyConfig{})
	fmt.Println(err)
	// Output:
	// HIST
	// unknown keep-alive policy "FOREVER" (want one of NONE, TTL, LRU, HIST)
}

// ExamplePolicyNames enumerates the registry, the same list both CLIs
// print in their -h output.
func ExamplePolicyNames() {
	for _, n := range lifecycle.PolicyNames() {
		fmt.Println(n)
	}
	// Output:
	// NONE
	// TTL
	// LRU
	// HIST
}
