package lifecycle

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/simtime"
)

// ms is a test shorthand.
func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// constMgr builds a manager with constant cold-start latency so tests
// can assert exact delays.
func constMgr(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.ImagePull == nil {
		cfg.ImagePull = dist.Constant{Value: ms(200)}
	}
	if cfg.SandboxBoot == nil {
		cfg.SandboxBoot = dist.Constant{Value: ms(50)}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWarmReuse: a released container serves the next same-app arrival
// with zero latency; a different app still pays a cold start.
func TestWarmReuse(t *testing.T) {
	m := constMgr(t, Config{Policy: NewFixedTTL(time.Minute)})
	d, c := m.Acquire(0, "fib")
	if d != ms(250) {
		t.Fatalf("first acquire delay %v, want 250ms", d)
	}
	m.Release(ms(10), c)
	if got := m.WarmIdle("fib"); got != 1 {
		t.Fatalf("warm idle %d, want 1", got)
	}
	d, c2 := m.Acquire(ms(20), "fib")
	if d != 0 {
		t.Fatalf("warm acquire delay %v, want 0", d)
	}
	if c2 != c {
		t.Fatal("warm hit did not reuse the released container")
	}
	if d, _ := m.Acquire(ms(30), "md"); d != ms(250) {
		t.Fatalf("other-app acquire delay %v, want cold 250ms", d)
	}
	st := m.Stats()
	if st.Invocations != 3 || st.WarmHits() != 1 || st.ColdStarts != 2 {
		t.Fatalf("stats = %+v, want 3 invocations, 1 warm, 2 cold", st)
	}
}

// TestBusyContainerNotShared: while a container is busy, a concurrent
// same-app arrival must cold-start its own.
func TestBusyContainerNotShared(t *testing.T) {
	m := constMgr(t, Config{Policy: NewFixedTTL(time.Minute)})
	_, c1 := m.Acquire(0, "fib")
	d, c2 := m.Acquire(ms(1), "fib")
	if d == 0 || c1 == c2 {
		t.Fatal("busy container was shared")
	}
}

// TestTTLExpiry: an idle container ages out after its keep-alive
// window, and a later arrival is cold again.
func TestTTLExpiry(t *testing.T) {
	m := constMgr(t, Config{Policy: NewFixedTTL(ms(100))})
	_, c := m.Acquire(0, "fib")
	m.Release(ms(10), c)
	// Still warm just inside the window.
	if d, c2 := m.Acquire(ms(109), "fib"); d != 0 {
		t.Fatalf("inside TTL: delay %v, want warm", d)
	} else {
		m.Release(ms(120), c2)
	}
	// Expired after the window.
	if d, _ := m.Acquire(ms(221), "fib"); d == 0 {
		t.Fatal("expired container served a warm hit")
	}
	if st := m.Stats(); st.Expirations != 1 {
		t.Fatalf("expirations %d, want 1", st.Expirations)
	}
}

// TestNoneAlwaysCold: the NONE policy discards at release; every
// invocation cold-starts.
func TestNoneAlwaysCold(t *testing.T) {
	m := constMgr(t, Config{Policy: NewNone()})
	at := simtime.Time(0)
	for i := 0; i < 5; i++ {
		d, c := m.Acquire(at, "fib")
		if d == 0 {
			t.Fatalf("invocation %d warm under NONE", i)
		}
		m.Release(at+ms(5), c)
		at += ms(100)
	}
	st := m.Stats()
	if st.WarmHits() != 0 || st.ColdStarts != 5 || st.Discards != 5 {
		t.Fatalf("stats = %+v, want 0 warm, 5 cold, 5 discards", st)
	}
}

// TestLRUEvictionUnderPressure: with capacity for two containers, a
// third app's cold start evicts the least-recently-used idle one.
func TestLRUEvictionUnderPressure(t *testing.T) {
	m := constMgr(t, Config{Policy: NewLRU(), MemoryMB: 256, ContainerMB: 128})
	_, a := m.Acquire(0, "a")
	m.Release(ms(10), a) // idle since 10ms
	_, b := m.Acquire(ms(20), "b")
	m.Release(ms(30), b) // idle since 30ms
	if m.UsedMB() != 256 {
		t.Fatalf("used %d MB, want 256", m.UsedMB())
	}
	// Third app: must evict "a" (older idle), keep "b".
	if d, _ := m.Acquire(ms(40), "c"); d == 0 {
		t.Fatal("app c should cold start")
	}
	if m.WarmIdle("a") != 0 || m.WarmIdle("b") != 1 {
		t.Fatalf("warm pools a=%d b=%d, want LRU eviction of a", m.WarmIdle("a"), m.WarmIdle("b"))
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	if m.UsedMB() != 256 {
		t.Fatalf("used %d MB after eviction, want 256", m.UsedMB())
	}
}

// TestOvercommitWhenAllBusy: running containers are never evicted; a
// cold start beyond capacity overcommits and records the excess.
func TestOvercommitWhenAllBusy(t *testing.T) {
	m := constMgr(t, Config{Policy: NewLRU(), MemoryMB: 128, ContainerMB: 128})
	m.Acquire(0, "a")
	m.Acquire(ms(1), "b") // no idle container to evict
	st := m.Stats()
	if m.UsedMB() != 256 || st.OvercommitMB != 128 {
		t.Fatalf("used %d MB, overcommit %d MB; want 256/128", m.UsedMB(), st.OvercommitMB)
	}
}

// TestHistogramKeepsPeriodicAppWarm: after histMinSamples arrivals with
// a stable period, HIST must hold the container across gaps a short
// fixed TTL would miss.
func TestHistogramKeepsPeriodicAppWarm(t *testing.T) {
	period := 30 * time.Second
	runPolicy := func(p Policy) Stats {
		m := constMgr(t, Config{Policy: p})
		at := simtime.Time(0)
		for i := 0; i < 20; i++ {
			_, c := m.Acquire(at, "periodic")
			m.Release(at+ms(50), c)
			at += period
		}
		return m.Stats()
	}
	hist := runPolicy(NewHistogram(time.Second))
	ttl := runPolicy(NewFixedTTL(time.Second))
	if ttl.WarmHits() != 0 {
		t.Fatalf("1s TTL should miss 30s-period arrivals, got %d warm hits", ttl.WarmHits())
	}
	// HIST needs histMinSamples IATs to learn; afterwards every arrival
	// must land warm (kept or pre-warmed).
	if hist.WarmHits() < 20-histMinSamples-2 {
		t.Fatalf("HIST warm hits %d, want >= %d (stats %+v)", hist.WarmHits(), 20-histMinSamples-2, hist)
	}
	if hist.Prewarms == 0 {
		t.Fatal("HIST should pre-warm for a 30s-period app")
	}
}

// TestHistogramLongGapPrewarm: for an app whose period exceeds the
// keep-alive cap (3 h vs the 1 h histKeepCap), the pre-warm instant
// must still land before the arrival with a usable resident window —
// the regression where PrewarmFor went negative and pre-warmed
// containers expired the moment they materialized.
func TestHistogramLongGapPrewarm(t *testing.T) {
	m := constMgr(t, Config{Policy: NewHistogram(time.Second)})
	period := 3 * time.Hour
	at := simtime.Time(0)
	for i := 0; i < 10; i++ {
		_, c := m.Acquire(at, "cron3h")
		m.Release(at+ms(50), c)
		at += period
	}
	st := m.Stats()
	if st.Prewarms == 0 {
		t.Fatalf("no pre-warms materialized for a 3h-period app: %+v", st)
	}
	if st.PrewarmHits == 0 {
		t.Fatalf("pre-warmed containers never served an arrival: %+v", st)
	}
	if st.WarmHits() < 10-histMinSamples-2 {
		t.Fatalf("warm hits %d, want >= %d (stats %+v)", st.WarmHits(), 10-histMinSamples-2, st)
	}
}

// TestPrewarmDedupe: only one pre-warm may be pending per app, however
// many containers are released.
func TestPrewarmDedupe(t *testing.T) {
	p := NewHistogram(time.Second)
	m := constMgr(t, Config{Policy: p})
	// Teach the histogram a 30s period.
	at := simtime.Time(0)
	for i := 0; i < histMinSamples+1; i++ {
		_, c := m.Acquire(at, "x")
		m.Release(at+ms(10), c)
		at += 30 * time.Second
	}
	// Two concurrent containers released back to back must not schedule
	// two pre-warms.
	_, c1 := m.Acquire(at, "x")
	_, c2 := m.Acquire(at+ms(1), "x")
	m.Release(at+ms(20), c1)
	m.Release(at+ms(21), c2)
	if n := len(m.pending); n > 1 {
		t.Fatalf("%d pending pre-warms for one app, want <= 1", n)
	}
}

// TestDeterministicReplay: two managers with the same seed and the same
// call sequence must report identical stats and sample identical
// cold-start latencies.
func TestDeterministicReplay(t *testing.T) {
	mk := func() *Manager {
		m, err := New(Config{Policy: NewHistogram(0), MemoryMB: 512, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	run := func(m *Manager) ([]time.Duration, Stats) {
		var lats []time.Duration
		apps := []string{"a", "b", "a", "c", "a", "b", "a", "a", "c", "b"}
		var held []*Container
		at := simtime.Time(0)
		for i, app := range apps {
			d, c := m.Acquire(at, app)
			lats = append(lats, d)
			held = append(held, c)
			if i%2 == 1 {
				m.Release(at+ms(30), held[i-1])
				m.Release(at+ms(40), held[i])
			}
			at += ms(750)
		}
		return lats, m.Stats()
	}
	l1, s1 := run(mk())
	l2, s2 := run(mk())
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("latency %d diverged: %v vs %v", i, l1[i], l2[i])
		}
	}
}

// TestNewValidation: nonsense configs must be rejected with a clear
// error; defaults must fill zero values.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MemoryMB: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := New(Config{ContainerMB: -1}); err == nil {
		t.Fatal("negative footprint accepted")
	}
	if _, err := New(Config{MemoryMB: 64}); err == nil {
		t.Fatal("capacity below one container accepted")
	}
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy().Name() != "TTL" {
		t.Fatalf("default policy %s, want TTL", m.Policy().Name())
	}
}
