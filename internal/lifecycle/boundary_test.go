package lifecycle

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/simtime"
)

// TestExpiryInstantBoundary: the keep-alive window is half-open
// [release, release+keep): an arrival strictly inside is warm, an
// arrival exactly at the expiry instant is cold (the expiry event fires
// before same-instant acquires, matching the manager's at <= now event
// discipline).
func TestExpiryInstantBoundary(t *testing.T) {
	cases := []struct {
		name    string
		acquire simtime.Time
		warm    bool
	}{
		{"just-inside", ms(10) + ms(100) - 1, true},
		{"exactly-at-expiry", ms(10) + ms(100), false},
		{"just-past", ms(10) + ms(100) + 1, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := constMgr(t, Config{Policy: NewFixedTTL(ms(100))})
			_, ct := m.Acquire(0, "fib")
			m.Release(ms(10), ct)
			d, _ := m.Acquire(c.acquire, "fib")
			if got := d == 0; got != c.warm {
				t.Fatalf("acquire at %v: warm=%v, want %v", c.acquire, got, c.warm)
			}
		})
	}
}

// TestTTLBoundaryConfigs: non-positive TTL values take the documented
// DefaultTTL rather than expiring instantly (or panicking), through
// both the constructor and the registry path.
func TestTTLBoundaryConfigs(t *testing.T) {
	for _, ttl := range []time.Duration{0, -time.Second} {
		m := constMgr(t, Config{Policy: NewFixedTTL(ttl)})
		_, c := m.Acquire(0, "fib")
		m.Release(ms(10), c)
		// DefaultTTL is 10 minutes: an arrival a minute later is warm.
		if d, _ := m.Acquire(simtime.Time(time.Minute), "fib"); d != 0 {
			t.Fatalf("ttl=%v: arrival inside DefaultTTL was cold", ttl)
		}
	}
	p, err := NewPolicy("TTL", PolicyConfig{TTL: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d := p.OnRelease(0, "fib"); d.KeepWarm != DefaultTTL {
		t.Fatalf("registry TTL=0 keep-warm %v, want DefaultTTL", d.KeepWarm)
	}
}

// TestMemoryCapacityBoundaries: MemoryMB == 0 means unlimited (never an
// eviction), capacity exactly one container is legal (the busy
// container overcommits a concurrent second app), and capacity below
// one container is rejected at construction.
func TestMemoryCapacityBoundaries(t *testing.T) {
	// Unlimited: hundreds of idle containers, zero evictions.
	m := constMgr(t, Config{Policy: NewLRU(), MemoryMB: 0})
	at := simtime.Time(0)
	for i := 0; i < 100; i++ {
		_, c := m.Acquire(at, string(rune('a'+i%26))+"x")
		m.Release(at+ms(1), c)
		at += ms(2)
	}
	if st := m.Stats(); st.Evictions != 0 || st.Expirations != 0 {
		t.Fatalf("unlimited capacity evicted/expired: %+v", st)
	}

	// Exactly one container of capacity.
	m = constMgr(t, Config{Policy: NewLRU(), MemoryMB: DefaultContainerMB})
	_, c1 := m.Acquire(0, "a")
	_, c2 := m.Acquire(ms(1), "b") // c1 busy: cannot evict, must overcommit
	if st := m.Stats(); st.OvercommitMB != DefaultContainerMB {
		t.Fatalf("overcommit %d MB, want %d", st.OvercommitMB, DefaultContainerMB)
	}
	m.Release(ms(2), c1)
	m.Release(ms(3), c2)
	// A third app's cold start now evicts idle LRU containers back under
	// capacity.
	m.Acquire(ms(4), "c")
	if m.UsedMB() != DefaultContainerMB {
		t.Fatalf("used %d MB after eviction, want %d", m.UsedMB(), DefaultContainerMB)
	}

	// One MB short of a container is rejected.
	if _, err := New(Config{MemoryMB: DefaultContainerMB - 1}); err == nil {
		t.Fatal("capacity below one container accepted")
	}
}

// TestPrewarmAtExpiryInstant: a pre-warm event and an expiry event at
// the same instant fire in scheduling order (expiry first — it was
// armed at the same Release that scheduled the pre-warm), and an
// arrival at exactly the pre-warm instant finds the container warm —
// pre-warms never fire late.
func TestPrewarmAtExpiryInstant(t *testing.T) {
	m := constMgr(t, Config{Policy: NewHistogram(time.Second)})
	// Teach a 30s period so the histogram schedules pre-warms.
	period := 30 * time.Second
	at := simtime.Time(0)
	var rel simtime.Time
	for i := 0; i < histMinSamples+1; i++ {
		_, c := m.Acquire(at, "cron")
		rel = at + ms(20)
		m.Release(rel, c)
		at += period
	}
	if len(m.pending) != 1 {
		t.Fatalf("%d pending pre-warms, want 1", len(m.pending))
	}
	prewarmAt := m.pending["cron"].at
	if prewarmAt <= rel {
		t.Fatalf("pre-warm at %v not after release %v", prewarmAt, rel)
	}
	// Acquire exactly at the pre-warm instant: the event fires first
	// (at <= now), so this is a warm, pre-warmed hit.
	d, _ := m.Acquire(prewarmAt, "cron")
	if d != 0 {
		t.Fatalf("arrival exactly at the pre-warm instant was cold (delay %v)", d)
	}
	if st := m.Stats(); st.PrewarmHits == 0 {
		t.Fatalf("pre-warm hit not recorded: %+v", st)
	}
}

// TestHistogramFloorRule: the fallback window is a floor HIST only ever
// extends. In particular, an app whose predicted gap lies beyond the
// pre-warm threshold but *inside* the fallback window must keep the
// full fallback window (the old grace-period cut discarded after 1s,
// making HIST colder than the TTL policy it hybridizes).
func TestHistogramFloorRule(t *testing.T) {
	fallback := 2 * time.Minute
	p := NewHistogram(fallback)
	at := simtime.Time(0)
	period := 30 * time.Second // > histPrewarmMin, < fallback
	for i := 0; i < histMinSamples+2; i++ {
		p.OnArrival(at, "app")
		at += period
	}
	d := p.OnRelease(at, "app")
	if d.KeepWarm < fallback {
		t.Fatalf("keep-warm %v below the %v floor", d.KeepWarm, fallback)
	}
	if d.PrewarmIn != 0 {
		t.Fatalf("pre-warm scheduled inside the floor window (in %v)", d.PrewarmIn)
	}

	// Beyond the floor, prediction engages — but the container still
	// idles at least the floor before going cold.
	pLong := NewHistogram(time.Second)
	at = 0
	for i := 0; i < histMinSamples+2; i++ {
		pLong.OnArrival(at, "cron")
		at += 30 * time.Second
	}
	d = pLong.OnRelease(at, "cron")
	if d.PrewarmIn == 0 {
		t.Fatal("no pre-warm for a 30s-period app with a 1s floor")
	}
	if d.KeepWarm < time.Second {
		t.Fatalf("pre-warm branch keep-warm %v below the 1s floor", d.KeepWarm)
	}

	// A fallback beyond histKeepCap is a user decision the cap must not
	// cut: the floor rule outranks the prediction cap on every path.
	pHuge := NewHistogram(2 * time.Hour)
	at = 0
	for i := 0; i < histMinSamples+2; i++ {
		pHuge.OnArrival(at, "rare")
		at += 30 * time.Second
	}
	if d := pHuge.OnRelease(at, "rare"); d.KeepWarm < 2*time.Hour {
		t.Fatalf("keep-warm %v below the configured 2h floor (histKeepCap must not cut it)", d.KeepWarm)
	}
}
