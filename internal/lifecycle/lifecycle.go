// Package lifecycle models container lifecycles on a serverless host:
// per-application warm pools, a configurable memory capacity, and
// pluggable keep-alive/eviction policies — the state the paper's
// evaluation deliberately removes (§IX disables auto-scaling and
// pre-warms every container) and that real serverless schedulers live
// and die by.
//
// The central type is Manager, one per simulated host. An invocation
// Acquires a container at its arrival instant: a warm, idle container
// for the application serves it immediately (a warm hit), while a miss
// creates a fresh container and pays a sampled cold-start latency
// (image pull + sandbox boot, both dist.Distribution) that the caller
// injects into the simulation timeline before the task becomes
// runnable. When the invocation finishes, Release returns the
// container to the warm pool under the Policy's keep-alive decision:
// discard immediately (NONE), stay warm for a window (TTL, HIST), or
// stay until memory pressure evicts it (LRU). History-driven policies
// (HIST) may additionally schedule a pre-warmed container just before
// the application's predicted next arrival.
//
// Determinism: a Manager is a deterministic function of its Config and
// the sequence of Acquire/Release/AdvanceTo calls, which drivers must
// issue in non-decreasing virtual-time order (the discrete-event loops
// in Run, internal/faas, and internal/cluster do). Internal expiry and
// pre-warm events live on a (time, sequence)-ordered queue processed
// lazily as time advances, so same-seed replays are byte-identical.
// Cold-start latencies come from one seeded RNG stream; no wall clock,
// no global randomness.
package lifecycle

import (
	"container/heap"
	"fmt"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
)

// DefaultContainerMB is the per-container memory footprint assumed when
// Config.ContainerMB is zero: the 128 MB minimum allocation of the
// major FaaS providers.
const DefaultContainerMB = 128

// Config parameterizes a Manager.
type Config struct {
	// Policy is the keep-alive/eviction policy; nil defaults to a
	// FIXED-TTL policy with DefaultTTL.
	Policy Policy
	// MemoryMB is the host's container memory capacity; 0 means
	// unlimited. When a cold start would exceed it, idle containers are
	// evicted least-recently-used first. Running containers are never
	// evicted: if the capacity cannot be met from idle containers alone
	// the host overcommits and the excess is recorded in Stats.
	MemoryMB int
	// ContainerMB is the per-container footprint (default
	// DefaultContainerMB).
	ContainerMB int
	// ImagePull samples the image-pull share of a cold start; nil
	// defaults to DefaultImagePull. Pulls are the dominant, highly
	// variable cost (container registries, layer caches).
	ImagePull dist.Distribution
	// SandboxBoot samples the sandbox create+boot share of a cold
	// start; nil defaults to DefaultSandboxBoot.
	SandboxBoot dist.Distribution
	// Seed drives the cold-start latency stream.
	Seed uint64
}

// DefaultImagePull returns the default image-pull latency distribution:
// a lognormal centred near 300 ms with a heavy right tail, the shape
// registry pulls exhibit when layers miss the node cache.
func DefaultImagePull() dist.Distribution {
	return dist.Lognormal{Mu: 19.52, Sigma: 0.5} // median ~300ms
}

// DefaultSandboxBoot returns the default sandbox boot latency
// distribution: 50–150 ms uniform, the order of a container runtime
// create+start on a warm node.
func DefaultSandboxBoot() dist.Distribution {
	return dist.Uniform{Lo: 50 * time.Millisecond, Hi: 150 * time.Millisecond}
}

// Container is one sandbox instance for an application. The zero value
// is never used; containers are created by Manager.Acquire (cold
// starts) and by pre-warm events.
type Container struct {
	// App is the application the container serves.
	App string
	// Prewarmed marks containers created by a policy pre-warm rather
	// than an on-demand cold start.
	Prewarmed bool

	mb        int
	busy      bool
	idleSince simtime.Time // when the container last went idle
	lastUsed  simtime.Time // last Acquire or creation instant
	expires   *event       // pending expiry while idle
	dead      bool
}

// Stats are a Manager's cumulative counters. The embedded
// metrics.ColdStartStats carries the reporting trio — Invocations
// (Acquire calls), ColdStarts (on-demand container creations), and
// ColdLatency (summed sampled latency) — from which warm hits, the
// warm-hit ratio, and table columns derive.
type Stats struct {
	metrics.ColdStartStats
	// PrewarmHits is the subset of warm hits served by a policy
	// pre-warmed container's first use.
	PrewarmHits int
	// Expirations counts idle containers aged out by their keep-alive
	// window; Evictions counts idle containers removed early under
	// memory pressure; Discards counts containers a policy declined to
	// keep at all (KeepWarm == 0).
	Expirations int
	Evictions   int
	Discards    int
	// Prewarms counts pre-warmed containers materialized; PrewarmSkips
	// counts pre-warms dropped because they did not fit in memory.
	Prewarms     int
	PrewarmSkips int
	// MemPeakMB is the high-water mark of container memory, including
	// any overcommit by running containers.
	MemPeakMB int
	// OvercommitMB is the high-water mark of memory above capacity
	// (always zero when MemoryMB is 0 or eviction kept up).
	OvercommitMB int
}

// Summary renders the one-line cold-start report the CLIs print,
// labeled with the policy's name.
func (s Stats) Summary(policy string) string {
	return fmt.Sprintf("keep-alive %s: %d cold starts (%.1f%% warm hits), mean cold latency %s, %d evictions, %d expirations, %d pre-warms, peak memory %d MB",
		strings.ToUpper(policy), s.ColdStarts, 100*s.WarmHitRatio(),
		metrics.FormatDuration(s.MeanColdLatency()), s.Evictions, s.Expirations, s.Prewarms, s.MemPeakMB)
}

// Add accumulates other into s (merging per-host stats cluster-wide).
func (s *Stats) Add(other Stats) {
	s.Invocations += other.Invocations
	s.PrewarmHits += other.PrewarmHits
	s.ColdStarts += other.ColdStarts
	s.ColdLatency += other.ColdLatency
	s.Expirations += other.Expirations
	s.Evictions += other.Evictions
	s.Discards += other.Discards
	s.Prewarms += other.Prewarms
	s.PrewarmSkips += other.PrewarmSkips
	s.MemPeakMB += other.MemPeakMB
	s.OvercommitMB += other.OvercommitMB
}

// eventKind distinguishes the Manager's internal timeline events.
type eventKind int

const (
	evExpire  eventKind = iota // an idle container's keep-alive window ends
	evPrewarm                  // a policy-scheduled pre-warm materializes
)

// event is one entry of the Manager's lazy (time, sequence)-ordered
// queue. Expiry events are invalidated by clearing c.expires when the
// container is reused; pre-warm events carry the app and idle window.
type event struct {
	at   simtime.Time
	seq  uint64
	kind eventKind
	c    *Container    // evExpire target
	app  string        // evPrewarm application
	keep time.Duration // evPrewarm idle window once materialized
	dead bool
}

// eventHeap is a min-heap by (at, seq) so same-instant events fire in
// scheduling order, keeping replays deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Manager is the container lifecycle state of one host. It is not safe
// for concurrent use; simulations are single-threaded by design.
type Manager struct {
	cfg    Config
	policy Policy
	r      *rng.RNG

	idle     map[string][]*Container // per-app idle pool, most recent last
	pending  map[string]*event       // at most one scheduled pre-warm per app
	events   eventHeap
	seq      uint64
	now      simtime.Time
	usedMB   int
	lruClock int
	stats    Stats
}

// New builds a Manager. Negative capacities are rejected; zero values
// take the documented defaults.
func New(cfg Config) (*Manager, error) {
	if cfg.MemoryMB < 0 {
		return nil, fmt.Errorf("lifecycle: negative memory capacity %d MB", cfg.MemoryMB)
	}
	if cfg.ContainerMB < 0 {
		return nil, fmt.Errorf("lifecycle: negative container footprint %d MB", cfg.ContainerMB)
	}
	if cfg.ContainerMB == 0 {
		cfg.ContainerMB = DefaultContainerMB
	}
	if cfg.MemoryMB > 0 && cfg.MemoryMB < cfg.ContainerMB {
		return nil, fmt.Errorf("lifecycle: capacity %d MB below one container (%d MB)", cfg.MemoryMB, cfg.ContainerMB)
	}
	if cfg.Policy == nil {
		cfg.Policy = NewFixedTTL(DefaultTTL)
	}
	if cfg.ImagePull == nil {
		cfg.ImagePull = DefaultImagePull()
	}
	if cfg.SandboxBoot == nil {
		cfg.SandboxBoot = DefaultSandboxBoot()
	}
	return &Manager{
		cfg:     cfg,
		policy:  cfg.Policy,
		r:       rng.New(cfg.Seed ^ 0xc01d),
		idle:    map[string][]*Container{},
		pending: map[string]*event{},
	}, nil
}

// NewByName builds a manager running the named keep-alive policy with
// the given memory budget and fixed-TTL/fallback window — the
// construction path the CLIs share behind their
// -keepalive/-memory/-keepalive-ttl flags.
func NewByName(policy string, memoryMB int, ttl time.Duration, seed uint64) (*Manager, error) {
	p, err := NewPolicy(policy, PolicyConfig{TTL: ttl, Seed: seed})
	if err != nil {
		return nil, err
	}
	return New(Config{Policy: p, MemoryMB: memoryMB, Seed: seed})
}

// Policy returns the manager's keep-alive policy.
func (m *Manager) Policy() Policy { return m.policy }

// Stats returns a snapshot of the cumulative counters.
func (m *Manager) Stats() Stats { return m.stats }

// Now returns the latest virtual time the manager has observed.
func (m *Manager) Now() simtime.Time { return m.now }

// AdvanceTo processes all expiry and pre-warm events up to now in
// timeline order. Acquire and Release advance implicitly; external
// drivers (the cluster loop, a dispatcher about to read WarmIdle) call
// it so policy state is current at decision instants.
func (m *Manager) AdvanceTo(now simtime.Time) {
	if now > m.now {
		m.now = now
	}
	for len(m.events) > 0 && m.events[0].at <= now {
		e := heap.Pop(&m.events).(*event)
		if e.dead {
			continue
		}
		switch e.kind {
		case evExpire:
			c := e.c
			if c.dead || c.busy || c.expires != e {
				continue
			}
			c.expires = nil
			m.removeIdle(c)
			m.destroy(c)
			m.stats.Expirations++
		case evPrewarm:
			if m.pending[e.app] == e {
				delete(m.pending, e.app)
			}
			m.materializePrewarm(e)
		}
	}
}

// Acquire requests a container for app at virtual time now. On a warm
// hit it returns (0, container); on a miss it creates the container and
// returns the sampled cold-start latency the caller must inject before
// the invocation becomes runnable. The container stays busy until
// Release.
func (m *Manager) Acquire(now simtime.Time, app string) (time.Duration, *Container) {
	m.AdvanceTo(now)
	m.stats.Invocations++
	m.policy.OnArrival(now, app)

	if pool := m.idle[app]; len(pool) > 0 {
		// Reuse the most recently released container (LIFO keeps the
		// hottest sandbox hot and lets the colder end age out).
		c := pool[len(pool)-1]
		m.idle[app] = pool[:len(pool)-1]
		m.cancelExpiry(c)
		c.busy = true
		c.lastUsed = now
		if c.Prewarmed {
			m.stats.PrewarmHits++
			c.Prewarmed = false
		}
		return 0, c
	}

	lat := m.sampleColdStart()
	c := &Container{App: app, mb: m.cfg.ContainerMB, busy: true, lastUsed: now}
	m.reserve(c.mb)
	m.stats.ColdStarts++
	m.stats.ColdLatency += lat
	return lat, c
}

// Release returns a container at its invocation's finish time. The
// policy decides whether it stays warm and whether a pre-warm should be
// scheduled for the application's predicted next arrival.
func (m *Manager) Release(now simtime.Time, c *Container) {
	if c == nil {
		return
	}
	if !c.busy || c.dead {
		panic("lifecycle: Release of a container that is not busy")
	}
	m.AdvanceTo(now)
	c.busy = false
	c.idleSince = now

	d := m.policy.OnRelease(now, c.App)
	if d.KeepWarm == 0 {
		m.destroy(c)
		m.stats.Discards++
	} else {
		m.idle[c.App] = append(m.idle[c.App], c)
		m.scheduleExpiry(now, c, d.KeepWarm)
	}
	if d.PrewarmIn > 0 {
		m.schedulePrewarm(now, c.App, d)
	}
}

// WarmIdle returns the number of idle warm containers held for app as
// of the last observed virtual time (callers that can see a later clock
// should AdvanceTo first). Affinity-aware dispatchers read it.
func (m *Manager) WarmIdle(app string) int { return len(m.idle[app]) }

// UsedMB returns current container memory, busy plus idle.
func (m *Manager) UsedMB() int { return m.usedMB }

// ---- internals ----

// sampleColdStart draws one cold-start latency: image pull plus sandbox
// boot, each clamped non-negative.
func (m *Manager) sampleColdStart() time.Duration {
	lat := m.cfg.ImagePull.Sample(m.r) + m.cfg.SandboxBoot.Sample(m.r)
	if lat < 0 {
		lat = 0
	}
	return lat
}

// reserve charges mb of container memory for an on-demand cold start,
// evicting idle containers least-recently-used first when over
// capacity. Running containers cannot be evicted, so a host whose
// capacity is consumed by running functions overcommits and records
// the excess.
func (m *Manager) reserve(mb int) {
	cap := m.cfg.MemoryMB
	if cap > 0 {
		for m.usedMB+mb > cap && m.evictLRU() {
		}
		if over := m.usedMB + mb - cap; over > m.stats.OvercommitMB {
			m.stats.OvercommitMB = over
		}
	}
	m.usedMB += mb
	if m.usedMB > m.stats.MemPeakMB {
		m.stats.MemPeakMB = m.usedMB
	}
}

// evictLRU removes the idle container with the oldest idleSince
// (ties by app name, then pool position, for determinism). It returns
// false when no idle container remains.
func (m *Manager) evictLRU() bool {
	var victim *Container
	victimApp := ""
	for app, pool := range m.idle {
		for _, c := range pool {
			if victim == nil || c.idleSince < victim.idleSince ||
				(c.idleSince == victim.idleSince && app < victimApp) {
				victim, victimApp = c, app
			}
		}
	}
	if victim == nil {
		return false
	}
	m.removeIdle(victim)
	m.cancelExpiry(victim)
	m.destroy(victim)
	m.stats.Evictions++
	return true
}

// removeIdle deletes c from its app pool, preserving order.
func (m *Manager) removeIdle(c *Container) {
	pool := m.idle[c.App]
	for i, o := range pool {
		if o == c {
			m.idle[c.App] = append(pool[:i], pool[i+1:]...)
			return
		}
	}
	panic("lifecycle: idle container missing from its pool")
}

// destroy frees a container's memory and marks it unusable.
func (m *Manager) destroy(c *Container) {
	m.usedMB -= c.mb
	c.dead = true
}

// scheduleExpiry arms c's keep-alive window. KeepForever installs no
// event: the container stays until evicted.
func (m *Manager) scheduleExpiry(now simtime.Time, c *Container, keep time.Duration) {
	if keep == KeepForever {
		c.expires = nil
		return
	}
	e := &event{at: now + keep, seq: m.seq, kind: evExpire, c: c}
	m.seq++
	c.expires = e
	heap.Push(&m.events, e)
}

// cancelExpiry invalidates a pending expiry when a container is reused
// or evicted early.
func (m *Manager) cancelExpiry(c *Container) {
	if c.expires != nil {
		c.expires.dead = true
		c.expires = nil
	}
}

// schedulePrewarm arms at most one pending pre-warm per application.
func (m *Manager) schedulePrewarm(now simtime.Time, app string, d Decision) {
	if m.pending[app] != nil {
		return
	}
	e := &event{at: now + d.PrewarmIn, seq: m.seq, kind: evPrewarm, app: app, keep: d.PrewarmFor}
	m.seq++
	m.pending[app] = e
	heap.Push(&m.events, e)
}

// materializePrewarm creates the pre-warmed idle container if it fits
// without evicting anyone (pre-warms are best-effort).
func (m *Manager) materializePrewarm(e *event) {
	mb := m.cfg.ContainerMB
	if cap := m.cfg.MemoryMB; cap > 0 && m.usedMB+mb > cap {
		m.stats.PrewarmSkips++
		return
	}
	m.usedMB += mb
	if m.usedMB > m.stats.MemPeakMB {
		m.stats.MemPeakMB = m.usedMB
	}
	c := &Container{App: e.app, Prewarmed: true, mb: mb, idleSince: e.at, lastUsed: e.at}
	m.idle[e.app] = append(m.idle[e.app], c)
	m.stats.Prewarms++
	keep := e.keep
	if keep == 0 {
		keep = DefaultTTL
	}
	m.scheduleExpiry(e.at, c, keep)
}
