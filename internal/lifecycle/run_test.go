package lifecycle_test

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// denseSource yields n sequential same-app invocations: 10 ms of CPU
// every 50 ms, so at most one is in flight and the pool never needs a
// second container.
func denseSource(n int) trace.Source {
	tasks := make([]*task.Task, n)
	for i := range tasks {
		tasks[i] = task.New(i, time.Duration(i)*50*time.Millisecond, 10*time.Millisecond)
		tasks[i].App = "fib"
	}
	return trace.FromTasks("dense", tasks)
}

// runPolicy drives src under p with a constant 30 ms cold start —
// shorter than the dense source's 50 ms gap, so a single container can
// serve the whole stream once warm.
func runPolicy(t *testing.T, p lifecycle.Policy, src trace.Source) (*lifecycle.Manager, []*task.Task) {
	t.Helper()
	mgr, err := lifecycle.New(lifecycle.Config{
		Policy:      p,
		ImagePull:   dist.Constant{Value: 20 * time.Millisecond},
		SandboxBoot: dist.Constant{Value: 10 * time.Millisecond},
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedulers.New("CFS")
	if err != nil {
		t.Fatal(err)
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: 4}, s)
	if _, err := lifecycle.Run(src, mgr, eng); err != nil {
		t.Fatal(err)
	}
	return mgr, eng.Tasks()
}

// TestFixedTTLDenseAllWarm: under an infinite-memory FIXED-TTL policy
// with dense arrivals, every invocation after the compulsory first cold
// start is a warm hit — the 100%-warm bound of the satellite checklist.
func TestFixedTTLDenseAllWarm(t *testing.T) {
	const n = 200
	mgr, tasks := runPolicy(t, lifecycle.NewFixedTTL(time.Minute), denseSource(n))
	st := mgr.Stats()
	if st.ColdStarts != 1 || st.WarmHits() != n-1 {
		t.Fatalf("stats %+v, want exactly 1 compulsory cold start and %d warm hits", st, n-1)
	}
	for _, tk := range tasks {
		if tk.Turnaround() < 0 {
			t.Fatalf("task %d unfinished", tk.ID)
		}
	}
}

// TestNoneDenseAllCold: under NONE the warm-hit ratio is 0% and every
// task's turnaround includes its cold-start latency.
func TestNoneDenseAllCold(t *testing.T) {
	const n = 50
	mgr, tasks := runPolicy(t, lifecycle.NewNone(), denseSource(n))
	st := mgr.Stats()
	if st.WarmHits() != 0 || st.ColdStarts != n {
		t.Fatalf("stats %+v, want 0 warm hits and %d cold starts", st, n)
	}
	if st.WarmHitRatio() != 0 {
		t.Fatalf("warm-hit ratio %f, want 0", st.WarmHitRatio())
	}
	// Cold latency is on the critical path: minimum turnaround is the
	// service time plus the smallest possible cold start.
	for _, tk := range tasks {
		if tk.Turnaround() < tk.Service {
			t.Fatalf("task %d turnaround %v below service %v", tk.ID, tk.Turnaround(), tk.Service)
		}
	}
	if mean := (metrics.Run{Tasks: tasks}).MeanTurnaround(); mean < st.MeanColdLatency() {
		t.Fatalf("mean turnaround %v does not reflect mean cold latency %v", mean, st.MeanColdLatency())
	}
}

// TestRunDeterministic: same seed/spec/policy → byte-identical metrics,
// the standalone half of the determinism criterion (the cluster half
// lives in internal/cluster).
func TestRunDeterministic(t *testing.T) {
	run := func() ([]time.Duration, lifecycle.Stats) {
		src := workload.AzureSampledStream(workload.AzureSampledSpec{
			N: 400, Cores: 4, Load: 0.9, Seed: 42,
			Apps: []workload.AppChoice{
				{Profile: workload.AppFib, Weight: 0.5},
				{Profile: workload.AppMd, Weight: 0.25},
				{Profile: workload.AppSa, Weight: 0.25},
			},
		})
		mgr, err := lifecycle.New(lifecycle.Config{
			Policy:   lifecycle.NewHistogram(0),
			MemoryMB: 1024,
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := schedulers.New("SFS")
		if err != nil {
			t.Fatal(err)
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: 4}, s)
		if _, err := lifecycle.Run(src, mgr, eng); err != nil {
			t.Fatal(err)
		}
		var tas []time.Duration
		for _, tk := range eng.Tasks() {
			tas = append(tas, tk.Turnaround())
		}
		return tas, mgr.Stats()
	}
	ta1, st1 := run()
	ta2, st2 := run()
	if st1 != st2 {
		t.Fatalf("lifecycle stats diverged across identical runs:\n%+v\n%+v", st1, st2)
	}
	for i := range ta1 {
		if ta1[i] != ta2[i] {
			t.Fatalf("task %d turnaround diverged: %v vs %v", i, ta1[i], ta2[i])
		}
	}
}

// TestRunColdDelaysArrival: a constant-latency cold start must shift
// completion by exactly that latency relative to a pre-warmed run.
func TestRunColdDelaysArrival(t *testing.T) {
	mk := func() trace.Source {
		tk := task.New(0, 0, 20*time.Millisecond)
		tk.App = "solo"
		return trace.FromTasks("solo", []*task.Task{tk})
	}
	cold, err := lifecycle.New(lifecycle.Config{
		Policy:      lifecycle.NewNone(),
		ImagePull:   dist.Constant{Value: 300 * time.Millisecond},
		SandboxBoot: dist.Constant{Value: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := schedulers.New("FIFO")
	eng := cpusim.NewEngine(cpusim.Config{Cores: 1}, s)
	if _, err := lifecycle.Run(mk(), cold, eng); err != nil {
		t.Fatal(err)
	}
	got := eng.Tasks()[0].Turnaround()
	want := 20*time.Millisecond + 400*time.Millisecond
	if got != want {
		t.Fatalf("turnaround %v, want service+cold = %v", got, want)
	}
	if eng.Tasks()[0].Arrival != 0 {
		t.Fatalf("original arrival not restored: %v", eng.Tasks()[0].Arrival)
	}
}
