package lifecycle

import (
	"time"

	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
)

// HostStage adapts a container lifecycle Manager to the host-runtime
// stage pipeline: every submitted invocation acquires a warm or cold
// container at its placement instant (a cold start delays the
// engine-visible arrival), and the container returns to the warm pool
// the instant the invocation finishes. One HostStage serves one host;
// it tracks which container each in-flight invocation holds.
type HostStage struct {
	mgr   *Manager
	owner map[*task.Task]*Container
}

var _ host.Stage = (*HostStage)(nil)

// NewHostStage wraps mgr as a pipeline stage.
func NewHostStage(mgr *Manager) *HostStage {
	return &HostStage{mgr: mgr, owner: map[*task.Task]*Container{}}
}

// BeforeSubmit acquires t's container as of the placement instant and
// reports the cold-start delay (zero on a warm hit).
func (s *HostStage) BeforeSubmit(at simtime.Time, t *task.Task) time.Duration {
	delay, c := s.mgr.Acquire(at, t.App)
	s.owner[t] = c
	return delay
}

// OnFinish releases t's container back to the warm pool.
func (s *HostStage) OnFinish(at simtime.Time, t *task.Task) {
	if c := s.owner[t]; c != nil {
		s.mgr.Release(at, c)
		delete(s.owner, t)
	}
}
