package lifecycle

import (
	"math/bits"
	"time"

	"github.com/serverless-sched/sfs/internal/registry"
	"github.com/serverless-sched/sfs/internal/simtime"
)

// DefaultTTL is the fixed keep-alive window used when none is
// configured: 10 minutes, the order of the major providers' published
// idle timeouts.
const DefaultTTL = 10 * time.Minute

// KeepForever is the Decision.KeepWarm value that keeps a container
// warm until memory pressure evicts it (the LRU policy's answer).
const KeepForever time.Duration = -1

// Decision is a policy's answer when a container goes idle.
type Decision struct {
	// KeepWarm is the idle keep-alive window from the release instant:
	// 0 discards the container immediately, KeepForever keeps it until
	// evicted, any positive duration expires it after that long idle.
	KeepWarm time.Duration
	// PrewarmIn, when positive, asks the manager to materialize a fresh
	// warm container for the application that much later — just before
	// a predicted next arrival. At most one pre-warm is pending per
	// application; pre-warms are best-effort and never evict.
	PrewarmIn time.Duration
	// PrewarmFor is the pre-warmed container's own idle window
	// (DefaultTTL when zero).
	PrewarmFor time.Duration
}

// Policy decides container keep-alive and pre-warming. Implementations
// must be deterministic functions of their construction parameters and
// the observed call sequence — no wall clock, no global randomness —
// and are driven in non-decreasing virtual-time order.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// OnArrival observes an invocation for app (history learning);
	// called once per Acquire, warm or cold.
	OnArrival(now simtime.Time, app string)
	// OnRelease is consulted when app's container goes idle at now.
	OnRelease(now simtime.Time, app string) Decision
}

// ---- NONE ----

// nonePolicy discards every container at release: each invocation pays
// a full cold start, the no-keep-alive baseline.
type nonePolicy struct{}

// NewNone returns the always-cold policy.
func NewNone() Policy { return nonePolicy{} }

func (nonePolicy) Name() string                            { return "NONE" }
func (nonePolicy) OnArrival(simtime.Time, string)          {}
func (nonePolicy) OnRelease(simtime.Time, string) Decision { return Decision{} }

// ---- FIXED-TTL ----

// fixedTTL keeps every released container warm for one fixed window —
// the classic provider policy (e.g. a 10-minute idle timeout).
type fixedTTL struct{ ttl time.Duration }

// NewFixedTTL returns the fixed keep-alive policy (DefaultTTL when ttl
// is non-positive).
func NewFixedTTL(ttl time.Duration) Policy {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return fixedTTL{ttl: ttl}
}

func (p fixedTTL) Name() string                   { return "TTL" }
func (p fixedTTL) OnArrival(simtime.Time, string) {}
func (p fixedTTL) OnRelease(simtime.Time, string) Decision {
	return Decision{KeepWarm: p.ttl}
}

// ---- LRU ----

// lruPolicy never expires containers by time; the warm pool is bounded
// only by the manager's memory capacity, which evicts the
// least-recently-used idle container under pressure.
type lruPolicy struct{}

// NewLRU returns the eviction-only policy.
func NewLRU() Policy { return lruPolicy{} }

func (lruPolicy) Name() string                   { return "LRU" }
func (lruPolicy) OnArrival(simtime.Time, string) {}
func (lruPolicy) OnRelease(simtime.Time, string) Decision {
	return Decision{KeepWarm: KeepForever}
}

// ---- HIST ----

// histBuckets is the number of power-of-two millisecond buckets an app
// histogram tracks: bucket i covers [2^i, 2^(i+1)) ms, bucket 0 covers
// everything below 2 ms, and the last bucket is open-ended (beyond
// ~12 days, far past any keep-alive horizon).
const histBuckets = 30

// appHist is one application's inter-arrival-time histogram.
type appHist struct {
	last    simtime.Time // previous arrival (-1 before the first)
	count   int
	buckets [histBuckets]int
}

// bucketOf maps an IAT to its histogram bucket.
func bucketOf(iat time.Duration) int {
	ms := iat / time.Millisecond
	if ms < 2 {
		return 0
	}
	b := bits.Len64(uint64(ms)) - 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// quantileBucket returns the index of the bucket containing the q-th
// quantile of the observed IATs.
func (h *appHist) quantileBucket(q float64) int {
	want := int(q * float64(h.count))
	if want >= h.count {
		want = h.count - 1
	}
	seen := 0
	for i, n := range h.buckets {
		seen += n
		if seen > want {
			return i
		}
	}
	return histBuckets - 1
}

// quantile returns the upper bound of the q-th quantile's bucket (a
// conservative over-estimate, which is what a keep-alive window wants).
func (h *appHist) quantile(q float64) time.Duration {
	return time.Duration(1<<(uint(h.quantileBucket(q))+1)) * time.Millisecond
}

// quantileLo returns the lower bound of the q-th quantile's bucket (a
// conservative under-estimate, which is what a pre-warm instant wants:
// early never misses, late always does).
func (h *appHist) quantileLo(q float64) time.Duration {
	return time.Duration(1<<uint(h.quantileBucket(q))) * time.Millisecond
}

// histogram is the history-driven policy, modeled on the hybrid
// histogram of Shahrad et al. ("Serverless in the Wild", ATC '20) that
// Przybylski et al.'s data-driven scheduling builds on: it tracks each
// application's inter-arrival times in a coarse log-scale histogram and
// predicts the next arrival from the observed distribution.
//
// On release, the keep-alive window covers the IAT distribution's tail
// (99th-percentile bucket with margin), so a warm container survives
// until the next arrival whenever history repeats. When the
// distribution's head is far away too — the application reliably stays
// quiet for a long time — keeping the container warm the whole window
// wastes memory: the policy instead discards it after a short grace
// period and schedules a pre-warm just before the predicted earliest
// arrival (the 5th-percentile bucket), covering the rest of the window
// from there.
type histogram struct {
	fallback time.Duration
	apps     map[string]*appHist
}

// histogram tuning constants.
const (
	histMinSamples = 4 // arrivals before predictions engage
	// histKeepCap bounds *prediction-driven* window extensions: a p99
	// tail estimate never extends a window past this. The configured
	// fallback is a user decision and is exempt — the floor rule
	// ("the fixed window is a floor HIST only ever extends") outranks
	// the cap, so a 2 h fallback yields 2 h windows, exactly as the
	// TTL policy it hybridizes would.
	histKeepCap     = time.Hour
	histPrewarmMin  = 10 * time.Second // only pre-warm for gaps this large
	histGracePeriod = time.Second      // idle grace before a pre-warm gap
	histMaxApps     = 4096             // histogram memory bound
)

// NewHistogram returns the history-driven policy. fallback is the
// keep-alive window used before an application has enough history
// (DefaultTTL when non-positive).
func NewHistogram(fallback time.Duration) Policy {
	if fallback <= 0 {
		fallback = DefaultTTL
	}
	return &histogram{fallback: fallback, apps: map[string]*appHist{}}
}

func (p *histogram) Name() string { return "HIST" }

func (p *histogram) OnArrival(now simtime.Time, app string) {
	h := p.apps[app]
	if h == nil {
		if len(p.apps) >= histMaxApps {
			return // beyond the bound, new apps fall back to the fixed TTL
		}
		h = &appHist{last: -1}
		p.apps[app] = h
	}
	if h.last >= 0 {
		h.buckets[bucketOf(now-h.last)]++
		h.count++
	}
	h.last = now
}

func (p *histogram) OnRelease(now simtime.Time, app string) Decision {
	h := p.apps[app]
	if h == nil || h.count < histMinSamples {
		return Decision{KeepWarm: p.fallback}
	}
	tail := h.quantile(0.99) + h.quantile(0.99)/4 // p99 bucket + 25% margin
	if tail < p.fallback {
		// The fallback window is a floor, never a cut: predictions only
		// ever extend it (for apps whose gaps outlast it), so the
		// histogram policy dominates the fixed-TTL policy it hybridizes.
		// A per-app p99 says nothing about how many concurrent
		// containers a burst needs, and trimming the window below the
		// floor was observed to shrink burst pools early.
		tail = p.fallback
	}
	// Cap only the prediction-driven extension, never the configured
	// floor (see histKeepCap).
	if bound := max(histKeepCap, p.fallback); tail > bound {
		tail = bound
	}
	head := h.quantileLo(0.05)
	if head > histPrewarmMin && head > p.fallback {
		// The app reliably stays quiet past the fallback window: keep
		// the floor window (never less), go cold through the predicted
		// gap, and come back warm at the earliest predicted arrival.
		// The p05 bucket's lower bound already undershoots the true
		// 5th percentile by up to 2×, so it needs no further margin,
		// and — unlike a keep-alive window, which holds memory the
		// whole time — the pre-warm *instant* may lie beyond
		// histKeepCap; only the resident window after it is capped.
		//
		// Both guards are the floor rule's boundary ("the fixed window
		// is a floor HIST only ever extends"): prediction engages only
		// when the predicted gap lies *beyond* the fallback window, and
		// the container still idles at least that window before the
		// gap — the old grace-period cut made HIST colder than the
		// fixed TTL it hybridizes whenever an arrival landed inside
		// the floor.
		prewarmIn := head
		cover := h.quantile(0.99) + h.quantile(0.99)/4 - prewarmIn
		if cover < histGracePeriod {
			cover = histGracePeriod
		}
		if cover > histKeepCap {
			cover = histKeepCap
		}
		keep := p.fallback
		if keep < histGracePeriod {
			keep = histGracePeriod
		}
		return Decision{
			KeepWarm:   keep,
			PrewarmIn:  prewarmIn,
			PrewarmFor: cover,
		}
	}
	return Decision{KeepWarm: tail}
}

// ---- registry ----

// PolicyConfig carries the construction parameters a keep-alive policy
// may need, mirroring cluster.FactoryConfig.
type PolicyConfig struct {
	// TTL is the fixed keep-alive window (TTL policy) and the
	// insufficient-history fallback (HIST); DefaultTTL when zero.
	TTL time.Duration
	// Seed is reserved for randomized policies; the built-in four are
	// deterministic and ignore it.
	Seed uint64
}

// reg maps canonical names to policy constructors in presentation
// order, the third registry on the shared internal/registry helper
// alongside internal/schedulers and internal/cluster, so CLIs select
// keep-alive policies by flag without the recognized set drifting
// between tools.
var reg = registry.New[func(cfg PolicyConfig) Policy]("keep-alive policy").
	Add("NONE", func(PolicyConfig) Policy { return NewNone() }).
	Add("TTL", func(cfg PolicyConfig) Policy { return NewFixedTTL(cfg.TTL) }).
	Add("LRU", func(PolicyConfig) Policy { return NewLRU() }).
	Add("HIST", func(cfg PolicyConfig) Policy { return NewHistogram(cfg.TTL) })

// PolicyNames returns the canonical keep-alive policy names NewPolicy
// recognizes.
func PolicyNames() []string { return reg.Names() }

// NewPolicy constructs a keep-alive policy by case-insensitive name.
func NewPolicy(name string, cfg PolicyConfig) (Policy, error) {
	mk, err := reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return mk(cfg), nil
}

// sortedPolicyNames is used by tests to compare registries without
// caring about presentation order.
func sortedPolicyNames() []string { return reg.SortedNames() }
