package lifecycle

import (
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Run drives an invocation stream through a container lifecycle manager
// and a cpusim engine on one global event loop: each invocation
// acquires its container at its arrival instant (a cold start shifts
// the engine-visible arrival by the sampled latency, so the task
// becomes runnable only once its sandbox is up), and containers return
// to the warm pool the instant their invocation finishes — engine
// events fire before same-instant arrivals, exactly as the cluster
// loop orders them, so same-seed replays are byte-identical.
//
// Run installs the engine's tracer to observe completions; the engine
// must be fresh (no tasks submitted, no tracer installed). Turnarounds
// measured afterwards are end-to-end: the original arrivals are
// restored, so cold-start latency counts against the request.
func Run(src trace.Source, mgr *Manager, eng *cpusim.Engine) (simtime.Time, error) {
	owner := map[*task.Task]*Container{}
	orig := map[*task.Task]simtime.Time{}
	var tasks []*task.Task
	eng.SetTracer(func(ev cpusim.TraceEvent) {
		if ev.Kind != cpusim.TraceFinish {
			return
		}
		if c := owner[ev.Task]; c != nil {
			mgr.Release(ev.At, c)
			delete(owner, ev.Task)
		}
	})

	next, more := src.Next()
	for {
		// The engine's earliest event, but only while it has unfinished
		// work: idle engines may hold re-arming timer events (the SFS
		// monitor) that would spin forever.
		evT := simtime.Infinity
		if eng.Pending() > 0 {
			evT = eng.NextEventTime()
		}
		arrT := simtime.Infinity
		if more {
			arrT = next.Arrival
		}
		if evT == simtime.Infinity && arrT == simtime.Infinity {
			break
		}
		if evT <= arrT {
			// Completions free containers the next arrival can reuse.
			eng.StepEvent()
			continue
		}
		delay, c := mgr.Acquire(arrT, next.App)
		orig[next] = next.Arrival
		tasks = append(tasks, next)
		owner[next] = c
		if delay > 0 {
			next.Arrival += delay
		}
		eng.Submit(next)
		next, more = src.Next()
	}
	if err := trace.Err(src); err != nil {
		return eng.Now(), err
	}
	// Restore end-to-end arrivals: turnaround and RTE must charge the
	// cold start to the request, not hide it.
	for _, t := range tasks {
		t.Arrival = orig[t]
	}
	return eng.Now(), nil
}
