package lifecycle

import (
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/trace"
)

// Run drives an invocation stream through a container lifecycle manager
// and a cpusim engine on one global event loop: each invocation
// acquires its container at its arrival instant (a cold start shifts
// the engine-visible arrival by the sampled latency, so the task
// becomes runnable only once its sandbox is up), and containers return
// to the warm pool the instant their invocation finishes.
//
// Run is a stage configuration of the unified host runtime
// (internal/host): the runtime's Drive loop supplies the event
// ordering — engine events before same-instant arrivals, exactly as
// the cluster loop orders them — so same-seed replays are
// byte-identical. The engine must be fresh (no tasks submitted, no
// tracer installed). Turnarounds measured afterwards are end-to-end:
// the original arrivals are restored, so cold-start latency counts
// against the request.
func Run(src trace.Source, mgr *Manager, eng *cpusim.Engine) (simtime.Time, error) {
	return host.New(eng, NewHostStage(mgr)).Drive(src)
}
