package faas

import (
	"reflect"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/workload"
)

// chainPlatformRun executes a chained workload on the platform model.
func chainPlatformRun(t *testing.T) Result {
	t.Helper()
	w := workload.Generate(workload.Spec{
		N: 200, Cores: 8, Load: 0.7, Seed: 9,
		Apps: []workload.AppChoice{{Profile: workload.AppProfile{Name: "wf", CPUFraction: 1}, Weight: 1}},
	})
	p := New(Config{
		Cores:     8,
		Overheads: DefaultOverheads(),
		Seed:      9,
		Chain: &chain.Config{
			Specs: map[string]chain.Spec{"wf": chain.Linear(chain.FamilyConfig{Depth: 3})},
		},
	})
	return p.Run(w, core.New(core.DefaultConfig()))
}

// TestPlatformChainEndToEnd: the platform expands chained requests,
// charges the request path to the workflow's arrival, the hop overheads
// between stages, and the response path once — to the final stage.
func TestPlatformChainEndToEnd(t *testing.T) {
	res := chainPlatformRun(t)
	if got := len(res.Run.Tasks); got != 200*3 {
		t.Fatalf("platform ran %d invocations, want 600 (200 workflows x 3 stages)", got)
	}
	wfr := res.Workflows
	if wfr.Completed() != 200 {
		t.Fatalf("%d workflows complete, want 200", wfr.Completed())
	}
	for i, w := range wfr.Workflows {
		ta := w.Turnaround()
		if ta < 0 {
			t.Fatalf("workflow %d unfinished", i)
		}
		// End-to-end must exceed the critical path plus something for
		// the platform's request/hop/response overheads (all positive
		// under DefaultOverheads).
		if ta <= w.Ideal {
			t.Fatalf("workflow %d turnaround %v not above its ideal %v despite platform overheads", i, ta, w.Ideal)
		}
	}
	if res.MeanDispatchOverhead <= 0 {
		t.Fatal("no dispatch overhead recorded")
	}
}

// TestPlatformChainDeterministic: the platform's chain path must replay
// byte-identically for the same seed.
func TestPlatformChainDeterministic(t *testing.T) {
	a := chainPlatformRun(t)
	b := chainPlatformRun(t)
	if !reflect.DeepEqual(a.Workflows.Workflows, b.Workflows.Workflows) {
		t.Fatal("workflow results diverged across identical runs")
	}
	if a.Run.MeanTurnaround() != b.Run.MeanTurnaround() {
		t.Fatal("per-stage metrics diverged across identical runs")
	}
}

// TestPlatformChainZeroOverheads: with every overhead nil the platform
// chain path degrades to the bare simulator — a single constant-service
// chain on an idle host completes at exactly its critical path.
func TestPlatformChainZeroOverheads(t *testing.T) {
	w := workload.Generate(workload.Spec{
		N: 1, Cores: 4, Duration: dist.Constant{Value: 10 * time.Millisecond}, Seed: 1,
		Apps: []workload.AppChoice{{Profile: workload.AppProfile{Name: "wf", CPUFraction: 1}, Weight: 1}},
	})
	p := New(Config{
		Cores: 4,
		Seed:  1,
		Chain: &chain.Config{Specs: map[string]chain.Spec{"wf": chain.Linear(chain.FamilyConfig{Depth: 4})}},
	})
	res := p.Run(w, core.New(core.DefaultConfig()))
	if res.Workflows.Completed() != 1 {
		t.Fatalf("%d workflows complete, want 1", res.Workflows.Completed())
	}
	got := res.Workflows.Workflows[0]
	if got.Turnaround() != 40*time.Millisecond || got.Slowdown() != 1.0 {
		t.Fatalf("turnaround %v slowdown %v, want 40ms / 1.0", got.Turnaround(), got.Slowdown())
	}
}

// TestPlatformChainPassThroughKeepsResponsePath: requests whose app has
// no workflow spec pass through unexpanded — and must still be charged
// the per-request response path. A run whose Chain config matches no
// app at all is therefore end-to-end identical to the same run with
// Chain unset (same seed, same overhead streams; the response used to
// be dropped for every pass-through invocation).
func TestPlatformChainPassThroughKeepsResponsePath(t *testing.T) {
	run := func(withChain bool) Result {
		w := workload.Generate(workload.Spec{
			N: 100, Cores: 8, Load: 0.7, Seed: 5,
			Apps: []workload.AppChoice{{Profile: workload.AppProfile{Name: "plain", CPUFraction: 1}, Weight: 1}},
		})
		cfg := Config{Cores: 8, Overheads: DefaultOverheads(), Seed: 5}
		if withChain {
			cfg.Chain = &chain.Config{
				Specs: map[string]chain.Spec{"wf": chain.Linear(chain.FamilyConfig{Depth: 2})},
			}
		}
		return New(cfg).Run(w, core.New(core.DefaultConfig()))
	}
	res := run(true)
	base := run(false)
	if len(res.Workflows.Workflows) != 0 {
		t.Fatalf("%d workflows tracked for a trace with no matching app", len(res.Workflows.Workflows))
	}
	baseFinish := map[int]time.Duration{}
	for _, tk := range base.Run.Tasks {
		baseFinish[tk.ID] = time.Duration(tk.Finish)
	}
	if len(res.Run.Tasks) != len(base.Run.Tasks) {
		t.Fatalf("%d tasks with chain vs %d without", len(res.Run.Tasks), len(base.Run.Tasks))
	}
	for _, tk := range res.Run.Tasks {
		if got := time.Duration(tk.Finish); got != baseFinish[tk.ID] {
			t.Fatalf("pass-through task %d finishes at %v with Chain set vs %v without (response path dropped?)",
				tk.ID, got, baseFinish[tk.ID])
		}
	}
}

// TestPlatformChainHopOwnership: a caller-supplied Hop must be rejected
// at construction (the platform wires its own overheads there).
func TestPlatformChainHopOwnership(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a Chain config with a caller-supplied Hop")
		}
	}()
	New(Config{
		Cores: 1,
		Chain: &chain.Config{
			Specs: map[string]chain.Spec{"wf": chain.Linear(chain.FamilyConfig{})},
			Hop:   func() time.Duration { return 0 },
		},
	})
}
