package faas

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/workload"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func smallWorkload(cores int, seed uint64) *workload.Workload {
	return workload.Generate(workload.Spec{
		N: 300, Cores: cores, Load: 0.8, Seed: seed,
		Duration: dist.Uniform{Lo: ms(5), Hi: ms(200)},
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
}

func TestPlatformAddsOverheads(t *testing.T) {
	const cores = 4
	w := smallWorkload(cores, 1)

	// Bare engine run (no platform).
	bare := New(Config{Cores: cores, Seed: 2}) // zero overheads
	bareRes := bare.Run(w, sched.NewCFS(sched.CFSConfig{}))

	loaded := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 2})
	loadedRes := loaded.Run(w, sched.NewCFS(sched.CFSConfig{}))

	if loadedRes.MeanDispatchOverhead == 0 {
		t.Fatal("no dispatch overhead sampled")
	}
	if bareRes.MeanDispatchOverhead != 0 {
		t.Fatal("zero-overhead platform sampled overhead")
	}
	// Mean turnaround must be strictly larger with overheads.
	if loadedRes.Run.MeanTurnaround() <= bareRes.Run.MeanTurnaround() {
		t.Fatalf("overheads did not increase turnaround: %v vs %v",
			loadedRes.Run.MeanTurnaround(), bareRes.Run.MeanTurnaround())
	}
}

func TestPlatformRestoresEndToEndTimestamps(t *testing.T) {
	const cores = 2
	w := smallWorkload(cores, 3)
	p := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 4})
	res := p.Run(w, sched.NewFIFO())
	for i, tk := range res.Run.Tasks {
		if tk.Arrival != w.Tasks[i].Arrival {
			t.Fatalf("task %d arrival not restored: %v vs %v", i, tk.Arrival, w.Tasks[i].Arrival)
		}
		// End-to-end turnaround strictly exceeds the ideal (overheads).
		if tk.Turnaround() <= tk.IdealDuration() {
			t.Fatalf("task %d turnaround %v not above ideal %v", i, tk.Turnaround(), tk.IdealDuration())
		}
	}
}

func TestSFSPortStillWinsUnderPlatform(t *testing.T) {
	// §IX headline: with platform overheads, OL+SFS still beats OL+CFS
	// for the short majority.
	const cores = 8
	w := workload.AzureSampled(workload.AzureSampledSpec{
		N: 3000, Cores: cores, Load: 0.9, Seed: 17,
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
	cfsP := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 18})
	cfsRes := cfsP.Run(w, sched.NewCFS(sched.CFSConfig{}))
	sfsP := New(Config{Cores: cores, Overheads: DefaultOverheads(), SFSPort: true, Seed: 18})
	sfsRes := sfsP.Run(w, core.New(core.DefaultConfig()))

	sum := metrics.CompareRuns(cfsRes.Run, sfsRes.Run)
	t.Logf("OL: improved=%.0f%% arith=%.1fx regressed=%.0f%% (slowdown %.2fx)",
		100*sum.ShortFraction, sum.ShortSpeedupArith, 100*sum.LongFraction, sum.LongSlowdownArith)
	// Platform overheads and the I/O polling lag shave the improved
	// fraction below the bare-scheduler numbers (the paper makes the
	// same observation in §IX); the improvements must still dominate.
	if sum.ShortFraction < 0.5 {
		t.Errorf("expected majority improvement under the platform, got %.2f", sum.ShortFraction)
	}
	if sum.ShortSpeedupArith < 2 {
		t.Errorf("expected substantial wins for improved requests, got %.2fx", sum.ShortSpeedupArith)
	}
	// Geometric mean keeps the check robust to a few extreme stragglers
	// in the saturated tail.
	if sum.LongSlowdown > 4 {
		t.Errorf("regressions should be mild, got %.2fx (geo)", sum.LongSlowdown)
	}
	if sfsRes.Run.MeanTurnaround() > cfsRes.Run.MeanTurnaround() {
		t.Errorf("OL+SFS mean %v should not exceed OL+CFS %v",
			sfsRes.Run.MeanTurnaround(), cfsRes.Run.MeanTurnaround())
	}
}

func TestColdStartInjection(t *testing.T) {
	const cores = 2
	w := smallWorkload(cores, 5)
	lc := func(p lifecycle.Policy) *lifecycle.Config {
		return &lifecycle.Config{
			Policy:      p,
			ImagePull:   dist.Constant{Value: ms(80)},
			SandboxBoot: dist.Constant{Value: ms(20)},
			Seed:        6,
		}
	}

	// NONE: every invocation pays the constant 100ms cold start.
	none := New(Config{Cores: cores, Lifecycle: lc(lifecycle.NewNone()), Seed: 6}).Run(w, sched.NewFIFO())
	if none.ColdStarts != len(w.Tasks) {
		t.Fatalf("NONE cold starts %d, want every one of %d", none.ColdStarts, len(w.Tasks))
	}
	if r := none.Lifecycle.WarmHitRatio(); r != 0 {
		t.Fatalf("NONE warm-hit ratio %.2f, want 0", r)
	}

	// A generous TTL turns most of those into warm hits and lowers mean
	// turnaround accordingly.
	ttl := New(Config{Cores: cores, Lifecycle: lc(lifecycle.NewFixedTTL(time.Minute)), Seed: 6}).Run(w, sched.NewFIFO())
	if ttl.Lifecycle.WarmHitRatio() < 0.5 {
		t.Fatalf("TTL warm-hit ratio %.2f, want most invocations warm", ttl.Lifecycle.WarmHitRatio())
	}
	if ttl.Run.MeanTurnaround() >= none.Run.MeanTurnaround() {
		t.Fatalf("warm pools should cut mean turnaround: TTL %v vs NONE %v",
			ttl.Run.MeanTurnaround(), none.Run.MeanTurnaround())
	}
	// The cold-start latency is on the critical path, not in the
	// dispatch-overhead accounting.
	if none.MeanDispatchOverhead != 0 {
		t.Fatalf("cold starts leaked into dispatch overhead: %v", none.MeanDispatchOverhead)
	}
}

func TestColdStartDeterminismWithLifecycle(t *testing.T) {
	const cores = 2
	w := smallWorkload(cores, 9)
	run := func() Result {
		return New(Config{
			Cores:     cores,
			Overheads: DefaultOverheads(),
			Lifecycle: &lifecycle.Config{Policy: lifecycle.NewHistogram(0), MemoryMB: 2048, Seed: 9},
			Seed:      9,
		}).Run(w, sched.NewCFS(sched.CFSConfig{}))
	}
	r1, r2 := run(), run()
	if r1.Lifecycle != r2.Lifecycle {
		t.Fatalf("lifecycle stats diverged:\n%+v\n%+v", r1.Lifecycle, r2.Lifecycle)
	}
	for i := range r1.Run.Tasks {
		if r1.Run.Tasks[i].Finish != r2.Run.Tasks[i].Finish {
			t.Fatalf("same-seed lifecycle runs diverge at task %d", i)
		}
	}
}

func TestPlatformDeterminism(t *testing.T) {
	const cores = 2
	w := smallWorkload(cores, 7)
	r1 := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 8}).Run(w, sched.NewFIFO())
	r2 := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 8}).Run(w, sched.NewFIFO())
	for i := range r1.Run.Tasks {
		if r1.Run.Tasks[i].Finish != r2.Run.Tasks[i].Finish {
			t.Fatalf("same-seed platform runs diverge at task %d", i)
		}
	}
}

func TestOverheadModelEstimate(t *testing.T) {
	m := DefaultOverheadModel()
	// 72 workers busy ~60% of a 600s run: ~26,000s of aggregate FILTER
	// time, polled every 4ms (6.5M polls), plus ~1M scheduling ops.
	pollCPU, schedCPU, rel := m.Estimate(26000*time.Second, 4*time.Millisecond, 1_000_000, 72, 600*time.Second)
	if pollCPU <= 0 || schedCPU <= 0 {
		t.Fatal("zero overhead components")
	}
	if rel <= 0 || rel > 0.2 {
		t.Fatalf("relative overhead %.3f out of plausible range", rel)
	}
	// Polling should dominate (the paper reports ~74%).
	if float64(pollCPU)/float64(pollCPU+schedCPU) < 0.5 {
		t.Fatalf("polling share %.2f; expected dominant", float64(pollCPU)/float64(pollCPU+schedCPU))
	}
	if _, _, r := m.Estimate(0, 0, 0, 0, 0); r != 0 {
		t.Fatal("degenerate estimate should be zero")
	}
}

func TestPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}
