package faas

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/workload"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func smallWorkload(cores int, seed uint64) *workload.Workload {
	return workload.Generate(workload.Spec{
		N: 300, Cores: cores, Load: 0.8, Seed: seed,
		Duration: dist.Uniform{Lo: ms(5), Hi: ms(200)},
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
}

func TestPlatformAddsOverheads(t *testing.T) {
	const cores = 4
	w := smallWorkload(cores, 1)

	// Bare engine run (no platform).
	bare := New(Config{Cores: cores, Seed: 2}) // zero overheads
	bareRes := bare.Run(w, sched.NewCFS(sched.CFSConfig{}))

	loaded := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 2})
	loadedRes := loaded.Run(w, sched.NewCFS(sched.CFSConfig{}))

	if loadedRes.MeanDispatchOverhead == 0 {
		t.Fatal("no dispatch overhead sampled")
	}
	if bareRes.MeanDispatchOverhead != 0 {
		t.Fatal("zero-overhead platform sampled overhead")
	}
	// Mean turnaround must be strictly larger with overheads.
	if loadedRes.Run.MeanTurnaround() <= bareRes.Run.MeanTurnaround() {
		t.Fatalf("overheads did not increase turnaround: %v vs %v",
			loadedRes.Run.MeanTurnaround(), bareRes.Run.MeanTurnaround())
	}
}

func TestPlatformRestoresEndToEndTimestamps(t *testing.T) {
	const cores = 2
	w := smallWorkload(cores, 3)
	p := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 4})
	res := p.Run(w, sched.NewFIFO())
	for i, tk := range res.Run.Tasks {
		if tk.Arrival != w.Tasks[i].Arrival {
			t.Fatalf("task %d arrival not restored: %v vs %v", i, tk.Arrival, w.Tasks[i].Arrival)
		}
		// End-to-end turnaround strictly exceeds the ideal (overheads).
		if tk.Turnaround() <= tk.IdealDuration() {
			t.Fatalf("task %d turnaround %v not above ideal %v", i, tk.Turnaround(), tk.IdealDuration())
		}
	}
}

func TestSFSPortStillWinsUnderPlatform(t *testing.T) {
	// §IX headline: with platform overheads, OL+SFS still beats OL+CFS
	// for the short majority.
	const cores = 8
	w := workload.AzureSampled(workload.AzureSampledSpec{
		N: 3000, Cores: cores, Load: 0.9, Seed: 17,
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
	cfsP := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 18})
	cfsRes := cfsP.Run(w, sched.NewCFS(sched.CFSConfig{}))
	sfsP := New(Config{Cores: cores, Overheads: DefaultOverheads(), SFSPort: true, Seed: 18})
	sfsRes := sfsP.Run(w, core.New(core.DefaultConfig()))

	sum := metrics.CompareRuns(cfsRes.Run, sfsRes.Run)
	t.Logf("OL: improved=%.0f%% arith=%.1fx regressed=%.0f%% (slowdown %.2fx)",
		100*sum.ShortFraction, sum.ShortSpeedupArith, 100*sum.LongFraction, sum.LongSlowdownArith)
	// Platform overheads and the I/O polling lag shave the improved
	// fraction below the bare-scheduler numbers (the paper makes the
	// same observation in §IX); the improvements must still dominate.
	if sum.ShortFraction < 0.5 {
		t.Errorf("expected majority improvement under the platform, got %.2f", sum.ShortFraction)
	}
	if sum.ShortSpeedupArith < 2 {
		t.Errorf("expected substantial wins for improved requests, got %.2fx", sum.ShortSpeedupArith)
	}
	// Geometric mean keeps the check robust to a few extreme stragglers
	// in the saturated tail.
	if sum.LongSlowdown > 4 {
		t.Errorf("regressions should be mild, got %.2fx (geo)", sum.LongSlowdown)
	}
	if sfsRes.Run.MeanTurnaround() > cfsRes.Run.MeanTurnaround() {
		t.Errorf("OL+SFS mean %v should not exceed OL+CFS %v",
			sfsRes.Run.MeanTurnaround(), cfsRes.Run.MeanTurnaround())
	}
}

func TestColdStartInjection(t *testing.T) {
	const cores = 2
	w := smallWorkload(cores, 5)
	p := New(Config{
		Cores:     cores,
		ColdStart: ColdStartModel{Fraction: 0.5, Penalty: dist.Constant{Value: ms(100)}},
		Seed:      6,
	})
	res := p.Run(w, sched.NewFIFO())
	frac := float64(res.ColdStarts) / float64(len(w.Tasks))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("cold-start fraction %.2f, want ~0.5", frac)
	}
	// Cold starts must add at least 100ms to the mean dispatch overhead
	// share of affected requests.
	if res.MeanDispatchOverhead < ms(40) {
		t.Fatalf("mean dispatch overhead %v too small for injected cold starts", res.MeanDispatchOverhead)
	}
}

func TestPlatformDeterminism(t *testing.T) {
	const cores = 2
	w := smallWorkload(cores, 7)
	r1 := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 8}).Run(w, sched.NewFIFO())
	r2 := New(Config{Cores: cores, Overheads: DefaultOverheads(), Seed: 8}).Run(w, sched.NewFIFO())
	for i := range r1.Run.Tasks {
		if r1.Run.Tasks[i].Finish != r2.Run.Tasks[i].Finish {
			t.Fatalf("same-seed platform runs diverge at task %d", i)
		}
	}
}

func TestOverheadModelEstimate(t *testing.T) {
	m := DefaultOverheadModel()
	// 72 workers busy ~60% of a 600s run: ~26,000s of aggregate FILTER
	// time, polled every 4ms (6.5M polls), plus ~1M scheduling ops.
	pollCPU, schedCPU, rel := m.Estimate(26000*time.Second, 4*time.Millisecond, 1_000_000, 72, 600*time.Second)
	if pollCPU <= 0 || schedCPU <= 0 {
		t.Fatal("zero overhead components")
	}
	if rel <= 0 || rel > 0.2 {
		t.Fatalf("relative overhead %.3f out of plausible range", rel)
	}
	// Polling should dominate (the paper reports ~74%).
	if float64(pollCPU)/float64(pollCPU+schedCPU) < 0.5 {
		t.Fatalf("polling share %.2f; expected dominant", float64(pollCPU)/float64(pollCPU+schedCPU))
	}
	if _, _, r := m.Estimate(0, 0, 0, 0, 0); r != 0 {
		t.Fatal("degenerate estimate should be zero")
	}
}

func TestPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}
