// Package faas models the OpenLambda deployment of §IX: a FaaS platform
// whose request path adds overhead at the gateway, the OpenLambda worker,
// and the HTTP sandbox server before a function reaches the host OS — and
// for the SFS port, a UDP notification hop between the sandbox server and
// the SFS scheduler (Fig 5).
//
// The platform is a wrapper around the cpusim engine: it perturbs each
// request's OS-level arrival by sampled dispatch overheads, runs the
// scheduler, and then restores end-to-end timestamps so turnaround and
// RTE include the platform costs — reproducing the paper's observation
// that OpenLambda overheads "diminish the performance benefits of SFS to
// some extent" while leaving the majority improvement intact.
//
// Cold starts are disabled by default, as in the paper (auto-scaling
// off, containers pre-warmed). Setting Config.Lifecycle plugs in the
// stateful container model of internal/lifecycle instead: per-app warm
// pools, memory-pressure eviction, and pluggable keep-alive policies,
// with each cold start's sampled latency injected into the timeline
// before the invocation becomes runnable — the §X discussion made
// concrete.
package faas

import (
	"fmt"
	"sort"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/host"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// Overheads samples the platform's per-request costs. Nil fields
// contribute zero.
type Overheads struct {
	// Gateway is the user-facing HTTP gateway's forwarding cost.
	Gateway dist.Distribution
	// Worker is the OpenLambda worker's dispatch cost (request parsing,
	// sandbox selection, statistics tracking).
	Worker dist.Distribution
	// Sandbox is the HTTP sandbox server's cost to hand the request to
	// the pre-warmed container process.
	Sandbox dist.Distribution
	// UDPNotify is the sandbox→SFS UDP message latency (SFS port only):
	// until it lands, the freshly-started process runs under plain CFS,
	// which the paper measures as "hundreds of microseconds".
	UDPNotify dist.Distribution
	// Response is the result path back through the platform.
	Response dist.Distribution
}

// DefaultOverheads returns overheads of the magnitude the paper
// describes for a warm OpenLambda deployment: sub-millisecond per hop.
func DefaultOverheads() Overheads {
	us := func(lo, hi int) dist.Distribution {
		return dist.Uniform{Lo: time.Duration(lo) * time.Microsecond, Hi: time.Duration(hi) * time.Microsecond}
	}
	return Overheads{
		Gateway:   us(100, 400),
		Worker:    us(200, 900),
		Sandbox:   us(100, 500),
		UDPNotify: us(100, 400),
		Response:  us(200, 800),
	}
}

// Config assembles a platform.
type Config struct {
	Cores     int
	Overheads Overheads
	// Lifecycle, when non-nil, models stateful container cold starts
	// through internal/lifecycle: warm pools, keep-alive policy, memory
	// capacity. Nil reproduces the paper's setup — auto-scaling off,
	// every container pre-warmed, no cold starts.
	Lifecycle *lifecycle.Config
	// Chain, when non-nil, expands each request into a function-chain
	// workflow (internal/chain). The external request pays the full
	// gateway+worker+sandbox path; each internal stage-to-stage hop pays
	// the worker+sandbox share (plus the UDP notification under
	// SFSPort); the response path is charged once, to the workflow's
	// final stage. Per-workflow end-to-end results land in
	// Result.Workflows. Its Hop field must be nil (the platform wires
	// its own overheads there); its Seed defaults to Config.Seed.
	Chain *chain.Config
	// SFSPort marks that the scheduler under test is reached via the UDP
	// notification hop.
	SFSPort bool
	// CtxSwitchCost is the per-context-switch core-time cost passed to
	// the engine. Containerized function processes pay a substantial
	// direct+indirect (cache/TLB refill) cost per switch, which is how
	// heavy CFS switching erodes capacity at consolidation scale
	// (Fig 16 shows CFS switching 10x+ more than SFS).
	CtxSwitchCost time.Duration
	Seed          uint64
}

// Platform simulates an OpenLambda deployment around a host scheduler.
type Platform struct {
	cfg Config
}

// New builds a platform. It panics on invalid configuration: a
// non-positive core count, or a Lifecycle config lifecycle.New
// rejects — so a Platform that constructs is a Platform that runs.
func New(cfg Config) *Platform {
	if cfg.Cores <= 0 {
		panic("faas: cores must be positive")
	}
	if cfg.Lifecycle != nil {
		if _, err := lifecycle.New(*cfg.Lifecycle); err != nil {
			panic(fmt.Sprintf("faas: %v", err))
		}
	}
	if cfg.Chain != nil {
		if cfg.Chain.Hop != nil {
			panic("faas: Chain.Hop is owned by the platform (leave it nil)")
		}
		if _, err := chain.NewInjector(*cfg.Chain); err != nil {
			panic(fmt.Sprintf("faas: %v", err))
		}
	}
	return &Platform{cfg: cfg}
}

// Result is a finished platform run.
type Result struct {
	Run        metrics.Run
	Makespan   time.Duration
	Engine     *cpusim.Engine
	ColdStarts int
	// Lifecycle holds the container warm-pool counters (warm-hit ratio,
	// cold latency, evictions) when Config.Lifecycle was set; zero
	// otherwise.
	Lifecycle lifecycle.Stats
	// Workflows holds per-workflow end-to-end results (turnaround
	// including the platform's request and response paths) when
	// Config.Chain was set; empty otherwise.
	Workflows metrics.WorkflowRun
	// MeanDispatchOverhead is the realized mean request-path overhead
	// (excluding response and cold starts).
	MeanDispatchOverhead time.Duration
}

// sample draws from d, treating nil as zero.
func sample(d dist.Distribution, r *rng.RNG) time.Duration {
	if d == nil {
		return 0
	}
	v := d.Sample(r)
	if v < 0 {
		return 0
	}
	return v
}

// Run executes the workload on the platform under the given scheduler.
func (p *Platform) Run(w *workload.Workload, s cpusim.Scheduler) Result {
	return p.RunTrace(w.Source(), s)
}

// RunTrace executes an invocation stream on the platform under the given
// scheduler. The stream's Arrival fields are interpreted as HTTP
// invocation times; the engine sees them shifted by the sampled dispatch
// overheads (plus any container cold start when Lifecycle is set), and
// afterwards the timestamps are restored so Turnaround()/RTE() are
// end-to-end.
func (p *Platform) RunTrace(src trace.Source, s cpusim.Scheduler) Result {
	tasks := trace.Collect(src)
	r := rng.New(p.cfg.Seed ^ 0xfaa5)
	pre := make([]time.Duration, len(tasks))
	post := make([]time.Duration, len(tasks))
	var overheadSum time.Duration
	for i, t := range tasks {
		d := sample(p.cfg.Overheads.Gateway, r) +
			sample(p.cfg.Overheads.Worker, r) +
			sample(p.cfg.Overheads.Sandbox, r)
		if p.cfg.SFSPort {
			d += sample(p.cfg.Overheads.UDPNotify, r)
		}
		pre[i] = d
		post[i] = sample(p.cfg.Overheads.Response, r)
		overheadSum += d
		t.Arrival += d
	}

	eng := cpusim.NewEngine(cpusim.Config{
		Cores:         p.cfg.Cores,
		CtxSwitchCost: p.cfg.CtxSwitchCost,
		Deadline:      1000 * time.Hour,
	}, s)
	// The container is requested (and a chained request expands) when
	// the worker dispatches the invocation — after the platform
	// overheads — so the driver loops must see arrivals in perturbed
	// order, which the per-hop sampling can locally scramble.
	perturbedSource := func() trace.Source {
		ordered := append([]*task.Task(nil), tasks...)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
		i := 0
		return trace.New(src.String(), func() (*task.Task, bool) {
			if i >= len(ordered) {
				return nil, false
			}
			t := ordered[i]
			i++
			return t, true
		})
	}

	var mgr *lifecycle.Manager
	if p.cfg.Lifecycle != nil {
		cfg := *p.cfg.Lifecycle
		if cfg.Seed == 0 {
			cfg.Seed = p.cfg.Seed
		}
		var err error
		if mgr, err = lifecycle.New(cfg); err != nil {
			panic(err) // unreachable: New validated the lifecycle config
		}
	}

	var makespan time.Duration
	var lstats lifecycle.Stats
	var inj *chain.Injector
	var chained []bool // per collected request: expands into a workflow?
	switch {
	case p.cfg.Chain != nil:
		// Internal stage-to-stage hops pay the worker+sandbox share of
		// the dispatch path (plus the UDP notification under SFSPort);
		// only the external request paid the gateway above.
		ccfg := *p.cfg.Chain
		if ccfg.Seed == 0 {
			ccfg.Seed = p.cfg.Seed
		}
		hopR := rng.New(p.cfg.Seed ^ 0x40b)
		ccfg.Hop = func() time.Duration {
			d := sample(p.cfg.Overheads.Worker, hopR) + sample(p.cfg.Overheads.Sandbox, hopR)
			if p.cfg.SFSPort {
				d += sample(p.cfg.Overheads.UDPNotify, hopR)
			}
			return d
		}
		var err error
		if inj, err = chain.NewInjector(ccfg); err != nil {
			panic(err) // unreachable: New validated the chain config
		}
		// Snapshot which requests expand before Run: Expand rewrites a
		// chained request's App to its stage-0 name, so the original
		// request app is only knowable here.
		chained = make([]bool, len(tasks))
		for i, t := range tasks {
			chained[i] = inj.Chained(t.App)
		}
		if makespan, err = chain.Run(perturbedSource(), inj, mgr, eng); err != nil {
			panic(err) // the source cannot fail: the slice was collected
		}
	case mgr != nil:
		var err error
		if makespan, err = lifecycle.Run(perturbedSource(), mgr, eng); err != nil {
			panic(err) // the source cannot fail: the slice was collected
		}
	default:
		var err error
		if makespan, err = host.New(eng).Drive(perturbedSource()); err != nil {
			panic(err) // the source cannot fail: the slice was collected
		}
	}
	if mgr != nil {
		lstats = mgr.Stats()
	}

	// Restore end-to-end timestamps: arrival back to HTTP invocation
	// time, finish extended by the response path. (chain.Run and
	// lifecycle.Run already unwound their own cold-start shifts.) In
	// chain mode a chained request's response is charged once per
	// workflow — to its final stage, below — while requests that passed
	// through unexpanded keep the plain per-request response charge.
	for i, t := range tasks {
		t.Arrival -= pre[i]
		if t.Finish >= 0 && (inj == nil || !chained[i]) {
			t.Finish += post[i]
		}
	}
	allTasks := tasks
	if inj != nil {
		allTasks = eng.Tasks()
		rootIdx := make(map[int]int, len(tasks))
		for i, t := range tasks {
			rootIdx[t.ID] = i
		}
		for wi := 0; wi < inj.Len(); wi++ {
			i, ok := rootIdx[inj.RootID(wi)]
			if !ok {
				continue
			}
			inj.AdjustArrival(wi, -pre[i])
			if ft := inj.Final(wi); ft != nil && ft.Finish >= 0 {
				ft.Finish += post[i]
				inj.AdjustFinish(wi, post[i])
			}
		}
	}
	res := Result{
		Run:        metrics.Run{Scheduler: s.Name(), Tasks: allTasks},
		Makespan:   makespan,
		Engine:     eng,
		ColdStarts: lstats.ColdStarts,
		Lifecycle:  lstats,
	}
	if inj != nil {
		res.Workflows = metrics.WorkflowRun{Scheduler: s.Name(), Workflows: inj.Workflows()}
	}
	if len(tasks) > 0 {
		res.MeanDispatchOverhead = overheadSum / time.Duration(len(tasks))
	}
	return res
}

// OpenLambdaWorkload builds the §IX workload: the Azure-sampled trace
// with the fib/md/sa application mix on the 72-core deployment.
func OpenLambdaWorkload(n, cores int, load float64, seed uint64) *workload.Workload {
	return workload.AzureSampled(workload.AzureSampledSpec{
		N: n, Cores: cores, Load: load, Seed: seed,
		Apps: []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		},
	})
}

// OverheadModel is the analytic Table II model of SFS's user-space CPU
// cost: periodic kernel-status polling plus per-decision scheduling work.
type OverheadModel struct {
	// PollCost is the CPU cost of one gopsutil status poll.
	PollCost time.Duration
	// OpCost is the CPU cost of one scheduling decision (queue ops,
	// schedtool invocation amortized).
	OpCost time.Duration
}

// DefaultOverheadModel calibrates the model so that the reproduction of
// Table II lands near the paper's measured 3.4-3.8% relative overhead on
// 72 cores, with polling contributing ~74% of the total.
func DefaultOverheadModel() OverheadModel {
	return OverheadModel{
		PollCost: 35 * time.Microsecond,
		OpCost:   25 * time.Microsecond,
	}
}

// Estimate returns (pollCPU, schedCPU, relative) for a run: polling cost
// accrues per busy-worker poll interval; scheduling cost per decision.
// relative is total overhead CPU divided by the deployment's core-time.
func (m OverheadModel) Estimate(filterBusy time.Duration, pollInterval time.Duration, ops int64, cores int, makespan time.Duration) (pollCPU, schedCPU time.Duration, relative float64) {
	if pollInterval <= 0 || makespan <= 0 || cores <= 0 {
		return 0, 0, 0
	}
	polls := int64(filterBusy / pollInterval)
	pollCPU = time.Duration(polls) * m.PollCost
	schedCPU = time.Duration(ops) * m.OpCost
	relative = float64(pollCPU+schedCPU) / (float64(makespan) * float64(cores))
	return pollCPU, schedCPU, relative
}
