package rbtree

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/serverless-sched/sfs/internal/rng"
)

func intTree() *Tree[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Fatalf("empty tree has len %d", tr.Len())
	}
	if tr.Min() != nil {
		t.Fatal("empty tree has a min")
	}
	if _, ok := tr.PopMin(); ok {
		t.Fatal("PopMin on empty tree succeeded")
	}
	if ok, msg := tr.CheckInvariants(); !ok {
		t.Fatalf("empty tree invariants: %s", msg)
	}
}

func TestInsertOrdering(t *testing.T) {
	tr := intTree()
	in := []int{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}
	for _, v := range in {
		tr.Insert(v)
	}
	got := tr.Values()
	want := append([]int(nil), in...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestMinTracking(t *testing.T) {
	tr := intTree()
	tr.Insert(10)
	tr.Insert(5)
	if tr.Min().Value != 5 {
		t.Fatalf("min = %d, want 5", tr.Min().Value)
	}
	n := tr.Insert(1)
	if tr.Min().Value != 1 {
		t.Fatalf("min = %d, want 1", tr.Min().Value)
	}
	tr.Delete(n)
	if tr.Min().Value != 5 {
		t.Fatalf("after delete, min = %d, want 5", tr.Min().Value)
	}
}

func TestPopMinDrainsInOrder(t *testing.T) {
	tr := intTree()
	r := rng.New(1)
	var want []int
	for i := 0; i < 500; i++ {
		v := r.Intn(100) // duplicates expected
		tr.Insert(v)
		want = append(want, v)
	}
	sort.Ints(want)
	for i, w := range want {
		v, ok := tr.PopMin()
		if !ok {
			t.Fatalf("tree drained early at %d", i)
		}
		if v != w {
			t.Fatalf("pop %d: got %d want %d", i, v, w)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty after drain: %d", tr.Len())
	}
}

func TestDeleteArbitraryNodes(t *testing.T) {
	tr := intTree()
	nodes := make([]*Node[int], 0, 100)
	for i := 0; i < 100; i++ {
		nodes = append(nodes, tr.Insert(i))
	}
	// Delete evens in a scrambled order.
	order := rng.New(2).Perm(50)
	for _, k := range order {
		tr.Delete(nodes[2*k])
		if ok, msg := tr.CheckInvariants(); !ok {
			t.Fatalf("invariants after deleting %d: %s", 2*k, msg)
		}
	}
	vals := tr.Values()
	if len(vals) != 50 {
		t.Fatalf("len = %d, want 50", len(vals))
	}
	for i, v := range vals {
		if v != 2*i+1 {
			t.Fatalf("value %d: got %d want %d", i, v, 2*i+1)
		}
	}
}

func TestDeleteNilIsNoop(t *testing.T) {
	tr := intTree()
	tr.Insert(1)
	tr.Delete(nil)
	if tr.Len() != 1 {
		t.Fatal("Delete(nil) changed the tree")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	var seen []int
	tr.Ascend(func(v int) bool {
		seen = append(seen, v)
		return v < 4
	})
	if len(seen) != 5 {
		t.Fatalf("visited %d values, want 5 (0..4, stopping at 4)", len(seen))
	}
}

// TestRandomOpsInvariants is a property test: a random interleaving of
// inserts and deletes must preserve red-black invariants, ordering, size,
// and min tracking at every step.
func TestRandomOpsInvariants(t *testing.T) {
	r := rng.New(42)
	tr := intTree()
	var live []*Node[int]
	counts := map[int]int{}
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || r.Float64() < 0.6 {
			v := r.Intn(64)
			live = append(live, tr.Insert(v))
			counts[v]++
		} else {
			i := r.Intn(len(live))
			n := live[i]
			counts[n.Value]--
			tr.Delete(n)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%97 == 0 {
			if ok, msg := tr.CheckInvariants(); !ok {
				t.Fatalf("step %d: %s", step, msg)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: len %d want %d", step, tr.Len(), len(live))
			}
		}
	}
	if ok, msg := tr.CheckInvariants(); !ok {
		t.Fatalf("final: %s", msg)
	}
	// Final multiset check.
	got := map[int]int{}
	for _, v := range tr.Values() {
		got[v]++
	}
	for v, c := range counts {
		if c != 0 && got[v] != c {
			t.Fatalf("value %d: count %d want %d", v, got[v], c)
		}
	}
}

// TestQuickSortedDrain uses testing/quick: inserting any []uint8 and
// draining via PopMin yields the sorted input.
func TestQuickSortedDrain(t *testing.T) {
	f := func(xs []uint8) bool {
		tr := intTree()
		for _, x := range xs {
			tr.Insert(int(x))
		}
		if ok, _ := tr.CheckInvariants(); !ok {
			return false
		}
		want := make([]int, len(xs))
		for i, x := range xs {
			want[i] = int(x)
		}
		sort.Ints(want)
		for _, w := range want {
			v, ok := tr.PopMin()
			if !ok || v != w {
				return false
			}
		}
		_, ok := tr.PopMin()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := intTree()
	r := rng.New(3)
	var nodes []*Node[int]
	for i := 0; i < 1024; i++ {
		nodes = append(nodes, tr.Insert(r.Intn(1<<20)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(nodes)
		tr.Delete(nodes[idx])
		nodes[idx] = tr.Insert(i & (1<<20 - 1))
	}
}

func BenchmarkPopMinInsert(b *testing.B) {
	tr := intTree()
	r := rng.New(4)
	for i := 0; i < 4096; i++ {
		tr.Insert(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := tr.PopMin()
		tr.Insert(v + 1)
	}
}
