// Package rbtree implements a left-leaning-free, classic red-black tree
// with an ordering function supplied at construction time.
//
// It is the substrate for the CFS runqueue model: Linux CFS keeps runnable
// tasks in a red-black tree ordered by vruntime and caches the leftmost
// node for O(1) pick-next. This implementation mirrors that shape: Min is
// O(1) via a cached leftmost pointer, Insert/Delete are O(log n).
//
// Duplicate keys are allowed (two tasks can share a vruntime); callers
// that need total order must break ties in the less function, exactly
// as internal/sched's CFS does with task IDs — a deterministic
// tie-break is part of the repository's reproducibility contract.
// Delete takes the *Node returned by Insert, not a key, so removing one
// of several equal-key entries is exact. The tree is not safe for
// concurrent use; schedulers are single-threaded inside the simulator's
// event loop by design.
package rbtree

type color bool

const (
	red   color = false
	black color = true
)

// Node is a tree node holding a value of type V.
type Node[V any] struct {
	Value               V
	parent, left, right *Node[V]
	color               color
}

// Tree is a red-black tree. Construct with New.
type Tree[V any] struct {
	root *Node[V]
	min  *Node[V] // cached leftmost node
	size int
	less func(a, b V) bool
}

// New returns an empty tree ordered by less. Values comparing equal under
// less are permitted; their relative order is insertion-dependent, so
// callers that need total determinism should break ties in less (the CFS
// model breaks vruntime ties by task ID).
func New[V any](less func(a, b V) bool) *Tree[V] {
	return &Tree[V]{less: less}
}

// Len returns the number of nodes in the tree.
func (t *Tree[V]) Len() int { return t.size }

// Min returns the leftmost (smallest) node, or nil if the tree is empty.
// It is O(1).
func (t *Tree[V]) Min() *Node[V] { return t.min }

// Insert adds v and returns its node handle, which remains valid until the
// node is deleted.
func (t *Tree[V]) Insert(v V) *Node[V] {
	n := &Node[V]{Value: v, color: red}
	if t.root == nil {
		n.color = black
		t.root = n
		t.min = n
		t.size = 1
		return n
	}
	cur := t.root
	var parent *Node[V]
	wentLeftAlways := true
	for cur != nil {
		parent = cur
		if t.less(v, cur.Value) {
			cur = cur.left
		} else {
			cur = cur.right
			wentLeftAlways = false
		}
	}
	n.parent = parent
	if t.less(v, parent.Value) {
		parent.left = n
	} else {
		parent.right = n
		wentLeftAlways = false
	}
	if wentLeftAlways {
		t.min = n
	}
	t.size++
	t.insertFixup(n)
	return n
}

// Delete removes node n from the tree. Passing a node that is not in the
// tree results in undefined behaviour; callers track membership.
func (t *Tree[V]) Delete(n *Node[V]) {
	if n == nil {
		return
	}
	if t.min == n {
		t.min = t.successor(n)
	}
	t.size--

	y := n
	yOriginalColor := y.color
	var x *Node[V]
	var xParent *Node[V]

	switch {
	case n.left == nil:
		x = n.right
		xParent = n.parent
		t.transplant(n, n.right)
	case n.right == nil:
		x = n.left
		xParent = n.parent
		t.transplant(n, n.left)
	default:
		y = t.minimum(n.right)
		yOriginalColor = y.color
		x = y.right
		if y.parent == n {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = n.right
			y.right.parent = y
		}
		t.transplant(n, y)
		y.left = n.left
		y.left.parent = y
		y.color = n.color
	}
	if yOriginalColor == black {
		t.deleteFixup(x, xParent)
	}
	n.parent, n.left, n.right = nil, nil, nil
}

// PopMin removes and returns the smallest node's value. The second result
// is false if the tree is empty.
func (t *Tree[V]) PopMin() (V, bool) {
	var zero V
	if t.min == nil {
		return zero, false
	}
	n := t.min
	v := n.Value
	t.Delete(n)
	return v, true
}

// Ascend visits values in ascending order until fn returns false.
func (t *Tree[V]) Ascend(fn func(v V) bool) {
	for n := t.min; n != nil; n = t.successor(n) {
		if !fn(n.Value) {
			return
		}
	}
}

// Values returns all values in ascending order. Intended for tests and
// diagnostics.
func (t *Tree[V]) Values() []V {
	out := make([]V, 0, t.size)
	t.Ascend(func(v V) bool { out = append(out, v); return true })
	return out
}

func (t *Tree[V]) minimum(n *Node[V]) *Node[V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func (t *Tree[V]) successor(n *Node[V]) *Node[V] {
	if n.right != nil {
		return t.minimum(n.right)
	}
	p := n.parent
	for p != nil && n == p.right {
		n = p
		p = p.parent
	}
	return p
}

func (t *Tree[V]) transplant(u, v *Node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[V]) rotateLeft(x *Node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *Node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[V]) insertFixup(z *Node[V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				gp.color = red
				t.rotateRight(gp)
			}
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				gp.color = red
				t.rotateLeft(gp)
			}
		}
	}
	t.root.color = black
}

func isBlack[V any](n *Node[V]) bool { return n == nil || n.color == black }

func (t *Tree[V]) deleteFixup(x *Node[V], parent *Node[V]) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w != nil && w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.right) {
					if w.left != nil {
						w.left.color = black
					}
					w.color = red
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = black
				if w.right != nil {
					w.right.color = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if w != nil && w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.right) && isBlack(w.left) {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.left) {
					if w.right != nil {
						w.right.color = black
					}
					w.color = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = black
				if w.left != nil {
					w.left.color = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.color = black
	}
}

// CheckInvariants verifies red-black tree invariants, returning false with
// a description on violation. Used by tests (including property-based
// tests); O(n).
func (t *Tree[V]) CheckInvariants() (bool, string) {
	if t.root == nil {
		if t.size != 0 {
			return false, "empty root but nonzero size"
		}
		if t.min != nil {
			return false, "empty root but non-nil min"
		}
		return true, ""
	}
	if t.root.color != black {
		return false, "root is not black"
	}
	count := 0
	ok, msg, _ := t.check(t.root, &count)
	if !ok {
		return false, msg
	}
	if count != t.size {
		return false, "size mismatch"
	}
	if t.min != t.minimum(t.root) {
		return false, "cached min is stale"
	}
	// Ordering check.
	var prev *V
	bad := false
	t.Ascend(func(v V) bool {
		if prev != nil && t.less(v, *prev) {
			bad = true
			return false
		}
		vv := v
		prev = &vv
		return true
	})
	if bad {
		return false, "values out of order"
	}
	return true, ""
}

func (t *Tree[V]) check(n *Node[V], count *int) (bool, string, int) {
	if n == nil {
		return true, "", 1
	}
	*count++
	if n.color == red {
		if !isBlack(n.left) || !isBlack(n.right) {
			return false, "red node with red child", 0
		}
	}
	if n.left != nil && n.left.parent != n {
		return false, "broken parent link (left)", 0
	}
	if n.right != nil && n.right.parent != n {
		return false, "broken parent link (right)", 0
	}
	okL, msgL, hL := t.check(n.left, count)
	if !okL {
		return false, msgL, 0
	}
	okR, msgR, hR := t.check(n.right, count)
	if !okR {
		return false, msgR, 0
	}
	if hL != hR {
		return false, "black-height mismatch", 0
	}
	h := hL
	if n.color == black {
		h++
	}
	return true, "", h
}
