// Package azure synthesizes a stand-in for the Azure Functions traces
// (Shahrad et al., ATC '20) that the paper samples its workloads from.
//
// The real dataset is not redistributable here, so this package generates
// a synthetic population of function applications whose published
// marginals match what the paper consumes:
//
//   - average execution durations spanning seven orders of magnitude,
//     with ~37.2% of functions under 300 ms, ~57.2% under 1 s, and
//     ~99.9% under 224 s (Fig 1);
//   - per-app invocation counts that are heavily skewed (a few hot
//     functions dominate);
//   - per-app inter-arrival processes, including transient bursts, from
//     which the paper replays IATs of 100 sampled apps (§VII) — the
//     bursts are what exercise SFS's overload handling (Fig 12).
//
// Entry points: Synthesize builds the population; Trace.SampleHotApps
// picks the invocation-weighted hot set the paper replays; and
// Trace.IATTrace merges the chosen apps' bursty arrival processes into
// one IAT sequence scaled to a target mean. workload.AzureSampledStream
// is the consumer that turns all of this into the canonical evaluation
// trace. dataset.go additionally parses the real Azure Functions 2019
// CSV release (durations and per-minute invocation counts) for users
// who have the non-redistributable dataset and want the paper's exact
// inputs instead of the stand-in. Everything here is deterministic in
// the seeds passed down from the workload spec.
package azure

import (
	"math"
	"sort"
	"time"

	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/rng"
)

// App is one synthetic function application's Day-1 statistics.
type App struct {
	ID          int
	AvgDuration time.Duration // average execution duration
	MinDuration time.Duration
	MaxDuration time.Duration
	Invocations int // total Day-1 invocation count
	// Bursty marks apps with transient invocation spikes, as reported
	// for production FaaS workloads (Alibaba, §V-E).
	Bursty bool
}

// Trace is the synthetic dataset.
type Trace struct {
	Apps []App
	seed uint64
}

// durationPopulation is the mixture behind per-app average durations.
// The components were calibrated so the CDF matches the paper's Fig 1
// anchors (37.2% < 300 ms, 57.2% < 1 s, 99.9% < 224 s) while spanning
// 1 ms .. ~1000 s.
func durationPopulation() dist.Distribution {
	ms := float64(time.Millisecond)
	logn := func(medianMs, sigma float64) dist.Distribution {
		return dist.Lognormal{Mu: math.Log(medianMs * ms), Sigma: sigma}
	}
	return dist.NewMixture(
		dist.Mode{Weight: 0.372, Dist: logn(40, 1.1)},   // sub-300ms mass
		dist.Mode{Weight: 0.200, Dist: logn(550, 0.45)}, // 300ms..1s
		dist.Mode{Weight: 0.418, Dist: logn(6000, 1.5)}, // 1s..224s bulk
		dist.Mode{Weight: 0.010, Dist: logn(90000, 1.2)},
	)
}

// Synthesize generates a trace of n apps from the seed.
func Synthesize(n int, seed uint64) *Trace {
	r := rng.New(seed)
	durR := r.Split()
	invR := r.Split()
	burstR := r.Split()
	pop := durationPopulation()
	apps := make([]App, n)
	for i := range apps {
		avg := pop.Sample(durR)
		if avg < time.Millisecond {
			avg = time.Millisecond
		}
		if avg > 1000*time.Second {
			avg = 1000 * time.Second
		}
		// Invocation counts follow a discretized Pareto: most apps are
		// cold, a few are extremely hot (the Azure paper's headline
		// skew).
		inv := int(10 * math.Pow(1/(1-invR.Float64()*0.9999), 1.05))
		if inv < 1 {
			inv = 1
		}
		if inv > 2_000_000 {
			inv = 2_000_000
		}
		spread := 0.2 + 0.6*durR.Float64()
		apps[i] = App{
			ID:          i,
			AvgDuration: avg,
			MinDuration: time.Duration(float64(avg) * (1 - spread)),
			MaxDuration: time.Duration(float64(avg) * (1 + 2*spread)),
			Invocations: inv,
			Bursty:      burstR.Float64() < 0.1,
		}
	}
	return &Trace{Apps: apps, seed: seed}
}

// AvgDurations returns every app's average duration (the Fig 1 sample).
func (tr *Trace) AvgDurations() []time.Duration {
	out := make([]time.Duration, len(tr.Apps))
	for i, a := range tr.Apps {
		out[i] = a.AvgDuration
	}
	return out
}

// SampleHotApps returns up to k apps with at least minInvocations,
// choosing uniformly among qualifying apps — the paper samples 100 apps
// with > 200 Day-1 invocations for IAT extraction (§VII).
func (tr *Trace) SampleHotApps(k, minInvocations int, seed uint64) []App {
	var hot []App
	for _, a := range tr.Apps {
		if a.Invocations >= minInvocations {
			hot = append(hot, a)
		}
	}
	r := rng.New(seed)
	r.Shuffle(len(hot), func(i, j int) { hot[i], hot[j] = hot[j], hot[i] })
	if len(hot) > k {
		hot = hot[:k]
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].ID < hot[j].ID })
	return hot
}

// IATTrace builds a merged arrival trace for the given apps: each app
// emits arrivals as a Poisson process proportional to its invocation
// count, with bursty apps alternating between quiet and spike episodes
// (a two-state MMPP). The merged, sorted arrival sequence is returned as
// inter-arrival times suitable for dist.NewTraceProcess.
//
// The spike episodes reproduce the transient overload the paper observes
// in production traces (§V-E, Fig 12): during a spike an app's rate is
// multiplied ~20x for a short episode.
func (tr *Trace) IATTrace(apps []App, n int, meanIAT time.Duration, seed uint64) []time.Duration {
	if n <= 0 || len(apps) == 0 {
		return nil
	}
	r := rng.New(seed)

	// Distribute the n arrivals across apps proportionally to their
	// invocation counts.
	total := 0
	for _, a := range apps {
		total += a.Invocations
	}
	type arrival struct{ at float64 }
	var arrivals []arrival

	// Every app emits arrivals across the whole horizon (stationary in
	// the large; episode-modulated for bursty apps). Emission is not
	// quota-capped: a count cap would front-load the merged trace and
	// leave a quiet tail, which no scheduler experiment should see.
	horizon := float64(meanIAT) * float64(n) // ns of trace time to fill

	// Global load waves: production FaaS traffic is non-stationary at
	// the minutes scale (diurnal and tenant-level patterns). All apps
	// share a slow sinusoidal rate modulation of ±30% around the mean,
	// so the merged trace alternates overload waves and recovery
	// valleys — the regime in which the paper's CFS tail degrades while
	// SFS's FILTER keeps short functions at their ideal duration.
	const waveAmp = 0.3
	const waveCycles = 4
	mod := func(t float64) float64 {
		return 1 + waveAmp*math.Sin(2*math.Pi*waveCycles*t/horizon)
	}
	for _, a := range apps {
		appR := r.Split()
		share := float64(a.Invocations) / float64(total)
		rate := share * float64(n) / horizon // arrivals per ns
		if rate <= 0 {
			continue
		}
		t := 0.0
		if !a.Bursty {
			for t < horizon {
				t += appR.ExpFloat64() / (rate * mod(t))
				if t >= horizon {
					break
				}
				arrivals = append(arrivals, arrival{at: t})
			}
			continue
		}
		// Bursty app: two-state modulated Poisson. Quiet episodes carry
		// roughly two thirds of the mass; short spike episodes run at
		// 4x the quiet rate — transient concurrency spikes like those
		// reported for production FaaS workloads, without turning the
		// whole trace into an on/off square wave. Average rate stays at
		// the app's share: (8*0.75 + 1*3)/9 = 1.
		quietRate := 0.75 * rate
		spikeRate := 3 * rate
		inSpike := false
		for t < horizon {
			// Episode lengths: long quiet periods, short spikes.
			var episode float64
			var cur float64
			if inSpike {
				episode = horizon / 48 * (0.5 + appR.Float64())
				cur = spikeRate
			} else {
				episode = horizon / 8 * (0.5 + appR.Float64())
				cur = quietRate
			}
			end := t + episode
			if end > horizon {
				end = horizon
			}
			for t < end {
				step := appR.ExpFloat64() / (cur * mod(t))
				if t+step > end {
					t = end
					break
				}
				t += step
				arrivals = append(arrivals, arrival{at: t})
			}
			inSpike = !inSpike
		}
	}

	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })
	if len(arrivals) > n {
		arrivals = arrivals[:n]
	}
	iats := make([]time.Duration, 0, len(arrivals))
	prev := 0.0
	for _, a := range arrivals {
		iats = append(iats, time.Duration(a.at-prev))
		prev = a.at
	}
	return iats
}
