package azure

import (
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/stats"
)

func TestSynthesizeDeterminism(t *testing.T) {
	a := Synthesize(500, 1)
	b := Synthesize(500, 1)
	for i := range a.Apps {
		if a.Apps[i].AvgDuration != b.Apps[i].AvgDuration || a.Apps[i].Invocations != b.Apps[i].Invocations {
			t.Fatalf("same-seed traces diverge at app %d", i)
		}
	}
}

// TestFig1Anchors checks the synthetic duration population against the
// paper's Fig 1 / §IV-A anchors: ~37.2% < 300 ms, ~57.2% < 1 s, ~99.9%
// < 224 s, spanning several orders of magnitude.
func TestFig1Anchors(t *testing.T) {
	tr := Synthesize(50000, 2)
	ds := tr.AvgDurations()
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	anchors := []struct {
		bound time.Duration
		want  float64
		tol   float64
	}{
		{300 * time.Millisecond, 0.372, 0.04},
		{1 * time.Second, 0.572, 0.04},
		{224 * time.Second, 0.999, 0.005},
	}
	for _, a := range anchors {
		got := stats.FractionBelow(xs, float64(a.bound))
		if got < a.want-a.tol || got > a.want+a.tol {
			t.Errorf("fraction < %v: %.3f, want %.3f±%.3f", a.bound, got, a.want, a.tol)
		}
	}
	// Seven orders of magnitude: from ~ms to >100s.
	min, max := ds[0], ds[0]
	for _, d := range ds {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min > 10*time.Millisecond {
		t.Errorf("min duration %v too large", min)
	}
	if max < 100*time.Second {
		t.Errorf("max duration %v too small", max)
	}
}

func TestInvocationSkew(t *testing.T) {
	tr := Synthesize(10000, 3)
	total := 0
	counts := make([]int, 0, len(tr.Apps))
	for _, a := range tr.Apps {
		total += a.Invocations
		counts = append(counts, a.Invocations)
	}
	// Top 1% of apps should carry a disproportionate share (heavy skew).
	top := 0
	for _, c := range counts {
		if c > 10000 {
			top += c
		}
	}
	if float64(top)/float64(total) < 0.2 {
		t.Errorf("hot apps carry only %.2f of invocations; expected heavy skew", float64(top)/float64(total))
	}
}

func TestSampleHotApps(t *testing.T) {
	tr := Synthesize(5000, 4)
	hot := tr.SampleHotApps(100, 200, 5)
	if len(hot) == 0 {
		t.Fatal("no hot apps found")
	}
	if len(hot) > 100 {
		t.Fatalf("returned %d apps, want <= 100", len(hot))
	}
	for _, a := range hot {
		if a.Invocations < 200 {
			t.Fatalf("app %d has %d invocations, below threshold", a.ID, a.Invocations)
		}
	}
	// Deterministic per seed.
	hot2 := tr.SampleHotApps(100, 200, 5)
	for i := range hot {
		if hot[i].ID != hot2[i].ID {
			t.Fatal("hot-app sampling not deterministic")
		}
	}
}

func TestIATTraceProperties(t *testing.T) {
	tr := Synthesize(5000, 6)
	hot := tr.SampleHotApps(100, 200, 7)
	const n = 5000
	meanIAT := 10 * time.Millisecond
	iats := tr.IATTrace(hot, n, meanIAT, 8)
	if len(iats) < n/2 {
		t.Fatalf("trace too short: %d", len(iats))
	}
	var sum time.Duration
	for _, d := range iats {
		if d < 0 {
			t.Fatal("negative IAT")
		}
		sum += d
	}
	got := sum / time.Duration(len(iats))
	// The realized mean should be within 2x of the request (bursts and
	// truncation distort it but not wildly).
	if got > 2*meanIAT || got < meanIAT/2 {
		t.Fatalf("realized mean IAT %v, requested %v", got, meanIAT)
	}
	// The merged trace of ~100 staggered apps is near-Poisson in the
	// aggregate (per-app burst episodes largely wash out); the explicit
	// overload spikes for Fig 12 are injected by workload.AddSpikes on
	// top. Check the aggregate is neither degenerate nor wildly more
	// regular than Poisson.
	var o stats.Online
	for _, d := range iats {
		o.Add(float64(d))
	}
	cv2 := o.Var() / (o.Mean() * o.Mean())
	if cv2 < 0.6 || cv2 > 20 {
		t.Errorf("IAT CV^2 = %.2f outside plausible range", cv2)
	}
}

func TestIATTraceEmptyInputs(t *testing.T) {
	tr := Synthesize(100, 9)
	if got := tr.IATTrace(nil, 100, time.Millisecond, 1); got != nil {
		t.Fatal("nil apps should produce nil trace")
	}
	if got := tr.IATTrace(tr.Apps[:1], 0, time.Millisecond, 1); got != nil {
		t.Fatal("zero n should produce nil trace")
	}
}
