package azure

import (
	"strings"
	"testing"
	"time"
)

const durationCSV = `HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,percentile_Average_0,percentile_Average_1,percentile_Average_25,percentile_Average_50,percentile_Average_75,percentile_Average_99,percentile_Average_100
o1,a1,f1,120.5,300,10,900,10,12,80,100,150,800,900
o1,a1,f2,35.0,1200,1,90,1,2,20,30,45,85,90
o2,a2,f3,5000,15,2000,20000,2000,2100,3000,4500,6000,19000,20000
`

const invocationCSV = `HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5,6,7,8,9,10,11,12
o1,a1,f1,http,10,12,9,11,10,11,9,10,12,10,9,11
o1,a1,f2,queue,0,0,500,0,1,0,0,0,0,0,0,0
o9,a9,f9,timer,1,1,1,1,1,1,1,1,1,1,1,1
`

func TestLoadDurations(t *testing.T) {
	rows, err := LoadDurations(strings.NewReader(durationCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Owner != "o1" || r.App != "a1" || r.Function != "f1" {
		t.Fatalf("keys %+v", r)
	}
	if r.Average != 120500*time.Microsecond {
		t.Fatalf("average %v", r.Average)
	}
	if r.Count != 300 {
		t.Fatalf("count %d", r.Count)
	}
	if r.Minimum != 10*time.Millisecond || r.Maximum != 900*time.Millisecond {
		t.Fatalf("min/max %v/%v", r.Minimum, r.Maximum)
	}
	if r.P50 != 100*time.Millisecond {
		t.Fatalf("p50 %v", r.P50)
	}
}

func TestLoadDurationsErrors(t *testing.T) {
	if _, err := LoadDurations(strings.NewReader("HashOwner,HashApp\no,a\n")); err == nil {
		t.Fatal("missing columns accepted")
	}
	bad := "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\no,a,f,notanumber,1,1,1\n"
	if _, err := LoadDurations(strings.NewReader(bad)); err == nil {
		t.Fatal("bad Average accepted")
	}
}

func TestLoadInvocations(t *testing.T) {
	rows, err := LoadInvocations(strings.NewReader(invocationCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Total != 124 {
		t.Fatalf("f1 total %d", rows[0].Total)
	}
	if rows[0].Trigger != "http" {
		t.Fatalf("trigger %q", rows[0].Trigger)
	}
	if len(rows[0].PerMinute) != 12 {
		t.Fatalf("minutes %d", len(rows[0].PerMinute))
	}
	if rows[1].Total != 501 {
		t.Fatalf("f2 total %d", rows[1].Total)
	}
}

func TestFromDatasetJoin(t *testing.T) {
	durations, err := LoadDurations(strings.NewReader(durationCSV))
	if err != nil {
		t.Fatal(err)
	}
	invocations, err := LoadInvocations(strings.NewReader(invocationCSV))
	if err != nil {
		t.Fatal(err)
	}
	tr := FromDataset(durations, invocations)
	if len(tr.Apps) != 3 {
		t.Fatalf("apps %d", len(tr.Apps))
	}
	// f1: joined; median used as expected duration; counts from the
	// invocation file.
	if tr.Apps[0].AvgDuration != 100*time.Millisecond {
		t.Fatalf("f1 avg %v (want the median)", tr.Apps[0].AvgDuration)
	}
	if tr.Apps[0].Invocations != 124 {
		t.Fatalf("f1 invocations %d", tr.Apps[0].Invocations)
	}
	if tr.Apps[0].Bursty {
		t.Fatal("f1 steady profile classified bursty")
	}
	// f2: 500 of 501 invocations in one minute — clearly bursty.
	if !tr.Apps[1].Bursty {
		t.Fatal("f2 spike profile not classified bursty")
	}
	// f3: no invocation row; falls back to the duration file's count.
	if tr.Apps[2].Invocations != 15 {
		t.Fatalf("f3 invocations %d", tr.Apps[2].Invocations)
	}
}

func TestFromDatasetFeedsWorkloadPipeline(t *testing.T) {
	durations, _ := LoadDurations(strings.NewReader(durationCSV))
	invocations, _ := LoadInvocations(strings.NewReader(invocationCSV))
	tr := FromDataset(durations, invocations)
	// The loaded trace must work with the same APIs the synthetic one
	// does.
	hot := tr.SampleHotApps(10, 50, 1)
	if len(hot) == 0 {
		t.Fatal("no hot apps in loaded dataset")
	}
	iats := tr.IATTrace(hot, 200, 10*time.Millisecond, 2)
	if len(iats) == 0 {
		t.Fatal("no IATs generated from loaded dataset")
	}
}

func TestBurstyFromMinutes(t *testing.T) {
	if burstyFromMinutes(nil) {
		t.Fatal("empty profile bursty")
	}
	if burstyFromMinutes([]int{5, 5, 5, 5}) {
		t.Fatal("flat profile bursty")
	}
	if !burstyFromMinutes([]int{0, 0, 100, 0, 0, 0, 0, 0, 0, 0}) {
		t.Fatal("spike profile not bursty")
	}
	if burstyFromMinutes([]int{0, 0, 0}) {
		t.Fatal("all-zero profile bursty")
	}
}
