package azure

import (
	"io"
	"strconv"
	"time"
)

// This file parses the real Azure Functions 2019 trace release (Shahrad
// et al., ATC '20) so that users with access to the dataset can replay
// the paper's exact inputs instead of the synthetic stand-in.
//
// Two of the dataset's file schemas are supported:
//
//   - function_durations_percentiles.anon.dNN.csv:
//     HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,
//     percentile_Average_0,...,percentile_Average_100   (milliseconds)
//   - invocations_per_function_md.anon.dNN.csv:
//     HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440 (per-minute counts)

// DurationRow is one function's duration statistics from the dataset.
type DurationRow struct {
	Owner, App, Function string
	Average              time.Duration
	Count                int
	Minimum, Maximum     time.Duration
	P50                  time.Duration // percentile_Average_50 when present
}

// InvocationRow is one function's per-minute invocation counts.
type InvocationRow struct {
	Owner, App, Function string
	Trigger              string
	PerMinute            []int // up to 1440 entries
	Total                int
}

// msField parses a millisecond-valued CSV field into a duration.
func msField(s string) (time.Duration, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return time.Duration(v * float64(time.Millisecond)), nil
}

// LoadDurations parses a function_durations_percentiles CSV stream
// into a materialized slice. Unknown extra columns are ignored; rows
// with unparsable core fields are rejected with a row-numbered error.
// For multi-GB files prefer ScanDurations/DurationsIndex, which never
// hold more than one row.
func LoadDurations(r io.Reader) ([]DurationRow, error) {
	var rows []DurationRow
	err := ScanDurations(r, func(row DurationRow) error {
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// LoadInvocations parses an invocations_per_function CSV stream into a
// materialized slice. For multi-GB files prefer ScanInvocations or
// IngestTape, which never hold more than one row.
func LoadInvocations(r io.Reader) ([]InvocationRow, error) {
	var rows []InvocationRow
	err := ScanInvocations(r, func(row InvocationRow) error {
		// The scanner reuses its PerMinute buffer; keep a copy.
		row.PerMinute = append([]int(nil), row.PerMinute...)
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func indexColumns(header []string) map[string]int {
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	return col
}

// FromDataset assembles a Trace from parsed duration and invocation
// rows, joined on (owner, app, function). Functions present in only one
// file are kept with the fields that are known; the paper's workload
// generation (median durations, Day-1 invocation counts) needs both.
func FromDataset(durations []DurationRow, invocations []InvocationRow) *Trace {
	type key struct{ o, a, f string }
	inv := make(map[key]*InvocationRow, len(invocations))
	for i := range invocations {
		r := &invocations[i]
		inv[key{r.Owner, r.App, r.Function}] = r
	}
	tr := &Trace{}
	for i, d := range durations {
		avg := d.Average
		if d.P50 > 0 {
			// The paper takes the median as the expected execution time
			// to rule out outliers (§VII).
			avg = d.P50
		}
		app := App{
			ID:          i,
			AvgDuration: avg,
			MinDuration: d.Minimum,
			MaxDuration: d.Maximum,
			Invocations: d.Count,
		}
		if r, ok := inv[key{d.Owner, d.App, d.Function}]; ok {
			app.Invocations = r.Total
			app.Bursty = burstyFromMinutes(r.PerMinute)
		}
		tr.Apps = append(tr.Apps, app)
	}
	return tr
}

// burstyFromMinutes classifies an invocation profile as bursty when its
// per-minute counts have a peak-to-mean ratio above 8 — transient
// concurrency spikes in the sense of §V-E.
func burstyFromMinutes(perMin []int) bool {
	if len(perMin) == 0 {
		return false
	}
	sum, max := 0, 0
	active := 0
	for _, v := range perMin {
		sum += v
		if v > max {
			max = v
		}
		if v > 0 {
			active++
		}
	}
	if sum == 0 || active == 0 {
		return false
	}
	mean := float64(sum) / float64(len(perMin))
	return float64(max) > 8*mean
}
