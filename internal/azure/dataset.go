package azure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// This file parses the real Azure Functions 2019 trace release (Shahrad
// et al., ATC '20) so that users with access to the dataset can replay
// the paper's exact inputs instead of the synthetic stand-in.
//
// Two of the dataset's file schemas are supported:
//
//   - function_durations_percentiles.anon.dNN.csv:
//     HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,
//     percentile_Average_0,...,percentile_Average_100   (milliseconds)
//   - invocations_per_function_md.anon.dNN.csv:
//     HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440 (per-minute counts)

// DurationRow is one function's duration statistics from the dataset.
type DurationRow struct {
	Owner, App, Function string
	Average              time.Duration
	Count                int
	Minimum, Maximum     time.Duration
	P50                  time.Duration // percentile_Average_50 when present
}

// InvocationRow is one function's per-minute invocation counts.
type InvocationRow struct {
	Owner, App, Function string
	Trigger              string
	PerMinute            []int // up to 1440 entries
	Total                int
}

// msField parses a millisecond-valued CSV field into a duration.
func msField(s string) (time.Duration, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return time.Duration(v * float64(time.Millisecond)), nil
}

// LoadDurations parses a function_durations_percentiles CSV stream.
// Unknown extra columns are ignored; rows with unparsable core fields
// are rejected with a row-numbered error.
func LoadDurations(r io.Reader) ([]DurationRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("azure: reading duration header: %w", err)
	}
	col := indexColumns(header)
	for _, need := range []string{"HashOwner", "HashApp", "HashFunction", "Average", "Count", "Minimum", "Maximum"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("azure: duration file missing column %q", need)
		}
	}
	p50Col, hasP50 := col["percentile_Average_50"]

	var rows []DurationRow
	for i := 1; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("azure: duration row %d: %w", i, err)
		}
		row := DurationRow{
			Owner:    rec[col["HashOwner"]],
			App:      rec[col["HashApp"]],
			Function: rec[col["HashFunction"]],
		}
		if row.Average, err = msField(rec[col["Average"]]); err != nil {
			return nil, fmt.Errorf("azure: duration row %d: bad Average: %w", i, err)
		}
		if row.Count, err = strconv.Atoi(rec[col["Count"]]); err != nil {
			return nil, fmt.Errorf("azure: duration row %d: bad Count: %w", i, err)
		}
		if row.Minimum, err = msField(rec[col["Minimum"]]); err != nil {
			return nil, fmt.Errorf("azure: duration row %d: bad Minimum: %w", i, err)
		}
		if row.Maximum, err = msField(rec[col["Maximum"]]); err != nil {
			return nil, fmt.Errorf("azure: duration row %d: bad Maximum: %w", i, err)
		}
		if hasP50 && p50Col < len(rec) {
			if p50, err := msField(rec[p50Col]); err == nil {
				row.P50 = p50
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LoadInvocations parses an invocations_per_function CSV stream.
func LoadInvocations(r io.Reader) ([]InvocationRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("azure: reading invocation header: %w", err)
	}
	col := indexColumns(header)
	for _, need := range []string{"HashOwner", "HashApp", "HashFunction"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("azure: invocation file missing column %q", need)
		}
	}
	// Minute columns are the ones whose header is a plain integer.
	type minuteCol struct{ header, idx int }
	var minutes []minuteCol
	for i, h := range header {
		if m, err := strconv.Atoi(h); err == nil && m >= 1 {
			minutes = append(minutes, minuteCol{header: m, idx: i})
		}
	}
	triggerCol, hasTrigger := col["Trigger"]

	var rows []InvocationRow
	for i := 1; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("azure: invocation row %d: %w", i, err)
		}
		row := InvocationRow{
			Owner:    rec[col["HashOwner"]],
			App:      rec[col["HashApp"]],
			Function: rec[col["HashFunction"]],
		}
		if hasTrigger && triggerCol < len(rec) {
			row.Trigger = rec[triggerCol]
		}
		row.PerMinute = make([]int, 0, len(minutes))
		for _, mc := range minutes {
			if mc.idx >= len(rec) {
				break
			}
			v, err := strconv.Atoi(rec[mc.idx])
			if err != nil {
				return nil, fmt.Errorf("azure: invocation row %d: bad minute %d: %w", i, mc.header, err)
			}
			row.PerMinute = append(row.PerMinute, v)
			row.Total += v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func indexColumns(header []string) map[string]int {
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	return col
}

// FromDataset assembles a Trace from parsed duration and invocation
// rows, joined on (owner, app, function). Functions present in only one
// file are kept with the fields that are known; the paper's workload
// generation (median durations, Day-1 invocation counts) needs both.
func FromDataset(durations []DurationRow, invocations []InvocationRow) *Trace {
	type key struct{ o, a, f string }
	inv := make(map[key]*InvocationRow, len(invocations))
	for i := range invocations {
		r := &invocations[i]
		inv[key{r.Owner, r.App, r.Function}] = r
	}
	tr := &Trace{}
	for i, d := range durations {
		avg := d.Average
		if d.P50 > 0 {
			// The paper takes the median as the expected execution time
			// to rule out outliers (§VII).
			avg = d.P50
		}
		app := App{
			ID:          i,
			AvgDuration: avg,
			MinDuration: d.Minimum,
			MaxDuration: d.Maximum,
			Invocations: d.Count,
		}
		if r, ok := inv[key{d.Owner, d.App, d.Function}]; ok {
			app.Invocations = r.Total
			app.Bursty = burstyFromMinutes(r.PerMinute)
		}
		tr.Apps = append(tr.Apps, app)
	}
	return tr
}

// burstyFromMinutes classifies an invocation profile as bursty when its
// per-minute counts have a peak-to-mean ratio above 8 — transient
// concurrency spikes in the sense of §V-E.
func burstyFromMinutes(perMin []int) bool {
	if len(perMin) == 0 {
		return false
	}
	sum, max := 0, 0
	active := 0
	for _, v := range perMin {
		sum += v
		if v > max {
			max = v
		}
		if v > 0 {
			active++
		}
	}
	if sum == 0 || active == 0 {
		return false
	}
	mean := float64(sum) / float64(len(perMin))
	return float64(max) > 8*mean
}
