package azure

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/trace"
)

func openFixture(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestScanMatchesLoad: the streaming scanners and the materializing
// loaders must agree row for row — Load* are thin wrappers now, but the
// copy semantics around the reused buffers are what this pins down.
func TestScanMatchesLoad(t *testing.T) {
	loaded, err := LoadDurations(openFixture(t, "durations_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	var scanned []DurationRow
	err = ScanDurations(openFixture(t, "durations_sample.csv"), func(row DurationRow) error {
		scanned = append(scanned, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 || len(scanned) != 3 {
		t.Fatalf("rows: loaded %d, scanned %d, want 3", len(loaded), len(scanned))
	}
	for i := range loaded {
		if loaded[i] != scanned[i] {
			t.Errorf("duration row %d: loaded %+v vs scanned %+v", i, loaded[i], scanned[i])
		}
	}
	if loaded[0].P50 != 180*time.Millisecond {
		t.Errorf("P50 = %v, want 180ms", loaded[0].P50)
	}

	inv, err := LoadInvocations(openFixture(t, "invocations_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != 4 {
		t.Fatalf("%d invocation rows, want 4", len(inv))
	}
	if inv[0].Total != 105 || inv[1].Total != 40 || inv[2].Total != 5 || inv[3].Total != 32 {
		t.Errorf("totals = %d %d %d %d", inv[0].Total, inv[1].Total, inv[2].Total, inv[3].Total)
	}
	// The loader must have detached its PerMinute copies from the
	// scanner's reused buffer.
	if &inv[0].PerMinute[0] == &inv[1].PerMinute[0] {
		t.Error("PerMinute slices share a buffer")
	}
}

// TestScanInvocationsRowValidity: a row retained without copying is
// overwritten by the next — documenting the reuse contract.
func TestScanInvocationsRowValidity(t *testing.T) {
	var first []int
	var firstCopy []int
	rows := 0
	err := ScanInvocations(openFixture(t, "invocations_sample.csv"), func(row InvocationRow) error {
		if rows == 0 {
			first = row.PerMinute
			firstCopy = append([]int(nil), row.PerMinute...)
		}
		rows++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range first {
		if first[i] != firstCopy[i] {
			same = false
		}
	}
	if same {
		t.Skip("scanner buffer happened to retain row 0; reuse not observable here")
	}
}

// TestDurationsIndex: P50 preferred, Average as fallback.
func TestDurationsIndex(t *testing.T) {
	idx, err := DurationsIndex(openFixture(t, "durations_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 {
		t.Fatalf("index has %d entries, want 3", len(idx))
	}
	if d := idx[FuncKey{"o1", "app-a", "f1"}]; d != 180*time.Millisecond {
		t.Errorf("f1 = %v, want P50 180ms", d)
	}
	if d := idx[FuncKey{"o2", "app-b", "f3"}]; d != 3100*time.Millisecond {
		t.Errorf("f3 = %v, want P50 3.1s", d)
	}
}

// TestIngestTape: the full streaming path — counts expanded within
// their minutes, serviced from the index, app-labeled, sorted, valid,
// and deterministic in the seed.
func TestIngestTape(t *testing.T) {
	idx, err := DurationsIndex(openFixture(t, "durations_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*trace.Tape, IngestStats) {
		tp, stats, err := IngestTape(openFixture(t, "invocations_sample.csv"), idx, IngestConfig{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return tp, stats
	}
	tp, stats := run()
	if stats.Rows != 4 || stats.Functions != 4 {
		t.Errorf("rows=%d functions=%d, want 4/4", stats.Rows, stats.Functions)
	}
	if want := 105 + 40 + 5 + 32; stats.Invocations != want || tp.Len() != want {
		t.Errorf("invocations=%d len=%d, want %d", stats.Invocations, tp.Len(), want)
	}
	if stats.NoDuration != 32 { // f4 has no durations row
		t.Errorf("NoDuration = %d, want 32", stats.NoDuration)
	}
	if stats.Truncated {
		t.Error("unexpected truncation")
	}

	tasks := tp.Materialize(nil)
	perApp := map[string]int{}
	for i, tk := range tasks {
		perApp[tk.App]++
		if tk.ID != i {
			t.Fatalf("task %d has ID %d", i, tk.ID)
		}
		if i > 0 && tk.Arrival < tasks[i-1].Arrival {
			t.Fatalf("arrival order violated at %d", i)
		}
	}
	if perApp["app-a"] != 145 || perApp["app-b"] != 5 || perApp["app-c"] != 32 {
		t.Errorf("per-app counts = %v", perApp)
	}
	// f4's invocations carry the default service time.
	seenDefault := false
	for _, tk := range tasks {
		if tk.App == "app-c" {
			if tk.Service != 100*time.Millisecond {
				t.Fatalf("app-c service = %v, want default 100ms", tk.Service)
			}
			seenDefault = true
		}
	}
	if !seenDefault {
		t.Error("no app-c invocations emitted")
	}
	if _, err := trace.Validate(tp.Source()); err != nil {
		t.Fatalf("ingested tape invalid: %v", err)
	}

	tp2, _ := run()
	a, b := tp.Materialize(nil), tp2.Materialize(nil)
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Service != b[i].Service || a[i].App != b[i].App {
			t.Fatalf("replay diverges at invocation %d", i)
		}
	}
}

// TestIngestTapeWindowScaleCap: the minute window drops out-of-window
// mass, Scale thins roughly proportionally, and MaxInvocations
// truncates with the flag set.
func TestIngestTapeWindowScaleCap(t *testing.T) {
	idx, err := DurationsIndex(openFixture(t, "durations_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	tp, stats, err := IngestTape(openFixture(t, "invocations_sample.csv"), idx,
		IngestConfig{MinuteLo: 2, MinuteHi: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Window minutes 2..4: f1 8+0+25, f2 0+5+5, f3 0+1+0, f4 30+0+0 = 74.
	if tp.Len() != 74 {
		t.Errorf("windowed tape holds %d, want 74", tp.Len())
	}
	for _, tk := range tp.Materialize(nil) {
		if at := time.Duration(tk.Arrival); at < 0 || at >= 3*time.Minute {
			t.Fatalf("arrival %v outside the 3-minute window", at)
		}
	}

	_, sStats, err := IngestTape(openFixture(t, "invocations_sample.csv"), idx,
		IngestConfig{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sStats.Invocations < 60 || sStats.Invocations > 120 {
		t.Errorf("scaled ingestion kept %d of 182, want ~91", sStats.Invocations)
	}

	capped, cStats, err := IngestTape(openFixture(t, "invocations_sample.csv"), idx,
		IngestConfig{MaxInvocations: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Len() != 50 || !cStats.Truncated {
		t.Errorf("cap: len=%d truncated=%v, want 50/true", capped.Len(), cStats.Truncated)
	}
	if stats.Truncated {
		t.Error("windowed run reported truncation")
	}
}

// TestScanErrors: malformed inputs surface row-numbered errors, and a
// callback error stops the scan.
func TestScanErrors(t *testing.T) {
	bad := "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\no,a,f,notanumber,1,1,1\n"
	err := ScanDurations(strings.NewReader(bad), func(DurationRow) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Errorf("bad Average: err = %v", err)
	}

	if err := ScanDurations(strings.NewReader("Nope\n"), func(DurationRow) error { return nil }); err == nil {
		t.Error("missing columns accepted")
	}

	stop := strings.NewReader("HashOwner,HashApp,HashFunction,1\no,a,f,1\no,a,g,1\n")
	calls := 0
	sentinel := os.ErrClosed
	err = ScanInvocations(stop, func(InvocationRow) error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Errorf("callback error: err=%v calls=%d", err, calls)
	}
}
