package azure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/serverless-sched/sfs/internal/rng"
	"github.com/serverless-sched/sfs/internal/simtime"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
)

// This file is the memory-bounded path through the real Azure Functions
// dataset: the 2019 release's invocation file is a multi-GB CSV (one
// row per function x 1440 minute columns), far past what LoadDurations/
// LoadInvocations' materializing slices should be fed. The Scan*
// iterators visit one row at a time with a reused record buffer, and
// IngestTape drives them straight onto a compact trace.Tape — memory is
// bounded by the emitted invocations and the per-function duration
// index, never by the CSV size.

// ScanDurations streams a function_durations_percentiles CSV, calling
// fn for each row. The DurationRow passed to fn is only valid during
// the call (the scanner reuses its buffers); copy what you keep.
// Returning a non-nil error from fn stops the scan and propagates it.
func ScanDurations(r io.Reader, fn func(DurationRow) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("azure: reading duration header: %w", err)
	}
	col := indexColumns(header)
	for _, need := range []string{"HashOwner", "HashApp", "HashFunction", "Average", "Count", "Minimum", "Maximum"} {
		if _, ok := col[need]; !ok {
			return fmt.Errorf("azure: duration file missing column %q", need)
		}
	}
	p50Col, hasP50 := col["percentile_Average_50"]

	for i := 1; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("azure: duration row %d: %w", i, err)
		}
		row := DurationRow{
			Owner:    rec[col["HashOwner"]],
			App:      rec[col["HashApp"]],
			Function: rec[col["HashFunction"]],
		}
		if row.Average, err = msField(rec[col["Average"]]); err != nil {
			return fmt.Errorf("azure: duration row %d: bad Average: %w", i, err)
		}
		if row.Count, err = strconv.Atoi(rec[col["Count"]]); err != nil {
			return fmt.Errorf("azure: duration row %d: bad Count: %w", i, err)
		}
		if row.Minimum, err = msField(rec[col["Minimum"]]); err != nil {
			return fmt.Errorf("azure: duration row %d: bad Minimum: %w", i, err)
		}
		if row.Maximum, err = msField(rec[col["Maximum"]]); err != nil {
			return fmt.Errorf("azure: duration row %d: bad Maximum: %w", i, err)
		}
		if hasP50 && p50Col < len(rec) {
			if p50, err := msField(rec[p50Col]); err == nil {
				row.P50 = p50
			}
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// ScanInvocations streams an invocations_per_function CSV, calling fn
// for each row. The InvocationRow — its PerMinute slice included — is
// only valid during the call; copy what you keep.
func ScanInvocations(r io.Reader, fn func(InvocationRow) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("azure: reading invocation header: %w", err)
	}
	// indexColumns must copy: ReuseRecord invalidates header strings on
	// the next Read.
	hdr := make([]string, len(header))
	copy(hdr, header)
	col := indexColumns(hdr)
	for _, need := range []string{"HashOwner", "HashApp", "HashFunction"} {
		if _, ok := col[need]; !ok {
			return fmt.Errorf("azure: invocation file missing column %q", need)
		}
	}
	type minuteCol struct{ header, idx int }
	var minutes []minuteCol
	for i, h := range hdr {
		if m, err := strconv.Atoi(h); err == nil && m >= 1 {
			minutes = append(minutes, minuteCol{header: m, idx: i})
		}
	}
	triggerCol, hasTrigger := col["Trigger"]

	perMinute := make([]int, 0, len(minutes))
	for i := 1; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("azure: invocation row %d: %w", i, err)
		}
		row := InvocationRow{
			Owner:    rec[col["HashOwner"]],
			App:      rec[col["HashApp"]],
			Function: rec[col["HashFunction"]],
		}
		if hasTrigger && triggerCol < len(rec) {
			row.Trigger = rec[triggerCol]
		}
		perMinute = perMinute[:0]
		row.Total = 0
		for _, mc := range minutes {
			if mc.idx >= len(rec) {
				break
			}
			v, err := strconv.Atoi(rec[mc.idx])
			if err != nil {
				return fmt.Errorf("azure: invocation row %d: bad minute %d: %w", i, mc.header, err)
			}
			perMinute = append(perMinute, v)
			row.Total += v
		}
		row.PerMinute = perMinute
		if err := fn(row); err != nil {
			return err
		}
	}
}

// FuncKey identifies one function across the dataset's files.
type FuncKey struct{ Owner, App, Function string }

// DurationsIndex streams a durations CSV into a per-function expected
// execution time (P50 when present — the paper's outlier-resistant
// choice — else Average). Memory is one map entry per function, not the
// percentile-heavy CSV rows.
func DurationsIndex(r io.Reader) (map[FuncKey]time.Duration, error) {
	idx := map[FuncKey]time.Duration{}
	err := ScanDurations(r, func(row DurationRow) error {
		d := row.Average
		if row.P50 > 0 {
			d = row.P50
		}
		if d <= 0 {
			d = time.Millisecond
		}
		idx[FuncKey{row.Owner, row.App, row.Function}] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// IngestConfig bounds and shapes a trace ingestion run.
type IngestConfig struct {
	// MinuteLo and MinuteHi bound the replayed window in dataset minutes
	// (1-based, inclusive; zero values mean the whole day). A one-hour
	// window of a multi-GB day is the typical experiment input.
	MinuteLo, MinuteHi int
	// Scale thins invocations: each is kept with probability Scale
	// (0 < Scale <= 1; zero means keep all). The full dataset is ~1.8
	// billion invocations per day — far more than a simulation needs.
	Scale float64
	// MaxInvocations stops ingestion once the tape holds this many
	// invocations (zero = unlimited). The cap is applied in file order,
	// before sorting.
	MaxInvocations int
	// DefaultDuration services invocations whose function has no entry
	// in the durations index (default 100ms, roughly the dataset's
	// short-function mode).
	DefaultDuration time.Duration
	// Seed drives the thinning and within-minute placement draws.
	Seed uint64
}

// IngestStats reports what an ingestion run consumed and emitted.
type IngestStats struct {
	Rows        int // invocation rows visited
	Functions   int // rows that emitted at least one invocation
	Invocations int // invocations on the tape
	NoDuration  int // invocations serviced by DefaultDuration
	Truncated   bool
}

// errIngestFull stops the row scan once MaxInvocations is reached.
var errIngestFull = fmt.Errorf("azure: ingestion cap reached")

// IngestTape streams an invocations CSV onto a trace.Tape: each row's
// per-minute counts are expanded into arrivals placed uniformly within
// their minute, serviced from the durations index, labeled with the
// row's HashApp, then the tape is sorted into one arrival-ordered
// trace. Peak memory is the duration index plus the emitted tape — the
// CSV itself is never held. Deterministic in cfg.Seed.
func IngestTape(invocations io.Reader, durations map[FuncKey]time.Duration, cfg IngestConfig) (*trace.Tape, IngestStats, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 1
	}
	if cfg.MinuteLo <= 0 {
		cfg.MinuteLo = 1
	}
	if cfg.MinuteHi <= 0 || cfg.MinuteHi > 1440 {
		cfg.MinuteHi = 1440
	}
	if cfg.MinuteHi < cfg.MinuteLo {
		cfg.MinuteLo, cfg.MinuteHi = cfg.MinuteHi, cfg.MinuteLo
	}
	if cfg.DefaultDuration <= 0 {
		cfg.DefaultDuration = 100 * time.Millisecond
	}

	r := rng.New(cfg.Seed)
	thinR := r.Split()
	jitterR := r.Split()
	tp := trace.NewTape()
	stats := IngestStats{}

	err := ScanInvocations(invocations, func(row InvocationRow) error {
		stats.Rows++
		service, known := durations[FuncKey{row.Owner, row.App, row.Function}]
		if !known {
			service = cfg.DefaultDuration
		}
		emitted := false
		for m, count := range row.PerMinute {
			minute := m + 1 // dataset minutes are 1-based
			if minute < cfg.MinuteLo || minute > cfg.MinuteHi || count == 0 {
				continue
			}
			start := time.Duration(minute-cfg.MinuteLo) * time.Minute
			for i := 0; i < count; i++ {
				if cfg.Scale < 1 && thinR.Float64() >= cfg.Scale {
					continue
				}
				if cfg.MaxInvocations > 0 && stats.Invocations >= cfg.MaxInvocations {
					stats.Truncated = true
					return errIngestFull
				}
				at := start + time.Duration(jitterR.Float64()*float64(time.Minute))
				tk := task.New(stats.Invocations, simtime.Time(at), service)
				tk.App = row.App
				tp.Append(tk)
				stats.Invocations++
				if !known {
					stats.NoDuration++
				}
				emitted = true
			}
		}
		if emitted {
			stats.Functions++
		}
		return nil
	})
	if err != nil && err != errIngestFull {
		return nil, stats, err
	}
	tp.SortByArrival()
	return tp, stats, nil
}
